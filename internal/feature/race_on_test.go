//go:build race

package feature

// raceEnabled reports whether the race detector is active.
const raceEnabled = true
