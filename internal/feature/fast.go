package feature

import (
	"bytes"
	"sync"

	"redhanded/internal/text"
	"redhanded/internal/text/lexicon"
	"redhanded/internal/text/pos"
	"redhanded/internal/text/sentiment"
	"redhanded/internal/text/stem"
	"redhanded/internal/twitterdata"
)

// The single-pass extraction fast path. One text.Scratch scan replaces the
// legacy pipeline's Clean + Tokenize + per-feature passes; all token-level
// features (POS counts, sentiment, swear count, BoW score) are then
// computed in a single loop over the scanned words, using byte-slice views
// into the scratch arenas — no per-tweet strings, slices, or maps.
//
// Equivalence with extractLegacyInto is enforced by TestGoldenEquivalence
// (the full generator corpus) and FuzzExtractEquivalence (arbitrary text).

// extractScratch bundles the reusable per-extraction state. Extract is
// safe for concurrent use because scratches are pooled, never shared.
type extractScratch struct {
	ts   text.Scratch
	step sentiment.Stepper
	apos []byte // apostrophe-stripped sentiment word
}

var extractPool = sync.Pool{New: func() any { return new(extractScratch) }}

// ExtractInto computes the feature vector for one tweet into dst
// (allocating only when dst is mis-sized) and returns it. With
// preprocessing enabled — the production configuration — it runs the
// single-pass fast path; the Preprocess=OFF ablation falls back to the
// legacy multi-pass implementation, whose raw-text tokenization the
// scanner intentionally does not model.
//
//redvet:noalloc gate=FeaturePathFast
func (e *Extractor) ExtractInto(dst []float64, tw *twitterdata.Tweet) []float64 {
	if len(dst) != NumFeatures {
		//redvet:ignore noalloc resize fallback for mis-sized callers; steady-state callers pass a right-sized reused vector and never reach this
		dst = make([]float64, NumFeatures)
	}
	if !e.cfg.Preprocess {
		e.extractLegacyInto(dst, tw)
		return dst
	}
	sc := extractPool.Get().(*extractScratch)
	e.extractFast(dst, tw, sc, e.bow.lookupSnapshot())
	extractPool.Put(sc)
	return dst
}

// extractFast runs the single-pass extraction against one BoW membership
// snapshot. The snapshot is a parameter (not loaded inside) so the
// extraction cache can tag the resulting vector with the exact snapshot
// version it was computed under.
//
//redvet:noalloc gate=FeaturePathFast
func (e *Extractor) extractFast(x []float64, tw *twitterdata.Tweet, sc *extractScratch, snap *bowSnapshot) {
	ts := &sc.ts
	ts.Scan(tw.Text)

	// Profile and network features come from the user payload.
	x[AccountAge] = tw.AccountAgeDays()
	x[CntPosts] = float64(tw.User.StatusesCount)
	x[CntLists] = float64(tw.User.ListedCount)
	x[CntFollowers] = float64(tw.User.FollowersCount)
	x[CntFriends] = float64(tw.User.FriendsCount)

	// Basic text features were counted on the raw text during the scan.
	st := &ts.Stats
	x[NumHashtags] = float64(st.Hashtags)
	x[NumURLs] = float64(st.URLs)
	x[NumUpperCases] = float64(st.UpperWords)

	nw := ts.Words()
	if nw == 0 {
		x[MeanWordLength] = 0
	} else {
		x[MeanWordLength] = float64(st.LetterSum) / float64(nw)
	}
	if st.Sentences == 0 {
		x[WordsPerSentence] = 0
	} else {
		x[WordsPerSentence] = float64(nw) / float64(st.Sentences)
	}

	// Token-level features in one loop: POS tally, sentiment stepping,
	// swear hits, BoW membership.
	var adjectives, adverbs, verbs int
	swears := 0
	bowScore := 0.0
	sc.step.Reset()
	var prevLower []byte
	prevTag := pos.Other
	for i := 0; i < nw; i++ {
		lower := ts.Lower(i)
		clean := ts.Clean(i)
		letters, uppers, elongated := ts.WordInfo(i)

		tag := e.tagger.TagLowerWord(lower, prevLower, prevTag)
		switch tag {
		case pos.Adjective:
			adjectives++
		case pos.Adverb:
			adverbs++
		case pos.Verb:
			verbs++
		}

		// Sentiment wants the apostrophe-free normalized word; reuse the
		// lowered bytes directly when there is nothing to strip.
		word := lower
		if bytes.IndexByte(lower, '\'') >= 0 {
			sc.apos = sc.apos[:0]
			for _, c := range lower {
				if c != '\'' {
					sc.apos = append(sc.apos, c)
				}
			}
			word = sc.apos
		}
		sc.step.Token(clean, word, letters >= 2 && uppers == letters, elongated)

		if lexicon.IsSwearLower(lower) {
			swears++
		}

		if snap != nil && snap.stem {
			// Stemming allocates; it is off in every default config.
			//redvet:ignore noalloc the stemmer is string-based and opt-in; the default BoW path below stays allocation-free
			if snap.containsString(stem.Stem(string(lower))) {
				bowScore++
			}
		} else if snap.contains(lower) {
			bowScore++
		}

		prevLower, prevTag = lower, tag
	}

	x[CntAdjectives] = float64(adjectives)
	x[CntAdverbs] = float64(adverbs)
	x[CntVerbs] = float64(verbs)

	// Preprocessed text has no '!' left, so no exclamation emphasis.
	score := sc.step.Finish(0)
	x[SentimentScorePos] = float64(score.Positive)
	x[SentimentScoreNeg] = float64(score.Negative)

	x[CntSwearWords] = float64(swears)
	x[BoWScore] = bowScore
}
