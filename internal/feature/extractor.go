package feature

import (
	"redhanded/internal/text"
	"redhanded/internal/text/lexicon"
	"redhanded/internal/text/pos"
	"redhanded/internal/text/sentiment"
	"redhanded/internal/twitterdata"
)

// Config selects the extraction options the paper's experiments toggle.
type Config struct {
	// Preprocess applies the cleaning step before token-based features
	// (p=ON/OFF in the figures).
	Preprocess bool
	// BoW configures the adaptive bag-of-words; set BoW.Frozen for the
	// fixed-BoW baseline (ad=OFF).
	BoW BoWConfig
	// CacheEntries sizes the content-addressed extraction cache (see
	// cache.go); <= 0 disables it, which is the default so existing
	// construction sites keep their exact behavior.
	CacheEntries int
}

// DefaultConfig enables preprocessing and the adaptive BoW.
func DefaultConfig() Config {
	return Config{Preprocess: true, BoW: DefaultBoWConfig()}
}

// Extractor turns tweets into fixed-length feature vectors. Extraction is
// safe for concurrent use; Learn serializes internally.
type Extractor struct {
	cfg       Config
	cleanOpts text.CleanOptions
	// sentOpts strips tweet entities but keeps punctuation, so sentence
	// boundaries survive while URL dots stop creating fake ones.
	sentOpts  text.CleanOptions
	tagger    *pos.Tagger
	sentiment *sentiment.Analyzer
	bow       *AdaptiveBoW
	// cache memoizes text-derived feature slots per (text, BoW version);
	// nil when Config.CacheEntries <= 0.
	cache *extractCache
}

// NewExtractor creates an extractor with the given options.
func NewExtractor(cfg Config) *Extractor {
	var cache *extractCache
	if cfg.CacheEntries > 0 && cfg.Preprocess {
		cache = newExtractCache(cfg.CacheEntries)
	}
	return &Extractor{
		cache:     cache,
		cfg:       cfg,
		cleanOpts: text.DefaultCleanOptions(),
		sentOpts: text.CleanOptions{
			RemoveURLs:          true,
			RemoveMentions:      true,
			RemoveHashtags:      true,
			RemoveAbbreviations: true,
			CondenseWhitespace:  true,
		},
		tagger:    pos.New(),
		sentiment: sentiment.New(),
		bow:       NewAdaptiveBoW(cfg.BoW),
	}
}

// BoW exposes the adaptive bag-of-words (for Fig. 10 and the pipeline's
// training step).
func (e *Extractor) BoW() *AdaptiveBoW { return e.bow }

// Extract computes the feature vector for one tweet, allocating the
// result. Hot paths use ExtractInto with a pooled vector (see pool.go);
// both run the same single-pass fast path.
func (e *Extractor) Extract(tw *twitterdata.Tweet) []float64 {
	return e.ExtractInto(make([]float64, NumFeatures), tw)
}

// LookupCached serves dst from the extraction cache when the exact
// (text, BoW snapshot version) pair is resident: cached text-feature slots
// are copied in and the per-user profile slots recomputed, so the result
// is bit-for-bit what ExtractInto would produce. Returns false (leaving
// dst untouched) when the cache is disabled, dst is mis-sized, or the
// entry is absent/stale. Lock-free.
//
//redvet:noalloc gate=FeatCacheLookup
func (e *Extractor) LookupCached(dst []float64, tw *twitterdata.Tweet) bool {
	if e.cache == nil || len(dst) != NumFeatures {
		return false
	}
	snap := e.bow.lookupSnapshot()
	if !e.cache.lookup(dst, tw.Text, snap.version) {
		return false
	}
	e.fillProfile(dst, tw)
	return true
}

// fillProfile recomputes the per-user profile slots a cache hit cannot
// serve.
//
//redvet:noalloc gate=FeatCacheLookup
func (e *Extractor) fillProfile(x []float64, tw *twitterdata.Tweet) {
	x[AccountAge] = tw.AccountAgeDays()
	x[CntPosts] = float64(tw.User.StatusesCount)
	x[CntLists] = float64(tw.User.ListedCount)
	x[CntFollowers] = float64(tw.User.FollowersCount)
	x[CntFriends] = float64(tw.User.FriendsCount)
}

// ExtractAndCache extracts freshly (exactly like ExtractInto) and admits
// the resulting vector into the cache under the snapshot version it was
// computed against. Admission clones the text and allocates an entry, so
// this is deliberately not part of the zero-alloc lookup gate; callers pair
// it with LookupCached, paying admission cost only on misses.
func (e *Extractor) ExtractAndCache(dst []float64, tw *twitterdata.Tweet) []float64 {
	if e.cache == nil || !e.cfg.Preprocess {
		return e.ExtractInto(dst, tw)
	}
	if len(dst) != NumFeatures {
		dst = make([]float64, NumFeatures)
	}
	snap := e.bow.lookupSnapshot()
	sc := extractPool.Get().(*extractScratch)
	e.extractFast(dst, tw, sc, snap)
	extractPool.Put(sc)
	e.cache.insert(tw.Text, snap.version, dst)
	return dst
}

// ExtractCachedInto is the composed cache-aware extraction: hit or
// extract-and-admit.
func (e *Extractor) ExtractCachedInto(dst []float64, tw *twitterdata.Tweet) []float64 {
	if e.LookupCached(dst, tw) {
		return dst
	}
	return e.ExtractAndCache(dst, tw)
}

// CacheStats returns the extraction-cache counters (zero value when the
// cache is disabled).
func (e *Extractor) CacheStats() CacheStats {
	if e.cache == nil {
		return CacheStats{}
	}
	return e.cache.stats()
}

// ExtractLegacy computes the feature vector via the multi-pass reference
// implementation. It exists for the equivalence tests and the benchmark
// report (cmd/benchreport), which record the fast path's speedup against
// it; production callers use Extract/ExtractInto.
func (e *Extractor) ExtractLegacy(tw *twitterdata.Tweet) []float64 {
	x := make([]float64, NumFeatures)
	e.extractLegacyInto(x, tw)
	return x
}

// extractLegacyInto is the original multi-pass implementation: Clean +
// Tokenize + per-feature passes, each allocating intermediate strings and
// slices. It stays byte-for-byte intact for two reasons: it serves the
// Preprocess=OFF configuration (whose raw-text tokenization the fast path
// does not model), and it is the reference the golden and fuzz equivalence
// tests compare the fast path against.
func (e *Extractor) extractLegacyInto(x []float64, tw *twitterdata.Tweet) {
	// Profile and network features come from the user payload.
	x[AccountAge] = tw.AccountAgeDays()
	x[CntPosts] = float64(tw.User.StatusesCount)
	x[CntLists] = float64(tw.User.ListedCount)
	x[CntFollowers] = float64(tw.User.FollowersCount)
	x[CntFriends] = float64(tw.User.FriendsCount)

	// Basic text features are counted on the raw text (preprocessing
	// removes exactly the tokens they count).
	raw := tw.Text
	x[NumHashtags] = float64(text.CountTokenKind(raw, text.IsHashtagToken))
	x[NumURLs] = float64(text.CountTokenKind(raw, text.IsURLToken))
	x[NumUpperCases] = float64(text.CountUpperWords(raw))

	// Remaining text features operate on the (optionally) cleaned text.
	body := raw
	if e.cfg.Preprocess {
		body = text.Clean(raw, e.cleanOpts)
	}
	tokens := text.Tokenize(body)
	x[MeanWordLength] = text.MeanWordLength(tokens)
	x[WordsPerSentence] = e.wordsPerSentence(raw, len(tokens))

	counts := e.tagger.Count(tokens)
	x[CntAdjectives] = float64(counts.Adjectives)
	x[CntAdverbs] = float64(counts.Adverbs)
	x[CntVerbs] = float64(counts.Verbs)

	score := e.sentiment.Analyze(body)
	x[SentimentScorePos] = float64(score.Positive)
	x[SentimentScoreNeg] = float64(score.Negative)

	x[CntSwearWords] = float64(lexicon.CountSwears(tokens))
	x[BoWScore] = e.bow.Score(tokens)
}

// wordsPerSentence computes the mean sentence length. With preprocessing
// on, sentence boundaries come from entity-stripped text (URL dots would
// otherwise fabricate boundaries) and word counts from the fully cleaned
// tokens; with preprocessing off, the raw text is used for both — one of
// the noise sources that makes p=OFF less stable in Fig. 6.
func (e *Extractor) wordsPerSentence(raw string, tokenCount int) float64 {
	if !e.cfg.Preprocess {
		return text.WordsPerSentence(raw)
	}
	sentences := text.SplitSentences(text.Clean(raw, e.sentOpts))
	if len(sentences) == 0 {
		return 0
	}
	return float64(tokenCount) / float64(len(sentences))
}

// Learn updates the adaptive bag-of-words with a labeled tweet. Aggressive
// covers the abusive and hateful labels, per §IV-B.
func (e *Extractor) Learn(tw *twitterdata.Tweet) {
	if !tw.IsLabeled() {
		return
	}
	body := tw.Text
	if e.cfg.Preprocess {
		body = text.Clean(tw.Text, e.cleanOpts)
	}
	aggressive := tw.Label == twitterdata.LabelAbusive || tw.Label == twitterdata.LabelHateful
	e.bow.Learn(text.Tokenize(body), aggressive)
}
