package feature

import (
	"redhanded/internal/text"
	"redhanded/internal/text/lexicon"
	"redhanded/internal/text/pos"
	"redhanded/internal/text/sentiment"
	"redhanded/internal/twitterdata"
)

// Config selects the extraction options the paper's experiments toggle.
type Config struct {
	// Preprocess applies the cleaning step before token-based features
	// (p=ON/OFF in the figures).
	Preprocess bool
	// BoW configures the adaptive bag-of-words; set BoW.Frozen for the
	// fixed-BoW baseline (ad=OFF).
	BoW BoWConfig
}

// DefaultConfig enables preprocessing and the adaptive BoW.
func DefaultConfig() Config {
	return Config{Preprocess: true, BoW: DefaultBoWConfig()}
}

// Extractor turns tweets into fixed-length feature vectors. Extraction is
// safe for concurrent use; Learn serializes internally.
type Extractor struct {
	cfg       Config
	cleanOpts text.CleanOptions
	// sentOpts strips tweet entities but keeps punctuation, so sentence
	// boundaries survive while URL dots stop creating fake ones.
	sentOpts  text.CleanOptions
	tagger    *pos.Tagger
	sentiment *sentiment.Analyzer
	bow       *AdaptiveBoW
}

// NewExtractor creates an extractor with the given options.
func NewExtractor(cfg Config) *Extractor {
	return &Extractor{
		cfg:       cfg,
		cleanOpts: text.DefaultCleanOptions(),
		sentOpts: text.CleanOptions{
			RemoveURLs:          true,
			RemoveMentions:      true,
			RemoveHashtags:      true,
			RemoveAbbreviations: true,
			CondenseWhitespace:  true,
		},
		tagger:    pos.New(),
		sentiment: sentiment.New(),
		bow:       NewAdaptiveBoW(cfg.BoW),
	}
}

// BoW exposes the adaptive bag-of-words (for Fig. 10 and the pipeline's
// training step).
func (e *Extractor) BoW() *AdaptiveBoW { return e.bow }

// Extract computes the feature vector for one tweet, allocating the
// result. Hot paths use ExtractInto with a pooled vector (see pool.go);
// both run the same single-pass fast path.
func (e *Extractor) Extract(tw *twitterdata.Tweet) []float64 {
	return e.ExtractInto(make([]float64, NumFeatures), tw)
}

// ExtractLegacy computes the feature vector via the multi-pass reference
// implementation. It exists for the equivalence tests and the benchmark
// report (cmd/benchreport), which record the fast path's speedup against
// it; production callers use Extract/ExtractInto.
func (e *Extractor) ExtractLegacy(tw *twitterdata.Tweet) []float64 {
	x := make([]float64, NumFeatures)
	e.extractLegacyInto(x, tw)
	return x
}

// extractLegacyInto is the original multi-pass implementation: Clean +
// Tokenize + per-feature passes, each allocating intermediate strings and
// slices. It stays byte-for-byte intact for two reasons: it serves the
// Preprocess=OFF configuration (whose raw-text tokenization the fast path
// does not model), and it is the reference the golden and fuzz equivalence
// tests compare the fast path against.
func (e *Extractor) extractLegacyInto(x []float64, tw *twitterdata.Tweet) {
	// Profile and network features come from the user payload.
	x[AccountAge] = tw.AccountAgeDays()
	x[CntPosts] = float64(tw.User.StatusesCount)
	x[CntLists] = float64(tw.User.ListedCount)
	x[CntFollowers] = float64(tw.User.FollowersCount)
	x[CntFriends] = float64(tw.User.FriendsCount)

	// Basic text features are counted on the raw text (preprocessing
	// removes exactly the tokens they count).
	raw := tw.Text
	x[NumHashtags] = float64(text.CountTokenKind(raw, text.IsHashtagToken))
	x[NumURLs] = float64(text.CountTokenKind(raw, text.IsURLToken))
	x[NumUpperCases] = float64(text.CountUpperWords(raw))

	// Remaining text features operate on the (optionally) cleaned text.
	body := raw
	if e.cfg.Preprocess {
		body = text.Clean(raw, e.cleanOpts)
	}
	tokens := text.Tokenize(body)
	x[MeanWordLength] = text.MeanWordLength(tokens)
	x[WordsPerSentence] = e.wordsPerSentence(raw, len(tokens))

	counts := e.tagger.Count(tokens)
	x[CntAdjectives] = float64(counts.Adjectives)
	x[CntAdverbs] = float64(counts.Adverbs)
	x[CntVerbs] = float64(counts.Verbs)

	score := e.sentiment.Analyze(body)
	x[SentimentScorePos] = float64(score.Positive)
	x[SentimentScoreNeg] = float64(score.Negative)

	x[CntSwearWords] = float64(lexicon.CountSwears(tokens))
	x[BoWScore] = e.bow.Score(tokens)
}

// wordsPerSentence computes the mean sentence length. With preprocessing
// on, sentence boundaries come from entity-stripped text (URL dots would
// otherwise fabricate boundaries) and word counts from the fully cleaned
// tokens; with preprocessing off, the raw text is used for both — one of
// the noise sources that makes p=OFF less stable in Fig. 6.
func (e *Extractor) wordsPerSentence(raw string, tokenCount int) float64 {
	if !e.cfg.Preprocess {
		return text.WordsPerSentence(raw)
	}
	sentences := text.SplitSentences(text.Clean(raw, e.sentOpts))
	if len(sentences) == 0 {
		return 0
	}
	return float64(tokenCount) / float64(len(sentences))
}

// Learn updates the adaptive bag-of-words with a labeled tweet. Aggressive
// covers the abusive and hateful labels, per §IV-B.
func (e *Extractor) Learn(tw *twitterdata.Tweet) {
	if !tw.IsLabeled() {
		return
	}
	body := tw.Text
	if e.cfg.Preprocess {
		body = text.Clean(tw.Text, e.cleanOpts)
	}
	aggressive := tw.Label == twitterdata.LabelAbusive || tw.Label == twitterdata.LabelHateful
	e.bow.Learn(text.Tokenize(body), aggressive)
}
