//go:build !race

package feature

// raceEnabled reports whether the race detector is active; its
// instrumentation allocates inside sync.Pool, so the zero-allocation
// assertions only hold without it.
const raceEnabled = false
