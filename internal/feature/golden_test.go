package feature

import (
	"fmt"
	"strings"
	"testing"

	"redhanded/internal/twitterdata"
)

// TestGoldenEquivalence is the fast path's contract: over the full
// synthetic generator corpus — every class profile, every day, with the
// adaptive BoW learning and enhancing between extractions — the single-pass
// ExtractInto must produce bit-identical feature vectors to the legacy
// Clean+Tokenize+BoW implementation.
func TestGoldenEquivalence(t *testing.T) {
	cfg := twitterdata.AggressionConfig{
		Seed:         7,
		Days:         10,
		NormalCount:  6300,
		AbusiveCount: 3200,
		HatefulCount: 1200,
	}
	tweets := twitterdata.GenerateAggression(cfg)
	if len(tweets) < 10000 {
		t.Fatalf("corpus too small: %d tweets", len(tweets))
	}
	// Unlabeled generator traffic exercises the same profiles through the
	// endless source (slang drift included).
	unlabeled := twitterdata.NewUnlabeledSource(11, cfg.Days)
	for i := 0; i < 2000; i++ {
		tweets = append(tweets, unlabeled.Next())
	}

	e := NewExtractor(DefaultConfig())
	fast := make([]float64, NumFeatures)
	slow := make([]float64, NumFeatures)
	for i := range tweets {
		tw := &tweets[i]
		e.extractLegacyInto(slow, tw)
		e.ExtractInto(fast, tw)
		if diff := vectorDiff(slow, fast); diff != "" {
			t.Fatalf("tweet %d (%q): %s", i, tw.Text, diff)
		}
		// Learning evolves the vocabulary (and the lock-free snapshot) so
		// later iterations compare against a shifting BoW.
		e.Learn(tw)
	}
	if e.BoW().Size() <= 347 && e.BoW().Additions() == 0 {
		t.Log("warning: BoW never adapted during the golden run")
	}
}

// TestGoldenEquivalenceStemmed covers the (allocating) stemmed BoW
// configuration of the fast path.
func TestGoldenEquivalenceStemmed(t *testing.T) {
	bowCfg := DefaultBoWConfig()
	bowCfg.Stem = true
	e := NewExtractor(Config{Preprocess: true, BoW: bowCfg})
	g := twitterdata.NewGenerator(3, 5)
	fast := make([]float64, NumFeatures)
	slow := make([]float64, NumFeatures)
	for i := 0; i < 3000; i++ {
		tw := g.Tweet(i%3, i%5)
		tw.Label = []string{twitterdata.LabelNormal, twitterdata.LabelAbusive, twitterdata.LabelHateful}[i%3]
		e.extractLegacyInto(slow, &tw)
		e.ExtractInto(fast, &tw)
		if diff := vectorDiff(slow, fast); diff != "" {
			t.Fatalf("tweet %d (%q): %s", i, tw.Text, diff)
		}
		e.Learn(&tw)
	}
}

// vectorDiff reports the first mismatching feature, or "" when the vectors
// are bit-identical.
func vectorDiff(want, got []float64) string {
	if len(want) != len(got) {
		return fmt.Sprintf("length %d vs %d", len(want), len(got))
	}
	var b strings.Builder
	for i := range want {
		if want[i] != got[i] {
			fmt.Fprintf(&b, "feature %s: legacy %v, fast %v; ", Name(i), want[i], got[i])
		}
	}
	return b.String()
}
