// Package feature implements the feature-extraction step of the pipeline:
// the paper's 16 profile, text, and network features (Fig. 5) plus the
// adaptive bag-of-words feature of §IV-B that tracks vocabulary shifts in
// aggressive tweets over time.
package feature

// Feature indices in the extracted vector. The names match the labels the
// paper uses in Figures 4 and 5.
const (
	AccountAge        = iota // profile: account age in days
	CntPosts                 // profile: statuses posted
	CntLists                 // profile: list subscriptions
	CntFollowers             // network: in-degree popularity
	CntFriends               // network: out-degree popularity
	NumHashtags              // text/basic: '#' tokens in the raw text
	NumUpperCases            // text/basic: all-caps words
	NumURLs                  // text/basic: URL tokens
	CntAdjectives            // text/syntactic: POS adjective count
	CntAdverbs               // text/syntactic: POS adverb count
	CntVerbs                 // text/syntactic: POS verb count
	WordsPerSentence         // text/stylistic: mean words per sentence
	MeanWordLength           // text/stylistic: mean letters per word
	SentimentScorePos        // text/sentiment: positive strength [1..5]
	SentimentScoreNeg        // text/sentiment: negative strength [-5..-1]
	CntSwearWords            // text: swear-list hits
	BoWScore                 // adaptive bag-of-words hits

	// NumFeatures is the vector length.
	NumFeatures
)

// profileFeatureCount is the number of leading per-user slots (AccountAge
// through CntFriends). Everything at and above this index is a pure
// function of (text, BoW snapshot), which is what makes the extraction
// cache sound: only slots [profileFeatureCount:] are served from cache,
// the profile prefix is recomputed per tweet. The compile-time pin below
// breaks the build if a reordering ever moves a profile slot past it.
const profileFeatureCount = CntFriends + 1

var _ = [1]struct{}{}[profileFeatureCount-NumHashtags] // NumHashtags must be the first cached slot

// Names lists the feature names in index order.
var Names = [NumFeatures]string{
	"accountAge", "cntPosts", "cntLists", "cntFollowers", "cntFriends",
	"numHashtags", "numUpperCases", "numUrls", "cntAdjective", "cntAdverbs",
	"cntVerbs", "wordsPerSentence", "meanWordLength", "sentimentScorePos",
	"sentimentScoreNeg", "cntSwearWords", "bowScore",
}

// Name returns the name of feature i ("?" when out of range).
func Name(i int) string {
	if i < 0 || i >= NumFeatures {
		return "?"
	}
	return Names[i]
}

// Index returns the index of the named feature, or -1.
func Index(name string) int {
	for i, n := range Names {
		if n == name {
			return i
		}
	}
	return -1
}
