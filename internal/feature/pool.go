package feature

import "sync"

// Vec is a fixed-size raw feature vector drawn from a process-wide pool.
// The pool exists for the extraction hot paths: the serving pipeline and
// the parallel engine workers extract into pooled vectors, observe them
// into the normalizer statistics, normalize into the (escaping) instance
// slice, and return the raw vector — so steady-state extraction allocates
// nothing per tweet.
//
// Ownership rules: a Vec obtained from GetVec belongs to the caller until
// PutVec; after PutVec the caller must not retain any slice of it (v[:]
// included). Values that outlive the request — ml.Instance.X, checkpoint
// state — must be copies, never pooled backing arrays.
type Vec [NumFeatures]float64

var vecPool = sync.Pool{New: func() any { return new(Vec) }}

// GetVec returns a zeroed feature vector from the pool.
func GetVec() *Vec {
	v := vecPool.Get().(*Vec)
	*v = Vec{}
	return v
}

// PutVec returns v to the pool. Passing nil is a no-op.
func PutVec(v *Vec) {
	if v != nil {
		vecPool.Put(v)
	}
}
