package feature

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"redhanded/internal/text/lexicon"
	"redhanded/internal/text/stem"
)

// BoWConfig tunes the adaptive bag-of-words.
type BoWConfig struct {
	// UpdateEvery is how many labeled tweets pass between enhancement
	// rounds ("periodically enhanced based on tweet content").
	UpdateEvery int
	// MinAggressiveRate is the minimum per-tweet occurrence rate in
	// aggressive tweets for a word to be considered.
	MinAggressiveRate float64
	// MinRatio is how many times more frequent a word must be in
	// aggressive than in normal tweets to enter the BoW.
	MinRatio float64
	// Decay is the multiplicative factor applied to the rolling word
	// statistics at every enhancement round, so the BoW tracks *current*
	// vocabulary rather than all history.
	Decay float64
	// MaxVocab caps each rolling table's size (memory bound).
	MaxVocab int
	// Frozen disables adaptation: the BoW stays at the seed list. This is
	// the paper's "fixed bag-of-words" baseline (ad=OFF in the figures).
	Frozen bool
	// Stem applies Porter stemming to tokens (and the seed list) so that
	// inflected forms of aggressive vocabulary consolidate onto one stem
	// and cross the admission threshold sooner. Off by default to match
	// the paper's word-level BoW.
	Stem bool
}

// DefaultBoWConfig returns the settings used by the experiments.
func DefaultBoWConfig() BoWConfig {
	return BoWConfig{
		UpdateEvery:       500,
		MinAggressiveRate: 0.005,
		MinRatio:          3,
		Decay:             0.996,
		MaxVocab:          50000,
	}
}

func (c BoWConfig) withDefaults() BoWConfig {
	d := DefaultBoWConfig()
	if c.UpdateEvery == 0 {
		c.UpdateEvery = d.UpdateEvery
	}
	if c.MinAggressiveRate == 0 {
		c.MinAggressiveRate = d.MinAggressiveRate
	}
	if c.MinRatio == 0 {
		c.MinRatio = d.MinRatio
	}
	if c.Decay == 0 {
		c.Decay = d.Decay
	}
	if c.MaxVocab == 0 {
		c.MaxVocab = d.MaxVocab
	}
	return c
}

// wordTable is a decayed word-frequency table for one side (aggressive or
// normal tweets).
type wordTable struct {
	counts map[string]float64
	tweets float64
}

func newWordTable() *wordTable {
	return &wordTable{counts: make(map[string]float64)}
}

func (t *wordTable) observe(tokens []string) {
	t.tweets++
	seen := map[string]bool{}
	for _, tok := range tokens {
		if len(tok) < 2 || seen[tok] {
			continue // per-tweet presence counting
		}
		seen[tok] = true
		t.counts[tok]++
	}
}

// rate returns the fraction of tweets containing the word.
func (t *wordTable) rate(w string) float64 {
	if t.tweets == 0 {
		return 0
	}
	return t.counts[w] / t.tweets
}

func (t *wordTable) decay(factor float64) {
	t.tweets *= factor
	for w, c := range t.counts {
		c *= factor
		if c < 0.05 {
			delete(t.counts, w)
		} else {
			t.counts[w] = c
		}
	}
}

// prune drops the lowest-count words until the table fits maxVocab.
func (t *wordTable) prune(maxVocab int) {
	if len(t.counts) <= maxVocab {
		return
	}
	type wc struct {
		w string
		c float64
	}
	all := make([]wc, 0, len(t.counts))
	for w, c := range t.counts {
		all = append(all, wc{w, c})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].c > all[j].c })
	for _, e := range all[maxVocab:] {
		delete(t.counts, e.w)
	}
}

// AdaptiveBoW is the adaptive bag-of-words feature of §IV-B: it starts
// from the 347-entry swear-word seed list, tracks rolling word statistics
// for aggressive (abusive or hateful) and normal tweets, adds words that
// occur frequently in aggressive tweets but not in normal ones, and drops
// learned words that become popular in normal tweets while losing traction
// in aggressive ones. Seed words are permanent. AdaptiveBoW is safe for
// concurrent use.
type AdaptiveBoW struct {
	mu          sync.RWMutex
	cfg         BoWConfig
	words       map[string]bool
	seed        map[string]bool
	aggressive  *wordTable
	normal      *wordTable
	sinceUpdate int
	additions   int
	removals    int

	// snap is the lock-free membership view used by the extraction fast
	// path: an immutable open-addressed hash table rebuilt whenever the
	// vocabulary changes, so per-tweet scoring does neither map hashing
	// with string conversion nor mutex hops.
	snap atomic.Pointer[bowSnapshot]
	// snapVersion numbers snapshot publications; only touched by
	// rebuildSnapshot under the write lock (or during construction).
	snapVersion uint64
}

// bowSnapshot is an immutable open-addressed (linear probing) string set.
// Vocabulary mutations build a fresh table; readers only ever load the
// pointer once per tweet and probe. Empty slots hold ""; the empty string
// is never a vocabulary word (seed words and learned words are non-empty).
type bowSnapshot struct {
	mask uint32
	keys []string
	// stem mirrors the BoW's canonicalization config at snapshot time, so
	// fast-path readers never touch the (lock-guarded) cfg.
	stem bool
	// version is a monotone publication counter. It travels with the
	// snapshot pointer so readers observe (membership, version) as one
	// consistent pair; the extraction cache keys cached vectors by it so a
	// vocabulary change can never serve a stale text score.
	version uint64
}

// fnv1a and fnv1aString are the FNV-1a 32-bit hash over the token bytes;
// insert (newBowSnapshot) and lookup (contains/containsString) must share
// these so the probe sequences line up.
func fnv1a(w []byte) uint32 {
	h := uint32(2166136261)
	for _, c := range w {
		h ^= uint32(c)
		h *= 16777619
	}
	return h
}

func fnv1aString(w string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(w); i++ {
		h ^= uint32(w[i])
		h *= 16777619
	}
	return h
}

func newBowSnapshot(words map[string]bool, stemmed bool) *bowSnapshot {
	size := uint32(1)
	for size < uint32(len(words))*2+1 {
		size <<= 1
	}
	s := &bowSnapshot{mask: size - 1, keys: make([]string, size), stem: stemmed}
	for w := range words {
		if w == "" {
			continue
		}
		for i := fnv1aString(w) & s.mask; ; i = (i + 1) & s.mask {
			if s.keys[i] == "" {
				s.keys[i] = w
				break
			}
		}
	}
	return s
}

// contains reports membership of an already-canonicalized (lowercased and,
// if configured, stemmed) token.
func (s *bowSnapshot) contains(w []byte) bool {
	if s == nil || len(w) == 0 {
		return false
	}
	for i := fnv1a(w) & s.mask; ; i = (i + 1) & s.mask {
		k := s.keys[i]
		if k == "" {
			return false
		}
		if k == string(w) {
			return true
		}
	}
}

// containsString is contains for the (allocating) stemmed-token path.
func (s *bowSnapshot) containsString(w string) bool {
	if s == nil || w == "" {
		return false
	}
	for i := fnv1aString(w) & s.mask; ; i = (i + 1) & s.mask {
		k := s.keys[i]
		if k == "" {
			return false
		}
		if k == w {
			return true
		}
	}
}

// rebuildSnapshot refreshes the lock-free view. Callers hold the write
// lock (or are constructing the BoW).
func (b *AdaptiveBoW) rebuildSnapshot() {
	b.snapVersion++
	s := newBowSnapshot(b.words, b.cfg.Stem)
	s.version = b.snapVersion
	b.snap.Store(s)
}

// SnapshotVersion returns the publication counter of the current
// membership snapshot (monotone; bumps on every vocabulary republication).
func (b *AdaptiveBoW) SnapshotVersion() uint64 {
	return b.snap.Load().version
}

// lookupSnapshot returns the current lock-free membership view for
// fast-path scoring within the feature package.
func (b *AdaptiveBoW) lookupSnapshot() *bowSnapshot {
	return b.snap.Load()
}

// NewAdaptiveBoW creates the feature seeded with the swear-word lexicon.
func NewAdaptiveBoW(cfg BoWConfig) *AdaptiveBoW {
	b := &AdaptiveBoW{
		cfg:        cfg.withDefaults(),
		words:      make(map[string]bool),
		seed:       make(map[string]bool),
		aggressive: newWordTable(),
		normal:     newWordTable(),
	}
	for _, w := range lexicon.SwearWords() {
		w = b.canon(w)
		b.words[w] = true
		b.seed[w] = true
	}
	b.rebuildSnapshot()
	return b
}

// canon maps a token to its lookup key (lower case, optionally stemmed).
func (b *AdaptiveBoW) canon(tok string) string {
	tok = strings.ToLower(tok)
	if b.cfg.Stem {
		tok = stem.Stem(tok)
	}
	return tok
}

// Size returns the current number of words in the BoW (Fig. 10's y-axis).
func (b *AdaptiveBoW) Size() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.words)
}

// Additions returns how many words have been added over time.
func (b *AdaptiveBoW) Additions() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.additions
}

// Removals returns how many learned words have been evicted.
func (b *AdaptiveBoW) Removals() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.removals
}

// Words returns a snapshot of the current BoW contents, used to broadcast
// the vocabulary to remote tasks each micro-batch.
func (b *AdaptiveBoW) Words() []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]string, 0, len(b.words))
	for w := range b.words {
		out = append(out, w)
	}
	return out
}

// SetWords replaces the BoW contents with a broadcast snapshot (remote
// executor side). Rolling statistics are untouched; remote BoWs never
// adapt locally — adaptation happens at the driver.
func (b *AdaptiveBoW) SetWords(words []string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.words = make(map[string]bool, len(words))
	for _, w := range words {
		b.words[w] = true
	}
	b.rebuildSnapshot()
}

// AppendWords adds broadcast words without touching existing membership —
// the executor side of the cluster's vocabulary diff protocol, where the
// driver ships only the words appended since the version the executor
// already holds. Appending an empty diff is free.
func (b *AdaptiveBoW) AppendWords(words []string) {
	if len(words) == 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, w := range words {
		b.words[w] = true
	}
	b.rebuildSnapshot()
}

// Contains reports membership of the lower-cased token.
func (b *AdaptiveBoW) Contains(token string) bool {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.words[b.canon(token)]
}

// Score counts how many tokens are BoW members (the feature value).
func (b *AdaptiveBoW) Score(tokens []string) float64 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	n := 0.0
	for _, tok := range tokens {
		if b.words[b.canon(tok)] {
			n++
		}
	}
	return n
}

// Learn folds one labeled tweet's tokens into the rolling statistics and
// periodically runs the enhancement round. Tokens should be the cleaned,
// tokenized tweet text; aggressive marks abusive-or-hateful labels.
func (b *AdaptiveBoW) Learn(tokens []string, aggressive bool) {
	if b.cfg.Frozen {
		return
	}
	lower := make([]string, 0, len(tokens))
	for _, tok := range tokens {
		lower = append(lower, b.canon(tok))
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if aggressive {
		b.aggressive.observe(lower)
	} else {
		b.normal.observe(lower)
	}
	b.sinceUpdate++
	if b.sinceUpdate >= b.cfg.UpdateEvery {
		b.sinceUpdate = 0
		b.enhance()
	}
}

// enhance applies the add/remove rules. Callers hold the write lock.
func (b *AdaptiveBoW) enhance() {
	if b.aggressive.tweets < 50 || b.normal.tweets < 50 {
		return // not enough evidence yet
	}
	for w := range b.aggressive.counts {
		if b.words[w] {
			continue
		}
		ra := b.aggressive.rate(w)
		rn := b.normal.rate(w)
		if ra >= b.cfg.MinAggressiveRate && ra >= b.cfg.MinRatio*maxf(rn, 1e-6) {
			b.words[w] = true
			b.additions++
		}
	}
	for w := range b.words {
		if b.seed[w] {
			continue
		}
		ra := b.aggressive.rate(w)
		rn := b.normal.rate(w)
		if rn > ra {
			delete(b.words, w)
			b.removals++
		}
	}
	b.aggressive.decay(b.cfg.Decay)
	b.normal.decay(b.cfg.Decay)
	b.aggressive.prune(b.cfg.MaxVocab)
	b.normal.prune(b.cfg.MaxVocab)
	b.rebuildSnapshot()
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
