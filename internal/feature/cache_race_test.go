package feature

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"redhanded/internal/twitterdata"
)

// TestCacheConcurrentReadsVsRepublication drives lock-free cache readers
// against a writer republishing BoW snapshots and proves no stale-vector
// serve: the appended vocabulary grows monotonically, so the BoW score a
// reader observes must lie between the scores implied by the snapshot
// versions bracketing its extraction — and must equal it exactly when the
// version was stable across the call. Run under -race this also checks the
// memory model of the slot pointers and the version plumbing.
func TestCacheConcurrentReadsVsRepublication(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CacheEntries = 2048
	ex := NewExtractor(cfg)

	const rounds = 64
	words := make([]string, rounds)
	for i := range words {
		// Purely alphabetic so the tokenizer keeps each as one word, and
		// prefixed so none collide with the seed lexicon.
		words[i] = fmt.Sprintf("qzvw%c%cword", 'a'+i/26, 'a'+i%26)
	}
	// The probe text contains every word the writer will ever append, each
	// once: under snapshot version v0+k its BoW score is exactly k.
	text := strings.Join(words, " ")
	v0 := ex.BoW().SnapshotVersion()

	// Pre-verify the score model sequentially before going concurrent.
	probe := twitterdata.Tweet{Text: text}
	x := make([]float64, NumFeatures)
	ex.ExtractInto(x, &probe)
	if x[BoWScore] != 0 {
		t.Fatalf("score model broken: baseline score %v, want 0", x[BoWScore])
	}

	var wg sync.WaitGroup
	done := make(chan struct{})
	errs := make(chan string, 16)

	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			tw := twitterdata.Tweet{Text: text, User: twitterdata.User{FollowersCount: 100 + r}}
			vec := make([]float64, NumFeatures)
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				v1 := ex.BoW().SnapshotVersion()
				ex.ExtractCachedInto(vec, &tw)
				v2 := ex.BoW().SnapshotVersion()
				score := int64(vec[BoWScore])
				lo, hi := int64(v1-v0), int64(v2-v0)
				if score < lo || score > hi {
					select {
					case errs <- fmt.Sprintf("stale or torn vector: score %d outside version window [%d,%d]", score, lo, hi):
					default:
					}
					return
				}
				if vec[CntFollowers] != float64(100+r) {
					select {
					case errs <- fmt.Sprintf("profile slot served from cache: followers %v, want %d", vec[CntFollowers], 100+r):
					default:
					}
					return
				}
			}
		}(r)
	}

	// Writer: one republication per appended word, interleaved with reads.
	for i := 0; i < rounds; i++ {
		ex.BoW().AppendWords(words[i : i+1])
	}
	close(done)
	wg.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}

	// Quiesced: the final version must serve the full score, cache or not.
	ex.ExtractCachedInto(x, &probe)
	if x[BoWScore] != rounds {
		t.Fatalf("final score %v, want %d", x[BoWScore], rounds)
	}
	ex.ExtractCachedInto(x, &probe)
	if x[BoWScore] != rounds {
		t.Fatalf("final cached score %v, want %d", x[BoWScore], rounds)
	}
}
