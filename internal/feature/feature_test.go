package feature

import (
	"testing"
	"time"

	"redhanded/internal/text/lexicon"
	"redhanded/internal/twitterdata"
)

func tweetWith(textBody string) *twitterdata.Tweet {
	posted := time.Date(2017, 6, 10, 12, 0, 0, 0, time.UTC)
	return &twitterdata.Tweet{
		IDStr:     "1",
		Text:      textBody,
		CreatedAt: posted.Format(twitterdata.TimeLayout),
		User: twitterdata.User{
			CreatedAt:      posted.AddDate(0, 0, -500).Format(twitterdata.TimeLayout),
			FollowersCount: 100,
			FriendsCount:   50,
			StatusesCount:  1000,
			ListedCount:    5,
		},
	}
}

func TestSchemaNames(t *testing.T) {
	if len(Names) != NumFeatures {
		t.Fatalf("Names length %d != NumFeatures %d", len(Names), NumFeatures)
	}
	if Name(CntSwearWords) != "cntSwearWords" {
		t.Fatalf("Name(CntSwearWords) = %q", Name(CntSwearWords))
	}
	if Name(-1) != "?" || Name(NumFeatures) != "?" {
		t.Fatalf("out-of-range names wrong")
	}
	if Index("accountAge") != AccountAge || Index("nope") != -1 {
		t.Fatalf("Index lookups wrong")
	}
	// All names distinct.
	seen := map[string]bool{}
	for _, n := range Names {
		if seen[n] {
			t.Fatalf("duplicate feature name %q", n)
		}
		seen[n] = true
	}
}

func TestExtractProfileAndNetwork(t *testing.T) {
	e := NewExtractor(DefaultConfig())
	x := e.Extract(tweetWith("hello"))
	if x[AccountAge] < 499 || x[AccountAge] > 501 {
		t.Errorf("accountAge = %v, want ~500", x[AccountAge])
	}
	if x[CntPosts] != 1000 || x[CntLists] != 5 || x[CntFollowers] != 100 || x[CntFriends] != 50 {
		t.Errorf("profile/network features wrong: %v", x)
	}
}

func TestExtractBasicTextFeatures(t *testing.T) {
	e := NewExtractor(DefaultConfig())
	x := e.Extract(tweetWith("WOW THIS is #great #stuff see http://x.co now"))
	if x[NumHashtags] != 2 {
		t.Errorf("hashtags = %v, want 2", x[NumHashtags])
	}
	if x[NumURLs] != 1 {
		t.Errorf("urls = %v, want 1", x[NumURLs])
	}
	if x[NumUpperCases] != 2 { // WOW, THIS
		t.Errorf("upper = %v, want 2", x[NumUpperCases])
	}
}

func TestExtractSwearsAndSentiment(t *testing.T) {
	e := NewExtractor(DefaultConfig())
	x := e.Extract(tweetWith("you are a fucking bitch and I hate you"))
	if x[CntSwearWords] < 2 {
		t.Errorf("swears = %v, want >= 2", x[CntSwearWords])
	}
	if x[SentimentScoreNeg] > -3 {
		t.Errorf("negative sentiment = %v, want <= -3", x[SentimentScoreNeg])
	}
	if x[BoWScore] < 2 {
		t.Errorf("bow score = %v, want >= 2 (seed words)", x[BoWScore])
	}
	pos := e.Extract(tweetWith("what a wonderful lovely day"))
	if pos[SentimentScorePos] < 3 {
		t.Errorf("positive sentiment = %v, want >= 3", pos[SentimentScorePos])
	}
}

func TestExtractStylistic(t *testing.T) {
	e := NewExtractor(DefaultConfig())
	x := e.Extract(tweetWith("one two three. four five six."))
	if x[WordsPerSentence] != 3 {
		t.Errorf("wordsPerSentence = %v, want 3", x[WordsPerSentence])
	}
	if x[MeanWordLength] <= 0 {
		t.Errorf("meanWordLength = %v, want > 0", x[MeanWordLength])
	}
}

func TestExtractSyntactic(t *testing.T) {
	e := NewExtractor(DefaultConfig())
	x := e.Extract(tweetWith("the ugly dog runs quickly"))
	if x[CntAdjectives] < 1 || x[CntAdverbs] < 1 || x[CntVerbs] < 1 {
		t.Errorf("POS counts wrong: adj=%v adv=%v verb=%v",
			x[CntAdjectives], x[CntAdverbs], x[CntVerbs])
	}
}

func TestPreprocessingChangesTokenFeatures(t *testing.T) {
	on := NewExtractor(Config{Preprocess: true, BoW: DefaultBoWConfig()})
	off := NewExtractor(Config{Preprocess: false, BoW: DefaultBoWConfig()})
	tw := tweetWith("RT @user fuck http://spam.example 12345 #tag")
	xOn := on.Extract(tw)
	xOff := off.Extract(tw)
	// Raw-text counters are identical either way.
	if xOn[NumHashtags] != xOff[NumHashtags] || xOn[NumURLs] != xOff[NumURLs] {
		t.Errorf("raw counters should not depend on preprocessing")
	}
	// Token-derived features differ: the URL/number junk pollutes tokens.
	if xOn[MeanWordLength] == xOff[MeanWordLength] {
		t.Errorf("preprocessing should change meanWordLength (on=%v off=%v)",
			xOn[MeanWordLength], xOff[MeanWordLength])
	}
}

func TestExtractEmptyTweet(t *testing.T) {
	e := NewExtractor(DefaultConfig())
	x := e.Extract(tweetWith(""))
	if len(x) != NumFeatures {
		t.Fatalf("vector length %d != %d", len(x), NumFeatures)
	}
	for i, v := range x[NumHashtags:] {
		if v != 0 && i+NumHashtags != SentimentScorePos && i+NumHashtags != SentimentScoreNeg {
			t.Errorf("empty text feature %s = %v, want 0", Name(i+NumHashtags), v)
		}
	}
	// Sentiment of empty text is the neutral {1,-1}.
	if x[SentimentScorePos] != 1 || x[SentimentScoreNeg] != -1 {
		t.Errorf("empty text sentiment = (%v,%v), want (1,-1)",
			x[SentimentScorePos], x[SentimentScoreNeg])
	}
}

func TestBoWSeedSize(t *testing.T) {
	b := NewAdaptiveBoW(DefaultBoWConfig())
	if b.Size() != lexicon.SeedSwearCount {
		t.Fatalf("initial BoW size = %d, want %d", b.Size(), lexicon.SeedSwearCount)
	}
}

func TestBoWLearnsAggressiveVocabulary(t *testing.T) {
	cfg := DefaultBoWConfig()
	cfg.UpdateEvery = 100
	b := NewAdaptiveBoW(cfg)
	// "zorp" appears in most aggressive tweets, never in normal ones.
	for i := 0; i < 300; i++ {
		b.Learn([]string{"you", "zorp", "idiot"}, true)
		b.Learn([]string{"have", "a", "day"}, false)
	}
	if !b.Contains("zorp") {
		t.Fatalf("frequent aggressive word not added (size=%d, adds=%d)", b.Size(), b.Additions())
	}
	if b.Contains("day") {
		t.Fatalf("normal vocabulary should not enter the BoW")
	}
}

func TestBoWEvictsWordsGoneNormal(t *testing.T) {
	cfg := DefaultBoWConfig()
	cfg.UpdateEvery = 100
	cfg.Decay = 0.9
	b := NewAdaptiveBoW(cfg)
	for i := 0; i < 300; i++ {
		b.Learn([]string{"zorp", "loser"}, true)
		b.Learn([]string{"nice", "day"}, false)
	}
	if !b.Contains("zorp") {
		t.Skip("precondition failed: word never learned")
	}
	// The word flips: now popular in normal tweets, absent from aggressive.
	for i := 0; i < 1000; i++ {
		b.Learn([]string{"zorp", "nice"}, false)
		if i%5 == 0 {
			b.Learn([]string{"loser"}, true)
		}
	}
	if b.Contains("zorp") {
		t.Fatalf("flipped word not evicted (removals=%d)", b.Removals())
	}
}

func TestBoWSeedsArePermanent(t *testing.T) {
	cfg := DefaultBoWConfig()
	cfg.UpdateEvery = 50
	b := NewAdaptiveBoW(cfg)
	// Seed word appears heavily in normal tweets.
	for i := 0; i < 500; i++ {
		b.Learn([]string{"fuck", "yeah"}, false)
		b.Learn([]string{"idiot"}, true)
	}
	if !b.Contains("fuck") {
		t.Fatalf("seed word was evicted")
	}
	if b.Size() < lexicon.SeedSwearCount {
		t.Fatalf("BoW shrank below seed size: %d", b.Size())
	}
}

func TestBoWFrozen(t *testing.T) {
	cfg := DefaultBoWConfig()
	cfg.Frozen = true
	cfg.UpdateEvery = 10
	b := NewAdaptiveBoW(cfg)
	for i := 0; i < 200; i++ {
		b.Learn([]string{"zorp"}, true)
		b.Learn([]string{"day"}, false)
	}
	if b.Size() != lexicon.SeedSwearCount {
		t.Fatalf("frozen BoW changed size: %d", b.Size())
	}
}

func TestBoWScore(t *testing.T) {
	b := NewAdaptiveBoW(DefaultBoWConfig())
	if s := b.Score([]string{"FUCK", "this", "shit"}); s != 2 {
		t.Fatalf("score = %v, want 2 (case-insensitive seeds)", s)
	}
	if s := b.Score(nil); s != 0 {
		t.Fatalf("empty score = %v", s)
	}
}

func TestBoWStemmingConsolidatesInflections(t *testing.T) {
	cfg := DefaultBoWConfig()
	cfg.Stem = true
	cfg.UpdateEvery = 100
	b := NewAdaptiveBoW(cfg)
	// Inflected forms of one coined word, spread across aggressive tweets.
	for i := 0; i < 300; i++ {
		b.Learn([]string{"zorping", "you", "fool"}, true)
		b.Learn([]string{"zorped", "idiot"}, true)
		b.Learn([]string{"nice", "day"}, false)
		b.Learn([]string{"good", "coffee"}, false)
	}
	// Any inflection must now hit via the shared stem.
	for _, form := range []string{"zorp", "zorping", "zorped", "zorps"} {
		if !b.Contains(form) {
			t.Errorf("stemmed BoW misses inflection %q", form)
		}
	}
	// Seeds match their inflections too ("fuckers" -> stem of "fucker").
	if !b.Contains("fuckers") {
		t.Errorf("stemmed BoW misses inflected seed")
	}
	// Without stemming the unseen inflection does not match.
	plain := NewAdaptiveBoW(DefaultBoWConfig())
	for i := 0; i < 300; i++ {
		plain.Learn([]string{"zorping"}, true)
		plain.Learn([]string{"day"}, false)
	}
	if plain.Contains("zorps") {
		t.Errorf("plain BoW unexpectedly matches unseen inflection")
	}
}

func TestBoWSerializationRoundTrip(t *testing.T) {
	cfg := DefaultBoWConfig()
	cfg.UpdateEvery = 100
	a := NewAdaptiveBoW(cfg)
	for i := 0; i < 400; i++ {
		a.Learn([]string{"zorp", "idiot", "you"}, true)
		a.Learn([]string{"nice", "day", "today"}, false)
	}
	blob, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	b := NewAdaptiveBoW(DefaultBoWConfig())
	if err := b.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if a.Size() != b.Size() || a.Additions() != b.Additions() {
		t.Fatalf("state mismatch: size %d/%d adds %d/%d", a.Size(), b.Size(), a.Additions(), b.Additions())
	}
	// Both must evolve identically from here.
	for i := 0; i < 400; i++ {
		a.Learn([]string{"blick", "loser"}, true)
		b.Learn([]string{"blick", "loser"}, true)
		a.Learn([]string{"coffee"}, false)
		b.Learn([]string{"coffee"}, false)
	}
	if a.Size() != b.Size() || a.Contains("blick") != b.Contains("blick") {
		t.Fatalf("BoW diverged after restore")
	}
	if err := b.UnmarshalBinary([]byte("junk")); err == nil {
		t.Fatalf("garbage BoW state accepted")
	}
}

func TestExtractorLearnUpdatesBoW(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BoW.UpdateEvery = 50
	e := NewExtractor(cfg)
	tw := tweetWith("you are a total zork")
	tw.Label = twitterdata.LabelAbusive
	normal := tweetWith("lovely weather in town today")
	normal.Label = twitterdata.LabelNormal
	for i := 0; i < 200; i++ {
		e.Learn(tw)
		e.Learn(normal)
	}
	if !e.BoW().Contains("zork") {
		t.Fatalf("extractor.Learn did not feed the BoW")
	}
	// Unlabeled tweets must not affect the BoW.
	sizeBefore := e.BoW().Size()
	un := tweetWith("unlabeled zork zork")
	for i := 0; i < 200; i++ {
		e.Learn(un)
	}
	if e.BoW().Size() != sizeBefore {
		t.Fatalf("unlabeled tweets changed the BoW")
	}
}

// TestBoWAppendWords covers the executor side of the cluster vocabulary
// diff protocol: appends extend membership without touching existing
// words, empty diffs are no-ops, and the lock-free snapshot follows.
func TestBoWAppendWords(t *testing.T) {
	b := NewAdaptiveBoW(BoWConfig{Frozen: true})
	b.SetWords([]string{"alpha", "beta"})
	b.AppendWords(nil) // empty diff: free
	if b.Size() != 2 {
		t.Fatalf("size after empty append = %d, want 2", b.Size())
	}
	b.AppendWords([]string{"gamma", "delta"})
	if b.Size() != 4 {
		t.Fatalf("size after append = %d, want 4", b.Size())
	}
	for _, w := range []string{"alpha", "beta", "gamma", "delta"} {
		if !b.Contains(w) {
			t.Errorf("BoW lost %q", w)
		}
		// The fast-path snapshot must see appended words too.
		if !b.lookupSnapshot().contains([]byte(w)) {
			t.Errorf("snapshot missing %q after append", w)
		}
	}
}
