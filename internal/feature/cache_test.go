package feature

import (
	"fmt"
	"testing"

	"redhanded/internal/twitterdata"
)

// TestCacheHitEqualsFreshExtraction is invariant 9: every cache-served
// vector is bit-for-bit identical to a fresh extraction, including the
// per-user profile slots, across a duplicate-heavy corpus.
func TestCacheHitEqualsFreshExtraction(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CacheEntries = 4096
	ex := NewExtractor(cfg)
	ref := NewExtractor(DefaultConfig()) // cache disabled

	tweets := twitterdata.GenerateAggression(twitterdata.AggressionConfig{
		Seed: 11, Days: 2, NormalCount: 150, AbusiveCount: 60, HatefulCount: 30,
	})
	// Two passes: the second is duplicate-by-construction, so it must be
	// served from cache and still match the reference extractor exactly.
	for pass := 0; pass < 2; pass++ {
		for i := range tweets {
			// Vary the user on the second pass to prove profile slots are
			// recomputed per tweet, not served from cache.
			tw := tweets[i]
			if pass == 1 {
				tw.User.FollowersCount += 1000
				tw.User.StatusesCount += 7
			}
			got := make([]float64, NumFeatures)
			want := make([]float64, NumFeatures)
			ex.ExtractCachedInto(got, &tw)
			ref.ExtractInto(want, &tw)
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("pass %d tweet %d: feature %s diverged: cache=%v fresh=%v",
						pass, i, Name(j), got[j], want[j])
				}
			}
		}
	}
	st := ex.CacheStats()
	if st.Hits == 0 {
		t.Fatal("expected cache hits on the duplicate pass")
	}
	if st.Misses == 0 {
		t.Fatal("expected cache misses on the first pass")
	}
}

// TestCacheInvalidationOnRepublication proves a vocabulary republication
// makes older entries unreachable: the same text re-extracts with the new
// membership instead of being served stale.
func TestCacheInvalidationOnRepublication(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CacheEntries = 256
	ex := NewExtractor(cfg)

	tw := twitterdata.Tweet{Text: "blargword blargword is everywhere today"}
	x := make([]float64, NumFeatures)
	ex.ExtractCachedInto(x, &tw)
	if x[BoWScore] != 0 {
		t.Fatalf("unexpected baseline BoW score %v", x[BoWScore])
	}
	// Warm the cache and confirm the hit.
	ex.ExtractCachedInto(x, &tw)
	if ex.CacheStats().Hits != 1 {
		t.Fatalf("expected exactly one hit, got %+v", ex.CacheStats())
	}

	v := ex.BoW().SnapshotVersion()
	ex.BoW().AppendWords([]string{"blargword"})
	if got := ex.BoW().SnapshotVersion(); got != v+1 {
		t.Fatalf("snapshot version did not bump: %d -> %d", v, got)
	}

	ex.ExtractCachedInto(x, &tw)
	if x[BoWScore] != 2 {
		t.Fatalf("stale vector served after republication: BoW score %v, want 2", x[BoWScore])
	}
}

// TestCacheEviction bounds the cache: overfilling a small cache evicts
// instead of growing.
func TestCacheEviction(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CacheEntries = 32 // 8 shards x 1 set x 4 ways
	ex := NewExtractor(cfg)

	x := make([]float64, NumFeatures)
	for i := 0; i < 500; i++ {
		tw := twitterdata.Tweet{Text: fmt.Sprintf("distinct text number %d with some filler words", i)}
		ex.ExtractCachedInto(x, &tw)
	}
	st := ex.CacheStats()
	if st.Evictions == 0 {
		t.Fatalf("expected evictions on an overfilled cache: %+v", st)
	}
	if st.Entries > st.Capacity {
		t.Fatalf("cache grew past capacity: %+v", st)
	}
	if st.Capacity != 32 {
		t.Fatalf("capacity = %d, want 32", st.Capacity)
	}
}

// TestCacheDisabledByDefault pins the back-compat contract: a zero-config
// extractor has no cache and LookupCached never hits.
func TestCacheDisabledByDefault(t *testing.T) {
	ex := NewExtractor(DefaultConfig())
	tw := twitterdata.Tweet{Text: "hello world"}
	x := make([]float64, NumFeatures)
	ex.ExtractCachedInto(x, &tw)
	if ex.LookupCached(x, &tw) {
		t.Fatal("cache hit on a cache-disabled extractor")
	}
	if st := ex.CacheStats(); st != (CacheStats{}) {
		t.Fatalf("expected zero stats, got %+v", st)
	}
}

func BenchmarkExtractCacheHit(b *testing.B) {
	cfg := DefaultConfig()
	cfg.CacheEntries = 1024
	ex := NewExtractor(cfg)
	tw := twitterdata.Tweet{
		IDStr:     "1",
		Text:      "you are a pathetic idiot and everyone will know it #news",
		CreatedAt: "Mon Jan 02 15:04:05 +0000 2006",
		User:      twitterdata.User{CreatedAt: "Mon Jan 02 15:04:05 +0000 2005", FollowersCount: 10},
	}
	x := GetVec()
	defer PutVec(x)
	ex.ExtractCachedInto(x[:], &tw)
	if !ex.LookupCached(x[:], &tw) {
		b.Fatal("expected warm cache")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !ex.LookupCached(x[:], &tw) {
			b.Fatal("cache miss")
		}
	}
}

// TestCacheHitZeroAlloc pins the lookup path's allocation budget (the
// FeatCacheLookup redvet gate); the race detector's instrumentation
// allocates, so the assertion only holds without it.
func TestCacheHitZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	cfg := DefaultConfig()
	cfg.CacheEntries = 1024
	ex := NewExtractor(cfg)
	tw := twitterdata.Tweet{
		Text:      "you are a pathetic idiot and everyone will know it #news",
		CreatedAt: "Mon Jan 02 15:04:05 +0000 2006",
		User:      twitterdata.User{CreatedAt: "Mon Jan 02 15:04:05 +0000 2005", FollowersCount: 10},
	}
	x := GetVec()
	defer PutVec(x)
	ex.ExtractCachedInto(x[:], &tw)
	allocs := testing.AllocsPerRun(200, func() {
		if !ex.LookupCached(x[:], &tw) {
			t.Fatal("cache miss")
		}
	})
	if allocs != 0 {
		t.Fatalf("cache hit allocates: %v allocs/op", allocs)
	}
}
