package feature

import (
	"strings"
	"testing"

	"redhanded/internal/twitterdata"
)

// FuzzExtractEquivalence drives the whole extractor — scanner, POS
// stepper, sentiment stepper, swear lookup, BoW snapshot — with arbitrary
// text and asserts the fast path matches the legacy path bit for bit.
func FuzzExtractEquivalence(f *testing.F) {
	seeds := []string{
		"",
		"RT @somebody: OMG this is SOOO bad, check http://t.co/abc123 the 2nd game!! #fail",
		"you are a fucking IDIOT and I hate you!!!",
		"what a wonderful lovely day :) xD",
		"not good. very bad! so haaappy?",
		"don't can't won't shan't 'tis",
		"😀 emoji 🎉 مرحبا שלום \xed\xa0\x80 \xff",
		"a" + strings.Repeat("o", 10000),
		"to run to the running THE RUNNING rt DM",
		"sh1t f#ck b!tch a$$ leetspeak",
		"I İstanbul K KELVIN ſtrange",
		"one. two! three? four\nfive",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	e := NewExtractor(DefaultConfig())
	f.Fuzz(func(t *testing.T, text string) {
		tw := twitterdata.Tweet{
			IDStr: "t1",
			Text:  text,
			User: twitterdata.User{
				IDStr:          "u1",
				FollowersCount: 3,
				FriendsCount:   5,
				StatusesCount:  7,
				ListedCount:    1,
			},
		}
		slow := make([]float64, NumFeatures)
		e.extractLegacyInto(slow, &tw)
		fast := e.ExtractInto(make([]float64, NumFeatures), &tw)
		if diff := vectorDiff(slow, fast); diff != "" {
			t.Fatalf("text %q: %s", text, diff)
		}
	})
}
