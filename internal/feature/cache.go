package feature

// Content-addressed extraction cache. Real aggression streams are heavily
// duplicated — retweets and copypasta routinely make up 25–40% of volume,
// and Terizi et al. show aggressive content is retweeted disproportionately
// — yet extraction cost is paid per tweet, not per distinct text. The cache
// memoizes the text-derived feature slots (indices profileFeatureCount..
// NumFeatures-1) keyed by (fnv64a(text), BoW snapshot version), so a
// duplicate tweet skips the whole scan/tag/sentiment/BoW pass.
//
// Correctness invariant (DESIGN.md invariant 9): a cache hit is
// bit-for-bit identical to a fresh extraction. Three mechanisms enforce it:
//
//   - Profile features (indices 0..profileFeatureCount-1) vary per user
//     even for identical text, so they are never served from the cache —
//     LookupCached recomputes them from the tweet on every hit.
//   - Text features depend on the BoW membership snapshot, so entries are
//     keyed by the snapshot's publication version; republication makes
//     every older entry unreachable (lazy invalidation — stale entries are
//     preferred eviction victims).
//   - fnv64a collisions cannot alias: each entry stores its own copy of
//     the text and a hit requires exact string equality.
//
// Concurrency: reads are lock-free — slots are atomic.Pointer values and
// entries are immutable after publication (except the CLOCK reference
// bit). Inserts take a per-shard mutex, re-check for duplicates, and evict
// with per-set CLOCK second-chance, mirroring the userstate idiom.

import (
	"strings"
	"sync"
	"sync/atomic"
)

const (
	// cacheWays is the set associativity: a text can live in any of 4
	// slots of its set, so unlucky hash neighborhoods degrade gracefully.
	cacheWays = 4
	// defaultCacheShards spreads insert mutexes; reads never contend.
	defaultCacheShards = 8
)

// cacheEntry is immutable after publication except for the CLOCK ref bit.
type cacheEntry struct {
	hash    uint64
	version uint64 // BoW snapshot version the vector was extracted under
	text    string // owned copy; exact-match guard against hash collisions
	vec     Vec
	ref     atomic.Bool // CLOCK second-chance bit
}

type cacheShard struct {
	mu    sync.Mutex
	slots []atomic.Pointer[cacheEntry] // sets × cacheWays
	hands []uint8                      // per-set CLOCK hand, guarded by mu
	mask  uint64                       // sets - 1

	hits   atomic.Int64
	misses atomic.Int64
	evicts atomic.Int64
}

// extractCache is a bounded, sharded, content-addressed Vec cache.
type extractCache struct {
	shards []cacheShard
	mask   uint64 // len(shards) - 1
}

// fnv64aString is FNV-1a 64-bit over the text bytes. Shard selection uses
// the high bits, set selection the low bits, so the two indices stay
// independent.
//
//redvet:noalloc gate=FeatCacheLookup
func fnv64aString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// newExtractCache builds a cache holding at least entries vectors (rounded
// up to a power-of-two set count per shard).
func newExtractCache(entries int) *extractCache {
	shards := defaultCacheShards
	perShard := (entries + shards*cacheWays - 1) / (shards * cacheWays)
	sets := 1
	for sets < perShard {
		sets <<= 1
	}
	c := &extractCache{shards: make([]cacheShard, shards), mask: uint64(shards - 1)}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.slots = make([]atomic.Pointer[cacheEntry], sets*cacheWays)
		sh.hands = make([]uint8, sets)
		sh.mask = uint64(sets - 1)
	}
	return c
}

// lookup copies the cached text-feature slots into dst on a hit for the
// exact (text, version) pair. Lock-free: one pointer load per way.
//
//redvet:noalloc gate=FeatCacheLookup
func (c *extractCache) lookup(dst []float64, txt string, version uint64) bool {
	h := fnv64aString(txt)
	sh := &c.shards[(h>>48)&c.mask]
	base := (h & sh.mask) * cacheWays
	for i := uint64(0); i < cacheWays; i++ {
		e := sh.slots[base+i].Load()
		if e == nil || e.hash != h || e.version != version || e.text != txt {
			continue
		}
		e.ref.Store(true)
		copy(dst[profileFeatureCount:], e.vec[profileFeatureCount:])
		sh.hits.Add(1)
		return true
	}
	sh.misses.Add(1)
	return false
}

// insert publishes a freshly extracted vector for (txt, version). The text
// is cloned so the cache never pins a decoder arena chunk. Victim choice:
// an empty slot, else a stale-version slot, else per-set CLOCK
// second-chance.
func (c *extractCache) insert(txt string, version uint64, src []float64) {
	h := fnv64aString(txt)
	sh := &c.shards[(h>>48)&c.mask]
	set := h & sh.mask
	base := set * cacheWays

	e := &cacheEntry{hash: h, version: version, text: strings.Clone(txt)}
	copy(e.vec[:], src)

	sh.mu.Lock()
	victim := -1
	for i := uint64(0); i < cacheWays; i++ {
		cur := sh.slots[base+i].Load()
		if cur == nil {
			if victim < 0 {
				victim = int(i)
			}
			continue
		}
		if cur.hash == h && cur.version == version && cur.text == e.text {
			// Raced with another inserter; the published entry wins.
			sh.mu.Unlock()
			return
		}
		if cur.version != version {
			victim = int(i)
		}
	}
	if victim < 0 {
		hand := int(sh.hands[set])
		for spins := 0; spins < cacheWays*2; spins++ {
			cur := sh.slots[base+uint64(hand)].Load()
			if cur == nil || !cur.ref.Load() {
				victim = hand
				break
			}
			cur.ref.Store(false)
			hand = (hand + 1) % cacheWays
		}
		if victim < 0 {
			victim = hand
		}
		sh.hands[set] = uint8((victim + 1) % cacheWays)
	}
	if sh.slots[base+uint64(victim)].Load() != nil {
		sh.evicts.Add(1)
	}
	sh.slots[base+uint64(victim)].Store(e)
	sh.mu.Unlock()
}

// CacheStats aggregates the cache counters for /v1/stats and /metrics.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	// Entries is the current live slot count; Capacity the slot total.
	Entries  int `json:"entries"`
	Capacity int `json:"capacity"`
}

func (c *extractCache) stats() CacheStats {
	var s CacheStats
	for i := range c.shards {
		sh := &c.shards[i]
		s.Hits += sh.hits.Load()
		s.Misses += sh.misses.Load()
		s.Evictions += sh.evicts.Load()
		s.Capacity += len(sh.slots)
		for j := range sh.slots {
			if sh.slots[j].Load() != nil {
				s.Entries++
			}
		}
	}
	return s
}
