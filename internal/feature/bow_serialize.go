package feature

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// bowState is the gob DTO capturing the complete adaptive-BoW state: the
// vocabulary plus the rolling word-frequency tables that drive future
// enhancement rounds. (The cluster engine's per-batch broadcast ships only
// the vocabulary — remote BoWs never adapt — but checkpoints must capture
// everything.)
type bowState struct {
	Cfg         BoWConfig
	Words       []string
	AggrCounts  map[string]float64
	AggrTweets  float64
	NormCounts  map[string]float64
	NormTweets  float64
	SinceUpdate int
	Additions   int
	Removals    int
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (b *AdaptiveBoW) MarshalBinary() ([]byte, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	st := bowState{
		Cfg:         b.cfg,
		AggrCounts:  b.aggressive.counts,
		AggrTweets:  b.aggressive.tweets,
		NormCounts:  b.normal.counts,
		NormTweets:  b.normal.tweets,
		SinceUpdate: b.sinceUpdate,
		Additions:   b.additions,
		Removals:    b.removals,
	}
	for w := range b.words {
		st.Words = append(st.Words, w)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("feature: encode BoW: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary restores the full BoW state in place. The seed-word set
// is rebuilt from the lexicon (seeds are permanent by construction).
func (b *AdaptiveBoW) UnmarshalBinary(data []byte) error {
	var st bowState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("feature: decode BoW: %w", err)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.cfg = st.Cfg
	b.words = make(map[string]bool, len(st.Words))
	for _, w := range st.Words {
		b.words[w] = true
	}
	b.aggressive = newWordTable()
	if st.AggrCounts != nil {
		b.aggressive.counts = st.AggrCounts
	}
	b.aggressive.tweets = st.AggrTweets
	b.normal = newWordTable()
	if st.NormCounts != nil {
		b.normal.counts = st.NormCounts
	}
	b.normal.tweets = st.NormTweets
	b.sinceUpdate = st.SinceUpdate
	b.additions = st.Additions
	b.removals = st.Removals
	b.rebuildSnapshot()
	return nil
}
