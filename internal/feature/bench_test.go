package feature

import (
	"testing"

	"redhanded/internal/twitterdata"
)

func benchTweets(n int) []twitterdata.Tweet {
	g := twitterdata.NewGenerator(1, 10)
	out := make([]twitterdata.Tweet, n)
	for i := range out {
		out[i] = g.Tweet(i%3, i%10)
	}
	return out
}

func BenchmarkExtract(b *testing.B) {
	tweets := benchTweets(2000)
	e := NewExtractor(DefaultConfig())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Extract(&tweets[i%len(tweets)])
	}
}

func BenchmarkExtractNoPreprocess(b *testing.B) {
	tweets := benchTweets(2000)
	e := NewExtractor(Config{Preprocess: false, BoW: DefaultBoWConfig()})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Extract(&tweets[i%len(tweets)])
	}
}

// BenchmarkFeaturePathFast measures the single-pass pooled fast path —
// the numbers recorded in BENCH_featurepath.json (tweets/s, allocs/op).
func BenchmarkFeaturePathFast(b *testing.B) {
	tweets := benchTweets(2000)
	e := NewExtractor(DefaultConfig())
	dst := make([]float64, NumFeatures)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ExtractInto(dst, &tweets[i%len(tweets)])
	}
}

// BenchmarkFeaturePathLegacy measures the multi-pass reference
// implementation the fast path is proven equivalent to.
func BenchmarkFeaturePathLegacy(b *testing.B) {
	tweets := benchTweets(2000)
	e := NewExtractor(DefaultConfig())
	dst := make([]float64, NumFeatures)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.extractLegacyInto(dst, &tweets[i%len(tweets)])
	}
}

// BenchmarkFeaturePathFastParallel exercises the scratch and vector pools
// under contention, the serving-shard shape.
func BenchmarkFeaturePathFastParallel(b *testing.B) {
	tweets := benchTweets(2000)
	e := NewExtractor(DefaultConfig())
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		dst := make([]float64, NumFeatures)
		for pb.Next() {
			e.ExtractInto(dst, &tweets[i%len(tweets)])
			i++
		}
	})
}

// TestExtractIntoZeroAlloc pins the tentpole property end to end: a warm
// extractor computes a full feature vector with zero heap allocations.
func TestExtractIntoZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates in sync.Pool")
	}
	tweets := benchTweets(64)
	e := NewExtractor(DefaultConfig())
	dst := make([]float64, NumFeatures)
	for i := range tweets {
		e.ExtractInto(dst, &tweets[i]) // warm pools and arenas
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		e.ExtractInto(dst, &tweets[i%len(tweets)])
		i++
	})
	if allocs != 0 {
		t.Errorf("ExtractInto allocates %.1f times per tweet, want 0", allocs)
	}
}

func BenchmarkBoWLearn(b *testing.B) {
	bow := NewAdaptiveBoW(DefaultBoWConfig())
	tokens := []string{"you", "are", "a", "zorp", "idiot", "and", "fool"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bow.Learn(tokens, i%2 == 0)
	}
}

func BenchmarkBoWScore(b *testing.B) {
	bow := NewAdaptiveBoW(DefaultBoWConfig())
	tokens := []string{"you", "fucking", "idiot", "look", "at", "this", "shit"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bow.Score(tokens)
	}
}
