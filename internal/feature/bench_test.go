package feature

import (
	"testing"

	"redhanded/internal/twitterdata"
)

func benchTweets(n int) []twitterdata.Tweet {
	g := twitterdata.NewGenerator(1, 10)
	out := make([]twitterdata.Tweet, n)
	for i := range out {
		out[i] = g.Tweet(i%3, i%10)
	}
	return out
}

func BenchmarkExtract(b *testing.B) {
	tweets := benchTweets(2000)
	e := NewExtractor(DefaultConfig())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Extract(&tweets[i%len(tweets)])
	}
}

func BenchmarkExtractNoPreprocess(b *testing.B) {
	tweets := benchTweets(2000)
	e := NewExtractor(Config{Preprocess: false, BoW: DefaultBoWConfig()})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Extract(&tweets[i%len(tweets)])
	}
}

func BenchmarkBoWLearn(b *testing.B) {
	bow := NewAdaptiveBoW(DefaultBoWConfig())
	tokens := []string{"you", "are", "a", "zorp", "idiot", "and", "fool"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bow.Learn(tokens, i%2 == 0)
	}
}

func BenchmarkBoWScore(b *testing.B) {
	bow := NewAdaptiveBoW(DefaultBoWConfig())
	tokens := []string{"you", "fucking", "idiot", "look", "at", "this", "shit"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bow.Score(tokens)
	}
}
