package feature

import (
	"math"
	"testing"

	"redhanded/internal/twitterdata"
)

// classMeans extracts features for n generated tweets per class and
// returns the per-class feature means — the end-to-end check that the
// generator + extraction pipeline recovers the paper's Fig. 4 statistics.
func classMeans(t *testing.T, n int) [3][]float64 {
	t.Helper()
	e := NewExtractor(DefaultConfig())
	g := twitterdata.NewGenerator(123, 10)
	var means [3][]float64
	for class := 0; class < 3; class++ {
		sums := make([]float64, NumFeatures)
		for i := 0; i < n; i++ {
			tw := g.Tweet(class, i%10)
			for f, v := range e.Extract(&tw) {
				sums[f] += v
			}
		}
		for f := range sums {
			sums[f] /= float64(n)
		}
		means[class] = sums
	}
	return means
}

func TestCalibrationHeadlineStatistics(t *testing.T) {
	means := classMeans(t, 2500)
	normal, abusive, hateful := means[0], means[1], means[2]

	checks := []struct {
		name    string
		feature int
		class   []float64
		want    float64
		tol     float64
	}{
		{"normal swears", CntSwearWords, normal, 0.10, 0.08},
		{"abusive swears", CntSwearWords, abusive, 2.54, 0.5},
		{"hateful swears", CntSwearWords, hateful, 1.84, 0.5},
		{"normal upper", NumUpperCases, normal, 0.96, 0.4},
		{"abusive upper", NumUpperCases, abusive, 1.84, 0.6},
		{"hateful upper", NumUpperCases, hateful, 1.57, 0.6},
		{"normal wps", WordsPerSentence, normal, 16.66, 2.5},
		{"abusive wps", WordsPerSentence, abusive, 12.66, 2.5},
		{"hateful wps", WordsPerSentence, hateful, 15.93, 2.5},
	}
	for _, c := range checks {
		got := c.class[c.feature]
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("%s = %.3f, want %.2f ± %.2f", c.name, got, c.want, c.tol)
		}
	}
}

func TestCalibrationOrderings(t *testing.T) {
	means := classMeans(t, 2000)
	normal, abusive, hateful := means[0], means[1], means[2]

	// Fig 4a: normal accounts oldest, abusive youngest.
	if !(normal[AccountAge] > hateful[AccountAge] && hateful[AccountAge] > abusive[AccountAge]) {
		t.Errorf("account age ordering broken: n=%.0f h=%.0f a=%.0f",
			normal[AccountAge], hateful[AccountAge], abusive[AccountAge])
	}
	// Fig 4c: abusive/hateful use fewer adjectives than normal.
	if !(normal[CntAdjectives] > abusive[CntAdjectives]) {
		t.Errorf("adjective ordering broken: n=%.2f a=%.2f",
			normal[CntAdjectives], abusive[CntAdjectives])
	}
	// Fig 4e: normal far less negative sentiment (less negative = higher).
	if !(normal[SentimentScoreNeg] > abusive[SentimentScoreNeg]+0.5 &&
		normal[SentimentScoreNeg] > hateful[SentimentScoreNeg]+0.5) {
		t.Errorf("negative sentiment ordering broken: n=%.2f a=%.2f h=%.2f",
			normal[SentimentScoreNeg], abusive[SentimentScoreNeg], hateful[SentimentScoreNeg])
	}
	// BoW score separates aggressors (swears + slang).
	if !(abusive[BoWScore] > normal[BoWScore]+1) {
		t.Errorf("BoW score separation broken: n=%.2f a=%.2f",
			normal[BoWScore], abusive[BoWScore])
	}
}
