package batch

import (
	"fmt"
	"math"

	"redhanded/internal/ml"
)

// LogisticConfig configures batch logistic regression.
type LogisticConfig struct {
	NumClasses   int
	Epochs       int     // passes over the data; default 10
	LearningRate float64 // default 0.1
	L2           float64 // ridge penalty; default 0.01
	Seed         uint64
}

func (c LogisticConfig) withDefaults() LogisticConfig {
	if c.Epochs == 0 {
		c.Epochs = 10
	}
	if c.LearningRate == 0 {
		c.LearningRate = 0.1
	}
	if c.L2 == 0 {
		c.L2 = 0.01
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Logistic is batch multinomial logistic regression trained with
// multi-epoch shuffled SGD — unlike its streaming counterpart, it
// processes each instance Epochs times.
type Logistic struct {
	cfg LogisticConfig
	w   [][]float64 // [class][feature+1]; last is bias
}

var _ ml.BatchClassifier = (*Logistic)(nil)

// NewLogistic creates an untrained model.
func NewLogistic(cfg LogisticConfig) *Logistic {
	cfg = cfg.withDefaults()
	if cfg.NumClasses < 2 {
		panic(fmt.Sprintf("batch: logistic needs >= 2 classes, got %d", cfg.NumClasses))
	}
	return &Logistic{cfg: cfg}
}

// Fit implements ml.BatchClassifier.
func (l *Logistic) Fit(data []ml.Instance) error {
	var clean []ml.Instance
	for _, in := range data {
		if in.IsLabeled() && in.Label < l.cfg.NumClasses && in.Valid() {
			clean = append(clean, in)
		}
	}
	if len(clean) == 0 {
		return fmt.Errorf("batch: no valid labeled instances")
	}
	dim := len(clean[0].X)
	l.w = make([][]float64, l.cfg.NumClasses)
	for c := range l.w {
		l.w[c] = make([]float64, dim+1)
	}
	rng := ml.NewRNG(l.cfg.Seed)
	order := make([]int, len(clean))
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < l.cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		lr := l.cfg.LearningRate / (1 + 0.5*float64(epoch))
		for _, i := range order {
			l.step(clean[i], lr)
		}
	}
	return nil
}

func (l *Logistic) step(in ml.Instance, lr float64) {
	p := l.Predict(in.X)
	for c := range l.w {
		y := 0.0
		if in.Label == c {
			y = 1
		}
		g := p[c] - y
		wc := l.w[c]
		n := len(wc) - 1
		if len(in.X) < n {
			n = len(in.X)
		}
		for i := 0; i < n; i++ {
			wc[i] -= lr * (g*in.X[i] + l.cfg.L2*wc[i])
		}
		wc[len(wc)-1] -= lr * g
	}
}

// Predict implements ml.Classifier: softmax probabilities.
func (l *Logistic) Predict(x []float64) ml.Prediction {
	votes := make(ml.Prediction, l.cfg.NumClasses)
	if l.w == nil {
		return votes
	}
	maxM := math.Inf(-1)
	for c := range l.w {
		m := l.w[c][len(l.w[c])-1]
		n := len(l.w[c]) - 1
		if len(x) < n {
			n = len(x)
		}
		for i := 0; i < n; i++ {
			m += l.w[c][i] * x[i]
		}
		votes[c] = m
		if m > maxM {
			maxM = m
		}
	}
	sum := 0.0
	for c := range votes {
		votes[c] = math.Exp(votes[c] - maxM)
		sum += votes[c]
	}
	for c := range votes {
		votes[c] /= sum
	}
	return votes
}
