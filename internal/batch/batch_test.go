package batch

import (
	"math"
	"testing"

	"redhanded/internal/ml"
)

// gaussianData mirrors the stream package's test workload.
func gaussianData(n, numClasses, dim int, separation float64, seed uint64) []ml.Instance {
	rng := ml.NewRNG(seed)
	out := make([]ml.Instance, 0, n)
	for i := 0; i < n; i++ {
		label := rng.Intn(numClasses)
		x := make([]float64, dim)
		for d := 0; d < dim; d++ {
			sep := separation * (0.5 + 0.5*float64(d+1)/float64(dim))
			x[d] = float64(label)*sep + rng.NormFloat64()
		}
		out = append(out, ml.NewInstance(x, label))
	}
	return out
}

func accuracy(m ml.Classifier, data []ml.Instance) float64 {
	correct := 0
	for _, in := range data {
		if m.Predict(in.X).ArgMax() == in.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(data))
}

func TestDecisionTreeLearns(t *testing.T) {
	train := gaussianData(4000, 2, 4, 4, 1)
	test := gaussianData(1000, 2, 4, 4, 99)
	dt := NewDecisionTree(TreeConfig{NumClasses: 2})
	if err := dt.Fit(train); err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(dt, test); acc < 0.95 {
		t.Fatalf("DT accuracy = %v, want >= 0.95", acc)
	}
}

func TestDecisionTreeThreeClass(t *testing.T) {
	train := gaussianData(6000, 3, 4, 4, 2)
	test := gaussianData(1500, 3, 4, 4, 98)
	dt := NewDecisionTree(TreeConfig{NumClasses: 3})
	if err := dt.Fit(train); err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(dt, test); acc < 0.9 {
		t.Fatalf("3-class DT accuracy = %v, want >= 0.9", acc)
	}
}

func TestDecisionTreeRespectsDepth(t *testing.T) {
	train := gaussianData(4000, 2, 4, 2, 3)
	dt := NewDecisionTree(TreeConfig{NumClasses: 2, MaxDepth: 3})
	if err := dt.Fit(train); err != nil {
		t.Fatal(err)
	}
	if d := dt.Depth(); d > 3 {
		t.Fatalf("depth = %d exceeds limit 3", d)
	}
}

func TestDecisionTreeGiniVsEntropy(t *testing.T) {
	train := gaussianData(3000, 2, 4, 4, 4)
	test := gaussianData(800, 2, 4, 4, 97)
	for _, gini := range []bool{false, true} {
		dt := NewDecisionTree(TreeConfig{NumClasses: 2, UseGini: gini})
		if err := dt.Fit(train); err != nil {
			t.Fatal(err)
		}
		if acc := accuracy(dt, test); acc < 0.93 {
			t.Fatalf("gini=%v accuracy = %v", gini, acc)
		}
	}
}

func TestDecisionTreeEmptyAndInvalid(t *testing.T) {
	dt := NewDecisionTree(TreeConfig{NumClasses: 2})
	if err := dt.Fit(nil); err == nil {
		t.Fatalf("empty training set accepted")
	}
	unlabeled := []ml.Instance{{X: []float64{1}, Label: ml.Unlabeled, Weight: 1}}
	if err := dt.Fit(unlabeled); err == nil {
		t.Fatalf("unlabeled-only training set accepted")
	}
	if votes := dt.Predict([]float64{1}); len(votes) != 2 {
		t.Fatalf("unfit tree prediction shape wrong")
	}
}

func TestDecisionTreePureData(t *testing.T) {
	var data []ml.Instance
	rng := ml.NewRNG(5)
	for i := 0; i < 100; i++ {
		data = append(data, ml.NewInstance([]float64{rng.NormFloat64()}, 1))
	}
	dt := NewDecisionTree(TreeConfig{NumClasses: 2})
	if err := dt.Fit(data); err != nil {
		t.Fatal(err)
	}
	if dt.Depth() != 0 {
		t.Fatalf("pure data should give a stump, depth %d", dt.Depth())
	}
	if got := dt.Predict([]float64{0}).ArgMax(); got != 1 {
		t.Fatalf("pure-data prediction = %d", got)
	}
}

func TestDecisionTreeImportanceFindsSignal(t *testing.T) {
	// Feature 2 carries all the signal; 0 and 1 are noise.
	rng := ml.NewRNG(6)
	var data []ml.Instance
	for i := 0; i < 3000; i++ {
		label := rng.Intn(2)
		x := []float64{rng.NormFloat64(), rng.NormFloat64(), float64(label)*4 + rng.NormFloat64()}
		data = append(data, ml.NewInstance(x, label))
	}
	dt := NewDecisionTree(TreeConfig{NumClasses: 2})
	if err := dt.Fit(data); err != nil {
		t.Fatal(err)
	}
	imp := dt.Importances()
	if imp[2] < 0.8 {
		t.Fatalf("signal feature importance = %v, want >= 0.8 (all: %v)", imp[2], imp)
	}
	total := imp[0] + imp[1] + imp[2]
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("importances sum to %v", total)
	}
}

func TestRandomForestLearns(t *testing.T) {
	train := gaussianData(4000, 2, 4, 3, 7)
	test := gaussianData(1000, 2, 4, 3, 96)
	rf := NewRandomForest(ForestConfig{NumClasses: 2, Trees: 20, Seed: 1})
	if err := rf.Fit(train); err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(rf, test); acc < 0.95 {
		t.Fatalf("RF accuracy = %v, want >= 0.95", acc)
	}
}

func TestRandomForestBeatsSingleTreeOnNoise(t *testing.T) {
	// Noisy overlapping classes: the ensemble should be at least as good.
	train := gaussianData(3000, 2, 6, 1.2, 8)
	test := gaussianData(1500, 2, 6, 1.2, 95)
	dt := NewDecisionTree(TreeConfig{NumClasses: 2})
	rf := NewRandomForest(ForestConfig{NumClasses: 2, Trees: 30, Seed: 2})
	if err := dt.Fit(train); err != nil {
		t.Fatal(err)
	}
	if err := rf.Fit(train); err != nil {
		t.Fatal(err)
	}
	accDT, accRF := accuracy(dt, test), accuracy(rf, test)
	if accRF < accDT-0.02 {
		t.Fatalf("forest (%v) much worse than single tree (%v)", accRF, accDT)
	}
}

func TestRandomForestGiniImportances(t *testing.T) {
	rng := ml.NewRNG(9)
	var data []ml.Instance
	for i := 0; i < 3000; i++ {
		label := rng.Intn(2)
		x := []float64{rng.NormFloat64(), float64(label)*5 + rng.NormFloat64(), rng.NormFloat64()}
		data = append(data, ml.NewInstance(x, label))
	}
	rf := NewRandomForest(ForestConfig{NumClasses: 2, Trees: 20, Seed: 3})
	if err := rf.Fit(data); err != nil {
		t.Fatal(err)
	}
	imp := rf.GiniImportances()
	if imp[1] < imp[0] || imp[1] < imp[2] {
		t.Fatalf("signal feature not ranked first: %v", imp)
	}
	sum := 0.0
	for _, v := range imp {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("importances sum to %v", sum)
	}
}

func TestRandomForestDeterministic(t *testing.T) {
	data := gaussianData(1000, 2, 3, 3, 10)
	run := func() []float64 {
		rf := NewRandomForest(ForestConfig{NumClasses: 2, Trees: 5, Seed: 4})
		if err := rf.Fit(data); err != nil {
			t.Fatal(err)
		}
		return rf.GiniImportances()
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("forest not deterministic: %v vs %v", a, b)
		}
	}
}

func TestLogisticLearns(t *testing.T) {
	train := gaussianData(4000, 2, 4, 3, 11)
	test := gaussianData(1000, 2, 4, 3, 94)
	lr := NewLogistic(LogisticConfig{NumClasses: 2})
	if err := lr.Fit(train); err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(lr, test); acc < 0.93 {
		t.Fatalf("logistic accuracy = %v, want >= 0.93", acc)
	}
}

func TestLogisticMultiClass(t *testing.T) {
	train := gaussianData(6000, 3, 4, 4, 12)
	test := gaussianData(1500, 3, 4, 4, 93)
	lr := NewLogistic(LogisticConfig{NumClasses: 3})
	if err := lr.Fit(train); err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(lr, test); acc < 0.9 {
		t.Fatalf("3-class logistic accuracy = %v, want >= 0.9", acc)
	}
}

func TestLogisticRejectsBadData(t *testing.T) {
	lr := NewLogistic(LogisticConfig{NumClasses: 2})
	if err := lr.Fit(nil); err == nil {
		t.Fatalf("empty training set accepted")
	}
	if votes := lr.Predict([]float64{1, 2}); votes.ArgMax() != 0 && votes.ArgMax() != 1 {
		t.Fatalf("unfit prediction invalid")
	}
}

func TestConfigPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewDecisionTree(TreeConfig{NumClasses: 1}) },
		func() { NewRandomForest(ForestConfig{NumClasses: 0}) },
		func() { NewLogistic(LogisticConfig{NumClasses: 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("invalid config did not panic")
				}
			}()
			fn()
		}()
	}
}
