// Package batch implements the batch-trained baselines the paper compares
// against (its WEKA v3.7 models): a C4.5-style decision tree (J48), a
// random forest with per-split feature subsampling, and multinomial
// logistic regression. The random forest also provides the Gini feature
// importances of Figure 5.
package batch

import (
	"fmt"
	"math"
	"sort"

	"redhanded/internal/ml"
)

// TreeConfig configures the batch decision tree.
type TreeConfig struct {
	NumClasses int
	MaxDepth   int // default 20
	MinLeaf    int // minimum instances per leaf; default 2
	// UseGini selects Gini impurity instead of entropy (information gain).
	UseGini bool
	// FeatureSampler, when non-nil, returns the candidate feature subset
	// for one split (used by the random forest); nil considers all.
	FeatureSampler func(numFeatures int) []int
}

func (c TreeConfig) withDefaults() TreeConfig {
	if c.MaxDepth == 0 {
		c.MaxDepth = 20
	}
	if c.MinLeaf == 0 {
		c.MinLeaf = 2
	}
	return c
}

// DecisionTree is a batch-trained binary decision tree over numeric
// features, the batch counterpart (DT) of the Hoeffding tree in Figs. 13
// and 14.
type DecisionTree struct {
	cfg  TreeConfig
	root *btNode
	// importance accumulates per-feature impurity decrease weighted by
	// node probability (Gini importance when UseGini is set).
	importance []float64
	numFeat    int
}

var _ ml.BatchClassifier = (*DecisionTree)(nil)

type btNode struct {
	feature   int
	threshold float64
	left      *btNode
	right     *btNode
	counts    []float64 // leaf distribution
}

func (n *btNode) isLeaf() bool { return n.counts != nil }

// NewDecisionTree creates an untrained tree.
func NewDecisionTree(cfg TreeConfig) *DecisionTree {
	cfg = cfg.withDefaults()
	if cfg.NumClasses < 2 {
		panic(fmt.Sprintf("batch: tree needs >= 2 classes, got %d", cfg.NumClasses))
	}
	return &DecisionTree{cfg: cfg}
}

// Fit implements ml.BatchClassifier.
func (t *DecisionTree) Fit(data []ml.Instance) error {
	if len(data) == 0 {
		return fmt.Errorf("batch: empty training set")
	}
	t.numFeat = len(data[0].X)
	t.importance = make([]float64, t.numFeat)
	idx := make([]int, 0, len(data))
	for i, in := range data {
		if in.IsLabeled() && in.Label < t.cfg.NumClasses && in.Valid() {
			idx = append(idx, i)
		}
	}
	if len(idx) == 0 {
		return fmt.Errorf("batch: no valid labeled instances")
	}
	t.root = t.build(data, idx, 0, float64(len(idx)))
	return nil
}

func (t *DecisionTree) impurity(counts []float64) float64 {
	total := 0.0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	if t.cfg.UseGini {
		sumSq := 0.0
		for _, c := range counts {
			p := c / total
			sumSq += p * p
		}
		return 1 - sumSq
	}
	h := 0.0
	for _, c := range counts {
		if c > 0 {
			p := c / total
			h -= p * math.Log2(p)
		}
	}
	return h
}

func countsOf(data []ml.Instance, idx []int, k int) []float64 {
	counts := make([]float64, k)
	for _, i := range idx {
		counts[data[i].Label] += data[i].Weight
	}
	return counts
}

// build grows the tree recursively. rootN is the root sample size for
// importance normalization.
func (t *DecisionTree) build(data []ml.Instance, idx []int, depth int, rootN float64) *btNode {
	counts := countsOf(data, idx, t.cfg.NumClasses)
	pure := 0
	for _, c := range counts {
		if c > 0 {
			pure++
		}
	}
	if depth >= t.cfg.MaxDepth || pure <= 1 || len(idx) < 2*t.cfg.MinLeaf {
		return &btNode{counts: counts}
	}

	feats := t.candidateFeatures()
	best := t.bestSplit(data, idx, counts, feats)
	if best.feature < 0 {
		return &btNode{counts: counts}
	}

	var leftIdx, rightIdx []int
	for _, i := range idx {
		if data[i].X[best.feature] <= best.threshold {
			leftIdx = append(leftIdx, i)
		} else {
			rightIdx = append(rightIdx, i)
		}
	}
	if len(leftIdx) < t.cfg.MinLeaf || len(rightIdx) < t.cfg.MinLeaf {
		return &btNode{counts: counts}
	}

	// Importance: probability-weighted impurity decrease at this node.
	t.importance[best.feature] += float64(len(idx)) / rootN * best.gain

	return &btNode{
		feature:   best.feature,
		threshold: best.threshold,
		left:      t.build(data, leftIdx, depth+1, rootN),
		right:     t.build(data, rightIdx, depth+1, rootN),
	}
}

func (t *DecisionTree) candidateFeatures() []int {
	if t.cfg.FeatureSampler != nil {
		return t.cfg.FeatureSampler(t.numFeat)
	}
	all := make([]int, t.numFeat)
	for i := range all {
		all[i] = i
	}
	return all
}

type splitChoice struct {
	feature   int
	threshold float64
	gain      float64
}

// bestSplit scans each candidate feature with a sort-based sweep, testing
// thresholds between consecutive distinct values.
func (t *DecisionTree) bestSplit(data []ml.Instance, idx []int, parentCounts []float64, feats []int) splitChoice {
	best := splitChoice{feature: -1}
	parentImp := t.impurity(parentCounts)
	total := 0.0
	for _, c := range parentCounts {
		total += c
	}
	order := make([]int, len(idx))
	left := make([]float64, t.cfg.NumClasses)
	right := make([]float64, t.cfg.NumClasses)

	for _, f := range feats {
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool { return data[order[a]].X[f] < data[order[b]].X[f] })
		for c := range left {
			left[c] = 0
			right[c] = parentCounts[c]
		}
		nLeft := 0.0
		for pos := 0; pos < len(order)-1; pos++ {
			in := data[order[pos]]
			left[in.Label] += in.Weight
			right[in.Label] -= in.Weight
			nLeft += in.Weight
			v, next := in.X[f], data[order[pos+1]].X[f]
			if v == next {
				continue
			}
			wl := nLeft / total
			gain := parentImp - wl*t.impurity(left) - (1-wl)*t.impurity(right)
			if gain > best.gain {
				best = splitChoice{feature: f, threshold: (v + next) / 2, gain: gain}
			}
		}
	}
	if best.gain <= 1e-12 {
		best.feature = -1
	}
	return best
}

// Predict implements ml.Classifier.
func (t *DecisionTree) Predict(x []float64) ml.Prediction {
	if t.root == nil {
		return make(ml.Prediction, t.cfg.NumClasses)
	}
	n := t.root
	for !n.isLeaf() {
		if n.feature < len(x) && x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return append(ml.Prediction(nil), n.counts...)
}

// Importances returns the per-feature impurity-decrease importances,
// normalized to sum to 1 (zero vector before Fit).
func (t *DecisionTree) Importances() []float64 {
	return normalizeImportance(t.importance)
}

// Depth returns the tree depth.
func (t *DecisionTree) Depth() int {
	var walk func(n *btNode) int
	walk = func(n *btNode) int {
		if n == nil || n.isLeaf() {
			return 0
		}
		l, r := walk(n.left), walk(n.right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return walk(t.root)
}

func normalizeImportance(imp []float64) []float64 {
	out := make([]float64, len(imp))
	total := 0.0
	for _, v := range imp {
		total += v
	}
	if total == 0 {
		return out
	}
	for i, v := range imp {
		out[i] = v / total
	}
	return out
}
