package batch

import (
	"fmt"
	"math"
	"sync"

	"redhanded/internal/ml"
)

// ForestConfig configures the batch random forest.
type ForestConfig struct {
	NumClasses int
	Trees      int // default 50
	MaxDepth   int // default 20
	MinLeaf    int // default 2
	// FeaturesPerSplit is the random subset size per split
	// (default ceil(sqrt(F))).
	FeaturesPerSplit int
	Seed             uint64
}

func (c ForestConfig) withDefaults() ForestConfig {
	if c.Trees == 0 {
		c.Trees = 50
	}
	if c.MaxDepth == 0 {
		c.MaxDepth = 20
	}
	if c.MinLeaf == 0 {
		c.MinLeaf = 2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// RandomForest is a bagged ensemble of Gini decision trees with per-split
// feature subsampling — the batch counterpart of the ARF and the source of
// the Fig. 5 Gini importances.
type RandomForest struct {
	cfg   ForestConfig
	trees []*DecisionTree
}

var _ ml.BatchClassifier = (*RandomForest)(nil)

// NewRandomForest creates an untrained forest.
func NewRandomForest(cfg ForestConfig) *RandomForest {
	cfg = cfg.withDefaults()
	if cfg.NumClasses < 2 {
		panic(fmt.Sprintf("batch: forest needs >= 2 classes, got %d", cfg.NumClasses))
	}
	return &RandomForest{cfg: cfg}
}

// Fit implements ml.BatchClassifier: trees are trained in parallel on
// bootstrap resamples.
func (f *RandomForest) Fit(data []ml.Instance) error {
	if len(data) == 0 {
		return fmt.Errorf("batch: empty training set")
	}
	numFeat := len(data[0].X)
	subset := f.cfg.FeaturesPerSplit
	if subset <= 0 {
		subset = int(math.Ceil(math.Sqrt(float64(numFeat))))
	}
	if subset > numFeat {
		subset = numFeat
	}

	f.trees = make([]*DecisionTree, f.cfg.Trees)
	rootRNG := ml.NewRNG(f.cfg.Seed)
	rngs := make([]*ml.RNG, f.cfg.Trees)
	for i := range rngs {
		rngs[i] = rootRNG.Split()
	}

	errs := make([]error, f.cfg.Trees)
	var wg sync.WaitGroup
	for i := 0; i < f.cfg.Trees; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rngs[i]
			boot := make([]ml.Instance, len(data))
			for j := range boot {
				boot[j] = data[rng.Intn(len(data))]
			}
			tree := NewDecisionTree(TreeConfig{
				NumClasses: f.cfg.NumClasses,
				MaxDepth:   f.cfg.MaxDepth,
				MinLeaf:    f.cfg.MinLeaf,
				UseGini:    true,
				FeatureSampler: func(n int) []int {
					return rng.SampleWithoutReplacement(n, subset)
				},
			})
			errs[i] = tree.Fit(boot)
			f.trees[i] = tree
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Predict implements ml.Classifier: normalized votes summed over trees.
func (f *RandomForest) Predict(x []float64) ml.Prediction {
	votes := make(ml.Prediction, f.cfg.NumClasses)
	for _, t := range f.trees {
		v := t.Predict(x).Normalize()
		for c := range votes {
			if c < len(v) {
				votes[c] += v[c]
			}
		}
	}
	return votes
}

// GiniImportances returns the forest-averaged Gini feature importances,
// normalized to sum to 1 — the quantity plotted in Fig. 5.
func (f *RandomForest) GiniImportances() []float64 {
	if len(f.trees) == 0 {
		return nil
	}
	sum := make([]float64, len(f.trees[0].importance))
	for _, t := range f.trees {
		for i, v := range t.Importances() {
			sum[i] += v
		}
	}
	return normalizeImportance(sum)
}
