package norm

import (
	"math"
	"testing"
	"testing/quick"

	"redhanded/internal/ml"
)

func TestWelfordBasics(t *testing.T) {
	var w Welford
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(v)
	}
	if math.Abs(w.Mean-5) > 1e-12 {
		t.Fatalf("mean = %v, want 5", w.Mean)
	}
	if math.Abs(w.Var()-4) > 1e-12 {
		t.Fatalf("variance = %v, want 4", w.Var())
	}
	if math.Abs(w.Std()-2) > 1e-12 {
		t.Fatalf("std = %v, want 2", w.Std())
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Var() != 0 || w.Std() != 0 {
		t.Fatalf("empty Welford should have zero variance")
	}
	w.Add(3)
	if w.Mean != 3 || w.Var() != 0 {
		t.Fatalf("single observation: mean %v var %v", w.Mean, w.Var())
	}
}

func TestWelfordMergeEqualsSequential(t *testing.T) {
	f := func(a, b []float64) bool {
		clean := func(in []float64) []float64 {
			out := make([]float64, 0, len(in))
			for _, v := range in {
				if !math.IsNaN(v) && !math.IsInf(v, 0) {
					out = append(out, math.Mod(v, 1e6))
				}
			}
			return out
		}
		a, b = clean(a), clean(b)
		var w1, w2, all Welford
		for _, v := range a {
			w1.Add(v)
			all.Add(v)
		}
		for _, v := range b {
			w2.Add(v)
			all.Add(v)
		}
		w1.Merge(w2)
		if w1.N != all.N {
			return false
		}
		if all.N == 0 {
			return true
		}
		scale := math.Max(1, math.Abs(all.Mean))
		return math.Abs(w1.Mean-all.Mean)/scale < 1e-9 &&
			math.Abs(w1.Var()-all.Var())/math.Max(1, all.Var()) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRangeStat(t *testing.T) {
	var m RangeStat
	for _, v := range []float64{3, -1, 7, 2} {
		m.Add(v)
	}
	if m.Min != -1 || m.Max != 7 || m.N != 4 {
		t.Fatalf("MinMax = %+v", m)
	}
}

func TestRangeStatMerge(t *testing.T) {
	var a, b RangeStat
	a.Add(1)
	a.Add(5)
	b.Add(-2)
	b.Add(3)
	a.Merge(b)
	if a.Min != -2 || a.Max != 5 || a.N != 4 {
		t.Fatalf("merged MinMax = %+v", a)
	}
	var empty RangeStat
	a.Merge(empty)
	if a.N != 4 {
		t.Fatalf("merging empty changed count: %+v", a)
	}
	empty.Merge(a)
	if empty.Min != -2 || empty.Max != 5 {
		t.Fatalf("merge into empty failed: %+v", empty)
	}
}

func TestP2QuantileMedianUniform(t *testing.T) {
	q := NewP2Quantile(0.5)
	rng := ml.NewRNG(1)
	for i := 0; i < 50000; i++ {
		q.Add(rng.Float64())
	}
	if v := q.Value(); math.Abs(v-0.5) > 0.02 {
		t.Fatalf("median estimate = %v, want ~0.5", v)
	}
}

func TestP2QuantileTailsNormal(t *testing.T) {
	q1 := NewP2Quantile(0.25)
	q3 := NewP2Quantile(0.75)
	rng := ml.NewRNG(2)
	for i := 0; i < 100000; i++ {
		v := rng.NormFloat64()
		q1.Add(v)
		q3.Add(v)
	}
	// True quartiles of N(0,1) are ±0.6745.
	if math.Abs(q1.Value()+0.6745) > 0.05 {
		t.Fatalf("Q1 = %v, want ~-0.6745", q1.Value())
	}
	if math.Abs(q3.Value()-0.6745) > 0.05 {
		t.Fatalf("Q3 = %v, want ~0.6745", q3.Value())
	}
}

func TestP2QuantileSmallCounts(t *testing.T) {
	q := NewP2Quantile(0.5)
	if q.Value() != 0 {
		t.Fatalf("empty estimator value = %v, want 0", q.Value())
	}
	q.Add(10)
	if q.Value() != 10 {
		t.Fatalf("single observation = %v, want 10", q.Value())
	}
	q.Add(20)
	if v := q.Value(); v < 10 || v > 20 {
		t.Fatalf("two observations median = %v, want in [10,20]", v)
	}
}

func TestP2QuantileMergeReasonable(t *testing.T) {
	a := NewP2Quantile(0.5)
	b := NewP2Quantile(0.5)
	rng := ml.NewRNG(3)
	for i := 0; i < 20000; i++ {
		a.Add(rng.Float64())
		b.Add(rng.Float64())
	}
	a.Merge(b)
	if v := a.Value(); math.Abs(v-0.5) > 0.05 {
		t.Fatalf("merged median = %v, want ~0.5", v)
	}
	if a.Count != 40000 {
		t.Fatalf("merged count = %d, want 40000", a.Count)
	}
}

func TestP2QuantileMergeIntoEmpty(t *testing.T) {
	a := NewP2Quantile(0.5)
	b := NewP2Quantile(0.5)
	for _, v := range []float64{1, 2, 3} {
		b.Add(v)
	}
	a.Merge(b)
	if a.Count != 3 {
		t.Fatalf("merge into empty count = %d", a.Count)
	}
	if v := a.Value(); v != 2 {
		t.Fatalf("merge into empty value = %v, want 2", v)
	}
}

func TestFeatureStatsObserveAndMerge(t *testing.T) {
	a := NewFeatureStats(2)
	b := NewFeatureStats(2)
	rng := ml.NewRNG(4)
	for i := 0; i < 1000; i++ {
		a.Observe([]float64{rng.Float64(), rng.NormFloat64()})
		b.Observe([]float64{rng.Float64(), rng.NormFloat64()})
	}
	a.Merge(b)
	if a.Count() != 2000 {
		t.Fatalf("merged count = %d, want 2000", a.Count())
	}
	if math.Abs(a.Welford[0].Mean-0.5) > 0.05 {
		t.Fatalf("feature 0 mean = %v, want ~0.5", a.Welford[0].Mean)
	}
}

func TestFeatureStatsIgnoresBadInput(t *testing.T) {
	fs := NewFeatureStats(2)
	fs.Observe([]float64{1})             // wrong dimension
	fs.Observe([]float64{math.NaN(), 1}) // NaN skipped per-feature
	if fs.Welford[0].N != 0 {
		t.Fatalf("NaN observation counted for feature 0")
	}
	if fs.Welford[1].N != 1 {
		t.Fatalf("finite value not counted for feature 1")
	}
}
