package norm

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// MarshalBinary encodes the statistics for broadcast to remote tasks.
func (fs *FeatureStats) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	type dto FeatureStats // avoid MarshalBinary recursion inside gob
	if err := gob.NewEncoder(&buf).Encode((*dto)(fs)); err != nil {
		return nil, fmt.Errorf("norm: encode feature stats: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary restores statistics encoded by MarshalBinary.
func (fs *FeatureStats) UnmarshalBinary(data []byte) error {
	type dto FeatureStats
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode((*dto)(fs)); err != nil {
		return fmt.Errorf("norm: decode feature stats: %w", err)
	}
	return nil
}
