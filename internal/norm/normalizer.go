package norm

import "math"

// Mode selects the normalization scheme applied to feature vectors.
type Mode int

const (
	// None disables normalization (the step is optional in the pipeline).
	None Mode = iota
	// MinMax scales each feature to [0,1] using its observed min and max.
	MinMax
	// MinMaxRobust rescales min and max after removing statistical
	// outliers (Tukey fences on streaming Q1/Q3 estimates) before applying
	// minmax normalization. This is the paper's "minmax without outliers",
	// the variant its experiments select.
	MinMaxRobust
	// ZScore centers each feature to zero mean and unit standard
	// deviation.
	ZScore
)

// String returns the experiment-facing name of the mode.
func (m Mode) String() string {
	switch m {
	case None:
		return "none"
	case MinMax:
		return "minmax"
	case MinMaxRobust:
		return "minmax-no-outliers"
	case ZScore:
		return "z-score"
	default:
		return "unknown"
	}
}

// FeatureStats maintains the per-feature streaming statistics needed by all
// normalization modes. It is mergeable across parallel tasks.
type FeatureStats struct {
	Welford []Welford
	Range   []RangeStat
	Q1, Q3  []*P2Quantile
}

// NewFeatureStats allocates statistics for dim features.
func NewFeatureStats(dim int) *FeatureStats {
	fs := &FeatureStats{
		Welford: make([]Welford, dim),
		Range:   make([]RangeStat, dim),
		Q1:      make([]*P2Quantile, dim),
		Q3:      make([]*P2Quantile, dim),
	}
	for i := 0; i < dim; i++ {
		fs.Q1[i] = NewP2Quantile(0.25)
		fs.Q3[i] = NewP2Quantile(0.75)
	}
	return fs
}

// Dim returns the number of features tracked.
func (fs *FeatureStats) Dim() int { return len(fs.Welford) }

// Count returns the number of observations folded in.
func (fs *FeatureStats) Count() int64 {
	if len(fs.Welford) == 0 {
		return 0
	}
	return fs.Welford[0].N
}

// Observe folds one feature vector into the statistics. Vectors of the
// wrong dimension are ignored.
func (fs *FeatureStats) Observe(x []float64) {
	if len(x) != fs.Dim() {
		return
	}
	for i, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		fs.Welford[i].Add(v)
		fs.Range[i].Add(v)
		fs.Q1[i].Add(v)
		fs.Q3[i].Add(v)
	}
}

// Merge combines another statistics collector into this one.
func (fs *FeatureStats) Merge(other *FeatureStats) {
	if other == nil || other.Dim() != fs.Dim() {
		return
	}
	for i := range fs.Welford {
		fs.Welford[i].Merge(other.Welford[i])
		fs.Range[i].Merge(other.Range[i])
		fs.Q1[i].Merge(other.Q1[i])
		fs.Q3[i].Merge(other.Q3[i])
	}
}

// Clone returns a deep copy (used to snapshot stats for parallel tasks).
func (fs *FeatureStats) Clone() *FeatureStats {
	cp := NewFeatureStats(fs.Dim())
	cp.Merge(fs)
	return cp
}

// Normalizer applies a normalization mode backed by streaming statistics.
// Observe statistics first (or Merge pre-computed ones), then call
// Normalize; the paper notes the required statistics "can be provided as
// input or computed incrementally during the data stream processing".
type Normalizer struct {
	Mode  Mode
	Stats *FeatureStats
}

// NewNormalizer creates a normalizer for dim features.
func NewNormalizer(mode Mode, dim int) *Normalizer {
	return &Normalizer{Mode: mode, Stats: NewFeatureStats(dim)}
}

// Observe folds a raw feature vector into the statistics.
func (n *Normalizer) Observe(x []float64) { n.Stats.Observe(x) }

// Normalize writes the normalized vector into dst (allocating when dst is
// nil or mis-sized) and returns it. With Mode None the input values are
// copied unchanged.
func (n *Normalizer) Normalize(x []float64, dst []float64) []float64 {
	if len(dst) != len(x) {
		dst = make([]float64, len(x))
	}
	if n.Mode == None || n.Stats.Count() == 0 {
		copy(dst, x)
		return dst
	}
	for i, v := range x {
		dst[i] = n.normalizeOne(i, v)
	}
	return dst
}

func (n *Normalizer) normalizeOne(i int, v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	switch n.Mode {
	case MinMax:
		lo, hi := n.Stats.Range[i].Min, n.Stats.Range[i].Max
		return scaleClamped(v, lo, hi)
	case MinMaxRobust:
		q1, q3 := n.Stats.Q1[i].Value(), n.Stats.Q3[i].Value()
		iqr := q3 - q1
		lo := math.Max(n.Stats.Range[i].Min, q1-1.5*iqr)
		hi := math.Min(n.Stats.Range[i].Max, q3+1.5*iqr)
		return scaleClamped(v, lo, hi)
	case ZScore:
		std := n.Stats.Welford[i].Std()
		if std == 0 {
			return 0
		}
		return (v - n.Stats.Welford[i].Mean) / std
	default:
		return v
	}
}

func scaleClamped(v, lo, hi float64) float64 {
	if hi <= lo {
		return 0
	}
	s := (v - lo) / (hi - lo)
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}
