package norm

import (
	"math"
	"testing"

	"redhanded/internal/ml"
)

func TestFeatureStatsSerializationRoundTrip(t *testing.T) {
	fs := NewFeatureStats(3)
	rng := ml.NewRNG(1)
	for i := 0; i < 5000; i++ {
		fs.Observe([]float64{rng.Float64(), rng.NormFloat64() * 10, float64(i)})
	}
	blob, err := fs.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored := NewFeatureStats(3)
	if err := restored.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if restored.Count() != fs.Count() || restored.Dim() != fs.Dim() {
		t.Fatalf("shape mismatch after round trip")
	}
	for f := 0; f < 3; f++ {
		if restored.Welford[f].Mean != fs.Welford[f].Mean {
			t.Fatalf("feature %d mean differs", f)
		}
		if restored.Range[f] != fs.Range[f] {
			t.Fatalf("feature %d range differs", f)
		}
		if math.Abs(restored.Q1[f].Value()-fs.Q1[f].Value()) > 1e-12 {
			t.Fatalf("feature %d Q1 differs", f)
		}
	}
	// A normalizer over the restored stats behaves identically.
	a := &Normalizer{Mode: MinMaxRobust, Stats: fs}
	b := &Normalizer{Mode: MinMaxRobust, Stats: restored}
	x := []float64{0.7, 3.3, 1234}
	va := a.Normalize(x, nil)
	vb := b.Normalize(x, nil)
	for i := range va {
		if va[i] != vb[i] {
			t.Fatalf("normalization differs after round trip: %v vs %v", va, vb)
		}
	}
	// The restored stats must keep accepting observations.
	restored.Observe([]float64{1, 2, 3})
	if restored.Count() != fs.Count()+1 {
		t.Fatalf("restored stats cannot observe")
	}
}

func TestFeatureStatsUnmarshalGarbage(t *testing.T) {
	fs := NewFeatureStats(2)
	if err := fs.UnmarshalBinary([]byte("nope")); err == nil {
		t.Fatalf("garbage accepted")
	}
}
