package norm

import (
	"math"
	"testing"
	"testing/quick"

	"redhanded/internal/ml"
)

func observeAll(n *Normalizer, data [][]float64) {
	for _, x := range data {
		n.Observe(x)
	}
}

func TestMinMaxNormalizerRange(t *testing.T) {
	n := NewNormalizer(MinMax, 1)
	observeAll(n, [][]float64{{0}, {5}, {10}})
	if got := n.Normalize([]float64{5}, nil)[0]; math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("Normalize(5) = %v, want 0.5", got)
	}
	if got := n.Normalize([]float64{-100}, nil)[0]; got != 0 {
		t.Fatalf("below-min should clamp to 0, got %v", got)
	}
	if got := n.Normalize([]float64{100}, nil)[0]; got != 1 {
		t.Fatalf("above-max should clamp to 1, got %v", got)
	}
}

func TestZScoreNormalizer(t *testing.T) {
	n := NewNormalizer(ZScore, 1)
	observeAll(n, [][]float64{{2}, {4}, {4}, {4}, {5}, {5}, {7}, {9}})
	// mean 5, std 2
	if got := n.Normalize([]float64{7}, nil)[0]; math.Abs(got-1) > 1e-12 {
		t.Fatalf("z(7) = %v, want 1", got)
	}
	if got := n.Normalize([]float64{5}, nil)[0]; math.Abs(got) > 1e-12 {
		t.Fatalf("z(5) = %v, want 0", got)
	}
}

func TestZScoreConstantFeature(t *testing.T) {
	n := NewNormalizer(ZScore, 1)
	observeAll(n, [][]float64{{3}, {3}, {3}})
	if got := n.Normalize([]float64{3}, nil)[0]; got != 0 {
		t.Fatalf("constant feature z = %v, want 0", got)
	}
}

func TestRobustMinMaxShrinksOutlierInfluence(t *testing.T) {
	plain := NewNormalizer(MinMax, 1)
	robust := NewNormalizer(MinMaxRobust, 1)
	rng := ml.NewRNG(5)
	for i := 0; i < 10000; i++ {
		v := rng.Float64() * 10 // bulk in [0,10]
		plain.Observe([]float64{v})
		robust.Observe([]float64{v})
	}
	// A massive outlier stretches plain minmax but barely moves the fences.
	plain.Observe([]float64{1e6})
	robust.Observe([]float64{1e6})
	vPlain := plain.Normalize([]float64{5}, nil)[0]
	vRobust := robust.Normalize([]float64{5}, nil)[0]
	if vPlain > 0.01 {
		t.Fatalf("plain minmax should be crushed by outlier, got %v", vPlain)
	}
	// With fences at [Q1-1.5·IQR, Q3+1.5·IQR] ≈ [0, 15] the mid-bulk value
	// keeps a meaningful normalized position instead of collapsing to ~0.
	if vRobust < 0.2 || vRobust > 0.8 {
		t.Fatalf("robust minmax should resist outlier: got %v, want in [0.2, 0.8]", vRobust)
	}
	if vRobust < vPlain*10 {
		t.Fatalf("robust (%v) should dwarf plain (%v) under outliers", vRobust, vPlain)
	}
}

func TestNoneModeCopies(t *testing.T) {
	n := NewNormalizer(None, 2)
	n.Observe([]float64{1, 2})
	out := n.Normalize([]float64{42, -7}, nil)
	if out[0] != 42 || out[1] != -7 {
		t.Fatalf("None mode altered values: %v", out)
	}
}

func TestNormalizeBeforeAnyObservation(t *testing.T) {
	n := NewNormalizer(MinMax, 1)
	out := n.Normalize([]float64{3}, nil)
	if out[0] != 3 {
		t.Fatalf("no-stats Normalize should pass through, got %v", out[0])
	}
}

func TestNormalizeHandlesNaN(t *testing.T) {
	n := NewNormalizer(MinMax, 1)
	observeAll(n, [][]float64{{0}, {10}})
	out := n.Normalize([]float64{math.NaN()}, nil)
	if out[0] != 0 {
		t.Fatalf("NaN should normalize to 0, got %v", out[0])
	}
}

func TestNormalizeReusesDst(t *testing.T) {
	n := NewNormalizer(MinMax, 2)
	observeAll(n, [][]float64{{0, 0}, {10, 10}})
	dst := make([]float64, 2)
	out := n.Normalize([]float64{5, 10}, dst)
	if &out[0] != &dst[0] {
		t.Fatalf("Normalize did not reuse dst")
	}
}

func TestMinMaxOutputAlwaysInRangeProperty(t *testing.T) {
	rng := ml.NewRNG(6)
	n := NewNormalizer(MinMax, 1)
	for i := 0; i < 100; i++ {
		n.Observe([]float64{rng.NormFloat64() * 100})
	}
	f := func(v float64) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
		got := n.Normalize([]float64{v}, nil)[0]
		return got >= 0 && got <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRobustMinMaxOutputAlwaysInRangeProperty(t *testing.T) {
	rng := ml.NewRNG(7)
	n := NewNormalizer(MinMaxRobust, 1)
	for i := 0; i < 1000; i++ {
		n.Observe([]float64{rng.NormFloat64() * 100})
	}
	f := func(v float64) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
		got := n.Normalize([]float64{v}, nil)[0]
		return got >= 0 && got <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestModeString(t *testing.T) {
	names := map[Mode]string{
		None: "none", MinMax: "minmax", MinMaxRobust: "minmax-no-outliers",
		ZScore: "z-score", Mode(99): "unknown",
	}
	for m, want := range names {
		if m.String() != want {
			t.Errorf("Mode(%d).String() = %q, want %q", m, m.String(), want)
		}
	}
}

func TestFeatureStatsClone(t *testing.T) {
	fs := NewFeatureStats(1)
	fs.Observe([]float64{1})
	cp := fs.Clone()
	cp.Observe([]float64{100})
	if fs.Count() != 1 {
		t.Fatalf("clone mutation leaked into original")
	}
	if cp.Count() != 2 {
		t.Fatalf("clone count = %d, want 2", cp.Count())
	}
}
