// Package norm implements the streaming normalization step of the pipeline:
// incrementally-maintained per-feature statistics (mean/variance, min/max,
// quantiles) and the paper's three normalization schemes — minmax, minmax
// without outliers, and z-score. All statistics are mergeable so they can be
// computed by parallel tasks over partitions and combined by the driver.
package norm

import "math"

// Welford maintains running mean and variance using Welford's algorithm.
// The zero value is an empty accumulator.
type Welford struct {
	N    int64
	Mean float64
	M2   float64
}

// Add folds one observation into the statistics.
func (w *Welford) Add(x float64) {
	w.N++
	delta := x - w.Mean
	w.Mean += delta / float64(w.N)
	w.M2 += delta * (x - w.Mean)
}

// Var returns the population variance (0 when fewer than 2 observations).
func (w *Welford) Var() float64 {
	if w.N < 2 {
		return 0
	}
	return w.M2 / float64(w.N)
}

// Std returns the population standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Merge combines another accumulator into this one (Chan et al. parallel
// update), leaving other untouched.
func (w *Welford) Merge(other Welford) {
	if other.N == 0 {
		return
	}
	if w.N == 0 {
		*w = other
		return
	}
	n1, n2 := float64(w.N), float64(other.N)
	delta := other.Mean - w.Mean
	total := n1 + n2
	w.Mean += delta * n2 / total
	w.M2 += other.M2 + delta*delta*n1*n2/total
	w.N += other.N
}

// RangeStat tracks the observed range of a feature. The zero value is empty.
type RangeStat struct {
	N   int64
	Min float64
	Max float64
}

// Add folds one observation into the range.
func (m *RangeStat) Add(x float64) {
	if m.N == 0 {
		m.Min, m.Max = x, x
	} else {
		if x < m.Min {
			m.Min = x
		}
		if x > m.Max {
			m.Max = x
		}
	}
	m.N++
}

// Merge combines another range tracker into this one.
func (m *RangeStat) Merge(other RangeStat) {
	if other.N == 0 {
		return
	}
	if m.N == 0 {
		*m = other
		return
	}
	if other.Min < m.Min {
		m.Min = other.Min
	}
	if other.Max > m.Max {
		m.Max = other.Max
	}
	m.N += other.N
}

// P2Quantile estimates a single quantile online using the P² algorithm
// (Jain & Chlamtac 1985) with five markers and O(1) memory.
type P2Quantile struct {
	P       float64    // target quantile in (0,1)
	Count   int64      // observations seen
	Heights [5]float64 // marker heights
	Pos     [5]float64 // marker positions
	Desired [5]float64 // desired marker positions
	Incr    [5]float64 // desired position increments
	Initial []float64  // first five observations before initialization (exported for gob)
}

// NewP2Quantile returns an estimator for quantile p in (0,1).
func NewP2Quantile(p float64) *P2Quantile {
	q := &P2Quantile{P: p}
	q.Incr = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	return q
}

// Add folds one observation into the estimate.
func (q *P2Quantile) Add(x float64) {
	q.Count++
	if q.Count <= 5 {
		q.Initial = append(q.Initial, x)
		if q.Count == 5 {
			insertionSort(q.Initial)
			copy(q.Heights[:], q.Initial)
			q.Initial = nil
			for i := 0; i < 5; i++ {
				q.Pos[i] = float64(i + 1)
			}
			q.Desired = [5]float64{1, 1 + 2*q.P, 1 + 4*q.P, 3 + 2*q.P, 5}
		}
		return
	}

	// Find the cell containing x and clamp extreme markers.
	var k int
	switch {
	case x < q.Heights[0]:
		q.Heights[0] = x
		k = 0
	case x >= q.Heights[4]:
		q.Heights[4] = x
		k = 3
	default:
		for k = 0; k < 4; k++ {
			if x < q.Heights[k+1] {
				break
			}
		}
	}

	for i := k + 1; i < 5; i++ {
		q.Pos[i]++
	}
	for i := 0; i < 5; i++ {
		q.Desired[i] += q.Incr[i]
	}

	// Adjust interior markers towards their desired positions.
	for i := 1; i <= 3; i++ {
		d := q.Desired[i] - q.Pos[i]
		if (d >= 1 && q.Pos[i+1]-q.Pos[i] > 1) || (d <= -1 && q.Pos[i-1]-q.Pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1
			}
			h := q.parabolic(i, sign)
			if q.Heights[i-1] < h && h < q.Heights[i+1] {
				q.Heights[i] = h
			} else {
				q.Heights[i] = q.linear(i, sign)
			}
			q.Pos[i] += sign
		}
	}
}

func (q *P2Quantile) parabolic(i int, d float64) float64 {
	h := q.Heights
	n := q.Pos
	return h[i] + d/(n[i+1]-n[i-1])*((n[i]-n[i-1]+d)*(h[i+1]-h[i])/(n[i+1]-n[i])+
		(n[i+1]-n[i]-d)*(h[i]-h[i-1])/(n[i]-n[i-1]))
}

func (q *P2Quantile) linear(i int, d float64) float64 {
	j := i + int(d)
	return q.Heights[i] + d*(q.Heights[j]-q.Heights[i])/(q.Pos[j]-q.Pos[i])
}

// Value returns the current quantile estimate. With fewer than five
// observations it interpolates over the sorted buffer.
func (q *P2Quantile) Value() float64 {
	if q.Count == 0 {
		return 0
	}
	if q.Count < 5 {
		buf := append([]float64(nil), q.Initial...)
		insertionSort(buf)
		idx := q.P * float64(len(buf)-1)
		lo := int(idx)
		if lo >= len(buf)-1 {
			return buf[len(buf)-1]
		}
		frac := idx - float64(lo)
		return buf[lo]*(1-frac) + buf[lo+1]*frac
	}
	return q.Heights[2]
}

// Merge approximately combines another estimator for the same quantile by
// count-weighted averaging of marker heights. This is not exact (P² is not
// closed under merging) but is accurate enough for outlier fencing, which
// only needs coarse Q1/Q3 estimates.
func (q *P2Quantile) Merge(other *P2Quantile) {
	if other.Count == 0 {
		return
	}
	if q.Count == 0 {
		*q = *other
		q.Initial = append([]float64(nil), other.Initial...)
		return
	}
	if q.Count < 5 || other.Count < 5 {
		// Degenerate sizes: replay the smaller one's estimate through Add.
		v := other.Value()
		for i := int64(0); i < other.Count; i++ {
			q.Add(v)
		}
		return
	}
	w1 := float64(q.Count) / float64(q.Count+other.Count)
	w2 := 1 - w1
	for i := 0; i < 5; i++ {
		q.Heights[i] = q.Heights[i]*w1 + other.Heights[i]*w2
	}
	// Extremes are exact under merging.
	q.Heights[0] = math.Min(q.Heights[0], other.Heights[0])
	q.Heights[4] = math.Max(q.Heights[4], other.Heights[4])
	q.Count += other.Count
	// Recompute marker and desired positions canonically for the merged
	// count, preserving monotonicity.
	n := float64(q.Count)
	q.Pos = [5]float64{1, 1 + (n-1)*q.P/2, 1 + (n-1)*q.P, 1 + (n-1)*(1+q.P)/2, n}
	q.Desired = q.Pos
}

func insertionSort(a []float64) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
