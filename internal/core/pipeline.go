package core

import (
	"sync"

	"redhanded/internal/eval"
	"redhanded/internal/feature"
	"redhanded/internal/ml"
	"redhanded/internal/norm"
	"redhanded/internal/obs"
	"redhanded/internal/stream"
	"redhanded/internal/twitterdata"
	"redhanded/internal/userstate"
)

// Result reports what the pipeline did with one tweet.
type Result struct {
	Instance   ml.Instance
	Prediction ml.Prediction
	Predicted  int
	Confidence float64
	Alerted    bool
	// Tested is true for labeled tweets that entered the prequential
	// evaluation (and then trained the model).
	Tested bool
	// Session / Escalation carry the user-state verdicts this tweet
	// triggered (nil for the vast majority of tweets).
	Session    *SessionVerdict
	Escalation *EscalationVerdict
}

// VerdictSink consumes the user-state verdicts the pipeline emits:
// session verdicts (repetitive hostility within a sliding window) and
// escalation verdicts (a user trending toward aggression across
// sessions). Sinks run on the processing goroutine and must not block.
type VerdictSink interface {
	HandleSession(SessionVerdict)
	HandleEscalation(EscalationVerdict)
}

// Pipeline is the sequential reference implementation of the detection
// framework (Fig. 1). The distributed engines reuse its components
// (Extractor, Normalizer, Model) with parallel tasks; their results are
// equivalent by the merge semantics of each component.
//
// Pipeline is not safe for concurrent use; engines coordinate access.
type Pipeline struct {
	opts       Options
	classes    ml.Classes
	extractor  *feature.Extractor
	normalizer *norm.Normalizer
	model      ml.DistributedClassifier
	evaluator  *eval.Prequential
	alerter    *Alerter
	users      *userstate.Store
	verdicts   []VerdictSink
	sampler    *BoostedSampler
	bowSizes   []eval.Point // Fig. 10 series
	processed  int64

	// logOffset is the ingest-log offset of the last tweet applied via
	// ProcessLogged (-1 when nothing log-backed has been processed).
	// Updated under mu in the same critical section as the tweet's
	// effects, so a checkpoint always captures model state and applied
	// offset as one consistent cut — the invariant exactly-once replay
	// rests on.
	logOffset int64

	// Distribution of predicted labels over unlabeled traffic (the
	// evaluation step's "interesting statistics").
	predCounts []int64

	mu sync.Mutex
}

// NewPipeline assembles the framework with the given options.
func NewPipeline(opts Options) *Pipeline {
	bowCfg := feature.DefaultBoWConfig()
	bowCfg.Frozen = !opts.AdaptiveBoW
	ext := feature.NewExtractor(feature.Config{Preprocess: opts.Preprocess, BoW: bowCfg})
	k := opts.Scheme.NumClasses()
	users := userstate.New(opts.Users)
	return &Pipeline{
		opts:       opts,
		classes:    opts.Scheme.Classes(),
		extractor:  ext,
		normalizer: norm.NewNormalizer(opts.Normalization, feature.NumFeatures),
		model:      newModel(opts),
		evaluator:  eval.NewPrequential(k, opts.SampleStep),
		alerter:    newAlerterWith(opts.AlertThreshold, users),
		users:      users,
		sampler:    NewBoostedSampler(DefaultSamplerConfig(opts.Seed)),
		predCounts: make([]int64, k),
		logOffset:  -1,
	}
}

// Options returns the pipeline configuration.
func (p *Pipeline) Options() Options { return p.opts }

// Classes returns the class domain.
func (p *Pipeline) Classes() ml.Classes { return p.classes }

// Model exposes the streaming classifier (engines need its accumulators).
func (p *Pipeline) Model() ml.DistributedClassifier { return p.model }

// Extractor exposes the feature extractor.
func (p *Pipeline) Extractor() *feature.Extractor { return p.extractor }

// Normalizer exposes the streaming normalizer.
func (p *Pipeline) Normalizer() *norm.Normalizer { return p.normalizer }

// Evaluator exposes the prequential evaluator.
func (p *Pipeline) Evaluator() *eval.Prequential { return p.evaluator }

// Alerter exposes the alerting component.
func (p *Pipeline) Alerter() *Alerter { return p.alerter }

// Users exposes the sharded per-user state store (session windows,
// offense history, escalation scores). It is safe to read concurrently
// with processing; the serving layer's GET /v1/users/{id} goes through
// it.
func (p *Pipeline) Users() *userstate.Store { return p.users }

// SubscribeVerdicts registers a sink for session and escalation
// verdicts. Sinks run on the processing goroutine and must not block.
func (p *Pipeline) SubscribeVerdicts(s VerdictSink) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.verdicts = append(p.verdicts, s)
}

// observeUser folds one prediction into the user-state store, attaches
// any verdicts to the result, and fans them out to the verdict sinks.
// Called with p.mu held. The span (nil when tracing is off) separates the
// store fold (StageObserve) from the sink fan-out (StageVerdict).
func (p *Pipeline) observeUser(tw *twitterdata.Tweet, aggressive bool, confidence float64, sp *obs.Span) (*SessionVerdict, *EscalationVerdict) {
	if tw.User.IDStr == "" {
		return nil, nil
	}
	sp.BeginStage(obs.StageObserve)
	out := p.users.Observe(userstate.Observation{
		UserID:     tw.User.IDStr,
		ScreenName: tw.User.ScreenName,
		At:         tw.PostedAt(),
		Aggressive: aggressive,
		Confidence: confidence,
	})
	sp.BeginStage(obs.StageVerdict)
	for _, s := range p.verdicts {
		if out.Session != nil {
			s.HandleSession(*out.Session)
		}
		if out.Escalation != nil {
			s.HandleEscalation(*out.Escalation)
		}
	}
	return out.Session, out.Escalation
}

// Sampler exposes the boosted sampling component.
func (p *Pipeline) Sampler() *BoostedSampler { return p.sampler }

// Processed returns the number of tweets processed.
func (p *Pipeline) Processed() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.processed
}

// DriftStats reports the model's drift telemetry (nil for models without
// drift detectors), serialized against the processing lock so the serving
// layer can read it while a shard goroutine trains.
func (p *Pipeline) DriftStats() *stream.DriftStats {
	dr, ok := p.model.(stream.DriftReporter)
	if !ok {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	st := dr.DriftStats()
	return &st
}

// BoWSizeCurve returns (instances, BoW size) points sampled at the
// evaluator's cadence — the series of Fig. 10.
func (p *Pipeline) BoWSizeCurve() []eval.Point {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]eval.Point(nil), p.bowSizes...)
}

// PredictedDistribution returns the share of each predicted class over the
// unlabeled traffic processed so far.
func (p *Pipeline) PredictedDistribution() []float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	total := int64(0)
	for _, c := range p.predCounts {
		total += c
	}
	out := make([]float64, len(p.predCounts))
	if total == 0 {
		return out
	}
	for i, c := range p.predCounts {
		out[i] = float64(c) / float64(total)
	}
	return out
}

// ExtractInstance runs preprocessing, feature extraction, and
// normalization (steps 1-3) for one tweet, returning the instance with its
// class index attached when the tweet is labeled. The normalizer statistics
// are updated with the raw vector before scaling.
func (p *Pipeline) ExtractInstance(tw *twitterdata.Tweet) ml.Instance {
	// Extraction runs through the pooled fast path; only the normalized
	// vector escapes (into the instance), so the raw vector is returned to
	// the pool before this function exits.
	raw := feature.GetVec()
	p.extractor.ExtractInto(raw[:], tw)
	p.normalizer.Observe(raw[:])
	x := p.normalizer.Normalize(raw[:], nil)
	feature.PutVec(raw)
	label := ml.Unlabeled
	if tw.IsLabeled() {
		label = p.opts.Scheme.LabelIndex(tw.Label)
	}
	return ml.Instance{X: x, Label: label, Weight: 1, ID: tw.IDStr, Day: tw.Day}
}

// Process runs one tweet through the full pipeline: extract, normalize,
// predict, then — for labeled tweets — evaluate prequentially and train;
// for all tweets, alerting and sampling are applied to the prediction.
//
// Process serializes against the snapshot readers (Processed, Summary,
// BoWSizeCurve, PredictedDistribution, Checkpoint) so the serving layer
// can report live statistics while a shard goroutine runs the pipeline;
// concurrent Process calls on one pipeline remain unsupported (engines
// partition work across pipelines instead).
func (p *Pipeline) Process(tw *twitterdata.Tweet) Result {
	return p.ProcessTraced(tw, nil)
}

// ProcessTraced is Process with stage instrumentation: the span (nil when
// tracing is off — every span method no-ops) records the time spent in
// extraction, classification, the user-state fold, and verdict fan-out.
// The caller owns the span; ProcessTraced leaves the verdict stage open so
// post-processing cost (reply delivery, bookkeeping) lands there until the
// caller's Finish.
func (p *Pipeline) ProcessTraced(tw *twitterdata.Tweet, sp *obs.Span) Result {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.processLocked(tw, sp)
}

// ProcessLogged is ProcessTraced for a tweet replayed from or appended to
// the durable ingest log: it additionally records the tweet's log offset,
// in the same critical section as the tweet's effects. Offsets must
// arrive in order — the caller (a serve shard, which owns its partition)
// guarantees that.
func (p *Pipeline) ProcessLogged(tw *twitterdata.Tweet, offset int64, sp *obs.Span) Result {
	p.mu.Lock()
	defer p.mu.Unlock()
	res := p.processLocked(tw, sp)
	p.logOffset = offset
	return res
}

// LogOffset returns the ingest-log offset of the last tweet applied via
// ProcessLogged, or -1. After Checkpoint, replaying offsets (LogOffset,
// end] reproduces the uninterrupted run.
func (p *Pipeline) LogOffset() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.logOffset
}

func (p *Pipeline) processLocked(tw *twitterdata.Tweet, sp *obs.Span) Result {
	sp.BeginStage(obs.StageExtract)
	in := p.ExtractInstance(tw)
	sp.BeginStage(obs.StageClassify)
	votes := p.model.Predict(in.X)
	pred := votes.ArgMax()
	res := Result{
		Instance:   in,
		Prediction: votes,
		Predicted:  pred,
		Confidence: votes.Confidence(),
	}

	if in.IsLabeled() {
		// Prequential: test first, then train.
		p.evaluator.Record(in.Label, pred)
		p.model.Train(in)
		p.extractor.Learn(tw)
		res.Tested = true
	} else {
		if pred >= 0 && pred < len(p.predCounts) {
			p.predCounts[pred]++
		}
		p.sampler.Offer(tw, votes)
	}

	res.Session, res.Escalation = p.observeUser(tw, pred > 0, res.Confidence, sp)
	sp.BeginStage(obs.StageVerdict) // no-op unless observeUser skipped (no user ID)
	if pred > 0 {                   // any non-normal class is aggressive behavior
		res.Alerted = p.alerter.Consider(tw, p.classes.Name(pred), res.Confidence)
	}

	p.processed++
	if p.opts.SampleStep > 0 && p.processed%p.opts.SampleStep == 0 {
		p.bowSizes = append(p.bowSizes, eval.Point{
			Instances: p.processed,
			Value:     float64(p.extractor.BoW().Size()),
		})
	}
	return res
}

// ProcessAll streams a dataset through the pipeline.
func (p *Pipeline) ProcessAll(tweets []twitterdata.Tweet) {
	for i := range tweets {
		p.Process(&tweets[i])
	}
}

// Outcome is the per-tweet result computed by a parallel engine task:
// the class index (or ml.Unlabeled), the prediction, and its confidence.
type Outcome struct {
	Label int
	Pred  int
	Conf  float64
}

// AbsorbBatch applies the driver-side sequential steps for one processed
// micro-batch: prequential recording, adaptive-BoW learning, alerting,
// sampling, and bookkeeping. Engines call it after merging the batch's
// model and normalizer deltas; outcomes[i] corresponds to tweets[i].
func (p *Pipeline) AbsorbBatch(tweets []twitterdata.Tweet, outcomes []Outcome) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range tweets {
		tw := &tweets[i]
		o := outcomes[i]
		if o.Label >= 0 {
			p.evaluator.Record(o.Label, o.Pred)
			p.extractor.Learn(tw)
		} else {
			if o.Pred >= 0 && o.Pred < len(p.predCounts) {
				p.predCounts[o.Pred]++
			}
			votes := make(ml.Prediction, p.classes.Len())
			if o.Pred >= 0 && o.Pred < len(votes) {
				votes[o.Pred] = 1
			}
			p.sampler.Offer(tw, votes)
		}
		p.observeUser(tw, o.Pred > 0, o.Conf, nil)
		if o.Pred > 0 {
			p.alerter.Consider(tw, p.classes.Name(o.Pred), o.Conf)
		}
		p.processed++
		if p.opts.SampleStep > 0 && p.processed%p.opts.SampleStep == 0 {
			p.bowSizes = append(p.bowSizes, eval.Point{
				Instances: p.processed,
				Value:     float64(p.extractor.BoW().Size()),
			})
		}
	}
}

// Summary returns the cumulative evaluation metrics.
func (p *Pipeline) Summary() eval.Report {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.evaluator.Summary()
}
