package core

import (
	"sync"
	"sync/atomic"
	"time"

	"redhanded/internal/eval"
	"redhanded/internal/feature"
	"redhanded/internal/ml"
	"redhanded/internal/norm"
	"redhanded/internal/obs"
	"redhanded/internal/stream"
	"redhanded/internal/twitterdata"
	"redhanded/internal/userstate"
)

// Result reports what the pipeline did with one tweet.
type Result struct {
	Instance   ml.Instance
	Prediction ml.Prediction
	Predicted  int
	Confidence float64
	Alerted    bool
	// Tested is true for labeled tweets that entered the prequential
	// evaluation (and then trained the model).
	Tested bool
	// Session / Escalation carry the user-state verdicts this tweet
	// triggered (nil for the vast majority of tweets).
	Session    *SessionVerdict
	Escalation *EscalationVerdict
}

// VerdictSink consumes the user-state verdicts the pipeline emits:
// session verdicts (repetitive hostility within a sliding window) and
// escalation verdicts (a user trending toward aggression across
// sessions). Sinks run on the processing goroutine and must not block.
type VerdictSink interface {
	HandleSession(SessionVerdict)
	HandleEscalation(EscalationVerdict)
}

// Pipeline is the sequential reference implementation of the detection
// framework (Fig. 1). The distributed engines reuse its components
// (Extractor, Normalizer, Model) with parallel tasks; their results are
// equivalent by the merge semantics of each component.
//
// Pipeline is not safe for concurrent use; engines coordinate access.
type Pipeline struct {
	opts       Options
	classes    ml.Classes
	extractor  *feature.Extractor
	normalizer *norm.Normalizer
	model      ml.DistributedClassifier
	evaluator  *eval.Prequential
	alerter    *Alerter
	users      *userstate.Store
	verdicts   []VerdictSink
	sampler    *BoostedSampler
	bowSizes   []eval.Point // Fig. 10 series
	processed  int64

	// logOffset is the ingest-log offset of the last tweet applied via
	// ProcessLogged (-1 when nothing log-backed has been processed).
	// Updated under mu in the same critical section as the tweet's
	// effects, so a checkpoint always captures model state and applied
	// offset as one consistent cut — the invariant exactly-once replay
	// rests on.
	logOffset int64

	// Distribution of predicted labels over unlabeled traffic (the
	// evaluation step's "interesting statistics").
	predCounts []int64

	// snapshot is the RCU-published compiled form of the model: an
	// immutable, pointer-free flattening (see stream.Compiled) that the
	// classify step reads without taking mu. It is nil when the model is
	// not stream.Compilable or snapshots are disabled; otherwise it is
	// re-published under mu whenever the model's epoch moves, so at every
	// predict the snapshot is bit-for-bit the live model.
	snapshot     atomic.Pointer[stream.Compiled]
	snapRebuilds atomic.Int64 // snapshot publications that re-flattened something
	snapTrees    atomic.Int64 // member trees re-flattened across all rebuilds

	// classifyScratch backs the zero-alloc PredictInto calls. Only the
	// processing goroutine touches it (Pipeline supports one processor).
	classifyScratch []float64

	// batchRaws / batchXs are ProcessBatch working storage, reused across
	// batches on the processing goroutine.
	batchRaws []*feature.Vec
	batchXs   [][]float64

	// activeSpan is the span of the tweet currently inside its mutation /
	// verdict fan-out section (guarded by mu; nil between tweets). Verdict
	// sinks run synchronously inside that section, so a sink can attribute
	// its cost to the right span even on the batched path, where the
	// shard-level "current span" is ambiguous.
	activeSpan *obs.Span

	mu sync.Mutex
}

// NewPipeline assembles the framework with the given options.
func NewPipeline(opts Options) *Pipeline {
	bowCfg := feature.DefaultBoWConfig()
	bowCfg.Frozen = !opts.AdaptiveBoW
	cacheEntries := opts.FeatureCacheEntries
	switch {
	case cacheEntries == 0:
		cacheEntries = defaultFeatureCacheEntries
	case cacheEntries < 0:
		cacheEntries = 0
	}
	ext := feature.NewExtractor(feature.Config{Preprocess: opts.Preprocess, BoW: bowCfg, CacheEntries: cacheEntries})
	k := opts.Scheme.NumClasses()
	users := userstate.New(opts.Users)
	p := &Pipeline{
		opts:       opts,
		classes:    opts.Scheme.Classes(),
		extractor:  ext,
		normalizer: norm.NewNormalizer(opts.Normalization, feature.NumFeatures),
		model:      newModel(opts),
		evaluator:  eval.NewPrequential(k, opts.SampleStep),
		alerter:    newAlerterWith(opts.AlertThreshold, users),
		users:      users,
		sampler:    NewBoostedSampler(DefaultSamplerConfig(opts.Seed)),
		predCounts: make([]int64, k),
		logOffset:  -1,
	}
	p.initSnapshot()
	return p
}

// initSnapshot publishes the first compiled snapshot when the model
// supports compilation and snapshots are enabled; otherwise the pipeline
// stays on the fully locked path for its lifetime (snapshot == nil).
func (p *Pipeline) initSnapshot() {
	if p.opts.DisableCompiledSnapshots {
		return
	}
	cm, ok := p.model.(stream.Compilable)
	if !ok {
		return
	}
	snap := cm.CompileSnapshot(nil)
	p.snapshot.Store(snap)
	p.snapRebuilds.Add(1)
	p.snapTrees.Add(int64(snap.Rebuilt()))
	p.classifyScratch = make([]float64, snap.ScratchLen())
}

// refreshSnapshotLocked re-publishes the compiled snapshot if the model
// mutated since the last publication, reusing every unchanged member
// tree (the rebuild is O(changed trees), see stream.CompileSnapshot).
// Called with p.mu held; returns the current snapshot (nil when the
// compiled path is off). The compile cost is attributed to sp's
// StageCompile so a tweet that happened to pay for a rebuild shows it
// in its trace instead of an inflated classify stage.
func (p *Pipeline) refreshSnapshotLocked(sp *obs.Span) *stream.Compiled {
	snap := p.snapshot.Load()
	if snap == nil {
		return nil
	}
	cm := p.model.(stream.Compilable)
	if snap.Epoch() == cm.Epoch() {
		return snap
	}
	var start time.Time
	if sp != nil {
		start = time.Now()
	}
	next := cm.CompileSnapshot(snap)
	p.snapshot.Store(next)
	p.snapRebuilds.Add(1)
	p.snapTrees.Add(int64(next.Rebuilt()))
	if sp != nil {
		sp.AddExclusive(obs.StageCompile, time.Since(start))
	}
	return next
}

// SnapshotStats is the compiled-snapshot telemetry surfaced on /v1/stats
// and /metrics.
type SnapshotStats struct {
	// Enabled reports whether the lock-free compiled classify path is on.
	Enabled bool `json:"enabled"`
	// Epoch is the model epoch the published snapshot was compiled at.
	Epoch uint64 `json:"epoch"`
	// ModelEpoch is the live model's current epoch; Age = ModelEpoch -
	// Epoch is the number of model mutations the snapshot is behind
	// (0 = fresh; the pipeline re-publishes before every classify and at
	// the end of every mutation section, so a nonzero age is transient).
	ModelEpoch uint64 `json:"model_epoch"`
	Age        uint64 `json:"age"`
	// Rebuilds counts snapshot publications; TreesRebuilt sums the member
	// trees actually re-flattened across them (the incremental-rebuild
	// saving is visible as TreesRebuilt growing slower than
	// Rebuilds × ensemble size).
	Rebuilds     int64 `json:"rebuilds"`
	TreesRebuilt int64 `json:"trees_rebuilt"`
	// Trees / Nodes describe the published snapshot's size.
	Trees int `json:"trees"`
	Nodes int `json:"nodes"`
}

// SnapshotStats reports the compiled-snapshot telemetry (zero value when
// the compiled path is off).
func (p *Pipeline) SnapshotStats() SnapshotStats {
	snap := p.snapshot.Load()
	if snap == nil {
		return SnapshotStats{}
	}
	st := SnapshotStats{
		Enabled:      true,
		Epoch:        snap.Epoch(),
		Rebuilds:     p.snapRebuilds.Load(),
		TreesRebuilt: p.snapTrees.Load(),
		Trees:        snap.NumTrees(),
		Nodes:        snap.NumNodes(),
	}
	p.mu.Lock()
	st.ModelEpoch = p.model.(stream.Compilable).Epoch()
	p.mu.Unlock()
	if st.ModelEpoch >= st.Epoch {
		st.Age = st.ModelEpoch - st.Epoch
	}
	return st
}

// ActiveSpan returns the span of the tweet currently inside its
// mutation/fan-out section, or nil. Verdict sinks run synchronously on
// the processing goroutine within that section (which holds p.mu), so a
// sink may call this to attribute emit cost to the triggering tweet.
func (p *Pipeline) ActiveSpan() *obs.Span { return p.activeSpan }

// Options returns the pipeline configuration.
func (p *Pipeline) Options() Options { return p.opts }

// Classes returns the class domain.
func (p *Pipeline) Classes() ml.Classes { return p.classes }

// Model exposes the streaming classifier (engines need its accumulators).
func (p *Pipeline) Model() ml.DistributedClassifier { return p.model }

// Extractor exposes the feature extractor.
func (p *Pipeline) Extractor() *feature.Extractor { return p.extractor }

// Normalizer exposes the streaming normalizer.
func (p *Pipeline) Normalizer() *norm.Normalizer { return p.normalizer }

// Evaluator exposes the prequential evaluator.
func (p *Pipeline) Evaluator() *eval.Prequential { return p.evaluator }

// Alerter exposes the alerting component.
func (p *Pipeline) Alerter() *Alerter { return p.alerter }

// Users exposes the sharded per-user state store (session windows,
// offense history, escalation scores). It is safe to read concurrently
// with processing; the serving layer's GET /v1/users/{id} goes through
// it.
func (p *Pipeline) Users() *userstate.Store { return p.users }

// SubscribeVerdicts registers a sink for session and escalation
// verdicts. Sinks run on the processing goroutine and must not block.
func (p *Pipeline) SubscribeVerdicts(s VerdictSink) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.verdicts = append(p.verdicts, s)
}

// observeUser folds one prediction into the user-state store, attaches
// any verdicts to the result, and fans them out to the verdict sinks.
// Called with p.mu held. The span (nil when tracing is off) separates the
// store fold (StageObserve) from the sink fan-out (StageVerdict).
func (p *Pipeline) observeUser(tw *twitterdata.Tweet, aggressive bool, confidence float64, sp *obs.Span) (*SessionVerdict, *EscalationVerdict) {
	if tw.User.IDStr == "" {
		return nil, nil
	}
	sp.BeginStage(obs.StageObserve)
	out := p.users.Observe(userstate.Observation{
		UserID:     tw.User.IDStr,
		ScreenName: tw.User.ScreenName,
		At:         tw.PostedAt(),
		Aggressive: aggressive,
		Confidence: confidence,
	})
	sp.BeginStage(obs.StageVerdict)
	for _, s := range p.verdicts {
		if out.Session != nil {
			s.HandleSession(*out.Session)
		}
		if out.Escalation != nil {
			s.HandleEscalation(*out.Escalation)
		}
	}
	return out.Session, out.Escalation
}

// Sampler exposes the boosted sampling component.
func (p *Pipeline) Sampler() *BoostedSampler { return p.sampler }

// Processed returns the number of tweets processed.
func (p *Pipeline) Processed() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.processed
}

// DriftStats reports the model's drift telemetry (nil for models without
// drift detectors), serialized against the processing lock so the serving
// layer can read it while a shard goroutine trains.
func (p *Pipeline) DriftStats() *stream.DriftStats {
	dr, ok := p.model.(stream.DriftReporter)
	if !ok {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	st := dr.DriftStats()
	return &st
}

// BoWSizeCurve returns (instances, BoW size) points sampled at the
// evaluator's cadence — the series of Fig. 10.
func (p *Pipeline) BoWSizeCurve() []eval.Point {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]eval.Point(nil), p.bowSizes...)
}

// PredictedDistribution returns the share of each predicted class over the
// unlabeled traffic processed so far.
func (p *Pipeline) PredictedDistribution() []float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	total := int64(0)
	for _, c := range p.predCounts {
		total += c
	}
	out := make([]float64, len(p.predCounts))
	if total == 0 {
		return out
	}
	for i, c := range p.predCounts {
		out[i] = float64(c) / float64(total)
	}
	return out
}

// ExtractInstance runs preprocessing, feature extraction, and
// normalization (steps 1-3) for one tweet, returning the instance with its
// class index attached when the tweet is labeled. The normalizer statistics
// are updated with the raw vector before scaling.
func (p *Pipeline) ExtractInstance(tw *twitterdata.Tweet) ml.Instance {
	return p.extractInstanceTraced(tw, nil)
}

// extractInstanceTraced is ExtractInstance with stage attribution: the
// extraction-cache probe lands in StageCache, and StageExtract opens only
// on a miss (so a hit's trace shows extract literally skipped). The raw
// pre-normalization vector is what the cache stores; the normalizer fold
// runs on every tweet either way, so its statistics are identical with
// and without the cache.
func (p *Pipeline) extractInstanceTraced(tw *twitterdata.Tweet, sp *obs.Span) ml.Instance {
	// Extraction runs through the pooled fast path; only the normalized
	// vector escapes (into the instance), so the raw vector is returned to
	// the pool before this function exits.
	raw := feature.GetVec()
	sp.BeginStage(obs.StageCache)
	if !p.extractor.LookupCached(raw[:], tw) {
		sp.BeginStage(obs.StageExtract)
		p.extractor.ExtractAndCache(raw[:], tw)
	}
	p.normalizer.Observe(raw[:])
	x := p.normalizer.Normalize(raw[:], nil)
	feature.PutVec(raw)
	label := ml.Unlabeled
	if tw.IsLabeled() {
		label = p.opts.Scheme.LabelIndex(tw.Label)
	}
	return ml.Instance{X: x, Label: label, Weight: 1, ID: tw.IDStr, Day: tw.Day}
}

// Process runs one tweet through the full pipeline: extract, normalize,
// predict, then — for labeled tweets — evaluate prequentially and train;
// for all tweets, alerting and sampling are applied to the prediction.
//
// Process serializes against the snapshot readers (Processed, Summary,
// BoWSizeCurve, PredictedDistribution, Checkpoint) so the serving layer
// can report live statistics while a shard goroutine runs the pipeline;
// concurrent Process calls on one pipeline remain unsupported (engines
// partition work across pipelines instead).
func (p *Pipeline) Process(tw *twitterdata.Tweet) Result {
	return p.ProcessTraced(tw, nil)
}

// ProcessTraced is Process with stage instrumentation: the span (nil when
// tracing is off — every span method no-ops) records the time spent in
// extraction, classification, the user-state fold, and verdict fan-out.
// The caller owns the span; ProcessTraced leaves the verdict stage open so
// post-processing cost (reply delivery, bookkeeping) lands there until the
// caller's Finish.
func (p *Pipeline) ProcessTraced(tw *twitterdata.Tweet, sp *obs.Span) Result {
	if p.snapshot.Load() != nil {
		return p.processFast(tw, 0, false, sp)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.processLocked(tw, sp)
}

// ProcessLogged is ProcessTraced for a tweet replayed from or appended to
// the durable ingest log: it additionally records the tweet's log offset,
// in the same critical section as the tweet's effects. Offsets must
// arrive in order — the caller (a serve shard, which owns its partition)
// guarantees that.
func (p *Pipeline) ProcessLogged(tw *twitterdata.Tweet, offset int64, sp *obs.Span) Result {
	if p.snapshot.Load() != nil {
		return p.processFast(tw, offset, true, sp)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	res := p.processLocked(tw, sp)
	p.logOffset = offset
	return res
}

// LogOffset returns the ingest-log offset of the last tweet applied via
// ProcessLogged, or -1. After Checkpoint, replaying offsets (LogOffset,
// end] reproduces the uninterrupted run.
func (p *Pipeline) LogOffset() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.logOffset
}

func (p *Pipeline) processLocked(tw *twitterdata.Tweet, sp *obs.Span) Result {
	in := p.extractInstanceTraced(tw, sp)
	sp.BeginStage(obs.StageClassify)
	votes := p.model.Predict(in.X)
	pred := votes.ArgMax()
	res := Result{
		Instance:   in,
		Prediction: votes,
		Predicted:  pred,
		Confidence: votes.Confidence(),
	}
	p.finishProcess(tw, &res, sp)
	return res
}

// finishProcess is the mutation section shared by the locked, fast, and
// batched paths: everything after classification — prequential record +
// train (labeled) or sampling + distribution counts (unlabeled), the
// user-state fold, verdict fan-out, alerting, and bookkeeping. Called
// with p.mu held; leaves the verdict stage open (callers close or
// Finish it).
func (p *Pipeline) finishProcess(tw *twitterdata.Tweet, res *Result, sp *obs.Span) {
	p.activeSpan = sp
	in, pred := res.Instance, res.Predicted
	if in.IsLabeled() {
		// Prequential: test first, then train.
		p.evaluator.Record(in.Label, pred)
		p.model.Train(in)
		p.extractor.Learn(tw)
		res.Tested = true
	} else {
		if pred >= 0 && pred < len(p.predCounts) {
			p.predCounts[pred]++
		}
		p.sampler.Offer(tw, res.Prediction)
	}

	res.Session, res.Escalation = p.observeUser(tw, pred > 0, res.Confidence, sp)
	sp.BeginStage(obs.StageVerdict) // no-op unless observeUser skipped (no user ID)
	if pred > 0 {                   // any non-normal class is aggressive behavior
		res.Alerted = p.alerter.Consider(tw, p.classes.Name(pred), res.Confidence)
	}

	p.processed++
	if p.opts.SampleStep > 0 && p.processed%p.opts.SampleStep == 0 {
		p.bowSizes = append(p.bowSizes, eval.Point{
			Instances: p.processed,
			Value:     float64(p.extractor.BoW().Size()),
		})
	}
	p.activeSpan = nil
}

// processFast is the lock-free-classify path, taken whenever a compiled
// snapshot is published. Extraction runs outside the lock (the BoW
// lookup is already lock-free), a short first critical section folds the
// normalizer statistics and re-publishes the snapshot if the model moved,
// classification runs against the immutable snapshot with no lock held,
// and a second critical section applies the mutation effects (train /
// sample / observe / alert / offset). The verdict stream is bit-for-bit
// the locked path's: the pipeline has a single processing writer, so the
// model cannot move between the refresh and the classify, and the
// refreshed snapshot equals the live model by the stream equivalence
// tests.
func (p *Pipeline) processFast(tw *twitterdata.Tweet, offset int64, logged bool, sp *obs.Span) Result {
	raw := feature.GetVec()
	sp.BeginStage(obs.StageCache)
	if !p.extractor.LookupCached(raw[:], tw) {
		sp.BeginStage(obs.StageExtract)
		p.extractor.ExtractAndCache(raw[:], tw)
	}

	p.mu.Lock()
	p.normalizer.Observe(raw[:])
	x := p.normalizer.Normalize(raw[:], nil)
	snap := p.refreshSnapshotLocked(sp)
	p.mu.Unlock()
	feature.PutVec(raw)
	label := ml.Unlabeled
	if tw.IsLabeled() {
		label = p.opts.Scheme.LabelIndex(tw.Label)
	}
	in := ml.Instance{X: x, Label: label, Weight: 1, ID: tw.IDStr, Day: tw.Day}

	sp.BeginStage(obs.StageClassify)
	votes := make(ml.Prediction, snap.NumClasses())
	snap.PredictInto(votes, p.classifyScratch, x)
	pred := votes.ArgMax()
	res := Result{
		Instance:   in,
		Prediction: votes,
		Predicted:  pred,
		Confidence: votes.Confidence(),
	}

	p.mu.Lock()
	p.finishProcess(tw, &res, sp)
	if logged {
		p.logOffset = offset
	}
	// Re-publish before releasing the lock so a mutation becomes visible
	// to lock-free readers within the same call — the staleness bound.
	p.refreshSnapshotLocked(sp)
	p.mu.Unlock()
	return res
}

// BatchEntry is one tweet of a micro-batched drain (see ProcessBatch).
// Span may be nil (tracing off). Offset is the tweet's ingest-log offset,
// applied when Logged is true — entries must carry offsets in order, as
// with ProcessLogged.
type BatchEntry struct {
	Tweet  *twitterdata.Tweet
	Span   *obs.Span
	Offset int64
	Logged bool
}

// labelOf resolves a tweet to the class index its instance will carry
// (ml.Unlabeled for unlabeled tweets and unknown label strings). It is
// the run-splitting predicate of ProcessBatch: an entry trains the model
// iff labelOf >= 0, exactly mirroring Instance.IsLabeled.
func (p *Pipeline) labelOf(tw *twitterdata.Tweet) int {
	if tw.IsLabeled() {
		return p.opts.Scheme.LabelIndex(tw.Label)
	}
	return ml.Unlabeled
}

// ProcessBatch runs a micro-batch of tweets through the pipeline,
// appending one Result per entry to results (pass results[:0] to reuse
// backing storage) and returning the extended slice.
//
// Labeled entries mutate the model, so they are processed one at a time
// on the fast path; maximal runs of consecutive unlabeled entries are
// batch-processed with two lock acquisitions for the whole run instead
// of two per tweet (see processRun). Every observable effect — verdicts,
// normalizer folds, sampler offers, alert decisions, log offsets —
// happens in exactly the order sequential Process calls would produce,
// so the verdict stream is bit-for-bit identical.
//
// Without a compiled snapshot the batch degenerates to per-entry locked
// processing.
func (p *Pipeline) ProcessBatch(entries []BatchEntry, results []Result) []Result {
	if p.snapshot.Load() == nil {
		p.mu.Lock()
		defer p.mu.Unlock()
		for _, e := range entries {
			results = append(results, p.processLocked(e.Tweet, e.Span))
			if e.Logged {
				p.logOffset = e.Offset
			}
			e.Span.EndStage()
		}
		return results
	}
	for i := 0; i < len(entries); {
		if p.labelOf(entries[i].Tweet) != ml.Unlabeled {
			e := entries[i]
			results = append(results, p.processFast(e.Tweet, e.Offset, e.Logged, e.Span))
			e.Span.EndStage()
			i++
			continue
		}
		j := i + 1
		for j < len(entries) && p.labelOf(entries[j].Tweet) == ml.Unlabeled {
			j++
		}
		results = p.processRun(entries[i:j], results)
		i = j
	}
	return results
}

// processRun batch-processes a run of consecutive unlabeled tweets in
// four phases: (A) extract every raw vector outside the lock — no entry
// in the run mutates the extractor, so each extraction sees exactly the
// state sequential processing would; (B) one critical section folds the
// normalizer statistics in entry order and refreshes the snapshot once;
// (C) classify every entry lock-free against that snapshot — the model
// cannot move inside an unlabeled run; (D) one critical section applies
// the mutation sections in entry order. Stages are closed eagerly after
// each entry's share of work so a span's stage durations never absorb
// other entries' time; inter-phase gaps appear only in the span total.
func (p *Pipeline) processRun(entries []BatchEntry, results []Result) []Result {
	base := len(results)
	raws := p.batchRaws[:0]
	for range entries {
		raws = append(raws, feature.GetVec())
	}
	for k, e := range entries {
		e.Span.BeginStage(obs.StageCache)
		if !p.extractor.LookupCached(raws[k][:], e.Tweet) {
			e.Span.BeginStage(obs.StageExtract)
			p.extractor.ExtractAndCache(raws[k][:], e.Tweet)
		}
		e.Span.EndStage()
	}

	xs := p.batchXs[:0]
	p.mu.Lock()
	for k, e := range entries {
		e.Span.BeginStage(obs.StageExtract)
		p.normalizer.Observe(raws[k][:])
		xs = append(xs, p.normalizer.Normalize(raws[k][:], nil))
		e.Span.EndStage()
	}
	snap := p.refreshSnapshotLocked(entries[0].Span)
	p.mu.Unlock()
	for _, raw := range raws {
		feature.PutVec(raw)
	}
	p.batchRaws = raws[:0]

	for k, e := range entries {
		e.Span.BeginStage(obs.StageClassify)
		votes := make(ml.Prediction, snap.NumClasses())
		snap.PredictInto(votes, p.classifyScratch, xs[k])
		e.Span.EndStage()
		results = append(results, Result{
			Instance:   ml.Instance{X: xs[k], Label: ml.Unlabeled, Weight: 1, ID: e.Tweet.IDStr, Day: e.Tweet.Day},
			Prediction: votes,
			Predicted:  votes.ArgMax(),
			Confidence: votes.Confidence(),
		})
	}
	p.batchXs = xs[:0]

	p.mu.Lock()
	for k, e := range entries {
		p.finishProcess(e.Tweet, &results[base+k], e.Span)
		if e.Logged {
			p.logOffset = e.Offset
		}
		e.Span.EndStage()
	}
	p.mu.Unlock()
	return results
}

// processAllBatch is the ProcessAll chunk size: large enough that the
// two-locks-per-run amortization dominates, small enough that the reused
// per-batch working storage stays cache-resident.
const processAllBatch = 256

// ProcessAll streams a dataset through the pipeline via the batched
// path, amortizing lock acquisitions over runs of unlabeled tweets.
func (p *Pipeline) ProcessAll(tweets []twitterdata.Tweet) {
	entries := make([]BatchEntry, 0, processAllBatch)
	results := make([]Result, 0, processAllBatch)
	for i := 0; i < len(tweets); i += processAllBatch {
		j := i + processAllBatch
		if j > len(tweets) {
			j = len(tweets)
		}
		entries = entries[:0]
		for k := i; k < j; k++ {
			entries = append(entries, BatchEntry{Tweet: &tweets[k]})
		}
		results = p.ProcessBatch(entries, results[:0])
	}
}

// Outcome is the per-tweet result computed by a parallel engine task:
// the class index (or ml.Unlabeled), the prediction, and its confidence.
type Outcome struct {
	Label int
	Pred  int
	Conf  float64
}

// AbsorbBatch applies the driver-side sequential steps for one processed
// micro-batch: prequential recording, adaptive-BoW learning, alerting,
// sampling, and bookkeeping. Engines call it after merging the batch's
// model and normalizer deltas; outcomes[i] corresponds to tweets[i].
func (p *Pipeline) AbsorbBatch(tweets []twitterdata.Tweet, outcomes []Outcome) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range tweets {
		tw := &tweets[i]
		o := outcomes[i]
		if o.Label >= 0 {
			p.evaluator.Record(o.Label, o.Pred)
			p.extractor.Learn(tw)
		} else {
			if o.Pred >= 0 && o.Pred < len(p.predCounts) {
				p.predCounts[o.Pred]++
			}
			votes := make(ml.Prediction, p.classes.Len())
			if o.Pred >= 0 && o.Pred < len(votes) {
				votes[o.Pred] = 1
			}
			p.sampler.Offer(tw, votes)
		}
		p.observeUser(tw, o.Pred > 0, o.Conf, nil)
		if o.Pred > 0 {
			p.alerter.Consider(tw, p.classes.Name(o.Pred), o.Conf)
		}
		p.processed++
		if p.opts.SampleStep > 0 && p.processed%p.opts.SampleStep == 0 {
			p.bowSizes = append(p.bowSizes, eval.Point{
				Instances: p.processed,
				Value:     float64(p.extractor.BoW().Size()),
			})
		}
	}
	// The engine merged model deltas (ApplyAccumulators) before calling
	// AbsorbBatch; re-publish so the snapshot catches up with the merge.
	p.refreshSnapshotLocked(nil)
}

// Summary returns the cumulative evaluation metrics.
func (p *Pipeline) Summary() eval.Report {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.evaluator.Summary()
}
