package core

import (
	"testing"

	"redhanded/internal/twitterdata"
)

func BenchmarkPipelineProcessLabeled(b *testing.B) {
	data := smallDataset(1, 4000, 2000, 400)
	p := NewPipeline(DefaultOptions())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Process(&data[i%len(data)])
	}
}

func BenchmarkPipelineProcessUnlabeled(b *testing.B) {
	p := NewPipeline(DefaultOptions())
	p.ProcessAll(smallDataset(2, 2000, 1000, 200))
	src := twitterdata.NewUnlabeledSource(3, 10)
	tweets := make([]twitterdata.Tweet, 2000)
	for i := range tweets {
		tweets[i] = src.Next()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Process(&tweets[i%len(tweets)])
	}
}
