package core

import (
	"bytes"
	"testing"
)

func TestCheckpointRoundTrip(t *testing.T) {
	data := smallDataset(41, 3000, 1500, 300)
	opts := DefaultOptions()
	p := NewPipeline(opts)
	p.ProcessAll(data[:3000])

	var buf bytes.Buffer
	if err := p.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}

	restored := NewPipeline(opts)
	if err := restored.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	if restored.Processed() != p.Processed() {
		t.Fatalf("processed %d != %d", restored.Processed(), p.Processed())
	}
	if restored.Summary() != p.Summary() {
		t.Fatalf("summaries differ:\n%+v\n%+v", restored.Summary(), p.Summary())
	}
	if restored.Extractor().BoW().Size() != p.Extractor().BoW().Size() {
		t.Fatalf("BoW sizes differ")
	}

	// Both pipelines continue identically on the remaining stream.
	rest := data[3000:]
	p.ProcessAll(rest)
	restored.ProcessAll(rest)
	if restored.Summary() != p.Summary() {
		t.Fatalf("diverged after restore:\n%+v\n%+v", restored.Summary(), p.Summary())
	}
}

func TestCheckpointSLR(t *testing.T) {
	opts := DefaultOptions()
	opts.Model = ModelSLR
	p := NewPipeline(opts)
	p.ProcessAll(smallDataset(42, 500, 250, 50))
	var buf bytes.Buffer
	if err := p.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	restored := NewPipeline(opts)
	if err := restored.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	if restored.Summary() != p.Summary() {
		t.Fatalf("SLR checkpoint mismatch")
	}
}

func TestCheckpointARFRoundTrip(t *testing.T) {
	data := smallDataset(44, 2000, 1000, 200)
	opts := DefaultOptions()
	opts.Model = ModelARF
	opts.ARF.EnsembleSize = 5
	p := NewPipeline(opts)
	p.ProcessAll(data[:2000])

	var buf bytes.Buffer
	if err := p.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	restored := NewPipeline(opts)
	if err := restored.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	if restored.Summary() != p.Summary() {
		t.Fatalf("summaries differ:\n%+v\n%+v", restored.Summary(), p.Summary())
	}

	// The checkpoint captures member trees, background trees, detector
	// state, and the structural RNG, so both forests must continue
	// identically — drift reactions included.
	rest := data[2000:]
	p.ProcessAll(rest)
	restored.ProcessAll(rest)
	if restored.Summary() != p.Summary() {
		t.Fatalf("ARF diverged after restore:\n%+v\n%+v", restored.Summary(), p.Summary())
	}
	before := p.Model().(interface{ DriftsDetected() int }).DriftsDetected()
	after := restored.Model().(interface{ DriftsDetected() int }).DriftsDetected()
	if before != after {
		t.Fatalf("drift counters diverged after restore: %d vs %d", before, after)
	}
}

func TestRestoreMismatches(t *testing.T) {
	p := NewPipeline(DefaultOptions())
	p.ProcessAll(smallDataset(43, 200, 100, 20))
	var buf bytes.Buffer
	if err := p.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}

	// Wrong model kind.
	slrOpts := DefaultOptions()
	slrOpts.Model = ModelSLR
	if err := NewPipeline(slrOpts).Restore(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatalf("model-kind mismatch accepted")
	}

	// Wrong class count.
	twoOpts := DefaultOptions()
	twoOpts.Scheme = TwoClass
	if err := NewPipeline(twoOpts).Restore(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatalf("class-count mismatch accepted")
	}

	// Garbage payload.
	if err := NewPipeline(DefaultOptions()).Restore(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatalf("garbage checkpoint accepted")
	}
}
