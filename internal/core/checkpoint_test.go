package core

import (
	"bytes"
	"encoding/gob"
	"testing"
)

func TestCheckpointRoundTrip(t *testing.T) {
	data := smallDataset(41, 3000, 1500, 300)
	opts := DefaultOptions()
	p := NewPipeline(opts)
	p.ProcessAll(data[:3000])

	var buf bytes.Buffer
	if err := p.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}

	restored := NewPipeline(opts)
	if err := restored.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	if restored.Processed() != p.Processed() {
		t.Fatalf("processed %d != %d", restored.Processed(), p.Processed())
	}
	if restored.Summary() != p.Summary() {
		t.Fatalf("summaries differ:\n%+v\n%+v", restored.Summary(), p.Summary())
	}
	if restored.Extractor().BoW().Size() != p.Extractor().BoW().Size() {
		t.Fatalf("BoW sizes differ")
	}

	// Both pipelines continue identically on the remaining stream.
	rest := data[3000:]
	p.ProcessAll(rest)
	restored.ProcessAll(rest)
	if restored.Summary() != p.Summary() {
		t.Fatalf("diverged after restore:\n%+v\n%+v", restored.Summary(), p.Summary())
	}
}

func TestCheckpointSLR(t *testing.T) {
	opts := DefaultOptions()
	opts.Model = ModelSLR
	p := NewPipeline(opts)
	p.ProcessAll(smallDataset(42, 500, 250, 50))
	var buf bytes.Buffer
	if err := p.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	restored := NewPipeline(opts)
	if err := restored.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	if restored.Summary() != p.Summary() {
		t.Fatalf("SLR checkpoint mismatch")
	}
}

func TestCheckpointARFRoundTrip(t *testing.T) {
	data := smallDataset(44, 2000, 1000, 200)
	opts := DefaultOptions()
	opts.Model = ModelARF
	opts.ARF.EnsembleSize = 5
	p := NewPipeline(opts)
	p.ProcessAll(data[:2000])

	var buf bytes.Buffer
	if err := p.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	restored := NewPipeline(opts)
	if err := restored.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	if restored.Summary() != p.Summary() {
		t.Fatalf("summaries differ:\n%+v\n%+v", restored.Summary(), p.Summary())
	}

	// The checkpoint captures member trees, background trees, detector
	// state, and the structural RNG, so both forests must continue
	// identically — drift reactions included.
	rest := data[2000:]
	p.ProcessAll(rest)
	restored.ProcessAll(rest)
	if restored.Summary() != p.Summary() {
		t.Fatalf("ARF diverged after restore:\n%+v\n%+v", restored.Summary(), p.Summary())
	}
	before := p.Model().(interface{ DriftsDetected() int }).DriftsDetected()
	after := restored.Model().(interface{ DriftsDetected() int }).DriftsDetected()
	if before != after {
		t.Fatalf("drift counters diverged after restore: %d vs %d", before, after)
	}
}

func TestRestoreMismatches(t *testing.T) {
	p := NewPipeline(DefaultOptions())
	p.ProcessAll(smallDataset(43, 200, 100, 20))
	var buf bytes.Buffer
	if err := p.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}

	// Wrong model kind.
	slrOpts := DefaultOptions()
	slrOpts.Model = ModelSLR
	if err := NewPipeline(slrOpts).Restore(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatalf("model-kind mismatch accepted")
	}

	// Wrong class count.
	twoOpts := DefaultOptions()
	twoOpts.Scheme = TwoClass
	if err := NewPipeline(twoOpts).Restore(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatalf("class-count mismatch accepted")
	}

	// Garbage payload.
	if err := NewPipeline(DefaultOptions()).Restore(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatalf("garbage checkpoint accepted")
	}
}

// TestCheckpointCarriesUserState proves the pipeline checkpoint round-
// trips the sharded user-state store: offense histories, session
// verdicts, and escalation state survive a restore, and the restored
// pipeline emits the identical verdict stream over the remaining tweets.
func TestCheckpointCarriesUserState(t *testing.T) {
	data := smallDataset(45, 2500, 1200, 250)
	opts := DefaultOptions()
	opts.Scheme = TwoClass
	p := NewPipeline(opts)
	p.ProcessAll(data[:3000])

	var buf bytes.Buffer
	if err := p.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	restored := NewPipeline(opts)
	if err := restored.Restore(&buf); err != nil {
		t.Fatal(err)
	}

	if got, want := restored.Users().Len(), p.Users().Len(); got != want {
		t.Fatalf("restored %d user records, want %d", got, want)
	}
	if got, want := restored.Users().SessionVerdicts(), p.Users().SessionVerdicts(); got != want {
		t.Fatalf("restored %d session verdicts, want %d", got, want)
	}
	suspended := p.Alerter().SuspendedUsers()
	restoredSuspended := restored.Alerter().SuspendedUsers()
	if len(suspended) != len(restoredSuspended) {
		t.Fatalf("suspension sets diverged: %v vs %v", suspended, restoredSuspended)
	}
	for i := range suspended {
		if suspended[i] != restoredSuspended[i] {
			t.Fatalf("suspension sets diverged (or unsorted): %v vs %v", suspended, restoredSuspended)
		}
	}

	// Continue both pipelines on the remaining stream: verdict streams and
	// per-user state must stay identical.
	rest := data[3000:]
	p.ProcessAll(rest)
	restored.ProcessAll(rest)
	if p.Users().SessionVerdicts() != restored.Users().SessionVerdicts() ||
		p.Users().Escalations() != restored.Users().Escalations() {
		t.Fatalf("verdict streams diverged after restore: (%d,%d) vs (%d,%d)",
			p.Users().SessionVerdicts(), p.Users().Escalations(),
			restored.Users().SessionVerdicts(), restored.Users().Escalations())
	}
	for _, id := range p.Alerter().SuspendedUsers() {
		a, okA := p.Users().Lookup(id)
		b, okB := restored.Users().Lookup(id)
		if !okA || !okB || a.Offenses != b.Offenses || a.Score != b.Score || a.Tweets != b.Tweets {
			t.Fatalf("user %s diverged after restore:\n%+v\n%+v", id, a, b)
		}
	}
}

// TestLegacyCheckpointWithoutUserState: a checkpoint written before the
// user-state layer (no UserStateBlob) restores cleanly with a fresh
// store rather than failing.
func TestLegacyCheckpointWithoutUserState(t *testing.T) {
	p := NewPipeline(DefaultOptions())
	p.ProcessAll(smallDataset(46, 300, 150, 30))
	var buf bytes.Buffer
	if err := p.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	// Re-encode the gob payload with the user-state blob stripped,
	// simulating the pre-userstate checkpoint format.
	var st checkpointState
	if err := gob.NewDecoder(&buf).Decode(&st); err != nil {
		t.Fatal(err)
	}
	st.UserStateBlob = nil
	var legacy bytes.Buffer
	if err := gob.NewEncoder(&legacy).Encode(st); err != nil {
		t.Fatal(err)
	}
	restored := NewPipeline(DefaultOptions())
	if err := restored.Restore(&legacy); err != nil {
		t.Fatalf("legacy checkpoint rejected: %v", err)
	}
	if restored.Processed() != p.Processed() {
		t.Fatalf("legacy restore lost model state")
	}
	if restored.Users().Len() != 0 {
		t.Fatalf("legacy restore invented user records")
	}
}
