package core

import (
	"testing"

	"redhanded/internal/eval"
	"redhanded/internal/twitterdata"
)

// TestARFRecoversFromConceptShiftHTDegrades exercises ADWIN end to end on
// the pipeline: a stream whose class-conditional distributions swap at a
// fixed offset (twitterdata's concept-shift mode). Fading prequential F1
// — the standard streaming health metric — must show the ARF detecting
// the drift, replacing member trees, and recovering close to its
// pre-shift level, while the plain Hoeffding tree, whose splits encode
// the dead concept, stays substantially worse.
func TestARFRecoversFromConceptShiftHTDegrades(t *testing.T) {
	cfg := twitterdata.AggressionConfig{
		Seed: 77, Days: 10,
		NormalCount: 7500, AbusiveCount: 3700, HatefulCount: 800,
		ShiftAt: 6000,
	}
	data := twitterdata.GenerateAggression(cfg)

	type outcome struct {
		pre, trough, end float64
		drifts           int64
	}
	run := func(opts Options) outcome {
		p := NewPipeline(opts)
		fading := eval.NewFadingPrequential(opts.Scheme.NumClasses(), 0.995)
		var o outcome
		o.trough = 1
		for i := range data {
			res := p.Process(&data[i])
			if res.Tested {
				fading.Record(res.Instance.Label, res.Predicted)
			}
			switch {
			case i == cfg.ShiftAt-1:
				o.pre = fading.WeightedF1()
			case i > cfg.ShiftAt && i%500 == 0:
				if f := fading.WeightedF1(); f < o.trough {
					o.trough = f
				}
			}
		}
		o.end = fading.WeightedF1()
		if d := p.DriftStats(); d != nil {
			o.drifts = d.TreeReplacements
		}
		return o
	}

	htOpts := DefaultOptions()
	htOpts.Scheme = TwoClass
	htOpts.SampleStep = 0

	arfOpts := htOpts
	arfOpts.Model = ModelARF
	arfOpts.ARF.EnsembleSize = 5

	ht := run(htOpts)
	arf := run(arfOpts)
	t.Logf("HT : pre=%.3f trough=%.3f end=%.3f", ht.pre, ht.trough, ht.end)
	t.Logf("ARF: pre=%.3f trough=%.3f end=%.3f drifts=%d", arf.pre, arf.trough, arf.end, arf.drifts)

	if arf.pre < 0.7 || ht.pre < 0.7 {
		t.Fatalf("models never learned the first concept: HT %.3f, ARF %.3f", ht.pre, arf.pre)
	}
	// The ARF's dip is shallow precisely because ADWIN reacts within a few
	// hundred instances; require only that the shift registered at all.
	if arf.trough > arf.pre-0.03 {
		t.Errorf("shift did not dent ARF's fading F1 (pre %.3f, trough %.3f): no drift to recover from", arf.pre, arf.trough)
	}
	if ht.trough > 0.5 {
		t.Errorf("shift barely dented HT (trough %.3f): the drift stressor is too weak", ht.trough)
	}
	if arf.drifts == 0 {
		t.Error("ARF replaced no trees across an abrupt concept shift")
	}
	if arf.end < arf.pre-0.08 {
		t.Errorf("ARF did not recover: pre-shift F1 %.3f, end %.3f", arf.pre, arf.end)
	}
	if ht.end > arf.end-0.05 {
		t.Errorf("HT did not degrade relative to ARF after the shift: HT %.3f, ARF %.3f", ht.end, arf.end)
	}
}
