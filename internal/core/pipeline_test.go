package core

import (
	"testing"

	"redhanded/internal/norm"
	"redhanded/internal/twitterdata"
)

// smallDataset returns a reduced aggression dataset for fast tests.
func smallDataset(seed uint64, n, a, h int) []twitterdata.Tweet {
	return twitterdata.GenerateAggression(twitterdata.AggressionConfig{
		Seed: seed, Days: 10, NormalCount: n, AbusiveCount: a, HatefulCount: h,
	})
}

func TestClassSchemes(t *testing.T) {
	if ThreeClass.NumClasses() != 3 || TwoClass.NumClasses() != 2 {
		t.Fatalf("class counts wrong")
	}
	if ThreeClass.LabelIndex(twitterdata.LabelHateful) != 2 {
		t.Fatalf("3-class hateful index wrong")
	}
	if TwoClass.LabelIndex(twitterdata.LabelHateful) != 1 {
		t.Fatalf("2-class hateful should merge into aggressive")
	}
	if TwoClass.LabelIndex(twitterdata.LabelAbusive) != 1 {
		t.Fatalf("2-class abusive index wrong")
	}
	if ThreeClass.LabelIndex("spam") != -1 {
		t.Fatalf("unknown label should map to -1")
	}
	if ThreeClass.String() != "c=3" || TwoClass.String() != "c=2" {
		t.Fatalf("scheme strings wrong")
	}
}

func TestModelKindString(t *testing.T) {
	if ModelHT.String() != "HT" || ModelARF.String() != "ARF" || ModelSLR.String() != "SLR" {
		t.Fatalf("model names wrong")
	}
}

func TestPipelineEndToEnd2Class(t *testing.T) {
	opts := DefaultOptions()
	opts.Scheme = TwoClass
	p := NewPipeline(opts)
	p.ProcessAll(smallDataset(1, 9000, 4500, 800))
	r := p.Summary()
	if r.F1 < 0.85 {
		t.Fatalf("2-class pipeline F1 = %v, want >= 0.85 (paper: ~0.91)", r.F1)
	}
	if r.Instances != 14300 {
		t.Fatalf("evaluated %d instances, want 14300", r.Instances)
	}
}

func TestPipelineEndToEnd3Class(t *testing.T) {
	p := NewPipeline(DefaultOptions())
	p.ProcessAll(smallDataset(2, 9000, 4500, 800))
	r := p.Summary()
	if r.F1 < 0.8 {
		t.Fatalf("3-class pipeline F1 = %v, want >= 0.8 (paper: ~0.87)", r.F1)
	}
}

func TestPipelineUnlabeledTraffic(t *testing.T) {
	p := NewPipeline(DefaultOptions())
	// Train on some labeled data first.
	p.ProcessAll(smallDataset(3, 2000, 1000, 200))
	trained := p.Summary().Instances

	src := twitterdata.NewUnlabeledSource(4, 10)
	for i := 0; i < 1000; i++ {
		tw := src.Next()
		res := p.Process(&tw)
		if res.Tested {
			t.Fatalf("unlabeled tweet entered evaluation")
		}
	}
	if p.Summary().Instances != trained {
		t.Fatalf("unlabeled traffic changed evaluation counts")
	}
	dist := p.PredictedDistribution()
	sum := 0.0
	for _, v := range dist {
		sum += v
	}
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("predicted distribution does not sum to 1: %v", dist)
	}
	if dist[0] < 0.3 {
		t.Fatalf("normal share suspiciously low: %v", dist)
	}
}

func TestPipelineRaisesAlerts(t *testing.T) {
	opts := DefaultOptions()
	opts.Scheme = TwoClass
	p := NewPipeline(opts)
	var alerts []Alert
	p.Alerter().Subscribe(AlertSinkFunc(func(a Alert) { alerts = append(alerts, a) }))
	p.ProcessAll(smallDataset(5, 4000, 2000, 400))
	if len(alerts) == 0 {
		t.Fatalf("no alerts raised over aggressive traffic")
	}
	if p.Alerter().Raised() != int64(len(alerts)) {
		t.Fatalf("alert count mismatch: %d vs %d", p.Alerter().Raised(), len(alerts))
	}
	for _, a := range alerts[:10] {
		if a.Confidence < opts.AlertThreshold {
			t.Fatalf("alert below confidence threshold: %+v", a)
		}
		if a.Label == "normal" {
			t.Fatalf("alert raised for normal prediction")
		}
	}
}

func TestPipelineBoWCurveGrows(t *testing.T) {
	opts := DefaultOptions()
	opts.SampleStep = 500
	p := NewPipeline(opts)
	p.ProcessAll(smallDataset(6, 5000, 2500, 500))
	curve := p.BoWSizeCurve()
	if len(curve) == 0 {
		t.Fatalf("no BoW size curve collected")
	}
	first, last := curve[0].Value, curve[len(curve)-1].Value
	if last <= first {
		t.Fatalf("adaptive BoW did not grow: %v -> %v", first, last)
	}
}

func TestPipelineFrozenBoWStaysAtSeed(t *testing.T) {
	opts := DefaultOptions()
	opts.AdaptiveBoW = false
	opts.SampleStep = 500
	p := NewPipeline(opts)
	p.ProcessAll(smallDataset(7, 2000, 1000, 200))
	curve := p.BoWSizeCurve()
	for _, pt := range curve {
		if pt.Value != 347 {
			t.Fatalf("frozen BoW size = %v, want 347", pt.Value)
		}
	}
}

func TestPipelineNormalizationMatters(t *testing.T) {
	// SLR without normalization collapses (Fig. 8: +42% F1 with n=ON).
	data := smallDataset(8, 6000, 3000, 500)
	mk := func(mode norm.Mode) float64 {
		opts := DefaultOptions()
		opts.Model = ModelSLR
		opts.Scheme = TwoClass
		opts.Normalization = mode
		p := NewPipeline(opts)
		p.ProcessAll(data)
		return p.Summary().F1
	}
	with := mk(norm.MinMaxRobust)
	without := mk(norm.None)
	if with <= without {
		t.Fatalf("normalization should help SLR: with=%v without=%v", with, without)
	}
	if with-without < 0.1 {
		t.Fatalf("normalization gap too small for SLR: with=%v without=%v", with, without)
	}
}

func TestPipelineDeterministicGivenSeed(t *testing.T) {
	data := smallDataset(9, 1000, 500, 100)
	run := func() float64 {
		p := NewPipeline(DefaultOptions())
		p.ProcessAll(data)
		return p.Summary().F1
	}
	if run() != run() {
		t.Fatalf("pipeline not deterministic")
	}
}

func TestLabelingLoopClosesAndImproves(t *testing.T) {
	// End-to-end §III-A loop: warm up -> classify unlabeled traffic ->
	// boosted sample -> annotate -> feed labels back.
	opts := DefaultOptions()
	opts.Scheme = TwoClass
	p := NewPipeline(opts)
	p.ProcessAll(smallDataset(51, 1500, 700, 150))
	trainedBefore := p.Summary().Instances

	// Unlabeled traffic with hidden ground truth.
	live := smallDataset(52, 1500, 700, 150)
	for i := range live {
		tw := live[i]
		tw.Label = ""
		p.Process(&tw)
	}
	sample := p.Sampler().Drain()
	if len(sample) == 0 {
		t.Fatalf("sampler returned nothing")
	}
	labeled := NewAnnotator(live, 0.05, 53).Annotate(sample)
	if len(labeled) != len(sample) {
		t.Fatalf("annotator dropped tweets: %d of %d", len(labeled), len(sample))
	}
	aggressive := 0
	for i := range labeled {
		if labeled[i].Label != "normal" {
			aggressive++
		}
		p.Process(&labeled[i])
	}
	// Boosting should have over-represented the aggressive minority.
	if share := float64(aggressive) / float64(len(labeled)); share < 0.4 {
		t.Fatalf("boosted sample aggressive share = %v, want >= 0.4", share)
	}
	if p.Summary().Instances <= trainedBefore {
		t.Fatalf("labeling round did not extend training")
	}
}

func TestPipelinePredictedDistributionAndProcessed(t *testing.T) {
	p := NewPipeline(DefaultOptions())
	p.ProcessAll(smallDataset(54, 500, 250, 50))
	if p.Processed() != 800 {
		t.Fatalf("processed = %d, want 800", p.Processed())
	}
	// No unlabeled traffic yet: distribution must be all zeros.
	for _, v := range p.PredictedDistribution() {
		if v != 0 {
			t.Fatalf("distribution nonzero without unlabeled traffic: %v", p.PredictedDistribution())
		}
	}
}

func TestPipelineAllThreeModels(t *testing.T) {
	data := smallDataset(10, 3000, 1500, 300)
	for _, kind := range []ModelKind{ModelHT, ModelARF, ModelSLR} {
		opts := DefaultOptions()
		opts.Model = kind
		opts.Scheme = TwoClass
		p := NewPipeline(opts)
		p.ProcessAll(data)
		if f1 := p.Summary().F1; f1 < 0.7 {
			t.Errorf("%v pipeline F1 = %v, want >= 0.7", kind, f1)
		}
	}
}
