// Package core implements the paper's primary contribution: the real-time
// aggression detection pipeline of Figure 1 — preprocessing, feature
// extraction, normalization, training, prediction, alerting, evaluation,
// sampling, and labeling — over streaming ML models that update
// incrementally as labeled tweets arrive.
package core

import (
	"fmt"

	"redhanded/internal/feature"
	"redhanded/internal/ml"
	"redhanded/internal/norm"
	"redhanded/internal/stream"
	"redhanded/internal/twitterdata"
	"redhanded/internal/userstate"
)

// ClassScheme selects the classification problem.
type ClassScheme int

const (
	// ThreeClass distinguishes normal / abusive / hateful (c=3).
	ThreeClass ClassScheme = iota
	// TwoClass distinguishes normal / aggressive, where aggressive merges
	// abusive and hateful (c=2).
	TwoClass
)

// Classes returns the class domain of the scheme.
func (s ClassScheme) Classes() ml.Classes {
	if s == TwoClass {
		return ml.NewClasses("normal", "aggressive")
	}
	return ml.NewClasses(twitterdata.LabelNormal, twitterdata.LabelAbusive, twitterdata.LabelHateful)
}

// LabelIndex maps a dataset label to its class index under the scheme
// (-1 for unknown labels).
func (s ClassScheme) LabelIndex(label string) int {
	switch label {
	case twitterdata.LabelNormal:
		return 0
	case twitterdata.LabelAbusive:
		return 1
	case twitterdata.LabelHateful:
		if s == TwoClass {
			return 1
		}
		return 2
	default:
		return -1
	}
}

// NumClasses returns 2 or 3.
func (s ClassScheme) NumClasses() int {
	if s == TwoClass {
		return 2
	}
	return 3
}

// String returns "c=2" or "c=3", the figure legend notation.
func (s ClassScheme) String() string {
	return fmt.Sprintf("c=%d", s.NumClasses())
}

// ModelKind selects the streaming classifier.
type ModelKind int

const (
	// ModelHT is the Hoeffding Tree.
	ModelHT ModelKind = iota
	// ModelARF is the Adaptive Random Forest of HTs.
	ModelARF
	// ModelSLR is Streaming Logistic Regression with SGD.
	ModelSLR
)

// String returns the paper's abbreviation.
func (k ModelKind) String() string {
	switch k {
	case ModelARF:
		return "ARF"
	case ModelSLR:
		return "SLR"
	default:
		return "HT"
	}
}

// Options configures a Pipeline. The zero value plus an Options from
// DefaultOptions matches the configuration the paper's headline results
// use: HT, 3-class, preprocessing ON, minmax-without-outliers
// normalization ON, adaptive BoW ON.
type Options struct {
	Scheme        ClassScheme
	Model         ModelKind
	Preprocess    bool
	Normalization norm.Mode
	AdaptiveBoW   bool
	// SampleStep is the metric-curve sampling period in instances
	// (0 disables curve collection).
	SampleStep int64
	// AlertThreshold is the minimum prediction confidence for raising an
	// alert on a tweet predicted aggressive.
	AlertThreshold float64
	// Seed drives every stochastic component.
	Seed uint64
	// HT / ARF / SLR hyperparameters; zero values resolve to the Table I
	// selections.
	HT  stream.HTConfig
	ARF stream.ARFConfig
	SLR stream.SLRConfig
	// Users configures the per-user state store (session windows, offense
	// history, escalation scoring, memory bounds). The zero value resolves
	// to the userstate defaults: 16 shards, unbounded users, 24h idle TTL.
	Users userstate.Config
	// DisableCompiledSnapshots forces the pipeline onto the fully locked
	// classify path even when the model supports compiled snapshots. It
	// exists for equivalence testing and benchmarking the two paths
	// against each other; production configurations leave it false.
	DisableCompiledSnapshots bool
	// FeatureCacheEntries sizes the content-addressed extraction cache
	// that memoizes text-feature vectors for duplicate tweet texts
	// (retweets/copypasta). 0 resolves to the default capacity; a negative
	// value disables the cache (the benchmarking no-cache baseline).
	// Requires Preprocess; the legacy extraction path never consults it.
	FeatureCacheEntries int
}

// defaultFeatureCacheEntries is the per-pipeline extraction-cache capacity
// when Options.FeatureCacheEntries is 0: large enough to cover the working
// set of recent viral texts per shard, small enough (~8k × 160B ≈ 1.3MB)
// to be negligible next to the userstate store.
const defaultFeatureCacheEntries = 8192

// DefaultOptions returns the configuration of the paper's main experiments.
func DefaultOptions() Options {
	return Options{
		Scheme:         ThreeClass,
		Model:          ModelHT,
		Preprocess:     true,
		Normalization:  norm.MinMaxRobust,
		AdaptiveBoW:    true,
		SampleStep:     1000,
		AlertThreshold: 0.5,
		Seed:           1,
	}
}

// newModel builds the configured streaming classifier.
func newModel(o Options) ml.DistributedClassifier {
	k := o.Scheme.NumClasses()
	switch o.Model {
	case ModelARF:
		cfg := o.ARF
		cfg.NumClasses = k
		cfg.NumFeatures = feature.NumFeatures
		if cfg.Seed == 0 {
			cfg.Seed = o.Seed
		}
		return stream.NewAdaptiveRandomForest(cfg)
	case ModelSLR:
		cfg := o.SLR
		cfg.NumClasses = k
		cfg.NumFeatures = feature.NumFeatures
		return stream.NewSLR(cfg)
	default:
		cfg := o.HT
		cfg.NumClasses = k
		cfg.NumFeatures = feature.NumFeatures
		return stream.NewHoeffdingTree(cfg)
	}
}
