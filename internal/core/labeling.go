package core

import (
	"redhanded/internal/ml"
	"redhanded/internal/twitterdata"
)

// Annotator simulates the labeling step: sampled tweets are returned as
// labeled tweets after a crowd-sourcing-like round, with configurable
// label noise. The paper delegates real labeling to moderators or
// platforms like CrowdFlower; this component closes the loop for
// end-to-end experiments.
type Annotator struct {
	// NoiseRate is the probability of assigning a wrong label.
	NoiseRate float64
	// truth recovers the ground-truth label for a tweet ID.
	truth map[string]string
	rng   *ml.RNG
}

// NewAnnotator builds an annotator from ground-truth tweets.
func NewAnnotator(groundTruth []twitterdata.Tweet, noiseRate float64, seed uint64) *Annotator {
	truth := make(map[string]string, len(groundTruth))
	for i := range groundTruth {
		if groundTruth[i].Label != "" {
			truth[groundTruth[i].IDStr] = groundTruth[i].Label
		}
	}
	return &Annotator{NoiseRate: noiseRate, truth: truth, rng: ml.NewRNG(seed)}
}

// Annotate labels a batch of sampled tweets. Tweets without ground truth
// are skipped; with probability NoiseRate a wrong label is assigned.
func (a *Annotator) Annotate(sample []twitterdata.Tweet) []twitterdata.Tweet {
	labels := []string{twitterdata.LabelNormal, twitterdata.LabelAbusive, twitterdata.LabelHateful}
	out := make([]twitterdata.Tweet, 0, len(sample))
	for _, tw := range sample {
		trueLabel, ok := a.truth[tw.IDStr]
		if !ok {
			continue
		}
		label := trueLabel
		if a.rng.Float64() < a.NoiseRate {
			// Pick a different label uniformly.
			for {
				cand := labels[a.rng.Intn(len(labels))]
				if cand != trueLabel {
					label = cand
					break
				}
			}
		}
		tw.Label = label
		out = append(out, tw)
	}
	return out
}
