package core

import (
	"fmt"
	"testing"
	"time"

	"redhanded/internal/twitterdata"
)

func sessionTweet(user string, at time.Time) *twitterdata.Tweet {
	return &twitterdata.Tweet{
		IDStr:     "t" + user,
		CreatedAt: at.Format(twitterdata.TimeLayout),
		User:      twitterdata.User{IDStr: user, ScreenName: user},
	}
}

func TestSessionVerdictOnRepeatedAggression(t *testing.T) {
	st := NewSessionTracker(SessionConfig{Window: time.Hour, MinTweets: 3, AggressiveShare: 0.6})
	base := time.Date(2017, 6, 1, 12, 0, 0, 0, time.UTC)
	var verdict *SessionVerdict
	for i := 0; i < 4; i++ {
		if v := st.Observe(sessionTweet("bully", base.Add(time.Duration(i)*time.Minute)), true, 0.9); v != nil {
			verdict = v
		}
	}
	if verdict == nil {
		t.Fatalf("no verdict after 4 aggressive tweets in a window")
	}
	if verdict.UserID != "bully" || verdict.Tweets < 3 || verdict.AggressiveShare != 1 {
		t.Fatalf("verdict wrong: %+v", verdict)
	}
	if verdict.MeanConfidence < 0.89 || verdict.MeanConfidence > 0.91 {
		t.Fatalf("mean confidence = %v", verdict.MeanConfidence)
	}
}

func TestSessionNoVerdictBelowShare(t *testing.T) {
	st := NewSessionTracker(SessionConfig{Window: time.Hour, MinTweets: 3, AggressiveShare: 0.6})
	base := time.Date(2017, 6, 1, 12, 0, 0, 0, time.UTC)
	// Alternating normal-first: the window share never reaches 0.6.
	for i := 0; i < 10; i++ {
		if v := st.Observe(sessionTweet("mixed", base.Add(time.Duration(i)*time.Minute)), i%2 == 1, 0.8); v != nil {
			t.Fatalf("verdict despite share below threshold: %+v", v)
		}
	}
}

func TestSessionWindowEviction(t *testing.T) {
	st := NewSessionTracker(SessionConfig{Window: 10 * time.Minute, MinTweets: 3, AggressiveShare: 0.5})
	base := time.Date(2017, 6, 1, 12, 0, 0, 0, time.UTC)
	// Two aggressive tweets, then a long gap: the window empties, so the
	// third aggressive tweet alone cannot produce a verdict.
	st.Observe(sessionTweet("u", base), true, 0.9)
	st.Observe(sessionTweet("u", base.Add(time.Minute)), true, 0.9)
	if v := st.Observe(sessionTweet("u", base.Add(2*time.Hour)), true, 0.9); v != nil {
		t.Fatalf("stale entries should have been evicted: %+v", v)
	}
}

func TestSessionCooldown(t *testing.T) {
	st := NewSessionTracker(SessionConfig{Window: time.Hour, MinTweets: 2, AggressiveShare: 0.5, Cooldown: time.Hour})
	base := time.Date(2017, 6, 1, 12, 0, 0, 0, time.UTC)
	verdicts := 0
	for i := 0; i < 10; i++ {
		if v := st.Observe(sessionTweet("u", base.Add(time.Duration(i)*time.Minute)), true, 0.9); v != nil {
			verdicts++
		}
	}
	if verdicts != 1 {
		t.Fatalf("cooldown broken: %d verdicts in one window", verdicts)
	}
	if st.Verdicts() != 1 {
		t.Fatalf("verdict counter = %d", st.Verdicts())
	}
}

func TestSessionSeparatesUsers(t *testing.T) {
	st := NewSessionTracker(SessionConfig{Window: time.Hour, MinTweets: 3, AggressiveShare: 0.9})
	base := time.Date(2017, 6, 1, 12, 0, 0, 0, time.UTC)
	// Three users each post one aggressive tweet: no user crosses
	// MinTweets, so no verdicts.
	for i := 0; i < 3; i++ {
		u := fmt.Sprintf("user%d", i)
		if v := st.Observe(sessionTweet(u, base.Add(time.Duration(i)*time.Minute)), true, 0.9); v != nil {
			t.Fatalf("cross-user aggregation leak: %+v", v)
		}
	}
	if st.ActiveUsers() != 3 {
		t.Fatalf("active users = %d, want 3", st.ActiveUsers())
	}
}

func TestSessionMalformedTimestampIgnored(t *testing.T) {
	st := NewSessionTracker(DefaultSessionConfig())
	tw := &twitterdata.Tweet{CreatedAt: "garbage", User: twitterdata.User{IDStr: "u"}}
	if v := st.Observe(tw, true, 0.9); v != nil {
		t.Fatalf("malformed timestamp produced a verdict")
	}
	if st.ActiveUsers() != 0 {
		t.Fatalf("malformed tweet tracked")
	}
}

func TestSessionPrune(t *testing.T) {
	st := NewSessionTracker(DefaultSessionConfig())
	base := time.Date(2017, 6, 1, 12, 0, 0, 0, time.UTC)
	st.Observe(sessionTweet("old", base), false, 0.1)
	st.Observe(sessionTweet("new", base.Add(3*time.Hour)), false, 0.1)
	removed := st.Prune(base.Add(time.Hour))
	if removed != 1 || st.ActiveUsers() != 1 {
		t.Fatalf("prune removed %d, active %d", removed, st.ActiveUsers())
	}
}

func TestSessionEndToEndWithPipeline(t *testing.T) {
	opts := DefaultOptions()
	opts.Scheme = TwoClass
	p := NewPipeline(opts)
	// Warm the model.
	p.ProcessAll(smallDataset(31, 2500, 1200, 250))

	st := NewSessionTracker(SessionConfig{Window: 24 * time.Hour, MinTweets: 3, AggressiveShare: 0.6})
	gen := twitterdata.NewGenerator(77, 10)
	verdicts := 0
	for i := 0; i < 300; i++ {
		tw := gen.Tweet(1, 0) // abusive traffic
		tw.User.IDStr = fmt.Sprintf("bully%d", i%5)
		res := p.Process(&tw)
		if v := st.Observe(&tw, res.Predicted > 0, res.Confidence); v != nil {
			verdicts++
		}
	}
	if verdicts == 0 {
		t.Fatalf("no session verdicts over concentrated abusive traffic")
	}
}

// TestSessionTrackerAmortizedEviction: the legacy tracker used to grow
// without bound unless callers remembered Prune. Backed by the userstate
// store, idle records are now retired incrementally inside Observe (24h
// event-time TTL) — no Prune call in sight.
func TestSessionTrackerAmortizedEviction(t *testing.T) {
	st := NewSessionTracker(DefaultSessionConfig())
	base := time.Date(2017, 6, 1, 12, 0, 0, 0, time.UTC)
	// 600 one-shot users spread over ~12 days of event time.
	for i := 0; i < 600; i++ {
		st.Observe(sessionTweet(fmt.Sprintf("oneshot%d", i), base.Add(time.Duration(i)*30*time.Minute)), false, 0.1)
	}
	if n := st.ActiveUsers(); n >= 400 {
		t.Fatalf("idle users not retired: %d of 600 still tracked", n)
	}
	// Prune still works as an explicit retirement point for the rest.
	st.Prune(base.Add(600 * 30 * time.Minute))
	if n := st.ActiveUsers(); n != 0 {
		t.Fatalf("prune left %d records", n)
	}
}
