package core

import (
	"encoding/gob"
	"fmt"
	"io"

	"redhanded/internal/norm"
	"redhanded/internal/stream"
)

// Checkpointing: a deployed detector must survive restarts without losing
// the incrementally learned state. A checkpoint captures the streaming
// model, the normalizer statistics, the adaptive BoW vocabulary, and the
// evaluation counters; restoring into a pipeline with the same Options
// resumes detection exactly where it stopped. Models must be remote-
// trainable — every kind in the stream codec registry (HT, SLR, ARF)
// qualifies, the same property the cluster engine requires. The ARF's
// encoding includes its drift detectors, background trees, and RNG state,
// so a restored forest reacts to future drift exactly as the original
// would have.

// checkpointState is the gob payload.
type checkpointState struct {
	ModelKind string
	ModelBlob []byte
	StatsBlob []byte
	BoWBlob   []byte
	Processed int64
	// Evaluation counters (confusion matrix cells, row-major).
	EvalK      int
	EvalCells  []int64
	PredCounts []int64
	// UserStateBlob is the sharded user-state store (sessions, offenses,
	// escalation scores, CLOCK order) in its own versioned, checksummed
	// encoding. Empty in checkpoints written before the store existed;
	// restoring such a checkpoint leaves the store fresh.
	UserStateBlob []byte
	// LogOffset is the applied ingest-log offset plus one, so that gob's
	// zero-value elision makes checkpoints written before the ingest log
	// existed (field absent, decodes as 0) restore to the fresh state -1.
	LogOffset int64
}

// Checkpoint serializes the pipeline's learned state.
func (p *Pipeline) Checkpoint(w io.Writer) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	rm, ok := p.model.(stream.RemoteTrainable)
	if !ok {
		return fmt.Errorf("core: model %T does not support checkpointing", p.model)
	}
	kind, err := stream.ModelKindOf(rm)
	if err != nil {
		return err
	}
	modelBlob, err := rm.MarshalBinary()
	if err != nil {
		return fmt.Errorf("core: checkpoint model: %w", err)
	}
	statsBlob, err := p.normalizer.Stats.MarshalBinary()
	if err != nil {
		return fmt.Errorf("core: checkpoint stats: %w", err)
	}
	bowBlob, err := p.extractor.BoW().MarshalBinary()
	if err != nil {
		return fmt.Errorf("core: checkpoint BoW: %w", err)
	}
	usersBlob, err := p.users.MarshalBinary()
	if err != nil {
		return fmt.Errorf("core: checkpoint user state: %w", err)
	}
	st := checkpointState{
		ModelKind:     kind,
		ModelBlob:     modelBlob,
		StatsBlob:     statsBlob,
		BoWBlob:       bowBlob,
		UserStateBlob: usersBlob,
		Processed:     p.processed,
		LogOffset:     p.logOffset + 1,
		EvalK:         p.evaluator.Matrix().NumClasses(),
		PredCounts:    append([]int64(nil), p.predCounts...),
	}
	k := st.EvalK
	st.EvalCells = make([]int64, k*k)
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			st.EvalCells[i*k+j] = p.evaluator.Matrix().Count(i, j)
		}
	}
	if err := gob.NewEncoder(w).Encode(st); err != nil {
		return fmt.Errorf("core: write checkpoint: %w", err)
	}
	return nil
}

// Restore loads a checkpoint into the pipeline. The pipeline must have
// been built with Options compatible with the checkpoint (same model kind
// and class count).
func (p *Pipeline) Restore(r io.Reader) error {
	var st checkpointState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return fmt.Errorf("core: read checkpoint: %w", err)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	rm, ok := p.model.(stream.RemoteTrainable)
	if !ok {
		return fmt.Errorf("core: model %T does not support checkpointing", p.model)
	}
	kind, err := stream.ModelKindOf(rm)
	if err != nil {
		return err
	}
	if kind != st.ModelKind {
		return fmt.Errorf("core: checkpoint is for model %s, pipeline uses %s", st.ModelKind, kind)
	}
	if st.EvalK != p.evaluator.Matrix().NumClasses() {
		return fmt.Errorf("core: checkpoint has %d classes, pipeline has %d",
			st.EvalK, p.evaluator.Matrix().NumClasses())
	}
	if err := rm.UnmarshalBinary(st.ModelBlob); err != nil {
		return fmt.Errorf("core: restore model: %w", err)
	}
	stats := norm.NewFeatureStats(p.normalizer.Stats.Dim())
	if err := stats.UnmarshalBinary(st.StatsBlob); err != nil {
		return fmt.Errorf("core: restore stats: %w", err)
	}
	p.normalizer.Stats = stats
	if err := p.extractor.BoW().UnmarshalBinary(st.BoWBlob); err != nil {
		return fmt.Errorf("core: restore BoW: %w", err)
	}
	if len(st.UserStateBlob) > 0 {
		if err := p.users.UnmarshalBinary(st.UserStateBlob); err != nil {
			return fmt.Errorf("core: restore user state: %w", err)
		}
	}
	p.processed = st.Processed
	p.logOffset = st.LogOffset - 1
	copy(p.predCounts, st.PredCounts)
	k := st.EvalK
	p.evaluator.Matrix().Reset()
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			p.evaluator.Matrix().AddN(i, j, st.EvalCells[i*k+j])
		}
	}
	// UnmarshalBinary bumped the model epoch; re-publish so lock-free
	// classifiers never see the pre-restore snapshot.
	p.refreshSnapshotLocked(nil)
	return nil
}
