package core

import (
	"bytes"
	"fmt"
	"math"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"redhanded/internal/twitterdata"
)

// mixedStream builds a tweet stream that exercises every processing path:
// labeled tweets (train), unlabeled tweets (sample/alert), and the
// occasional unknown label string (resolves to ml.Unlabeled). Stripping
// every third label creates runs of consecutive unlabeled tweets for the
// batched path to coalesce.
func mixedStream(seed uint64, n, a, h int) []twitterdata.Tweet {
	tweets := smallDataset(seed, n, a, h)
	for i := range tweets {
		switch {
		case i%3 == 1:
			tweets[i].Label = ""
		case i%50 == 17:
			tweets[i].Label = "spam" // unknown label -> ml.Unlabeled
		}
	}
	return tweets
}

// requireSameResult compares two Results bit-for-bit: votes and
// confidences by Float64bits, verdict payloads structurally.
func requireSameResult(t *testing.T, tag string, got, want Result) {
	t.Helper()
	if got.Predicted != want.Predicted {
		t.Fatalf("%s: predicted %d, want %d", tag, got.Predicted, want.Predicted)
	}
	if math.Float64bits(got.Confidence) != math.Float64bits(want.Confidence) {
		t.Fatalf("%s: confidence %v, want %v", tag, got.Confidence, want.Confidence)
	}
	if got.Alerted != want.Alerted || got.Tested != want.Tested {
		t.Fatalf("%s: alerted/tested (%v,%v), want (%v,%v)", tag, got.Alerted, got.Tested, want.Alerted, want.Tested)
	}
	if len(got.Prediction) != len(want.Prediction) {
		t.Fatalf("%s: %d vote classes, want %d", tag, len(got.Prediction), len(want.Prediction))
	}
	for c := range got.Prediction {
		if math.Float64bits(got.Prediction[c]) != math.Float64bits(want.Prediction[c]) {
			t.Fatalf("%s: class %d vote %v (bits %x), want %v (bits %x)", tag, c,
				got.Prediction[c], math.Float64bits(got.Prediction[c]),
				want.Prediction[c], math.Float64bits(want.Prediction[c]))
		}
	}
	if got.Instance.Label != want.Instance.Label || got.Instance.ID != want.Instance.ID {
		t.Fatalf("%s: instance (%d,%q), want (%d,%q)", tag,
			got.Instance.Label, got.Instance.ID, want.Instance.Label, want.Instance.ID)
	}
	for f := range got.Instance.X {
		if math.Float64bits(got.Instance.X[f]) != math.Float64bits(want.Instance.X[f]) {
			t.Fatalf("%s: feature %d = %v, want %v", tag, f, got.Instance.X[f], want.Instance.X[f])
		}
	}
	if !reflect.DeepEqual(got.Session, want.Session) {
		t.Fatalf("%s: session verdict %+v, want %+v", tag, got.Session, want.Session)
	}
	if !reflect.DeepEqual(got.Escalation, want.Escalation) {
		t.Fatalf("%s: escalation verdict %+v, want %+v", tag, got.Escalation, want.Escalation)
	}
}

// requireSameState compares the externally observable pipeline state the
// two paths must keep identical.
func requireSameState(t *testing.T, fast, locked *Pipeline) {
	t.Helper()
	if fast.Processed() != locked.Processed() {
		t.Fatalf("processed %d, want %d", fast.Processed(), locked.Processed())
	}
	if !reflect.DeepEqual(fast.Summary(), locked.Summary()) {
		t.Fatalf("summaries diverged:\nfast:   %+v\nlocked: %+v", fast.Summary(), locked.Summary())
	}
	if !reflect.DeepEqual(fast.PredictedDistribution(), locked.PredictedDistribution()) {
		t.Fatalf("predicted distributions diverged:\nfast:   %v\nlocked: %v",
			fast.PredictedDistribution(), locked.PredictedDistribution())
	}
	if !reflect.DeepEqual(fast.BoWSizeCurve(), locked.BoWSizeCurve()) {
		t.Fatalf("BoW size curves diverged")
	}
	if fast.LogOffset() != locked.LogOffset() {
		t.Fatalf("log offset %d, want %d", fast.LogOffset(), locked.LogOffset())
	}
	if fast.Alerter().Raised() != locked.Alerter().Raised() {
		t.Fatalf("alerts %d, want %d", fast.Alerter().Raised(), locked.Alerter().Raised())
	}
}

// TestFastPathMatchesLockedGolden is the tentpole equivalence proof: the
// lock-free compiled classify path must produce a bit-for-bit identical
// verdict stream to the fully locked path, for every model kind, over a
// stream mixing labeled, unlabeled, and unknown-label tweets.
func TestFastPathMatchesLockedGolden(t *testing.T) {
	for _, tc := range []struct {
		kind    ModelKind
		n, a, h int
	}{
		{ModelHT, 2500, 1200, 250},
		{ModelARF, 1200, 600, 120},
		{ModelSLR, 2500, 1200, 250},
	} {
		t.Run(tc.kind.String(), func(t *testing.T) {
			tweets := mixedStream(uint64(100+tc.kind), tc.n, tc.a, tc.h)
			opts := DefaultOptions()
			opts.Model = tc.kind
			fast := NewPipeline(opts)
			if !fast.SnapshotStats().Enabled {
				t.Fatalf("compiled snapshots should be on by default for %v", tc.kind)
			}
			lockedOpts := opts
			lockedOpts.DisableCompiledSnapshots = true
			locked := NewPipeline(lockedOpts)
			if locked.SnapshotStats().Enabled {
				t.Fatalf("DisableCompiledSnapshots did not disable the compiled path")
			}
			for i := range tweets {
				var fr, lr Result
				if i%4 == 2 { // exercise the logged variant too
					fr = fast.ProcessLogged(&tweets[i], int64(i), nil)
					lr = locked.ProcessLogged(&tweets[i], int64(i), nil)
				} else {
					fr = fast.Process(&tweets[i])
					lr = locked.Process(&tweets[i])
				}
				requireSameResult(t, fmt.Sprintf("%v/tweet%d", tc.kind, i), fr, lr)
			}
			requireSameState(t, fast, locked)
			if st := fast.SnapshotStats(); st.Rebuilds < 2 {
				t.Fatalf("fast path never rebuilt its snapshot: %+v", st)
			}
		})
	}
}

// TestProcessBatchMatchesSequential proves the micro-batched drain is a
// pure amortization: batching tweets through ProcessBatch yields the
// same results and state as one-at-a-time Process calls, for batch
// sizes that split labeled/unlabeled runs at every possible boundary.
func TestProcessBatchMatchesSequential(t *testing.T) {
	tweets := mixedStream(201, 1500, 700, 150)
	for _, batchSize := range []int{1, 7, 64} {
		t.Run(fmt.Sprintf("batch%d", batchSize), func(t *testing.T) {
			opts := DefaultOptions()
			opts.Model = ModelARF
			seq := NewPipeline(opts)
			bat := NewPipeline(opts)
			var seqResults []Result
			for i := range tweets {
				seqResults = append(seqResults, seq.ProcessLogged(&tweets[i], int64(i), nil))
			}
			var batResults []Result
			entries := make([]BatchEntry, 0, batchSize)
			for lo := 0; lo < len(tweets); lo += batchSize {
				hi := lo + batchSize
				if hi > len(tweets) {
					hi = len(tweets)
				}
				entries = entries[:0]
				for i := lo; i < hi; i++ {
					entries = append(entries, BatchEntry{Tweet: &tweets[i], Offset: int64(i), Logged: true})
				}
				batResults = bat.ProcessBatch(entries, batResults)
			}
			if len(batResults) != len(seqResults) {
				t.Fatalf("%d batched results, want %d", len(batResults), len(seqResults))
			}
			for i := range seqResults {
				requireSameResult(t, fmt.Sprintf("tweet%d", i), batResults[i], seqResults[i])
			}
			requireSameState(t, bat, seq)
		})
	}
}

// TestProcessBatchLockedPathMatches covers the ProcessBatch fallback:
// with snapshots disabled, batching must still equal sequential calls.
func TestProcessBatchLockedPathMatches(t *testing.T) {
	tweets := mixedStream(202, 600, 300, 60)
	opts := DefaultOptions()
	opts.DisableCompiledSnapshots = true
	seq := NewPipeline(opts)
	bat := NewPipeline(opts)
	var seqResults []Result
	for i := range tweets {
		seqResults = append(seqResults, seq.Process(&tweets[i]))
	}
	var batResults []Result
	for lo := 0; lo < len(tweets); lo += 16 {
		hi := lo + 16
		if hi > len(tweets) {
			hi = len(tweets)
		}
		entries := make([]BatchEntry, 0, 16)
		for i := lo; i < hi; i++ {
			entries = append(entries, BatchEntry{Tweet: &tweets[i]})
		}
		batResults = bat.ProcessBatch(entries, batResults)
	}
	for i := range seqResults {
		requireSameResult(t, fmt.Sprintf("tweet%d", i), batResults[i], seqResults[i])
	}
	requireSameState(t, bat, seq)
}

// TestSnapshotStalenessBound pins the publication rule: every Process
// call leaves the published snapshot caught up with the live model
// (age 0), so a train step is visible to lock-free classification within
// the same call — the staleness bound of one micro-batch.
func TestSnapshotStalenessBound(t *testing.T) {
	opts := DefaultOptions()
	opts.Model = ModelARF
	p := NewPipeline(opts)
	tweets := smallDataset(203, 300, 150, 30)
	for i := range tweets {
		p.Process(&tweets[i])
		if st := p.SnapshotStats(); st.Age != 0 {
			t.Fatalf("after tweet %d the snapshot is %d mutations stale (epoch %d, model %d)",
				i, st.Age, st.Epoch, st.ModelEpoch)
		}
	}
	st := p.SnapshotStats()
	if st.Rebuilds < 2 {
		t.Fatalf("labeled traffic should force rebuilds: %+v", st)
	}
	// Incremental rebuild: counter-based bagging leaves some member trees
	// untouched on most train steps, so total trees re-flattened must be
	// well below rebuilds × ensemble size.
	if st.Trees > 1 && st.TreesRebuilt >= st.Rebuilds*int64(st.Trees) {
		t.Fatalf("every rebuild re-flattened all %d trees (%d rebuilds, %d trees rebuilt): O(changed trees) lost",
			st.Trees, st.Rebuilds, st.TreesRebuilt)
	}
}

// TestSnapshotRestoreInvalidates proves a checkpoint restore republishes:
// the model is replaced wholesale, so a stale snapshot would classify
// against the pre-restore model forever.
func TestSnapshotRestoreInvalidates(t *testing.T) {
	opts := DefaultOptions()
	p := NewPipeline(opts)
	p.ProcessAll(smallDataset(204, 400, 200, 40))
	before := p.SnapshotStats()

	var buf bytes.Buffer
	if err := p.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	q := NewPipeline(opts)
	if err := q.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	st := q.SnapshotStats()
	if st.Age != 0 {
		t.Fatalf("restored pipeline snapshot is %d mutations stale", st.Age)
	}
	if st.Epoch == 0 && before.Epoch != 0 {
		t.Fatalf("restore did not republish (epoch 0 after restoring epoch-%d state)", before.Epoch)
	}
	// The two pipelines must now classify identically.
	probe := smallDataset(205, 50, 25, 5)
	for i := range probe {
		probe[i].Label = ""
		requireSameResult(t, fmt.Sprintf("probe%d", i), q.Process(&probe[i]), p.Process(&probe[i]))
	}
}

// TestFastClassifyRacingTraining races lock-free snapshot readers
// against the processing goroutine while ARF drift replaces member
// trees. Under -race this proves the published snapshot shares no
// mutable memory with the live model: readers re-evaluate a probe on
// whatever snapshot is current while the writer trains through a label
// flip. Reader classifications on one loaded snapshot must be
// self-consistent (two evaluations bit-identical), which fails if a
// published snapshot ever exposes a half-replaced ensemble member.
func TestFastClassifyRacingTraining(t *testing.T) {
	opts := DefaultOptions()
	opts.Model = ModelARF
	p := NewPipeline(opts)
	warm := smallDataset(206, 400, 200, 40)
	p.ProcessAll(warm)

	probe := p.ExtractInstance(&warm[0]).X

	var stop atomic.Bool
	var checks atomic.Int64
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var a, b, scratch []float64
			for !stop.Load() {
				snap := p.snapshot.Load()
				if snap == nil {
					continue
				}
				if len(a) < snap.NumClasses() {
					a = make([]float64, snap.NumClasses())
					b = make([]float64, snap.NumClasses())
					scratch = make([]float64, snap.ScratchLen())
				}
				snap.PredictInto(a[:snap.NumClasses()], scratch, probe)
				snap.PredictInto(b[:snap.NumClasses()], scratch, probe)
				for c := range a {
					if math.Float64bits(a[c]) != math.Float64bits(b[c]) {
						t.Errorf("snapshot votes changed between evaluations: class %d %v vs %v", c, a[c], b[c])
						stop.Store(true)
						return
					}
				}
				checks.Add(1)
			}
		}()
	}

	// Drive drift: same geometry generator, labels flipped by re-tagging
	// aggressive traffic as normal and vice versa.
	churn := smallDataset(207, 300, 600, 120)
	for i := range churn {
		switch churn[i].Label {
		case twitterdata.LabelNormal:
			churn[i].Label = twitterdata.LabelAbusive
		case twitterdata.LabelAbusive, twitterdata.LabelHateful:
			churn[i].Label = twitterdata.LabelNormal
		}
		p.Process(&churn[i])
	}
	stop.Store(true)
	wg.Wait()
	if checks.Load() == 0 {
		t.Fatalf("readers never observed a snapshot")
	}
}

// FuzzProcessBatchEquivalence fuzzes the run-splitting logic: arbitrary
// label patterns and batch sizes must never make the batched path
// diverge from sequential processing.
func FuzzProcessBatchEquivalence(f *testing.F) {
	f.Add(uint64(1), uint(5), uint64(0x35))
	f.Add(uint64(7), uint(1), uint64(0xff))
	f.Add(uint64(42), uint(31), uint64(0x00))
	f.Fuzz(func(t *testing.T, seed uint64, batchSize uint, labelMask uint64) {
		size := int(batchSize%64) + 1
		tweets := smallDataset(seed%1024, 60, 30, 10)
		for i := range tweets {
			if labelMask>>(uint(i)%64)&1 == 0 {
				tweets[i].Label = ""
			}
		}
		opts := DefaultOptions()
		seq := NewPipeline(opts)
		bat := NewPipeline(opts)
		var seqResults, batResults []Result
		for i := range tweets {
			seqResults = append(seqResults, seq.Process(&tweets[i]))
		}
		for lo := 0; lo < len(tweets); lo += size {
			hi := lo + size
			if hi > len(tweets) {
				hi = len(tweets)
			}
			entries := make([]BatchEntry, 0, size)
			for i := lo; i < hi; i++ {
				entries = append(entries, BatchEntry{Tweet: &tweets[i]})
			}
			batResults = bat.ProcessBatch(entries, batResults)
		}
		for i := range seqResults {
			requireSameResult(t, fmt.Sprintf("tweet%d", i), batResults[i], seqResults[i])
		}
		requireSameState(t, bat, seq)
	})
}

// BenchmarkProcessAllBatchedVsLoop compares the batched ProcessAll path
// against the per-tweet Process loop it replaced (the satellite
// benchmark): same unlabeled-heavy workload, same pipeline options.
func BenchmarkProcessAllBatchedVsLoop(b *testing.B) {
	tweets := mixedStream(300, 4000, 2000, 400)
	for i := range tweets {
		tweets[i].Label = "" // steady-state serving traffic is unlabeled
	}
	warm := smallDataset(301, 1000, 500, 100)
	bench := func(b *testing.B, run func(p *Pipeline, tweets []twitterdata.Tweet)) {
		p := NewPipeline(DefaultOptions())
		p.ProcessAll(warm)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			run(p, tweets)
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(tweets)), "ns/tweet")
	}
	b.Run("loop", func(b *testing.B) {
		bench(b, func(p *Pipeline, tweets []twitterdata.Tweet) {
			for i := range tweets {
				p.Process(&tweets[i])
			}
		})
	})
	b.Run("batched", func(b *testing.B) {
		bench(b, func(p *Pipeline, tweets []twitterdata.Tweet) {
			p.ProcessAll(tweets)
		})
	})
}
