package core

import (
	"testing"

	"redhanded/internal/ml"
	"redhanded/internal/twitterdata"
)

func mkTweet(id, userID string) *twitterdata.Tweet {
	return &twitterdata.Tweet{IDStr: id, User: twitterdata.User{IDStr: userID}}
}

func TestAlerterThreshold(t *testing.T) {
	a := NewAlerter(0.8)
	if a.Consider(mkTweet("1", "u1"), "abusive", 0.5) {
		t.Fatalf("below-threshold alert raised")
	}
	if !a.Consider(mkTweet("2", "u1"), "abusive", 0.9) {
		t.Fatalf("above-threshold alert suppressed")
	}
	if a.Raised() != 1 {
		t.Fatalf("raised = %d, want 1", a.Raised())
	}
}

func TestAlerterSinkDelivery(t *testing.T) {
	a := NewAlerter(0.5)
	var got []Alert
	a.Subscribe(AlertSinkFunc(func(al Alert) { got = append(got, al) }))
	a.Consider(mkTweet("7", "u9"), "hateful", 0.99)
	if len(got) != 1 || got[0].TweetID != "7" || got[0].Label != "hateful" {
		t.Fatalf("sink got %+v", got)
	}
}

func TestAlerterSuspension(t *testing.T) {
	a := NewAlerter(0.5)
	a.SuspendAfter = 3
	for i := 0; i < 2; i++ {
		a.Consider(mkTweet("x", "offender"), "abusive", 0.9)
	}
	if a.Suspended("offender") {
		t.Fatalf("suspended too early")
	}
	a.Consider(mkTweet("y", "offender"), "abusive", 0.9)
	if !a.Suspended("offender") {
		t.Fatalf("not suspended after 3 offenses")
	}
	if a.OffenseCount("offender") != 3 {
		t.Fatalf("offense count = %d", a.OffenseCount("offender"))
	}
	users := a.SuspendedUsers()
	if len(users) != 1 || users[0] != "offender" {
		t.Fatalf("suspended users = %v", users)
	}
	if a.Suspended("innocent") {
		t.Fatalf("innocent user suspended")
	}
}

func TestBoostedSamplerCapacity(t *testing.T) {
	s := NewBoostedSampler(SamplerConfig{Capacity: 10, Boost: 4, Seed: 1})
	for i := 0; i < 1000; i++ {
		s.Offer(mkTweet("t", "u"), ml.Prediction{1, 0})
	}
	if got := len(s.Sample()); got != 10 {
		t.Fatalf("reservoir size = %d, want 10", got)
	}
	if s.Offered() != 1000 {
		t.Fatalf("offered = %d", s.Offered())
	}
}

func TestBoostedSamplerBoostsAggressive(t *testing.T) {
	s := NewBoostedSampler(SamplerConfig{Capacity: 200, Boost: 8, Seed: 2})
	// 90% predicted normal, 10% predicted aggressive.
	rng := ml.NewRNG(3)
	for i := 0; i < 20000; i++ {
		if rng.Float64() < 0.1 {
			tw := mkTweet("a", "u")
			tw.Label = "" // unlabeled
			tw.Text = "aggr"
			s.Offer(tw, ml.Prediction{0.1, 0.9})
		} else {
			tw := mkTweet("n", "u")
			tw.Text = "norm"
			s.Offer(tw, ml.Prediction{0.9, 0.1})
		}
	}
	aggr := 0
	for _, tw := range s.Sample() {
		if tw.Text == "aggr" {
			aggr++
		}
	}
	share := float64(aggr) / 200
	// Boosted share should far exceed the 10% base rate.
	if share < 0.3 {
		t.Fatalf("aggressive share = %v, want >= 0.3 (boosting broken)", share)
	}
	if share > 0.95 {
		t.Fatalf("aggressive share = %v; normal tweets squeezed out entirely", share)
	}
}

func TestBoostedSamplerDrain(t *testing.T) {
	s := NewBoostedSampler(SamplerConfig{Capacity: 5, Boost: 1, Seed: 4})
	for i := 0; i < 20; i++ {
		s.Offer(mkTweet("t", "u"), ml.Prediction{1, 0})
	}
	if got := len(s.Drain()); got != 5 {
		t.Fatalf("drain size = %d", got)
	}
	if got := len(s.Sample()); got != 0 {
		t.Fatalf("reservoir not emptied: %d", got)
	}
}

func TestAnnotatorGroundTruth(t *testing.T) {
	truth := smallDataset(11, 50, 30, 10)
	ann := NewAnnotator(truth, 0, 1)
	labeled := ann.Annotate(truth[:20])
	if len(labeled) != 20 {
		t.Fatalf("annotated %d, want 20", len(labeled))
	}
	for i, tw := range labeled {
		if tw.Label != truth[i].Label {
			t.Fatalf("noise-free annotator changed label at %d", i)
		}
	}
}

func TestAnnotatorNoise(t *testing.T) {
	truth := smallDataset(12, 200, 100, 50)
	ann := NewAnnotator(truth, 1.0, 2) // always wrong
	labeled := ann.Annotate(truth)
	for i, tw := range labeled {
		if tw.Label == truth[i].Label {
			t.Fatalf("always-noisy annotator kept true label at %d", i)
		}
	}
}

func TestAnnotatorSkipsUnknown(t *testing.T) {
	ann := NewAnnotator(nil, 0, 3)
	got := ann.Annotate([]twitterdata.Tweet{{IDStr: "nope"}})
	if len(got) != 0 {
		t.Fatalf("unknown tweets should be skipped")
	}
}
