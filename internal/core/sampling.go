package core

import (
	"math"
	"sync"

	"redhanded/internal/ml"
	"redhanded/internal/twitterdata"
)

// SamplerConfig tunes the boosted random sampling step.
type SamplerConfig struct {
	// Capacity is the reservoir size (tweets kept for labeling).
	Capacity int
	// Boost multiplies the sampling weight of tweets predicted
	// aggressive, so the labeling sample is not dominated by the normal
	// majority (the minority-class problem of §I).
	Boost float64
	// Seed drives the sampling randomness.
	Seed uint64
}

// DefaultSamplerConfig returns a 1000-tweet reservoir with 8x boost.
func DefaultSamplerConfig(seed uint64) SamplerConfig {
	return SamplerConfig{Capacity: 1000, Boost: 8, Seed: seed}
}

// sampledTweet pairs a reservoir entry with its priority key.
type sampledTweet struct {
	tweet twitterdata.Tweet
	key   float64
}

// BoostedSampler implements boosted weighted reservoir sampling
// (Efraimidis-Spirakis A-Res): each tweet receives priority u^(1/w) where
// w is its weight — 1 for predicted-normal, Boost for predicted-aggressive
// — and the reservoir keeps the Capacity highest priorities. The result is
// a random sample whose aggressive share is boosted without biasing the
// within-class selection.
type BoostedSampler struct {
	mu      sync.Mutex
	cfg     SamplerConfig
	rng     *ml.RNG
	entries []sampledTweet // min-heap on key
	offered int64
}

// NewBoostedSampler creates the sampler.
func NewBoostedSampler(cfg SamplerConfig) *BoostedSampler {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 1000
	}
	if cfg.Boost <= 0 {
		cfg.Boost = 1
	}
	return &BoostedSampler{cfg: cfg, rng: ml.NewRNG(cfg.Seed)}
}

// Offer presents an unlabeled tweet with its prediction to the sampler.
func (s *BoostedSampler) Offer(tw *twitterdata.Tweet, votes ml.Prediction) {
	w := 1.0
	if votes.ArgMax() > 0 { // predicted aggressive (any non-normal class)
		w = s.cfg.Boost
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.offered++
	u := s.rng.Float64()
	if u == 0 {
		u = 1e-18
	}
	key := math.Pow(u, 1/w)
	// Clone on acceptance: reservoir tweets outlive the processing call,
	// and fast-decoded tweets carry arena-backed strings that a long-lived
	// sample must not pin. Rejected offers (the steady state once the
	// reservoir is warm) copy nothing.
	if len(s.entries) < s.cfg.Capacity {
		s.entries = append(s.entries, sampledTweet{tweet: tw.Clone(), key: key})
		s.up(len(s.entries) - 1)
		return
	}
	if key > s.entries[0].key {
		s.entries[0] = sampledTweet{tweet: tw.Clone(), key: key}
		s.down(0)
	}
}

// Sample returns the current reservoir contents (the tweets to send for
// manual labeling).
func (s *BoostedSampler) Sample() []twitterdata.Tweet {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]twitterdata.Tweet, len(s.entries))
	for i, e := range s.entries {
		out[i] = e.tweet
	}
	return out
}

// Offered returns how many tweets have been considered.
func (s *BoostedSampler) Offered() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.offered
}

// Drain empties the reservoir, returning its contents (a labeling round).
func (s *BoostedSampler) Drain() []twitterdata.Tweet {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]twitterdata.Tweet, len(s.entries))
	for i, e := range s.entries {
		out[i] = e.tweet
	}
	s.entries = s.entries[:0]
	return out
}

// min-heap maintenance on entries[.].key.
func (s *BoostedSampler) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if s.entries[parent].key <= s.entries[i].key {
			return
		}
		s.entries[parent], s.entries[i] = s.entries[i], s.entries[parent]
		i = parent
	}
}

func (s *BoostedSampler) down(i int) {
	n := len(s.entries)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && s.entries[l].key < s.entries[smallest].key {
			smallest = l
		}
		if r < n && s.entries[r].key < s.entries[smallest].key {
			smallest = r
		}
		if smallest == i {
			return
		}
		s.entries[i], s.entries[smallest] = s.entries[smallest], s.entries[i]
		i = smallest
	}
}
