package core

import (
	"sync"

	"redhanded/internal/metrics"
	"redhanded/internal/twitterdata"
)

// alertsRaisedTotal counts alerts across every pipeline in the process on
// the default metrics registry, so a serving deployment sees alert volume
// on /metrics without per-pipeline wiring.
var alertsRaisedTotal = metrics.Default().Counter(
	"redhanded_alerts_raised_total",
	"Alerts raised by the alerting step across all pipelines.", nil)

// Alert is raised in real time when a tweet is predicted aggressive with
// sufficient confidence.
type Alert struct {
	TweetID    string
	UserID     string
	ScreenName string
	Label      string // predicted class name
	Confidence float64
	Text       string
}

// AlertSink consumes alerts. Implementations may forward them to human
// moderators, post automatic warnings, or remove tweets (§III-A lists the
// options).
type AlertSink interface {
	HandleAlert(Alert)
}

// AlertSinkFunc adapts a function to the AlertSink interface.
type AlertSinkFunc func(Alert)

// HandleAlert implements AlertSink.
func (f AlertSinkFunc) HandleAlert(a Alert) { f(a) }

// Alerter implements the alerting step: it filters predictions by
// confidence, forwards alerts to registered sinks, and maintains a
// per-user alert history used to suspend accounts with repeated offenses.
type Alerter struct {
	mu        sync.Mutex
	threshold float64
	sinks     []AlertSink
	history   map[string]int
	suspended map[string]bool
	// SuspendAfter is the repeated-offense count that triggers an account
	// suspension recommendation (0 disables).
	SuspendAfter int
	raised       int64
}

// NewAlerter creates an alerter with the given confidence threshold.
func NewAlerter(threshold float64) *Alerter {
	return &Alerter{
		threshold:    threshold,
		history:      make(map[string]int),
		suspended:    make(map[string]bool),
		SuspendAfter: 5,
	}
}

// Subscribe registers a sink for future alerts.
func (a *Alerter) Subscribe(s AlertSink) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.sinks = append(a.sinks, s)
}

// Consider raises an alert when confidence clears the threshold; it
// returns whether an alert was raised.
func (a *Alerter) Consider(tw *twitterdata.Tweet, predicted string, confidence float64) bool {
	if confidence < a.threshold {
		return false
	}
	alert := Alert{
		TweetID:    tw.IDStr,
		UserID:     tw.User.IDStr,
		ScreenName: tw.User.ScreenName,
		Label:      predicted,
		Confidence: confidence,
		Text:       tw.Text,
	}
	a.mu.Lock()
	a.raised++
	alertsRaisedTotal.Inc()
	a.history[alert.UserID]++
	if a.SuspendAfter > 0 && a.history[alert.UserID] >= a.SuspendAfter {
		a.suspended[alert.UserID] = true
	}
	sinks := append([]AlertSink(nil), a.sinks...)
	a.mu.Unlock()
	for _, s := range sinks {
		s.HandleAlert(alert)
	}
	return true
}

// Raised returns the total number of alerts raised.
func (a *Alerter) Raised() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.raised
}

// OffenseCount returns the alert history of one user.
func (a *Alerter) OffenseCount(userID string) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.history[userID]
}

// Suspended reports whether the user crossed the repeated-offense bar.
func (a *Alerter) Suspended(userID string) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.suspended[userID]
}

// SuspendedUsers returns all users recommended for suspension.
func (a *Alerter) SuspendedUsers() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]string, 0, len(a.suspended))
	for u := range a.suspended {
		out = append(out, u)
	}
	return out
}
