package core

import (
	"sync"

	"redhanded/internal/metrics"
	"redhanded/internal/twitterdata"
	"redhanded/internal/userstate"
)

// alertsRaisedTotal counts alerts across every pipeline in the process on
// the default metrics registry, so a serving deployment sees alert volume
// on /metrics without per-pipeline wiring.
var alertsRaisedTotal = metrics.Default().Counter(
	"redhanded_alerts_raised_total",
	"Alerts raised by the alerting step across all pipelines.", nil)

// Alert is raised in real time when a tweet is predicted aggressive with
// sufficient confidence.
type Alert struct {
	TweetID    string  `json:"tweet_id"`
	UserID     string  `json:"user_id"`
	ScreenName string  `json:"screen_name"`
	Label      string  `json:"label"` // predicted class name
	Confidence float64 `json:"confidence"`
	Text       string  `json:"text"`
	// Offenses is the author's offense count including this alert, and
	// Suspended whether the count crossed the repeated-offense bar (zero
	// values for tweets without a user ID).
	Offenses  int  `json:"offenses,omitempty"`
	Suspended bool `json:"suspended,omitempty"`
}

// AlertSink consumes alerts. Implementations may forward them to human
// moderators, post automatic warnings, or remove tweets (§III-A lists the
// options).
type AlertSink interface {
	HandleAlert(Alert)
}

// AlertSinkFunc adapts a function to the AlertSink interface.
type AlertSinkFunc func(Alert)

// HandleAlert implements AlertSink.
func (f AlertSinkFunc) HandleAlert(a Alert) { f(a) }

// Alerter implements the alerting step: it filters predictions by
// confidence and forwards alerts to registered sinks. The per-user alert
// history and suspension flags live in the userstate store the alerter is
// bound to — the pipeline's sharded store, or a private one for
// standalone alerters — so history survives checkpoints and stays
// memory-bounded alongside the rest of the user state.
type Alerter struct {
	mu        sync.Mutex
	threshold float64
	sinks     []AlertSink
	users     *userstate.Store
	// SuspendAfter is the repeated-offense count that triggers an account
	// suspension recommendation (0 disables).
	SuspendAfter int
	raised       int64
}

// NewAlerter creates a standalone alerter with the given confidence
// threshold, backed by a private user-state store.
func NewAlerter(threshold float64) *Alerter {
	return newAlerterWith(threshold, userstate.New(userstate.Config{Shards: 4}))
}

// newAlerterWith binds the alerter to an existing store (the pipeline
// path: one store carries sessions, offenses, and escalation state).
func newAlerterWith(threshold float64, users *userstate.Store) *Alerter {
	return &Alerter{threshold: threshold, users: users, SuspendAfter: 5}
}

// Subscribe registers a sink for future alerts.
func (a *Alerter) Subscribe(s AlertSink) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.sinks = append(a.sinks, s)
}

// Consider raises an alert when confidence clears the threshold; it
// returns whether an alert was raised.
func (a *Alerter) Consider(tw *twitterdata.Tweet, predicted string, confidence float64) bool {
	if confidence < a.threshold {
		return false
	}
	alert := Alert{
		TweetID:    tw.IDStr,
		UserID:     tw.User.IDStr,
		ScreenName: tw.User.ScreenName,
		Label:      predicted,
		Confidence: confidence,
		Text:       tw.Text,
	}
	a.mu.Lock()
	a.raised++
	alertsRaisedTotal.Inc()
	suspendAfter := a.SuspendAfter
	sinks := append([]AlertSink(nil), a.sinks...)
	a.mu.Unlock()
	if alert.UserID != "" {
		// Offense-only: the session window and behavioral aggregates are
		// fed by the pipeline's own Observe for the same tweet.
		out := a.users.Observe(userstate.Observation{
			UserID:       alert.UserID,
			ScreenName:   alert.ScreenName,
			At:           tw.PostedAt(),
			Aggressive:   true,
			Confidence:   confidence,
			Offense:      true,
			SuspendAfter: suspendAfter,
			OffenseOnly:  true,
		})
		alert.Offenses = out.Offenses
		alert.Suspended = out.Suspended
	}
	for _, s := range sinks {
		s.HandleAlert(alert)
	}
	return true
}

// Raised returns the total number of alerts raised.
func (a *Alerter) Raised() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.raised
}

// OffenseCount returns the alert history of one user.
func (a *Alerter) OffenseCount(userID string) int { return a.users.OffenseCount(userID) }

// Suspended reports whether the user crossed the repeated-offense bar.
func (a *Alerter) Suspended(userID string) bool { return a.users.Suspended(userID) }

// SuspendedUsers returns all users recommended for suspension, sorted so
// repeated calls (and API clients) see a stable order.
func (a *Alerter) SuspendedUsers() []string { return a.users.SuspendedUsers() }
