package core

import (
	"time"

	"redhanded/internal/twitterdata"
	"redhanded/internal/userstate"
)

// Session-level detection is the paper's stated future work (§VI): forms
// of behavior like cyberbullying and trolling involve *repetitive* hostile
// actions, so they are detected over a group of tweets from the same user
// rather than a single tweet. The windowing itself now lives in the
// sharded internal/userstate store (which every Pipeline owns); this file
// keeps the original SessionTracker API as a thin adapter over a
// standalone store for callers that drive session detection outside a
// pipeline.

// SessionConfig tunes the session windows.
type SessionConfig = userstate.SessionConfig

// SessionVerdict is emitted when a user's sliding window crosses the
// aggression threshold.
type SessionVerdict = userstate.SessionVerdict

// EscalationVerdict flags a user trending toward aggression across
// sessions (see userstate.EscalationConfig for the scoring model).
type EscalationVerdict = userstate.EscalationVerdict

// DefaultSessionConfig returns 1-hour windows flagging >= 60% aggressive
// with at least 3 tweets.
func DefaultSessionConfig() SessionConfig { return userstate.DefaultSessionConfig() }

// SessionTracker aggregates per-tweet predictions into per-user session
// verdicts. It is safe for concurrent use.
//
// SessionTracker is a compatibility adapter over a userstate.Store: the
// store amortizes idle-record retirement into Observe (24h event-time
// TTL), so calling Prune is optional rather than load-bearing.
type SessionTracker struct {
	store *userstate.Store
}

// NewSessionTracker creates a tracker backed by its own user-state store.
func NewSessionTracker(cfg SessionConfig) *SessionTracker {
	return &SessionTracker{store: userstate.New(userstate.Config{
		Session: cfg,
		// Sessions only: the escalation detector stays out of the legacy
		// adapter's verdict stream.
		Escalation: userstate.EscalationConfig{Threshold: -1},
	})}
}

// Observe folds one classified tweet into its author's window and returns
// a verdict when the window crosses the threshold (nil otherwise).
func (st *SessionTracker) Observe(tw *twitterdata.Tweet, predictedAggressive bool, confidence float64) *SessionVerdict {
	at := tw.PostedAt()
	if at.IsZero() {
		return nil
	}
	out := st.store.Observe(userstate.Observation{
		UserID:     tw.User.IDStr,
		ScreenName: tw.User.ScreenName,
		At:         at,
		Aggressive: predictedAggressive,
		Confidence: confidence,
	})
	return out.Session
}

// Verdicts returns the number of session verdicts emitted.
func (st *SessionTracker) Verdicts() int64 { return st.store.SessionVerdicts() }

// ActiveUsers returns how many users currently have a tracked record.
func (st *SessionTracker) ActiveUsers() int { return st.store.Len() }

// Prune drops users whose windows ended before the cutoff. The store
// already retires idle users incrementally inside Observe; Prune remains
// for callers that want an explicit retirement point.
func (st *SessionTracker) Prune(cutoff time.Time) int { return st.store.Prune(cutoff) }

// Store exposes the backing user-state store (snapshots, checkpoints).
func (st *SessionTracker) Store() *userstate.Store { return st.store }
