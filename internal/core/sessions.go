package core

import (
	"sync"
	"time"

	"redhanded/internal/twitterdata"
)

// Session-level detection is the paper's stated future work (§VI): forms
// of behavior like cyberbullying and trolling involve *repetitive* hostile
// actions, so they are detected over a group of tweets from the same user
// rather than a single tweet, using the windowing facilities of the
// underlying stream engine. SessionTracker implements that: it maintains a
// sliding time window of per-tweet predictions for every user and flags a
// user session when enough of its recent tweets are predicted aggressive.

// SessionConfig tunes the session windows.
type SessionConfig struct {
	// Window is the sliding session length (default 1 hour).
	Window time.Duration
	// MinTweets is the minimum number of tweets in the window before a
	// session can be judged (default 3).
	MinTweets int
	// AggressiveShare is the fraction of window tweets predicted
	// aggressive that flags the session (default 0.6).
	AggressiveShare float64
	// Cooldown suppresses repeated verdicts for the same user within this
	// duration (default = Window).
	Cooldown time.Duration
}

// DefaultSessionConfig returns the defaults described above.
func DefaultSessionConfig() SessionConfig {
	return SessionConfig{Window: time.Hour, MinTweets: 3, AggressiveShare: 0.6}
}

func (c SessionConfig) withDefaults() SessionConfig {
	d := DefaultSessionConfig()
	if c.Window <= 0 {
		c.Window = d.Window
	}
	if c.MinTweets <= 0 {
		c.MinTweets = d.MinTweets
	}
	if c.AggressiveShare <= 0 {
		c.AggressiveShare = d.AggressiveShare
	}
	if c.Cooldown <= 0 {
		c.Cooldown = c.Window
	}
	return c
}

// SessionVerdict is emitted when a user's sliding window crosses the
// aggression threshold.
type SessionVerdict struct {
	UserID          string
	ScreenName      string
	WindowStart     time.Time
	WindowEnd       time.Time
	Tweets          int
	AggressiveShare float64
	MeanConfidence  float64
}

// sessionEntry is one observed tweet within a user window.
type sessionEntry struct {
	at         time.Time
	aggressive bool
	confidence float64
}

// userSession is the per-user sliding window.
type userSession struct {
	entries     []sessionEntry
	lastVerdict time.Time
	screenName  string
}

// SessionTracker aggregates per-tweet predictions into per-user session
// verdicts. It is safe for concurrent use.
type SessionTracker struct {
	mu       sync.Mutex
	cfg      SessionConfig
	sessions map[string]*userSession
	verdicts int64
}

// NewSessionTracker creates a tracker.
func NewSessionTracker(cfg SessionConfig) *SessionTracker {
	return &SessionTracker{cfg: cfg.withDefaults(), sessions: make(map[string]*userSession)}
}

// Observe folds one classified tweet into its author's window and returns
// a verdict when the window crosses the threshold (nil otherwise).
func (st *SessionTracker) Observe(tw *twitterdata.Tweet, predictedAggressive bool, confidence float64) *SessionVerdict {
	at := tw.PostedAt()
	if at.IsZero() {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()

	s := st.sessions[tw.User.IDStr]
	if s == nil {
		s = &userSession{}
		st.sessions[tw.User.IDStr] = s
	}
	s.screenName = tw.User.ScreenName
	s.entries = append(s.entries, sessionEntry{at: at, aggressive: predictedAggressive, confidence: confidence})

	// Evict entries that fell out of the window.
	cutoff := at.Add(-st.cfg.Window)
	keep := s.entries[:0]
	for _, e := range s.entries {
		if !e.at.Before(cutoff) {
			keep = append(keep, e)
		}
	}
	s.entries = keep

	if len(s.entries) < st.cfg.MinTweets {
		return nil
	}
	if !s.lastVerdict.IsZero() && at.Sub(s.lastVerdict) < st.cfg.Cooldown {
		return nil
	}
	aggr, confSum := 0, 0.0
	for _, e := range s.entries {
		if e.aggressive {
			aggr++
			confSum += e.confidence
		}
	}
	share := float64(aggr) / float64(len(s.entries))
	if share < st.cfg.AggressiveShare {
		return nil
	}
	s.lastVerdict = at
	st.verdicts++
	return &SessionVerdict{
		UserID:          tw.User.IDStr,
		ScreenName:      s.screenName,
		WindowStart:     s.entries[0].at,
		WindowEnd:       at,
		Tweets:          len(s.entries),
		AggressiveShare: share,
		MeanConfidence:  confSum / float64(aggr),
	}
}

// Verdicts returns the number of session verdicts emitted.
func (st *SessionTracker) Verdicts() int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.verdicts
}

// ActiveUsers returns how many users currently have a tracked window.
func (st *SessionTracker) ActiveUsers() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.sessions)
}

// Prune drops users whose windows ended before the cutoff, bounding
// memory over long streams.
func (st *SessionTracker) Prune(cutoff time.Time) int {
	st.mu.Lock()
	defer st.mu.Unlock()
	removed := 0
	for id, s := range st.sessions {
		if len(s.entries) == 0 || s.entries[len(s.entries)-1].at.Before(cutoff) {
			delete(st.sessions, id)
			removed++
		}
	}
	return removed
}
