package stream

import "redhanded/internal/ml"

// htLeafDelta is the task-local sufficient-statistics delta for one leaf:
// exactly the statistics a leaf maintains, accumulated separately so the
// driver can merge them into the global tree.
type htLeafDelta struct {
	classCounts []float64
	observers   []*gaussianObserver
	weight      float64
}

// htAccumulator implements ml.Accumulator for Hoeffding trees. It routes
// instances down a frozen view of the global tree and accumulates per-leaf
// deltas. The tree structure must not change between NewAccumulator and
// ApplyAccumulators; the engines guarantee this by training in micro-batch
// barriers.
type htAccumulator struct {
	tree   *HoeffdingTree
	deltas map[int64]*htLeafDelta
	count  int64
}

var _ ml.Accumulator = (*htAccumulator)(nil)

// NewAccumulator implements ml.DistributedClassifier.
func (t *HoeffdingTree) NewAccumulator() ml.Accumulator {
	return &htAccumulator{tree: t, deltas: make(map[int64]*htLeafDelta)}
}

// Observe implements ml.Accumulator.
func (a *htAccumulator) Observe(in ml.Instance) {
	if !in.IsLabeled() || in.Label >= a.tree.cfg.NumClasses || !in.Valid() {
		return
	}
	w := in.Weight
	if w <= 0 {
		w = 1
	}
	leaf := a.tree.sortingLeaf(in.X)
	d := a.deltas[leaf.id]
	if d == nil {
		d = &htLeafDelta{
			classCounts: make([]float64, a.tree.cfg.NumClasses),
			observers:   make([]*gaussianObserver, a.tree.cfg.NumFeatures),
		}
		a.deltas[leaf.id] = d
	}
	d.classCounts[in.Label] += w
	d.weight += w
	for f := range in.X {
		if d.observers[f] == nil {
			d.observers[f] = newGaussianObserver(a.tree.cfg.NumClasses)
		}
		d.observers[f].observe(in.X[f], in.Label, w)
	}
	a.count += int64(w)
}

// Count implements ml.Accumulator.
func (a *htAccumulator) Count() int64 { return a.count }

// ApplyAccumulators implements ml.DistributedClassifier: first merge every
// delta into its leaf, then attempt splits on the touched leaves. Deltas
// for leaves that no longer exist (stale accumulators) are dropped.
func (t *HoeffdingTree) ApplyAccumulators(accs []ml.Accumulator) {
	touched := make(map[int64]*htNode)
	mutated := false
	for _, raw := range accs {
		acc, ok := raw.(*htAccumulator)
		if !ok || acc.tree != t {
			continue
		}
		if acc.count != 0 || len(acc.deltas) > 0 {
			mutated = true
		}
		for id, d := range acc.deltas {
			leaf, ok := t.leaves[id]
			if !ok {
				continue
			}
			s := leaf.stats
			for c, cnt := range d.classCounts {
				s.classCounts[c] += cnt
			}
			s.weightSeen += d.weight
			for f, obs := range d.observers {
				if obs == nil {
					continue
				}
				if s.observers[f] == nil {
					s.observers[f] = newGaussianObserver(t.cfg.NumClasses)
				}
				s.observers[f].merge(obs)
			}
			touched[id] = leaf
		}
		t.trainCount += acc.count
	}
	for id, leaf := range touched {
		if _, still := t.leaves[id]; !still {
			continue // split by an earlier attempt in this merge round
		}
		s := leaf.stats
		if s.weightSeen-s.weightAtLastEval >= float64(t.cfg.GracePeriod) {
			s.weightAtLastEval = s.weightSeen
			t.attemptSplit(leaf)
		}
	}
	if mutated {
		t.epoch++
	}
}
