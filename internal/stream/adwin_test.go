package stream

import (
	"testing"

	"redhanded/internal/ml"
)

func TestADWINStationaryNoDrift(t *testing.T) {
	a := NewADWIN(0.002)
	rng := ml.NewRNG(1)
	for i := 0; i < 20000; i++ {
		bit := 0.0
		if rng.Float64() < 0.3 {
			bit = 1
		}
		a.Add(bit)
	}
	if d := a.Drifts(); d > 2 {
		t.Fatalf("stationary stream triggered %d drifts, want <= 2", d)
	}
	if m := a.Mean(); m < 0.25 || m > 0.35 {
		t.Fatalf("window mean = %v, want ~0.3", m)
	}
}

func TestADWINDetectsAbruptShift(t *testing.T) {
	a := NewADWIN(0.002)
	rng := ml.NewRNG(2)
	detected := false
	for i := 0; i < 4000; i++ {
		p := 0.1
		if i >= 2000 {
			p = 0.9
		}
		bit := 0.0
		if rng.Float64() < p {
			bit = 1
		}
		if a.Add(bit) && i >= 2000 {
			detected = true
		}
	}
	if !detected {
		t.Fatalf("abrupt 0.1 -> 0.9 shift not detected")
	}
	// After the shift, the window should track the new mean.
	if m := a.Mean(); m < 0.6 {
		t.Fatalf("post-drift window mean = %v, want > 0.6", m)
	}
}

func TestADWINWindowShrinksOnDrift(t *testing.T) {
	a := NewADWIN(0.002)
	rng := ml.NewRNG(3)
	for i := 0; i < 3000; i++ {
		bit := 0.0
		if rng.Float64() < 0.05 {
			bit = 1
		}
		a.Add(bit)
	}
	widthBefore := a.Width()
	for i := 0; i < 1500; i++ {
		bit := 0.0
		if rng.Float64() < 0.95 {
			bit = 1
		}
		a.Add(bit)
	}
	if a.Width() >= widthBefore+1500 {
		t.Fatalf("window did not shrink after drift: before=%d after=%d", widthBefore, a.Width())
	}
}

func TestADWINInvalidDeltaDefaults(t *testing.T) {
	a := NewADWIN(-1)
	if a.Delta <= 0 || a.Delta >= 1 {
		t.Fatalf("invalid delta not defaulted: %v", a.Delta)
	}
}

func TestADWINMeanTracksInput(t *testing.T) {
	a := NewADWIN(0.002)
	for i := 0; i < 1000; i++ {
		a.Add(0.5)
	}
	if m := a.Mean(); m != 0.5 {
		t.Fatalf("constant stream mean = %v, want 0.5", m)
	}
	if a.Width() != 1000 {
		t.Fatalf("width = %d, want 1000 (no spurious drops)", a.Width())
	}
}

func TestADWINEmptyWindow(t *testing.T) {
	a := NewADWIN(0.002)
	if a.Mean() != 0 || a.Width() != 0 || a.Drifts() != 0 {
		t.Fatalf("fresh detector not empty: mean=%v width=%d", a.Mean(), a.Width())
	}
}
