package stream

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"redhanded/internal/ml"
	"redhanded/internal/norm"
)

// Serialization support for distributed execution: the micro-batch engines
// broadcast the global model to tasks/executors each batch (the paper notes
// the serialized global model stays under 1 MB) and ship the local
// sufficient-statistic deltas back for merging. This file holds the
// Hoeffding-tree and SLR encodings; the ARF encoding lives in
// arf_serialize.go, and the kind registry the transport layers consume is
// in codec.go.

// RemoteTrainable is a streaming model that can cross process boundaries:
// it serializes its full state (broadcast), restores it (executor side),
// and reconstitutes accumulator deltas produced remotely.
type RemoteTrainable interface {
	ml.DistributedClassifier
	// Kind returns the model's stable wire tag (see RegisterCodec).
	Kind() string
	MarshalBinary() ([]byte, error)
	UnmarshalBinary(data []byte) error
	// AccumulatorFromState rebuilds a remote accumulator delta so it can
	// be passed to ApplyAccumulators on the global model.
	AccumulatorFromState(data []byte) (ml.Accumulator, error)
}

// StatefulAccumulator is an accumulator whose delta can be serialized and
// shipped to the driver.
type StatefulAccumulator interface {
	ml.Accumulator
	State() ([]byte, error)
}

// --- Hoeffding tree ---

// htNodeState is the gob DTO for one tree node (pre-order encoding).
type htNodeState struct {
	ID        int64
	Depth     int
	Leaf      bool
	Feature   int
	Threshold float64
	// Leaf payload: observers are sparse (nil until a feature is seen), so
	// only present ones are encoded, keyed by feature index.
	ClassCounts      []float64
	ObsIdx           []int
	Obs              []ObserverState
	WeightSeen       float64
	WeightAtLastEval float64
	MCCorrect        float64
	NBCorrect        float64
}

// ObserverState is the gob DTO for a Gaussian attribute observer.
type ObserverState struct {
	PerClass []norm.Welford
	Range    norm.RangeStat
}

// htState is the gob DTO for a whole tree.
type htState struct {
	Cfg        HTConfig
	Nodes      []htNodeState // pre-order
	NextID     int64
	TrainCount int64
	SplitCount int64
}

// Version identifies the tree structure: it changes on every split, so
// accumulators can be validated against the structure they were built for.
func (t *HoeffdingTree) Version() int64 { return t.splitCount }

// MarshalBinary implements encoding.BinaryMarshaler via a pre-order gob
// encoding of the tree.
func (t *HoeffdingTree) MarshalBinary() ([]byte, error) {
	st := htState{
		Cfg:        t.cfg,
		NextID:     t.nextID,
		TrainCount: t.trainCount,
		SplitCount: t.splitCount,
	}
	var walk func(n *htNode)
	walk = func(n *htNode) {
		ns := htNodeState{ID: n.id, Depth: n.depth, Leaf: n.isLeaf()}
		if n.isLeaf() {
			s := n.stats
			ns.ClassCounts = s.classCounts
			ns.WeightSeen = s.weightSeen
			ns.WeightAtLastEval = s.weightAtLastEval
			ns.MCCorrect = s.mcCorrect
			ns.NBCorrect = s.nbCorrect
			for i, o := range s.observers {
				if o != nil {
					ns.ObsIdx = append(ns.ObsIdx, i)
					ns.Obs = append(ns.Obs, ObserverState{PerClass: o.PerClass, Range: o.Range})
				}
			}
			st.Nodes = append(st.Nodes, ns)
			return
		}
		ns.Feature = n.feature
		ns.Threshold = n.threshold
		st.Nodes = append(st.Nodes, ns)
		walk(n.left)
		walk(n.right)
	}
	walk(t.root)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("stream: encode hoeffding tree: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary restores the tree state in place.
func (t *HoeffdingTree) UnmarshalBinary(data []byte) error {
	var st htState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("stream: decode hoeffding tree: %w", err)
	}
	t.cfg = st.Cfg
	t.nextID = st.NextID
	t.trainCount = st.TrainCount
	t.splitCount = st.SplitCount
	t.leaves = make(map[int64]*htNode)
	pos := 0
	var build func() (*htNode, error)
	build = func() (*htNode, error) {
		if pos >= len(st.Nodes) {
			return nil, fmt.Errorf("stream: truncated tree encoding")
		}
		ns := st.Nodes[pos]
		pos++
		n := &htNode{id: ns.ID, depth: ns.Depth}
		if ns.Leaf {
			s := newLeafStats(st.Cfg.NumClasses, st.Cfg.NumFeatures)
			s.classCounts = ns.ClassCounts
			s.weightSeen = ns.WeightSeen
			s.weightAtLastEval = ns.WeightAtLastEval
			s.mcCorrect = ns.MCCorrect
			s.nbCorrect = ns.NBCorrect
			for k, i := range ns.ObsIdx {
				if i >= 0 && i < len(s.observers) {
					o := ns.Obs[k]
					s.observers[i] = &gaussianObserver{PerClass: o.PerClass, Range: o.Range}
				}
			}
			n.stats = s
			t.leaves[n.id] = n
			return n, nil
		}
		n.feature = ns.Feature
		n.threshold = ns.Threshold
		var err error
		if n.left, err = build(); err != nil {
			return nil, err
		}
		if n.right, err = build(); err != nil {
			return nil, err
		}
		return n, nil
	}
	root, err := build()
	if err != nil {
		return err
	}
	if pos != len(st.Nodes) {
		return fmt.Errorf("stream: trailing nodes in tree encoding")
	}
	t.root = root
	t.epoch++ // the whole tree was rebuilt: invalidate compiled snapshots
	return nil
}

// htDeltaState is the gob DTO of an accumulator delta.
type htDeltaState struct {
	Version int64
	Count   int64
	LeafIDs []int64
	Deltas  []htLeafDeltaState
}

type htLeafDeltaState struct {
	ClassCounts []float64
	ObsIdx      []int
	Obs         []ObserverState
	Weight      float64
}

// State implements StatefulAccumulator.
func (a *htAccumulator) State() ([]byte, error) {
	st := htDeltaState{Version: a.tree.Version(), Count: a.count}
	for id, d := range a.deltas {
		ds := htLeafDeltaState{ClassCounts: d.classCounts, Weight: d.weight}
		for i, o := range d.observers {
			if o != nil {
				ds.ObsIdx = append(ds.ObsIdx, i)
				ds.Obs = append(ds.Obs, ObserverState{PerClass: o.PerClass, Range: o.Range})
			}
		}
		st.LeafIDs = append(st.LeafIDs, id)
		st.Deltas = append(st.Deltas, ds)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("stream: encode HT delta: %w", err)
	}
	return buf.Bytes(), nil
}

// AccumulatorFromState implements RemoteTrainable: it rebinds a remote
// delta to this tree, rejecting deltas built against a different tree
// structure.
func (t *HoeffdingTree) AccumulatorFromState(data []byte) (ml.Accumulator, error) {
	var st htDeltaState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return nil, fmt.Errorf("stream: decode HT delta: %w", err)
	}
	if st.Version != t.Version() {
		return nil, fmt.Errorf("stream: HT delta version %d does not match tree version %d", st.Version, t.Version())
	}
	acc := &htAccumulator{tree: t, deltas: make(map[int64]*htLeafDelta), count: st.Count}
	for i, id := range st.LeafIDs {
		d := st.Deltas[i]
		obs := make([]*gaussianObserver, t.cfg.NumFeatures)
		for k, j := range d.ObsIdx {
			if j >= 0 && j < len(obs) {
				o := d.Obs[k]
				obs[j] = &gaussianObserver{PerClass: o.PerClass, Range: o.Range}
			}
		}
		acc.deltas[id] = &htLeafDelta{classCounts: d.ClassCounts, observers: obs, weight: d.Weight}
	}
	return acc, nil
}

// --- Streaming logistic regression ---

// slrState is the gob DTO for SLR.
type slrState struct {
	Cfg        SLRConfig
	W          [][]float64
	TrainCount int64
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (s *SLR) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(slrState{Cfg: s.cfg, W: s.w, TrainCount: s.trainCount})
	if err != nil {
		return nil, fmt.Errorf("stream: encode SLR: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary restores the model state in place.
func (s *SLR) UnmarshalBinary(data []byte) error {
	var st slrState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("stream: decode SLR: %w", err)
	}
	s.cfg = st.Cfg
	s.w = st.W
	s.trainCount = st.TrainCount
	s.epoch++ // weights replaced: invalidate compiled snapshots
	return nil
}

// slrDeltaState is the gob DTO of an SLR accumulator.
type slrDeltaState struct {
	W     [][]float64
	Count int64
}

// State implements StatefulAccumulator.
func (a *slrAccumulator) State() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(slrDeltaState{W: a.w, Count: a.count}); err != nil {
		return nil, fmt.Errorf("stream: encode SLR delta: %w", err)
	}
	return buf.Bytes(), nil
}

// AccumulatorFromState implements RemoteTrainable.
func (s *SLR) AccumulatorFromState(data []byte) (ml.Accumulator, error) {
	var st slrDeltaState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return nil, fmt.Errorf("stream: decode SLR delta: %w", err)
	}
	return &slrAccumulator{cfg: s.cfg, w: st.W, count: st.Count}, nil
}

// Model kind tags used by the cluster protocol and checkpoints.
const (
	KindHT  = "HT"
	KindSLR = "SLR"
	KindARF = "ARF"
)

// Kind implements RemoteTrainable.
func (t *HoeffdingTree) Kind() string { return KindHT }

// Kind implements RemoteTrainable.
func (s *SLR) Kind() string { return KindSLR }

func init() {
	RegisterCodec(Codec{Kind: KindHT, New: func() RemoteTrainable { return new(HoeffdingTree) }})
	RegisterCodec(Codec{Kind: KindSLR, New: func() RemoteTrainable { return new(SLR) }})
}

// Interface conformance checks.
var (
	_ RemoteTrainable     = (*HoeffdingTree)(nil)
	_ RemoteTrainable     = (*SLR)(nil)
	_ StatefulAccumulator = (*htAccumulator)(nil)
	_ StatefulAccumulator = (*slrAccumulator)(nil)
)
