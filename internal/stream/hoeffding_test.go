package stream

import (
	"math"
	"testing"

	"redhanded/internal/ml"
)

func defaultHT(classes, features int) *HoeffdingTree {
	return NewHoeffdingTree(HTConfig{NumClasses: classes, NumFeatures: features})
}

func TestHTLearnsSeparableData(t *testing.T) {
	data := gaussianStream(8000, 2, 4, 4, 1)
	acc := prequentialAccuracy(defaultHT(2, 4), data)
	if acc < 0.9 {
		t.Fatalf("prequential accuracy = %v, want >= 0.9", acc)
	}
}

func TestHTLearnsThreeClasses(t *testing.T) {
	data := gaussianStream(20000, 3, 4, 4, 2)
	acc := prequentialAccuracy(defaultHT(3, 4), data)
	if acc < 0.85 {
		t.Fatalf("3-class prequential accuracy = %v, want >= 0.85", acc)
	}
}

func TestHTGrowsAndRespectsDepth(t *testing.T) {
	cfg := HTConfig{NumClasses: 2, NumFeatures: 2, MaxDepth: 2, GracePeriod: 50}
	ht := NewHoeffdingTree(cfg)
	for _, in := range gaussianStream(20000, 2, 2, 3, 3) {
		ht.Train(in)
	}
	if ht.NumLeaves() < 2 {
		t.Fatalf("tree never split: %d leaves", ht.NumLeaves())
	}
	if d := ht.Depth(); d > 2 {
		t.Fatalf("depth = %d exceeds MaxDepth 2", d)
	}
}

func TestHTPureStreamDoesNotSplit(t *testing.T) {
	ht := defaultHT(2, 2)
	rng := ml.NewRNG(4)
	for i := 0; i < 5000; i++ {
		ht.Train(ml.NewInstance([]float64{rng.NormFloat64(), rng.NormFloat64()}, 0))
	}
	if ht.NumLeaves() != 1 {
		t.Fatalf("pure stream split the tree: %d leaves", ht.NumLeaves())
	}
}

func TestHTIgnoresInvalidInstances(t *testing.T) {
	ht := defaultHT(2, 2)
	ht.Train(ml.Instance{X: []float64{1, 2}, Label: ml.Unlabeled, Weight: 1})
	ht.Train(ml.Instance{X: []float64{math.NaN(), 0}, Label: 0, Weight: 1})
	ht.Train(ml.Instance{X: []float64{1, 2}, Label: 9, Weight: 1}) // out of range
	if ht.TrainCount() != 0 {
		t.Fatalf("invalid instances were counted: %d", ht.TrainCount())
	}
}

func TestHTWeightedTrainingEquivalence(t *testing.T) {
	// Training once with weight 3 must equal training three times.
	a := defaultHT(2, 1)
	b := defaultHT(2, 1)
	in := ml.NewInstance([]float64{1.5}, 1)
	w := in
	w.Weight = 3
	a.Train(w)
	b.Train(in)
	b.Train(in)
	b.Train(in)
	if a.TrainCount() != b.TrainCount() {
		t.Fatalf("train counts differ: %d vs %d", a.TrainCount(), b.TrainCount())
	}
	va := a.Predict([]float64{1.5})
	vb := b.Predict([]float64{1.5})
	for c := range va {
		if math.Abs(va[c]-vb[c]) > 1e-9 {
			t.Fatalf("weighted vs repeated training votes differ: %v vs %v", va, vb)
		}
	}
}

func TestHTPredictBeforeTraining(t *testing.T) {
	ht := defaultHT(3, 2)
	votes := ht.Predict([]float64{0, 0})
	if len(votes) != 3 {
		t.Fatalf("votes length = %d, want 3", len(votes))
	}
}

func TestHTMajorityClassLeaf(t *testing.T) {
	ht := NewHoeffdingTree(HTConfig{NumClasses: 2, NumFeatures: 1, LeafPrediction: MajorityClass})
	for i := 0; i < 10; i++ {
		ht.Train(ml.NewInstance([]float64{0}, 1))
	}
	if got := ht.Predict([]float64{0}).ArgMax(); got != 1 {
		t.Fatalf("majority class prediction = %d, want 1", got)
	}
}

func TestHTNaiveBayesBeatsMajorityWithinLeaf(t *testing.T) {
	// Data separable on the feature but too sparse to split: NB leaves can
	// exploit the observers where MC cannot.
	nb := NewHoeffdingTree(HTConfig{NumClasses: 2, NumFeatures: 1, LeafPrediction: NaiveBayes, GracePeriod: 1 << 30})
	mc := NewHoeffdingTree(HTConfig{NumClasses: 2, NumFeatures: 1, LeafPrediction: MajorityClass, GracePeriod: 1 << 30})
	data := gaussianStream(2000, 2, 1, 5, 5)
	accNB := prequentialAccuracy(nb, data)
	accMC := prequentialAccuracy(mc, data)
	if accNB <= accMC {
		t.Fatalf("NB leaf (%v) should beat MC leaf (%v) on sub-split data", accNB, accMC)
	}
	if accNB < 0.9 {
		t.Fatalf("NB leaf accuracy = %v, want >= 0.9", accNB)
	}
}

func TestHTConfigPanics(t *testing.T) {
	for _, cfg := range []HTConfig{
		{NumClasses: 1, NumFeatures: 2},
		{NumClasses: 2, NumFeatures: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v did not panic", cfg)
				}
			}()
			NewHoeffdingTree(cfg)
		}()
	}
}

func TestHTFeatureSubsetRestriction(t *testing.T) {
	// Only feature 1 is allowed for splits; feature 0 carries the signal,
	// so the tree should not be able to split on it.
	cfg := HTConfig{NumClasses: 2, NumFeatures: 2, FeatureSubset: []int{1}, GracePeriod: 100}
	ht := NewHoeffdingTree(cfg)
	rng := ml.NewRNG(6)
	for i := 0; i < 20000; i++ {
		label := rng.Intn(2)
		// feature 0 informative, feature 1 pure noise
		x := []float64{float64(label)*6 + rng.NormFloat64(), rng.NormFloat64()}
		ht.Train(ml.NewInstance(x, label))
	}
	// Any splits made must be on feature 1.
	var walk func(n *htNode)
	walk = func(n *htNode) {
		if n == nil || n.isLeaf() {
			return
		}
		if n.feature != 1 {
			t.Fatalf("split on forbidden feature %d", n.feature)
		}
		walk(n.left)
		walk(n.right)
	}
	walk(ht.root)
}

func TestHTNumNodesConsistency(t *testing.T) {
	ht := defaultHT(2, 4)
	for _, in := range gaussianStream(20000, 2, 4, 4, 7) {
		ht.Train(in)
	}
	// Binary tree invariant: nodes = 2*splits + 1, leaves = splits + 1.
	if ht.NumNodes() != 2*int(ht.splitCount)+1 {
		t.Fatalf("node count inconsistent")
	}
	if ht.NumLeaves() != int(ht.splitCount)+1 {
		t.Fatalf("leaf count %d != splits+1 (%d)", ht.NumLeaves(), ht.splitCount+1)
	}
}
