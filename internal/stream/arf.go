package stream

import (
	"fmt"
	"math"

	"redhanded/internal/metrics"
	"redhanded/internal/ml"
)

// Drift telemetry on the default metrics registry. The counters fire at
// whichever process hosts the authoritative forest (the sequential engine,
// the micro-batch driver, the cluster driver, or a serving shard) — the
// executor-side replicas never run drift detection, so nothing is counted
// twice.
var (
	arfWarningsTotal = metrics.Default().Counter(
		"redhanded_arf_warnings_total",
		"ARF member warnings (background trees started).", nil)
	arfDriftsTotal = metrics.Default().Counter(
		"redhanded_arf_drifts_total",
		"ARF member drift-detector signals.", nil)
	arfReplacementsTotal = metrics.Default().Counter(
		"redhanded_arf_tree_replacements_total",
		"ARF member trees replaced after a detected drift.", nil)
)

// ARFConfig configures the Adaptive Random Forest. Defaults follow Table I
// (ensemble size 10) and Gomes et al. 2017 (Poisson lambda 6, warning/drift
// deltas 0.01/0.001, subspace size ceil(sqrt(F)) + 1).
type ARFConfig struct {
	NumClasses   int
	NumFeatures  int
	EnsembleSize int     // default 10
	SubspaceSize int     // features per tree; default ceil(sqrt(F)) + 1
	Lambda       float64 // online-bagging Poisson parameter; default 6
	WarningDelta float64 // ADWIN delta for the warning detector; default 0.01
	DriftDelta   float64 // ADWIN delta for the drift detector; default 0.001
	Tree         HTConfig
	Seed         uint64
	// DisableDrift turns off ADWIN monitoring (ablation).
	DisableDrift bool
	// DisableBagging trains every tree on every instance with unit weight
	// (ablation).
	DisableBagging bool
	// GateOnErrorIncrease reacts to ADWIN changes only when the error rate
	// is rising. The classical ARF (and the streamDM version the paper
	// evaluates) resets on any detected change — including improvements —
	// which delays its plateau and costs a few F1 points (visible in
	// Figs. 11/12, where ARF trails HT/SLR by ~4%). The gated variant is
	// this implementation's extension; the distributed training path
	// always gates, since batch-granularity replay would otherwise
	// misread the warm-up phase as drift.
	GateOnErrorIncrease bool
	// Detector selects the drift detector family (default ADWIN).
	Detector DetectorKind
}

// DetectorKind selects the per-member drift detector.
type DetectorKind int

// Available detector families.
const (
	// DetectADWIN uses two ADWIN instances (warning + drift deltas).
	DetectADWIN DetectorKind = iota
	// DetectDDM uses the Drift Detection Method's warning/drift levels.
	DetectDDM
)

// memberDetector abstracts the warning/drift monitoring of one member.
type memberDetector interface {
	// add folds one error observation and reports (warning, drift).
	add(errBit float64) (warning, drift bool)
	// addGated is the batch-replay variant: it must never react to error
	// improvements (batch-granularity replay would otherwise misread
	// warm-up improvements as change).
	addGated(v float64) (warning, drift bool)
}

// adwinDetector pairs warning and drift ADWINs.
type adwinDetector struct {
	warning *ADWIN
	drift   *ADWIN
	gate    bool
}

func (d *adwinDetector) add(errBit float64) (bool, bool) {
	w := d.warning.Add(errBit) && (!d.gate || d.warning.IncreaseDetected())
	dr := d.drift.Add(errBit) && (!d.gate || d.drift.IncreaseDetected())
	return w, dr
}

func (d *adwinDetector) addGated(v float64) (bool, bool) {
	w := d.warning.Add(v) && d.warning.IncreaseDetected()
	dr := d.drift.Add(v) && d.drift.IncreaseDetected()
	return w, dr
}

// ddmDetector adapts DDM's three-level state (DDM only ever reacts to
// error increases, so both entry points coincide).
type ddmDetector struct{ ddm *DDM }

func (d *ddmDetector) add(errBit float64) (bool, bool) {
	switch d.ddm.Add(errBit) {
	case DriftWarning:
		return true, false
	case DriftDetected:
		return false, true
	default:
		return false, false
	}
}

func (d *ddmDetector) addGated(v float64) (bool, bool) { return d.add(v) }

func (f *AdaptiveRandomForest) newDetector() memberDetector {
	if f.cfg.Detector == DetectDDM {
		return &ddmDetector{ddm: NewDDM()}
	}
	return &adwinDetector{
		warning: NewADWIN(f.cfg.WarningDelta),
		drift:   NewADWIN(f.cfg.DriftDelta),
		gate:    f.cfg.GateOnErrorIncrease,
	}
}

func (c ARFConfig) withDefaults() ARFConfig {
	if c.EnsembleSize == 0 {
		c.EnsembleSize = 10
	}
	if c.SubspaceSize == 0 {
		c.SubspaceSize = int(math.Ceil(math.Sqrt(float64(c.NumFeatures)))) + 1
	}
	if c.SubspaceSize > c.NumFeatures {
		c.SubspaceSize = c.NumFeatures
	}
	if c.Lambda == 0 {
		c.Lambda = 6
	}
	if c.WarningDelta == 0 {
		c.WarningDelta = 0.01
	}
	if c.DriftDelta == 0 {
		c.DriftDelta = 0.001
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	c.Tree.NumClasses = c.NumClasses
	c.Tree.NumFeatures = c.NumFeatures
	c.Tree = c.Tree.withDefaults()
	return c
}

// arfMember is one ensemble slot: a tree, its drift detector, a possible
// background tree warming up to replace it, and a prequential accuracy
// estimate used to weight its votes. The generation numbers identify the
// trees across serialization boundaries (accumulator deltas built against
// a replaced tree are recognized and dropped by generation, the way the
// in-process engines used pointer identity).
type arfMember struct {
	tree       *HoeffdingTree
	background *HoeffdingTree
	detector   memberDetector
	gen        uint64
	bgGen      uint64
	seen       float64
	correct    float64
	// Telemetry.
	warnings     int64
	drifts       int64
	replacements int64
}

func (m *arfMember) weight() float64 {
	if m.seen < 1 {
		return 1
	}
	return math.Max(m.correct/m.seen, 0.01)
}

// AdaptiveRandomForest is an online random forest for evolving data
// streams: diversity comes from online bagging (Poisson(lambda) instance
// weights) and per-tree random feature subspaces; adaptation comes from
// per-tree ADWIN detectors that grow a background tree on warning and swap
// it in on drift.
type AdaptiveRandomForest struct {
	cfg        ARFConfig
	members    []*arfMember
	rng        *ml.RNG // structural randomness: subspace sampling
	nextGen    uint64
	trainCount int64
	drifts     int
	warnings   int
	// epoch counts prediction-relevant mutations at forest granularity
	// (every train step touches the accuracy weights even when bagging
	// draws zero); per-member tree epochs drive the incremental
	// re-flattening in compiled.go.
	epoch uint64
}

var _ ml.DistributedClassifier = (*AdaptiveRandomForest)(nil)

// NewAdaptiveRandomForest creates a forest for the configuration.
func NewAdaptiveRandomForest(cfg ARFConfig) *AdaptiveRandomForest {
	cfg = cfg.withDefaults()
	if cfg.NumClasses < 2 {
		panic(fmt.Sprintf("stream: ARF needs >= 2 classes, got %d", cfg.NumClasses))
	}
	f := &AdaptiveRandomForest{cfg: cfg, rng: ml.NewRNG(cfg.Seed)}
	for i := 0; i < cfg.EnsembleSize; i++ {
		f.members = append(f.members, f.newMember())
	}
	return f
}

func (f *AdaptiveRandomForest) newGen() uint64 {
	f.nextGen++
	return f.nextGen
}

func (f *AdaptiveRandomForest) newMember() *arfMember {
	return &arfMember{tree: f.newTree(), gen: f.newGen(), detector: f.newDetector()}
}

func (f *AdaptiveRandomForest) newTree() *HoeffdingTree {
	cfg := f.cfg.Tree
	cfg.FeatureSubset = f.rng.SampleWithoutReplacement(f.cfg.NumFeatures, f.cfg.SubspaceSize)
	return NewHoeffdingTree(cfg)
}

// NumClasses implements ml.StreamClassifier.
func (f *AdaptiveRandomForest) NumClasses() int { return f.cfg.NumClasses }

// EnsembleSize returns the number of member trees.
func (f *AdaptiveRandomForest) EnsembleSize() int { return len(f.members) }

// TrainCount returns the number of instances trained on.
func (f *AdaptiveRandomForest) TrainCount() int64 { return f.trainCount }

// DriftsDetected returns the total number of member-tree replacements due
// to detected drift.
func (f *AdaptiveRandomForest) DriftsDetected() int { return f.drifts }

// WarningsDetected returns how many background trees have been started.
func (f *AdaptiveRandomForest) WarningsDetected() int { return f.warnings }

// DriftStats implements DriftReporter.
func (f *AdaptiveRandomForest) DriftStats() DriftStats {
	st := DriftStats{Members: make([]MemberDriftStats, len(f.members))}
	for i, m := range f.members {
		st.Members[i] = MemberDriftStats{
			Member:           i,
			Warnings:         m.warnings,
			Drifts:           m.drifts,
			TreeReplacements: m.replacements,
			BackgroundActive: m.background != nil,
		}
		st.Warnings += m.warnings
		st.Drifts += m.drifts
		st.TreeReplacements += m.replacements
	}
	return st
}

// Predict implements ml.Classifier: accuracy-weighted soft voting.
func (f *AdaptiveRandomForest) Predict(x []float64) ml.Prediction {
	votes := make(ml.Prediction, f.cfg.NumClasses)
	for _, m := range f.members {
		v := m.tree.Predict(x).Normalize()
		w := m.weight()
		for c := range votes {
			if c < len(v) {
				votes[c] += w * v[c]
			}
		}
	}
	return votes
}

// baggingWeight draws the Poisson(lambda) online-bagging weight for the
// member seeing the instance at logical stream position n. The draw comes
// from a counter-based RNG keyed by (seed, n, member) instead of a shared
// stateful generator, so every execution plan — sequential, micro-batch
// tasks, cluster executors, and a failed-over share re-run on a different
// node — derives the identical weight for the same logical instance.
func (f *AdaptiveRandomForest) baggingWeight(n int64, member int) float64 {
	if f.cfg.DisableBagging {
		return 1
	}
	rng := ml.NewRNG(ml.SeedAt(ml.SeedAt(f.cfg.Seed, uint64(n)), uint64(member)))
	return float64(rng.Poisson(f.cfg.Lambda))
}

// Train implements ml.StreamClassifier.
func (f *AdaptiveRandomForest) Train(in ml.Instance) {
	if !in.IsLabeled() || in.Label >= f.cfg.NumClasses || !in.Valid() {
		return
	}
	f.epoch++
	for i, m := range f.members {
		f.trainMember(m, in, f.baggingWeight(f.trainCount, i))
	}
	f.trainCount++
}

// trainMember performs the ARF per-member step: prequential error
// monitoring, weighted training, then warning/drift reactions. Training
// happens before the detector reacts — a warning's background tree starts
// from the next instance and a drifted member's replacement takes over from
// the next instance — so the micro-batch merge (tree deltas applied, then
// detectors replayed) is an exact replay of this order at batch size 1.
func (f *AdaptiveRandomForest) trainMember(m *arfMember, in ml.Instance, k float64) {
	pred := m.tree.Predict(in.X).ArgMax()
	errBit := 1.0
	if pred == in.Label {
		errBit = 0
		m.correct++
	}
	m.seen++

	if k > 0 {
		weighted := in
		weighted.Weight = k
		m.tree.Train(weighted)
		if m.background != nil {
			m.background.Train(weighted)
		}
	}

	if !f.cfg.DisableDrift {
		warned, drifted := m.detector.add(errBit)
		f.react(m, warned, drifted)
	}
}

// react applies one detector verdict to the member: start a background
// tree on warning, swap it in on drift.
func (f *AdaptiveRandomForest) react(m *arfMember, warned, drifted bool) {
	if warned && m.background == nil {
		m.background = f.newTree()
		m.bgGen = f.newGen()
		f.warnings++
		m.warnings++
		arfWarningsTotal.Inc()
	}
	if drifted {
		f.drifts++
		m.drifts++
		arfDriftsTotal.Inc()
		f.replaceTree(m)
	}
}

// arfAccumulator holds one tree accumulator per member (plus one per
// active background tree) and per-member error counts. Drift handling
// happens at the driver during the merge: the aggregate error bits of the
// batch are replayed into each member's detectors. Ordering within the
// batch is lost, which is an accepted approximation for micro-batch
// execution (drift decisions operate at batch granularity).
type arfAccumulator struct {
	forest  *AdaptiveRandomForest
	base    int64 // forest train count at creation: the logical stream position of the first observation
	trees   []ml.Accumulator
	bgTrees []ml.Accumulator // nil slots where the member had no background tree
	gens    []uint64
	bgGens  []uint64
	errors  []float64 // per member: errors in this batch
	seen    []float64 // per member: instances scored
	count   int64
}

var _ ml.Accumulator = (*arfAccumulator)(nil)

// NewAccumulator implements ml.DistributedClassifier. It does not mutate
// the forest, so parallel tasks may call it concurrently.
func (f *AdaptiveRandomForest) NewAccumulator() ml.Accumulator {
	acc := &arfAccumulator{
		forest: f,
		base:   f.trainCount,
		errors: make([]float64, len(f.members)),
		seen:   make([]float64, len(f.members)),
	}
	for _, m := range f.members {
		acc.trees = append(acc.trees, m.tree.NewAccumulator())
		acc.gens = append(acc.gens, m.gen)
		if m.background != nil {
			acc.bgTrees = append(acc.bgTrees, m.background.NewAccumulator())
		} else {
			acc.bgTrees = append(acc.bgTrees, nil)
		}
		acc.bgGens = append(acc.bgGens, m.bgGen)
	}
	return acc
}

// Observe implements ml.Accumulator.
func (a *arfAccumulator) Observe(in ml.Instance) {
	if !in.IsLabeled() || in.Label >= a.forest.cfg.NumClasses || !in.Valid() {
		return
	}
	n := a.base + a.count
	for i, m := range a.forest.members {
		if m.tree.Predict(in.X).ArgMax() != in.Label {
			a.errors[i]++
		}
		a.seen[i]++
		if k := a.forest.baggingWeight(n, i); k > 0 {
			weighted := in
			weighted.Weight = k
			a.trees[i].Observe(weighted)
			if a.bgTrees[i] != nil {
				a.bgTrees[i].Observe(weighted)
			}
		}
	}
	a.count++
}

// Count implements ml.Accumulator.
func (a *arfAccumulator) Count() int64 { return a.count }

// ApplyAccumulators implements ml.DistributedClassifier. Per member the
// merge replays the sequential member step at batch granularity: apply the
// foreground and background tree deltas (training), then fold the batch's
// error counts into the accuracy estimate and the drift detectors.
// Accumulators whose generation snapshot no longer matches the member
// (the tree was replaced since the accumulator was made) are dropped.
func (f *AdaptiveRandomForest) ApplyAccumulators(accs []ml.Accumulator) {
	for i, m := range f.members {
		var treeAccs, bgAccs []ml.Accumulator
		var errs, seen float64
		for _, raw := range accs {
			acc, ok := raw.(*arfAccumulator)
			if !ok || acc.forest != f || i >= len(acc.trees) {
				continue
			}
			if acc.gens[i] != m.gen || acc.trees[i] == nil {
				continue // tree was replaced since the accumulator was made
			}
			treeAccs = append(treeAccs, acc.trees[i])
			errs += acc.errors[i]
			seen += acc.seen[i]
			if m.background != nil && acc.bgTrees[i] != nil && acc.bgGens[i] == m.bgGen {
				bgAccs = append(bgAccs, acc.bgTrees[i])
			}
		}
		if len(treeAccs) > 0 {
			m.tree.ApplyAccumulators(treeAccs)
		}
		if len(bgAccs) > 0 {
			m.background.ApplyAccumulators(bgAccs)
		}
		m.seen += seen
		m.correct += seen - errs
		if !f.cfg.DisableDrift && seen > 0 {
			f.replayDetectors(m, errs, seen)
		}
	}
	matched := false
	for _, raw := range accs {
		if acc, ok := raw.(*arfAccumulator); ok && acc.forest == f {
			f.trainCount += acc.count
			matched = true
		}
	}
	if matched {
		f.epoch++
	}
}

// replaceTree swaps in the background tree (or a fresh one) and resets the
// member's detector and accuracy estimate.
func (f *AdaptiveRandomForest) replaceTree(m *arfMember) {
	if m.background != nil {
		m.tree = m.background
		m.gen = m.bgGen
		m.background = nil
		m.bgGen = 0
	} else {
		m.tree = f.newTree()
		m.gen = f.newGen()
	}
	m.detector = f.newDetector()
	m.seen, m.correct = 0, 0
	m.replacements++
	arfReplacementsTotal.Inc()
}

// replayDetectors feeds the batch's error rate into the member's detector
// as seen constant-valued observations. Within-batch ordering is
// unavailable after the merge, so drift decisions operate at batch
// granularity: a change is detected when the batch error rate departs from
// the window's history, never from artificial intra-batch patterns.
func (f *AdaptiveRandomForest) replayDetectors(m *arfMember, errs, seen float64) {
	rate := errs / seen
	warned, drifted := false, false
	for i := 0.0; i < seen; i++ {
		w, d := m.detector.addGated(rate)
		warned = warned || w
		drifted = drifted || d
	}
	f.react(m, warned, drifted)
}
