package stream

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"redhanded/internal/ml"
)

// ARF wire formats. Three encodings share the DTOs in this file:
//
//   - the full encoding (MarshalBinary/UnmarshalBinary) captures everything
//     a restart needs — member trees, background trees, ADWIN/DDM detector
//     state, the structural RNG state, and the generation counters — so a
//     checkpointed forest resumes bit-for-bit;
//   - the parts encoding (MarshalParts/UnmarshalParts/PatchParts) is the
//     broadcast format: a small header (config, train count, per-member
//     vote weights and generations) plus one part per ensemble slot
//     (foreground + background tree). Executors never run drift detection,
//     so detector and RNG state stay off the wire, and the driver's
//     per-part hash elision ships only the members that actually changed —
//     in steady state, none;
//   - the delta encoding (State/AccumulatorFromState) ships one Hoeffding
//     delta per member tree (plus active background trees) with the
//     generation snapshot that lets the driver drop deltas built against a
//     since-replaced tree.

// --- detector state ---

// adwinBucketState is the exported DTO of one exponential-histogram bucket.
type adwinBucketState struct {
	N, Sum, M2 float64
}

// adwinState is the exported DTO of one ADWIN instance.
type adwinState struct {
	Delta         float64
	Rows          [][]adwinBucketState
	MaxPerRow     int
	Width         float64
	Total         float64
	SinceCheck    int
	CheckInterval int
	Drifts        int
	LastIncrease  bool
}

func snapshotADWIN(a *ADWIN) adwinState {
	st := adwinState{
		Delta:         a.Delta,
		MaxPerRow:     a.maxPerRow,
		Width:         a.width,
		Total:         a.total,
		SinceCheck:    a.sinceCheck,
		CheckInterval: a.checkInterval,
		Drifts:        a.drifts,
		LastIncrease:  a.lastIncrease,
	}
	st.Rows = make([][]adwinBucketState, len(a.rows))
	for i, row := range a.rows {
		st.Rows[i] = make([]adwinBucketState, len(row))
		for j, b := range row {
			st.Rows[i][j] = adwinBucketState{N: b.n, Sum: b.sum, M2: b.m2}
		}
	}
	return st
}

func restoreADWIN(st adwinState) *ADWIN {
	a := NewADWIN(st.Delta)
	if st.MaxPerRow > 0 {
		a.maxPerRow = st.MaxPerRow
	}
	if st.CheckInterval > 0 {
		a.checkInterval = st.CheckInterval
	}
	a.width = st.Width
	a.total = st.Total
	a.sinceCheck = st.SinceCheck
	a.drifts = st.Drifts
	a.lastIncrease = st.LastIncrease
	a.rows = make([][]adwinBucket, len(st.Rows))
	for i, row := range st.Rows {
		a.rows[i] = make([]adwinBucket, len(row))
		for j, b := range row {
			a.rows[i][j] = adwinBucket{n: b.N, sum: b.Sum, m2: b.M2}
		}
	}
	return a
}

// ddmState is the exported DTO of a DDM instance.
type ddmState struct {
	N, P, PMin, SMin float64
	State            int
	MinInstances     int
	Drifts           int
}

// detectorState is the union DTO for one member's detector (gob omits nil
// pointer fields, so only the active family is encoded).
type detectorState struct {
	ADWIN *adwinPairState
	DDM   *ddmState
}

// adwinPairState serializes the warning+drift ADWIN pair.
type adwinPairState struct {
	Warning, Drift adwinState
	Gate           bool
}

func snapshotDetector(d memberDetector) detectorState {
	switch det := d.(type) {
	case *adwinDetector:
		return detectorState{ADWIN: &adwinPairState{
			Warning: snapshotADWIN(det.warning),
			Drift:   snapshotADWIN(det.drift),
			Gate:    det.gate,
		}}
	case *ddmDetector:
		return detectorState{DDM: &ddmState{
			N: det.ddm.n, P: det.ddm.p, PMin: det.ddm.pMin, SMin: det.ddm.sMin,
			State: int(det.ddm.state), MinInstances: det.ddm.MinInstances, Drifts: det.ddm.drifts,
		}}
	default:
		return detectorState{}
	}
}

func (f *AdaptiveRandomForest) restoreDetector(st detectorState) memberDetector {
	switch {
	case st.ADWIN != nil:
		return &adwinDetector{
			warning: restoreADWIN(st.ADWIN.Warning),
			drift:   restoreADWIN(st.ADWIN.Drift),
			gate:    st.ADWIN.Gate,
		}
	case st.DDM != nil:
		d := NewDDM()
		d.n, d.p, d.pMin, d.sMin = st.DDM.N, st.DDM.P, st.DDM.PMin, st.DDM.SMin
		d.state = DriftState(st.DDM.State)
		if st.DDM.MinInstances > 0 {
			d.MinInstances = st.DDM.MinInstances
		}
		d.drifts = st.DDM.Drifts
		return &ddmDetector{ddm: d}
	default:
		return f.newDetector()
	}
}

// --- full encoding (checkpoint / broadcast-emulation round trip) ---

// arfMemberState is the full-fidelity gob DTO of one ensemble slot.
type arfMemberState struct {
	Tree         []byte
	Gen          uint64
	Background   []byte // nil when no background tree is active
	BgGen        uint64
	Seen         float64
	Correct      float64
	Warnings     int64
	Drifts       int64
	Replacements int64
	Detector     detectorState
}

// arfState is the full-fidelity gob DTO of a forest.
type arfState struct {
	Cfg        ARFConfig
	RngState   uint64
	TrainCount int64
	NextGen    uint64
	Drifts     int
	Warnings   int
	Members    []arfMemberState
}

// MarshalBinary implements encoding.BinaryMarshaler with the full forest
// state, including drift detectors and the structural RNG, so a restored
// forest continues exactly where this one stopped.
func (f *AdaptiveRandomForest) MarshalBinary() ([]byte, error) {
	st := arfState{
		Cfg:        f.cfg,
		RngState:   f.rng.State(),
		TrainCount: f.trainCount,
		NextGen:    f.nextGen,
		Drifts:     f.drifts,
		Warnings:   f.warnings,
	}
	for _, m := range f.members {
		tree, err := m.tree.MarshalBinary()
		if err != nil {
			return nil, fmt.Errorf("stream: encode ARF member tree: %w", err)
		}
		ms := arfMemberState{
			Tree: tree, Gen: m.gen, BgGen: m.bgGen,
			Seen: m.seen, Correct: m.correct,
			Warnings: m.warnings, Drifts: m.drifts, Replacements: m.replacements,
			Detector: snapshotDetector(m.detector),
		}
		if m.background != nil {
			if ms.Background, err = m.background.MarshalBinary(); err != nil {
				return nil, fmt.Errorf("stream: encode ARF background tree: %w", err)
			}
		}
		st.Members = append(st.Members, ms)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("stream: encode ARF: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary restores the forest state in place.
func (f *AdaptiveRandomForest) UnmarshalBinary(data []byte) error {
	var st arfState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("stream: decode ARF: %w", err)
	}
	if st.Cfg.NumClasses < 2 || len(st.Members) == 0 {
		return fmt.Errorf("stream: ARF encoding has no usable ensemble")
	}
	f.cfg = st.Cfg
	f.rng = ml.NewRNG(st.Cfg.Seed)
	f.rng.SetState(st.RngState)
	f.trainCount = st.TrainCount
	f.nextGen = st.NextGen
	f.drifts = st.Drifts
	f.warnings = st.Warnings
	f.members = nil
	for _, ms := range st.Members {
		m := &arfMember{
			gen: ms.Gen, bgGen: ms.BgGen,
			seen: ms.Seen, correct: ms.Correct,
			warnings: ms.Warnings, drifts: ms.Drifts, replacements: ms.Replacements,
			tree: new(HoeffdingTree),
		}
		if err := m.tree.UnmarshalBinary(ms.Tree); err != nil {
			return fmt.Errorf("stream: decode ARF member tree: %w", err)
		}
		if len(ms.Background) > 0 {
			m.background = new(HoeffdingTree)
			if err := m.background.UnmarshalBinary(ms.Background); err != nil {
				return fmt.Errorf("stream: decode ARF background tree: %w", err)
			}
		}
		m.detector = f.restoreDetector(ms.Detector)
		f.members = append(f.members, m)
	}
	f.epoch++ // the whole ensemble was rebuilt: invalidate compiled snapshots
	return nil
}

// --- parts encoding (per-member broadcast elision) ---

// arfMemberHeader is the always-shipped per-member broadcast metadata.
type arfMemberHeader struct {
	Gen     uint64
	BgGen   uint64
	Seen    float64
	Correct float64
}

// arfPartsHeader is the broadcast header.
type arfPartsHeader struct {
	Cfg        ARFConfig
	TrainCount int64
	NextGen    uint64
	Members    []arfMemberHeader
}

// arfMemberPart is one broadcast part: the member's foreground tree and,
// when active, its background tree.
type arfMemberPart struct {
	Tree       []byte
	Background []byte
}

// MarshalParts implements PartitionedModel.
func (f *AdaptiveRandomForest) MarshalParts() ([]byte, [][]byte, error) {
	hdr := arfPartsHeader{Cfg: f.cfg, TrainCount: f.trainCount, NextGen: f.nextGen}
	parts := make([][]byte, 0, len(f.members))
	for _, m := range f.members {
		hdr.Members = append(hdr.Members, arfMemberHeader{
			Gen: m.gen, BgGen: m.bgGen, Seen: m.seen, Correct: m.correct,
		})
		tree, err := m.tree.MarshalBinary()
		if err != nil {
			return nil, nil, fmt.Errorf("stream: encode ARF part: %w", err)
		}
		part := arfMemberPart{Tree: tree}
		if m.background != nil {
			if part.Background, err = m.background.MarshalBinary(); err != nil {
				return nil, nil, fmt.Errorf("stream: encode ARF part: %w", err)
			}
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(part); err != nil {
			return nil, nil, fmt.Errorf("stream: encode ARF part: %w", err)
		}
		parts = append(parts, buf.Bytes())
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(hdr); err != nil {
		return nil, nil, fmt.Errorf("stream: encode ARF header: %w", err)
	}
	return buf.Bytes(), parts, nil
}

// decodeMemberPart decodes one part blob into the member's trees.
func (m *arfMember) decodePart(blob []byte) error {
	var part arfMemberPart
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&part); err != nil {
		return fmt.Errorf("stream: decode ARF part: %w", err)
	}
	m.tree = new(HoeffdingTree)
	if err := m.tree.UnmarshalBinary(part.Tree); err != nil {
		return fmt.Errorf("stream: decode ARF part tree: %w", err)
	}
	m.background = nil
	if len(part.Background) > 0 {
		m.background = new(HoeffdingTree)
		if err := m.background.UnmarshalBinary(part.Background); err != nil {
			return fmt.Errorf("stream: decode ARF part background: %w", err)
		}
	}
	return nil
}

func decodePartsHeader(header []byte) (arfPartsHeader, error) {
	var hdr arfPartsHeader
	if err := gob.NewDecoder(bytes.NewReader(header)).Decode(&hdr); err != nil {
		return hdr, fmt.Errorf("stream: decode ARF header: %w", err)
	}
	if hdr.Cfg.NumClasses < 2 || len(hdr.Members) == 0 {
		return hdr, fmt.Errorf("stream: ARF header has no usable ensemble")
	}
	return hdr, nil
}

// applyHeader installs the header's forest-level and per-member metadata.
func (f *AdaptiveRandomForest) applyHeader(hdr arfPartsHeader) {
	f.cfg = hdr.Cfg
	f.trainCount = hdr.TrainCount
	f.nextGen = hdr.NextGen
	for i, mh := range hdr.Members {
		m := f.members[i]
		m.gen, m.bgGen = mh.Gen, mh.BgGen
		m.seen, m.correct = mh.Seen, mh.Correct
	}
}

// UnmarshalParts implements PartitionedModel: a full restore from the
// complete part set. Detectors and the structural RNG come up fresh —
// replicas restored this way only predict and accumulate; drift handling
// stays at the driver.
func (f *AdaptiveRandomForest) UnmarshalParts(header []byte, parts [][]byte) error {
	hdr, err := decodePartsHeader(header)
	if err != nil {
		return err
	}
	if len(parts) != len(hdr.Members) {
		return fmt.Errorf("stream: ARF broadcast has %d parts for %d members", len(parts), len(hdr.Members))
	}
	f.cfg = hdr.Cfg
	f.rng = ml.NewRNG(hdr.Cfg.Seed)
	f.members = make([]*arfMember, len(parts))
	for i := range parts {
		m := &arfMember{detector: f.newDetector()}
		if err := m.decodePart(parts[i]); err != nil {
			return err
		}
		f.members[i] = m
	}
	f.applyHeader(hdr)
	f.epoch++
	return nil
}

// PatchParts implements PartitionedModel: it patches the given member
// slots and refreshes the header metadata on an already-restored forest.
// A patch that references a member generation this forest does not hold
// (and does not carry the part for it) fails, so the session can answer
// NeedResync instead of serving shares against a wrong ensemble.
func (f *AdaptiveRandomForest) PatchParts(header []byte, idx []int, parts [][]byte) error {
	hdr, err := decodePartsHeader(header)
	if err != nil {
		return err
	}
	if len(hdr.Members) != len(f.members) {
		return fmt.Errorf("stream: ARF patch has %d members, forest has %d", len(hdr.Members), len(f.members))
	}
	if len(idx) != len(parts) {
		return fmt.Errorf("stream: ARF patch has %d indexes for %d parts", len(idx), len(parts))
	}
	patched := make(map[int]bool, len(idx))
	for k, i := range idx {
		if i < 0 || i >= len(f.members) {
			return fmt.Errorf("stream: ARF patch part index %d out of range", i)
		}
		if err := f.members[i].decodePart(parts[k]); err != nil {
			return err
		}
		patched[i] = true
	}
	for i, mh := range hdr.Members {
		m := f.members[i]
		if !patched[i] && (mh.Gen != m.gen || mh.BgGen != m.bgGen) {
			return fmt.Errorf("stream: ARF patch skips member %d whose trees changed", i)
		}
	}
	f.applyHeader(hdr)
	// Unpatched member trees keep their pointers, so a compiled snapshot
	// built against the pre-patch forest re-flattens only the patched
	// slots on the next CompileSnapshot.
	f.epoch++
	return nil
}

// --- delta encoding (executor -> driver) ---

// arfDeltaState is the gob DTO of an ARF accumulator: one Hoeffding delta
// per member (plus active backgrounds) and the generation snapshot the
// driver validates against its current ensemble.
type arfDeltaState struct {
	Count   int64
	Gens    []uint64
	BgGens  []uint64
	Errors  []float64
	Seen    []float64
	Trees   [][]byte
	BgTrees [][]byte
}

// State implements StatefulAccumulator.
func (a *arfAccumulator) State() ([]byte, error) {
	st := arfDeltaState{
		Count:  a.count,
		Gens:   a.gens,
		BgGens: a.bgGens,
		Errors: a.errors,
		Seen:   a.seen,
	}
	for i := range a.trees {
		blob, err := a.trees[i].(StatefulAccumulator).State()
		if err != nil {
			return nil, fmt.Errorf("stream: encode ARF delta member %d: %w", i, err)
		}
		st.Trees = append(st.Trees, blob)
		var bgBlob []byte
		if a.bgTrees[i] != nil {
			if bgBlob, err = a.bgTrees[i].(StatefulAccumulator).State(); err != nil {
				return nil, fmt.Errorf("stream: encode ARF delta background %d: %w", i, err)
			}
		}
		st.BgTrees = append(st.BgTrees, bgBlob)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("stream: encode ARF delta: %w", err)
	}
	return buf.Bytes(), nil
}

// AccumulatorFromState implements RemoteTrainable: it rebinds a remote
// delta to this forest's members, validating each member delta against the
// tree it claims to extend. Deltas for since-replaced trees (stale
// generation) are kept as empty slots, which ApplyAccumulators drops the
// same way it drops stale in-process accumulators.
func (f *AdaptiveRandomForest) AccumulatorFromState(data []byte) (ml.Accumulator, error) {
	var st arfDeltaState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return nil, fmt.Errorf("stream: decode ARF delta: %w", err)
	}
	n := len(f.members)
	if len(st.Gens) != n || len(st.BgGens) != n || len(st.Errors) != n ||
		len(st.Seen) != n || len(st.Trees) != n || len(st.BgTrees) != n {
		return nil, fmt.Errorf("stream: ARF delta shape does not match a %d-member forest", n)
	}
	acc := &arfAccumulator{
		forest: f,
		count:  st.Count,
		gens:   st.Gens,
		bgGens: st.BgGens,
		errors: st.Errors,
		seen:   st.Seen,
	}
	for i, m := range f.members {
		var tree, bg ml.Accumulator
		if st.Gens[i] == m.gen {
			var err error
			if tree, err = m.tree.AccumulatorFromState(st.Trees[i]); err != nil {
				return nil, fmt.Errorf("stream: ARF delta member %d: %w", i, err)
			}
			if m.background != nil && st.BgGens[i] == m.bgGen && len(st.BgTrees[i]) > 0 {
				if bg, err = m.background.AccumulatorFromState(st.BgTrees[i]); err != nil {
					return nil, fmt.Errorf("stream: ARF delta background %d: %w", i, err)
				}
			}
		}
		acc.trees = append(acc.trees, tree)
		acc.bgTrees = append(acc.bgTrees, bg)
	}
	return acc, nil
}

// Kind implements RemoteTrainable.
func (f *AdaptiveRandomForest) Kind() string { return KindARF }

func init() {
	RegisterCodec(Codec{Kind: KindARF, New: func() RemoteTrainable { return new(AdaptiveRandomForest) }})
}

// Interface conformance checks.
var (
	_ RemoteTrainable     = (*AdaptiveRandomForest)(nil)
	_ PartitionedModel    = (*AdaptiveRandomForest)(nil)
	_ StatefulAccumulator = (*arfAccumulator)(nil)
)
