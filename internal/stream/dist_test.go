package stream

import (
	"testing"

	"redhanded/internal/ml"
)

// trainDistributed simulates micro-batch training: split the stream into
// batches, fan each batch out to nTasks accumulators, and merge.
func trainDistributed(m ml.DistributedClassifier, data []ml.Instance, batchSize, nTasks int) {
	for start := 0; start < len(data); start += batchSize {
		end := start + batchSize
		if end > len(data) {
			end = len(data)
		}
		batch := data[start:end]
		accs := make([]ml.Accumulator, nTasks)
		for i := range accs {
			accs[i] = m.NewAccumulator()
		}
		for i, in := range batch {
			accs[i%nTasks].Observe(in)
		}
		m.ApplyAccumulators(accs)
	}
}

func holdoutAccuracy(m ml.Classifier, data []ml.Instance) float64 {
	correct := 0
	for _, in := range data {
		if m.Predict(in.X).ArgMax() == in.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(data))
}

func TestHTDistributedMatchesSequentialQuality(t *testing.T) {
	train := gaussianStream(12000, 2, 4, 4, 1)
	test := gaussianStream(2000, 2, 4, 4, 99)

	seq := defaultHT(2, 4)
	for _, in := range train {
		seq.Train(in)
	}
	dist := defaultHT(2, 4)
	trainDistributed(dist, train, 1000, 4)

	accSeq := holdoutAccuracy(seq, test)
	accDist := holdoutAccuracy(dist, test)
	if accDist < accSeq-0.05 {
		t.Fatalf("distributed HT (%v) much worse than sequential (%v)", accDist, accSeq)
	}
	if dist.TrainCount() != int64(len(train)) {
		t.Fatalf("distributed train count = %d, want %d", dist.TrainCount(), len(train))
	}
}

func TestHTAccumulatorCountConservation(t *testing.T) {
	ht := defaultHT(2, 2)
	acc := ht.NewAccumulator()
	data := gaussianStream(500, 2, 2, 3, 2)
	for _, in := range data {
		acc.Observe(in)
	}
	if acc.Count() != 500 {
		t.Fatalf("accumulator count = %d, want 500", acc.Count())
	}
	ht.ApplyAccumulators([]ml.Accumulator{acc})
	if ht.TrainCount() != 500 {
		t.Fatalf("tree count after apply = %d, want 500", ht.TrainCount())
	}
}

func TestHTStaleAccumulatorDropped(t *testing.T) {
	ht := NewHoeffdingTree(HTConfig{NumClasses: 2, NumFeatures: 2, GracePeriod: 100})
	// Create an accumulator, then force the tree to split so the leaf ids
	// inside the accumulator become stale.
	stale := ht.NewAccumulator()
	for _, in := range gaussianStream(200, 2, 2, 6, 3) {
		stale.Observe(in)
	}
	for _, in := range gaussianStream(5000, 2, 2, 6, 4) {
		ht.Train(in)
	}
	if ht.NumLeaves() < 2 {
		t.Skip("tree did not split; cannot test staleness")
	}
	before := ht.NumLeaves()
	// Applying the stale accumulator must not panic or corrupt the tree.
	ht.ApplyAccumulators([]ml.Accumulator{stale})
	if ht.NumLeaves() < before {
		t.Fatalf("stale accumulator corrupted the tree")
	}
}

func TestSLRDistributedMatchesSequentialQuality(t *testing.T) {
	train := gaussianStream(12000, 2, 4, 3, 5)
	test := gaussianStream(2000, 2, 4, 3, 98)

	seq := NewSLR(SLRConfig{NumClasses: 2, NumFeatures: 4})
	for _, in := range train {
		seq.Train(in)
	}
	dist := NewSLR(SLRConfig{NumClasses: 2, NumFeatures: 4})
	trainDistributed(dist, train, 1000, 4)

	accSeq := holdoutAccuracy(seq, test)
	accDist := holdoutAccuracy(dist, test)
	if accDist < accSeq-0.05 {
		t.Fatalf("distributed SLR (%v) much worse than sequential (%v)", accDist, accSeq)
	}
}

func TestSLREmptyAccumulatorsNoop(t *testing.T) {
	slr := NewSLR(SLRConfig{NumClasses: 2, NumFeatures: 2})
	for _, in := range gaussianStream(1000, 2, 2, 3, 6) {
		slr.Train(in)
	}
	before := holdoutAccuracy(slr, gaussianStream(500, 2, 2, 3, 97))
	slr.ApplyAccumulators([]ml.Accumulator{slr.NewAccumulator(), slr.NewAccumulator()})
	after := holdoutAccuracy(slr, gaussianStream(500, 2, 2, 3, 97))
	if before != after {
		t.Fatalf("empty accumulators changed the model: %v -> %v", before, after)
	}
}

func TestARFDistributedTrainsAndPredicts(t *testing.T) {
	train := gaussianStream(8000, 2, 4, 4, 7)
	test := gaussianStream(1500, 2, 4, 4, 96)
	arf := NewAdaptiveRandomForest(ARFConfig{NumClasses: 2, NumFeatures: 4, EnsembleSize: 5, Seed: 9})
	trainDistributed(arf, train, 1000, 4)
	if acc := holdoutAccuracy(arf, test); acc < 0.8 {
		t.Fatalf("distributed ARF accuracy = %v, want >= 0.8", acc)
	}
	if arf.TrainCount() != int64(len(train)) {
		t.Fatalf("ARF distributed count = %d, want %d", arf.TrainCount(), len(train))
	}
}
