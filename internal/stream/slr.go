package stream

import (
	"fmt"
	"math"

	"redhanded/internal/ml"
)

// Regularizer selects the penalty used by Streaming Logistic Regression
// (Table I: Zero, L1, or L2; the paper's grid search selects L2).
type Regularizer int

const (
	// RegZero applies no penalty.
	RegZero Regularizer = iota
	// RegL1 applies lasso (sign) shrinkage.
	RegL1
	// RegL2 applies ridge (weight-decay) shrinkage.
	RegL2
)

// String returns the Table I name of the regularizer.
func (r Regularizer) String() string {
	switch r {
	case RegL1:
		return "L1"
	case RegL2:
		return "L2"
	default:
		return "Zero"
	}
}

// SLRConfig configures Streaming Logistic Regression. Defaults follow
// Table I: learning rate (lambda) 0.1, L2 regularizer, regularization 0.01.
type SLRConfig struct {
	NumClasses   int
	NumFeatures  int
	LearningRate float64     // Table I "Lambda"; default 0.1
	Regularizer  Regularizer // default RegL2
	RegLambda    float64     // Table I "Regularization"; default 0.01
}

func (c SLRConfig) withDefaults() SLRConfig {
	if c.LearningRate == 0 {
		c.LearningRate = 0.1
	}
	if c.RegLambda == 0 {
		c.RegLambda = 0.01
	}
	return c
}

// SLR is logistic regression fit online with stochastic gradient descent,
// extended to multi-class via multinomial (softmax) heads — with two
// classes this reduces to ordinary binary logistic regression. Fitting
// matches the offline model but parameters update as each labeled instance
// arrives.
type SLR struct {
	cfg        SLRConfig
	w          [][]float64 // [class][feature]; last slot is the bias
	trainCount int64
	epoch      uint64 // prediction-relevant mutation counter (compiled.go)
}

var _ ml.DistributedClassifier = (*SLR)(nil)

// NewSLR creates a streaming logistic regression model.
func NewSLR(cfg SLRConfig) *SLR {
	cfg = cfg.withDefaults()
	if cfg.NumClasses < 2 {
		panic(fmt.Sprintf("stream: SLR needs >= 2 classes, got %d", cfg.NumClasses))
	}
	if cfg.NumFeatures < 1 {
		panic("stream: SLR needs >= 1 feature")
	}
	w := make([][]float64, cfg.NumClasses)
	for c := range w {
		w[c] = make([]float64, cfg.NumFeatures+1)
	}
	return &SLR{cfg: cfg, w: w}
}

// NumClasses implements ml.StreamClassifier.
func (s *SLR) NumClasses() int { return s.cfg.NumClasses }

// TrainCount returns the number of instances trained on.
func (s *SLR) TrainCount() int64 { return s.trainCount }

// margin computes w_c · x + b.
func margin(w []float64, x []float64) float64 {
	m := w[len(w)-1]
	n := len(w) - 1
	if len(x) < n {
		n = len(x)
	}
	for i := 0; i < n; i++ {
		m += w[i] * x[i]
	}
	return m
}

// Predict implements ml.Classifier: softmax class probabilities.
func (s *SLR) Predict(x []float64) ml.Prediction {
	return softmaxMargins(s.w, x)
}

// softmaxMargins returns softmax(w_c · x + b_c) over all class heads.
func softmaxMargins(w [][]float64, x []float64) ml.Prediction {
	votes := make(ml.Prediction, len(w))
	maxM := math.Inf(-1)
	for c := range w {
		votes[c] = margin(w[c], x)
		if votes[c] > maxM {
			maxM = votes[c]
		}
	}
	sum := 0.0
	for c := range votes {
		votes[c] = math.Exp(votes[c] - maxM)
		sum += votes[c]
	}
	for c := range votes {
		votes[c] /= sum
	}
	return votes
}

// Train implements ml.StreamClassifier: one SGD step per class head.
func (s *SLR) Train(in ml.Instance) {
	if !in.IsLabeled() || in.Label >= s.cfg.NumClasses || !in.Valid() {
		return
	}
	weight := in.Weight
	if weight <= 0 {
		weight = 1
	}
	sgdStep(s.w, in, s.cfg, weight)
	s.trainCount++
	s.epoch++
}

// sgdStep performs one (possibly weighted) SGD step: cross-entropy
// gradient over the softmax outputs, plus the configured penalty.
func sgdStep(w [][]float64, in ml.Instance, cfg SLRConfig, weight float64) {
	lr := cfg.LearningRate * weight
	p := softmaxMargins(w, in.X)
	for c := range w {
		y := 0.0
		if in.Label == c {
			y = 1
		}
		g := p[c] - y
		wc := w[c]
		n := len(wc) - 1
		if len(in.X) < n {
			n = len(in.X)
		}
		for i := 0; i < n; i++ {
			grad := g * in.X[i]
			switch cfg.Regularizer {
			case RegL2:
				grad += cfg.RegLambda * wc[i]
			case RegL1:
				grad += cfg.RegLambda * signOf(wc[i])
			}
			wc[i] -= lr * grad
		}
		wc[len(wc)-1] -= lr * g // bias: never regularized
	}
}

func signOf(v float64) float64 {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	default:
		return 0
	}
}

// slrAccumulator trains a local copy of the weights over its partition;
// the driver merges copies by count-weighted parameter mixing, the standard
// approach for distributed SGD over linear models.
type slrAccumulator struct {
	cfg   SLRConfig
	w     [][]float64
	count int64
}

var _ ml.Accumulator = (*slrAccumulator)(nil)

// NewAccumulator implements ml.DistributedClassifier.
func (s *SLR) NewAccumulator() ml.Accumulator {
	w := make([][]float64, len(s.w))
	for c := range w {
		w[c] = append([]float64(nil), s.w[c]...)
	}
	return &slrAccumulator{cfg: s.cfg, w: w}
}

// Observe implements ml.Accumulator.
func (a *slrAccumulator) Observe(in ml.Instance) {
	if !in.IsLabeled() || in.Label >= a.cfg.NumClasses || !in.Valid() {
		return
	}
	weight := in.Weight
	if weight <= 0 {
		weight = 1
	}
	sgdStep(a.w, in, a.cfg, weight)
	a.count++
}

// Count implements ml.Accumulator.
func (a *slrAccumulator) Count() int64 { return a.count }

// ApplyAccumulators implements ml.DistributedClassifier: the new global
// weights are the count-weighted average of the locally trained copies.
// Accumulators that saw no data do not dilute the average.
func (s *SLR) ApplyAccumulators(accs []ml.Accumulator) {
	var total int64
	for _, raw := range accs {
		if acc, ok := raw.(*slrAccumulator); ok {
			total += acc.count
		}
	}
	if total == 0 {
		return
	}
	merged := make([][]float64, len(s.w))
	for c := range merged {
		merged[c] = make([]float64, len(s.w[c]))
	}
	for _, raw := range accs {
		acc, ok := raw.(*slrAccumulator)
		if !ok || acc.count == 0 {
			continue
		}
		frac := float64(acc.count) / float64(total)
		for c := range merged {
			for i := range merged[c] {
				merged[c][i] += frac * acc.w[c][i]
			}
		}
	}
	s.w = merged
	s.trainCount += total
	s.epoch++
}
