package stream

import (
	"math"
	"testing"

	"redhanded/internal/ml"
)

func TestHTSerializationRoundTrip(t *testing.T) {
	ht := defaultHT(2, 4)
	train := gaussianStream(10000, 2, 4, 4, 1)
	for _, in := range train {
		ht.Train(in)
	}
	if ht.NumLeaves() < 2 {
		t.Fatalf("tree did not grow; test needs splits")
	}
	data, err := ht.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 || len(data) > 1<<20 {
		t.Fatalf("serialized size %d bytes; paper expects < 1MB", len(data))
	}
	restored := defaultHT(2, 4)
	if err := restored.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if restored.NumLeaves() != ht.NumLeaves() || restored.Version() != ht.Version() {
		t.Fatalf("structure mismatch after round trip")
	}
	// Predictions must be bit-identical.
	test := gaussianStream(500, 2, 4, 4, 50)
	for _, in := range test {
		a := ht.Predict(in.X)
		b := restored.Predict(in.X)
		for c := range a {
			if a[c] != b[c] {
				t.Fatalf("votes differ after round trip: %v vs %v", a, b)
			}
		}
	}
	// The restored tree must keep learning.
	for _, in := range gaussianStream(1000, 2, 4, 4, 51) {
		restored.Train(in)
	}
}

func TestHTRemoteAccumulatorRoundTrip(t *testing.T) {
	global := defaultHT(2, 4)
	for _, in := range gaussianStream(3000, 2, 4, 4, 2) {
		global.Train(in)
	}
	// Simulate a remote executor: copy the model, accumulate, ship state.
	blob, err := global.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	remote := defaultHT(2, 4)
	if err := remote.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	acc := remote.NewAccumulator()
	batch := gaussianStream(1000, 2, 4, 4, 3)
	for _, in := range batch {
		acc.Observe(in)
	}
	state, err := acc.(StatefulAccumulator).State()
	if err != nil {
		t.Fatal(err)
	}
	rebound, err := global.AccumulatorFromState(state)
	if err != nil {
		t.Fatal(err)
	}
	before := global.TrainCount()
	global.ApplyAccumulators([]ml.Accumulator{rebound})
	if global.TrainCount() != before+1000 {
		t.Fatalf("remote delta lost instances: %d -> %d", before, global.TrainCount())
	}
}

func TestHTAccumulatorVersionMismatchRejected(t *testing.T) {
	global := defaultHT(2, 2)
	remote := defaultHT(2, 2)
	blob, _ := global.MarshalBinary()
	if err := remote.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	acc := remote.NewAccumulator()
	for _, in := range gaussianStream(100, 2, 2, 4, 4) {
		acc.Observe(in)
	}
	state, _ := acc.(StatefulAccumulator).State()
	// Global tree grows (version changes) before the delta arrives.
	for _, in := range gaussianStream(20000, 2, 2, 4, 5) {
		global.Train(in)
	}
	if global.Version() == 0 {
		t.Skip("tree never split")
	}
	if _, err := global.AccumulatorFromState(state); err == nil {
		t.Fatalf("stale delta accepted despite version change")
	}
}

func TestSLRSerializationRoundTrip(t *testing.T) {
	slr := NewSLR(SLRConfig{NumClasses: 3, NumFeatures: 4})
	for _, in := range gaussianStream(5000, 3, 4, 3, 6) {
		slr.Train(in)
	}
	data, err := slr.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored := NewSLR(SLRConfig{NumClasses: 3, NumFeatures: 4})
	if err := restored.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	x := []float64{1, 2, 3, 4}
	a, b := slr.Predict(x), restored.Predict(x)
	for c := range a {
		if math.Abs(a[c]-b[c]) > 1e-15 {
			t.Fatalf("SLR predictions differ after round trip")
		}
	}
}

func TestSLRRemoteAccumulatorRoundTrip(t *testing.T) {
	global := NewSLR(SLRConfig{NumClasses: 2, NumFeatures: 4})
	acc := global.NewAccumulator()
	for _, in := range gaussianStream(500, 2, 4, 3, 7) {
		acc.Observe(in)
	}
	state, err := acc.(StatefulAccumulator).State()
	if err != nil {
		t.Fatal(err)
	}
	rebound, err := global.AccumulatorFromState(state)
	if err != nil {
		t.Fatal(err)
	}
	global.ApplyAccumulators([]ml.Accumulator{rebound})
	if global.TrainCount() != 500 {
		t.Fatalf("train count = %d, want 500", global.TrainCount())
	}
}

func TestHTUnmarshalGarbage(t *testing.T) {
	ht := defaultHT(2, 2)
	if err := ht.UnmarshalBinary([]byte("garbage")); err == nil {
		t.Fatalf("garbage accepted")
	}
	if err := ht.UnmarshalBinary(nil); err == nil {
		t.Fatalf("empty accepted")
	}
}
