package stream

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEntropy(t *testing.T) {
	if h := entropy([]float64{10, 10}); math.Abs(h-1) > 1e-12 {
		t.Fatalf("entropy(balanced 2-class) = %v, want 1", h)
	}
	if h := entropy([]float64{10, 0}); h != 0 {
		t.Fatalf("entropy(pure) = %v, want 0", h)
	}
	if h := entropy([]float64{0, 0}); h != 0 {
		t.Fatalf("entropy(empty) = %v, want 0", h)
	}
	if h := entropy([]float64{1, 1, 1, 1}); math.Abs(h-2) > 1e-12 {
		t.Fatalf("entropy(balanced 4-class) = %v, want 2", h)
	}
}

func TestGiniImpurity(t *testing.T) {
	if g := giniImpurity([]float64{10, 10}); math.Abs(g-0.5) > 1e-12 {
		t.Fatalf("gini(balanced) = %v, want 0.5", g)
	}
	if g := giniImpurity([]float64{7, 0}); g != 0 {
		t.Fatalf("gini(pure) = %v, want 0", g)
	}
}

func TestSplitMerit(t *testing.T) {
	parent := []float64{50, 50}
	perfectL := []float64{50, 0}
	perfectR := []float64{0, 50}
	for _, crit := range []Criterion{InfoGain, Gini} {
		m := crit.splitMerit(parent, perfectL, perfectR)
		if m <= 0 {
			t.Errorf("%v merit of perfect split = %v, want > 0", crit, m)
		}
		useless := crit.splitMerit(parent, []float64{25, 25}, []float64{25, 25})
		if math.Abs(useless) > 1e-12 {
			t.Errorf("%v merit of useless split = %v, want 0", crit, useless)
		}
		if m <= useless {
			t.Errorf("%v perfect split should beat useless split", crit)
		}
	}
}

func TestSplitMeritDegenerate(t *testing.T) {
	if m := InfoGain.splitMerit([]float64{10, 10}, []float64{0, 0}, []float64{10, 10}); m != 0 {
		t.Fatalf("one-sided split merit = %v, want 0", m)
	}
}

func TestCriterionRange(t *testing.T) {
	if r := Gini.Range(3); r != 1 {
		t.Fatalf("Gini range = %v, want 1", r)
	}
	if r := InfoGain.Range(2); math.Abs(r-1) > 1e-12 {
		t.Fatalf("InfoGain range (2 classes) = %v, want 1", r)
	}
	if r := InfoGain.Range(4); math.Abs(r-2) > 1e-12 {
		t.Fatalf("InfoGain range (4 classes) = %v, want 2", r)
	}
}

func TestCriterionString(t *testing.T) {
	if InfoGain.String() != "InfoGain" || Gini.String() != "Gini" {
		t.Fatalf("criterion names wrong: %v %v", InfoGain, Gini)
	}
}

func TestHoeffdingBoundMonotone(t *testing.T) {
	f := func(rawN uint16) bool {
		n := float64(rawN) + 1
		e1 := hoeffdingBound(1, 0.01, n)
		e2 := hoeffdingBound(1, 0.01, n*2)
		return e2 < e1 // more evidence tightens the bound
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(hoeffdingBound(1, 0.01, 0), 1) {
		t.Fatalf("zero observations should give infinite bound")
	}
}

func TestHoeffdingBoundKnownValue(t *testing.T) {
	// R=1, delta=0.01, n=1000: sqrt(ln(100)/2000) ~= 0.04799.
	got := hoeffdingBound(1, 0.01, 1000)
	if math.Abs(got-0.04799) > 1e-4 {
		t.Fatalf("bound = %v, want ~0.04799", got)
	}
}
