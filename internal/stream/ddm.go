package stream

import "math"

// DDM is the Drift Detection Method (Gama et al. 2004), the classic
// alternative to ADWIN: it tracks the error rate's binomial confidence
// interval and signals a warning when error exceeds the best observed
// p_min + 2*s_min, and a drift when it exceeds p_min + 3*s_min. It is
// cheaper than ADWIN (O(1) per observation, no window) but only reacts to
// error increases. The Adaptive Random Forest can be configured with
// either detector.
type DDM struct {
	n     float64
	p     float64 // running error rate
	pMin  float64
	sMin  float64
	state DriftState
	// MinInstances before the detector activates (default 30).
	MinInstances int
	drifts       int
}

// DriftState is the detector's current assessment.
type DriftState int

// Detector states.
const (
	DriftNone DriftState = iota
	DriftWarning
	DriftDetected
)

// NewDDM creates a detector.
func NewDDM() *DDM {
	return &DDM{pMin: math.Inf(1), sMin: math.Inf(1), MinInstances: 30}
}

// Add folds one error bit (1 = misclassified) and returns the new state.
// After a detected drift, internal statistics reset.
func (d *DDM) Add(errBit float64) DriftState {
	d.n++
	d.p += (errBit - d.p) / d.n
	s := math.Sqrt(d.p * (1 - d.p) / d.n)

	if d.n < float64(d.MinInstances) {
		d.state = DriftNone
		return d.state
	}
	if d.p+s <= d.pMin+d.sMin {
		d.pMin, d.sMin = d.p, s
	}
	switch {
	case d.p+s > d.pMin+3*d.sMin:
		d.state = DriftDetected
		d.drifts++
		d.reset()
	case d.p+s > d.pMin+2*d.sMin:
		d.state = DriftWarning
	default:
		d.state = DriftNone
	}
	return d.state
}

func (d *DDM) reset() {
	d.n = 0
	d.p = 0
	d.pMin = math.Inf(1)
	d.sMin = math.Inf(1)
}

// State returns the state after the last Add.
func (d *DDM) State() DriftState { return d.state }

// Drifts returns the number of drifts detected.
func (d *DDM) Drifts() int { return d.drifts }

// ErrorRate returns the current running error estimate.
func (d *DDM) ErrorRate() float64 { return d.p }
