package stream

import (
	"fmt"
	"math"

	"redhanded/internal/ml"
)

// LeafPrediction selects how Hoeffding tree leaves turn their statistics
// into votes.
type LeafPrediction int

const (
	// MajorityClass votes with the leaf's class counts.
	MajorityClass LeafPrediction = iota
	// NaiveBayes votes with class priors times per-feature Gaussian
	// likelihoods from the leaf's attribute observers.
	NaiveBayes
	// NaiveBayesAdaptive picks per leaf whichever of the two has been more
	// accurate on that leaf's training instances so far.
	NaiveBayesAdaptive
)

// HTConfig configures a Hoeffding tree. The defaults are drawn from the
// Table I grid ranges using the values this reproduction's own grid search
// selects on the synthetic data (split confidence 0.5, tie threshold 0.1;
// the paper's search selected 0.01/0.05 on the original data — its
// features tie less often, so tighter bounds still split quickly).
type HTConfig struct {
	NumClasses      int
	NumFeatures     int
	SplitCriterion  Criterion      // default InfoGain
	SplitConfidence float64        // delta; default 0.5 (Table I range 0.001-0.5)
	TieThreshold    float64        // default 0.1 (Table I range 0.01-0.1)
	GracePeriod     int            // default 200
	MaxDepth        int            // default 20
	SplitCandidates int            // thresholds evaluated per feature; default 10
	LeafPrediction  LeafPrediction // default MajorityClass
	// FeatureSubset restricts split evaluation to these feature indices
	// (used by the Adaptive Random Forest for diversity). Empty means all.
	FeatureSubset []int
}

// withDefaults fills zero values with the selected grid values.
func (c HTConfig) withDefaults() HTConfig {
	if c.SplitConfidence == 0 {
		c.SplitConfidence = 0.5
	}
	if c.TieThreshold == 0 {
		c.TieThreshold = 0.1
	}
	if c.GracePeriod == 0 {
		c.GracePeriod = 200
	}
	if c.MaxDepth == 0 {
		c.MaxDepth = 20
	}
	if c.SplitCandidates == 0 {
		c.SplitCandidates = 10
	}
	return c
}

// leafStats holds the sufficient statistics of a learning leaf.
type leafStats struct {
	classCounts      []float64
	observers        []*gaussianObserver // indexed by feature
	weightSeen       float64
	weightAtLastEval float64
	// Naive-Bayes-adaptive bookkeeping.
	mcCorrect, nbCorrect float64
}

func newLeafStats(numClasses, numFeatures int) *leafStats {
	return &leafStats{
		classCounts: make([]float64, numClasses),
		observers:   make([]*gaussianObserver, numFeatures),
	}
}

// htNode is a tree node: a leaf when stats != nil, otherwise a binary
// numeric split on feature <= threshold.
type htNode struct {
	id        int64
	depth     int
	feature   int
	threshold float64
	left      *htNode
	right     *htNode
	stats     *leafStats
}

func (n *htNode) isLeaf() bool { return n.stats != nil }

// HoeffdingTree is an incremental decision tree for data streams. A node is
// split as soon as the Hoeffding bound gives sufficient statistical
// evidence that the best split feature beats the runner-up.
type HoeffdingTree struct {
	cfg        HTConfig
	root       *htNode
	leaves     map[int64]*htNode
	nextID     int64
	trainCount int64
	splitCount int64
	// epoch counts prediction-relevant mutations (train steps, delta
	// merges, restores); compiled snapshots key their staleness and
	// incremental-rebuild reuse on it (see compiled.go). Reads and
	// writes are synchronized by the owning pipeline/engine — the
	// lock-free classify path only ever touches published Compiled
	// snapshots, never the live tree.
	epoch uint64
}

var _ ml.DistributedClassifier = (*HoeffdingTree)(nil)

// NewHoeffdingTree creates a tree for the given configuration.
// It panics when NumClasses < 2 or NumFeatures < 1.
func NewHoeffdingTree(cfg HTConfig) *HoeffdingTree {
	cfg = cfg.withDefaults()
	if cfg.NumClasses < 2 {
		panic(fmt.Sprintf("stream: HoeffdingTree needs >= 2 classes, got %d", cfg.NumClasses))
	}
	if cfg.NumFeatures < 1 {
		panic("stream: HoeffdingTree needs >= 1 feature")
	}
	t := &HoeffdingTree{cfg: cfg, leaves: make(map[int64]*htNode)}
	t.root = t.newLeaf(0)
	return t
}

func (t *HoeffdingTree) newLeaf(depth int) *htNode {
	t.nextID++
	n := &htNode{
		id:    t.nextID,
		depth: depth,
		stats: newLeafStats(t.cfg.NumClasses, t.cfg.NumFeatures),
	}
	t.leaves[n.id] = n
	return n
}

// NumClasses implements ml.StreamClassifier.
func (t *HoeffdingTree) NumClasses() int { return t.cfg.NumClasses }

// NumNodes returns the total node count (leaves + internal).
func (t *HoeffdingTree) NumNodes() int { return 2*int(t.splitCount) + 1 }

// NumLeaves returns the current leaf count.
func (t *HoeffdingTree) NumLeaves() int { return len(t.leaves) }

// TrainCount returns the cumulative training weight observed.
func (t *HoeffdingTree) TrainCount() int64 { return t.trainCount }

// Depth returns the maximum depth of any leaf.
func (t *HoeffdingTree) Depth() int {
	max := 0
	for _, l := range t.leaves {
		if l.depth > max {
			max = l.depth
		}
	}
	return max
}

// sortingLeaf routes a feature vector to its leaf.
func (t *HoeffdingTree) sortingLeaf(x []float64) *htNode {
	n := t.root
	for !n.isLeaf() {
		if n.feature < len(x) && x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n
}

// Predict implements ml.Classifier.
func (t *HoeffdingTree) Predict(x []float64) ml.Prediction {
	leaf := t.sortingLeaf(x)
	return t.leafVotes(leaf, x)
}

func (t *HoeffdingTree) leafVotes(leaf *htNode, x []float64) ml.Prediction {
	s := leaf.stats
	switch t.cfg.LeafPrediction {
	case MajorityClass:
		return append(ml.Prediction(nil), s.classCounts...)
	case NaiveBayes:
		return t.naiveBayesVotes(s, x)
	default: // NaiveBayesAdaptive
		if s.nbCorrect > s.mcCorrect {
			return t.naiveBayesVotes(s, x)
		}
		return append(ml.Prediction(nil), s.classCounts...)
	}
}

// naiveBayesVotes computes class priors times Gaussian likelihoods in log
// space, returning normalized votes.
func (t *HoeffdingTree) naiveBayesVotes(s *leafStats, x []float64) ml.Prediction {
	total := sum(s.classCounts)
	if total == 0 {
		return make(ml.Prediction, t.cfg.NumClasses)
	}
	logVotes := make([]float64, t.cfg.NumClasses)
	maxLog := math.Inf(-1)
	for c := range logVotes {
		if s.classCounts[c] == 0 {
			logVotes[c] = math.Inf(-1)
			continue
		}
		lv := math.Log(s.classCounts[c] / total)
		for f, obs := range s.observers {
			if obs == nil || f >= len(x) {
				continue
			}
			w := obs.PerClass[c]
			if w.N < 2 {
				continue
			}
			std := w.Std()
			if std < 1e-9 {
				std = 1e-9
			}
			z := (x[f] - w.Mean) / std
			lv += -0.5*z*z - math.Log(std)
		}
		logVotes[c] = lv
		if lv > maxLog {
			maxLog = lv
		}
	}
	votes := make(ml.Prediction, len(logVotes))
	for c, lv := range logVotes {
		if math.IsInf(lv, -1) {
			continue
		}
		votes[c] = math.Exp(lv - maxLog)
	}
	return votes
}

// Train implements ml.StreamClassifier: route, update leaf statistics, and
// attempt a split when the grace period has elapsed.
func (t *HoeffdingTree) Train(in ml.Instance) {
	if !in.IsLabeled() || in.Label >= t.cfg.NumClasses || !in.Valid() {
		return
	}
	w := in.Weight
	if w <= 0 {
		w = 1
	}
	t.epoch++
	leaf := t.sortingLeaf(in.X)
	t.updateLeaf(leaf, in.X, in.Label, w)
	t.trainCount += int64(w)
	s := leaf.stats
	if s.weightSeen-s.weightAtLastEval >= float64(t.cfg.GracePeriod) {
		s.weightAtLastEval = s.weightSeen
		t.attemptSplit(leaf)
	}
}

func (t *HoeffdingTree) updateLeaf(leaf *htNode, x []float64, label int, w float64) {
	s := leaf.stats
	// Naive-Bayes-adaptive bookkeeping: score both predictors on this
	// instance before learning from it.
	if t.cfg.LeafPrediction == NaiveBayesAdaptive && s.weightSeen > 0 {
		if mc := argMax(s.classCounts); mc == label {
			s.mcCorrect += w
		}
		if nb := t.naiveBayesVotes(s, x).ArgMax(); nb == label {
			s.nbCorrect += w
		}
	}
	s.classCounts[label] += w
	s.weightSeen += w
	for f := range x {
		if s.observers[f] == nil {
			s.observers[f] = newGaussianObserver(t.cfg.NumClasses)
		}
		s.observers[f].observe(x[f], label, w)
	}
}

// splitFeatures returns the feature indices eligible for splitting.
func (t *HoeffdingTree) splitFeatures() []int {
	if len(t.cfg.FeatureSubset) > 0 {
		return t.cfg.FeatureSubset
	}
	all := make([]int, t.cfg.NumFeatures)
	for i := range all {
		all[i] = i
	}
	return all
}

func (t *HoeffdingTree) attemptSplit(leaf *htNode) {
	s := leaf.stats
	if leaf.depth >= t.cfg.MaxDepth {
		return
	}
	if isPure(s.classCounts) {
		return
	}
	var best, second candidateSplit
	for _, f := range t.splitFeatures() {
		obs := s.observers[f]
		if obs == nil {
			continue
		}
		cand := obs.bestSplit(t.cfg.SplitCriterion, s.classCounts, f, t.cfg.SplitCandidates)
		if !cand.Valid {
			continue
		}
		switch {
		case !best.Valid || cand.Merit > best.Merit:
			second = best
			best = cand
		case !second.Valid || cand.Merit > second.Merit:
			second = cand
		}
	}
	if !best.Valid || best.Merit <= 0 {
		return
	}
	r := t.cfg.SplitCriterion.Range(t.cfg.NumClasses)
	eps := hoeffdingBound(r, t.cfg.SplitConfidence, s.weightSeen)
	secondMerit := 0.0
	if second.Valid {
		secondMerit = second.Merit
	}
	if best.Merit-secondMerit > eps || eps < t.cfg.TieThreshold {
		t.split(leaf, best)
	}
}

// split converts the leaf into an internal node with two fresh leaves whose
// class counts are seeded with the Gaussian-projected distributions, so
// predictions remain sensible until new data arrives.
func (t *HoeffdingTree) split(leaf *htNode, cand candidateSplit) {
	s := leaf.stats
	left := t.newLeaf(leaf.depth + 1)
	right := t.newLeaf(leaf.depth + 1)
	if obs := s.observers[cand.Feature]; obs != nil {
		for c, cnt := range s.classCounts {
			w := obs.PerClass[c]
			if w.N == 0 || cnt == 0 {
				continue
			}
			frac := gaussianCDF(cand.Threshold, w.Mean, w.Std())
			left.stats.classCounts[c] = cnt * frac
			right.stats.classCounts[c] = cnt * (1 - frac)
		}
	}
	delete(t.leaves, leaf.id)
	leaf.stats = nil
	leaf.feature = cand.Feature
	leaf.threshold = cand.Threshold
	leaf.left = left
	leaf.right = right
	t.splitCount++
}

func isPure(counts []float64) bool {
	nonZero := 0
	for _, c := range counts {
		if c > 0 {
			nonZero++
		}
	}
	return nonZero <= 1
}

func argMax(a []float64) int {
	best, bestV := -1, math.Inf(-1)
	for i, v := range a {
		if v > bestV {
			best, bestV = i, v
		}
	}
	return best
}
