// Package stream implements the streaming machine-learning methods the
// detection framework builds on: the Hoeffding Tree incremental decision
// tree (Domingos & Hulten 2000), the Adaptive Random Forest ensemble
// (Gomes et al. 2017) with ADWIN drift detection (Bifet & Gavaldà 2007),
// and Streaming Logistic Regression trained by stochastic gradient descent.
//
// All learners train on each instance exactly once (the streaming
// paradigm), support prequential evaluation, and implement
// ml.DistributedClassifier so the micro-batch engines can train them in
// parallel: tasks accumulate local sufficient-statistic deltas against a
// frozen view of the global model and the driver merges the deltas.
//
// Every learner also registers a wire codec (see codec.go), making all
// three kinds — HT, SLR, and ARF — first-class citizens of the
// distributed runtime: they broadcast across the cluster engine, ship
// accumulator deltas back to the driver, and round-trip through core
// checkpoints. The ARF additionally implements PartitionedModel, so its
// member trees broadcast with per-member hash elision, and DriftReporter,
// which surfaces its per-member ADWIN warning/drift/replacement counters
// through engine stats, the metrics registry, and the serving API.
package stream

import "math"

func sigmoid(z float64) float64 {
	// Guard against overflow for extreme margins.
	if z > 35 {
		return 1
	}
	if z < -35 {
		return 0
	}
	return 1 / (1 + math.Exp(-z))
}

func log2(x float64) float64 { return math.Log2(x) }
