package stream

import (
	"testing"

	"redhanded/internal/ml"
)

func trainedARF(t *testing.T, n int, seed uint64) *AdaptiveRandomForest {
	t.Helper()
	arf := NewAdaptiveRandomForest(ARFConfig{NumClasses: 2, NumFeatures: 4, EnsembleSize: 5, Seed: seed})
	for _, in := range gaussianStream(n, 2, 4, 4, seed) {
		arf.Train(in)
	}
	return arf
}

func samePredictions(t *testing.T, a, b ml.Classifier, data []ml.Instance, label string) {
	t.Helper()
	for _, in := range data {
		va, vb := a.Predict(in.X), b.Predict(in.X)
		for c := range va {
			if va[c] != vb[c] {
				t.Fatalf("%s: votes differ: %v vs %v", label, va, vb)
			}
		}
	}
}

func TestARFSerializationRoundTrip(t *testing.T) {
	arf := trainedARF(t, 6000, 21)
	blob, err := arf.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(blob) == 0 || len(blob) > 1<<20 {
		t.Fatalf("serialized size %d bytes; paper expects < 1MB", len(blob))
	}
	restored, err := DecodeModel(KindARF, blob)
	if err != nil {
		t.Fatal(err)
	}
	test := gaussianStream(500, 2, 4, 4, 50)
	samePredictions(t, arf, restored.(*AdaptiveRandomForest), test, "full round trip")

	// The full encoding captures detectors, background trees, and the
	// structural RNG, so both forests keep evolving identically — including
	// through a concept flip that forces drift reactions.
	flip := func(f *AdaptiveRandomForest) {
		rng := ml.NewRNG(7)
		for i := 0; i < 4000; i++ {
			label := rng.Intn(2)
			f.Train(ml.NewInstance([]float64{float64(1-label) * 5, rng.NormFloat64(), 0, 0}, label))
		}
	}
	r := restored.(*AdaptiveRandomForest)
	flip(arf)
	flip(r)
	samePredictions(t, arf, r, test, "post-drift continuation")
	if arf.DriftsDetected() != r.DriftsDetected() || arf.WarningsDetected() != r.WarningsDetected() {
		t.Fatalf("drift reactions diverged: (%d,%d) vs (%d,%d)",
			arf.DriftsDetected(), arf.WarningsDetected(), r.DriftsDetected(), r.WarningsDetected())
	}
}

func TestARFSerializationRoundTripDDM(t *testing.T) {
	arf := NewAdaptiveRandomForest(ARFConfig{
		NumClasses: 2, NumFeatures: 4, EnsembleSize: 3, Seed: 22, Detector: DetectDDM,
	})
	for _, in := range gaussianStream(3000, 2, 4, 4, 22) {
		arf.Train(in)
	}
	blob, err := arf.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := DecodeModel(KindARF, blob)
	if err != nil {
		t.Fatal(err)
	}
	cont := gaussianStream(2000, 2, 4, 4, 23)
	r := restored.(*AdaptiveRandomForest)
	for _, in := range cont {
		arf.Train(in)
		r.Train(in)
	}
	samePredictions(t, arf, r, gaussianStream(300, 2, 4, 4, 51), "DDM continuation")
}

func TestARFPartsPatchEquivalence(t *testing.T) {
	arf := trainedARF(t, 3000, 24)
	h1, p1, err := arf.MarshalParts()
	if err != nil {
		t.Fatal(err)
	}
	replica, err := DecodeModelParts(KindARF, h1, p1)
	if err != nil {
		t.Fatal(err)
	}
	test := gaussianStream(400, 2, 4, 4, 52)
	samePredictions(t, arf, replica, test, "parts restore")

	// Train on: members change; ship only the parts whose hash moved (the
	// driver's elision rule) and the replica must predict identically.
	for _, in := range gaussianStream(2000, 2, 4, 4, 25) {
		arf.Train(in)
	}
	h2, p2, err := arf.MarshalParts()
	if err != nil {
		t.Fatal(err)
	}
	var idx []int
	var changed [][]byte
	for i := range p2 {
		if Hash64(p2[i]) != Hash64(p1[i]) {
			idx = append(idx, i)
			changed = append(changed, p2[i])
		}
	}
	if err := replica.(PartitionedModel).PatchParts(h2, idx, changed); err != nil {
		t.Fatal(err)
	}
	samePredictions(t, arf, replica, test, "parts patch")
}

func TestARFPartsPatchRejectsMissingMember(t *testing.T) {
	arf := trainedARF(t, 2000, 26)
	h1, p1, err := arf.MarshalParts()
	if err != nil {
		t.Fatal(err)
	}
	replica, err := DecodeModelParts(KindARF, h1, p1)
	if err != nil {
		t.Fatal(err)
	}
	// Force a tree replacement so a member's generation moves, then send a
	// patch that skips that member: the replica must refuse (NeedResync
	// territory) instead of serving predictions with a stale tree.
	arf.replaceTree(arf.members[2])
	h2, _, err := arf.MarshalParts()
	if err != nil {
		t.Fatal(err)
	}
	if err := replica.(PartitionedModel).PatchParts(h2, nil, nil); err == nil {
		t.Fatal("patch skipping a replaced member was accepted")
	}
}

func TestARFRemoteAccumulatorRoundTrip(t *testing.T) {
	global := trainedARF(t, 3000, 27)
	// Give one member a background tree so the delta covers it too.
	global.members[1].background = global.newTree()
	global.members[1].bgGen = global.newGen()

	blob, err := global.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	remote, err := DecodeModel(KindARF, blob)
	if err != nil {
		t.Fatal(err)
	}
	acc := remote.NewAccumulator()
	batch := gaussianStream(800, 2, 4, 4, 28)
	for _, in := range batch {
		acc.Observe(in)
	}
	state, err := acc.(StatefulAccumulator).State()
	if err != nil {
		t.Fatal(err)
	}
	rebound, err := global.AccumulatorFromState(state)
	if err != nil {
		t.Fatal(err)
	}
	before := global.TrainCount()
	bgBefore := global.members[1].background.TrainCount()
	global.ApplyAccumulators([]ml.Accumulator{rebound})
	if global.TrainCount() != before+int64(len(batch)) {
		t.Fatalf("remote delta lost instances: %d -> %d", before, global.TrainCount())
	}
	if global.members[1].background != nil && global.members[1].background.TrainCount() == bgBefore {
		t.Fatal("background tree never trained from the remote delta")
	}
}

func TestARFDeltaGarbageRejected(t *testing.T) {
	arf := trainedARF(t, 500, 29)
	if _, err := arf.AccumulatorFromState([]byte("garbage")); err == nil {
		t.Fatal("garbage ARF delta accepted")
	}
	if err := arf.UnmarshalBinary([]byte("garbage")); err == nil {
		t.Fatal("garbage ARF model accepted")
	}
	if _, err := DecodeModelParts(KindARF, []byte("garbage"), nil); err == nil {
		t.Fatal("garbage ARF header accepted")
	}
}

func TestCodecRegistry(t *testing.T) {
	for _, kind := range []string{KindHT, KindSLR, KindARF} {
		if !KnownKind(kind) {
			t.Fatalf("kind %s not registered", kind)
		}
	}
	if KnownKind("XGB") {
		t.Fatal("unknown kind reported as known")
	}
	kinds := KnownKinds()
	if len(kinds) < 3 {
		t.Fatalf("registry lists %v", kinds)
	}
	for _, m := range []RemoteTrainable{
		NewHoeffdingTree(HTConfig{NumClasses: 2, NumFeatures: 2}),
		NewSLR(SLRConfig{NumClasses: 2, NumFeatures: 2}),
		NewAdaptiveRandomForest(ARFConfig{NumClasses: 2, NumFeatures: 2}),
	} {
		kind, err := ModelKindOf(m)
		if err != nil {
			t.Fatal(err)
		}
		blob, err := m.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := DecodeModel(kind, blob); err != nil {
			t.Fatalf("decode %s: %v", kind, err)
		}
	}
	if _, err := DecodeModel("XGB", nil); err == nil {
		t.Fatal("unknown kind decoded")
	}
}

// TestARFBaggingWeightsAreCounterBased pins the property the cluster
// equivalence relies on: the weight for (instance position, member) is a
// pure function, identical across independent forests with the same seed.
func TestARFBaggingWeightsAreCounterBased(t *testing.T) {
	a := NewAdaptiveRandomForest(ARFConfig{NumClasses: 2, NumFeatures: 2, EnsembleSize: 4, Seed: 30})
	b := NewAdaptiveRandomForest(ARFConfig{NumClasses: 2, NumFeatures: 2, EnsembleSize: 4, Seed: 30})
	for n := int64(0); n < 100; n++ {
		for i := 0; i < 4; i++ {
			if a.baggingWeight(n, i) != b.baggingWeight(n, i) {
				t.Fatalf("weights diverge at (%d, %d)", n, i)
			}
		}
	}
	// Distinct positions and members decorrelate.
	seen := map[float64]int{}
	for n := int64(0); n < 200; n++ {
		seen[a.baggingWeight(n, 0)]++
	}
	if len(seen) < 3 {
		t.Fatalf("weights barely vary: %v", seen)
	}
}
