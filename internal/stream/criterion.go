package stream

import "math"

// Criterion selects the impurity measure used to evaluate candidate splits
// in Hoeffding trees (Table I of the paper: Gini or InfoGain).
type Criterion int

const (
	// InfoGain is information gain over Shannon entropy (the value the
	// paper's grid search selects).
	InfoGain Criterion = iota
	// Gini is the Gini-impurity reduction.
	Gini
)

// String returns the Table I name of the criterion.
func (c Criterion) String() string {
	if c == Gini {
		return "Gini"
	}
	return "InfoGain"
}

// Range returns the range R of the criterion used in the Hoeffding bound:
// log2(numClasses) for information gain, 1 for Gini.
func (c Criterion) Range(numClasses int) float64 {
	if c == Gini {
		return 1
	}
	if numClasses < 2 {
		numClasses = 2
	}
	return log2(float64(numClasses))
}

// entropy returns the Shannon entropy of a class-count distribution.
func entropy(counts []float64) float64 {
	total := 0.0
	for _, c := range counts {
		total += c
	}
	if total <= 0 {
		return 0
	}
	h := 0.0
	for _, c := range counts {
		if c > 0 {
			p := c / total
			h -= p * log2(p)
		}
	}
	return h
}

// giniImpurity returns the Gini impurity of a class-count distribution.
func giniImpurity(counts []float64) float64 {
	total := 0.0
	for _, c := range counts {
		total += c
	}
	if total <= 0 {
		return 0
	}
	sumSq := 0.0
	for _, c := range counts {
		p := c / total
		sumSq += p * p
	}
	return 1 - sumSq
}

// impurity dispatches on the criterion.
func (c Criterion) impurity(counts []float64) float64 {
	if c == Gini {
		return giniImpurity(counts)
	}
	return entropy(counts)
}

// splitMerit returns the impurity reduction achieved by partitioning the
// parent distribution into the left/right child distributions.
func (c Criterion) splitMerit(parent, left, right []float64) float64 {
	nl, nr := sum(left), sum(right)
	total := nl + nr
	if total <= 0 || nl <= 0 || nr <= 0 {
		return 0
	}
	weighted := (nl*c.impurity(left) + nr*c.impurity(right)) / total
	return c.impurity(parent) - weighted
}

func sum(a []float64) float64 {
	s := 0.0
	for _, v := range a {
		s += v
	}
	return s
}

// hoeffdingBound returns epsilon for range r, confidence delta, and n
// observations: sqrt(r^2 ln(1/delta) / 2n).
func hoeffdingBound(r, delta, n float64) float64 {
	if n <= 0 {
		return math.Inf(1)
	}
	return math.Sqrt(r * r * math.Log(1/delta) / (2 * n))
}
