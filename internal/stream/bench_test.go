package stream

import "testing"

func BenchmarkHTTrain(b *testing.B) {
	data := gaussianStream(10000, 3, 17, 3, 1)
	ht := NewHoeffdingTree(HTConfig{NumClasses: 3, NumFeatures: 17})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ht.Train(data[i%len(data)])
	}
}

func BenchmarkHTPredict(b *testing.B) {
	data := gaussianStream(10000, 3, 17, 3, 2)
	ht := NewHoeffdingTree(HTConfig{NumClasses: 3, NumFeatures: 17})
	for _, in := range data {
		ht.Train(in)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ht.Predict(data[i%len(data)].X)
	}
}

func BenchmarkARFTrain(b *testing.B) {
	data := gaussianStream(10000, 3, 17, 3, 3)
	arf := NewAdaptiveRandomForest(ARFConfig{NumClasses: 3, NumFeatures: 17, Seed: 1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arf.Train(data[i%len(data)])
	}
}

func BenchmarkSLRTrain(b *testing.B) {
	data := gaussianStream(10000, 3, 17, 3, 4)
	slr := NewSLR(SLRConfig{NumClasses: 3, NumFeatures: 17})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slr.Train(data[i%len(data)])
	}
}

func BenchmarkADWINAdd(b *testing.B) {
	a := NewADWIN(0.002)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Add(float64(i % 2))
	}
}

func BenchmarkHTSerialize(b *testing.B) {
	ht := NewHoeffdingTree(HTConfig{NumClasses: 3, NumFeatures: 17})
	for _, in := range gaussianStream(20000, 3, 17, 3, 5) {
		ht.Train(in)
	}
	blob, err := ht.MarshalBinary()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(len(blob)), "bytes")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ht.MarshalBinary(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHTAccumulatorObserve(b *testing.B) {
	data := gaussianStream(10000, 3, 17, 3, 6)
	ht := NewHoeffdingTree(HTConfig{NumClasses: 3, NumFeatures: 17})
	for _, in := range data {
		ht.Train(in)
	}
	acc := ht.NewAccumulator()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc.Observe(data[i%len(data)])
	}
}
