package stream

import (
	"testing"

	"redhanded/internal/ml"
)

func TestARFLearnsSeparableData(t *testing.T) {
	data := gaussianStream(8000, 2, 4, 4, 1)
	arf := NewAdaptiveRandomForest(ARFConfig{NumClasses: 2, NumFeatures: 4, EnsembleSize: 5, Seed: 1})
	acc := prequentialAccuracy(arf, data)
	if acc < 0.85 {
		t.Fatalf("ARF accuracy = %v, want >= 0.85", acc)
	}
}

func TestARFDefaultEnsembleSize(t *testing.T) {
	arf := NewAdaptiveRandomForest(ARFConfig{NumClasses: 2, NumFeatures: 4})
	if arf.EnsembleSize() != 10 {
		t.Fatalf("default ensemble size = %d, want 10 (Table I)", arf.EnsembleSize())
	}
}

func TestARFRecoversFromConceptDrift(t *testing.T) {
	arf := NewAdaptiveRandomForest(ARFConfig{NumClasses: 2, NumFeatures: 2, EnsembleSize: 5, Seed: 2})
	rng := ml.NewRNG(3)
	gen := func(label int, flipped bool) ml.Instance {
		effective := label
		if flipped {
			effective = 1 - label
		}
		x := []float64{float64(effective)*5 + rng.NormFloat64(), rng.NormFloat64()}
		return ml.NewInstance(x, label)
	}
	// Phase 1: learn the concept.
	for i := 0; i < 4000; i++ {
		arf.Train(gen(rng.Intn(2), false))
	}
	// Phase 2: concept flips; train through the drift.
	for i := 0; i < 6000; i++ {
		arf.Train(gen(rng.Intn(2), true))
	}
	// Evaluate on the new concept.
	correct := 0
	n := 1000
	for i := 0; i < n; i++ {
		in := gen(rng.Intn(2), true)
		if arf.Predict(in.X).ArgMax() == in.Label {
			correct++
		}
	}
	acc := float64(correct) / float64(n)
	if acc < 0.8 {
		t.Fatalf("post-drift accuracy = %v, want >= 0.8 (drifts detected: %d)", acc, arf.DriftsDetected())
	}
}

func TestARFDriftDetectionFires(t *testing.T) {
	arf := NewAdaptiveRandomForest(ARFConfig{NumClasses: 2, NumFeatures: 2, EnsembleSize: 3, Seed: 4})
	rng := ml.NewRNG(5)
	for i := 0; i < 3000; i++ {
		label := rng.Intn(2)
		arf.Train(ml.NewInstance([]float64{float64(label) * 5, rng.NormFloat64()}, label))
	}
	// Flip concept hard.
	for i := 0; i < 3000; i++ {
		label := rng.Intn(2)
		arf.Train(ml.NewInstance([]float64{float64(1-label) * 5, rng.NormFloat64()}, label))
	}
	if arf.DriftsDetected() == 0 {
		t.Fatalf("no drifts detected across concept flip")
	}
}

func TestARFDisableBaggingDeterministicWeight(t *testing.T) {
	arf := NewAdaptiveRandomForest(ARFConfig{
		NumClasses: 2, NumFeatures: 2, EnsembleSize: 2, Seed: 6,
		DisableBagging: true, DisableDrift: true,
	})
	for _, in := range gaussianStream(500, 2, 2, 4, 7) {
		arf.Train(in)
	}
	for _, m := range arf.members {
		if m.tree.TrainCount() != 500 {
			t.Fatalf("without bagging every tree sees every instance once: got %d", m.tree.TrainCount())
		}
	}
}

func TestARFSubspacesDiffer(t *testing.T) {
	arf := NewAdaptiveRandomForest(ARFConfig{NumClasses: 2, NumFeatures: 10, EnsembleSize: 8, Seed: 8})
	distinct := map[string]bool{}
	for _, m := range arf.members {
		key := ""
		for _, f := range m.tree.cfg.FeatureSubset {
			key += string(rune('a' + f))
		}
		distinct[key] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("all member subspaces identical; diversity broken")
	}
}

func TestARFWithDDMDetector(t *testing.T) {
	arf := NewAdaptiveRandomForest(ARFConfig{
		NumClasses: 2, NumFeatures: 2, EnsembleSize: 5, Seed: 10,
		Detector: DetectDDM,
	})
	rng := ml.NewRNG(11)
	gen := func(label int, flipped bool) ml.Instance {
		effective := label
		if flipped {
			effective = 1 - label
		}
		return ml.NewInstance([]float64{float64(effective)*5 + rng.NormFloat64(), rng.NormFloat64()}, label)
	}
	for i := 0; i < 4000; i++ {
		arf.Train(gen(rng.Intn(2), false))
	}
	for i := 0; i < 6000; i++ {
		arf.Train(gen(rng.Intn(2), true))
	}
	correct, n := 0, 1000
	for i := 0; i < n; i++ {
		in := gen(rng.Intn(2), true)
		if arf.Predict(in.X).ArgMax() == in.Label {
			correct++
		}
	}
	if acc := float64(correct) / float64(n); acc < 0.8 {
		t.Fatalf("DDM-based ARF post-drift accuracy = %v (drifts %d)", acc, arf.DriftsDetected())
	}
	if arf.DriftsDetected() == 0 {
		t.Fatalf("DDM detector never fired across the concept flip")
	}
}

func TestARFConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("invalid ARF config did not panic")
		}
	}()
	NewAdaptiveRandomForest(ARFConfig{NumClasses: 1, NumFeatures: 2})
}
