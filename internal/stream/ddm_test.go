package stream

import (
	"testing"

	"redhanded/internal/ml"
)

func TestDDMStationaryNoDrift(t *testing.T) {
	d := NewDDM()
	rng := ml.NewRNG(1)
	drifts := 0
	for i := 0; i < 20000; i++ {
		bit := 0.0
		if rng.Float64() < 0.2 {
			bit = 1
		}
		if d.Add(bit) == DriftDetected {
			drifts++
		}
	}
	if drifts > 2 {
		t.Fatalf("stationary stream triggered %d DDM drifts", drifts)
	}
}

func TestDDMDetectsDegradation(t *testing.T) {
	d := NewDDM()
	rng := ml.NewRNG(2)
	detected := false
	for i := 0; i < 6000; i++ {
		p := 0.1
		if i >= 3000 {
			p = 0.6
		}
		bit := 0.0
		if rng.Float64() < p {
			bit = 1
		}
		if d.Add(bit) == DriftDetected && i >= 3000 {
			detected = true
			break
		}
	}
	if !detected {
		t.Fatalf("0.1 -> 0.6 error increase not detected")
	}
	if d.Drifts() == 0 {
		t.Fatalf("drift counter not incremented")
	}
}

func TestDDMWarningPrecedesDrift(t *testing.T) {
	d := NewDDM()
	rng := ml.NewRNG(3)
	for i := 0; i < 3000; i++ {
		bit := 0.0
		if rng.Float64() < 0.1 {
			bit = 1
		}
		d.Add(bit)
	}
	sawWarning := false
	for i := 0; i < 3000; i++ {
		bit := 0.0
		if rng.Float64() < 0.5 {
			bit = 1
		}
		state := d.Add(bit)
		if state == DriftWarning {
			sawWarning = true
		}
		if state == DriftDetected {
			if !sawWarning {
				t.Fatalf("drift fired without a preceding warning phase")
			}
			return
		}
	}
	t.Fatalf("no drift detected")
}

func TestDDMImprovementIsNotDrift(t *testing.T) {
	d := NewDDM()
	rng := ml.NewRNG(4)
	for i := 0; i < 3000; i++ {
		bit := 0.0
		if rng.Float64() < 0.5 {
			bit = 1
		}
		d.Add(bit)
	}
	for i := 0; i < 3000; i++ {
		bit := 0.0
		if rng.Float64() < 0.05 {
			bit = 1
		}
		if d.Add(bit) == DriftDetected {
			t.Fatalf("improvement flagged as drift")
		}
	}
}

func TestDDMInactiveBelowMinInstances(t *testing.T) {
	d := NewDDM()
	for i := 0; i < 29; i++ {
		if d.Add(1) != DriftNone {
			t.Fatalf("detector active before MinInstances")
		}
	}
}
