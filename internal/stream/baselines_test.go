package stream

import (
	"testing"

	"redhanded/internal/ml"
)

func TestMajorityClassifier(t *testing.T) {
	m := NewMajorityClassifier(3)
	if got := m.Predict(nil).ArgMax(); got != 0 {
		t.Fatalf("untrained majority predicts %d (expected tie -> 0)", got)
	}
	for i := 0; i < 7; i++ {
		m.Train(ml.NewInstance(nil, 2))
	}
	for i := 0; i < 3; i++ {
		m.Train(ml.NewInstance(nil, 0))
	}
	if got := m.Predict([]float64{1, 2}).ArgMax(); got != 2 {
		t.Fatalf("majority = %d, want 2", got)
	}
	if m.TrainCount() != 10 {
		t.Fatalf("count = %d", m.TrainCount())
	}
	m.Train(ml.Instance{X: nil, Label: ml.Unlabeled})
	if m.TrainCount() != 10 {
		t.Fatalf("unlabeled instance counted")
	}
}

func TestNoChangeClassifier(t *testing.T) {
	m := NewNoChangeClassifier(2)
	votes := m.Predict(nil)
	if votes[0] != 0 || votes[1] != 0 {
		t.Fatalf("untrained no-change should abstain: %v", votes)
	}
	m.Train(ml.NewInstance(nil, 1))
	if got := m.Predict(nil).ArgMax(); got != 1 {
		t.Fatalf("no-change = %d, want 1", got)
	}
	m.Train(ml.NewInstance(nil, 0))
	if got := m.Predict(nil).ArgMax(); got != 0 {
		t.Fatalf("no-change = %d, want 0", got)
	}
}

func TestHTBeatsBaselines(t *testing.T) {
	data := gaussianStream(8000, 2, 4, 4, 41)
	htAcc := prequentialAccuracy(defaultHT(2, 4), data)
	majAcc := prequentialAccuracy(NewMajorityClassifier(2), data)
	ncAcc := prequentialAccuracy(NewNoChangeClassifier(2), data)
	if htAcc <= majAcc || htAcc <= ncAcc {
		t.Fatalf("HT (%v) does not beat baselines (majority %v, no-change %v)",
			htAcc, majAcc, ncAcc)
	}
}

func TestBaselinePanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewMajorityClassifier(1) },
		func() { NewNoChangeClassifier(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("invalid baseline config did not panic")
				}
			}()
			fn()
		}()
	}
}
