package stream

import (
	"redhanded/internal/ml"
)

// gaussianStream generates labeled instances from class-conditional
// Gaussians. Separation varies by dimension (weaker in low dimensions) so
// feature merits differ — with identical merits a Hoeffding tree must wait
// for the tie threshold before its first split, which is correct but makes
// short-stream accuracy assertions misleading.
func gaussianStream(n, numClasses, dim int, separation float64, seed uint64) []ml.Instance {
	rng := ml.NewRNG(seed)
	out := make([]ml.Instance, 0, n)
	for i := 0; i < n; i++ {
		label := rng.Intn(numClasses)
		x := make([]float64, dim)
		for d := 0; d < dim; d++ {
			sep := separation * (0.5 + 0.5*float64(d+1)/float64(dim))
			x[d] = float64(label)*sep + rng.NormFloat64()
		}
		out = append(out, ml.NewInstance(x, label))
	}
	return out
}

// prequentialAccuracy runs test-then-train over the stream and returns the
// overall accuracy.
func prequentialAccuracy(m ml.StreamClassifier, data []ml.Instance) float64 {
	correct := 0
	for _, in := range data {
		if m.Predict(in.X).ArgMax() == in.Label {
			correct++
		}
		m.Train(in)
	}
	return float64(correct) / float64(len(data))
}
