package stream

import (
	"math"

	"redhanded/internal/norm"
)

// gaussianObserver summarises the distribution of one numeric feature per
// class at a leaf: a Gaussian estimator (Welford) per class plus the
// observed feature range. This is the standard MOA/streamDM numeric
// attribute observer; candidate thresholds are evaluated against the
// Gaussian CDFs, giving O(1) memory per (leaf, feature, class).
type gaussianObserver struct {
	PerClass []norm.Welford
	Range    norm.RangeStat
}

func newGaussianObserver(numClasses int) *gaussianObserver {
	return &gaussianObserver{PerClass: make([]norm.Welford, numClasses)}
}

// observe folds a (value, class, weight) triple into the estimator as one
// Chan-style merge of a synthetic single-point summary (a weight-w stack
// of the same value has mean value and zero variance). Using the same
// merge arithmetic as the distributed delta path makes a direct Train and
// a one-instance accumulator merge bit-identical, which is what lets a
// batch-size-1 cluster run reproduce the sequential engine exactly.
func (g *gaussianObserver) observe(value float64, class int, weight float64) {
	if class < 0 || class >= len(g.PerClass) || weight <= 0 {
		return
	}
	n := int64(math.Ceil(weight))
	g.PerClass[class].Merge(norm.Welford{N: n, Mean: value})
	g.Range.Merge(norm.RangeStat{N: n, Min: value, Max: value})
}

// merge combines another observer (a task-local delta) into this one.
func (g *gaussianObserver) merge(other *gaussianObserver) {
	for c := range g.PerClass {
		if c < len(other.PerClass) {
			g.PerClass[c].Merge(other.PerClass[c])
		}
	}
	g.Range.Merge(other.Range)
}

// clone returns a deep copy.
func (g *gaussianObserver) clone() *gaussianObserver {
	cp := &gaussianObserver{
		PerClass: append([]norm.Welford(nil), g.PerClass...),
		Range:    g.Range,
	}
	return cp
}

// gaussianCDF returns P(X <= x) for a normal with the given mean/std.
func gaussianCDF(x, mean, std float64) float64 {
	if std <= 0 {
		if x < mean {
			return 0
		}
		return 1
	}
	return 0.5 * (1 + math.Erf((x-mean)/(std*math.Sqrt2)))
}

// candidateSplit describes the best threshold found for one feature.
type candidateSplit struct {
	Feature   int
	Threshold float64
	Merit     float64
	Valid     bool
}

// bestSplit evaluates numCandidates equally spaced thresholds between the
// observed min and max and returns the threshold with the highest merit
// under the criterion. preSplit is the leaf's class-count distribution.
func (g *gaussianObserver) bestSplit(crit Criterion, preSplit []float64, feature, numCandidates int) candidateSplit {
	out := candidateSplit{Feature: feature}
	lo, hi := g.Range.Min, g.Range.Max
	if g.Range.N == 0 || hi <= lo {
		return out
	}
	left := make([]float64, len(preSplit))
	right := make([]float64, len(preSplit))
	for i := 1; i <= numCandidates; i++ {
		t := lo + (hi-lo)*float64(i)/float64(numCandidates+1)
		for c := range preSplit {
			w := &g.PerClass[c]
			n := float64(w.N)
			if n == 0 {
				left[c], right[c] = 0, 0
				continue
			}
			frac := gaussianCDF(t, w.Mean, w.Std())
			left[c] = n * frac
			right[c] = n * (1 - frac)
		}
		merit := crit.splitMerit(preSplit, left, right)
		if !out.Valid || merit > out.Merit {
			out.Merit = merit
			out.Threshold = t
			out.Valid = true
		}
	}
	return out
}
