package stream

import "redhanded/internal/ml"

// Baseline classifiers in the MOA tradition: any streaming method must
// beat these to be worth its cycles. They also serve as sanity floors in
// the test and benchmark suites.

// MajorityClassifier always predicts the most frequent class seen so far.
type MajorityClassifier struct {
	counts []float64
	n      int64
}

var _ ml.StreamClassifier = (*MajorityClassifier)(nil)

// NewMajorityClassifier creates the baseline for k classes.
func NewMajorityClassifier(k int) *MajorityClassifier {
	if k < 2 {
		panic("stream: majority baseline needs >= 2 classes")
	}
	return &MajorityClassifier{counts: make([]float64, k)}
}

// NumClasses implements ml.StreamClassifier.
func (m *MajorityClassifier) NumClasses() int { return len(m.counts) }

// TrainCount returns the number of instances observed.
func (m *MajorityClassifier) TrainCount() int64 { return m.n }

// Predict implements ml.Classifier: votes are the observed class priors.
func (m *MajorityClassifier) Predict(_ []float64) ml.Prediction {
	return append(ml.Prediction(nil), m.counts...)
}

// Train implements ml.StreamClassifier.
func (m *MajorityClassifier) Train(in ml.Instance) {
	if !in.IsLabeled() || in.Label >= len(m.counts) {
		return
	}
	w := in.Weight
	if w <= 0 {
		w = 1
	}
	m.counts[in.Label] += w
	m.n++
}

// NoChangeClassifier predicts the last label it was trained on — the
// "persistence" baseline, strong on streams with temporal correlation.
type NoChangeClassifier struct {
	k    int
	last int
	n    int64
}

var _ ml.StreamClassifier = (*NoChangeClassifier)(nil)

// NewNoChangeClassifier creates the baseline for k classes.
func NewNoChangeClassifier(k int) *NoChangeClassifier {
	if k < 2 {
		panic("stream: no-change baseline needs >= 2 classes")
	}
	return &NoChangeClassifier{k: k, last: -1}
}

// NumClasses implements ml.StreamClassifier.
func (m *NoChangeClassifier) NumClasses() int { return m.k }

// TrainCount returns the number of instances observed.
func (m *NoChangeClassifier) TrainCount() int64 { return m.n }

// Predict implements ml.Classifier.
func (m *NoChangeClassifier) Predict(_ []float64) ml.Prediction {
	votes := make(ml.Prediction, m.k)
	if m.last >= 0 {
		votes[m.last] = 1
	}
	return votes
}

// Train implements ml.StreamClassifier.
func (m *NoChangeClassifier) Train(in ml.Instance) {
	if !in.IsLabeled() || in.Label >= m.k {
		return
	}
	m.last = in.Label
	m.n++
}
