package stream

import "math"

// adwinBucket is an exponential-histogram bucket: n observations with their
// sum and sum of squared deviations (for variance, merged Chan-style).
type adwinBucket struct {
	n   float64
	sum float64
	m2  float64
}

func (b adwinBucket) mean() float64 {
	if b.n == 0 {
		return 0
	}
	return b.sum / b.n
}

func mergeBuckets(a, b adwinBucket) adwinBucket {
	if a.n == 0 {
		return b
	}
	if b.n == 0 {
		return a
	}
	delta := b.mean() - a.mean()
	total := a.n + b.n
	return adwinBucket{
		n:   total,
		sum: a.sum + b.sum,
		m2:  a.m2 + b.m2 + delta*delta*a.n*b.n/total,
	}
}

// ADWIN (ADaptive WINdowing, Bifet & Gavaldà 2007) maintains a
// variable-length window over a stream of real values and shrinks it
// whenever two sub-windows exhibit distinct enough means, signalling
// concept drift. It backs the Adaptive Random Forest's warning and drift
// detectors. Memory is O(M log n) via an exponential histogram.
type ADWIN struct {
	// Delta is the confidence parameter: smaller values make detection
	// more conservative.
	Delta float64

	rows          [][]adwinBucket // rows[i] holds buckets of 2^i items, oldest first
	maxPerRow     int
	width         float64
	total         float64
	sinceCheck    int
	checkInterval int
	drifts        int
	lastIncrease  bool
}

// NewADWIN returns a detector with the given confidence delta in (0, 1).
func NewADWIN(delta float64) *ADWIN {
	if delta <= 0 || delta >= 1 {
		delta = 0.002
	}
	return &ADWIN{Delta: delta, maxPerRow: 5, checkInterval: 32}
}

// Width returns the current window length.
func (a *ADWIN) Width() int { return int(a.width) }

// Mean returns the mean of the current window.
func (a *ADWIN) Mean() float64 {
	if a.width == 0 {
		return 0
	}
	return a.total / a.width
}

// Drifts returns how many drifts have been detected so far.
func (a *ADWIN) Drifts() int { return a.drifts }

// IncreaseDetected reports whether the most recent detection saw the
// stream mean increasing (newer window above older window). Consumers that
// monitor error rates use this to react only to degradation, not to
// improvement.
func (a *ADWIN) IncreaseDetected() bool { return a.lastIncrease }

// Add folds one value into the window and returns true when drift was
// detected (and the window shrunk).
func (a *ADWIN) Add(x float64) bool {
	a.insert(adwinBucket{n: 1, sum: x})
	a.width++
	a.total += x
	a.sinceCheck++
	if a.sinceCheck < a.checkInterval || a.width < 10 {
		return false
	}
	a.sinceCheck = 0
	return a.detectAndShrink()
}

func (a *ADWIN) insert(b adwinBucket) {
	if len(a.rows) == 0 {
		a.rows = append(a.rows, nil)
	}
	a.rows[0] = append(a.rows[0], b)
	for i := 0; i < len(a.rows); i++ {
		if len(a.rows[i]) <= a.maxPerRow {
			break
		}
		merged := mergeBuckets(a.rows[i][0], a.rows[i][1])
		a.rows[i] = a.rows[i][2:]
		if i+1 == len(a.rows) {
			a.rows = append(a.rows, nil)
		}
		a.rows[i+1] = append(a.rows[i+1], merged)
	}
}

// flatten returns all buckets ordered oldest to newest.
func (a *ADWIN) flatten() []adwinBucket {
	var out []adwinBucket
	for i := len(a.rows) - 1; i >= 0; i-- {
		out = append(out, a.rows[i]...)
	}
	return out
}

// detectAndShrink runs the ADWIN cut test over every bucket boundary,
// dropping the oldest bucket while any cut shows significantly different
// means, and returns whether any shrink happened.
func (a *ADWIN) detectAndShrink() bool {
	shrunk := false
	for a.tryOneShrink() {
		shrunk = true
		a.drifts++
	}
	return shrunk
}

func (a *ADWIN) tryOneShrink() bool {
	buckets := a.flatten()
	if len(buckets) < 2 {
		return false
	}
	whole := adwinBucket{}
	for _, b := range buckets {
		whole = mergeBuckets(whole, b)
	}
	variance := 0.0
	if whole.n > 1 {
		variance = whole.m2 / whole.n
	}
	logTerm := math.Log(2 * math.Log(math.Max(whole.n, math.E)) / a.Delta)

	prefix := adwinBucket{}
	for i := 0; i < len(buckets)-1; i++ {
		prefix = mergeBuckets(prefix, buckets[i])
		n0 := prefix.n
		n1 := whole.n - n0
		if n0 < 5 || n1 < 5 {
			continue
		}
		u0 := prefix.mean()
		u1 := (whole.sum - prefix.sum) / n1
		m := 1 / (1/n0 + 1/n1)
		epsCut := math.Sqrt(2/m*variance*logTerm) + 2/(3*m)*logTerm
		if math.Abs(u0-u1) > epsCut {
			a.lastIncrease = u1 > u0
			a.dropOldest()
			return true
		}
	}
	return false
}

// dropOldest removes the oldest bucket (largest row, index 0).
func (a *ADWIN) dropOldest() {
	for i := len(a.rows) - 1; i >= 0; i-- {
		if len(a.rows[i]) == 0 {
			continue
		}
		b := a.rows[i][0]
		a.rows[i] = a.rows[i][1:]
		a.width -= b.n
		a.total -= b.sum
		return
	}
}
