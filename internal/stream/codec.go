package stream

import (
	"fmt"
	"sort"
	"sync"
)

// The model codec registry. Every model kind that crosses a process
// boundary — cluster broadcast, accumulator deltas shipped back to the
// driver, core checkpoints — registers a Codec here, keyed by a stable wire
// tag. The transport, checkpoint, and serving layers operate purely on the
// registry: adding a new model kind means implementing RemoteTrainable
// (plus, optionally, PartitionedModel) and calling RegisterCodec from an
// init — no switch in any other layer grows a new branch.

// Codec describes how one model kind crosses process boundaries.
type Codec struct {
	// Kind is the stable wire tag negotiated in the cluster hello and
	// written into checkpoints.
	Kind string
	// New returns an empty model of this kind, ready for UnmarshalBinary
	// (or UnmarshalParts when the model is partitioned).
	New func() RemoteTrainable
}

var (
	codecMu sync.RWMutex
	codecs  = make(map[string]Codec)
)

// RegisterCodec adds a model codec to the registry. It panics on an empty
// kind, a nil constructor, or a duplicate registration — all programmer
// errors caught at init time.
func RegisterCodec(c Codec) {
	if c.Kind == "" || c.New == nil {
		panic("stream: RegisterCodec needs a kind and a constructor")
	}
	codecMu.Lock()
	defer codecMu.Unlock()
	if _, dup := codecs[c.Kind]; dup {
		panic(fmt.Sprintf("stream: model kind %q registered twice", c.Kind))
	}
	codecs[c.Kind] = c
}

func lookupCodec(kind string) (Codec, bool) {
	codecMu.RLock()
	defer codecMu.RUnlock()
	c, ok := codecs[kind]
	return c, ok
}

// KnownKind reports whether kind names a model this build can decode —
// the executor side of the cluster hello negotiation, so a driver running
// a newer model kind fails fast with a clear error instead of a mid-run
// decode failure.
func KnownKind(kind string) bool {
	_, ok := lookupCodec(kind)
	return ok
}

// KnownKinds returns every registered kind tag, sorted.
func KnownKinds() []string {
	codecMu.RLock()
	defer codecMu.RUnlock()
	kinds := make([]string, 0, len(codecs))
	for k := range codecs {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds
}

// ModelKindOf returns the protocol tag for a remote-trainable model,
// validating that the kind the model claims is actually registered.
func ModelKindOf(m RemoteTrainable) (string, error) {
	kind := m.Kind()
	if !KnownKind(kind) {
		return "", fmt.Errorf("stream: model %T reports unregistered kind %q", m, kind)
	}
	return kind, nil
}

// DecodeModel reconstructs a remote-trainable model of the given kind from
// its serialized state (executor side of the cluster protocol, and the
// checkpoint restore path).
func DecodeModel(kind string, data []byte) (RemoteTrainable, error) {
	c, ok := lookupCodec(kind)
	if !ok {
		return nil, fmt.Errorf("stream: unknown model kind %q", kind)
	}
	m := c.New()
	if err := m.UnmarshalBinary(data); err != nil {
		return nil, err
	}
	return m, nil
}

// PartitionedModel is a RemoteTrainable whose broadcast state splits into
// independently-versioned parts (the Adaptive Random Forest's member
// slots). The driver hashes each part and ships only the parts whose hash
// a node does not already hold, so a steady-state broadcast costs the
// header plus the changed parts instead of the whole model.
type PartitionedModel interface {
	RemoteTrainable
	// MarshalParts serializes the broadcast state: a header (configuration
	// and per-part metadata, always shipped when anything changed) plus one
	// blob per part.
	MarshalParts() (header []byte, parts [][]byte, err error)
	// UnmarshalParts restores a model from a header and the complete part
	// set, replacing the receiver's state.
	UnmarshalParts(header []byte, parts [][]byte) error
	// PatchParts applies a delta onto an already-restored model: the header
	// plus the parts at the given indexes. It must fail (so the session can
	// answer NeedResync) when the patch references state the receiver does
	// not hold.
	PatchParts(header []byte, idx []int, parts [][]byte) error
}

// DecodeModelParts reconstructs a partitioned model of the given kind from
// a header and its complete part set.
func DecodeModelParts(kind string, header []byte, parts [][]byte) (RemoteTrainable, error) {
	c, ok := lookupCodec(kind)
	if !ok {
		return nil, fmt.Errorf("stream: unknown model kind %q", kind)
	}
	m := c.New()
	pm, ok := m.(PartitionedModel)
	if !ok {
		return nil, fmt.Errorf("stream: model kind %q is not partitioned", kind)
	}
	if err := pm.UnmarshalParts(header, parts); err != nil {
		return nil, err
	}
	return pm, nil
}

// Hash64 is the registry's stable content hash (FNV-64a) over a serialized
// blob. The cluster protocol's version handshake elides any payload whose
// hash the peer already holds.
func Hash64(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// HashModelParts hashes a partitioned model's broadcast state: one hash
// per part (the per-part elision keys) and a whole-model hash mixing the
// header with every part hash (the elide-everything key).
func HashModelParts(header []byte, parts [][]byte) (whole uint64, partHashes []uint64) {
	partHashes = make([]uint64, len(parts))
	whole = Hash64(header)
	for i, p := range parts {
		partHashes[i] = Hash64(p)
		whole = (whole ^ partHashes[i]) * 1099511628211
	}
	return whole, partHashes
}
