package stream

import (
	"math"

	"redhanded/internal/ml"
)

// Compiled inference snapshots: the live models (HoeffdingTree, SLR,
// AdaptiveRandomForest) are mutable pointer graphs optimized for
// incremental training. The serving hot path wants the opposite — an
// immutable, pointer-free, contiguous representation it can classify
// against without locks or allocations. CompileSnapshot flattens a
// model's prediction function into that form:
//
//   - tree models become one cnode array per tree (split feature,
//     threshold, child indices) plus two float64 arenas: `dist` for
//     leaf class-count / log-prior blocks and `nb` for the precomputed
//     naive-Bayes per-(feature, class) Gaussian records;
//   - SLR becomes a single flat weight vector with a per-class stride.
//
// The flattening preserves the exact floating-point operation order of
// the live predict paths, so a snapshot's votes are bit-for-bit
// identical to the source model's Predict at the epoch it was compiled
// (hoeffding_compiled_test.go proves this per model and under
// concurrent training).
//
// Rebuilds are incremental: every model carries a monotone epoch
// counter bumped on each mutation, and an ARF snapshot reuses the
// flattened form of any member tree whose (pointer, epoch) pair is
// unchanged since the previous snapshot — a drift replacement or a
// trained member re-flattens only that member, O(changed trees).

// Compilable is a streaming model whose prediction function can be
// flattened into an immutable Compiled snapshot.
type Compilable interface {
	// Epoch returns a counter bumped on every mutation of
	// prediction-relevant state; callers use it to detect staleness
	// without recompiling.
	Epoch() uint64
	// CompileSnapshot flattens the current prediction state. prev, when
	// non-nil, is an earlier snapshot of the same model: parts whose
	// source did not change since prev was built are reused instead of
	// re-flattened.
	CompileSnapshot(prev *Compiled) *Compiled
}

// cnode is one flattened tree node. Internal nodes have feature >= 0
// and left/right as node-array indices. Leaves have feature == -1:
// left is the offset of the leaf's block in the dist arena, and right
// is the offset of its naive-Bayes block in the nb arena, or -1 for a
// majority-class leaf. A majority-class leaf's dist block holds its raw
// class counts; a naive-Bayes leaf's dist block holds per-class log
// priors (-Inf for classes the leaf never saw).
type cnode struct {
	threshold float64
	feature   int32
	left      int32
	right     int32
}

// compiledTree is one flattened Hoeffding tree. src/srcEpoch identify
// the live tree it was flattened from — used only as the incremental-
// rebuild reuse key, never dereferenced at predict time.
type compiledTree struct {
	src      *HoeffdingTree
	srcEpoch uint64
	nodes    []cnode
	dist     []float64
	nb       []float64
}

// Compiled is an immutable, pointer-free snapshot of a model's
// prediction function. It is safe for unsynchronized concurrent use by
// any number of readers; publication is the caller's concern (the core
// pipeline uses an atomic.Pointer per the RCU rule in DESIGN.md).
type Compiled struct {
	src        any // source model identity, for prev-reuse checks only
	epoch      uint64
	numClasses int
	rebuilt    int // trees re-flattened while building this snapshot

	// Tree models. A single HT compiles to one tree with no ensemble
	// vote; ARF compiles to one tree per member plus accuracy weights.
	trees    []*compiledTree
	weights  []float64
	ensemble bool

	// SLR: flat [class*stride + feature] weights, bias at stride-1.
	slrW      []float64
	slrStride int
}

// Epoch returns the source-model epoch this snapshot was compiled at.
func (c *Compiled) Epoch() uint64 { return c.epoch }

// Rebuilt returns how many trees were re-flattened (rather than reused
// from the previous snapshot) when this snapshot was built.
func (c *Compiled) Rebuilt() int { return c.rebuilt }

// NumClasses returns the class-domain size of the compiled model.
func (c *Compiled) NumClasses() int { return c.numClasses }

// NumTrees returns the number of flattened trees (0 for linear models).
func (c *Compiled) NumTrees() int { return len(c.trees) }

// NumNodes returns the total flattened node count across all trees.
func (c *Compiled) NumNodes() int {
	n := 0
	for _, t := range c.trees {
		n += len(t.nodes)
	}
	return n
}

// ScratchLen returns the scratch length PredictInto requires.
func (c *Compiled) ScratchLen() int { return 2 * c.numClasses }

// Predict is the allocating convenience form of PredictInto, used by
// tests and cold paths.
func (c *Compiled) Predict(x []float64) ml.Prediction {
	dst := make(ml.Prediction, c.numClasses)
	scratch := make([]float64, c.ScratchLen())
	c.PredictInto(dst, scratch, x)
	return dst
}

// PredictInto evaluates the compiled model on x, writing the per-class
// votes into dst (length NumClasses). scratch is caller-owned working
// space of at least ScratchLen() — both buffers are reused across
// calls, which is what keeps the serving classify path at 0 allocs/op.
// The votes are bit-for-bit identical to the source model's Predict at
// the epoch the snapshot was compiled.
//
//redvet:noalloc gate=CompiledClassify
func (c *Compiled) PredictInto(dst, scratch, x []float64) {
	if c.slrStride > 0 {
		c.predictSLR(dst, x)
		return
	}
	if !c.ensemble {
		// Single tree: the leaf votes are the prediction, verbatim.
		c.trees[0].predictInto(dst, scratch, x)
		return
	}
	votes := scratch[:c.numClasses]
	logv := scratch[c.numClasses : 2*c.numClasses]
	for cl := range dst {
		dst[cl] = 0
	}
	for t := range c.trees {
		c.trees[t].predictInto(votes, logv, x)
		// Mirror ml.Prediction.Normalize: zero-sum votes stay raw.
		sum := 0.0
		for cl := range votes {
			sum += votes[cl]
		}
		if sum > 0 {
			for cl := range votes {
				votes[cl] /= sum
			}
		}
		w := c.weights[t]
		for cl := range dst {
			dst[cl] += w * votes[cl]
		}
	}
}

// predictInto routes x to its leaf and writes the leaf votes into
// votes; logv is scratch for the naive-Bayes log-space accumulation.
//
//redvet:noalloc gate=CompiledClassify
func (ct *compiledTree) predictInto(votes, logv, x []float64) {
	i := int32(0)
	for {
		nd := ct.nodes[i]
		if nd.feature >= 0 {
			if int(nd.feature) < len(x) && x[nd.feature] <= nd.threshold {
				i = nd.left
			} else {
				i = nd.right
			}
			continue
		}
		if nd.right < 0 {
			// Majority-class leaf: raw class-count copy.
			base := int(nd.left)
			for c := range votes {
				votes[c] = ct.dist[base+c]
			}
			return
		}
		ct.naiveBayesInto(votes, logv, x, int(nd.left), int(nd.right))
		return
	}
}

// naiveBayesInto replays HoeffdingTree.naiveBayesVotes against the
// precomputed arena records: per class, the log prior plus each valid
// (feature, class) Gaussian log-likelihood in ascending feature order,
// then a max-shifted exp — the identical operation sequence, so the
// result is bit-for-bit the live path's.
//
//redvet:noalloc gate=CompiledClassify
func (ct *compiledTree) naiveBayesInto(votes, logv, x []float64, lpOff, nbOff int) {
	nFeat := int(ct.nb[nbOff])
	stride := 1 + 4*len(votes)
	maxLog := math.Inf(-1)
	for c := range votes {
		lp := ct.dist[lpOff+c]
		if math.IsInf(lp, -1) {
			logv[c] = lp
			continue
		}
		lv := lp
		off := nbOff + 1
		for f := 0; f < nFeat; f++ {
			feat := int(ct.nb[off])
			rec := off + 1 + 4*c
			off += stride
			if feat >= len(x) || ct.nb[rec] == 0 {
				continue
			}
			std := ct.nb[rec+2]
			z := (x[feat] - ct.nb[rec+1]) / std
			lv += -0.5*z*z - ct.nb[rec+3]
		}
		logv[c] = lv
		if lv > maxLog {
			maxLog = lv
		}
	}
	for c := range votes {
		lv := logv[c]
		if math.IsInf(lv, -1) {
			votes[c] = 0
			continue
		}
		votes[c] = math.Exp(lv - maxLog)
	}
}

// predictSLR replays softmaxMargins over the flat weight vector.
//
//redvet:noalloc gate=CompiledClassify
func (c *Compiled) predictSLR(dst, x []float64) {
	stride := c.slrStride
	maxM := math.Inf(-1)
	for cl := range dst {
		row := cl * stride
		m := c.slrW[row+stride-1]
		n := stride - 1
		if len(x) < n {
			n = len(x)
		}
		for i := 0; i < n; i++ {
			m += c.slrW[row+i] * x[i]
		}
		dst[cl] = m
		if m > maxM {
			maxM = m
		}
	}
	sum := 0.0
	for cl := range dst {
		dst[cl] = math.Exp(dst[cl] - maxM)
		sum += dst[cl]
	}
	for cl := range dst {
		dst[cl] /= sum
	}
}

// --- compilation ---

// compileTree flattens one live Hoeffding tree.
func compileTree(t *HoeffdingTree) *compiledTree {
	ct := &compiledTree{src: t, srcEpoch: t.epoch}
	ct.addNode(t, t.root)
	return ct
}

// addNode appends n (and, for internal nodes, its subtree) to the node
// array and returns its index.
func (ct *compiledTree) addNode(t *HoeffdingTree, n *htNode) int32 {
	idx := int32(len(ct.nodes))
	ct.nodes = append(ct.nodes, cnode{})
	if n.isLeaf() {
		ct.nodes[idx] = ct.compileLeaf(t, n.stats)
		return idx
	}
	ct.nodes[idx].feature = int32(n.feature)
	ct.nodes[idx].threshold = n.threshold
	l := ct.addNode(t, n.left)
	r := ct.addNode(t, n.right)
	ct.nodes[idx].left = l
	ct.nodes[idx].right = r
	return idx
}

// compileLeaf freezes one leaf's prediction. The NaiveBayesAdaptive
// choice (nbCorrect > mcCorrect) is resolved here: it only changes
// under training, which bumps the epoch and re-flattens the tree. A
// naive-Bayes leaf that has seen no weight votes all-zero, exactly what
// copying its zero class counts yields, so it compiles as majority-class.
func (ct *compiledTree) compileLeaf(t *HoeffdingTree, s *leafStats) cnode {
	nb := t.cfg.LeafPrediction == NaiveBayes ||
		(t.cfg.LeafPrediction == NaiveBayesAdaptive && s.nbCorrect > s.mcCorrect)
	total := sum(s.classCounts)
	if !nb || total == 0 {
		off := int32(len(ct.dist))
		ct.dist = append(ct.dist, s.classCounts...)
		return cnode{feature: -1, left: off, right: -1}
	}
	lpOff := int32(len(ct.dist))
	for _, cnt := range s.classCounts {
		if cnt == 0 {
			ct.dist = append(ct.dist, math.Inf(-1))
		} else {
			ct.dist = append(ct.dist, math.Log(cnt/total))
		}
	}
	nbOff := int32(len(ct.nb))
	nFeat := 0
	for _, obs := range s.observers {
		if obs != nil {
			nFeat++
		}
	}
	ct.nb = append(ct.nb, float64(nFeat))
	for f, obs := range s.observers {
		if obs == nil {
			continue
		}
		ct.nb = append(ct.nb, float64(f))
		for c := 0; c < len(s.classCounts); c++ {
			w := obs.PerClass[c]
			if w.N < 2 {
				ct.nb = append(ct.nb, 0, 0, 0, 0)
				continue
			}
			std := w.Std()
			if std < 1e-9 {
				std = 1e-9
			}
			ct.nb = append(ct.nb, 1, w.Mean, std, math.Log(std))
		}
	}
	return cnode{feature: -1, left: lpOff, right: nbOff}
}

// Epoch implements Compilable.
func (t *HoeffdingTree) Epoch() uint64 { return t.epoch }

// CompileSnapshot implements Compilable.
func (t *HoeffdingTree) CompileSnapshot(prev *Compiled) *Compiled {
	if prev != nil && prev.src == any(t) && prev.epoch == t.epoch {
		return prev
	}
	return &Compiled{
		src:        t,
		epoch:      t.epoch,
		numClasses: t.cfg.NumClasses,
		rebuilt:    1,
		trees:      []*compiledTree{compileTree(t)},
	}
}

// Epoch implements Compilable.
func (s *SLR) Epoch() uint64 { return s.epoch }

// CompileSnapshot implements Compilable. SLR has no incremental
// structure — the flat copy is O(weights) and always rebuilt.
func (s *SLR) CompileSnapshot(prev *Compiled) *Compiled {
	if prev != nil && prev.src == any(s) && prev.epoch == s.epoch {
		return prev
	}
	stride := 0
	if len(s.w) > 0 {
		stride = len(s.w[0])
	}
	flat := make([]float64, 0, len(s.w)*stride)
	for _, row := range s.w {
		flat = append(flat, row...)
	}
	return &Compiled{
		src:        s,
		epoch:      s.epoch,
		numClasses: s.cfg.NumClasses,
		rebuilt:    1,
		slrW:       flat,
		slrStride:  stride,
	}
}

// Epoch implements Compilable.
func (f *AdaptiveRandomForest) Epoch() uint64 { return f.epoch }

// CompileSnapshot implements Compilable. Member vote weights are
// recomputed every rebuild (O(members)); a member tree is re-flattened
// only when its (pointer, epoch) reuse key changed since prev — members
// whose bagging weight drew zero, and the unchanged majority after a
// drift replacement, are reused as-is.
func (f *AdaptiveRandomForest) CompileSnapshot(prev *Compiled) *Compiled {
	if prev != nil && prev.src == any(f) && prev.epoch == f.epoch {
		return prev
	}
	c := &Compiled{
		src:        f,
		epoch:      f.epoch,
		numClasses: f.cfg.NumClasses,
		ensemble:   true,
		trees:      make([]*compiledTree, len(f.members)),
		weights:    make([]float64, len(f.members)),
	}
	for i, m := range f.members {
		c.weights[i] = m.weight()
		if prev != nil && i < len(prev.trees) && prev.trees[i] != nil &&
			prev.trees[i].src == m.tree && prev.trees[i].srcEpoch == m.tree.epoch {
			c.trees[i] = prev.trees[i]
			continue
		}
		c.trees[i] = compileTree(m.tree)
		c.rebuilt++
	}
	return c
}

// Interface conformance checks.
var (
	_ Compilable = (*HoeffdingTree)(nil)
	_ Compilable = (*SLR)(nil)
	_ Compilable = (*AdaptiveRandomForest)(nil)
)
