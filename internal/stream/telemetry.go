package stream

// DriftStats is drift-detector telemetry reported by adaptive models. The
// serving layer and the cluster driver surface it on /v1/stats and
// engine.Stats, which is why the fields carry JSON tags.
type DriftStats struct {
	// Warnings counts background trees started after a warning signal.
	Warnings int64 `json:"warnings"`
	// Drifts counts drift-detector signals.
	Drifts int64 `json:"drifts"`
	// TreeReplacements counts member trees swapped out after a drift.
	TreeReplacements int64 `json:"tree_replacements"`
	// Members breaks the counters down per ensemble slot.
	Members []MemberDriftStats `json:"members,omitempty"`
}

// MemberDriftStats is one ensemble member's drift telemetry.
type MemberDriftStats struct {
	Member           int   `json:"member"`
	Warnings         int64 `json:"warnings"`
	Drifts           int64 `json:"drifts"`
	TreeReplacements int64 `json:"tree_replacements"`
	// BackgroundActive reports whether a background tree is currently
	// warming up to replace this member.
	BackgroundActive bool `json:"background_active"`
}

// DriftReporter is implemented by models that monitor concept drift.
type DriftReporter interface {
	DriftStats() DriftStats
}

var _ DriftReporter = (*AdaptiveRandomForest)(nil)
