package stream

import (
	"math"
	"testing"

	"redhanded/internal/ml"
)

func TestSLRLearnsLinearlySeparable(t *testing.T) {
	data := gaussianStream(8000, 2, 4, 3, 1)
	slr := NewSLR(SLRConfig{NumClasses: 2, NumFeatures: 4})
	acc := prequentialAccuracy(slr, data)
	if acc < 0.9 {
		t.Fatalf("SLR accuracy = %v, want >= 0.9", acc)
	}
}

func TestSLRMultiClass(t *testing.T) {
	data := gaussianStream(12000, 3, 4, 4, 2)
	slr := NewSLR(SLRConfig{NumClasses: 3, NumFeatures: 4})
	acc := prequentialAccuracy(slr, data)
	if acc < 0.8 {
		t.Fatalf("3-class SLR accuracy = %v, want >= 0.8", acc)
	}
}

func TestSLRRegularizersShrinkWeights(t *testing.T) {
	norms := map[Regularizer]float64{}
	for _, reg := range []Regularizer{RegZero, RegL1, RegL2} {
		slr := NewSLR(SLRConfig{NumClasses: 2, NumFeatures: 4, Regularizer: reg, RegLambda: 0.05})
		for _, in := range gaussianStream(5000, 2, 4, 3, 3) {
			slr.Train(in)
		}
		total := 0.0
		for _, row := range slr.w {
			for _, v := range row[:len(row)-1] {
				total += math.Abs(v)
			}
		}
		norms[reg] = total
	}
	if norms[RegL2] >= norms[RegZero] {
		t.Fatalf("L2 weights (%v) should be smaller than unregularized (%v)", norms[RegL2], norms[RegZero])
	}
	if norms[RegL1] >= norms[RegZero] {
		t.Fatalf("L1 weights (%v) should be smaller than unregularized (%v)", norms[RegL1], norms[RegZero])
	}
}

func TestSLRIgnoresInvalid(t *testing.T) {
	slr := NewSLR(SLRConfig{NumClasses: 2, NumFeatures: 2})
	slr.Train(ml.Instance{X: []float64{1, 1}, Label: ml.Unlabeled})
	slr.Train(ml.Instance{X: []float64{math.Inf(1), 0}, Label: 0})
	if slr.TrainCount() != 0 {
		t.Fatalf("invalid instances trained: %d", slr.TrainCount())
	}
}

func TestSLRPredictShape(t *testing.T) {
	slr := NewSLR(SLRConfig{NumClasses: 3, NumFeatures: 2})
	votes := slr.Predict([]float64{0, 0})
	if len(votes) != 3 {
		t.Fatalf("votes len = %d, want 3", len(votes))
	}
	for _, v := range votes {
		if v < 0 || v > 1 {
			t.Fatalf("sigmoid vote out of [0,1]: %v", v)
		}
	}
}

func TestSLRConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("1-class SLR did not panic")
		}
	}()
	NewSLR(SLRConfig{NumClasses: 1, NumFeatures: 1})
}

func TestSLRRegularizerString(t *testing.T) {
	if RegZero.String() != "Zero" || RegL1.String() != "L1" || RegL2.String() != "L2" {
		t.Fatalf("regularizer names wrong")
	}
}

func TestSigmoid(t *testing.T) {
	if s := sigmoid(0); math.Abs(s-0.5) > 1e-12 {
		t.Fatalf("sigmoid(0) = %v", s)
	}
	if s := sigmoid(100); s != 1 {
		t.Fatalf("sigmoid(100) = %v, want 1 (overflow guard)", s)
	}
	if s := sigmoid(-100); s != 0 {
		t.Fatalf("sigmoid(-100) = %v, want 0 (overflow guard)", s)
	}
}
