package stream

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"redhanded/internal/ml"
)

// assertVotesIdentical fails unless got and want are bit-for-bit equal
// (including NaN patterns, which Float64bits makes visible).
func assertVotesIdentical(t *testing.T, tag string, got, want ml.Prediction) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: vote length %d, want %d", tag, len(got), len(want))
	}
	for c := range got {
		if math.Float64bits(got[c]) != math.Float64bits(want[c]) {
			t.Fatalf("%s: class %d vote %v (bits %x), live path %v (bits %x)",
				tag, c, got[c], math.Float64bits(got[c]), want[c], math.Float64bits(want[c]))
		}
	}
}

// checkCompiledEquivalence trains the model over data, recompiling every
// interval instances and comparing compiled votes bit-for-bit against
// the live Predict on every probe.
func checkCompiledEquivalence(t *testing.T, tag string, model interface {
	ml.StreamClassifier
	Compilable
}, data, probes []ml.Instance, interval int) {
	t.Helper()
	var snap *Compiled
	check := func(step int) {
		snap = model.CompileSnapshot(snap)
		if snap.Epoch() != model.Epoch() {
			t.Fatalf("%s step %d: snapshot epoch %d, model epoch %d", tag, step, snap.Epoch(), model.Epoch())
		}
		dst := make(ml.Prediction, snap.NumClasses())
		scratch := make([]float64, snap.ScratchLen())
		for i, p := range probes {
			snap.PredictInto(dst, scratch, p.X)
			live := model.Predict(p.X)
			assertVotesIdentical(t, tagStep(t, tag, step, i), dst, live)
		}
	}
	check(0)
	for i, in := range data {
		model.Train(in)
		if (i+1)%interval == 0 {
			check(i + 1)
		}
	}
	check(len(data))
}

func tagStep(t *testing.T, tag string, step, probe int) string {
	t.Helper()
	return tag + "/" + itoa(step) + "/probe" + itoa(probe)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func TestCompiledMatchesLiveHT(t *testing.T) {
	for _, tc := range []struct {
		name string
		leaf LeafPrediction
	}{
		{"majority-class", MajorityClass},
		{"naive-bayes", NaiveBayes},
		{"naive-bayes-adaptive", NaiveBayesAdaptive},
	} {
		t.Run(tc.name, func(t *testing.T) {
			data := gaussianStream(3000, 3, 8, 1.5, 7)
			probes := gaussianStream(200, 3, 8, 1.5, 8)
			ht := NewHoeffdingTree(HTConfig{NumClasses: 3, NumFeatures: 8, LeafPrediction: tc.leaf})
			checkCompiledEquivalence(t, "ht/"+tc.name, ht, data, probes, 500)
			if ht.splitCount == 0 {
				t.Fatalf("tree never split; the test only exercised the root leaf")
			}
		})
	}
}

func TestCompiledMatchesLiveSLR(t *testing.T) {
	data := gaussianStream(2000, 3, 8, 1.5, 9)
	probes := gaussianStream(200, 3, 8, 1.5, 10)
	slr := NewSLR(SLRConfig{NumClasses: 3, NumFeatures: 8})
	checkCompiledEquivalence(t, "slr", slr, data, probes, 400)
}

func TestCompiledMatchesLiveARF(t *testing.T) {
	// Two segments with flipped class geometry so drift detectors fire
	// and member trees get replaced mid-stream; the compiled snapshot
	// must track through warnings, background promotion, and resets.
	seg1 := gaussianStream(2500, 3, 8, 2.5, 11)
	seg2 := gaussianStream(2500, 3, 8, 2.5, 12)
	for i := range seg2 {
		seg2[i].Label = (seg2[i].Label + 1) % 3
	}
	data := append(append([]ml.Instance(nil), seg1...), seg2...)
	probes := gaussianStream(100, 3, 8, 2.5, 13)

	f := NewAdaptiveRandomForest(ARFConfig{
		NumClasses: 3, NumFeatures: 8, EnsembleSize: 5, Seed: 3,
		Tree: HTConfig{LeafPrediction: NaiveBayesAdaptive},
	})
	checkCompiledEquivalence(t, "arf", f, data, probes, 500)
	if f.DriftStats().TreeReplacements == 0 {
		t.Fatalf("no member trees were replaced; the drift path went unexercised")
	}
}

func TestCompiledSerializeRoundTripInvalidates(t *testing.T) {
	data := gaussianStream(1500, 3, 6, 1.5, 21)
	f := NewAdaptiveRandomForest(ARFConfig{NumClasses: 3, NumFeatures: 6, EnsembleSize: 3, Seed: 5})
	for _, in := range data {
		f.Train(in)
	}
	snap := f.CompileSnapshot(nil)
	blob, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if f.Epoch() == snap.Epoch() {
		t.Fatalf("UnmarshalBinary did not bump the epoch; stale snapshots would survive a restore")
	}
	next := f.CompileSnapshot(snap)
	if next == snap {
		t.Fatalf("CompileSnapshot reused a snapshot across a full restore")
	}
	probe := data[0].X
	assertVotesIdentical(t, "restored", next.Predict(probe), f.Predict(probe))
}

// TestCompiledIncrementalRebuild pins the O(changed trees) property: a
// snapshot rebuild re-flattens exactly the member trees whose epoch
// moved, reuses the rest by pointer, and a no-op rebuild returns the
// previous snapshot itself.
func TestCompiledIncrementalRebuild(t *testing.T) {
	data := gaussianStream(1200, 3, 8, 1.5, 31)
	// Lambda 1 makes Poisson zero-draws common (P ≈ 0.37 per member), so
	// a single train step leaves several member trees untouched and the
	// pointer-reuse path is actually exercised.
	f := NewAdaptiveRandomForest(ARFConfig{NumClasses: 3, NumFeatures: 8, EnsembleSize: 8, Seed: 9, Lambda: 1})
	for _, in := range data[:1000] {
		f.Train(in)
	}
	snap := f.CompileSnapshot(nil)
	if snap.Rebuilt() != f.EnsembleSize() {
		t.Fatalf("initial compile rebuilt %d trees, want all %d", snap.Rebuilt(), f.EnsembleSize())
	}
	if again := f.CompileSnapshot(snap); again != snap {
		t.Fatalf("no-op CompileSnapshot built a new snapshot instead of returning prev")
	}

	for _, in := range data[1000:1001] {
		type key struct {
			tree  *HoeffdingTree
			epoch uint64
		}
		before := make([]key, len(f.members))
		for i, m := range f.members {
			before[i] = key{m.tree, m.tree.epoch}
		}
		f.Train(in)
		changed := 0
		for i, m := range f.members {
			if before[i].tree != m.tree || before[i].epoch != m.tree.epoch {
				changed++
			}
		}
		next := f.CompileSnapshot(snap)
		if next.Rebuilt() != changed {
			t.Fatalf("rebuild re-flattened %d trees; exactly %d member trees changed", next.Rebuilt(), changed)
		}
		if changed == f.EnsembleSize() {
			t.Fatalf("every bagging weight was nonzero; the reuse path went unexercised (pick another seed)")
		}
		reused := 0
		for i := range next.trees {
			if next.trees[i] == snap.trees[i] {
				reused++
			}
		}
		if reused != f.EnsembleSize()-changed {
			t.Fatalf("%d member trees reused by pointer, want %d", reused, f.EnsembleSize()-changed)
		}
		snap = next
	}
}

// publishedPair is what the writer goroutine hands to readers: a
// snapshot plus the votes it produced for a probe at publication time.
// Readers re-evaluate the same probe on the same snapshot — any
// divergence means a published snapshot was mutated after publication
// (e.g. exposed a half-replaced ensemble member).
type publishedPair struct {
	snap  *Compiled
	probe []float64
	votes ml.Prediction
}

// TestCompiledSnapshotImmutableUnderConcurrentTraining races lock-free
// readers against a writer driving the forest through drift-induced
// tree replacements. Run under -race this also proves PredictInto
// touches no memory the writer mutates.
func TestCompiledSnapshotImmutableUnderConcurrentTraining(t *testing.T) {
	seg1 := gaussianStream(2000, 3, 8, 2.5, 41)
	seg2 := gaussianStream(2000, 3, 8, 2.5, 42)
	for i := range seg2 {
		seg2[i].Label = (seg2[i].Label + 1) % 3
	}
	data := append(append([]ml.Instance(nil), seg1...), seg2...)
	probes := gaussianStream(32, 3, 8, 2.5, 43)

	f := NewAdaptiveRandomForest(ARFConfig{
		NumClasses: 3, NumFeatures: 8, EnsembleSize: 5, Seed: 3,
		Tree: HTConfig{LeafPrediction: NaiveBayesAdaptive},
	})

	var published atomic.Pointer[publishedPair]
	var stop atomic.Bool
	var readersFailed atomic.Int64
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var dst ml.Prediction
			var scratch []float64
			for !stop.Load() {
				p := published.Load()
				if p == nil {
					continue
				}
				if cap(dst) < p.snap.NumClasses() {
					dst = make(ml.Prediction, p.snap.NumClasses())
					scratch = make([]float64, p.snap.ScratchLen())
				}
				p.snap.PredictInto(dst[:p.snap.NumClasses()], scratch, p.probe)
				for c := range p.votes {
					if math.Float64bits(dst[c]) != math.Float64bits(p.votes[c]) {
						readersFailed.Add(1)
						return
					}
				}
			}
		}()
	}

	var snap *Compiled
	for i, in := range data {
		f.Train(in)
		if i%7 == 0 {
			snap = f.CompileSnapshot(snap)
			probe := probes[(i/7)%len(probes)].X
			published.Store(&publishedPair{snap: snap, probe: probe, votes: snap.Predict(probe)})
		}
	}
	stop.Store(true)
	wg.Wait()
	if n := readersFailed.Load(); n != 0 {
		t.Fatalf("%d readers observed a published snapshot changing its votes", n)
	}
	if f.DriftStats().TreeReplacements == 0 {
		t.Fatalf("no drift replacements happened; the half-replaced-member hazard went unexercised")
	}
}

func BenchmarkCompiledPredict(b *testing.B) {
	data := gaussianStream(3000, 3, 16, 1.5, 51)
	f := NewAdaptiveRandomForest(ARFConfig{NumClasses: 3, NumFeatures: 16, EnsembleSize: 10, Seed: 1})
	for _, in := range data {
		f.Train(in)
	}
	snap := f.CompileSnapshot(nil)
	dst := make([]float64, snap.NumClasses())
	scratch := make([]float64, snap.ScratchLen())
	b.Run("live", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f.Predict(data[i%len(data)].X)
		}
	})
	b.Run("compiled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			snap.PredictInto(dst, scratch, data[i%len(data)].X)
		}
	})
}
