package stream

import (
	"math"
	"testing"
	"testing/quick"

	"redhanded/internal/ml"
)

func TestGaussianObserverMergeEqualsSequential(t *testing.T) {
	f := func(a, b []float64, classesRaw []uint8) bool {
		clean := func(in []float64) []float64 {
			out := make([]float64, 0, len(in))
			for _, v := range in {
				if !math.IsNaN(v) && !math.IsInf(v, 0) {
					out = append(out, math.Mod(v, 1e6))
				}
			}
			return out
		}
		a, b = clean(a), clean(b)
		classOf := func(i int) int {
			if len(classesRaw) == 0 {
				return i % 2
			}
			return int(classesRaw[i%len(classesRaw)]) % 2
		}
		o1 := newGaussianObserver(2)
		o2 := newGaussianObserver(2)
		all := newGaussianObserver(2)
		for i, v := range a {
			o1.observe(v, classOf(i), 1)
			all.observe(v, classOf(i), 1)
		}
		for i, v := range b {
			o2.observe(v, classOf(len(a)+i), 1)
			all.observe(v, classOf(len(a)+i), 1)
		}
		o1.merge(o2)
		for c := 0; c < 2; c++ {
			if o1.PerClass[c].N != all.PerClass[c].N {
				return false
			}
			if all.PerClass[c].N > 0 {
				scale := math.Max(1, math.Abs(all.PerClass[c].Mean))
				if math.Abs(o1.PerClass[c].Mean-all.PerClass[c].Mean)/scale > 1e-9 {
					return false
				}
			}
		}
		return o1.Range.N == all.Range.N &&
			(all.Range.N == 0 || (o1.Range.Min == all.Range.Min && o1.Range.Max == all.Range.Max))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGaussianObserverBestSplitSeparatesClasses(t *testing.T) {
	obs := newGaussianObserver(2)
	rng := ml.NewRNG(1)
	// Class 0 around 0, class 1 around 10.
	for i := 0; i < 2000; i++ {
		obs.observe(rng.NormFloat64(), 0, 1)
		obs.observe(10+rng.NormFloat64(), 1, 1)
	}
	pre := []float64{2000, 2000}
	cand := obs.bestSplit(InfoGain, pre, 0, 10)
	if !cand.Valid {
		t.Fatalf("no candidate found")
	}
	if cand.Threshold < 2 || cand.Threshold > 8 {
		t.Fatalf("threshold %v not between the classes", cand.Threshold)
	}
	if cand.Merit < 0.8 {
		t.Fatalf("merit %v too low for a near-perfect split", cand.Merit)
	}
}

func TestGaussianObserverBestSplitDegenerate(t *testing.T) {
	obs := newGaussianObserver(2)
	// Constant feature: no split possible.
	for i := 0; i < 100; i++ {
		obs.observe(5, i%2, 1)
	}
	cand := obs.bestSplit(InfoGain, []float64{50, 50}, 0, 10)
	if cand.Valid {
		t.Fatalf("constant feature produced a split: %+v", cand)
	}
	empty := newGaussianObserver(2)
	if cand := empty.bestSplit(Gini, []float64{0, 0}, 0, 10); cand.Valid {
		t.Fatalf("empty observer produced a split")
	}
}

func TestGaussianObserverWeightedObserve(t *testing.T) {
	a := newGaussianObserver(2)
	b := newGaussianObserver(2)
	a.observe(3, 1, 4)
	for i := 0; i < 4; i++ {
		b.observe(3, 1, 1)
	}
	if a.PerClass[1].N != b.PerClass[1].N || a.PerClass[1].Mean != b.PerClass[1].Mean {
		t.Fatalf("weighted observe != repeated observe")
	}
}

func TestGaussianCDF(t *testing.T) {
	if v := gaussianCDF(0, 0, 1); math.Abs(v-0.5) > 1e-12 {
		t.Fatalf("CDF(0;0,1) = %v", v)
	}
	if v := gaussianCDF(10, 0, 1); v < 0.999 {
		t.Fatalf("CDF(10;0,1) = %v", v)
	}
	// Zero std: step function at the mean.
	if gaussianCDF(1, 2, 0) != 0 || gaussianCDF(3, 2, 0) != 1 {
		t.Fatalf("degenerate CDF wrong")
	}
}
