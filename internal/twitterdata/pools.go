package twitterdata

// Word pools used by the synthetic tweet generators. The pools are chosen
// to interact correctly with the feature-extraction substrate: neutral
// adjectives/adverbs/verbs come from vocabularies the POS tagger resolves
// to those categories, insult vocabulary carries negative strengths in the
// sentiment lexicon, and swear words come from the profanity seed list.

// neutralNouns fill out sentence bodies; the tagger defaults unknown open
// class words to nouns.
var neutralNouns = []string{
	"weather", "coffee", "morning", "game", "music", "movie", "book",
	"road", "city", "team", "dinner", "photo", "garden", "train",
	"market", "office", "school", "phone", "meeting", "project",
	"report", "kitchen", "window", "river", "mountain", "bridge",
	"street", "weekend", "holiday", "ticket", "match", "recipe",
	"camera", "laptop", "journey", "station", "airport", "museum",
	"library", "concert", "breakfast", "lunch", "evening", "night",
	"friend", "family", "neighbor", "teacher", "student", "doctor",
	"driver", "singer", "writer", "player", "coach", "crowd",
	"season", "summer", "winter", "spring", "autumn", "rain",
	"snow", "sun", "moon", "star", "cloud", "wind",
	"house", "garden", "door", "table", "chair", "plate",
	"glass", "bottle", "bag", "shoe", "shirt", "jacket",
}

// neutralVerbs come from the tagger's common-verb lexicon.
var neutralVerbs = []string{
	"go", "get", "make", "know", "think", "take", "see", "come",
	"want", "look", "use", "find", "give", "tell", "work", "call",
	"try", "ask", "need", "feel", "leave", "put", "keep", "let",
	"begin", "help", "talk", "turn", "start", "show", "hear", "play",
	"run", "move", "live", "believe", "bring", "happen", "write",
	"sit", "stand", "pay", "meet", "learn", "change", "watch",
	"follow", "stop", "speak", "read", "spend", "grow", "open",
	"walk", "win", "offer", "remember", "buy", "wait", "serve",
	"send", "build", "stay", "fall", "cut", "reach",
}

// neutralAdjectives come from the tagger's adjective lexicon but avoid
// sentiment-bearing terms so they do not skew the sentiment scores.
var neutralAdjectives = []string{
	"small", "large", "big", "little", "old", "new", "young", "long",
	"short", "high", "low", "early", "late", "open", "red", "blue",
	"green", "white", "black", "warm", "cold", "hot", "cool", "dark",
	"bright", "quiet", "loud", "full", "whole", "clear", "recent",
	"certain", "personal", "public", "special", "free", "real",
}

// neutralAdverbs come from the tagger's adverb lexicon, avoiding sentiment
// boosters such as "very" or "really" which would inflate scores.
var neutralAdverbs = []string{
	"often", "sometimes", "usually", "rarely", "already", "soon",
	"today", "tomorrow", "yesterday", "finally", "suddenly", "quickly",
	"slowly", "again", "once", "twice", "together", "instead",
	"anyway", "everywhere", "somewhere", "nearly", "almost",
}

// stopWords glue sentences together.
var stopWords = []string{
	"the", "a", "an", "this", "that", "my", "your", "his", "her",
	"our", "their", "some", "any", "i", "you", "he", "she", "we",
	"they", "it", "and", "but", "or", "so", "because", "when",
	"while", "if", "in", "on", "at", "with", "about", "for", "to",
	"from", "of", "is", "are", "was", "were", "be", "been", "have",
	"has", "had", "will", "would", "can", "could", "do", "does",
}

// insultNouns are sentiment-lexicon negatives that tag as nouns; abusive
// tweets attack directly with these rather than with adjectives (the paper
// observes fewer adjectives in abusive posts).
var insultNouns = []string{
	"idiot", "moron", "loser", "scum", "trash", "garbage", "fool",
	"creep", "liar", "freak", "psycho", "maniac", "bully", "cheater",
	"fraud", "disgrace", "bigot", "terrorist", "murderer",
}

// insultVerbs are strongly negative verbs from the sentiment lexicon.
var insultVerbs = []string{
	"hate", "despise", "loathe", "destroy", "kill", "threaten",
	"attack", "die", "insult", "abuse",
}

// negativeAdjectives are sentiment-bearing adjectives used sparingly (more
// by hateful than abusive tweets, which favor direct noun/verb attacks).
var negativeAdjectives = []string{
	"pathetic", "worthless", "useless", "stupid", "dumb", "ugly",
	"nasty", "vile", "disgusting", "horrible", "terrible", "awful",
	"toxic", "miserable", "violent", "corrupt", "evil", "cruel",
}

// positiveWords seed positive sentiment in (mostly normal) tweets.
var positiveWords = []string{
	"love", "great", "wonderful", "amazing", "happy", "nice", "sweet",
	"lovely", "fun", "glad", "thanks", "excellent", "beautiful",
	"awesome", "fantastic", "brilliant", "enjoy", "proud", "friendly",
	"cheerful", "gorgeous", "perfect",
}

// mildNegatives give normal tweets their occasional low-strength negative
// sentiment (complaints, bad days) without abusive vocabulary.
var mildNegatives = []string{
	"sad", "tired", "bored", "worried", "annoying", "boring", "sorry",
	"upset", "unhappy", "lost", "broken", "pain", "problem", "mess",
}

// targetGroups are generic group placeholders hateful tweets direct their
// attacks at (synthetic identifiers, not real group names, so the corpus
// stays clearly synthetic while exercising the same code paths).
var targetGroups = []string{
	"grobari", "vennish", "korduns", "mivelan", "sarkath", "pellits",
	"drovani", "quorith", "zembles", "fyrmen",
}

// hashtagPool provides hashtag suffixes.
var hashtagPool = []string{
	"news", "sports", "mondaymood", "live", "nowplaying", "travel",
	"foodie", "gameday", "music", "trending", "funny", "photo",
	"weekend", "fitness", "tech", "politics", "weather", "art",
}
