package twitterdata

import (
	"strings"
	"testing"

	"redhanded/internal/text/lexicon"
)

// countSwears tallies lexicon swear words in a tweet text (lowercased,
// rough tokenization — plenty for a distribution-shift assertion).
func countSwears(text string) int {
	n := 0
	for _, w := range strings.Fields(strings.ToLower(text)) {
		w = strings.Trim(w, ".,!?#@:")
		if lexicon.IsSwearLower([]byte(w)) {
			n++
		}
	}
	return n
}

func TestGenerateAggressionShiftSwapsClassProfiles(t *testing.T) {
	cfg := AggressionConfig{
		Seed: 9, Days: 10,
		NormalCount: 3000, AbusiveCount: 1500, HatefulCount: 300,
		ShiftAt: 2400,
	}
	data := GenerateAggression(cfg)
	if len(data) != 4800 {
		t.Fatalf("generated %d tweets, want 4800", len(data))
	}

	mean := func(lo, hi int, label string) float64 {
		var sum, n float64
		for _, tw := range data[lo:hi] {
			if tw.Label == label {
				sum += float64(countSwears(tw.Text))
				n++
			}
		}
		if n == 0 {
			t.Fatalf("no %s tweets in [%d,%d)", label, lo, hi)
		}
		return sum / n
	}

	preAbusive := mean(0, cfg.ShiftAt, LabelAbusive)
	postAbusive := mean(cfg.ShiftAt, len(data), LabelAbusive)
	preNormal := mean(0, cfg.ShiftAt, LabelNormal)
	postNormal := mean(cfg.ShiftAt, len(data), LabelNormal)

	// The swap moves the swear mass between the classes: abusive tweets
	// shed explicit swears (evasion), normal traffic picks them up.
	if postAbusive >= preAbusive/2 {
		t.Errorf("abusive swear mean did not collapse: pre %.2f, post %.2f", preAbusive, postAbusive)
	}
	if postNormal <= preNormal*2 {
		t.Errorf("normal swear mean did not jump: pre %.2f, post %.2f", preNormal, postNormal)
	}

	// Labels stay with the classes, and the shift leaves counts intact.
	if data[cfg.ShiftAt].Label == "" {
		t.Error("shifted tweets lost their labels")
	}
}

func TestGenerateAggressionNoShiftByDefault(t *testing.T) {
	a := GenerateAggression(AggressionConfig{Seed: 9, Days: 2, NormalCount: 50, AbusiveCount: 20, HatefulCount: 5})
	b := GenerateAggression(AggressionConfig{Seed: 9, Days: 2, NormalCount: 50, AbusiveCount: 20, HatefulCount: 5, ShiftAt: 0})
	for i := range a {
		if a[i].Text != b[i].Text || a[i].Label != b[i].Label {
			t.Fatalf("ShiftAt=0 changed generation at %d", i)
		}
	}
}
