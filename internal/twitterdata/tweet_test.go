package twitterdata

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func sampleTweet() Tweet {
	posted := time.Date(2017, 6, 10, 12, 0, 0, 0, time.UTC)
	created := posted.AddDate(0, 0, -100)
	return Tweet{
		IDStr:     "123456",
		Text:      "hello world",
		CreatedAt: posted.Format(TimeLayout),
		User: User{
			IDStr:          "42",
			ScreenName:     "someone",
			CreatedAt:      created.Format(TimeLayout),
			FollowersCount: 10,
			FriendsCount:   20,
			StatusesCount:  30,
			ListedCount:    2,
		},
		Label: LabelNormal,
		Day:   3,
	}
}

func TestTweetJSONRoundTrip(t *testing.T) {
	tw := sampleTweet()
	data, err := tw.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if back != tw {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", back, tw)
	}
}

func TestTweetJSONFieldNames(t *testing.T) {
	tw0 := sampleTweet()
	data, _ := tw0.Marshal()
	for _, field := range []string{`"id_str"`, `"text"`, `"created_at"`, `"screen_name"`, `"followers_count"`, `"statuses_count"`} {
		if !bytes.Contains(data, []byte(field)) {
			t.Errorf("JSON misses Twitter API field %s: %s", field, data)
		}
	}
}

func TestUnmarshalMalformed(t *testing.T) {
	if _, err := Unmarshal([]byte("{not json")); err == nil {
		t.Fatalf("malformed JSON accepted")
	}
}

func TestAccountAgeDays(t *testing.T) {
	tw := sampleTweet()
	if age := tw.AccountAgeDays(); age < 99.9 || age > 100.1 {
		t.Fatalf("account age = %v, want ~100", age)
	}
}

func TestAccountAgeMalformed(t *testing.T) {
	tw := sampleTweet()
	tw.User.CreatedAt = "garbage"
	if age := tw.AccountAgeDays(); age != 0 {
		t.Fatalf("malformed creation time should give 0 age, got %v", age)
	}
	tw2 := sampleTweet()
	tw2.CreatedAt = "garbage"
	if age := tw2.AccountAgeDays(); age != 0 {
		t.Fatalf("malformed posted time should give 0 age, got %v", age)
	}
	// Account "created" after posting is inconsistent -> 0.
	tw3 := sampleTweet()
	tw3.User.CreatedAt = time.Date(2030, 1, 1, 0, 0, 0, 0, time.UTC).Format(TimeLayout)
	if age := tw3.AccountAgeDays(); age != 0 {
		t.Fatalf("future account creation should give 0 age, got %v", age)
	}
}

func TestIsLabeled(t *testing.T) {
	tw := sampleTweet()
	if !tw.IsLabeled() {
		t.Fatalf("labeled tweet reported unlabeled")
	}
	tw.Label = ""
	if tw.IsLabeled() {
		t.Fatalf("unlabeled tweet reported labeled")
	}
}

func TestWriterReaderStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	want := []Tweet{sampleTweet(), sampleTweet()}
	want[1].IDStr = "999"
	want[1].Label = ""
	for _, tw := range want {
		if err := w.Write(tw); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(&buf)
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].IDStr != "123456" || got[1].IDStr != "999" {
		t.Fatalf("stream round trip failed: %+v", got)
	}
}

func TestReaderSkipsBlankLines(t *testing.T) {
	tw0 := sampleTweet()
	data, _ := tw0.Marshal()
	input := "\n" + string(data) + "\n\n"
	r := NewReader(strings.NewReader(input))
	got, err := r.ReadAll()
	if err != nil || len(got) != 1 {
		t.Fatalf("blank-line handling failed: %v %v", got, err)
	}
}

func TestReaderMalformedLine(t *testing.T) {
	r := NewReader(strings.NewReader("{bad\n"))
	if _, err := r.Read(); err == nil || err == io.EOF {
		t.Fatalf("malformed line not reported: %v", err)
	}
}

func TestReaderEOF(t *testing.T) {
	r := NewReader(strings.NewReader(""))
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("empty stream error = %v, want EOF", err)
	}
}

func TestJSONRoundTripProperty(t *testing.T) {
	f := func(textRaw string, followers uint16, label uint8) bool {
		tw := sampleTweet()
		tw.Text = textRaw
		tw.User.FollowersCount = int(followers)
		tw.Label = []string{LabelNormal, LabelAbusive, LabelHateful}[int(label)%3]
		data, err := tw.Marshal()
		if err != nil {
			return false
		}
		back, err := Unmarshal(data)
		return err == nil && back == tw
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
