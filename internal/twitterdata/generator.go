package twitterdata

import (
	"fmt"
	"math"
	"strings"
	"time"

	"redhanded/internal/ml"
	"redhanded/internal/text/lexicon"
)

// classProfile holds the class-conditional generation parameters. The
// headline values (account age, uppercase words, words per sentence, swear
// words, sentiment, adjectives) are calibrated to the statistics the paper
// reports in §IV-B and Figure 4.
type classProfile struct {
	label string

	accountAgeMean, accountAgeStd  float64 // days
	postsLogMean, postsLogStd      float64
	listsMean                      float64
	followersLogMean, followersStd float64
	friendsLogMean, friendsStd     float64
	// Uppercase words follow a zero-inflated 1+Poisson(lambda): most
	// tweets shout nothing, shouting tweets shout several words — matching
	// both the means and the heavy tails of Fig. 4b.
	upperZeroProb, upperLambda float64
	wpsMean, wpsStd            float64
	// Aggressive tweets are a mixture: an explicit share carrying swears
	// and strong insults, and a "mild" share with no swears and muted
	// insults (implicit abuse) — matching the zero-swear mass visible in
	// the paper's Fig. 4f while keeping the class mean on target.
	mildProb                        float64
	swearMean                       float64 // class mean; explicit share draws mean/(1-mildProb)
	adjMean, adjStd                 float64
	advMean                         float64
	strongNegMean                   float64
	negAdjProb                      float64
	mildNegProb                     float64
	posMean                         float64
	hashtagMean, urlMean, mentionMn float64
	exclaimProb                     float64
	slangProb                       float64
	rtProb                          float64
	groupProb                       float64
}

// Calibration targets from the paper:
//
//	account age:      1487.74 / 1291.97 / 1379.95 days
//	uppercase words:  0.96 (2.10) / 1.84 (3.27) / 1.57 (2.95)
//	words/sentence:   16.66 / 12.66 / 15.93
//	swear words:      0.10 / 2.54 / 1.84
//	adjectives:       normal > hateful > abusive
//	negative sentiment: abusive & hateful far more negative than normal
var (
	normalProfile = classProfile{
		label:          LabelNormal,
		accountAgeMean: 1487.74, accountAgeStd: 740,
		postsLogMean: 9.3, postsLogStd: 1.1,
		listsMean:        12,
		followersLogMean: 6.6, followersStd: 1.2,
		friendsLogMean: 6.2, friendsStd: 1.1,
		upperZeroProb: 0.60, upperLambda: 1.40, // mean 0.96
		wpsMean: 16.66, wpsStd: 5.5,
		swearMean: 0.10,
		adjMean:   1.7, adjStd: 1.1,
		advMean:       1.0,
		strongNegMean: 0.04,
		negAdjProb:    0.06,
		mildNegProb:   0.25,
		posMean:       0.55,
		hashtagMean:   0.40, urlMean: 0.28, mentionMn: 0.5,
		exclaimProb: 0.12,
		slangProb:   0.08,
		rtProb:      0.15,
	}
	abusiveProfile = classProfile{
		label:          LabelAbusive,
		accountAgeMean: 1291.97, accountAgeStd: 700,
		postsLogMean: 8.95, postsLogStd: 1.1,
		listsMean:        6,
		followersLogMean: 6.1, followersStd: 1.2,
		friendsLogMean: 6.0, friendsStd: 1.1,
		upperZeroProb: 0.45, upperLambda: 2.35, // mean 1.84
		wpsMean: 12.66, wpsStd: 4.5,
		mildProb:  0.35,
		swearMean: 2.54,
		adjMean:   0.8, adjStd: 0.8,
		advMean:       0.6,
		strongNegMean: 1.3,
		negAdjProb:    0.25,
		mildNegProb:   0.10,
		posMean:       0.12,
		hashtagMean:   0.35, urlMean: 0.15, mentionMn: 0.8,
		exclaimProb: 0.45,
		slangProb:   0.50,
		rtProb:      0.10,
	}
	hatefulProfile = classProfile{
		label:          LabelHateful,
		accountAgeMean: 1379.95, accountAgeStd: 720,
		postsLogMean: 9.1, postsLogStd: 1.1,
		listsMean:        8,
		followersLogMean: 6.3, followersStd: 1.2,
		friendsLogMean: 6.1, friendsStd: 1.1,
		upperZeroProb: 0.50, upperLambda: 2.14, // mean 1.57
		wpsMean: 15.93, wpsStd: 5.5,
		mildProb:  0.40,
		swearMean: 1.84,
		adjMean:   1.05, adjStd: 0.95,
		advMean:       0.75,
		strongNegMean: 1.0,
		negAdjProb:    0.45,
		mildNegProb:   0.10,
		posMean:       0.15,
		hashtagMean:   0.50, urlMean: 0.18, mentionMn: 0.7,
		exclaimProb: 0.40,
		slangProb:   0.55,
		rtProb:      0.10,
		groupProb:   0.60,
	}
	profiles = []classProfile{normalProfile, abusiveProfile, hatefulProfile}

	// classLabels maps a class index to its dataset label independently of
	// which profile currently generates the class's surface features — the
	// concept-shift mode swaps profiles between classes while the labels
	// stay with the classes.
	classLabels = []string{LabelNormal, LabelAbusive, LabelHateful}
)

// shiftedProfiles is the post-shift regime: an abrupt concept drift in
// which the class-conditional distributions are exchanged. Aggressors
// adopt the surface statistics of normal accounts (evasion), previously
// benign traffic turns loud and swear-heavy, and hateful content goes
// implicit — almost no classic swears, heavy fresh slang, muted shouting —
// while still targeting groups. A model trained on the original regime is
// systematically wrong afterwards; the new regime remains separable, so an
// adaptive model can relearn it.
var shiftedProfiles = func() []classProfile {
	shiftHateful := hatefulProfile
	shiftHateful.swearMean = 0.1
	shiftHateful.mildProb = 0
	shiftHateful.slangProb = 0.9
	shiftHateful.upperZeroProb = 0.85
	shiftHateful.upperLambda = 0.8
	shiftHateful.strongNegMean = 0.3
	shiftHateful.negAdjProb = 0.1
	shiftHateful.wpsMean = 16.5
	shiftHateful.exclaimProb = 0.1
	return []classProfile{abusiveProfile, normalProfile, shiftHateful}
}()

// AggressionConfig configures the synthetic 86k aggression dataset.
type AggressionConfig struct {
	Seed         uint64
	Days         int // collection days (paper: 10)
	NormalCount  int // paper: 53,835
	AbusiveCount int // paper: 27,179
	HatefulCount int // paper: 4,970
	// ShiftAt injects an abrupt concept drift: tweets generated from this
	// offset onward (0 disables) draw from swapped class-conditional
	// profiles (see shiftedProfiles), stressing the drift-detection path
	// the way §I's adapting aggressors would.
	ShiftAt int
	// DuplicateRatio in [0,1) makes the stream retweet-heavy: with this
	// probability (scaled per class — aggressive texts go viral harder than
	// normal chatter, per Terizi et al.'s retweet analysis) a generated
	// tweet reuses a recently emitted text of its class verbatim, from a
	// fresh author. Recency is power-law: most repeats hit the newest texts.
	// 0 (the default) disables duplication and leaves every historical seed
	// stream byte-identical.
	DuplicateRatio float64
}

// DefaultAggressionConfig mirrors the dataset the paper evaluates on.
func DefaultAggressionConfig() AggressionConfig {
	return AggressionConfig{
		Seed:         42,
		Days:         10,
		NormalCount:  53835,
		AbusiveCount: 27179,
		HatefulCount: 4970,
	}
}

// Generator produces synthetic tweets with the calibrated class
// distributions. It is NOT safe for concurrent use; create one per
// goroutine (Split the seed).
type Generator struct {
	rng       *ml.RNG
	base      time.Time
	counter   int64
	swearPool []string
	slangDays [][]string
	profiles  []classProfile

	// Retweet/duplication mode (SetDuplicateRatio): per-class rings of the
	// most recent freshly composed texts, repeated verbatim with a
	// power-law recency bias so a handful of "viral" texts dominate.
	dupRatio float64
	recent   [3][]string
	recentAt [3]int
}

// dupClassWeight scales DuplicateRatio per class: aggressive content is
// retweeted more aggressively than normal chatter (Terizi et al. observe
// abuse spreading through retweet cascades), so at a given ratio the
// duplicate mass skews toward the texts the extraction cache benefits from
// memoizing most.
var dupClassWeight = [3]float64{0.7, 1.5, 1.5}

// dupWindow bounds each class's recent-text ring; repeats draw from this
// window, newest-first.
const dupWindow = 256

// NewGenerator creates a generator with the given seed and day horizon.
func NewGenerator(seed uint64, days int) *Generator {
	if days < 1 {
		days = 1
	}
	g := &Generator{
		rng:      ml.NewRNG(seed),
		base:     time.Date(2017, 6, 1, 0, 0, 0, 0, time.UTC),
		profiles: profiles,
	}
	// Sample only alphabetic seed swears: obfuscated variants ("sh1t")
	// would be mangled by the preprocessing step and stop matching the
	// lexicon, silently deflating the swear-count calibration.
	for _, w := range lexicon.SwearWords() {
		if isAlpha(w) {
			g.swearPool = append(g.swearPool, w)
		}
	}
	for d := 0; d < days; d++ {
		g.slangDays = append(g.slangDays, slangForDay(d))
	}
	return g
}

// Shift switches the generator to the post-drift regime (swapped
// class-conditional profiles). Tweets generated afterwards follow the new
// concept; labels keep naming the same classes.
func (g *Generator) Shift() { g.profiles = shiftedProfiles }

// SetDuplicateRatio turns on retweet-heavy generation: each subsequent
// tweet reuses a recent same-class text verbatim with probability
// ratio×dupClassWeight[class] (clamped to what the recent window can
// serve). Zero restores the pure-fresh stream.
func (g *Generator) SetDuplicateRatio(ratio float64) {
	if ratio < 0 {
		ratio = 0
	}
	g.dupRatio = ratio
}

// pickRecent returns a recently composed text of the class with power-law
// recency bias: u³ concentrates picks on the newest entries, so a few
// currently-viral texts account for most repeats.
func (g *Generator) pickRecent(class int) string {
	ring := g.recent[class]
	n := len(ring)
	u := g.rng.Float64()
	back := int(float64(n) * u * u * u)
	if back >= n {
		back = n - 1
	}
	// recentAt points at the next write slot; newest entry is one behind.
	idx := g.recentAt[class] - 1 - back
	idx %= n
	if idx < 0 {
		idx += n
	}
	return ring[idx]
}

// remember records a freshly composed text in the class's recent ring.
func (g *Generator) remember(class int, text string) {
	if len(g.recent[class]) < dupWindow {
		g.recent[class] = append(g.recent[class], text)
		g.recentAt[class] = len(g.recent[class]) % dupWindow
		return
	}
	g.recent[class][g.recentAt[class]] = text
	g.recentAt[class] = (g.recentAt[class] + 1) % dupWindow
}

// GenerateAggression produces the labeled dataset: tweets grouped by day
// (day 0 first), classes interleaved uniformly within each day, matching
// the paper's "10 consecutive days of ~8-9k tweets each". With ShiftAt
// set, the generator swaps to the shifted profiles once that many tweets
// have been emitted.
func GenerateAggression(cfg AggressionConfig) []Tweet {
	g := NewGenerator(cfg.Seed, cfg.Days)
	g.SetDuplicateRatio(cfg.DuplicateRatio)
	counts := []int{cfg.NormalCount, cfg.AbusiveCount, cfg.HatefulCount}
	total := counts[0] + counts[1] + counts[2]
	out := make([]Tweet, 0, total)

	// Assign per-day quotas, distributing remainders to early days.
	for day := 0; day < cfg.Days; day++ {
		var dayClasses []int
		for c, n := range counts {
			share := n / cfg.Days
			if day < n%cfg.Days {
				share++
			}
			for i := 0; i < share; i++ {
				dayClasses = append(dayClasses, c)
			}
		}
		g.rng.Shuffle(len(dayClasses), func(i, j int) {
			dayClasses[i], dayClasses[j] = dayClasses[j], dayClasses[i]
		})
		for _, c := range dayClasses {
			if cfg.ShiftAt > 0 && len(out) == cfg.ShiftAt {
				g.Shift()
			}
			tw := g.Tweet(c, day)
			tw.Label = classLabels[c]
			out = append(out, tw)
		}
	}
	return out
}

// Tweet generates one synthetic tweet of the given class (0 normal,
// 1 abusive, 2 hateful) on the given day, without a label attached.
func (g *Generator) Tweet(class, day int) Tweet {
	p := g.profiles[class]
	g.counter++
	posted := g.base.Add(time.Duration(day)*24*time.Hour +
		time.Duration(g.rng.Intn(86400))*time.Second)
	ageDays := clampF(p.accountAgeMean+g.rng.NormFloat64()*p.accountAgeStd, 5, 4200)
	created := posted.Add(-time.Duration(ageDays*24) * time.Hour)

	var body string
	if g.dupRatio > 0 && len(g.recent[class]) > 0 &&
		g.rng.Float64() < g.dupRatio*dupClassWeight[class] {
		body = g.pickRecent(class)
	} else {
		body = g.composeText(p, day)
		if g.dupRatio > 0 {
			g.remember(class, body)
		}
	}

	return Tweet{
		IDStr:     fmt.Sprintf("t%09d", g.counter),
		Text:      body,
		CreatedAt: posted.Format(TimeLayout),
		User: User{
			IDStr:          fmt.Sprintf("u%07d", g.rng.Intn(2000000)),
			ScreenName:     fmt.Sprintf("user%05d", g.rng.Intn(100000)),
			CreatedAt:      created.Format(TimeLayout),
			FollowersCount: g.logNormalCount(p.followersLogMean, p.followersStd),
			FriendsCount:   g.logNormalCount(p.friendsLogMean, p.friendsStd),
			StatusesCount:  g.logNormalCount(p.postsLogMean, p.postsLogStd),
			ListedCount:    g.rng.Poisson(p.listsMean),
		},
		Day: day,
	}
}

func (g *Generator) logNormalCount(logMean, logStd float64) int {
	v := math.Exp(logMean + g.rng.NormFloat64()*logStd)
	if v > 5e6 {
		v = 5e6
	}
	return int(v)
}

// driftFactors model the paper's §I observation that aggressors adapt:
// over the collection days, aggressive vocabulary shifts away from the
// classic swear list towards fresh slang. The factors average ~1 across
// the horizon, preserving the Fig. 4 global statistics, while giving a
// day-0-trained batch model something to go stale on (Figs. 13/14) and
// the adaptive BoW something to chase (Figs. 9/10).
func (g *Generator) driftFactors(label string, day int) (swearF, slangF float64) {
	if label == LabelNormal || len(g.slangDays) <= 1 {
		return 1, 1
	}
	frac := float64(day) / float64(len(g.slangDays)-1)
	return 1.25 - 0.5*frac, 0.7 + 0.6*frac
}

// composeText builds the tweet body so that the extracted features land on
// the class-conditional targets.
func (g *Generator) composeText(p classProfile, day int) string {
	wps := clampF(p.wpsMean+g.rng.NormFloat64()*p.wpsStd, 4, 40)
	nSent := 1
	switch r := g.rng.Float64(); {
	case r < 0.10:
		nSent = 3
	case r < 0.40:
		nSent = 2
	}
	totalWords := int(math.Round(wps * float64(nSent)))
	if totalWords < 3 {
		totalWords = 3
	}

	var words []string
	add := func(pool []string, n int) {
		for i := 0; i < n && len(words) < totalWords+6; i++ {
			words = append(words, pool[g.rng.Intn(len(pool))])
		}
	}

	swearF, slangF := g.driftFactors(p.label, day)
	mild := p.mildProb > 0 && g.rng.Float64() < p.mildProb
	if mild {
		// Implicit aggression: no swears, muted insults; slang and
		// shouting remain the only overt signals.
		p.swearMean = 0
		p.strongNegMean *= 0.25
		p.negAdjProb *= 0.3
	} else if p.mildProb > 0 {
		// Inflate the explicit share so the class mean stays calibrated.
		p.swearMean /= 1 - p.mildProb
	}
	add(g.swearPool, g.rng.Poisson(p.swearMean*swearF))
	if g.rng.Float64() < p.slangProb*slangF {
		slangDay := day
		// Some slang carries over from the previous day.
		if day > 0 && g.rng.Float64() < 0.3 {
			slangDay = day - 1
		}
		pool := g.slangDays[min(slangDay, len(g.slangDays)-1)]
		n := 1
		if g.rng.Float64() < 0.3 {
			n = 2
		}
		add(pool, n)
	}
	add(insultNouns, g.rng.Poisson(p.strongNegMean))
	if g.rng.Float64() < p.strongNegMean*0.4 {
		add(insultVerbs, 1)
	}
	if g.rng.Float64() < p.negAdjProb {
		add(negativeAdjectives, 1)
	}
	if g.rng.Float64() < p.mildNegProb {
		add(mildNegatives, 1)
	}
	add(positiveWords, g.rng.Poisson(p.posMean))
	add(neutralAdjectives, int(math.Round(math.Max(0, p.adjMean+g.rng.NormFloat64()*p.adjStd))))
	add(neutralAdverbs, g.rng.Poisson(p.advMean))
	if g.rng.Float64() < p.groupProb {
		add(targetGroups, 1)
	}

	// Fill the remainder: ~18% verbs, ~42% stop words, rest nouns.
	for len(words) < totalWords {
		switch r := g.rng.Float64(); {
		case r < 0.18:
			add(neutralVerbs, 1)
		case r < 0.60:
			add(stopWords, 1)
		default:
			add(neutralNouns, 1)
		}
	}
	g.rng.Shuffle(len(words), func(i, j int) { words[i], words[j] = words[j], words[i] })

	// Uppercase k words ("shouting"): zero-inflated 1+Poisson.
	upper := 0
	if g.rng.Float64() >= p.upperZeroProb {
		upper = 1 + g.rng.Poisson(p.upperLambda)
	}
	if upper > len(words) {
		upper = len(words)
	}
	for _, idx := range g.rng.SampleWithoutReplacement(len(words), upper) {
		words[idx] = strings.ToUpper(words[idx])
	}

	// Assemble sentences with terminators.
	var b strings.Builder
	perSent := (len(words) + nSent - 1) / nSent
	for s := 0; s < nSent; s++ {
		lo, hi := s*perSent, (s+1)*perSent
		if lo >= len(words) {
			break
		}
		if hi > len(words) {
			hi = len(words)
		}
		if s > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(strings.Join(words[lo:hi], " "))
		if g.rng.Float64() < p.exclaimProb {
			b.WriteString("!")
			if g.rng.Float64() < 0.4 {
				b.WriteString("!!")
			}
		} else {
			b.WriteString(".")
		}
	}

	// Tweet-specific decorations: mentions, hashtags, URLs, RT prefix.
	for i := g.rng.Poisson(p.mentionMn); i > 0; i-- {
		fmt.Fprintf(&b, " @user%04d", g.rng.Intn(10000))
	}
	for i := g.rng.Poisson(p.hashtagMean); i > 0; i-- {
		fmt.Fprintf(&b, " #%s", hashtagPool[g.rng.Intn(len(hashtagPool))])
	}
	for i := g.rng.Poisson(p.urlMean); i > 0; i-- {
		fmt.Fprintf(&b, " http://t.co/%06x", g.rng.Intn(1<<24))
	}
	textOut := b.String()
	if g.rng.Float64() < p.rtProb {
		textOut = fmt.Sprintf("RT @user%04d: %s", g.rng.Intn(10000), textOut)
	}
	return textOut
}

// UnlabeledSource streams endless unlabeled tweets with the dataset's
// overall class mixture, used by the scalability experiments (250k-2M
// tweets of Figures 15/16).
type UnlabeledSource struct {
	gen  *Generator
	mix  [3]float64 // cumulative class probabilities
	days int
	n    int64
}

// NewUnlabeledSource creates a source with the default 62.6/31.6/5.8%
// normal/abusive/hateful mixture.
func NewUnlabeledSource(seed uint64, days int) *UnlabeledSource {
	return &UnlabeledSource{
		gen:  NewGenerator(seed, days),
		mix:  [3]float64{0.626, 0.942, 1.0},
		days: days,
	}
}

// SetDuplicateRatio switches the source's generator into retweet-heavy
// mode (see Generator.SetDuplicateRatio).
func (s *UnlabeledSource) SetDuplicateRatio(ratio float64) {
	s.gen.SetDuplicateRatio(ratio)
}

// Next returns the next unlabeled tweet.
func (s *UnlabeledSource) Next() Tweet {
	r := s.gen.rng.Float64()
	class := 0
	for c, cum := range s.mix {
		if r <= cum {
			class = c
			break
		}
	}
	s.n++
	day := int(s.n) % s.days
	return s.gen.Tweet(class, day)
}

func isAlpha(s string) bool {
	for _, r := range s {
		if r < 'a' || r > 'z' {
			return false
		}
	}
	return true
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
