package twitterdata

import (
	"math"
	"strings"
	"testing"
)

func TestGenerateAggressionCounts(t *testing.T) {
	cfg := AggressionConfig{Seed: 1, Days: 10, NormalCount: 1000, AbusiveCount: 500, HatefulCount: 100}
	data := GenerateAggression(cfg)
	if len(data) != 1600 {
		t.Fatalf("total = %d, want 1600", len(data))
	}
	counts := map[string]int{}
	for i := range data {
		counts[data[i].Label]++
	}
	if counts[LabelNormal] != 1000 || counts[LabelAbusive] != 500 || counts[LabelHateful] != 100 {
		t.Fatalf("class counts = %v", counts)
	}
}

func TestGenerateAggressionDayStructure(t *testing.T) {
	cfg := AggressionConfig{Seed: 2, Days: 5, NormalCount: 500, AbusiveCount: 250, HatefulCount: 50}
	data := GenerateAggression(cfg)
	prevDay := 0
	perDay := map[int]int{}
	for i := range data {
		d := data[i].Day
		if d < prevDay {
			t.Fatalf("days not monotonically ordered: %d after %d", d, prevDay)
		}
		prevDay = d
		perDay[d]++
	}
	if len(perDay) != 5 {
		t.Fatalf("expected 5 days, got %d", len(perDay))
	}
	for d, n := range perDay {
		if n < 140 || n > 180 {
			t.Fatalf("day %d has %d tweets, want ~160", d, n)
		}
	}
}

func TestGenerateAggressionDeterministic(t *testing.T) {
	cfg := AggressionConfig{Seed: 3, Days: 2, NormalCount: 50, AbusiveCount: 20, HatefulCount: 5}
	a := GenerateAggression(cfg)
	b := GenerateAggression(cfg)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed produced different tweets at %d", i)
		}
	}
	cfg.Seed = 4
	c := GenerateAggression(cfg)
	same := 0
	for i := range a {
		if a[i].Text == c[i].Text {
			same++
		}
	}
	if same == len(a) {
		t.Fatalf("different seeds produced identical datasets")
	}
}

func TestGeneratedTweetsAreValidJSONPayloads(t *testing.T) {
	cfg := AggressionConfig{Seed: 5, Days: 2, NormalCount: 30, AbusiveCount: 20, HatefulCount: 10}
	for _, tw := range GenerateAggression(cfg) {
		data, err := tw.Marshal()
		if err != nil {
			t.Fatalf("marshal failed: %v", err)
		}
		back, err := Unmarshal(data)
		if err != nil || back.Text != tw.Text {
			t.Fatalf("round trip failed: %v", err)
		}
		if tw.AccountAgeDays() <= 0 {
			t.Fatalf("non-positive account age for %q", tw.IDStr)
		}
		if tw.PostedAt().IsZero() {
			t.Fatalf("unparseable timestamp %q", tw.CreatedAt)
		}
	}
}

func TestAbusiveTweetsCarrySwears(t *testing.T) {
	g := NewGenerator(6, 10)
	swearTweets := 0
	n := 500
	for i := 0; i < n; i++ {
		tw := g.Tweet(1, 0)
		if strings.Contains(tw.Text, "fuck") || strings.Contains(tw.Text, "shit") ||
			strings.Contains(tw.Text, "bitch") || strings.Contains(tw.Text, "ass") {
			swearTweets++
		}
	}
	// With Poisson(2.54) swears per abusive tweet, most contain at least
	// one of the high-frequency stems.
	if swearTweets < n/4 {
		t.Fatalf("only %d/%d abusive tweets contain common swears", swearTweets, n)
	}
}

func TestUnlabeledSourceMixtureAndProgress(t *testing.T) {
	src := NewUnlabeledSource(7, 10)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		tw := src.Next()
		if tw.IsLabeled() {
			t.Fatalf("unlabeled source produced labeled tweet")
		}
		seen[tw.Day] = true
	}
	if len(seen) < 5 {
		t.Fatalf("source cycles too few days: %d", len(seen))
	}
}

func TestGenerateSarcasmCounts(t *testing.T) {
	cfg := SarcasmConfig{Seed: 8, SarcasticCount: 100, NormalCount: 400, Days: 4}
	data := GenerateSarcasm(cfg)
	if len(data) != 500 {
		t.Fatalf("total = %d", len(data))
	}
	sarcastic := 0
	for i := range data {
		if data[i].Label == LabelSarcastic {
			sarcastic++
		}
	}
	if sarcastic != 100 {
		t.Fatalf("sarcastic = %d, want 100", sarcastic)
	}
}

func TestSarcasticTweetsLookSarcastic(t *testing.T) {
	g := NewGenerator(9, 4)
	emphatic := 0
	for i := 0; i < 200; i++ {
		tw := g.sarcasticTweet(0)
		if strings.Contains(tw.Text, "!!") || strings.Contains(tw.Text, "soooo") {
			emphatic++
		}
	}
	if emphatic < 150 {
		t.Fatalf("only %d/200 sarcastic tweets look emphatic", emphatic)
	}
}

func TestGenerateOffensiveCounts(t *testing.T) {
	cfg := OffensiveConfig{Seed: 10, RacistCount: 50, SexistCount: 75, NoneCount: 275, Days: 4}
	data := GenerateOffensive(cfg)
	counts := map[string]int{}
	for i := range data {
		counts[data[i].Label]++
	}
	if counts[LabelRacism] != 50 || counts[LabelSexism] != 75 || counts[LabelNone] != 275 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestSlangForDayDeterministicAndDistinct(t *testing.T) {
	a := slangForDay(3)
	b := slangForDay(3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("slang not deterministic")
		}
	}
	if len(a) != SlangWordsPerDay {
		t.Fatalf("slang size = %d", len(a))
	}
	c := slangForDay(4)
	shared := 0
	inA := map[string]bool{}
	for _, w := range a {
		inA[w] = true
	}
	for _, w := range c {
		if inA[w] {
			shared++
		}
	}
	if shared > SlangWordsPerDay/2 {
		t.Fatalf("days %d and %d share %d slang words", 3, 4, shared)
	}
}

func TestDayOf(t *testing.T) {
	g := NewGenerator(11, 5)
	tw := g.Tweet(0, 3)
	if d := DayOf(&tw, g.base); d != 3 {
		t.Fatalf("DayOf = %d, want 3", d)
	}
	bad := Tweet{CreatedAt: "garbage"}
	if d := DayOf(&bad, g.base); d != 0 {
		t.Fatalf("malformed timestamp DayOf = %d, want 0", d)
	}
}

func TestClampF(t *testing.T) {
	if clampF(5, 0, 10) != 5 || clampF(-1, 0, 10) != 0 || clampF(11, 0, 10) != 10 {
		t.Fatalf("clampF wrong")
	}
}

func TestLogNormalCountCapped(t *testing.T) {
	g := NewGenerator(12, 1)
	for i := 0; i < 1000; i++ {
		v := g.logNormalCount(10, 3)
		if v < 0 || float64(v) > 5e6 {
			t.Fatalf("logNormalCount out of range: %d", v)
		}
	}
}

func TestComposeTextSentenceStructure(t *testing.T) {
	g := NewGenerator(13, 10)
	for i := 0; i < 100; i++ {
		txt := g.composeText(normalProfile, 0)
		if len(txt) == 0 {
			t.Fatalf("empty text generated")
		}
		if !strings.ContainsAny(txt, ".!") {
			t.Fatalf("no sentence terminator in %q", txt)
		}
	}
}

func TestAccountAgeCalibration(t *testing.T) {
	g := NewGenerator(14, 10)
	for class, wantMean := range map[int]float64{0: 1487.74, 1: 1291.97, 2: 1379.95} {
		var sum float64
		n := 3000
		for i := 0; i < n; i++ {
			tw := g.Tweet(class, 0)
			sum += tw.AccountAgeDays()
		}
		mean := sum / float64(n)
		if math.Abs(mean-wantMean) > wantMean*0.12 {
			t.Errorf("class %d account age mean = %v, want ~%v", class, mean, wantMean)
		}
	}
}
