package twitterdata

// Hand-rolled streaming NDJSON tweet decoder. The serve ingress decodes
// every tweet line through encoding/json's reflection walker, which is the
// last allocating stage below the HTTP boundary. DecodeInto replaces it
// with a single-pass parser that is byte-for-byte equivalent to
// json.Unmarshal on the Tweet schema (proven by FuzzDecodeTweetEquivalence)
// while allocating nothing on the steady-state path: decoded string fields
// are carved out of a pooled 64KB arena chunk, so one Decoder amortizes one
// chunk allocation across ~64KB of interned tweet text.
//
// Arena discipline: DecodeInto marks the arena high-water position on
// entry; a failed decode rewinds automatically, and callers that reject an
// otherwise-valid tweet (backpressure, quota) call Discard to release the
// bytes of the most recent successful decode. Committed tweets own their
// spans — the chunk stays alive for as long as any decoded string does, and
// the decoder simply moves on to a fresh chunk when the current one fills.

import (
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"unicode"
	"unicode/utf16"
	"unicode/utf8"
	"unsafe"
)

const (
	// decodeArenaChunk is the arena granularity: large enough that chunk
	// turnover is rare against ~200-byte tweets, small enough that a
	// single surviving string pins a bounded amount of memory.
	decodeArenaChunk = 64 << 10
	// maxDecodeDepth mirrors encoding/json's nesting limit so deeply
	// nested unknown-field payloads fail on both sides of the fuzz
	// oracle instead of overflowing the stack.
	maxDecodeDepth = 10000
)

// Static sentinel errors: the decode hot path may not call fmt, so every
// failure mode maps to one of these package-level values.
var (
	errDecodeEnd      = errors.New("twitterdata: unexpected end of tweet JSON")
	errDecodeSyntax   = errors.New("twitterdata: invalid tweet JSON syntax")
	errDecodeValue    = errors.New("twitterdata: tweet JSON must be an object")
	errDecodeType     = errors.New("twitterdata: tweet JSON field has wrong type")
	errDecodeTrailing = errors.New("twitterdata: trailing data after tweet JSON")
	errDecodeIntRange = errors.New("twitterdata: tweet JSON integer overflows int64")
	errDecodeDepth    = errors.New("twitterdata: tweet JSON exceeds max nesting depth")
)

// Package-wide decode telemetry, surfaced on /metrics as
// redhanded_ingress_* and asserted steady by the arena leak test.
var (
	decodesTotal    atomic.Int64
	decodeErrsTotal atomic.Int64
	arenaChunksPool atomic.Int64
	internedBytes   atomic.Int64
)

// DecodeStats is a snapshot of the package-wide decoder counters (surfaced
// verbatim as the "ingress" section of /v1/stats).
type DecodeStats struct {
	// Decodes counts successful DecodeInto calls.
	Decodes int64 `json:"decodes"`
	// Errors counts failed DecodeInto calls.
	Errors int64 `json:"decode_errors"`
	// ArenaChunks counts 64KB arena chunks ever allocated across all
	// decoders; steady state under Discard keeps this flat.
	ArenaChunks int64 `json:"arena_chunks"`
	// InternedBytes counts string bytes copied into arena chunks.
	InternedBytes int64 `json:"interned_bytes"`
}

// ReadDecodeStats returns the current decoder counter snapshot.
func ReadDecodeStats() DecodeStats {
	return DecodeStats{
		Decodes:       decodesTotal.Load(),
		Errors:        decodeErrsTotal.Load(),
		ArenaChunks:   arenaChunksPool.Load(),
		InternedBytes: internedBytes.Load(),
	}
}

// Decoder parses NDJSON tweet lines without allocating. It is not safe for
// concurrent use; obtain one per goroutine via GetDecoder.
type Decoder struct {
	data []byte // current input line, nil between decodes
	pos  int    // cursor into data

	chunk   []byte // current arena chunk
	off     int    // next free byte in chunk
	gen     uint64 // bumped whenever chunk is replaced
	mark    int    // arena off at DecodeInto entry
	markGen uint64 // arena gen at DecodeInto entry

	scratch []byte // reused unescape buffer, grows to steady state
}

var decoderPool = sync.Pool{New: func() any { return new(Decoder) }}

// GetDecoder returns a pooled decoder. Pair with PutDecoder.
func GetDecoder() *Decoder { return decoderPool.Get().(*Decoder) }

// PutDecoder returns a decoder to the pool. The arena chunk rides along so
// its unused tail keeps serving future decodes; strings already committed
// remain valid because the arena only ever appends.
func PutDecoder(d *Decoder) {
	d.data = nil
	decoderPool.Put(d)
}

// Discard releases the arena bytes interned by the most recent successful
// DecodeInto. Call it when a decoded tweet is rejected (backpressure, bad
// batch prefix) and none of its strings will be retained; without it a
// rejected burst would stride through arena chunks it never needed.
//
//redvet:noalloc gate=IngressDecode
func (d *Decoder) Discard() {
	if d.gen != d.markGen {
		// The decode spilled into a fresh chunk: everything in it
		// belongs to the discarded tweet.
		d.off = 0
		d.markGen = d.gen
		return
	}
	d.off = d.mark
}

// DecodeInto parses one NDJSON line into dst, resetting dst first. On
// success dst's string fields alias the decoder's arena; on error dst is
// zeroed, the arena is rewound, and the input is reported malformed. The
// accepted grammar and the resulting Tweet are equivalent to
// json.Unmarshal(line, dst) (fuzz-enforced), including ASCII-and-Unicode
// case folding of object keys, last-wins duplicate fields, merge semantics
// for duplicate user objects, UTF-8 replacement-rune repair inside string
// values, and strict trailing-data rejection.
//
//redvet:noalloc gate=IngressDecode
func (d *Decoder) DecodeInto(dst *Tweet, line []byte) error {
	d.data = line
	d.pos = 0
	d.mark = d.off
	d.markGen = d.gen
	*dst = Tweet{}
	d.skipWS()
	var err error
	switch {
	case d.pos >= len(line):
		err = errDecodeEnd
	case line[d.pos] == '{':
		err = d.decodeTweet(dst)
	case line[d.pos] == 'n':
		// Top-level null is a successful no-op for json.Unmarshal.
		err = d.literalNull()
	default:
		err = errDecodeValue
	}
	if err == nil {
		d.skipWS()
		if d.pos < len(line) {
			err = errDecodeTrailing
		}
	}
	d.data = nil
	if err != nil {
		*dst = Tweet{}
		d.Discard()
		decodeErrsTotal.Add(1)
		return err
	}
	decodesTotal.Add(1)
	return nil
}

// intern copies b into the arena and returns a string view of the copy.
//
//redvet:noalloc gate=IngressDecode
func (d *Decoder) intern(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if len(b) > len(d.chunk)-d.off {
		n := decodeArenaChunk
		if len(b) > n {
			n = len(b)
		}
		//redvet:ignore noalloc amortized arena growth: one 64KB chunk per ~64KB of interned tweet strings; the leak test pins this flat under Discard
		d.chunk = make([]byte, n)
		d.off = 0
		d.gen++
		arenaChunksPool.Add(1)
	}
	start := d.off
	copy(d.chunk[start:], b)
	d.off += len(b)
	internedBytes.Add(int64(len(b)))
	return unsafe.String(&d.chunk[start], len(b))
}

//redvet:noalloc gate=IngressDecode
func (d *Decoder) skipWS() {
	for d.pos < len(d.data) {
		switch d.data[d.pos] {
		case ' ', '\t', '\r', '\n':
			d.pos++
		default:
			return
		}
	}
}

// literalNull consumes the literal "null".
//
//redvet:noalloc gate=IngressDecode
func (d *Decoder) literalNull() error {
	data := d.data
	p := d.pos
	if p+4 > len(data) || data[p] != 'n' || data[p+1] != 'u' || data[p+2] != 'l' || data[p+3] != 'l' {
		return errDecodeSyntax
	}
	d.pos = p + 4
	return nil
}

// decodeTweet parses the top-level tweet object; d.pos sits on '{'.
//
//redvet:noalloc gate=IngressDecode
func (d *Decoder) decodeTweet(dst *Tweet) error {
	d.pos++
	d.skipWS()
	if d.pos < len(d.data) && d.data[d.pos] == '}' {
		d.pos++
		return nil
	}
	for {
		key, err := d.readKey()
		if err != nil {
			return err
		}
		switch {
		case keyMatches(key, "id_str"):
			err = d.stringField(&dst.IDStr)
		case keyMatches(key, "text"):
			err = d.stringField(&dst.Text)
		case keyMatches(key, "created_at"):
			err = d.stringField(&dst.CreatedAt)
		case keyMatches(key, "user"):
			// Duplicate user objects merge rather than reset:
			// json.Unmarshal decodes into the existing struct value.
			err = d.decodeUser(&dst.User)
		case keyMatches(key, "label"):
			err = d.stringField(&dst.Label)
		case keyMatches(key, "day"):
			err = d.intField(&dst.Day)
		default:
			err = d.skipValue(2)
		}
		if err != nil {
			return err
		}
		more, err := d.objectNext()
		if err != nil {
			return err
		}
		if !more {
			return nil
		}
	}
}

// decodeUser parses a user-field value: null (no-op) or an object.
//
//redvet:noalloc gate=IngressDecode
func (d *Decoder) decodeUser(dst *User) error {
	if d.pos >= len(d.data) {
		return errDecodeEnd
	}
	if d.data[d.pos] == 'n' {
		return d.literalNull()
	}
	if d.data[d.pos] != '{' {
		return errDecodeType
	}
	d.pos++
	d.skipWS()
	if d.pos < len(d.data) && d.data[d.pos] == '}' {
		d.pos++
		return nil
	}
	for {
		key, err := d.readKey()
		if err != nil {
			return err
		}
		switch {
		case keyMatches(key, "id_str"):
			err = d.stringField(&dst.IDStr)
		case keyMatches(key, "screen_name"):
			err = d.stringField(&dst.ScreenName)
		case keyMatches(key, "created_at"):
			err = d.stringField(&dst.CreatedAt)
		case keyMatches(key, "followers_count"):
			err = d.intField(&dst.FollowersCount)
		case keyMatches(key, "friends_count"):
			err = d.intField(&dst.FriendsCount)
		case keyMatches(key, "statuses_count"):
			err = d.intField(&dst.StatusesCount)
		case keyMatches(key, "listed_count"):
			err = d.intField(&dst.ListedCount)
		default:
			err = d.skipValue(3)
		}
		if err != nil {
			return err
		}
		more, err := d.objectNext()
		if err != nil {
			return err
		}
		if !more {
			return nil
		}
	}
}

// readKey consumes a quoted object key plus the following colon and
// whitespace, returning the unquoted key bytes (valid only until the next
// decoder call).
//
//redvet:noalloc gate=IngressDecode
func (d *Decoder) readKey() ([]byte, error) {
	if d.pos >= len(d.data) || d.data[d.pos] != '"' {
		return nil, errDecodeSyntax
	}
	key, err := d.unquote()
	if err != nil {
		return nil, err
	}
	d.skipWS()
	if d.pos >= len(d.data) || d.data[d.pos] != ':' {
		return nil, errDecodeSyntax
	}
	d.pos++
	d.skipWS()
	return key, nil
}

// objectNext consumes the separator after an object member: ',' continues
// the member loop, '}' ends it.
//
//redvet:noalloc gate=IngressDecode
func (d *Decoder) objectNext() (bool, error) {
	d.skipWS()
	if d.pos >= len(d.data) {
		return false, errDecodeEnd
	}
	switch d.data[d.pos] {
	case ',':
		d.pos++
		d.skipWS()
		return true, nil
	case '}':
		d.pos++
		return false, nil
	}
	return false, errDecodeSyntax
}

// stringField decodes a string value (or null no-op) into dst, interning
// the bytes into the arena.
//
//redvet:noalloc gate=IngressDecode
func (d *Decoder) stringField(dst *string) error {
	if d.pos >= len(d.data) {
		return errDecodeEnd
	}
	switch d.data[d.pos] {
	case '"':
		b, err := d.unquote()
		if err != nil {
			return err
		}
		*dst = d.intern(b)
		return nil
	case 'n':
		return d.literalNull()
	}
	return errDecodeType
}

// intField decodes an integer value (or null no-op) into dst with
// json.Unmarshal semantics: the literal must satisfy the JSON number
// grammar and parse as a base-10 int64; fractions, exponents, and
// overflow are errors.
//
//redvet:noalloc gate=IngressDecode
func (d *Decoder) intField(dst *int) error {
	data := d.data
	if d.pos >= len(data) {
		return errDecodeEnd
	}
	c := data[d.pos]
	if c == 'n' {
		return d.literalNull()
	}
	if c != '-' && (c < '0' || c > '9') {
		return errDecodeType
	}
	neg := false
	p := d.pos
	if c == '-' {
		neg = true
		p++
		if p >= len(data) || data[p] < '0' || data[p] > '9' {
			return errDecodeSyntax
		}
	}
	// Accumulate negatively so math.MinInt64 round-trips.
	const cutoff = math.MinInt64 / 10
	var v int64
	if data[p] == '0' {
		p++
	} else {
		for p < len(data) && data[p] >= '0' && data[p] <= '9' {
			dig := int64(data[p] - '0')
			if v < cutoff {
				return errDecodeIntRange
			}
			v *= 10
			if v < math.MinInt64+dig {
				return errDecodeIntRange
			}
			v -= dig
			p++
		}
	}
	if p < len(data) {
		switch data[p] {
		case '0', '1', '2', '3', '4', '5', '6', '7', '8', '9':
			// Leading zero followed by digits: syntax error.
			return errDecodeSyntax
		case '.', 'e', 'E':
			// Valid JSON number but not an integer: json.Unmarshal
			// rejects it for an int field after validating the
			// grammar; any error is equivalent for the oracle.
			return errDecodeType
		}
	}
	if !neg {
		if v == math.MinInt64 {
			return errDecodeIntRange
		}
		v = -v
	}
	d.pos = p
	*dst = int(v)
	return nil
}

// unquote consumes a quoted string starting at d.pos (which must sit on
// the opening '"') and returns its unescaped bytes: a zero-copy span of
// the input when no rewriting is needed, otherwise the reused scratch
// buffer. Escape handling matches encoding/json exactly, including UTF-16
// surrogate pairing and U+FFFD repair of invalid UTF-8.
//
//redvet:noalloc gate=IngressDecode
func (d *Decoder) unquote() ([]byte, error) {
	data := d.data
	start := d.pos + 1
	clean := true
	for i := start; i < len(data); i++ {
		c := data[i]
		if c == '"' {
			if clean {
				d.pos = i + 1
				return data[start:i], nil
			}
			break
		}
		if c == '\\' {
			return d.unquoteSlow(start)
		}
		if c < 0x20 {
			return nil, errDecodeSyntax
		}
		if c >= utf8.RuneSelf {
			clean = false
		}
	}
	if clean {
		return nil, errDecodeEnd
	}
	// High bytes but no escapes: the span is returnable as-is when it is
	// valid UTF-8; otherwise rewrite with replacement runes.
	for i := start; i < len(data); i++ {
		if data[i] == '"' {
			if utf8.Valid(data[start:i]) {
				d.pos = i + 1
				return data[start:i], nil
			}
			break
		}
	}
	return d.unquoteSlow(start)
}

// unquoteSlow rewrites a quoted string into the scratch buffer, handling
// escapes and invalid-UTF-8 repair; start indexes the byte after the
// opening quote.
//
//redvet:noalloc gate=IngressDecode
func (d *Decoder) unquoteSlow(start int) ([]byte, error) {
	data := d.data
	b := d.scratch[:0]
	i := start
	for i < len(data) {
		c := data[i]
		switch {
		case c == '"':
			d.pos = i + 1
			d.scratch = b
			return b, nil
		case c == '\\':
			i++
			if i >= len(data) {
				return nil, errDecodeEnd
			}
			switch data[i] {
			case '"':
				b = append(b, '"')
				i++
			case '\\':
				b = append(b, '\\')
				i++
			case '/':
				b = append(b, '/')
				i++
			case 'b':
				b = append(b, '\b')
				i++
			case 'f':
				b = append(b, '\f')
				i++
			case 'n':
				b = append(b, '\n')
				i++
			case 'r':
				b = append(b, '\r')
				i++
			case 't':
				b = append(b, '\t')
				i++
			case 'u':
				rr := d.getu4(i + 1)
				if rr < 0 {
					return nil, errDecodeSyntax
				}
				i += 5
				if utf16.IsSurrogate(rr) {
					rr1 := rune(-1)
					if i+1 < len(data) && data[i] == '\\' && data[i+1] == 'u' {
						rr1 = d.getu4(i + 2)
					}
					if rr1 >= 0 {
						if dec := utf16.DecodeRune(rr, rr1); dec != unicode.ReplacementChar {
							i += 6
							b = utf8.AppendRune(b, dec)
							continue
						}
					}
					rr = unicode.ReplacementChar
				}
				b = utf8.AppendRune(b, rr)
			default:
				return nil, errDecodeSyntax
			}
		case c < 0x20:
			return nil, errDecodeSyntax
		case c < utf8.RuneSelf:
			b = append(b, c)
			i++
		default:
			r, n := utf8.DecodeRune(data[i:])
			if r == utf8.RuneError && n == 1 {
				b = utf8.AppendRune(b, unicode.ReplacementChar)
				i++
			} else {
				b = append(b, data[i:i+n]...)
				i += n
			}
		}
	}
	return nil, errDecodeEnd
}

// getu4 parses 4 hex digits at index i, returning -1 when absent or
// malformed.
//
//redvet:noalloc gate=IngressDecode
func (d *Decoder) getu4(i int) rune {
	data := d.data
	if i+4 > len(data) {
		return -1
	}
	var r rune
	for _, c := range data[i : i+4] {
		switch {
		case c >= '0' && c <= '9':
			c -= '0'
		case c >= 'a' && c <= 'f':
			c = c - 'a' + 10
		case c >= 'A' && c <= 'F':
			c = c - 'A' + 10
		default:
			return -1
		}
		r = r*16 + rune(c)
	}
	return r
}

// keyMatches reports whether an unquoted key equals a lowercase-ASCII
// field name under encoding/json's fold rules (bytes.EqualFold: Unicode
// simple case folding, so U+017F matches 's' and U+212A matches 'k').
//
//redvet:noalloc gate=IngressDecode
func keyMatches(key []byte, name string) bool {
	i := 0
	for j := 0; j < len(name); j++ {
		if i >= len(key) {
			return false
		}
		c := key[i]
		if c < utf8.RuneSelf {
			if c >= 'A' && c <= 'Z' {
				c += 'a' - 'A'
			}
			if c != name[j] {
				return false
			}
			i++
			continue
		}
		r, n := utf8.DecodeRune(key[i:])
		if !foldsToASCII(r, name[j]) {
			return false
		}
		i += n
	}
	return i == len(key)
}

// foldsToASCII reports whether rune r case-folds to the lowercase ASCII
// letter c via Unicode simple folding.
//
//redvet:noalloc gate=IngressDecode
func foldsToASCII(r rune, c byte) bool {
	if c < 'a' || c > 'z' {
		return false
	}
	for f := unicode.SimpleFold(r); f != r; f = unicode.SimpleFold(f) {
		if f == rune(c) {
			return true
		}
	}
	return false
}

// skipValue consumes one well-formed JSON value of any type (unknown
// fields), validating syntax exactly as encoding/json's scanner does;
// depth is the nesting depth of the value if it is a container.
//
//redvet:noalloc gate=IngressDecode
func (d *Decoder) skipValue(depth int) error {
	data := d.data
	if d.pos >= len(data) {
		return errDecodeEnd
	}
	switch c := data[d.pos]; {
	case c == '{':
		if depth > maxDecodeDepth {
			return errDecodeDepth
		}
		d.pos++
		d.skipWS()
		if d.pos < len(data) && data[d.pos] == '}' {
			d.pos++
			return nil
		}
		for {
			if _, err := d.readKey(); err != nil {
				return err
			}
			if err := d.skipValue(depth + 1); err != nil {
				return err
			}
			more, err := d.objectNext()
			if err != nil {
				return err
			}
			if !more {
				return nil
			}
		}
	case c == '[':
		if depth > maxDecodeDepth {
			return errDecodeDepth
		}
		d.pos++
		d.skipWS()
		if d.pos < len(data) && data[d.pos] == ']' {
			d.pos++
			return nil
		}
		for {
			if err := d.skipValue(depth + 1); err != nil {
				return err
			}
			d.skipWS()
			if d.pos >= len(data) {
				return errDecodeEnd
			}
			switch data[d.pos] {
			case ',':
				d.pos++
				d.skipWS()
			case ']':
				d.pos++
				return nil
			default:
				return errDecodeSyntax
			}
		}
	case c == '"':
		return d.skipString()
	case c == 't':
		if d.pos+4 > len(data) || data[d.pos+1] != 'r' || data[d.pos+2] != 'u' || data[d.pos+3] != 'e' {
			return errDecodeSyntax
		}
		d.pos += 4
		return nil
	case c == 'f':
		if d.pos+5 > len(data) || data[d.pos+1] != 'a' || data[d.pos+2] != 'l' || data[d.pos+3] != 's' || data[d.pos+4] != 'e' {
			return errDecodeSyntax
		}
		d.pos += 5
		return nil
	case c == 'n':
		return d.literalNull()
	case c == '-' || (c >= '0' && c <= '9'):
		return d.skipNumber()
	}
	return errDecodeSyntax
}

// skipString validates a quoted string without unescaping: escapes and
// control characters are checked (as the scanner does) but UTF-8 is not.
//
//redvet:noalloc gate=IngressDecode
func (d *Decoder) skipString() error {
	data := d.data
	i := d.pos + 1
	for i < len(data) {
		c := data[i]
		switch {
		case c == '"':
			d.pos = i + 1
			return nil
		case c == '\\':
			i++
			if i >= len(data) {
				return errDecodeEnd
			}
			switch data[i] {
			case '"', '\\', '/', 'b', 'f', 'n', 'r', 't':
				i++
			case 'u':
				if d.getu4(i+1) < 0 {
					return errDecodeSyntax
				}
				i += 5
			default:
				return errDecodeSyntax
			}
		case c < 0x20:
			return errDecodeSyntax
		default:
			i++
		}
	}
	return errDecodeEnd
}

// skipNumber validates a JSON number literal (the scanner grammar:
// -?(0|[1-9][0-9]*)(.[0-9]+)?([eE][+-]?[0-9]+)?).
//
//redvet:noalloc gate=IngressDecode
func (d *Decoder) skipNumber() error {
	data := d.data
	p := d.pos
	if data[p] == '-' {
		p++
		if p >= len(data) || data[p] < '0' || data[p] > '9' {
			return errDecodeSyntax
		}
	}
	if data[p] == '0' {
		p++
	} else {
		for p < len(data) && data[p] >= '0' && data[p] <= '9' {
			p++
		}
	}
	if p < len(data) && data[p] >= '0' && data[p] <= '9' {
		// Digits after a leading zero.
		return errDecodeSyntax
	}
	if p < len(data) && data[p] == '.' {
		p++
		if p >= len(data) || data[p] < '0' || data[p] > '9' {
			return errDecodeSyntax
		}
		for p < len(data) && data[p] >= '0' && data[p] <= '9' {
			p++
		}
	}
	if p < len(data) && (data[p] == 'e' || data[p] == 'E') {
		p++
		if p < len(data) && (data[p] == '+' || data[p] == '-') {
			p++
		}
		if p >= len(data) || data[p] < '0' || data[p] > '9' {
			return errDecodeSyntax
		}
		for p < len(data) && data[p] >= '0' && data[p] <= '9' {
			p++
		}
	}
	d.pos = p
	return nil
}
