// Package twitterdata provides the data substrate of the reproduction: the
// Twitter-API-shaped tweet model with its JSON codec, plus synthetic
// dataset generators calibrated to the class-conditional statistics the
// paper reports for its three datasets (the 86k aggression dataset and the
// Sarcasm and Offensive datasets of §V-F). The original crowdsourced
// datasets are not redistributable; the generators emit real tweet text and
// profile payloads so the entire preprocessing and feature-extraction code
// path is exercised end to end.
package twitterdata

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"
)

// TimeLayout is Twitter's created_at timestamp format.
const TimeLayout = "Mon Jan 02 15:04:05 -0700 2006"

// Label values used by the aggression dataset (after removing spam, the
// paper keeps normal, abusive, and hateful).
const (
	LabelNormal  = "normal"
	LabelAbusive = "abusive"
	LabelHateful = "hateful"
)

// User carries the profile fields the feature extractor consumes, mirroring
// the Twitter API payload.
//
//redvet:wire
type User struct {
	IDStr          string `json:"id_str"`
	ScreenName     string `json:"screen_name"`
	CreatedAt      string `json:"created_at"`
	FollowersCount int    `json:"followers_count"`
	FriendsCount   int    `json:"friends_count"`
	StatusesCount  int    `json:"statuses_count"`
	ListedCount    int    `json:"listed_count"`
}

// Tweet is one stream element: the JSON payload of the Twitter Streaming
// API plus, for the labeled stream, a class-label attribute. It is wire
// format three ways — the JSONL dataset files, the gob cluster frames,
// and the ingestlog binary codec — so literals must stay keyed and the
// ingestlog encode/decode pair is symmetry-checked against its fields.
//
//redvet:wire
type Tweet struct {
	IDStr     string `json:"id_str"`
	Text      string `json:"text"`
	CreatedAt string `json:"created_at"`
	User      User   `json:"user"`
	// Label holds the annotation for labeled tweets ("" for unlabeled).
	Label string `json:"label,omitempty"`
	// Day is the 0-based collection day (the dataset spans 10 days).
	Day int `json:"day,omitempty"`
}

// IsLabeled reports whether the tweet carries an annotation.
func (t *Tweet) IsLabeled() bool { return t.Label != "" }

// PostedAt parses the tweet timestamp; the zero time is returned for
// malformed payloads.
func (t *Tweet) PostedAt() time.Time {
	ts, err := time.Parse(TimeLayout, t.CreatedAt)
	if err != nil {
		return time.Time{}
	}
	return ts
}

// AccountAgeDays returns the age of the posting account in days at posting
// time (0 when either timestamp is malformed or inconsistent).
func (t *Tweet) AccountAgeDays() float64 {
	posted := t.PostedAt()
	created, err := time.Parse(TimeLayout, t.User.CreatedAt)
	if err != nil || posted.IsZero() || created.After(posted) {
		return 0
	}
	return posted.Sub(created).Hours() / 24
}

// Clone returns a copy of the tweet whose string fields are freshly
// allocated. Fast-decoded tweets carve their strings out of a pooled
// decoder arena (see Decoder); any consumer that retains tweet strings
// beyond the processing call — the sampler reservoir, user-state records —
// clones them first so a few surviving bytes never pin a 64KB arena chunk.
func (t *Tweet) Clone() Tweet {
	c := *t
	c.IDStr = strings.Clone(t.IDStr)
	c.Text = strings.Clone(t.Text)
	c.CreatedAt = strings.Clone(t.CreatedAt)
	c.Label = strings.Clone(t.Label)
	c.User.IDStr = strings.Clone(t.User.IDStr)
	c.User.ScreenName = strings.Clone(t.User.ScreenName)
	c.User.CreatedAt = strings.Clone(t.User.CreatedAt)
	return c
}

// Marshal encodes the tweet as a single JSON line.
func (t *Tweet) Marshal() ([]byte, error) { return json.Marshal(t) }

// Unmarshal decodes a tweet from JSON, reporting malformed payloads.
func Unmarshal(data []byte) (Tweet, error) {
	var t Tweet
	if err := json.Unmarshal(data, &t); err != nil {
		return Tweet{}, fmt.Errorf("twitterdata: malformed tweet JSON: %w", err)
	}
	return t, nil
}

// Writer streams tweets as JSON Lines.
type Writer struct {
	w   *bufio.Writer
	enc *json.Encoder
}

// NewWriter wraps an io.Writer for JSONL output.
func NewWriter(w io.Writer) *Writer {
	bw := bufio.NewWriter(w)
	return &Writer{w: bw, enc: json.NewEncoder(bw)}
}

// Write emits one tweet as a JSON line.
func (w *Writer) Write(t Tweet) error { return w.enc.Encode(t) }

// Flush flushes buffered output.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader streams tweets from JSON Lines input, skipping blank lines.
type Reader struct {
	sc *bufio.Scanner
}

// NewReader wraps an io.Reader producing JSONL tweets.
func NewReader(r io.Reader) *Reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	return &Reader{sc: sc}
}

// Read returns the next tweet, io.EOF at end of stream, or a decode error
// for malformed lines.
func (r *Reader) Read() (Tweet, error) {
	for r.sc.Scan() {
		line := r.sc.Bytes()
		if len(line) == 0 {
			continue
		}
		return Unmarshal(line)
	}
	if err := r.sc.Err(); err != nil {
		return Tweet{}, err
	}
	return Tweet{}, io.EOF
}

// ReadAll drains the stream, returning all tweets and the first error
// encountered (io.EOF is not an error).
func (r *Reader) ReadAll() ([]Tweet, error) {
	var out []Tweet
	for {
		t, err := r.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, t)
	}
}
