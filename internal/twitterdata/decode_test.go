package twitterdata

import (
	"encoding/json"
	"strings"
	"testing"
)

// oracleDecode is the reference semantics: json.Unmarshal into a fresh
// Tweet.
func oracleDecode(line []byte) (Tweet, error) {
	var t Tweet
	err := json.Unmarshal(line, &t)
	return t, err
}

// checkEquivalence runs one input through both decoders and fails on any
// divergence (error-vs-success, or differing tweets on success).
func checkEquivalence(t *testing.T, line []byte) {
	t.Helper()
	want, wantErr := oracleDecode(line)
	d := GetDecoder()
	defer PutDecoder(d)
	var got Tweet
	gotErr := d.DecodeInto(&got, line)
	if (wantErr == nil) != (gotErr == nil) {
		t.Fatalf("error divergence on %q:\n  json.Unmarshal err=%v\n  DecodeInto err=%v", line, wantErr, gotErr)
	}
	if wantErr != nil {
		if got != (Tweet{}) {
			t.Fatalf("DecodeInto left non-zero tweet after error on %q: %+v", line, got)
		}
		return
	}
	if got != want {
		t.Fatalf("value divergence on %q:\n  want %+v\n  got  %+v", line, want, got)
	}
}

// decodeCases is the table shared by the unit test and the fuzz seed
// corpus: every equivalence class the decoder special-cases.
var decodeCases = []string{
	// Plain tweets.
	`{"id_str":"1","text":"hello world","created_at":"Mon Jan 02 15:04:05 +0000 2006","user":{"id_str":"u1","screen_name":"alice","created_at":"Mon Jan 02 15:04:05 +0000 2005","followers_count":10,"friends_count":20,"statuses_count":30,"listed_count":2},"label":"normal","day":3}`,
	`{}`,
	`{"text":""}`,
	`  {"text":"lead/trail ws"}  ` + "\r\n\t",
	// Top-level null and non-object values.
	`null`,
	`null  `,
	`nul`,
	`nullx`,
	`true`,
	`123`,
	`"str"`,
	`[1,2]`,
	``,
	`   `,
	"\xef\xbb\xbf{}",
	// Escapes and unicode.
	`{"text":"a\"b\\c\/d\be\ff\ng\rh\ti"}`,
	`{"text":"\u0041\u00e9\u4e2d"}`,
	`{"text":"\ud83d\ude00"}`,
	`{"text":"\ud83d"}`,
	`{"text":"\ude00\ud83d"}`,
	`{"text":"\ud83dxx"}`,
	`{"text":"\ud83d\u0041"}`,
	`{"text":"\u12"}`,
	`{"text":"\uZZZZ"}`,
	`{"text":"\q"}`,
	`{"text":"caf\u00e9 ☕ 中文"}`,
	"{\"text\":\"raw\x80bad\"}",
	"{\"text\":\"trunc\xe4\xb8\"}",
	"{\"text\":\"ok\xe4\xb8\xad\"}",
	"{\"text\":\"ctrl\x01\"}",
	`{"text":"unterminated`,
	`{"text":"esc at end\`,
	// Keys: escapes, case folding, unicode folds, duplicates.
	`{"\u0074ext":"escaped key"}`,
	`{"TEXT":"upper"}`,
	`{"Text":"mixed","tExT":"later wins"}`,
	`{"id_\u017ftr":"long s folds to s"}`,
	`{"te\u212at":"kelvin does not match text"}`,
	`{"text":"a","text":"b"}`,
	`{"day":1,"day":2}`,
	`{"":"empty key"}`,
	`{"unknown":{"nested":[1,{"x":"y"},null,true]},"text":"after unknown"}`,
	// Duplicate user objects merge.
	`{"user":{"id_str":"a","followers_count":1},"user":{"screen_name":"b"}}`,
	`{"user":{"followers_count":1},"user":null}`,
	`{"user":null}`,
	`{"user":"notanobject"}`,
	`{"user":[1]}`,
	// Numbers.
	`{"day":0}`,
	`{"day":-0}`,
	`{"day":9223372036854775807}`,
	`{"day":-9223372036854775808}`,
	`{"day":9223372036854775808}`,
	`{"day":-9223372036854775809}`,
	`{"day":01}`,
	`{"day":1.5}`,
	`{"day":1e3}`,
	`{"day":0.0}`,
	`{"day":-}`,
	`{"day":+1}`,
	`{"day":"7"}`,
	`{"day":null}`,
	`{"day":true}`,
	`{"unknown":-12.5e+7}`,
	`{"unknown":0.5E-2}`,
	`{"unknown":1.}`,
	`{"unknown":1e}`,
	`{"unknown":1e+}`,
	`{"unknown":00}`,
	// Nulls into typed fields are no-ops.
	`{"text":null}`,
	`{"text":"kept","text":null}`,
	// Structural errors.
	`{"text":"a"`,
	`{"text"}`,
	`{"text":}`,
	`{"text":"a",}`,
	`{,}`,
	`{"a":1 "b":2}`,
	`{"a":tru}`,
	`{"a":falsee}`,
	`{"a":[1,]}`,
	`{"a":[}`,
	`{"a":[]}`,
	`{"a":[ ]}`,
	`{} trailing`,
	`{}{}`,
	// Whitespace-only separators.
	"{ \"text\" \n:\t \"ws\" \r}",
}

func TestDecodeIntoEquivalence(t *testing.T) {
	for _, tc := range decodeCases {
		checkEquivalence(t, []byte(tc))
	}
}

// TestDecodeIntoGeneratedCorpus proves equivalence over the synthetic
// corpus the benches replay: every generator-produced tweet round-trips
// through Marshal and both decoders identically.
func TestDecodeIntoGeneratedCorpus(t *testing.T) {
	tweets := GenerateAggression(AggressionConfig{Seed: 7, Days: 3, NormalCount: 200, AbusiveCount: 80, HatefulCount: 40})
	d := GetDecoder()
	defer PutDecoder(d)
	for i := range tweets {
		line, err := tweets[i].Marshal()
		if err != nil {
			t.Fatal(err)
		}
		checkEquivalence(t, line)
		// And via a reused decoder, to exercise arena reuse.
		var got Tweet
		if err := d.DecodeInto(&got, line); err != nil {
			t.Fatalf("DecodeInto failed on generated tweet: %v", err)
		}
		if got != tweets[i] {
			t.Fatalf("generated tweet diverged:\n  want %+v\n  got  %+v", tweets[i], got)
		}
	}
}

// TestDecodeDepthLimit pins the container nesting boundary to
// encoding/json's 10000.
func TestDecodeDepthLimit(t *testing.T) {
	// Tweet object is container 1, so k inner brackets reach depth k+1.
	deepOK := `{"x":` + strings.Repeat("[", maxDecodeDepth-1) + strings.Repeat("]", maxDecodeDepth-1) + `}`
	deepBad := `{"x":` + strings.Repeat("[", maxDecodeDepth) + strings.Repeat("]", maxDecodeDepth) + `}`
	checkEquivalence(t, []byte(deepOK))
	checkEquivalence(t, []byte(deepBad))
}

// TestDecodeArenaDiscard asserts the Discard contract: rejected decodes
// rewind the arena so a rejected burst does not stride through chunks.
func TestDecodeArenaDiscard(t *testing.T) {
	d := GetDecoder()
	defer PutDecoder(d)
	line := []byte(`{"id_str":"1","text":"some reasonably sized tweet text for the arena","user":{"screen_name":"bob"}}`)
	var tw Tweet
	// Prime the arena so a chunk exists.
	if err := d.DecodeInto(&tw, line); err != nil {
		t.Fatal(err)
	}
	before := ReadDecodeStats().ArenaChunks
	start := d.off
	for i := 0; i < 100000; i++ {
		if err := d.DecodeInto(&tw, line); err != nil {
			t.Fatal(err)
		}
		d.Discard()
	}
	if d.off != start {
		t.Fatalf("arena off moved under Discard: start=%d now=%d", start, d.off)
	}
	if after := ReadDecodeStats().ArenaChunks; after != before {
		t.Fatalf("arena chunks grew under Discard: %d -> %d", before, after)
	}
	// Errors rewind too.
	mark := d.off
	if err := d.DecodeInto(&tw, []byte(`{"text":"abc","broken`)); err == nil {
		t.Fatal("expected error")
	}
	if d.off != mark {
		t.Fatalf("arena off moved after failed decode: %d -> %d", mark, d.off)
	}
}

// TestDecodeStringsSurviveChunkTurnover proves committed strings stay
// valid after the decoder moves to fresh chunks.
func TestDecodeStringsSurviveChunkTurnover(t *testing.T) {
	d := GetDecoder()
	defer PutDecoder(d)
	text := strings.Repeat("x", 4096)
	line := []byte(`{"text":"` + text + `"}`)
	var kept []string
	for i := 0; i < 64; i++ { // 64 * 4KB = 4 chunks of turnover
		var tw Tweet
		if err := d.DecodeInto(&tw, line); err != nil {
			t.Fatal(err)
		}
		kept = append(kept, tw.Text)
	}
	for i, s := range kept {
		if s != text {
			t.Fatalf("kept string %d corrupted after chunk turnover", i)
		}
	}
}

func BenchmarkDecodeInto(b *testing.B) {
	tweets := GenerateAggression(AggressionConfig{Seed: 3, Days: 2, NormalCount: 64, AbusiveCount: 24, HatefulCount: 12})
	lines := make([][]byte, len(tweets))
	for i := range tweets {
		var err error
		lines[i], err = tweets[i].Marshal()
		if err != nil {
			b.Fatal(err)
		}
	}
	d := GetDecoder()
	defer PutDecoder(d)
	var tw Tweet
	// Warm the arena and scratch to steady state.
	for _, l := range lines {
		if err := d.DecodeInto(&tw, l); err != nil {
			b.Fatal(err)
		}
		d.Discard()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.DecodeInto(&tw, lines[i%len(lines)]); err != nil {
			b.Fatal(err)
		}
		d.Discard()
	}
}

func BenchmarkDecodeStdlib(b *testing.B) {
	tweets := GenerateAggression(AggressionConfig{Seed: 3, Days: 2, NormalCount: 64, AbusiveCount: 24, HatefulCount: 12})
	lines := make([][]byte, len(tweets))
	for i := range tweets {
		var err error
		lines[i], err = tweets[i].Marshal()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var tw Tweet
		if err := json.Unmarshal(lines[i%len(lines)], &tw); err != nil {
			b.Fatal(err)
		}
	}
}
