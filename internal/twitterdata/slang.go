package twitterdata

import "redhanded/internal/ml"

// Aggressive slang drift: users "find innovative ways to circumvent the
// rules ... by using new words or special text characters to signify their
// aggression but avoid detection" (§I). The generator models this with a
// synthetic slang vocabulary that rotates across collection days: each day
// introduces fresh coined words that appear predominantly in aggressive
// tweets. None of them are in the seed swear list or the sentiment
// lexicon, so only the adaptive bag-of-words can learn them — this is the
// mechanism behind the Fig. 9 (ad=ON vs OFF) gap and the Fig. 10 growth
// from 347 towards ~530 words.

// slangSyllables combine into pronounceable coined words.
var slangOnsets = []string{
	"zor", "trax", "blep", "crin", "vex", "dro", "skro", "quib",
	"mard", "flug", "grem", "yev", "plon", "sker", "wub", "jax",
	"thrum", "glib",
}

var slangCodas = []string{
	"go", "xa", "pit", "dle", "xo", "mak", "nub", "zer", "vik",
	"lor", "bex", "dun", "fi", "rog", "sna", "tor", "wex", "zim",
}

// SlangWordsPerDay is how many new slang words each collection day
// introduces.
const SlangWordsPerDay = 28

// slangForDay returns the deterministic slang vocabulary of one day.
func slangForDay(day int) []string {
	rng := ml.NewRNG(uint64(day)*2654435761 + 97)
	words := make([]string, 0, SlangWordsPerDay)
	seen := map[string]bool{}
	for len(words) < SlangWordsPerDay {
		w := slangOnsets[rng.Intn(len(slangOnsets))] + slangCodas[rng.Intn(len(slangCodas))]
		// Day-salt a fraction of words with an extra coda so days rarely
		// collide.
		if rng.Float64() < 0.5 {
			w += slangCodas[rng.Intn(len(slangCodas))]
		}
		if !seen[w] {
			seen[w] = true
			words = append(words, w)
		}
	}
	return words
}
