package twitterdata

import (
	"encoding/json"
	"testing"
)

// FuzzDecodeTweetEquivalence is the decoder's correctness proof: for every
// input, DecodeInto and json.Unmarshal must agree — both error, or both
// succeed with identical tweets. The seed corpus covers escape sequences,
// unicode (including surrogate pairs and invalid UTF-8), case-folded and
// escaped keys, duplicate fields, unknown fields, number edge cases, and
// truncated input; the mutator takes it from there.
func FuzzDecodeTweetEquivalence(f *testing.F) {
	for _, tc := range decodeCases {
		f.Add([]byte(tc))
	}
	f.Fuzz(func(t *testing.T, line []byte) {
		var want Tweet
		wantErr := json.Unmarshal(line, &want)
		d := GetDecoder()
		defer PutDecoder(d)
		var got Tweet
		gotErr := d.DecodeInto(&got, line)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("error divergence on %q:\n  json.Unmarshal err=%v\n  DecodeInto err=%v", line, wantErr, gotErr)
		}
		if wantErr != nil {
			if got != (Tweet{}) {
				t.Fatalf("DecodeInto left non-zero tweet after error on %q: %+v", line, got)
			}
			return
		}
		if got != want {
			t.Fatalf("value divergence on %q:\n  want %+v\n  got  %+v", line, want, got)
		}
	})
}
