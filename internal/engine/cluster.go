package engine

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"time"

	"redhanded/internal/core"
	"redhanded/internal/feature"
	"redhanded/internal/ml"
	"redhanded/internal/norm"
	"redhanded/internal/stream"
	"redhanded/internal/twitterdata"
)

// The cluster engine distributes micro-batch tasks across executor nodes
// over TCP, mirroring the paper's 3-node SparkCluster deployment: the
// driver broadcasts the serialized global model (< 1 MB), the normalizer
// statistics, and the adaptive BoW vocabulary with each batch partition;
// executors extract features, train local accumulators, and predict in
// parallel; the driver merges the returned deltas.

// batchRequest is the driver -> executor message for one micro-batch.
type batchRequest struct {
	Seq        int64
	ModelKind  string // "HT" or "SLR"
	ModelBlob  []byte
	StatsBlob  []byte
	BoWWords   []string
	Preprocess bool
	NormMode   int
	Scheme     int
	Tasks      int // parallel partitions within the executor
	Tweets     []twitterdata.Tweet
	Shutdown   bool
}

// batchResponse is the executor -> driver reply.
type batchResponse struct {
	Seq        int64
	DeltaBlobs [][]byte
	StatsBlob  []byte
	Classified []classifiedRec
	Err        string
}

// Executor is one cluster node: it listens on a TCP address and serves
// micro-batch requests with a local worker pool. The paper's cluster nodes
// have 8 cores each.
type Executor struct {
	ln       net.Listener
	workers  int
	mu       sync.Mutex
	closed   bool
	handled  int64
	serveErr error
}

// StartExecutor launches an executor listening on addr (use "127.0.0.1:0"
// for an ephemeral port).
func StartExecutor(addr string, workers int) (*Executor, error) {
	if workers < 1 {
		workers = 1
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("engine: executor listen: %w", err)
	}
	e := &Executor{ln: ln, workers: workers}
	go e.serve()
	return e, nil
}

// Addr returns the executor's listen address.
func (e *Executor) Addr() string { return e.ln.Addr().String() }

// Handled returns how many batch requests this executor served.
func (e *Executor) Handled() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.handled
}

// Close stops the executor.
func (e *Executor) Close() error {
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
	return e.ln.Close()
}

func (e *Executor) serve() {
	for {
		conn, err := e.ln.Accept()
		if err != nil {
			e.mu.Lock()
			if !e.closed {
				e.serveErr = err
			}
			e.mu.Unlock()
			return
		}
		go e.serveConn(conn)
	}
}

// serveConn handles one driver connection for its lifetime. Each executor
// keeps a persistent extractor whose BoW is replaced by the per-batch
// broadcast vocabulary.
func (e *Executor) serveConn(conn net.Conn) {
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	var extractor *feature.Extractor
	extractorPre := false
	for {
		var req batchRequest
		if err := dec.Decode(&req); err != nil {
			return // connection closed or corrupted; driver will notice
		}
		if req.Shutdown {
			return
		}
		if extractor == nil || extractorPre != req.Preprocess {
			bowCfg := feature.DefaultBoWConfig()
			bowCfg.Frozen = true // adaptation happens at the driver only
			extractor = feature.NewExtractor(feature.Config{Preprocess: req.Preprocess, BoW: bowCfg})
			extractorPre = req.Preprocess
		}
		resp := e.handleBatch(&req, extractor)
		e.mu.Lock()
		e.handled++
		e.mu.Unlock()
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func (e *Executor) handleBatch(req *batchRequest, extractor *feature.Extractor) batchResponse {
	resp := batchResponse{Seq: req.Seq}
	model, err := stream.DecodeModel(req.ModelKind, req.ModelBlob)
	if err != nil {
		resp.Err = err.Error()
		return resp
	}
	stats := norm.NewFeatureStats(feature.NumFeatures)
	if err := stats.UnmarshalBinary(req.StatsBlob); err != nil {
		resp.Err = err.Error()
		return resp
	}
	extractor.BoW().SetWords(req.BoWWords)
	scheme := core.ClassScheme(req.Scheme)

	parts := req.Tasks
	if parts < 1 {
		parts = 1
	}
	if parts > len(req.Tweets) {
		parts = len(req.Tweets)
	}

	// Phase 1 (parallel): extract raw features into pooled vectors,
	// accumulate local stats. The vectors are released after phase 2.
	raws := make([]*feature.Vec, len(req.Tweets))
	labels := make([]int, len(req.Tweets))
	statsDeltas := make([]*norm.FeatureStats, parts)
	var wg sync.WaitGroup
	sem := make(chan struct{}, e.workers)
	runTasks := func(fn func(part int)) {
		for part := 0; part < parts; part++ {
			part := part
			wg.Add(1)
			go func() {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				fn(part)
			}()
		}
		wg.Wait()
	}
	runTasks(func(part int) {
		delta := norm.NewFeatureStats(feature.NumFeatures)
		for idx := part; idx < len(req.Tweets); idx += parts {
			tw := &req.Tweets[idx]
			raws[idx] = feature.GetVec()
			extractor.ExtractInto(raws[idx][:], tw)
			delta.Observe(raws[idx][:])
			labels[idx] = ml.Unlabeled
			if tw.IsLabeled() {
				labels[idx] = scheme.LabelIndex(tw.Label)
			}
		}
		statsDeltas[part] = delta
	})

	// The executor normalizes against the broadcast global statistics plus
	// its own share's delta; the authoritative merge happens at the driver.
	localDelta := norm.NewFeatureStats(feature.NumFeatures)
	for _, d := range statsDeltas {
		localDelta.Merge(d)
	}
	stats.Merge(localDelta)
	snapshot := &norm.Normalizer{Mode: norm.Mode(req.NormMode), Stats: stats}

	// Phase 2 (parallel): normalize, predict, accumulate training deltas.
	results := make([]partitionResult, parts)
	runTasks(func(part int) {
		res := partitionResult{part: part, acc: model.NewAccumulator()}
		for idx := part; idx < len(req.Tweets); idx += parts {
			x := snapshot.Normalize(raws[idx][:], nil)
			votes := model.Predict(x)
			label := labels[idx]
			if label >= 0 {
				res.acc.Observe(ml.Instance{
					X: x, Label: label, Weight: 1,
					ID: req.Tweets[idx].IDStr, Day: req.Tweets[idx].Day,
				})
			}
			res.classified = append(res.classified, classifiedRec{
				Idx: idx, Label: label, Pred: votes.ArgMax(), Conf: votes.Confidence(),
			})
		}
		results[part] = res
	})

	for _, v := range raws {
		feature.PutVec(v)
	}

	for _, res := range results {
		blob, err := res.acc.(stream.StatefulAccumulator).State()
		if err != nil {
			resp.Err = err.Error()
			return resp
		}
		resp.DeltaBlobs = append(resp.DeltaBlobs, blob)
		resp.Classified = append(resp.Classified, res.classified...)
	}
	statsBlob, err := localDelta.MarshalBinary()
	if err != nil {
		resp.Err = err.Error()
		return resp
	}
	resp.StatsBlob = statsBlob
	return resp
}

// ClusterConfig configures the distributed engine.
type ClusterConfig struct {
	// Executors lists the executor TCP addresses (the paper uses 3 nodes).
	Executors []string
	// BatchSize is the micro-batch length across the whole cluster.
	BatchSize int
	// TasksPerExecutor is the parallel partition count per node (8 cores
	// per node in the paper's testbed).
	TasksPerExecutor int
}

func (c ClusterConfig) withDefaults() ClusterConfig {
	if c.BatchSize <= 0 {
		c.BatchSize = 6000
	}
	if c.TasksPerExecutor <= 0 {
		c.TasksPerExecutor = 8
	}
	return c
}

// RunCluster executes the pipeline across the executor nodes. The
// pipeline's model must implement stream.RemoteTrainable (HT or SLR).
func RunCluster(p *core.Pipeline, src Source, cfg ClusterConfig) (Stats, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Executors) == 0 {
		return Stats{}, fmt.Errorf("engine: cluster needs at least one executor")
	}
	model, ok := p.Model().(stream.RemoteTrainable)
	if !ok {
		return Stats{}, fmt.Errorf("engine: model %T does not support remote training", p.Model())
	}
	kind, err := stream.ModelKindOf(model)
	if err != nil {
		return Stats{}, err
	}

	conns := make([]net.Conn, len(cfg.Executors))
	encs := make([]*gob.Encoder, len(cfg.Executors))
	decs := make([]*gob.Decoder, len(cfg.Executors))
	for i, addr := range cfg.Executors {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return Stats{}, fmt.Errorf("engine: dial executor %s: %w", addr, err)
		}
		defer conn.Close()
		conns[i] = conn
		encs[i] = gob.NewEncoder(conn)
		decs[i] = gob.NewDecoder(conn)
	}

	start := time.Now()
	var stats Stats
	var lat latencyTracker
	var seq int64
	batch := make([]twitterdata.Tweet, 0, cfg.BatchSize)
	for {
		batch = batch[:0]
		for len(batch) < cfg.BatchSize {
			t, ok := src.Next()
			if !ok {
				break
			}
			batch = append(batch, t)
		}
		if len(batch) == 0 {
			break
		}
		seq++
		batchStart := time.Now()
		if err := runClusterBatch(p, model, kind, batch, seq, cfg, encs, decs); err != nil {
			stats.Duration = time.Since(start)
			return stats, err
		}
		lat.add(time.Since(batchStart))
		stats.Processed += int64(len(batch))
		tweetsProcessedTotal.Add(int64(len(batch)))
		stats.Batches++
		if len(batch) < cfg.BatchSize {
			break
		}
	}
	stats.Duration = time.Since(start)
	lat.fill(&stats)
	return stats, nil
}

func runClusterBatch(p *core.Pipeline, model stream.RemoteTrainable, kind string,
	batch []twitterdata.Tweet, seq int64, cfg ClusterConfig,
	encs []*gob.Encoder, decs []*gob.Decoder) error {

	modelBlob, err := model.MarshalBinary()
	if err != nil {
		return fmt.Errorf("engine: broadcast model: %w", err)
	}
	statsBlob, err := p.Normalizer().Stats.MarshalBinary()
	if err != nil {
		return fmt.Errorf("engine: broadcast stats: %w", err)
	}
	words := p.Extractor().BoW().Words()
	nodes := len(encs)

	// Split the batch contiguously across nodes; record each node's tweet
	// offsets so classified indices can be mapped back.
	type share struct{ lo, hi int }
	shares := make([]share, nodes)
	per := (len(batch) + nodes - 1) / nodes
	for i := 0; i < nodes; i++ {
		lo := i * per
		hi := lo + per
		if lo > len(batch) {
			lo = len(batch)
		}
		if hi > len(batch) {
			hi = len(batch)
		}
		shares[i] = share{lo, hi}
	}

	responses := make([]batchResponse, nodes)
	errs := make([]error, nodes)
	var wg sync.WaitGroup
	for i := 0; i < nodes; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			sh := shares[i]
			req := batchRequest{
				Seq:        seq,
				ModelKind:  kind,
				ModelBlob:  modelBlob,
				StatsBlob:  statsBlob,
				BoWWords:   words,
				Preprocess: p.Options().Preprocess,
				NormMode:   int(p.Normalizer().Mode),
				Scheme:     int(p.Options().Scheme),
				Tasks:      cfg.TasksPerExecutor,
				Tweets:     batch[sh.lo:sh.hi],
			}
			if err := encs[i].Encode(&req); err != nil {
				errs[i] = fmt.Errorf("engine: send to executor %d: %w", i, err)
				return
			}
			if err := decs[i].Decode(&responses[i]); err != nil {
				errs[i] = fmt.Errorf("engine: receive from executor %d: %w", i, err)
				return
			}
			if responses[i].Err != "" {
				errs[i] = fmt.Errorf("engine: executor %d: %s", i, responses[i].Err)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	// Merge deltas and statistics in node order.
	var accs []ml.Accumulator
	outcomes := make([]core.Outcome, len(batch))
	for i, resp := range responses {
		delta := norm.NewFeatureStats(p.Normalizer().Stats.Dim())
		if err := delta.UnmarshalBinary(resp.StatsBlob); err != nil {
			return fmt.Errorf("engine: merge stats from executor %d: %w", i, err)
		}
		p.Normalizer().Stats.Merge(delta)
		for _, blob := range resp.DeltaBlobs {
			acc, err := model.AccumulatorFromState(blob)
			if err != nil {
				return fmt.Errorf("engine: merge delta from executor %d: %w", i, err)
			}
			accs = append(accs, acc)
		}
		for _, c := range resp.Classified {
			globalIdx := shares[i].lo + c.Idx
			outcomes[globalIdx] = core.Outcome{Label: c.Label, Pred: c.Pred, Conf: c.Conf}
		}
	}
	model.ApplyAccumulators(accs)
	p.AbsorbBatch(batch, outcomes)
	return nil
}
