// Package engine provides the execution substrates the paper evaluates in
// §V-E: a sequential single-threaded engine (the MOA execution model), a
// Spark-Streaming-style micro-batch engine with parallel tasks over
// partitioned data (SparkSingle with one worker, SparkLocal with many), and
// a distributed cluster engine where executors run on separate TCP
// endpoints and the driver broadcasts the global model each micro-batch
// (SparkCluster).
package engine

import (
	"io"
	"time"

	"redhanded/internal/core"
	"redhanded/internal/metrics"
	"redhanded/internal/stream"
	"redhanded/internal/twitterdata"
)

// tweetsProcessedTotal counts tweets run through any engine in the process
// on the default metrics registry (one atomic add per tweet or batch).
var tweetsProcessedTotal = metrics.Default().Counter(
	"redhanded_engine_tweets_processed_total",
	"Tweets processed by the execution engines.", nil)

// Source yields a stream of tweets. Next returns false when the stream is
// exhausted.
type Source interface {
	Next() (twitterdata.Tweet, bool)
}

// SliceSource streams a dataset slice.
type SliceSource struct {
	tweets []twitterdata.Tweet
	pos    int
}

// NewSliceSource wraps a dataset.
func NewSliceSource(tweets []twitterdata.Tweet) *SliceSource {
	return &SliceSource{tweets: tweets}
}

// Next implements Source.
func (s *SliceSource) Next() (twitterdata.Tweet, bool) {
	if s.pos >= len(s.tweets) {
		return twitterdata.Tweet{}, false
	}
	t := s.tweets[s.pos]
	s.pos++
	return t, true
}

// MixedSource interleaves a finite labeled dataset uniformly into an
// endless unlabeled stream, producing exactly Total tweets — the workload
// of the scalability experiments ("a fixed number of unlabeled tweets
// intermixed with the 86k labeled tweets").
type MixedSource struct {
	labeled   []twitterdata.Tweet
	unlabeled *twitterdata.UnlabeledSource
	total     int64
	emitted   int64
	nextLab   int
}

// NewMixedSource builds the mixture. Labeled tweets are spread evenly over
// the total stream length.
func NewMixedSource(labeled []twitterdata.Tweet, unlabeled *twitterdata.UnlabeledSource, total int64) *MixedSource {
	return &MixedSource{labeled: labeled, unlabeled: unlabeled, total: total}
}

// Next implements Source.
func (m *MixedSource) Next() (twitterdata.Tweet, bool) {
	if m.emitted >= m.total {
		return twitterdata.Tweet{}, false
	}
	m.emitted++
	// Emit the next labeled tweet when its scheduled position arrives.
	if m.nextLab < len(m.labeled) {
		due := int64(m.nextLab+1) * m.total / int64(len(m.labeled)+1)
		if m.emitted >= due {
			t := m.labeled[m.nextLab]
			m.nextLab++
			return t, true
		}
	}
	return m.unlabeled.Next(), true
}

// LimitSource caps another source at n tweets.
type LimitSource struct {
	src  Source
	n    int64
	done int64
}

// NewLimitSource wraps src, yielding at most n tweets.
func NewLimitSource(src Source, n int64) *LimitSource {
	return &LimitSource{src: src, n: n}
}

// Next implements Source.
func (l *LimitSource) Next() (twitterdata.Tweet, bool) {
	if l.done >= l.n {
		return twitterdata.Tweet{}, false
	}
	t, ok := l.src.Next()
	if ok {
		l.done++
	}
	return t, ok
}

// ReaderSource streams tweets from a JSONL reader, skipping malformed
// lines (counted in Malformed).
type ReaderSource struct {
	r         *twitterdata.Reader
	Malformed int64
}

// NewReaderSource wraps a twitterdata JSONL reader.
func NewReaderSource(r *twitterdata.Reader) *ReaderSource {
	return &ReaderSource{r: r}
}

// Next implements Source.
func (s *ReaderSource) Next() (twitterdata.Tweet, bool) {
	for {
		t, err := s.r.Read()
		if err == nil {
			return t, true
		}
		if err == io.EOF {
			return twitterdata.Tweet{}, false
		}
		s.Malformed++
	}
}

// unlabeledAdapter lets *twitterdata.UnlabeledSource (endless) act as a
// Source.
type unlabeledAdapter struct{ src *twitterdata.UnlabeledSource }

// NewUnlabeledAdapter wraps the endless generator source.
func NewUnlabeledAdapter(src *twitterdata.UnlabeledSource) Source {
	return unlabeledAdapter{src: src}
}

func (u unlabeledAdapter) Next() (twitterdata.Tweet, bool) { return u.src.Next(), true }

// Stats summarises one engine run.
type Stats struct {
	// Processed is the number of tweets run through the pipeline.
	Processed int64
	// Duration is the wall-clock execution time.
	Duration time.Duration
	// Batches is the number of micro-batches executed (0 for sequential).
	Batches int
	// MeanBatchLatency and MaxBatchLatency describe per-micro-batch
	// processing time — the framework's alerting delay bound (alerts for
	// a tweet are raised at the end of its batch).
	MeanBatchLatency time.Duration
	MaxBatchLatency  time.Duration

	// Cluster-engine wire accounting (zero for local engines).
	// BroadcastBytes counts model/stats/vocab frames; with delta broadcasts
	// an unchanged model and vocabulary cost a few bytes per batch instead
	// of a full re-broadcast. DataBytes counts tweet shares.
	BroadcastBytes int64
	DataBytes      int64
	// Failovers counts shares reassigned after an executor died mid-batch;
	// Resyncs counts NeedResync full re-broadcasts; Reconnects counts
	// executors that came back after a mid-run failure.
	Failovers  int64
	Resyncs    int64
	Reconnects int64

	// Drift telemetry for this run (models with drift detectors, e.g. the
	// ARF's per-member ADWIN pairs; zero for other models). Warnings counts
	// background trees started, Drifts counts detector signals, and
	// TreeReplacements counts member trees swapped out.
	Warnings         int64
	Drifts           int64
	TreeReplacements int64

	// User-state cardinality: records tracked by the pipeline's userstate
	// store when the run finished (sessions, offense histories, escalation
	// scores), plus records the store evicted to stay within its cap/TTL.
	ActiveUsers   int64
	UserEvictions int64
}

// Throughput returns tweets per second.
func (s Stats) Throughput() float64 {
	if s.Duration <= 0 {
		return 0
	}
	return float64(s.Processed) / s.Duration.Seconds()
}

// latencyTracker accumulates per-batch latencies.
type latencyTracker struct {
	total time.Duration
	max   time.Duration
	n     int
}

func (l *latencyTracker) add(d time.Duration) {
	l.total += d
	if d > l.max {
		l.max = d
	}
	l.n++
}

func (l *latencyTracker) fill(s *Stats) {
	if l.n == 0 {
		return
	}
	s.MeanBatchLatency = l.total / time.Duration(l.n)
	s.MaxBatchLatency = l.max
}

// RateLimitedSource throttles another source to a fixed arrival rate in
// tweets/second, simulating a live stream (e.g. the ~9k tweets/s Twitter
// Firehose) for end-to-end latency experiments.
type RateLimitedSource struct {
	src     Source
	perItem time.Duration
	next    time.Time
}

// NewRateLimitedSource wraps src at the given arrival rate (tweets/sec).
func NewRateLimitedSource(src Source, rate float64) *RateLimitedSource {
	if rate <= 0 {
		rate = 1
	}
	return &RateLimitedSource{src: src, perItem: time.Duration(float64(time.Second) / rate)}
}

// Next implements Source, sleeping as needed to honour the arrival rate.
func (r *RateLimitedSource) Next() (twitterdata.Tweet, bool) {
	now := time.Now()
	if r.next.IsZero() {
		r.next = now
	}
	if wait := r.next.Sub(now); wait > 0 {
		time.Sleep(wait)
	}
	r.next = r.next.Add(r.perItem)
	return r.src.Next()
}

// captureUsers fills a Stats with the pipeline store's user cardinality
// and eviction counts at the end of a run.
func captureUsers(p *core.Pipeline, s *Stats) {
	users := p.Users()
	s.ActiveUsers = int64(users.Len())
	capEv, ttlEv := users.Evictions()
	s.UserEvictions = capEv + ttlEv
}

// captureDrift snapshots the pipeline model's drift telemetry and returns
// a closure that fills a Stats with the counters accumulated since the
// snapshot — so every engine reports the drift activity of its own run,
// even on a pipeline that has already lived through earlier runs.
func captureDrift(p *core.Pipeline) func(*Stats) {
	dr, ok := p.Model().(stream.DriftReporter)
	if !ok {
		return func(*Stats) {}
	}
	before := dr.DriftStats()
	return func(s *Stats) {
		after := dr.DriftStats()
		s.Warnings = after.Warnings - before.Warnings
		s.Drifts = after.Drifts - before.Drifts
		s.TreeReplacements = after.TreeReplacements - before.TreeReplacements
	}
}

// RunSequential executes the pipeline one tweet at a time on the calling
// goroutine — the MOA execution model (single-threaded ML engine without
// parallelized processing).
func RunSequential(p *core.Pipeline, src Source) Stats {
	start := time.Now()
	driftDone := captureDrift(p)
	var n int64
	for {
		t, ok := src.Next()
		if !ok {
			break
		}
		p.Process(&t)
		n++
		tweetsProcessedTotal.Inc()
	}
	stats := Stats{Processed: n, Duration: time.Since(start)}
	driftDone(&stats)
	captureUsers(p, &stats)
	return stats
}
