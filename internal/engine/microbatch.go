package engine

import (
	"fmt"
	"sync"
	"time"

	"redhanded/internal/core"
	"redhanded/internal/feature"
	"redhanded/internal/ml"
	"redhanded/internal/norm"
	"redhanded/internal/stream"
	"redhanded/internal/twitterdata"
)

// MicroBatchConfig configures the Spark-Streaming-style engine.
type MicroBatchConfig struct {
	// BatchSize is the micro-batch length in tweets (default 1000).
	BatchSize int
	// Partitions is how many data partitions each batch is split into
	// (default = Workers).
	Partitions int
	// Workers is the parallel task slots (default 1 — SparkSingle).
	Workers int
	// EmulateBroadcast performs the per-batch global-model serialization
	// round trip that Spark's broadcast mechanism implies (default true;
	// models that do not support serialization skip it). This is the
	// micro-batch management overhead that makes SparkSingle ~7-17% slower
	// than MOA in Fig. 15.
	EmulateBroadcast bool
}

func (c MicroBatchConfig) withDefaults() MicroBatchConfig {
	if c.BatchSize <= 0 {
		c.BatchSize = 1000
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.Partitions <= 0 {
		c.Partitions = c.Workers
	}
	return c
}

// SparkSingleConfig mimics single-threaded Spark execution.
func SparkSingleConfig() MicroBatchConfig {
	return MicroBatchConfig{BatchSize: 1000, Partitions: 1, Workers: 1, EmulateBroadcast: true}
}

// SparkLocalConfig mimics one multi-threaded Spark worker with the given
// core count (the paper's machines have 8 cores).
func SparkLocalConfig(cores int) MicroBatchConfig {
	return MicroBatchConfig{BatchSize: 1000, Partitions: cores, Workers: cores, EmulateBroadcast: true}
}

// classifiedRec is one prediction outcome produced by a task.
// It rides inside batchResponse, so it is wire-format-sensitive too.
//
//redvet:wire
type classifiedRec struct {
	Idx   int // position within the batch
	Label int
	Pred  int
	Conf  float64
}

// partitionResult is what one parallel task returns to the driver.
type partitionResult struct {
	part       int
	stats      *norm.FeatureStats
	acc        ml.Accumulator
	classified []classifiedRec
}

// RunMicroBatch executes the pipeline with micro-batch parallelism (Fig. 2
// of the paper). Each batch runs in two parallel phases: (1) feature
// extraction plus normalizer-statistics accumulation, merged at the
// driver; (2) normalization against the updated statistics, prediction
// with the batch-start global model, and training-delta accumulation. The
// driver then merges the model deltas and performs the sequential
// alerting/sampling/evaluation steps.
func RunMicroBatch(p *core.Pipeline, src Source, cfg MicroBatchConfig) (Stats, error) {
	cfg = cfg.withDefaults()
	start := time.Now()
	var stats Stats
	var lat latencyTracker
	driftDone := captureDrift(p)

	tasks := make(chan taskMsg, cfg.Workers)
	var workerWG sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		workerWG.Add(1)
		go func() {
			defer workerWG.Done()
			for t := range tasks {
				t.fn()
				t.done.Done()
			}
		}()
	}
	defer func() {
		close(tasks)
		workerWG.Wait()
	}()

	batch := make([]twitterdata.Tweet, 0, cfg.BatchSize)
	// snapCache carries the compiled classify snapshot across batches so
	// each batch re-flattens only the member trees the previous batch's
	// training changed.
	var snapCache *stream.Compiled
	for {
		batch = batch[:0]
		for len(batch) < cfg.BatchSize {
			t, ok := src.Next()
			if !ok {
				break
			}
			batch = append(batch, t)
		}
		if len(batch) == 0 {
			break
		}
		batchStart := time.Now()
		if err := runOneBatch(p, batch, cfg, tasks, &snapCache); err != nil {
			return stats, err
		}
		lat.add(time.Since(batchStart))
		stats.Processed += int64(len(batch))
		tweetsProcessedTotal.Add(int64(len(batch)))
		stats.Batches++
		if len(batch) < cfg.BatchSize {
			break
		}
	}
	stats.Duration = time.Since(start)
	lat.fill(&stats)
	driftDone(&stats)
	captureUsers(p, &stats)
	return stats, nil
}

// taskMsg is one unit of work dispatched to the shared worker pool.
type taskMsg struct {
	fn   func()
	done *sync.WaitGroup
}

func runOneBatch(p *core.Pipeline, batch []twitterdata.Tweet, cfg MicroBatchConfig, tasks chan taskMsg, snapCache **stream.Compiled) error {
	model := p.Model()

	// Emulated Spark broadcast: serialize the global model and restore it,
	// paying the real encode/decode cost without changing state.
	if cfg.EmulateBroadcast {
		if rm, ok := model.(stream.RemoteTrainable); ok {
			blob, err := rm.MarshalBinary()
			if err != nil {
				return fmt.Errorf("engine: broadcast marshal: %w", err)
			}
			if err := rm.UnmarshalBinary(blob); err != nil {
				return fmt.Errorf("engine: broadcast unmarshal: %w", err)
			}
		}
	}

	scheme := p.Options().Scheme
	extractor := p.Extractor()

	parts := cfg.Partitions
	if parts > len(batch) {
		parts = len(batch)
	}

	// Phase 1 (parallel): extract raw features into pooled vectors,
	// accumulate statistics. The vectors are released after phase 2.
	raws := make([]*feature.Vec, len(batch))
	labels := make([]int, len(batch))
	statsDeltas := make([]*norm.FeatureStats, parts)
	var wg sync.WaitGroup
	for part := 0; part < parts; part++ {
		part := part
		wg.Add(1)
		tasks <- taskMsg{done: &wg, fn: func() {
			delta := norm.NewFeatureStats(p.Normalizer().Stats.Dim())
			for idx := part; idx < len(batch); idx += parts {
				tw := &batch[idx]
				raws[idx] = feature.GetVec()
				extractor.ExtractInto(raws[idx][:], tw)
				delta.Observe(raws[idx][:])
				labels[idx] = ml.Unlabeled
				if tw.IsLabeled() {
					labels[idx] = scheme.LabelIndex(tw.Label)
				}
			}
			statsDeltas[part] = delta
		}}
	}
	wg.Wait()
	for _, delta := range statsDeltas {
		p.Normalizer().Stats.Merge(delta)
	}

	// Phase 2 (parallel): normalize with the updated statistics, predict
	// with the batch-start model, accumulate training deltas. Prediction
	// goes through the compiled form of the batch-start model: the
	// snapshot is immutable, so partition tasks share it without
	// coordination, and the cross-batch cache re-flattens only the member
	// trees the previous batch's merge changed. (Broadcast emulation
	// rebuilds every node, so with EmulateBroadcast on the recompile is
	// necessarily full — the real serialization cost being modeled.)
	var csnap *stream.Compiled
	if cm, ok := model.(stream.Compilable); ok && !p.Options().DisableCompiledSnapshots {
		csnap = cm.CompileSnapshot(*snapCache)
		*snapCache = csnap
	}
	snapshot := &norm.Normalizer{Mode: p.Normalizer().Mode, Stats: p.Normalizer().Stats.Clone()}
	results := make([]partitionResult, parts)
	for part := 0; part < parts; part++ {
		part := part
		wg.Add(1)
		tasks <- taskMsg{done: &wg, fn: func() {
			res := partitionResult{part: part, acc: model.NewAccumulator()}
			var votesBuf ml.Prediction
			var scratch []float64
			if csnap != nil {
				votesBuf = make(ml.Prediction, csnap.NumClasses())
				scratch = make([]float64, csnap.ScratchLen())
			}
			for idx := part; idx < len(batch); idx += parts {
				x := snapshot.Normalize(raws[idx][:], nil)
				var votes ml.Prediction
				if csnap != nil {
					csnap.PredictInto(votesBuf, scratch, x)
					votes = votesBuf
				} else {
					votes = model.Predict(x)
				}
				label := labels[idx]
				if label >= 0 {
					res.acc.Observe(ml.Instance{
						X: x, Label: label, Weight: 1,
						ID: batch[idx].IDStr, Day: batch[idx].Day,
					})
				}
				res.classified = append(res.classified, classifiedRec{
					Idx: idx, Label: label, Pred: votes.ArgMax(), Conf: votes.Confidence(),
				})
			}
			results[part] = res
		}}
	}
	wg.Wait()

	for _, v := range raws {
		feature.PutVec(v)
	}

	// Driver-side merge in deterministic partition order.
	accs := make([]ml.Accumulator, 0, parts)
	outcomes := make([]core.Outcome, len(batch))
	for _, res := range results {
		accs = append(accs, res.acc)
		for _, c := range res.classified {
			outcomes[c.Idx] = core.Outcome{Label: c.Label, Pred: c.Pred, Conf: c.Conf}
		}
	}
	model.ApplyAccumulators(accs)
	p.AbsorbBatch(batch, outcomes)
	return nil
}
