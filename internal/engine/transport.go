package engine

import (
	"net"
	"sync/atomic"

	"redhanded/internal/twitterdata"
)

// The cluster wire protocol (v3). Each driver→executor connection carries a
// gob stream of wireMsg frames; the executor answers data frames (and the
// hello) with batchResponse frames. Compared to the v1 protocol — one
// monolithic request per batch re-broadcasting the full model, normalizer
// statistics, and BoW vocabulary every time — v2 split a batch into:
//
//	hello      one per connection: protocol + model-kind negotiation (the
//	           kind set comes from the stream codec registry, so a driver
//	           running a model this executor build cannot decode fails
//	           fast at connect)
//	broadcast  one per (node, batch): stats always; model state only when
//	           its hash changed; vocabulary as an append-only diff against
//	           the version the node acknowledged (the adaptive BoW mostly
//	           grows, Fig. 10, so the steady-state diff is empty)
//	data       one per share: the tweets plus the share's [lo,hi) bounds
//	shutdown   polite end-of-run so executors drop the session cleanly
//
// and v3 adds per-part model elision: a stream.PartitionedModel (the ARF)
// broadcasts as a header plus per-member parts, each hashed independently,
// so a batch in which only a drift-replaced or freshly grown member changed
// ships that member alone instead of the whole forest.
//
// Splitting broadcast from data is what enables pipelining: the driver
// encodes and ships batch k+1's tweets while batch k's round trip is still
// in flight, and sends k+1's broadcast only after k's deltas are merged —
// preserving the test-then-train ordering the driver-side merge requires.
// The version handshake (ModelHash, VocabBase→VocabVersion) lets a
// reconnecting executor resync from scratch: the driver resets its per-node
// bookkeeping on every (re)connect, and an executor that receives a delta
// it has no base for answers NeedResync instead of guessing.

// clusterProtoVersion is negotiated in the hello exchange; mismatched
// driver/executor builds fail fast instead of mis-decoding frames.
const clusterProtoVersion = 3

// Message kinds carried in wireMsg.Kind.
const (
	msgHello uint8 = iota + 1
	msgBroadcast
	msgData
	msgShutdown
)

// wireMsg is every driver→executor frame. gob omits zero-valued fields, so
// a data frame costs nothing for the broadcast fields and vice versa.
//
//redvet:wire
type wireMsg struct {
	Kind uint8
	Seq  int64

	// Hello fields.
	Proto     int
	ModelKind string

	// Broadcast fields.
	ModelHash uint64 // stream.Hash64 of the serialized global model
	ModelBlob []byte // monolithic kinds; omitted when the executor already holds ModelHash

	// Partitioned kinds (stream.PartitionedModel) broadcast a header plus
	// per-part blobs instead of ModelBlob. ModelFull marks a complete part
	// set (fresh restore); otherwise ModelParts carries only the parts at
	// ModelPartIdx, patched onto the model the session already holds.
	ModelHeader  []byte
	ModelPartIdx []int
	ModelParts   [][]byte
	ModelFull    bool

	StatsBlob    []byte // normalizer statistics (always full; they change every batch)
	VocabBase    uint64 // vocab version the words extend (0 = full replacement)
	VocabVersion uint64 // vocab version after applying this message
	VocabWords   []string
	Preprocess   bool
	NormMode     int
	Scheme       int

	// Data fields. Lo/Hi are the share's offsets within the driver's batch;
	// they key the response back to the share even after failover reassigns
	// it, and distinguish fresh shares from stale pre-sent ones whose
	// boundaries changed when the healthy-node set did.
	Lo, Hi int
	Tasks  int
	Tweets []twitterdata.Tweet

	// TraceID carries the driver's batch-span trace context (0 when driver
	// tracing is off, and on pre-sent frames, which ship before their batch
	// span exists). gob elides zero fields and ignores unknown ones, so the
	// field is compatible in both directions with executors that predate it
	// — the protocol version stays 3.
	TraceID uint64
}

// batchResponse is the executor→driver frame: the hello ack (Seq < 0) or
// one share's results.
//
//redvet:wire
type batchResponse struct {
	Seq    int64
	Lo, Hi int

	// Hello-ack fields.
	Proto int

	// NeedResync reports that the executor cannot apply the broadcast it
	// was sent (unknown model hash or vocabulary base); the driver answers
	// by resending the full state.
	NeedResync bool

	// Share results.
	DeltaBlobs [][]byte
	StatsBlob  []byte
	Classified []classifiedRec
	Err        string

	// Trace echo: the data frame's TraceID and the executor-side wall time
	// spent computing the share (extraction through delta encode). The
	// driver attributes ExecNanos to the batch span's executor_compute
	// stage — the share round trip's wall time minus this is wire and
	// queueing cost. Old executors leave both zero (gob omits them), which
	// the driver treats as "no attribution available".
	TraceID   uint64
	ExecNanos int64
}

// respKey addresses one share exchange on a connection.
type respKey struct {
	seq    int64
	lo, hi int
}

// span is one contiguous share of a batch.
type span struct{ lo, hi int }

// splitSpans divides n items contiguously across k shares (the last shares
// may be empty when k does not divide n).
func splitSpans(n, k int) []span {
	if k < 1 {
		k = 1
	}
	per := (n + k - 1) / k
	out := make([]span, k)
	for i := 0; i < k; i++ {
		lo, hi := i*per, i*per+per
		if lo > n {
			lo = n
		}
		if hi > n {
			hi = n
		}
		out[i] = span{lo, hi}
	}
	return out
}

// countingConn counts bytes written, so the driver can attribute wire cost
// to broadcast vs data frames (sends are serialized per node, making the
// before/after snapshot attribution exact).
type countingConn struct {
	net.Conn
	out atomic.Int64
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.out.Add(int64(n))
	return n, err
}
