package engine

import (
	"encoding/gob"
	"math"
	"net"
	"strings"
	"testing"

	"redhanded/internal/core"
)

// startCluster launches n in-process executors on loopback TCP and returns
// their addresses plus a cleanup function.
func startCluster(t *testing.T, n, workers int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		ex, err := StartExecutor("127.0.0.1:0", workers)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ex.Close() })
		addrs[i] = ex.Addr()
	}
	return addrs
}

func TestClusterMatchesLocalQuality(t *testing.T) {
	data := testDataset(11, 5000, 2500, 500)
	local := core.NewPipeline(testOptions())
	if _, err := RunMicroBatch(local, NewSliceSource(data), SparkLocalConfig(4)); err != nil {
		t.Fatal(err)
	}

	addrs := startCluster(t, 3, 4)
	clustered := core.NewPipeline(testOptions())
	stats, err := RunCluster(clustered, NewSliceSource(data), ClusterConfig{
		Executors: addrs, BatchSize: 1000, TasksPerExecutor: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Processed != int64(len(data)) {
		t.Fatalf("cluster processed %d, want %d", stats.Processed, len(data))
	}
	fLocal, fCluster := local.Summary().F1, clustered.Summary().F1
	if math.Abs(fLocal-fCluster) > 0.03 {
		t.Fatalf("cluster F1 %v too far from local %v", fCluster, fLocal)
	}
	if clustered.Summary().Instances != local.Summary().Instances {
		t.Fatalf("instance counts differ: cluster %d local %d",
			clustered.Summary().Instances, local.Summary().Instances)
	}
}

func TestClusterDistributesWork(t *testing.T) {
	exs := make([]*Executor, 3)
	addrs := make([]string, 3)
	for i := range exs {
		ex, err := StartExecutor("127.0.0.1:0", 2)
		if err != nil {
			t.Fatal(err)
		}
		defer ex.Close()
		exs[i] = ex
		addrs[i] = ex.Addr()
	}
	data := testDataset(12, 1200, 600, 120)
	p := core.NewPipeline(testOptions())
	if _, err := RunCluster(p, NewSliceSource(data), ClusterConfig{
		Executors: addrs, BatchSize: 600, TasksPerExecutor: 2,
	}); err != nil {
		t.Fatal(err)
	}
	for i, ex := range exs {
		if ex.Handled() == 0 {
			t.Fatalf("executor %d handled no batches", i)
		}
	}
}

func TestClusterSLR(t *testing.T) {
	addrs := startCluster(t, 2, 2)
	data := testDataset(13, 3000, 1500, 300)
	opts := testOptions()
	opts.Model = core.ModelSLR
	p := core.NewPipeline(opts)
	if _, err := RunCluster(p, NewSliceSource(data), ClusterConfig{
		Executors: addrs, BatchSize: 500, TasksPerExecutor: 2,
	}); err != nil {
		t.Fatal(err)
	}
	if f1 := p.Summary().F1; f1 < 0.75 {
		t.Fatalf("cluster SLR F1 = %v, want >= 0.75", f1)
	}
}

func TestClusterARF(t *testing.T) {
	addrs := startCluster(t, 2, 2)
	data := testDataset(14, 3000, 1500, 300)
	opts := testOptions()
	opts.Model = core.ModelARF
	opts.ARF.EnsembleSize = 5
	p := core.NewPipeline(opts)
	if _, err := RunCluster(p, NewSliceSource(data), ClusterConfig{
		Executors: addrs, BatchSize: 500, TasksPerExecutor: 2,
	}); err != nil {
		t.Fatal(err)
	}
	if f1 := p.Summary().F1; f1 < 0.75 {
		t.Fatalf("cluster ARF F1 = %v, want >= 0.75", f1)
	}
}

func TestClusterRejectsUnknownKind(t *testing.T) {
	ex, err := StartExecutor("127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	conn, err := net.Dial("tcp", ex.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc, dec := gob.NewEncoder(conn), gob.NewDecoder(conn)
	if err := enc.Encode(&wireMsg{Kind: msgHello, Seq: -1, Proto: clusterProtoVersion, ModelKind: "XGB"}); err != nil {
		t.Fatal(err)
	}
	var ack batchResponse
	if err := dec.Decode(&ack); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ack.Err, "XGB") {
		t.Fatalf("unregistered model kind accepted: %+v", ack)
	}
}

func TestClusterNoExecutors(t *testing.T) {
	p := core.NewPipeline(testOptions())
	if _, err := RunCluster(p, NewSliceSource(nil), ClusterConfig{}); err == nil {
		t.Fatalf("empty executor list accepted")
	}
}

func TestClusterExecutorFailureSurfaces(t *testing.T) {
	ex, err := StartExecutor("127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	addr := ex.Addr()
	ex.Close() // kill before the driver connects
	p := core.NewPipeline(testOptions())
	_, err = RunCluster(p, NewSliceSource(testDataset(15, 100, 50, 10)), ClusterConfig{
		Executors: []string{addr},
	})
	if err == nil {
		t.Fatalf("dead executor not reported")
	}
}

func TestClusterExecutorDiesMidRun(t *testing.T) {
	ex, err := StartExecutor("127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	data := testDataset(16, 3000, 1500, 300)
	p := core.NewPipeline(testOptions())
	// Kill the executor while the driver is mid-stream.
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, err := RunCluster(p, NewSliceSource(data), ClusterConfig{
			Executors: []string{ex.Addr()}, BatchSize: 200, TasksPerExecutor: 2,
		})
		if err == nil {
			t.Errorf("driver did not surface the executor failure")
		}
	}()
	ex.Close()
	<-done
}

func TestClusterDialUnreachable(t *testing.T) {
	p := core.NewPipeline(testOptions())
	_, err := RunCluster(p, NewSliceSource(nil), ClusterConfig{
		Executors: []string{"127.0.0.1:1"}, // reserved port, nothing listening
	})
	if err == nil {
		t.Fatalf("unreachable executor not reported")
	}
}
