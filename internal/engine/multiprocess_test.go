package engine

import (
	"bufio"
	"os/exec"
	"path/filepath"
	"regexp"
	"testing"
	"time"

	"redhanded/internal/core"
)

// TestClusterMultiProcess drives real executor processes (cmd/rhexecutor)
// over TCP — the fully cross-process version of the SparkCluster setup.
func TestClusterMultiProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process cluster test is slow")
	}
	bin := filepath.Join(t.TempDir(), "rhexecutor")
	build := exec.Command("go", "build", "-o", bin, "redhanded/cmd/rhexecutor")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building rhexecutor: %v\n%s", err, out)
	}

	// rhexecutor logs through slog with the bound address as a structured
	// attr: msg="executor listening" executor=127.0.0.1:NNNNN workers=2.
	addrRe := regexp.MustCompile(`executor=(\S+)`)
	var addrs []string
	for i := 0; i < 2; i++ {
		cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-workers", "2")
		stderr, err := cmd.StderrPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			cmd.Process.Kill()
			cmd.Wait()
		})

		addrCh := make(chan string, 1)
		go func() {
			sc := bufio.NewScanner(stderr)
			for sc.Scan() {
				if m := addrRe.FindStringSubmatch(sc.Text()); m != nil {
					addrCh <- m[1]
					return
				}
			}
		}()
		select {
		case addr := <-addrCh:
			addrs = append(addrs, addr)
		case <-time.After(10 * time.Second):
			t.Fatalf("executor %d did not report its address", i)
		}
	}

	data := testDataset(21, 2000, 1000, 200)
	p := core.NewPipeline(testOptions())
	stats, err := RunCluster(p, NewSliceSource(data), ClusterConfig{
		Executors: addrs, BatchSize: 800, TasksPerExecutor: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Processed != int64(len(data)) {
		t.Fatalf("processed %d, want %d", stats.Processed, len(data))
	}
	if f1 := p.Summary().F1; f1 < 0.75 {
		t.Fatalf("multi-process cluster F1 = %v, want >= 0.75", f1)
	}
	if stats.MeanBatchLatency <= 0 || stats.MaxBatchLatency < stats.MeanBatchLatency {
		t.Fatalf("latency stats malformed: %+v", stats)
	}
}

func TestRateLimitedSource(t *testing.T) {
	data := testDataset(22, 30, 15, 5)
	src := NewRateLimitedSource(NewSliceSource(data), 1000) // 1k tweets/s
	start := time.Now()
	n := 0
	for {
		_, ok := src.Next()
		if !ok {
			break
		}
		n++
	}
	elapsed := time.Since(start)
	if n != 50 {
		t.Fatalf("yielded %d tweets, want 50", n)
	}
	// 50 tweets at 1000/s should take ~50ms.
	if elapsed < 30*time.Millisecond {
		t.Fatalf("rate limit not applied: 50 tweets in %v", elapsed)
	}
}

func TestMicroBatchLatencyStats(t *testing.T) {
	data := testDataset(23, 1500, 700, 150)
	p := core.NewPipeline(testOptions())
	stats, err := RunMicroBatch(p, NewSliceSource(data), SparkSingleConfig())
	if err != nil {
		t.Fatal(err)
	}
	if stats.MeanBatchLatency <= 0 {
		t.Fatalf("mean batch latency missing: %+v", stats)
	}
	if stats.MaxBatchLatency < stats.MeanBatchLatency {
		t.Fatalf("max < mean: %+v", stats)
	}
}
