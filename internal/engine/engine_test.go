package engine

import (
	"math"
	"strings"
	"testing"

	"redhanded/internal/core"
	"redhanded/internal/twitterdata"
)

func testDataset(seed uint64, n, a, h int) []twitterdata.Tweet {
	return twitterdata.GenerateAggression(twitterdata.AggressionConfig{
		Seed: seed, Days: 10, NormalCount: n, AbusiveCount: a, HatefulCount: h,
	})
}

func testOptions() core.Options {
	opts := core.DefaultOptions()
	opts.Scheme = core.TwoClass
	return opts
}

func TestSliceSource(t *testing.T) {
	data := testDataset(1, 5, 3, 2)
	src := NewSliceSource(data)
	count := 0
	for {
		_, ok := src.Next()
		if !ok {
			break
		}
		count++
	}
	if count != 10 {
		t.Fatalf("slice source yielded %d, want 10", count)
	}
}

func TestLimitSource(t *testing.T) {
	src := NewLimitSource(NewUnlabeledAdapter(twitterdata.NewUnlabeledSource(2, 10)), 25)
	count := 0
	for {
		_, ok := src.Next()
		if !ok {
			break
		}
		count++
	}
	if count != 25 {
		t.Fatalf("limit source yielded %d, want 25", count)
	}
}

func TestMixedSourceInterleavesAll(t *testing.T) {
	labeled := testDataset(3, 50, 25, 5)
	src := NewMixedSource(labeled, twitterdata.NewUnlabeledSource(4, 10), 500)
	total, lab := 0, 0
	for {
		tw, ok := src.Next()
		if !ok {
			break
		}
		total++
		if tw.IsLabeled() {
			lab++
		}
	}
	if total != 500 {
		t.Fatalf("mixed source total = %d, want 500", total)
	}
	if lab != len(labeled) {
		t.Fatalf("mixed source labeled = %d, want %d", lab, len(labeled))
	}
}

func TestReaderSource(t *testing.T) {
	data := testDataset(30, 20, 10, 5)
	var buf strings.Builder
	w := twitterdata.NewWriter(&buf)
	for i := range data {
		if err := w.Write(data[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	// Inject malformed lines between valid ones.
	payload := "{broken\n" + buf.String() + "{also broken\n"
	src := NewReaderSource(twitterdata.NewReader(strings.NewReader(payload)))
	n := 0
	for {
		_, ok := src.Next()
		if !ok {
			break
		}
		n++
	}
	if n != len(data) {
		t.Fatalf("reader source yielded %d, want %d", n, len(data))
	}
	if src.Malformed != 2 {
		t.Fatalf("malformed count = %d, want 2", src.Malformed)
	}
}

func TestRunSequentialMatchesProcessAll(t *testing.T) {
	data := testDataset(5, 1500, 700, 150)
	p1 := core.NewPipeline(testOptions())
	p1.ProcessAll(data)
	p2 := core.NewPipeline(testOptions())
	stats := RunSequential(p2, NewSliceSource(data))
	if stats.Processed != int64(len(data)) {
		t.Fatalf("processed %d, want %d", stats.Processed, len(data))
	}
	if p1.Summary() != p2.Summary() {
		t.Fatalf("sequential engine diverged from pipeline:\n%+v\n%+v", p1.Summary(), p2.Summary())
	}
}

func TestMicroBatchSingleClosesOnSequential(t *testing.T) {
	data := testDataset(6, 12000, 6000, 1200)
	seq := core.NewPipeline(testOptions())
	RunSequential(seq, NewSliceSource(data))
	mb := core.NewPipeline(testOptions())
	stats, err := RunMicroBatch(mb, NewSliceSource(data), SparkSingleConfig())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Processed != int64(len(data)) {
		t.Fatalf("processed %d, want %d", stats.Processed, len(data))
	}
	fSeq, fMB := seq.Summary().F1, mb.Summary().F1
	// Micro-batch semantics (batch-start model for predictions, one split
	// round per merge) lag per-instance prequential early in the stream,
	// but quality must agree once the stream is long enough.
	if math.Abs(fSeq-fMB) > 0.04 {
		t.Fatalf("micro-batch F1 %v too far from sequential %v", fMB, fSeq)
	}
}

func TestMicroBatchParallelMatchesSingle(t *testing.T) {
	data := testDataset(7, 6000, 3000, 600)
	single := core.NewPipeline(testOptions())
	if _, err := RunMicroBatch(single, NewSliceSource(data), SparkSingleConfig()); err != nil {
		t.Fatal(err)
	}
	parallel := core.NewPipeline(testOptions())
	if _, err := RunMicroBatch(parallel, NewSliceSource(data), SparkLocalConfig(8)); err != nil {
		t.Fatal(err)
	}
	fS, fP := single.Summary().F1, parallel.Summary().F1
	if math.Abs(fS-fP) > 0.03 {
		t.Fatalf("parallel F1 %v too far from single %v", fP, fS)
	}
	if parallel.Summary().Instances != single.Summary().Instances {
		t.Fatalf("instance counts differ: %d vs %d",
			parallel.Summary().Instances, single.Summary().Instances)
	}
}

func TestMicroBatchDeterministicAcrossRuns(t *testing.T) {
	data := testDataset(8, 1000, 500, 100)
	run := func() float64 {
		p := core.NewPipeline(testOptions())
		if _, err := RunMicroBatch(p, NewSliceSource(data), SparkLocalConfig(4)); err != nil {
			t.Fatal(err)
		}
		return p.Summary().F1
	}
	if run() != run() {
		t.Fatalf("parallel micro-batch engine not deterministic")
	}
}

func TestMicroBatchSLR(t *testing.T) {
	data := testDataset(9, 4000, 2000, 400)
	opts := testOptions()
	opts.Model = core.ModelSLR
	p := core.NewPipeline(opts)
	if _, err := RunMicroBatch(p, NewSliceSource(data), SparkLocalConfig(4)); err != nil {
		t.Fatal(err)
	}
	if f1 := p.Summary().F1; f1 < 0.75 {
		t.Fatalf("micro-batch SLR F1 = %v, want >= 0.75", f1)
	}
}

func TestMicroBatchARFWithoutBroadcast(t *testing.T) {
	// ARF does not implement RemoteTrainable; broadcast emulation must be
	// skipped silently and training must still work in-process.
	data := testDataset(10, 3000, 1500, 300)
	opts := testOptions()
	opts.Model = core.ModelARF
	opts.ARF.EnsembleSize = 3
	p := core.NewPipeline(opts)
	if _, err := RunMicroBatch(p, NewSliceSource(data), SparkLocalConfig(4)); err != nil {
		t.Fatal(err)
	}
	if f1 := p.Summary().F1; f1 < 0.7 {
		t.Fatalf("micro-batch ARF F1 = %v, want >= 0.7", f1)
	}
}

func TestMicroBatchEmptySource(t *testing.T) {
	p := core.NewPipeline(testOptions())
	stats, err := RunMicroBatch(p, NewSliceSource(nil), SparkSingleConfig())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Processed != 0 || stats.Batches != 0 {
		t.Fatalf("empty source stats: %+v", stats)
	}
}

func TestStatsThroughput(t *testing.T) {
	s := Stats{Processed: 1000, Duration: 2e9}
	if tp := s.Throughput(); math.Abs(tp-500) > 1e-9 {
		t.Fatalf("throughput = %v, want 500", tp)
	}
	if (Stats{}).Throughput() != 0 {
		t.Fatalf("zero-duration throughput should be 0")
	}
}
