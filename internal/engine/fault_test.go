package engine

import (
	"encoding/gob"
	"net"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"redhanded/internal/core"
	"redhanded/internal/norm"
	"redhanded/internal/stream"
	"redhanded/internal/twitterdata"
)

// fastReconnect keeps fault tests snappy: failed executors are abandoned
// after a few quick attempts.
func fastReconnect(cfg ClusterConfig) ClusterConfig {
	cfg.MaxConnAttempts = 3
	cfg.ReconnectBackoff = 10 * time.Millisecond
	cfg.AllDownWait = 2 * time.Second
	return cfg
}

// waitHandled polls until the executor served at least n shares.
func waitHandled(t *testing.T, ex *Executor, n int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for ex.Handled() < n {
		if time.Now().After(deadline) {
			t.Fatalf("executor stuck at %d shares, want >= %d", ex.Handled(), n)
		}
		time.Sleep(time.Millisecond)
	}
}

// crashOnShare arms an executor to die abruptly (no drain) at the start of
// its nth share, guaranteeing the driver loses that share mid-batch.
func crashOnShare(ex *Executor, nth int64) {
	var calls atomic.Int64
	ex.mu.Lock()
	ex.shareHook = func() {
		if calls.Add(1) == nth {
			ex.kill()
		}
	}
	ex.mu.Unlock()
}

// TestClusterSurvivesExecutorKill kills one of three executors mid-run:
// the run must complete with no lost tweets, the dead node's shares
// failing over to the survivors.
func TestClusterSurvivesExecutorKill(t *testing.T) {
	exs := make([]*Executor, 3)
	addrs := make([]string, 3)
	for i := range exs {
		ex, err := StartExecutor("127.0.0.1:0", 2)
		if err != nil {
			t.Fatal(err)
		}
		defer ex.Close()
		exs[i] = ex
		addrs[i] = ex.Addr()
	}
	data := testDataset(31, 6000, 3000, 600)
	p := core.NewPipeline(testOptions())
	// Crash (no drain) at the start of the executor's 4th share: the driver
	// loses that share mid-batch and must reassign it to the survivors.
	crashOnShare(exs[0], 4)
	stats, err := RunCluster(p, NewSliceSource(data), fastReconnect(ClusterConfig{
		Executors: addrs, BatchSize: 600, TasksPerExecutor: 2,
	}))
	if err != nil {
		t.Fatalf("run did not survive the kill: %v", err)
	}
	if stats.Processed != int64(len(data)) {
		t.Fatalf("processed %d tweets, want %d (lost work)", stats.Processed, len(data))
	}
	if stats.Failovers == 0 {
		t.Fatal("no failover recorded despite a mid-run kill")
	}
	if f1 := p.Summary().F1; f1 < 0.75 {
		t.Fatalf("post-failover F1 = %v, want >= 0.75", f1)
	}
}

// TestClusterFailoverMatchesSequential is the end-to-end equivalence
// proof: a 3-executor cluster run that loses a node mid-stream produces
// exactly the sequential engine's confusion matrix. The configuration is
// chosen so every step is bit-exact: batch size 1 with one task makes the
// cluster's batch semantics collapse to test-then-train per tweet; SLR's
// single-accumulator apply equals its sequential SGD step; and min-max
// normalization merges ranges exactly. Failover cannot perturb any of it
// because a share's outcome depends only on the broadcast state.
func TestClusterFailoverMatchesSequential(t *testing.T) {
	opts := testOptions()
	opts.Model = core.ModelSLR
	opts.Normalization = norm.MinMax
	data := testDataset(32, 700, 350, 70)

	seq := core.NewPipeline(opts)
	RunSequential(seq, NewSliceSource(data))

	exs := make([]*Executor, 3)
	addrs := make([]string, 3)
	for i := range exs {
		ex, err := StartExecutor("127.0.0.1:0", 1)
		if err != nil {
			t.Fatal(err)
		}
		defer ex.Close()
		exs[i] = ex
		addrs[i] = ex.Addr()
	}
	clustered := core.NewPipeline(opts)
	// With batch size 1 every share lands on the first healthy node, so
	// crashing it mid-share forces all later tweets through failover.
	crashOnShare(exs[0], 100)
	stats, err := RunCluster(clustered, NewSliceSource(data), fastReconnect(ClusterConfig{
		Executors: addrs, BatchSize: 1, TasksPerExecutor: 1,
	}))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Processed != int64(len(data)) {
		t.Fatalf("processed %d, want %d", stats.Processed, len(data))
	}
	if stats.Failovers == 0 {
		t.Fatal("kill did not exercise failover")
	}

	mSeq, mCl := seq.Evaluator().Matrix(), clustered.Evaluator().Matrix()
	if mSeq.Total() != mCl.Total() {
		t.Fatalf("instances differ: sequential %d, cluster %d", mSeq.Total(), mCl.Total())
	}
	for i := 0; i < mSeq.NumClasses(); i++ {
		for j := 0; j < mSeq.NumClasses(); j++ {
			if mSeq.Count(i, j) != mCl.Count(i, j) {
				t.Errorf("confusion[%d][%d]: sequential %d, cluster-with-failover %d",
					i, j, mSeq.Count(i, j), mCl.Count(i, j))
			}
		}
	}
	if got, want := clustered.Summary(), seq.Summary(); got != want {
		t.Errorf("prequential report differs:\ncluster    %+v\nsequential %+v", got, want)
	}
	if got, want := clustered.Extractor().BoW().Size(), seq.Extractor().BoW().Size(); got != want {
		t.Errorf("BoW size differs: cluster %d, sequential %d", got, want)
	}
}

// TestClusterARFMatchesSequential extends the equivalence proof to the
// Adaptive Random Forest: a seeded 3-executor ARF run (batch size 1, one
// task) that loses an executor mid-stream reproduces the sequential
// engine's confusion matrix bit-for-bit. What makes this exact:
// counter-based bagging weights (the same logical instance draws the same
// Poisson weight on any node, including a failover re-run), the
// train-then-detect member ordering the merge replays, Chan-merge
// arithmetic shared by Train and the accumulator path, and gated detectors
// so the sequential ADWIN path equals the gated batch replay.
func TestClusterARFMatchesSequential(t *testing.T) {
	opts := testOptions()
	opts.Model = core.ModelARF
	opts.Normalization = norm.MinMax
	opts.ARF = stream.ARFConfig{EnsembleSize: 3, Seed: 5, GateOnErrorIncrease: true}
	data := testDataset(41, 500, 250, 50)

	seq := core.NewPipeline(opts)
	seqStats := RunSequential(seq, NewSliceSource(data))

	exs := make([]*Executor, 3)
	addrs := make([]string, 3)
	for i := range exs {
		ex, err := StartExecutor("127.0.0.1:0", 1)
		if err != nil {
			t.Fatal(err)
		}
		defer ex.Close()
		exs[i] = ex
		addrs[i] = ex.Addr()
	}
	clustered := core.NewPipeline(opts)
	// With batch size 1 every share lands on the first healthy node, so
	// crashing it mid-share forces all later tweets through failover.
	crashOnShare(exs[0], 120)
	stats, err := RunCluster(clustered, NewSliceSource(data), fastReconnect(ClusterConfig{
		Executors: addrs, BatchSize: 1, TasksPerExecutor: 1,
	}))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Processed != int64(len(data)) {
		t.Fatalf("processed %d, want %d", stats.Processed, len(data))
	}
	if stats.Failovers == 0 {
		t.Fatal("kill did not exercise failover")
	}

	mSeq, mCl := seq.Evaluator().Matrix(), clustered.Evaluator().Matrix()
	if mSeq.Total() != mCl.Total() {
		t.Fatalf("instances differ: sequential %d, cluster %d", mSeq.Total(), mCl.Total())
	}
	for i := 0; i < mSeq.NumClasses(); i++ {
		for j := 0; j < mSeq.NumClasses(); j++ {
			if mSeq.Count(i, j) != mCl.Count(i, j) {
				t.Errorf("confusion[%d][%d]: sequential %d, cluster-with-failover %d",
					i, j, mSeq.Count(i, j), mCl.Count(i, j))
			}
		}
	}
	if got, want := clustered.Summary(), seq.Summary(); got != want {
		t.Errorf("prequential report differs:\ncluster    %+v\nsequential %+v", got, want)
	}
	if got, want := clustered.Extractor().BoW().Size(), seq.Extractor().BoW().Size(); got != want {
		t.Errorf("BoW size differs: cluster %d, sequential %d", got, want)
	}
	// Drift reactions replay identically at the driver merge.
	if stats.Warnings != seqStats.Warnings || stats.Drifts != seqStats.Drifts ||
		stats.TreeReplacements != seqStats.TreeReplacements {
		t.Errorf("drift telemetry differs: cluster {w:%d d:%d r:%d}, sequential {w:%d d:%d r:%d}",
			stats.Warnings, stats.Drifts, stats.TreeReplacements,
			seqStats.Warnings, seqStats.Drifts, seqStats.TreeReplacements)
	}
}

// TestClusterCorruptARFDeltaFailsOver injects corrupt ARF delta blobs on
// one executor: the driver must reject them at merge time (the forest
// delta decode validates shape and per-member tree versions), fail the
// share over to the healthy node, and finish with uncorrupted results.
func TestClusterCorruptARFDeltaFailsOver(t *testing.T) {
	good, err := StartExecutor("127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer good.Close()
	bad, err := StartExecutor("127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer bad.Close()
	bad.corruptDeltas.Store(true)

	opts := testOptions()
	opts.Model = core.ModelARF
	opts.ARF.EnsembleSize = 5
	data := testDataset(42, 2000, 1000, 200)
	p := core.NewPipeline(opts)
	stats, err := RunCluster(p, NewSliceSource(data), fastReconnect(ClusterConfig{
		Executors: []string{good.Addr(), bad.Addr()}, BatchSize: 500, TasksPerExecutor: 2,
	}))
	if err != nil {
		t.Fatalf("corrupt ARF deltas aborted the run: %v", err)
	}
	if stats.Processed != int64(len(data)) {
		t.Fatalf("processed %d, want %d", stats.Processed, len(data))
	}
	if stats.Failovers == 0 {
		t.Fatal("corrupt ARF deltas never triggered failover")
	}
	if f1 := p.Summary().F1; f1 < 0.75 {
		t.Fatalf("F1 after corrupt-ARF-delta failover = %v, want >= 0.75", f1)
	}
}

// TestClusterCorruptDeltaFailsOver injects corrupt delta blobs on one
// executor: the driver must detect them at merge time, fail the share over
// to the healthy node, and finish with uncorrupted results.
func TestClusterCorruptDeltaFailsOver(t *testing.T) {
	good, err := StartExecutor("127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer good.Close()
	bad, err := StartExecutor("127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer bad.Close()
	bad.corruptDeltas.Store(true)

	data := testDataset(33, 2000, 1000, 200)
	p := core.NewPipeline(testOptions())
	stats, err := RunCluster(p, NewSliceSource(data), fastReconnect(ClusterConfig{
		Executors: []string{good.Addr(), bad.Addr()}, BatchSize: 500, TasksPerExecutor: 2,
	}))
	if err != nil {
		t.Fatalf("corrupt deltas aborted the run: %v", err)
	}
	if stats.Processed != int64(len(data)) {
		t.Fatalf("processed %d, want %d", stats.Processed, len(data))
	}
	if stats.Failovers == 0 {
		t.Fatal("corrupt deltas never triggered failover")
	}
	if f1 := p.Summary().F1; f1 < 0.75 {
		t.Fatalf("F1 after corrupt-delta failover = %v, want >= 0.75", f1)
	}
}

// TestClusterReconnectResyncsVocab replaces an executor mid-run with a
// fresh process on the same address: the driver must reconnect and resync
// the full state, including the adaptively-grown vocabulary the new
// session has never seen.
func TestClusterReconnectResyncsVocab(t *testing.T) {
	exA, err := StartExecutor("127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer exA.Close()
	exB, err := StartExecutor("127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	addrB := exB.Addr()

	var exB2 *Executor
	swapped := make(chan struct{})
	go func() {
		defer close(swapped)
		waitHandled(t, exB, 2)
		exB.Close()
		// Rebind the same address: the driver's reconnect loop finds the
		// replacement and resyncs it from scratch.
		deadline := time.Now().Add(5 * time.Second)
		for {
			var err error
			exB2, err = StartExecutor(addrB, 2)
			if err == nil {
				return
			}
			if time.Now().After(deadline) {
				t.Errorf("could not rebind %s: %v", addrB, err)
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	data := testDataset(34, 8000, 4000, 800)
	p := core.NewPipeline(testOptions()) // adaptive BoW on: vocabulary grows mid-run
	cfg := fastReconnect(ClusterConfig{
		Executors: []string{exA.Addr(), addrB}, BatchSize: 400, TasksPerExecutor: 2,
	})
	// Give the reconnect loop room for the replacement to bind on slow CI.
	cfg.MaxConnAttempts = 10
	stats, err := RunCluster(p, NewSliceSource(data), cfg)
	<-swapped
	if exB2 != nil {
		defer exB2.Close()
	}
	if err != nil {
		t.Fatal(err)
	}
	if stats.Processed != int64(len(data)) {
		t.Fatalf("processed %d, want %d", stats.Processed, len(data))
	}
	if stats.Reconnects == 0 {
		t.Fatal("driver never reconnected to the replacement executor")
	}
	if exB2 == nil || exB2.Handled() == 0 {
		t.Fatal("replacement executor served no shares after resync")
	}
	seedSize := len(core.NewPipeline(testOptions()).Extractor().BoW().Words())
	if got := exB2.LastVocabSize(); got <= seedSize {
		t.Fatalf("replacement executor vocab = %d words, want > %d (resync did not deliver the grown vocabulary)", got, seedSize)
	}
	if got, want := exB2.LastVocabSize(), p.Extractor().BoW().Size(); got > want {
		t.Fatalf("replacement executor vocab = %d words, driver has %d", got, want)
	}
}

// TestClusterDeltaMatchesFull proves the delta-broadcast protocol changes
// only wire cost, never results: the same stream through delta and
// full-re-broadcast clusters yields identical prequential reports, with
// the delta run sending a fraction of the broadcast bytes.
func TestClusterDeltaMatchesFull(t *testing.T) {
	addrs := startCluster(t, 3, 2)
	data := testDataset(35, 4000, 2000, 400)

	run := func(disableDelta bool) (Stats, *core.Pipeline) {
		p := core.NewPipeline(testOptions())
		stats, err := RunCluster(p, NewSliceSource(data), ClusterConfig{
			Executors: addrs, BatchSize: 500, TasksPerExecutor: 2, DisableDelta: disableDelta,
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats, p
	}
	fullStats, fullP := run(true)
	deltaStats, deltaP := run(false)

	if got, want := deltaP.Summary(), fullP.Summary(); got != want {
		t.Errorf("delta broadcasts changed results:\ndelta %+v\nfull  %+v", got, want)
	}
	if !reflect.DeepEqual(deltaP.Evaluator().Matrix(), fullP.Evaluator().Matrix()) {
		t.Error("delta broadcasts changed the confusion matrix")
	}
	if deltaStats.BroadcastBytes >= fullStats.BroadcastBytes {
		t.Errorf("delta broadcast bytes %d not below full %d", deltaStats.BroadcastBytes, fullStats.BroadcastBytes)
	}
}

// TestClusterSteadyStateBroadcastShrinks runs an unlabeled-only stream
// (model and vocabulary never change after the first batch) and checks the
// steady-state broadcast cost per batch collapses versus the full
// re-broadcast protocol.
func TestClusterSteadyStateBroadcastShrinks(t *testing.T) {
	addrs := startCluster(t, 2, 2)
	// Warm the model so its blob has realistic size.
	warm := testDataset(36, 3000, 1500, 300)
	measure := func(disableDelta bool) (perBatch int64) {
		p := core.NewPipeline(testOptions())
		if _, err := RunCluster(p, NewSliceSource(warm), ClusterConfig{
			Executors: addrs, BatchSize: 500, TasksPerExecutor: 2, DisableDelta: disableDelta,
		}); err != nil {
			t.Fatal(err)
		}
		// Steady state: unlabeled traffic only.
		src := NewLimitSource(NewUnlabeledAdapter(twitterdata.NewUnlabeledSource(37, 10)), 5000)
		stats, err := RunCluster(p, src, ClusterConfig{
			Executors: addrs, BatchSize: 500, TasksPerExecutor: 2, DisableDelta: disableDelta,
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats.BroadcastBytes / int64(stats.Batches)
	}
	full := measure(true)
	delta := measure(false)
	// The first steady batch still broadcasts the full state to the fresh
	// connections, so the average includes one full payload over 10
	// batches; require a 2x shrink here and leave the 10x steady-state
	// headline to BENCH_cluster.json, which amortizes over more batches.
	if delta*2 > full {
		t.Errorf("steady-state broadcast bytes/batch: delta %d, full %d — expected at least 2x shrink", delta, full)
	}
}

// TestClusterARFPerMemberElision checks the acceptance target of the
// partitioned broadcast: with no drift events and an unchanged forest
// (steady unlabeled traffic), the delta protocol's broadcast cost per
// batch collapses to at most 1/EnsembleSize of the full-forest broadcast —
// the whole point of hashing members individually instead of shipping ten
// trees because one might have changed.
func TestClusterARFPerMemberElision(t *testing.T) {
	const ensemble = 5
	addrs := startCluster(t, 2, 2)
	warm := testDataset(43, 2000, 1000, 200)
	measure := func(disableDelta bool) (perBatch int64) {
		opts := testOptions()
		opts.Model = core.ModelARF
		opts.ARF.EnsembleSize = ensemble
		p := core.NewPipeline(opts)
		cfg := ClusterConfig{Executors: addrs, BatchSize: 500, TasksPerExecutor: 2, DisableDelta: disableDelta}
		if _, err := RunCluster(p, NewSliceSource(warm), cfg); err != nil {
			t.Fatal(err)
		}
		// Steady state: unlabeled traffic only, so no member tree changes.
		src := NewLimitSource(NewUnlabeledAdapter(twitterdata.NewUnlabeledSource(44, 10)), 10000)
		stats, err := RunCluster(p, src, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return stats.BroadcastBytes / int64(stats.Batches)
	}
	full := measure(true)
	delta := measure(false)
	if delta*ensemble > full {
		t.Errorf("steady-state ARF broadcast bytes/batch: delta %d, full %d — want <= 1/%d", delta, full, ensemble)
	}
}

// TestExecutorCloseDrains drives the wire protocol by hand: Close while a
// share is in flight must deliver that share's response before the
// connection goes away, instead of hard-closing the listener under it.
func TestExecutorCloseDrains(t *testing.T) {
	ex, err := StartExecutor("127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", ex.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc, dec := gob.NewEncoder(conn), gob.NewDecoder(conn)

	if err := enc.Encode(&wireMsg{Kind: msgHello, Seq: -1, Proto: clusterProtoVersion, ModelKind: "SLR"}); err != nil {
		t.Fatal(err)
	}
	var ack batchResponse
	if err := dec.Decode(&ack); err != nil {
		t.Fatal(err)
	}
	if ack.Err != "" {
		t.Fatalf("hello rejected: %s", ack.Err)
	}

	p := core.NewPipeline(func() core.Options {
		o := testOptions()
		o.Model = core.ModelSLR
		return o
	}())
	modelBlob, err := p.Model().(interface{ MarshalBinary() ([]byte, error) }).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	statsBlob, err := p.Normalizer().Stats.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	data := testDataset(38, 400, 200, 40)
	bcast := wireMsg{
		Kind: msgBroadcast, Seq: 1,
		ModelHash: stream.Hash64(modelBlob), ModelBlob: modelBlob, StatsBlob: statsBlob,
		VocabBase: 0, VocabVersion: 1, VocabWords: p.Extractor().BoW().Words(),
		Preprocess: true, NormMode: int(p.Normalizer().Mode), Scheme: int(p.Options().Scheme),
	}
	if err := enc.Encode(&bcast); err != nil {
		t.Fatal(err)
	}
	share := wireMsg{Kind: msgData, Seq: 1, Lo: 0, Hi: len(data), Tasks: 2, Tweets: data}
	if err := enc.Encode(&share); err != nil {
		t.Fatal(err)
	}
	// Close once the share is in flight; drain semantics guarantee its
	// response is flushed before the connection goes away.
	waitHandled(t, ex, 1)
	closed := make(chan error, 1)
	go func() { closed <- ex.Close() }()

	var resp batchResponse
	if err := dec.Decode(&resp); err != nil {
		t.Fatalf("in-flight share response lost during Close: %v", err)
	}
	if resp.Err != "" || resp.NeedResync {
		t.Fatalf("share failed: %+v", resp)
	}
	if len(resp.Classified) != len(data) {
		t.Fatalf("classified %d of %d tweets", len(resp.Classified), len(data))
	}
	if err := <-closed; err != nil {
		t.Fatalf("Close returned %v", err)
	}
	if ex.ActiveConns() != 0 {
		t.Fatalf("connections survived Close: %d", ex.ActiveConns())
	}
}

// TestClusterShutdownFrame checks the polite end-of-run: after RunCluster
// completes, executors drop their sessions without Close having to rip
// connections away, and Close reports no accept-loop error.
func TestClusterShutdownFrame(t *testing.T) {
	exs := make([]*Executor, 2)
	addrs := make([]string, 2)
	for i := range exs {
		ex, err := StartExecutor("127.0.0.1:0", 2)
		if err != nil {
			t.Fatal(err)
		}
		exs[i] = ex
		addrs[i] = ex.Addr()
	}
	p := core.NewPipeline(testOptions())
	if _, err := RunCluster(p, NewSliceSource(testDataset(39, 600, 300, 60)), ClusterConfig{
		Executors: addrs, BatchSize: 300, TasksPerExecutor: 2,
	}); err != nil {
		t.Fatal(err)
	}
	for i, ex := range exs {
		deadline := time.Now().Add(2 * time.Second)
		for ex.ActiveConns() > 0 {
			if time.Now().After(deadline) {
				t.Fatalf("executor %d still has %d sessions after the run ended", i, ex.ActiveConns())
			}
			time.Sleep(time.Millisecond)
		}
		if err := ex.Close(); err != nil {
			t.Errorf("executor %d Close = %v, want nil", i, err)
		}
	}
}

// TestExecutorErrSurfacesAcceptFailure checks the Err accessor: a listener
// torn down by anything other than Close is observable.
func TestExecutorErrSurfacesAcceptFailure(t *testing.T) {
	ex, err := StartExecutor("127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	ex.ln.Close() // simulate the listener dying out from under the executor
	deadline := time.Now().Add(2 * time.Second)
	for ex.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("accept-loop failure never surfaced via Err")
		}
		time.Sleep(time.Millisecond)
	}
	if err := ex.Close(); err == nil {
		t.Fatal("Close should return the accept-loop error")
	}
}

// TestVocabStateDiff unit-tests the driver-side vocabulary log: appends
// produce diffs, removals force an epoch rebuild, and per-node version
// bookkeeping selects between diff and full broadcast.
func TestVocabStateDiff(t *testing.T) {
	var v vocabState
	v.refresh([]string{"b", "a"})
	if v.version != 1 || len(v.log) != 2 {
		t.Fatalf("initial refresh: version=%d log=%v", v.version, v.log)
	}
	if v.log[0] != "a" || v.log[1] != "b" {
		t.Fatalf("log not sorted: %v", v.log)
	}

	// Pure growth: append-only log, epoch unchanged.
	v.refresh([]string{"a", "b", "c"})
	if v.version != 2 || v.epoch != 0 {
		t.Fatalf("append refresh: version=%d epoch=%d", v.version, v.epoch)
	}
	if len(v.log) != 3 || v.log[2] != "c" {
		t.Fatalf("log after append: %v", v.log)
	}

	// No change: version stable.
	v.refresh([]string{"c", "a", "b"})
	if v.version != 2 {
		t.Fatalf("no-op refresh bumped version to %d", v.version)
	}

	// Removal: epoch advances and the log is rebuilt.
	v.refresh([]string{"a", "c", "d"})
	if v.version != 3 || v.epoch != 3 {
		t.Fatalf("removal refresh: version=%d epoch=%d", v.version, v.epoch)
	}
	if len(v.log) != 3 || v.log[0] != "a" || v.log[1] != "c" || v.log[2] != "d" {
		t.Fatalf("rebuilt log: %v", v.log)
	}
}

// TestClusterAllCorruptFailsRun bounds the merge-time retry: when every
// executor persistently returns corrupt deltas, the run must error out
// instead of cycling markDown/reconnect forever.
func TestClusterAllCorruptFailsRun(t *testing.T) {
	ex, err := StartExecutor("127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	ex.corruptDeltas.Store(true)
	p := core.NewPipeline(testOptions())
	_, err = RunCluster(p, NewSliceSource(testDataset(40, 300, 150, 30)), fastReconnect(ClusterConfig{
		Executors: []string{ex.Addr()}, BatchSize: 300, TasksPerExecutor: 1,
	}))
	if err == nil {
		t.Fatal("run with only corrupt executors reported success")
	}
}
