package engine

import (
	"strings"
	"testing"
	"time"

	"redhanded/internal/core"
	"redhanded/internal/obs"
)

// End-to-end executor round-trip attribution: an executor artificially
// delayed by its share hook must produce batch spans whose executor_rtt
// stage covers the delay, with the executor-reported compute time echoed
// over the wire as a subset — the cluster half of the tentpole acceptance
// criterion.
func TestClusterTraceAttributesExecutorRTT(t *testing.T) {
	const delay = 30 * time.Millisecond
	ex, err := StartExecutor("127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	ex.mu.Lock()
	ex.shareHook = func() { time.Sleep(delay) }
	ex.mu.Unlock()

	tracer := obs.New(obs.Config{Enabled: true, SlowBudget: time.Millisecond})
	data := testDataset(21, 600, 300, 60)
	p := core.NewPipeline(testOptions())
	if _, err := RunCluster(p, NewSliceSource(data), ClusterConfig{
		Executors: []string{ex.Addr()}, BatchSize: 300, TasksPerExecutor: 2,
		Tracer: tracer,
	}); err != nil {
		t.Fatal(err)
	}

	if tracer.Spans() != 4 {
		t.Fatalf("batch spans = %d, want 4 (960 tweets / 300 batch)", tracer.Spans())
	}
	rep := tracer.SlowTraces()
	if len(rep.Traces) == 0 {
		t.Fatalf("no slow batch capture despite %v executor delay and 1ms budget", delay)
	}
	tr := rep.Traces[0]
	if !strings.HasPrefix(tr.ID, "batch-") {
		t.Fatalf("batch span ID = %q, want batch-N", tr.ID)
	}
	stages := map[string]int64{}
	for _, st := range tr.Stages {
		stages[st.Stage] = st.Nanos
	}
	if stages["executor_rtt"] < int64(delay) {
		t.Fatalf("executor_rtt = %v, want >= %v (the injected delay)",
			time.Duration(stages["executor_rtt"]), delay)
	}
	if stages["executor_compute"] <= 0 {
		t.Fatalf("executor did not echo its compute time: %v", stages)
	}
	if stages["executor_compute"] >= stages["executor_rtt"] {
		t.Fatalf("executor_compute %v should be a strict subset of RTT %v (the share hook delay is outside it)",
			time.Duration(stages["executor_compute"]), time.Duration(stages["executor_rtt"]))
	}
	if stages["merge"] <= 0 {
		t.Fatalf("merge stage missing from batch span: %v", stages)
	}
}

// A cluster run with tracing disabled carries TraceID 0 on the wire and
// records nothing — the nil-tracer fast path through the driver.
func TestClusterTraceDisabled(t *testing.T) {
	addrs := startCluster(t, 2, 2)
	data := testDataset(22, 600, 300, 60)
	p := core.NewPipeline(testOptions())
	if _, err := RunCluster(p, NewSliceSource(data), ClusterConfig{
		Executors: addrs, BatchSize: 300, TasksPerExecutor: 2,
	}); err != nil {
		t.Fatal(err)
	}
	var nilTracer *obs.Tracer
	if nilTracer.Spans() != 0 {
		t.Fatal("nil tracer recorded spans")
	}
}
