package engine

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"redhanded/internal/core"
	"redhanded/internal/metrics"
	"redhanded/internal/ml"
	"redhanded/internal/norm"
	"redhanded/internal/obs"
	"redhanded/internal/stream"
	"redhanded/internal/twitterdata"
)

// The cluster driver distributes micro-batch shares across executor nodes
// over TCP, mirroring the paper's 3-node SparkCluster deployment, with the
// resilience the happy-path v1 engine lacked:
//
//   - failover: per-node health tracking with reconnect-and-backoff; when a
//     node dies mid-batch its share is reassigned to survivors, so a batch
//     completes as long as one executor lives;
//   - delta broadcasts: the model ships only when its hash changed (and a
//     partitioned model like the ARF ships only the member trees whose
//     per-part hash moved), while the BoW vocabulary ships as an
//     append-only diff with a version handshake — so an unchanged
//     model/vocab costs a few bytes per batch;
//   - pipelining: batch k+1's source read and tweet encode overlap batch
//     k's round trip, while broadcasts stay strictly ordered behind the
//     merge so test-then-train semantics hold.

// Cluster hot-path instrumentation on the default metrics registry.
var (
	clusterBroadcastBytes = metrics.Default().Counter(
		"redhanded_cluster_broadcast_bytes_total",
		"Bytes of model/stats/vocab broadcast frames sent to executors.", nil)
	clusterDataBytes = metrics.Default().Counter(
		"redhanded_cluster_data_bytes_total",
		"Bytes of tweet data frames sent to executors.", nil)
	clusterFailovers = metrics.Default().Counter(
		"redhanded_cluster_failovers_total",
		"Batch shares reassigned because an executor failed mid-batch.", nil)
	clusterResyncs = metrics.Default().Counter(
		"redhanded_cluster_resyncs_total",
		"Full re-broadcasts triggered by an executor's NeedResync answer.", nil)
	clusterReconnects = metrics.Default().Counter(
		"redhanded_cluster_reconnects_total",
		"Successful executor reconnects after a mid-run failure.", nil)
	clusterShareRTT = metrics.Default().Histogram(
		"redhanded_cluster_share_rtt_seconds",
		"Round-trip latency of one batch share (send through response).", nil, nil)
)

// ClusterConfig configures the distributed engine.
type ClusterConfig struct {
	// Executors lists the executor TCP addresses (the paper uses 3 nodes).
	Executors []string
	// BatchSize is the micro-batch length across the whole cluster.
	BatchSize int
	// TasksPerExecutor is the parallel partition count per node (8 cores
	// per node in the paper's testbed).
	TasksPerExecutor int
	// DisableDelta forces the full model/vocab re-broadcast every batch
	// (the v1 wire behavior); cmd/benchreport uses it for the before/after
	// broadcast-bytes measurement.
	DisableDelta bool
	// DisablePipeline turns off the batch k+1 data presend (debugging aid;
	// results are identical either way).
	DisablePipeline bool
	// MaxConnAttempts bounds consecutive failed (re)connect attempts per
	// executor before the run abandons it (default 5).
	MaxConnAttempts int
	// ReconnectBackoff is the initial reconnect delay, doubling per attempt
	// up to 1s (default 50ms).
	ReconnectBackoff time.Duration
	// AllDownWait is how long a batch waits for any executor to come back
	// when every node is down, before failing the run (default 5s).
	AllDownWait time.Duration
	// ShareTimeout bounds one share's round trip. A wedged-but-connected
	// executor (stopped process, half-open connection) never produces a
	// transport error, so the timeout is what converts it into a failover
	// (default 2m — generous, since a share normally completes in
	// milliseconds).
	ShareTimeout time.Duration
	// Tracer, when non-nil, records one span per micro-batch: queue covers
	// broadcast serialization and the healthy-node wait, executor_rtt the
	// share dispatch wall time, executor_compute the executor-reported
	// share compute (a subset of the RTT — the difference is wire and
	// queueing cost), and merge the delta decode + merge + absorb.
	Tracer *obs.Tracer
}

func (c ClusterConfig) withDefaults() ClusterConfig {
	if c.BatchSize <= 0 {
		c.BatchSize = 6000
	}
	if c.TasksPerExecutor <= 0 {
		c.TasksPerExecutor = 8
	}
	if c.MaxConnAttempts <= 0 {
		c.MaxConnAttempts = 5
	}
	if c.ReconnectBackoff <= 0 {
		c.ReconnectBackoff = 50 * time.Millisecond
	}
	if c.AllDownWait <= 0 {
		c.AllDownWait = 5 * time.Second
	}
	if c.ShareTimeout <= 0 {
		c.ShareTimeout = 2 * time.Minute
	}
	return c
}

// execNode is the driver's view of one executor: connection, health, and
// the broadcast versions the node is known to hold. Version bookkeeping is
// reset on every (re)connect, which is what forces the full resync for a
// fresh session.
type execNode struct {
	id   int
	addr string

	mu        sync.Mutex
	conn      *countingConn
	enc       *gob.Encoder
	dec       *gob.Decoder
	gen       int // connection generation; stale recvLoops no-op
	up        bool
	abandoned bool
	reviving  bool

	// Broadcast state held by the node's current session.
	modelHash    uint64
	modelParts   []uint64 // per-part hashes (partitioned models only)
	vocabVersion uint64
	vocabLen     int
	bcSeq        int64

	presends map[respKey]bool
	pending  map[respKey]chan shareReply
}

type shareReply struct {
	resp batchResponse
	err  error
}

func (n *execNode) isUp() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.up
}

// register adds a pending reply slot for one share exchange.
func (n *execNode) register(key respKey) (chan shareReply, int, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.up {
		return nil, 0, fmt.Errorf("engine: executor %s is down", n.addr)
	}
	ch := make(chan shareReply, 1)
	n.pending[key] = ch
	return ch, n.gen, nil
}

func (n *execNode) unregister(key respKey) {
	n.mu.Lock()
	if n.pending != nil {
		delete(n.pending, key)
	}
	n.mu.Unlock()
}

// vocabState tracks the driver-side vocabulary as an append-only log plus
// the version counter of the diff protocol. The adaptive BoW mostly grows
// (Fig. 10); when it does evict words, the log is rebuilt and the epoch
// advances, so nodes synced before the rebuild fall back to a full
// broadcast while nodes synced after keep receiving diffs.
type vocabState struct {
	version uint64
	epoch   uint64
	log     []string
	known   map[string]bool
}

// refresh folds the BoW's current word set into the log. Added words are
// appended in sorted order so the wire payload is deterministic.
func (v *vocabState) refresh(words []string) {
	if v.known == nil {
		v.known = make(map[string]bool)
	}
	var added []string
	set := make(map[string]bool, len(words))
	for _, w := range words {
		set[w] = true
		if !v.known[w] {
			added = append(added, w)
		}
	}
	removed := len(set) != len(v.known)+len(added)
	if !removed && len(added) == 0 {
		return
	}
	v.version++
	if removed {
		v.epoch = v.version
		v.log = make([]string, 0, len(set))
		for w := range set {
			v.log = append(v.log, w)
		}
		sort.Strings(v.log)
	} else {
		sort.Strings(added)
		v.log = append(v.log, added...)
	}
	v.known = set
}

// broadcast is one batch's shared broadcast payload, computed once and
// specialized per node into a delta by broadcastFor. Monolithic models
// fill modelBlob; partitioned models fill header/parts/partHashes instead.
type broadcast struct {
	seq        int64
	modelBlob  []byte
	header     []byte
	parts      [][]byte
	partHashes []uint64
	modelHash  uint64
	statsBlob  []byte
	vocabVer   uint64
	vocabEpoch uint64
	vocabLog   []string
	preprocess bool
	normMode   int
	scheme     int
}

// shareResult is one share's response plus the node that produced it (for
// merge-time failover when the payload turns out to be undecodable).
type shareResult struct {
	resp batchResponse
	node *execNode
	gen  int
}

// clusterRun is the state of one RunCluster invocation.
type clusterRun struct {
	p     *core.Pipeline
	model stream.RemoteTrainable
	kind  string
	cfg   ClusterConfig
	nodes []*execNode
	vocab vocabState
	stop  chan struct{}

	// curTraceID is the in-flight batch span's trace ID, stamped onto data
	// frames so executor responses can be attributed to the batch that sent
	// them. runBatch is sequential per run, so a plain field suffices for
	// sendShare; presend ships the *next* batch's tweets before that
	// batch's span exists and deliberately carries 0.
	curTraceID uint64

	// Serialization cache: in the cluster driver every model mutation
	// flows through ApplyAccumulators, which advances the model's train
	// count for each labeled observation — so an unchanged train count
	// proves the model bytes are unchanged and the previous batch's
	// encoding (an ARF forest is tens of KB of gob work) can be reused.
	bcModelCount int64
	bcModel      *broadcast

	broadcastBytes atomic.Int64
	dataBytes      atomic.Int64
	failovers      atomic.Int64
	resyncs        atomic.Int64
	reconnects     atomic.Int64
}

// RunCluster executes the pipeline across the executor nodes. The
// pipeline's model must implement stream.RemoteTrainable — every kind in
// the stream codec registry (HT, SLR, ARF) qualifies. The run survives
// executor failures as long as at least one node stays reachable; each
// failed share is reassigned to a survivor and produces results identical
// to the ones the dead node would have returned.
func RunCluster(p *core.Pipeline, src Source, cfg ClusterConfig) (Stats, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Executors) == 0 {
		return Stats{}, fmt.Errorf("engine: cluster needs at least one executor")
	}
	model, ok := p.Model().(stream.RemoteTrainable)
	if !ok {
		return Stats{}, fmt.Errorf("engine: model %T does not support remote training", p.Model())
	}
	kind, err := stream.ModelKindOf(model)
	if err != nil {
		return Stats{}, err
	}

	r := &clusterRun{p: p, model: model, kind: kind, cfg: cfg, stop: make(chan struct{})}
	for i, addr := range cfg.Executors {
		r.nodes = append(r.nodes, &execNode{id: i, addr: addr, bcSeq: -1})
	}
	defer r.shutdown()

	// Initial connect, in parallel. A node that fails its first dial goes
	// through the normal revive path; the run starts as long as any node
	// answered, and fails fast when none did.
	var connWG sync.WaitGroup
	errs := make([]error, len(r.nodes))
	for i, n := range r.nodes {
		connWG.Add(1)
		go func(i int, n *execNode) {
			defer connWG.Done()
			errs[i] = r.connect(n)
		}(i, n)
	}
	connWG.Wait()
	anyUp := false
	for _, n := range r.nodes {
		if n.isUp() {
			anyUp = true
		}
	}
	if !anyUp {
		for _, err := range errs {
			if err != nil {
				return Stats{}, fmt.Errorf("engine: no executor reachable: %w", err)
			}
		}
	}
	for i, n := range r.nodes {
		if errs[i] != nil {
			go r.revive(n)
		}
	}

	start := time.Now()
	var stats Stats
	var lat latencyTracker
	driftDone := captureDrift(p)

	// Prefetch: the source is read one batch ahead of the batch in flight.
	batches := make(chan []twitterdata.Tweet, 1)
	go func() {
		defer close(batches)
		for {
			b := make([]twitterdata.Tweet, 0, cfg.BatchSize)
			for len(b) < cfg.BatchSize {
				t, ok := src.Next()
				if !ok {
					break
				}
				b = append(b, t)
			}
			if len(b) == 0 {
				return
			}
			select {
			case batches <- b:
			case <-r.stop:
				return
			}
			if len(b) < cfg.BatchSize {
				return
			}
		}
	}()
	done := false
	next := func(block bool) []twitterdata.Tweet {
		if done {
			return nil
		}
		if block {
			b, ok := <-batches
			if !ok {
				done = true
			}
			return b
		}
		select {
		case b, ok := <-batches:
			if !ok {
				done = true
			}
			return b
		default:
			return nil
		}
	}

	finish := func(err error) (Stats, error) {
		stats.Duration = time.Since(start)
		lat.fill(&stats)
		stats.BroadcastBytes = r.broadcastBytes.Load()
		stats.DataBytes = r.dataBytes.Load()
		stats.Failovers = r.failovers.Load()
		stats.Resyncs = r.resyncs.Load()
		stats.Reconnects = r.reconnects.Load()
		driftDone(&stats)
		captureUsers(p, &stats)
		return stats, err
	}

	var seq int64
	cur := next(true)
	for cur != nil {
		seq++
		// Grab batch k+1 if the source already has it, so its tweets can be
		// pre-sent while batch k's round trip is in flight.
		var ahead []twitterdata.Tweet
		if !cfg.DisablePipeline {
			ahead = next(false)
		}
		batchStart := time.Now()
		if err := r.runBatch(seq, cur, ahead); err != nil {
			return finish(err)
		}
		lat.add(time.Since(batchStart))
		stats.Processed += int64(len(cur))
		tweetsProcessedTotal.Add(int64(len(cur)))
		stats.Batches++
		if ahead == nil {
			ahead = next(true)
		}
		cur = ahead
	}
	return finish(nil)
}

// runBatch executes one micro-batch: broadcast, dispatch shares across the
// healthy nodes (failing over as nodes die), pre-send the next batch's
// tweets, then validate and merge the results in share order.
func (r *clusterRun) runBatch(seq int64, batch, ahead []twitterdata.Tweet) error {
	// The batch span: queue covers broadcast serialization plus the
	// healthy-node wait (everything before dispatch), then executor_rtt,
	// executor_compute (executor-reported), and merge. Finish is deferred so
	// a failed batch still records its partial breakdown.
	sp := r.cfg.Tracer.Begin(0)
	defer sp.Finish()
	if sp != nil {
		sp.SetID("batch-" + strconv.FormatInt(seq, 10))
		r.curTraceID = sp.TraceID()
	}
	bc, err := r.makeBroadcast(seq)
	if err != nil {
		return err
	}
	healthy, err := r.waitHealthy()
	if err != nil {
		return err
	}
	shares := splitSpans(len(batch), len(healthy))
	sp.BeginStage(obs.StageExecutorRTT)

	results := make([]shareResult, len(shares))
	errs := make([]error, len(shares))
	var wg sync.WaitGroup
	for i, sp := range shares {
		if sp.lo >= sp.hi {
			continue
		}
		wg.Add(1)
		go func(i int, sp span, pref *execNode) {
			defer wg.Done()
			results[i], errs[i] = r.processShare(seq, bc, sp, batch, pref)
		}(i, sp, healthy[i%len(healthy)])
	}
	var presendWG sync.WaitGroup
	if len(ahead) > 0 {
		presendWG.Add(1)
		go func() {
			defer presendWG.Done()
			r.presend(seq+1, ahead)
		}()
	}
	wg.Wait()
	presendWG.Wait()
	sp.BeginStage(obs.StageMerge)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	// Validate every response before mutating driver state, so a corrupt
	// payload can be treated as a node failure and its share re-run on a
	// survivor without having half-applied the batch.
	type decodedShare struct {
		lo         int
		stats      *norm.FeatureStats
		accs       []ml.Accumulator
		classified []classifiedRec
	}
	decoded := make([]decodedShare, len(shares))
	for i, sp := range shares {
		if sp.lo >= sp.hi {
			continue
		}
		for redo := 0; ; redo++ {
			res := results[i]
			d := decodedShare{lo: sp.lo, classified: res.resp.Classified}
			d.stats = norm.NewFeatureStats(r.p.Normalizer().Stats.Dim())
			derr := d.stats.UnmarshalBinary(res.resp.StatsBlob)
			if derr == nil {
				for _, blob := range res.resp.DeltaBlobs {
					acc, aerr := r.model.AccumulatorFromState(blob)
					if aerr != nil {
						derr = aerr
						break
					}
					d.accs = append(d.accs, acc)
				}
			}
			if derr == nil {
				decoded[i] = d
				break
			}
			// Corrupt response: fail the node and re-run the share. The
			// retry is bounded so a faulty-but-reachable node that keeps
			// reconnecting and re-corrupting cannot hang the run.
			if redo >= 2*len(r.nodes)+2 {
				return fmt.Errorf("engine: share [%d,%d) of batch %d kept returning corrupt deltas: %w", sp.lo, sp.hi, seq, derr)
			}
			r.markDown(res.node, res.gen, fmt.Errorf("engine: executor %s returned corrupt delta: %w", res.node.addr, derr))
			r.failovers.Add(1)
			clusterFailovers.Inc()
			rerun, rerr := r.processShare(seq, bc, sp, batch, nil)
			if rerr != nil {
				return rerr
			}
			results[i] = rerun
		}
	}

	// Attribute the executor-reported compute time (summed across shares;
	// failover re-runs contribute the serving node's final numbers). Old
	// executors report 0, leaving the stage absent from the breakdown.
	var execNanos int64
	for i := range results {
		execNanos += results[i].resp.ExecNanos
	}
	sp.Add(obs.StageExecutorCompute, time.Duration(execNanos))

	// Merge deltas and statistics in share order — deterministic no matter
	// which node served which share.
	var accs []ml.Accumulator
	outcomes := make([]core.Outcome, len(batch))
	for i, sp := range shares {
		if sp.lo >= sp.hi {
			continue
		}
		d := decoded[i]
		r.p.Normalizer().Stats.Merge(d.stats)
		accs = append(accs, d.accs...)
		for _, c := range d.classified {
			outcomes[d.lo+c.Idx] = core.Outcome{Label: c.Label, Pred: c.Pred, Conf: c.Conf}
		}
	}
	r.model.ApplyAccumulators(accs)
	r.p.AbsorbBatch(batch, outcomes)
	return nil
}

// makeBroadcast serializes the batch's global state once and refreshes the
// vocabulary log. Partitioned models serialize as a header plus per-part
// blobs with independent content hashes, so broadcastFor can elide the
// parts a node already holds.
func (r *clusterRun) makeBroadcast(seq int64) (*broadcast, error) {
	bc := &broadcast{
		seq:        seq,
		preprocess: r.p.Options().Preprocess,
		normMode:   int(r.p.Normalizer().Mode),
		scheme:     int(r.p.Options().Scheme),
	}
	counter, countable := r.model.(interface{ TrainCount() int64 })
	if countable && r.bcModel != nil && counter.TrainCount() == r.bcModelCount {
		// Nothing trained since the last broadcast (steady-state unlabeled
		// traffic): the previous encoding is still exact.
		bc.modelBlob = r.bcModel.modelBlob
		bc.header = r.bcModel.header
		bc.parts = r.bcModel.parts
		bc.partHashes = r.bcModel.partHashes
		bc.modelHash = r.bcModel.modelHash
	} else if pm, ok := r.model.(stream.PartitionedModel); ok {
		header, parts, err := pm.MarshalParts()
		if err != nil {
			return nil, fmt.Errorf("engine: broadcast model: %w", err)
		}
		bc.header, bc.parts = header, parts
		bc.modelHash, bc.partHashes = stream.HashModelParts(header, parts)
	} else {
		modelBlob, err := r.model.MarshalBinary()
		if err != nil {
			return nil, fmt.Errorf("engine: broadcast model: %w", err)
		}
		bc.modelBlob = modelBlob
		bc.modelHash = stream.Hash64(modelBlob)
	}
	if countable {
		r.bcModelCount = counter.TrainCount()
		r.bcModel = bc
	}
	statsBlob, err := r.p.Normalizer().Stats.MarshalBinary()
	if err != nil {
		return nil, fmt.Errorf("engine: broadcast stats: %w", err)
	}
	bc.statsBlob = statsBlob
	r.vocab.refresh(r.p.Extractor().BoW().Words())
	bc.vocabVer = r.vocab.version
	bc.vocabEpoch = r.vocab.epoch
	bc.vocabLog = r.vocab.log
	return bc, nil
}

// broadcastFor specializes the batch broadcast into the delta this node
// needs, given the versions its session holds. Callers hold n.mu.
func (r *clusterRun) broadcastFor(n *execNode, bc *broadcast) wireMsg {
	msg := wireMsg{
		Kind:         msgBroadcast,
		Seq:          bc.seq,
		ModelHash:    bc.modelHash,
		StatsBlob:    bc.statsBlob,
		VocabVersion: bc.vocabVer,
		Preprocess:   bc.preprocess,
		NormMode:     bc.normMode,
		Scheme:       bc.scheme,
	}
	full := r.cfg.DisableDelta
	if full || n.modelHash != bc.modelHash {
		switch {
		case bc.parts == nil:
			msg.ModelBlob = bc.modelBlob
		case !full && len(n.modelParts) == len(bc.partHashes):
			// The session holds a part set of the right shape: ship the
			// header plus only the parts whose content hash moved (for the
			// ARF, the drift-replaced or freshly grown member trees).
			msg.ModelHeader = bc.header
			for i, ph := range bc.partHashes {
				if n.modelParts[i] != ph {
					msg.ModelPartIdx = append(msg.ModelPartIdx, i)
					msg.ModelParts = append(msg.ModelParts, bc.parts[i])
				}
			}
		default:
			msg.ModelHeader = bc.header
			msg.ModelParts = bc.parts
			msg.ModelFull = true
		}
	}
	switch {
	case !full && n.vocabVersion == bc.vocabVer:
		msg.VocabBase = bc.vocabVer // up to date: no words on the wire
	case !full && n.vocabVersion > 0 && n.vocabVersion >= bc.vocabEpoch && n.vocabLen <= len(bc.vocabLog):
		msg.VocabBase = n.vocabVersion
		msg.VocabWords = bc.vocabLog[n.vocabLen:]
	default:
		msg.VocabBase = 0 // full replacement
		msg.VocabWords = bc.vocabLog
	}
	return msg
}

// processShare runs one share to completion, failing over across nodes as
// they die. It returns an error only when no executor can serve the share.
func (r *clusterRun) processShare(seq int64, bc *broadcast, sp span, batch []twitterdata.Tweet, pref *execNode) (shareResult, error) {
	tried := make(map[*execNode]bool)
	node := pref
	// The AllDownWait grace clock starts when the share first finds no
	// healthy node, not at share start — a long failover dance among live
	// nodes must not eat the window a final all-down event is owed.
	var allDownSince time.Time
	var lastErr error
	moved := false
	for hops := 0; hops <= 4*len(r.nodes)+4; hops++ {
		if node == nil || !node.isUp() || tried[node] {
			// Pick a healthy node, waiting (without burning hops) while
			// every node is down but a reconnect is still possible.
			for {
				node = r.pickNode(tried)
				if node != nil {
					break
				}
				if allDownSince.IsZero() {
					allDownSince = time.Now()
				}
				if r.allAbandoned() || time.Since(allDownSince) > r.cfg.AllDownWait {
					if lastErr == nil {
						lastErr = errors.New("all executors are down")
					}
					return shareResult{}, fmt.Errorf("engine: share [%d,%d) of batch %d unservable: %w", sp.lo, sp.hi, seq, lastErr)
				}
				// Every candidate failed this pass; allow revived nodes
				// back in and wait for a reconnect.
				for k := range tried {
					delete(tried, k)
				}
				time.Sleep(15 * time.Millisecond)
			}
			allDownSince = time.Time{}
			if moved {
				r.failovers.Add(1)
				clusterFailovers.Inc()
			}
		}
		res, err := r.exchange(node, seq, bc, sp, batch)
		if err == nil {
			return res, nil
		}
		lastErr = err
		tried[node] = true
		node = nil
		moved = true
	}
	return shareResult{}, fmt.Errorf("engine: share [%d,%d) of batch %d failed on every executor: %w", sp.lo, sp.hi, seq, lastErr)
}

// exchange performs one share round trip against one node, handling the
// NeedResync handshake by resending the full broadcast once.
func (r *clusterRun) exchange(n *execNode, seq int64, bc *broadcast, sp span, batch []twitterdata.Tweet) (shareResult, error) {
	key := respKey{seq: seq, lo: sp.lo, hi: sp.hi}
	for resync := 0; ; resync++ {
		ch, gen, err := n.register(key)
		if err != nil {
			return shareResult{}, err
		}
		start := time.Now()
		if err := r.sendShare(n, gen, seq, bc, sp, batch, resync > 0); err != nil {
			n.unregister(key)
			r.markDown(n, gen, err)
			return shareResult{}, err
		}
		var rep shareReply
		timeout := time.NewTimer(r.cfg.ShareTimeout)
		select {
		case rep = <-ch:
			timeout.Stop()
		case <-timeout.C:
			// A wedged-but-connected executor never errors the transport;
			// time it out so the share can fail over to a live node.
			err := fmt.Errorf("engine: executor %s did not answer share [%d,%d) within %v", n.addr, sp.lo, sp.hi, r.cfg.ShareTimeout)
			n.unregister(key)
			r.markDown(n, gen, err)
			return shareResult{}, err
		}
		if rep.err != nil {
			return shareResult{}, rep.err
		}
		clusterShareRTT.Observe(time.Since(start).Seconds())
		if rep.resp.Err != "" {
			err := fmt.Errorf("engine: executor %s: %s", n.addr, rep.resp.Err)
			r.markDown(n, gen, err)
			return shareResult{}, err
		}
		if rep.resp.NeedResync {
			if resync >= 2 {
				err := fmt.Errorf("engine: executor %s cannot resync", n.addr)
				r.markDown(n, gen, err)
				return shareResult{}, err
			}
			r.resyncs.Add(1)
			clusterResyncs.Inc()
			n.mu.Lock()
			n.modelHash, n.modelParts, n.vocabVersion, n.vocabLen, n.bcSeq = 0, nil, 0, 0, -1
			n.mu.Unlock()
			continue
		}
		return shareResult{resp: rep.resp, node: n, gen: gen}, nil
	}
}

// sendShare ships the broadcast (once per node per batch) and the share's
// data frame. forceData resends the tweets even if a presend delivered
// them (the executor consumed the previous copy when it answered
// NeedResync).
func (r *clusterRun) sendShare(n *execNode, gen int, seq int64, bc *broadcast, sp span, batch []twitterdata.Tweet, forceData bool) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.up || n.gen != gen {
		return fmt.Errorf("engine: executor %s went down", n.addr)
	}
	if n.bcSeq != seq {
		// Entering a new batch: presend records for finished batches are
		// dead weight — prune them so the map stays bounded on long runs.
		for key := range n.presends {
			if key.seq < seq {
				delete(n.presends, key)
			}
		}
		msg := r.broadcastFor(n, bc)
		pre := n.conn.out.Load()
		if err := r.encodeWithDeadline(n, &msg); err != nil {
			return fmt.Errorf("engine: broadcast to executor %s: %w", n.addr, err)
		}
		sent := n.conn.out.Load() - pre
		r.broadcastBytes.Add(sent)
		clusterBroadcastBytes.Add(sent)
		n.bcSeq = seq
		n.modelHash = bc.modelHash
		n.modelParts = bc.partHashes
		n.vocabVersion = bc.vocabVer
		n.vocabLen = len(bc.vocabLog)
	}
	if forceData || !n.presends[respKey{seq: seq, lo: sp.lo, hi: sp.hi}] {
		data := wireMsg{Kind: msgData, Seq: seq, Lo: sp.lo, Hi: sp.hi,
			Tasks: r.cfg.TasksPerExecutor, Tweets: batch[sp.lo:sp.hi],
			TraceID: r.curTraceID}
		pre := n.conn.out.Load()
		if err := r.encodeWithDeadline(n, &data); err != nil {
			return fmt.Errorf("engine: send share to executor %s: %w", n.addr, err)
		}
		sent := n.conn.out.Load() - pre
		r.dataBytes.Add(sent)
		clusterDataBytes.Add(sent)
	}
	return nil
}

// encodeWithDeadline sends one frame with a write deadline. Sends happen
// under the node mutex, which markDown also needs before it can close the
// connection — so an unbounded write to a peer that stopped reading would
// deadlock the node forever. The deadline converts it into a send error
// the caller turns into a failover. Callers hold n.mu.
func (r *clusterRun) encodeWithDeadline(n *execNode, msg *wireMsg) error {
	_ = n.conn.SetWriteDeadline(time.Now().Add(r.cfg.ShareTimeout))
	err := n.enc.Encode(msg)
	_ = n.conn.SetWriteDeadline(time.Time{})
	return err
}

// presend ships batch seq's tweet shares to the currently-healthy nodes
// while the previous batch is still in flight. The executor parks them
// until the broadcast arrives; if the node assignment shifts before then
// (failover), the stale copies are superseded by their share bounds.
func (r *clusterRun) presend(seq int64, batch []twitterdata.Tweet) {
	healthy := r.healthyNodes()
	if len(healthy) == 0 {
		return
	}
	shares := splitSpans(len(batch), len(healthy))
	var wg sync.WaitGroup
	for i, sp := range shares {
		if sp.lo >= sp.hi {
			continue
		}
		wg.Add(1)
		go func(sp span, n *execNode) {
			defer wg.Done()
			n.mu.Lock()
			if !n.up {
				n.mu.Unlock()
				return
			}
			gen := n.gen
			data := wireMsg{Kind: msgData, Seq: seq, Lo: sp.lo, Hi: sp.hi,
				Tasks: r.cfg.TasksPerExecutor, Tweets: batch[sp.lo:sp.hi]}
			pre := n.conn.out.Load()
			err := r.encodeWithDeadline(n, &data)
			if err == nil {
				sent := n.conn.out.Load() - pre
				r.dataBytes.Add(sent)
				clusterDataBytes.Add(sent)
				n.presends[respKey{seq: seq, lo: sp.lo, hi: sp.hi}] = true
			}
			n.mu.Unlock()
			if err != nil {
				r.markDown(n, gen, fmt.Errorf("engine: presend to executor %s: %w", n.addr, err))
			}
		}(sp, healthy[i%len(healthy)])
	}
	wg.Wait()
}

// connect dials a node, runs the hello handshake, and starts its receive
// loop. The node's broadcast bookkeeping is reset so the next batch sends
// the full state.
func (r *clusterRun) connect(n *execNode) error {
	raw, err := net.DialTimeout("tcp", n.addr, 3*time.Second)
	if err != nil {
		return fmt.Errorf("engine: dial executor %s: %w", n.addr, err)
	}
	conn := &countingConn{Conn: raw}
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	_ = raw.SetDeadline(time.Now().Add(5 * time.Second))
	hello := wireMsg{Kind: msgHello, Seq: -1, Proto: clusterProtoVersion, ModelKind: r.kind}
	if err := enc.Encode(&hello); err != nil {
		conn.Close()
		return fmt.Errorf("engine: hello to executor %s: %w", n.addr, err)
	}
	var ack batchResponse
	if err := dec.Decode(&ack); err != nil {
		conn.Close()
		return fmt.Errorf("engine: hello ack from executor %s: %w", n.addr, err)
	}
	if ack.Err != "" {
		conn.Close()
		n.mu.Lock()
		n.abandoned = true // version/kind mismatch never heals by retrying
		n.mu.Unlock()
		return fmt.Errorf("engine: executor %s rejected session: %s", n.addr, ack.Err)
	}
	_ = raw.SetDeadline(time.Time{})

	n.mu.Lock()
	// A reconnect that completes as the run ends must not install a
	// connection shutdown() has already passed over; shutdown closes stop
	// before touching any node, so checking it under the node lock makes
	// the two mutually exclusive.
	select {
	case <-r.stop:
		n.mu.Unlock()
		conn.Close()
		return fmt.Errorf("engine: run ended during reconnect to %s", n.addr)
	default:
	}
	n.conn, n.enc, n.dec = conn, enc, dec
	n.gen++
	gen := n.gen
	n.up = true
	n.modelHash, n.modelParts, n.vocabVersion, n.vocabLen, n.bcSeq = 0, nil, 0, 0, -1
	n.presends = make(map[respKey]bool)
	n.pending = make(map[respKey]chan shareReply)
	n.mu.Unlock()
	go r.recvLoop(n, gen, dec)
	return nil
}

// recvLoop decodes responses for one connection generation and routes them
// to the waiting share exchanges. Responses for shares nobody is waiting on
// (stale presends processed after a reassignment) are dropped.
func (r *clusterRun) recvLoop(n *execNode, gen int, dec *gob.Decoder) {
	for {
		var resp batchResponse
		if err := dec.Decode(&resp); err != nil {
			r.markDown(n, gen, fmt.Errorf("engine: receive from executor %s: %w", n.addr, err))
			return
		}
		key := respKey{seq: resp.Seq, lo: resp.Lo, hi: resp.Hi}
		n.mu.Lock()
		if n.gen != gen {
			n.mu.Unlock()
			return
		}
		ch := n.pending[key]
		if ch != nil {
			delete(n.pending, key)
		}
		n.mu.Unlock()
		if ch != nil {
			ch <- shareReply{resp: resp}
		}
	}
}

// markDown transitions a node to unhealthy exactly once per connection
// generation: it closes the connection, fails the pending exchanges so
// their shares fail over, and starts the reconnect loop.
func (r *clusterRun) markDown(n *execNode, gen int, err error) {
	n.mu.Lock()
	if !n.up || n.gen != gen {
		n.mu.Unlock()
		return
	}
	n.up = false
	conn := n.conn
	pend := n.pending
	n.pending = nil
	n.presends = nil
	n.mu.Unlock()
	conn.Close()
	for _, ch := range pend {
		ch <- shareReply{err: err}
	}
	select {
	case <-r.stop:
		return
	default:
	}
	go r.revive(n)
}

// revive reconnects a downed node with exponential backoff, abandoning it
// after MaxConnAttempts consecutive failures.
func (r *clusterRun) revive(n *execNode) {
	n.mu.Lock()
	if n.reviving || n.abandoned || n.up {
		n.mu.Unlock()
		return
	}
	n.reviving = true
	n.mu.Unlock()
	defer func() {
		n.mu.Lock()
		n.reviving = false
		// A markDown between our connect succeeding and this flag clearing
		// saw reviving=true and declined to spawn; if the node went down
		// again in that window, pick the baton back up ourselves so it is
		// neither retried-by-nobody nor abandoned-by-nobody.
		respawn := !n.up && !n.abandoned
		n.mu.Unlock()
		if !respawn {
			return
		}
		select {
		case <-r.stop:
		default:
			go r.revive(n)
		}
	}()
	backoff := r.cfg.ReconnectBackoff
	for attempt := 1; attempt <= r.cfg.MaxConnAttempts; attempt++ {
		select {
		case <-r.stop:
			return
		case <-time.After(backoff):
		}
		if backoff < time.Second {
			backoff *= 2
		}
		err := r.connect(n)
		if err == nil {
			r.reconnects.Add(1)
			clusterReconnects.Inc()
			return
		}
		if n.abandonedNow() { // hello rejection: retrying cannot help
			return
		}
	}
	n.mu.Lock()
	n.abandoned = true
	n.mu.Unlock()
}

func (n *execNode) abandonedNow() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.abandoned
}

func (r *clusterRun) healthyNodes() []*execNode {
	var out []*execNode
	for _, n := range r.nodes {
		if n.isUp() {
			out = append(out, n)
		}
	}
	return out
}

func (r *clusterRun) pickNode(tried map[*execNode]bool) *execNode {
	for _, n := range r.nodes {
		if !tried[n] && n.isUp() {
			return n
		}
	}
	return nil
}

func (r *clusterRun) allAbandoned() bool {
	for _, n := range r.nodes {
		if !n.abandonedNow() {
			return false
		}
	}
	return true
}

// waitHealthy blocks until at least one node is up, failing after
// AllDownWait (or immediately once every node is abandoned).
func (r *clusterRun) waitHealthy() ([]*execNode, error) {
	deadline := time.Now().Add(r.cfg.AllDownWait)
	for {
		if h := r.healthyNodes(); len(h) > 0 {
			return h, nil
		}
		if r.allAbandoned() {
			return nil, fmt.Errorf("engine: every executor is gone (abandoned after %d attempts each)", r.cfg.MaxConnAttempts)
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("engine: every executor is down and none reconnected within %v", r.cfg.AllDownWait)
		}
		time.Sleep(15 * time.Millisecond)
	}
}

// shutdown ends the run: reconnect loops stop, up nodes get the polite
// shutdown frame, and every connection is closed.
func (r *clusterRun) shutdown() {
	close(r.stop)
	bye := wireMsg{Kind: msgShutdown}
	for _, n := range r.nodes {
		n.mu.Lock()
		if n.conn != nil {
			if n.up {
				// Best-effort politeness; a peer that stopped reading must
				// not block the run from ending.
				_ = n.conn.SetWriteDeadline(time.Now().Add(time.Second))
				_ = n.enc.Encode(&bye)
			}
			n.conn.Close()
		}
		n.up = false
		n.mu.Unlock()
	}
}
