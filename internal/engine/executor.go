package engine

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"redhanded/internal/core"
	"redhanded/internal/feature"
	"redhanded/internal/ml"
	"redhanded/internal/norm"
	"redhanded/internal/stream"
)

// Executor is one cluster node: it listens on a TCP address and serves
// batch shares with a local worker pool. The paper's cluster nodes have 8
// cores each. Each connection is an independent session holding the last
// broadcast state (decoded model keyed by hash, normalizer statistics,
// vocabulary version), so an unchanged model or vocabulary costs the driver
// a few bytes instead of a full re-broadcast.
type Executor struct {
	ln      net.Listener
	workers int

	mu       sync.Mutex
	closed   bool
	handled  int64
	serveErr error
	conns    map[net.Conn]bool

	// inflight tracks shares being processed (including their response
	// flush) so Close can drain them instead of hard-closing connections
	// under the drivers; loops tracks the accept and connection goroutines.
	inflight sync.WaitGroup
	loops    sync.WaitGroup

	vocabSize atomic.Int64

	// corruptDeltas is a fault-injection hook used by the driver's
	// failover tests: when set, returned delta blobs are flipped so the
	// driver's merge-time validation path is exercised.
	corruptDeltas atomic.Bool
	// shareHook, when set (under mu), runs at the start of every share —
	// fault tests use it to crash the executor at a precise point.
	shareHook func()
	// onHello, when set (under mu), observes every hello negotiation —
	// cmd/rhexecutor logs the model kind each driver session settles on.
	onHello func(modelKind string, accepted bool)
}

// OnHello registers an observer called after every hello negotiation with
// the requested model kind and whether the session was accepted. Set it
// before drivers connect.
func (e *Executor) OnHello(fn func(modelKind string, accepted bool)) {
	e.mu.Lock()
	e.onHello = fn
	e.mu.Unlock()
}

// kill abruptly severs the executor — listener and connections close with
// no drain, the test stand-in for a crashed process (SIGKILL, OOM, node
// loss). In-flight shares lose their connections mid-response, which is
// exactly what the driver's failover path must absorb.
func (e *Executor) kill() {
	e.mu.Lock()
	e.closed = true
	conns := make([]net.Conn, 0, len(e.conns))
	for c := range e.conns {
		conns = append(conns, c)
	}
	e.mu.Unlock()
	e.ln.Close()
	for _, c := range conns {
		c.Close()
	}
}

// drainTimeout bounds how long Close waits for in-flight shares to flush
// their responses before closing connections under them.
const drainTimeout = 10 * time.Second

// StartExecutor launches an executor listening on addr (use "127.0.0.1:0"
// for an ephemeral port).
func StartExecutor(addr string, workers int) (*Executor, error) {
	if workers < 1 {
		workers = 1
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("engine: executor listen: %w", err)
	}
	e := &Executor{ln: ln, workers: workers, conns: make(map[net.Conn]bool)}
	e.loops.Add(1)
	go e.serve()
	return e, nil
}

// Addr returns the executor's listen address.
func (e *Executor) Addr() string { return e.ln.Addr().String() }

// Handled returns how many batch shares this executor served.
func (e *Executor) Handled() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.handled
}

// Err returns the accept-loop failure, if any. A listener torn down by
// anything other than Close surfaces here, so operators and tests can see
// why an executor stopped serving.
func (e *Executor) Err() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.serveErr
}

// LastVocabSize reports the BoW vocabulary size observed by the most
// recently served share — the executor-side view of the broadcast
// handshake (a reconnected executor shows the full resynced vocabulary).
func (e *Executor) LastVocabSize() int { return int(e.vocabSize.Load()) }

// ActiveConns returns the number of live driver connections.
func (e *Executor) ActiveConns() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.conns)
}

// Close stops the executor gracefully: it stops accepting, waits for
// in-flight shares to finish and flush their responses, then closes the
// remaining connections. It returns the accept-loop error, if any.
func (e *Executor) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		e.loops.Wait()
		return e.Err()
	}
	e.closed = true
	e.mu.Unlock()
	e.ln.Close()
	// Drain: shares already being processed complete and their responses
	// reach the driver before the connections go away. The wait is bounded
	// so a driver that stopped reading (hung process, dead network path
	// with a full TCP window) cannot block shutdown forever — past the
	// deadline the connections are closed under the stuck flush.
	drained := make(chan struct{})
	go func() {
		e.inflight.Wait()
		close(drained)
	}()
	select {
	case <-drained:
	case <-time.After(drainTimeout):
	}
	e.mu.Lock()
	for c := range e.conns {
		c.Close()
	}
	e.mu.Unlock()
	e.loops.Wait()
	return e.Err()
}

func (e *Executor) serve() {
	defer e.loops.Done()
	for {
		conn, err := e.ln.Accept()
		if err != nil {
			e.mu.Lock()
			if !e.closed {
				e.serveErr = err
			}
			e.mu.Unlock()
			return
		}
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			conn.Close()
			continue
		}
		e.conns[conn] = true
		e.loops.Add(1)
		e.mu.Unlock()
		go e.serveConn(conn)
	}
}

// execSession is the per-connection protocol state: the negotiated model
// kind, the cached decoded model and its hash, the current normalizer
// statistics, the persistent extractor whose BoW tracks the broadcast
// vocabulary version, and data frames parked for batches whose broadcast
// has not arrived yet (the driver pre-sends batch k+1's tweets while batch
// k is still in flight).
type execSession struct {
	e   *Executor
	enc *gob.Encoder
	dec *gob.Decoder

	modelKind string
	model     stream.RemoteTrainable
	modelHash uint64
	// snap caches the compiled classify snapshot across shares. Patched
	// broadcasts (PatchParts) keep unpatched member-tree pointers, so the
	// recompile after a patch re-flattens only the members the driver
	// actually shipped; full restores recompile everything.
	snap *stream.Compiled

	stats    *norm.FeatureStats
	normMode int
	scheme   int

	extractor    *feature.Extractor
	preprocess   bool
	vocabVersion uint64

	seq        int64
	bcOK       bool
	needResync bool
	bcErr      string
	parked     []wireMsg
}

func (e *Executor) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		e.mu.Lock()
		delete(e.conns, conn)
		e.mu.Unlock()
		e.loops.Done()
	}()
	s := &execSession{e: e, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}
	for {
		var msg wireMsg
		if err := s.dec.Decode(&msg); err != nil {
			return // connection closed or corrupted; the driver fails over
		}
		switch msg.Kind {
		case msgHello:
			if !s.hello(&msg) {
				return
			}
		case msgShutdown:
			return // polite end-of-run
		case msgBroadcast:
			s.applyBroadcast(&msg)
			if !s.drainParked() {
				return
			}
		case msgData:
			if !s.handleData(&msg) {
				return
			}
		default:
			return // protocol violation
		}
	}
}

// hello negotiates the protocol version and model kind for the session.
func (s *execSession) hello(msg *wireMsg) bool {
	resp := batchResponse{Seq: msg.Seq, Proto: clusterProtoVersion}
	switch {
	case msg.Proto != clusterProtoVersion:
		resp.Err = fmt.Sprintf("engine: driver speaks cluster protocol v%d, executor v%d", msg.Proto, clusterProtoVersion)
	case !stream.KnownKind(msg.ModelKind):
		resp.Err = fmt.Sprintf("engine: executor cannot host model kind %q (registered: %v)",
			msg.ModelKind, stream.KnownKinds())
	default:
		s.modelKind = msg.ModelKind
	}
	s.e.mu.Lock()
	hook := s.e.onHello
	s.e.mu.Unlock()
	if hook != nil {
		hook(msg.ModelKind, resp.Err == "")
	}
	if err := s.enc.Encode(&resp); err != nil {
		return false
	}
	return resp.Err == ""
}

// applyBroadcast installs one batch's broadcast state. Model and vocabulary
// arrive as deltas against what this session already holds; a reference to
// state the session does not hold flags NeedResync, which the driver
// answers with a full re-broadcast.
func (s *execSession) applyBroadcast(msg *wireMsg) {
	s.seq = msg.Seq
	s.bcOK, s.needResync, s.bcErr = false, false, ""
	s.normMode, s.scheme = msg.NormMode, msg.Scheme

	switch {
	case len(msg.ModelBlob) > 0:
		// Monolithic kinds: a full model blob replaces the session's copy.
		m, err := stream.DecodeModel(s.modelKind, msg.ModelBlob)
		if err != nil {
			s.bcErr = err.Error()
			return
		}
		s.model, s.modelHash = m, msg.ModelHash
	case len(msg.ModelHeader) > 0 && msg.ModelFull:
		// Partitioned kinds, full restore: header plus the complete part set.
		m, err := stream.DecodeModelParts(s.modelKind, msg.ModelHeader, msg.ModelParts)
		if err != nil {
			s.bcErr = err.Error()
			return
		}
		s.model, s.modelHash = m, msg.ModelHash
	case len(msg.ModelHeader) > 0:
		// Partitioned kinds, patch: only the changed parts, applied onto the
		// model this session already holds. A session that cannot apply the
		// patch (fresh connection, or a base the driver did not expect)
		// resyncs instead of serving shares against a wrong ensemble.
		pm, ok := s.model.(stream.PartitionedModel)
		if !ok {
			s.needResync = true
			return
		}
		if err := pm.PatchParts(msg.ModelHeader, msg.ModelPartIdx, msg.ModelParts); err != nil {
			s.needResync = true
			return
		}
		s.modelHash = msg.ModelHash
	case s.model == nil || s.modelHash != msg.ModelHash:
		s.needResync = true
		return
	}

	stats := norm.NewFeatureStats(feature.NumFeatures)
	if err := stats.UnmarshalBinary(msg.StatsBlob); err != nil {
		s.bcErr = err.Error()
		return
	}
	s.stats = stats

	if s.extractor == nil || s.preprocess != msg.Preprocess {
		bowCfg := feature.DefaultBoWConfig()
		bowCfg.Frozen = true // adaptation happens at the driver only
		s.extractor = feature.NewExtractor(feature.Config{Preprocess: msg.Preprocess, BoW: bowCfg})
		s.preprocess = msg.Preprocess
		s.vocabVersion = 0
	}
	switch {
	case msg.VocabBase == 0:
		s.extractor.BoW().SetWords(msg.VocabWords)
		s.vocabVersion = msg.VocabVersion
	case msg.VocabBase == s.vocabVersion:
		s.extractor.BoW().AppendWords(msg.VocabWords)
		s.vocabVersion = msg.VocabVersion
	default:
		s.needResync = true
		return
	}
	s.bcOK = true
}

// handleData processes, parks, or drops one data frame depending on how
// its sequence number relates to the current broadcast.
func (s *execSession) handleData(msg *wireMsg) bool {
	switch {
	case msg.Seq == s.seq:
		return s.processData(msg)
	case msg.Seq > s.seq:
		// Pre-sent share for a future batch; dedupe by share bounds so a
		// re-sent share replaces its stale twin.
		for i := range s.parked {
			if s.parked[i].Seq == msg.Seq && s.parked[i].Lo == msg.Lo && s.parked[i].Hi == msg.Hi {
				s.parked[i] = *msg
				return true
			}
		}
		s.parked = append(s.parked, *msg)
		return true
	default:
		return true // stale share from an abandoned batch; driver moved on
	}
}

// drainParked processes parked data frames whose batch broadcast just
// arrived and drops ones the driver has abandoned.
func (s *execSession) drainParked() bool {
	keep := s.parked[:0]
	for i := range s.parked {
		msg := s.parked[i]
		switch {
		case msg.Seq == s.seq:
			if !s.processData(&msg) {
				return false
			}
		case msg.Seq > s.seq:
			keep = append(keep, msg)
		}
	}
	s.parked = keep
	return true
}

// processData runs one share against the current broadcast state and sends
// the response. The inflight window spans through the response encode so
// Close's drain guarantees the driver sees the result.
func (s *execSession) processData(msg *wireMsg) bool {
	resp := batchResponse{Seq: msg.Seq, Lo: msg.Lo, Hi: msg.Hi, TraceID: msg.TraceID}
	busy := false
	switch {
	case s.needResync:
		resp.NeedResync = true
	case !s.bcOK:
		resp.Err = s.bcErr
		if resp.Err == "" {
			resp.Err = "engine: data frame before any broadcast"
		}
	default:
		e := s.e
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			return false
		}
		e.inflight.Add(1)
		e.handled++
		hook := e.shareHook
		e.mu.Unlock()
		busy = true
		if hook != nil {
			hook()
		}
		start := time.Now()
		resp = s.runShare(msg)
		resp.TraceID = msg.TraceID
		resp.ExecNanos = int64(time.Since(start))
		if e.corruptDeltas.Load() {
			for _, blob := range resp.DeltaBlobs {
				for i := range blob {
					blob[i] ^= 0xff
				}
			}
		}
	}
	err := s.enc.Encode(&resp)
	if busy {
		s.e.inflight.Done()
	}
	return err == nil
}

// runShare executes one share: parallel feature extraction plus local
// statistics accumulation, then normalization against the broadcast global
// statistics merged with the share's own delta, prediction with the
// broadcast model, and training-delta accumulation. The outcome depends
// only on the broadcast state and the share's tweets — never on which node
// runs it — which is what makes failover reassignment exact.
func (s *execSession) runShare(msg *wireMsg) batchResponse {
	resp := batchResponse{Seq: msg.Seq, Lo: msg.Lo, Hi: msg.Hi}
	model := s.model
	scheme := core.ClassScheme(s.scheme)
	stats := s.stats.Clone()
	s.e.vocabSize.Store(int64(s.extractor.BoW().Size()))

	tweets := msg.Tweets
	parts := msg.Tasks
	if parts < 1 {
		parts = 1
	}
	if parts > len(tweets) {
		parts = len(tweets)
	}

	// Phase 1 (parallel): extract raw features into pooled vectors,
	// accumulate local stats. The vectors are released after phase 2.
	raws := make([]*feature.Vec, len(tweets))
	labels := make([]int, len(tweets))
	statsDeltas := make([]*norm.FeatureStats, parts)
	var wg sync.WaitGroup
	sem := make(chan struct{}, s.e.workers)
	runTasks := func(fn func(part int)) {
		for part := 0; part < parts; part++ {
			part := part
			wg.Add(1)
			go func() {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				fn(part)
			}()
		}
		wg.Wait()
	}
	runTasks(func(part int) {
		delta := norm.NewFeatureStats(feature.NumFeatures)
		for idx := part; idx < len(tweets); idx += parts {
			tw := &tweets[idx]
			raws[idx] = feature.GetVec()
			s.extractor.ExtractInto(raws[idx][:], tw)
			delta.Observe(raws[idx][:])
			labels[idx] = ml.Unlabeled
			if tw.IsLabeled() {
				labels[idx] = scheme.LabelIndex(tw.Label)
			}
		}
		statsDeltas[part] = delta
	})

	// The executor normalizes against the broadcast global statistics plus
	// its own share's delta; the authoritative merge happens at the driver.
	localDelta := norm.NewFeatureStats(feature.NumFeatures)
	for _, d := range statsDeltas {
		localDelta.Merge(d)
	}
	stats.Merge(localDelta)
	snapshot := &norm.Normalizer{Mode: norm.Mode(s.normMode), Stats: stats}

	// Phase 2 (parallel): normalize, predict, accumulate training deltas.
	// Prediction goes through the compiled form of the broadcast model —
	// immutable, so the parallel tasks share it without coordination.
	var csnap *stream.Compiled
	if cm, ok := model.(stream.Compilable); ok {
		s.snap = cm.CompileSnapshot(s.snap)
		csnap = s.snap
	}
	results := make([]partitionResult, parts)
	runTasks(func(part int) {
		res := partitionResult{part: part, acc: model.NewAccumulator()}
		var votesBuf ml.Prediction
		var scratch []float64
		if csnap != nil {
			votesBuf = make(ml.Prediction, csnap.NumClasses())
			scratch = make([]float64, csnap.ScratchLen())
		}
		for idx := part; idx < len(tweets); idx += parts {
			x := snapshot.Normalize(raws[idx][:], nil)
			var votes ml.Prediction
			if csnap != nil {
				csnap.PredictInto(votesBuf, scratch, x)
				votes = votesBuf
			} else {
				votes = model.Predict(x)
			}
			label := labels[idx]
			if label >= 0 {
				res.acc.Observe(ml.Instance{
					X: x, Label: label, Weight: 1,
					ID: tweets[idx].IDStr, Day: tweets[idx].Day,
				})
			}
			res.classified = append(res.classified, classifiedRec{
				Idx: idx, Label: label, Pred: votes.ArgMax(), Conf: votes.Confidence(),
			})
		}
		results[part] = res
	})

	for _, v := range raws {
		feature.PutVec(v)
	}

	for _, res := range results {
		blob, err := res.acc.(stream.StatefulAccumulator).State()
		if err != nil {
			resp.Err = err.Error()
			return resp
		}
		resp.DeltaBlobs = append(resp.DeltaBlobs, blob)
		resp.Classified = append(resp.Classified, res.classified...)
	}
	statsBlob, err := localDelta.MarshalBinary()
	if err != nil {
		resp.Err = err.Error()
		return resp
	}
	resp.StatsBlob = statsBlob
	return resp
}
