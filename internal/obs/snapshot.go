package obs

import (
	"encoding/json"
	"net/http"
	"time"
)

// StageNanos is one stage's share of a trace breakdown.
type StageNanos struct {
	Stage string `json:"stage"`
	Nanos int64  `json:"nanos"`
}

// Trace is the JSON form of one recorded span.
type Trace struct {
	TraceID       uint64       `json:"trace_id"`
	ID            string       `json:"id"` // tweet ID, or "batch-N" for driver spans
	Shard         int          `json:"shard"`
	StartUnixNano int64        `json:"start_unix_nano"`
	TotalNanos    int64        `json:"total_nanos"`
	Slow          bool         `json:"slow,omitempty"`
	Stages        []StageNanos `json:"stages"`
}

func (e Entry) trace() Trace {
	tr := Trace{
		TraceID:       e.TraceID,
		ID:            e.ID,
		Shard:         e.Shard,
		StartUnixNano: e.StartUnixNano,
		TotalNanos:    e.TotalNanos,
		Slow:          e.Slow,
	}
	for s := Stage(0); s < NumStages; s++ {
		if d := e.Stages[s]; d > 0 {
			tr.Stages = append(tr.Stages, StageNanos{Stage: s.String(), Nanos: d})
		}
	}
	return tr
}

// StageStats summarises one stage's latency distribution (quantiles come
// from the registry histograms, so they cover every span ever finished,
// not just the ones still in a ring).
type StageStats struct {
	Stage      string `json:"stage"`
	Count      int64  `json:"count"`
	TotalNanos int64  `json:"total_nanos"`
	P50Nanos   int64  `json:"p50_nanos"`
	P95Nanos   int64  `json:"p95_nanos"`
	P99Nanos   int64  `json:"p99_nanos"`
}

// Summary is the GET /v1/trace payload: aggregate stage statistics plus
// reservoir exemplars and the most recent traces per shard.
type Summary struct {
	Enabled         bool         `json:"enabled"`
	Spans           int64        `json:"spans"`
	SlowSpans       int64        `json:"slow_spans"`
	SlowBudgetNanos int64        `json:"slow_budget_nanos"`
	Stages          []StageStats `json:"stages,omitempty"`
	Exemplars       []Trace      `json:"exemplars,omitempty"`
	Recent          []Trace      `json:"recent,omitempty"`
}

// SlowReport is the GET /v1/trace/slow payload.
type SlowReport struct {
	Enabled         bool    `json:"enabled"`
	SlowBudgetNanos int64   `json:"slow_budget_nanos"`
	SlowSpans       int64   `json:"slow_spans"`
	Traces          []Trace `json:"traces"`
}

// Snapshot assembles the trace summary: per-stage quantiles from the
// histograms, every shard's reservoir exemplars, and up to recentPerShard
// recent entries per shard (0 means 16). Safe to call concurrently with
// tracing. A nil tracer reports Enabled=false.
func (t *Tracer) Snapshot(recentPerShard int) Summary {
	if t == nil {
		return Summary{}
	}
	if recentPerShard <= 0 {
		recentPerShard = 16
	}
	sum := Summary{
		Enabled:         true,
		Spans:           t.spans.Load(),
		SlowSpans:       t.slowSpans.Load(),
		SlowBudgetNanos: int64(t.cfg.SlowBudget),
	}
	if t.totalHist != nil {
		for s := Stage(0); s < NumStages; s++ {
			h := t.stageHist[s]
			if h.Count() == 0 {
				continue
			}
			sum.Stages = append(sum.Stages, StageStats{
				Stage:      s.String(),
				Count:      h.Count(),
				TotalNanos: int64(h.Sum() * 1e9),
				P50Nanos:   int64(h.Quantile(0.50) * 1e9),
				P95Nanos:   int64(h.Quantile(0.95) * 1e9),
				P99Nanos:   int64(h.Quantile(0.99) * 1e9),
			})
		}
	}
	for i := range t.shards {
		for _, e := range t.shards[i].reservoir.snapshot() {
			sum.Exemplars = append(sum.Exemplars, e.trace())
		}
		for _, e := range t.shards[i].ring.snapshot(recentPerShard) {
			sum.Recent = append(sum.Recent, e.trace())
		}
	}
	return sum
}

// SlowTraces returns the captured over-budget spans, oldest first. A nil
// tracer reports Enabled=false.
func (t *Tracer) SlowTraces() SlowReport {
	if t == nil {
		return SlowReport{}
	}
	rep := SlowReport{
		Enabled:         true,
		SlowBudgetNanos: int64(t.cfg.SlowBudget),
		SlowSpans:       t.slowSpans.Load(),
	}
	for _, e := range t.slow.snapshot() {
		rep.Traces = append(rep.Traces, e.trace())
	}
	return rep
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// TraceHandler serves the trace summary as JSON (the /v1/trace endpoint).
// Works on a nil tracer (reports tracing disabled).
func TraceHandler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, t.Snapshot(0))
	})
}

// SlowHandler serves the slow-verdict captures as JSON (/v1/trace/slow).
func SlowHandler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, t.SlowTraces())
	})
}

// DurString renders nanoseconds for human-facing tables (loadgen's
// per-stage breakdown).
func DurString(nanos int64) string { return time.Duration(nanos).Round(time.Microsecond).String() }
