// Package obs is the observability layer of the serving stack: an
// allocation-free tracing substrate that stamps every tweet with a span at
// ingest, records per-stage timings (queue wait → extract → classify →
// userstate observe → verdict fan-out → SSE emit, plus the cluster
// driver's executor round trips) into per-shard lock-free ring buffers,
// keeps reservoir-sampled exemplars per shard, and captures the full stage
// breakdown of any span that exceeds a configurable latency budget
// ("slow verdicts").
//
// The package exists because the pipeline's hot paths are zero-alloc
// (feature extraction, userstate Observe, the cluster share loop) and the
// only visibility into them so far was aggregate counters: no way to
// answer "why was this verdict slow?". The design constraint is therefore
// that tracing must not break the 0 allocs/op invariant:
//
//   - spans are pooled per shard (sync.Pool), never escaping to the heap
//     on the steady state;
//   - ring entries are fixed-size and encoded into a slab of
//     atomic.Uint64 words, so the single-producer shard goroutine appends
//     lock-free while /v1/trace readers snapshot concurrently without a
//     mutex (entries overwritten mid-copy are detected by re-reading the
//     head and discarded);
//   - the slow ring is multi-producer (any shard can capture) and uses a
//     per-slot sequence word so a torn read is detected and dropped
//     instead of served.
//
// A nil *Tracer is valid and free: every method on a nil tracer or nil
// span is a no-op, so disabled tracing costs one predictable branch.
package obs

import (
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"redhanded/internal/metrics"
)

// Stage identifies one step of a tweet's (or micro-batch's) journey.
type Stage uint8

// The span stages, in pipeline order. The serving path uses Queue through
// Emit; the cluster driver uses ExecutorRTT/ExecutorCompute/Merge for its
// per-batch spans (ExecutorCompute is the executor-reported share compute
// time, a subset of the ExecutorRTT wall time — the difference is wire
// and queueing cost).
const (
	StageQueue           Stage = iota // shard queue wait (ingest → shard loop)
	StageCache                        // extraction-cache lookup (hit ⇒ StageExtract is skipped)
	StageExtract                      // preprocessing + feature extraction + normalization
	StageClassify                     // model predict, prequential record, train
	StageObserve                      // userstate Observe fold
	StageVerdict                      // session/escalation fan-out + alerting
	StageEmit                         // SSE hub publish (subset-free: excluded from Verdict)
	StageExecutorRTT                  // cluster: share round trips, wall time
	StageExecutorCompute              // cluster: executor-reported share compute (⊆ RTT)
	StageMerge                        // cluster: delta decode + merge + absorb
	StageCompile                      // compiled-snapshot rebuild after a model mutation
	NumStages
)

var stageNames = [NumStages]string{
	"queue", "cache", "extract", "classify", "observe", "verdict", "emit",
	"executor_rtt", "executor_compute", "merge", "compile",
}

// stageBuckets extends the registry's default latency buckets down to 1µs:
// pipeline stages (extract ~5µs, classify ~10µs) would otherwise all land
// in one bucket and quantiles would read as its interpolated midpoint. The
// extra low buckets cost a few scan steps on Observe — still branch-free
// of allocation, and hot stages hit the early bounds first.
var stageBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 1e-1, 2.5e-1, 1,
}

// String returns the stage's wire name (used in JSON payloads and as the
// stage label on the per-stage histograms).
func (s Stage) String() string {
	if s < NumStages {
		return stageNames[s]
	}
	return "unknown"
}

// Config configures a Tracer.
type Config struct {
	// Enabled gates the whole layer; when false New returns nil, which
	// every method treats as "tracing off".
	Enabled bool
	// Shards is the number of independent single-producer rings (one per
	// pipeline shard; the cluster driver uses 1). Default 1.
	Shards int
	// RingSize is the per-shard ring capacity in entries, rounded up to a
	// power of two (default 512).
	RingSize int
	// SlowBudget is the end-to-end latency above which a span is captured
	// with its full stage breakdown in the slow ring (default 25ms;
	// negative disables slow capture).
	SlowBudget time.Duration
	// SlowCap is the slow ring capacity (default 64).
	SlowCap int
	// Exemplars is the per-shard reservoir size (default 8).
	Exemplars int
	// Seed seeds the reservoir RNG; a fixed seed makes exemplar selection
	// deterministic for a given finish sequence. Default 1.
	Seed uint64
	// Registry receives the per-stage latency histograms
	// (redhanded_trace_stage_seconds{stage=...}) and the span total
	// histogram. Nil skips histogram registration.
	Registry *metrics.Registry
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.RingSize <= 0 {
		c.RingSize = 512
	}
	if c.SlowBudget == 0 {
		c.SlowBudget = 25 * time.Millisecond
	}
	if c.SlowCap <= 0 {
		c.SlowCap = 64
	}
	if c.Exemplars <= 0 {
		c.Exemplars = 8
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// shardState is one shard's tracing lane: a pooled span slot, a
// single-producer ring, and a reservoir of exemplar entries.
type shardState struct {
	pool      sync.Pool // *Span
	ring      *ring
	reservoir *reservoir
}

// Tracer owns the per-shard rings, the slow ring, and the stage
// histograms. A nil *Tracer is valid: Begin returns a nil span and every
// other method is a no-op.
type Tracer struct {
	cfg       Config
	epoch     time.Time // monotonic base for all span clocks
	epochUnix int64     // wall nanos at epoch, for entry start timestamps
	shards    []shardState
	slow      *slowRing
	nextID    atomic.Uint64
	spans     atomic.Int64 // finished spans
	slowSpans atomic.Int64 // spans over budget

	stageHist [NumStages]*metrics.Histogram
	totalHist *metrics.Histogram
}

// New builds a tracer, or returns nil when cfg.Enabled is false (the
// universal "tracing off" value).
func New(cfg Config) *Tracer {
	if !cfg.Enabled {
		return nil
	}
	cfg = cfg.withDefaults()
	t := &Tracer{
		cfg:    cfg,
		epoch:  time.Now(),
		slow:   newSlowRing(cfg.SlowCap),
		shards: make([]shardState, cfg.Shards),
	}
	t.epochUnix = t.epoch.UnixNano()
	for i := range t.shards {
		t.shards[i].ring = newRing(cfg.RingSize)
		t.shards[i].reservoir = newReservoir(cfg.Exemplars, cfg.Seed+uint64(i)*0x9e3779b97f4a7c15)
	}
	if cfg.Registry != nil {
		for s := Stage(0); s < NumStages; s++ {
			t.stageHist[s] = cfg.Registry.Histogram("redhanded_trace_stage_seconds",
				"Per-stage span latency recorded by the tracing layer.",
				stageBuckets, metrics.Labels{"stage": s.String()})
		}
		t.totalHist = cfg.Registry.Histogram("redhanded_trace_span_seconds",
			"End-to-end span latency (ingest through verdict fan-out).", stageBuckets, nil)
	}
	return t
}

// now returns nanoseconds since the tracer epoch on the monotonic clock.
//
//redvet:noalloc gate=SpanLifecycle
func (t *Tracer) now() int64 {
	//redvet:ignore hotpathhygiene this IS the span timebase: one monotonic clock read per stage boundary is the cost being measured, and time.Since of a monotonic epoch never allocates
	return int64(time.Since(t.epoch))
}

// Begin starts a span on the given shard's lane, drawing the span from the
// shard's pool. The span starts with StageQueue already open (reusing
// Begin's clock read): the first thing that happens to a traced tweet is
// waiting for its shard. Callers whose first stage differs simply call
// BeginStage immediately. A nil tracer (tracing disabled) returns a nil
// span, on which every method is a no-op.
//
//redvet:noalloc gate=SpanLifecycle
func (t *Tracer) Begin(shard int) *Span {
	if t == nil {
		return nil
	}
	if shard < 0 || shard >= len(t.shards) {
		shard = 0
	}
	st := &t.shards[shard]
	sp, _ := st.pool.Get().(*Span)
	if sp == nil {
		//redvet:ignore noalloc pool-miss warmup path; the steady state recycles spans through the shard pool and BenchmarkSpanLifecycle proves 0 allocs/op
		sp = new(Span)
	}
	*sp = Span{
		tracer:  t,
		shard:   uint8(shard),
		traceID: t.nextID.Add(1),
		start:   t.now(),
	}
	sp.curStart = sp.start
	sp.cur = StageQueue
	sp.open = true
	return sp
}

// Abort discards a span without recording it (e.g. a tweet rejected by
// backpressure before reaching its shard), returning it to the pool.
//
//redvet:noalloc gate=SpanLifecycle
func (t *Tracer) Abort(sp *Span) {
	if t == nil || sp == nil {
		return
	}
	t.shards[sp.shard].pool.Put(sp)
}

// finish records a completed span: ring entry, histograms, reservoir
// offer, slow capture — then recycles the span. The entry is encoded once
// into a stack buffer and copied word-wise into each destination.
//
//redvet:noalloc gate=SpanLifecycle
func (t *Tracer) finish(sp *Span) {
	end := t.now()
	if sp.open {
		sp.dur[sp.cur] += end - sp.curStart
		sp.open = false
	}
	total := end - sp.start
	if total < 0 {
		total = 0
	}
	slow := t.cfg.SlowBudget > 0 && total > int64(t.cfg.SlowBudget)

	var w [entryWords]uint64
	encodeEntry(&w, sp, t.epochUnix, total, slow)

	st := &t.shards[sp.shard]
	st.ring.append(&w)
	st.reservoir.offer(&w)
	if slow {
		t.slow.append(&w)
		t.slowSpans.Add(1)
	}
	t.spans.Add(1)

	if t.totalHist != nil {
		t.totalHist.Observe(float64(total) / 1e9)
		for s := Stage(0); s < NumStages; s++ {
			if d := sp.dur[s]; d > 0 {
				t.stageHist[s].Observe(float64(d) / 1e9)
			}
		}
	}
	st.pool.Put(sp)
}

// Spans returns the number of finished spans.
func (t *Tracer) Spans() int64 {
	if t == nil {
		return 0
	}
	return t.spans.Load()
}

// SlowSpans returns the number of spans that exceeded the slow budget.
func (t *Tracer) SlowSpans() int64 {
	if t == nil {
		return 0
	}
	return t.slowSpans.Load()
}

// Budget returns the configured slow budget (0 for a nil tracer).
func (t *Tracer) Budget() time.Duration {
	if t == nil {
		return 0
	}
	return t.cfg.SlowBudget
}

// nextPow2 rounds n up to a power of two.
func nextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}
