package obs

import (
	"testing"
	"unsafe"
)

// The span is pooled and carried through every traced tweet, and the
// ring holds fixed-width encoded entries; both layouts were hand-packed
// (field order is checked by redvet's fieldalign analyzer). These pins
// make an accidental field addition or reorder a visible diff instead
// of a silent footprint regression. On a field change: re-pack the
// struct (largest alignment first), re-run `go run ./cmd/redvet ./...`,
// and update the pinned size here in the same commit.
func TestSpanSizePinned(t *testing.T) {
	const want = 168 // bytes on 64-bit, padding-free under the gc sizing model
	if got := unsafe.Sizeof(Span{}); got != want {
		t.Fatalf("unsafe.Sizeof(Span{}) = %d, pinned at %d: re-pack the fields and update the pin", got, want)
	}
}

func TestRingEntryWordsPinned(t *testing.T) {
	if entryWords != 20 {
		t.Fatalf("entryWords = %d, pinned at 20: the ring entry layout changed; update the encoder/decoder and this pin together", entryWords)
	}
	var w [entryWords]uint64
	if got := unsafe.Sizeof(w); got != 160 {
		t.Fatalf("ring entry = %d bytes, pinned at 160", got)
	}
}
