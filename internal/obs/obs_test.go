package obs

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"redhanded/internal/metrics"
)

func TestNilTracerAndSpanAreNoOps(t *testing.T) {
	var tr *Tracer
	if got := tr.Begin(3); got != nil {
		t.Fatalf("nil tracer Begin = %v, want nil", got)
	}
	tr.Abort(nil)
	if tr.Spans() != 0 || tr.SlowSpans() != 0 || tr.Budget() != 0 {
		t.Fatal("nil tracer counters should be zero")
	}
	sum := tr.Snapshot(4)
	if sum.Enabled {
		t.Fatal("nil tracer Snapshot should report disabled")
	}
	slow := tr.SlowTraces()
	if slow.Enabled {
		t.Fatal("nil tracer SlowTraces should report disabled")
	}

	var sp *Span
	sp.SetID("x")
	sp.BeginStage(StageExtract)
	sp.EndStage()
	sp.Add(StageMerge, time.Second)
	sp.AddExclusive(StageEmit, time.Second)
	if sp.TraceID() != 0 || sp.StageDur(StageExtract) != 0 {
		t.Fatal("nil span accessors should be zero")
	}
	sp.Finish()
}

func TestNewDisabledReturnsNil(t *testing.T) {
	if New(Config{}) != nil {
		t.Fatal("New with Enabled=false should return nil")
	}
}

func TestSpanLifecycleAndStageAccounting(t *testing.T) {
	tr := New(Config{Enabled: true, Shards: 2, SlowBudget: -1})
	sp := tr.Begin(1)
	if sp == nil {
		t.Fatal("Begin returned nil on enabled tracer")
	}
	if sp.TraceID() == 0 {
		t.Fatal("span should get a non-zero trace ID")
	}
	sp.SetID("tweet-42")
	sp.BeginStage(StageQueue)
	sp.BeginStage(StageQueue) // same-stage reopen must not reset accounting
	time.Sleep(time.Millisecond)
	sp.BeginStage(StageExtract)
	time.Sleep(time.Millisecond)
	sp.BeginStage(StageVerdict)
	sp.AddExclusive(StageEmit, 500*time.Microsecond)
	sp.Add(StageExecutorCompute, 250*time.Microsecond)
	sp.EndStage()
	if sp.StageDur(StageQueue) < time.Millisecond {
		t.Fatalf("queue stage %v, want >= 1ms", sp.StageDur(StageQueue))
	}
	if sp.StageDur(StageExtract) < time.Millisecond {
		t.Fatalf("extract stage %v, want >= 1ms", sp.StageDur(StageExtract))
	}
	if sp.StageDur(StageEmit) != 500*time.Microsecond {
		t.Fatalf("emit stage %v, want 500µs", sp.StageDur(StageEmit))
	}
	sp.Finish()

	if tr.Spans() != 1 {
		t.Fatalf("Spans = %d, want 1", tr.Spans())
	}
	sum := tr.Snapshot(0)
	if !sum.Enabled || len(sum.Recent) != 1 {
		t.Fatalf("Snapshot = %+v, want 1 recent entry", sum)
	}
	e := sum.Recent[0]
	if e.ID != "tweet-42" || e.Shard != 1 {
		t.Fatalf("entry = %+v, want id tweet-42 on shard 1", e)
	}
	stages := map[string]int64{}
	for _, s := range e.Stages {
		stages[s.Stage] = s.Nanos
	}
	if stages["queue"] < int64(time.Millisecond) || stages["extract"] < int64(time.Millisecond) {
		t.Fatalf("stage breakdown missing queue/extract time: %v", stages)
	}
	if stages["emit"] != int64(500*time.Microsecond) {
		t.Fatalf("emit = %d, want 500µs", stages["emit"])
	}
	if stages["executor_compute"] != int64(250*time.Microsecond) {
		t.Fatalf("executor_compute = %d, want 250µs", stages["executor_compute"])
	}
	if e.TotalNanos < stages["queue"]+stages["extract"] {
		t.Fatalf("total %d smaller than stage sum", e.TotalNanos)
	}
}

// AddExclusive must keep the breakdown disjoint: time attributed to the
// nested stage is carved out of the enclosing open stage.
func TestAddExclusiveKeepsStagesDisjoint(t *testing.T) {
	tr := New(Config{Enabled: true, SlowBudget: -1})
	sp := tr.Begin(0)
	sp.BeginStage(StageVerdict)
	time.Sleep(2 * time.Millisecond)
	sp.AddExclusive(StageEmit, 10*time.Millisecond) // pretend emit took 10ms of the wait
	sp.EndStage()
	verdict, emit := sp.StageDur(StageVerdict), sp.StageDur(StageEmit)
	if emit != 10*time.Millisecond {
		t.Fatalf("emit = %v, want 10ms", emit)
	}
	// The 10ms was subtracted from verdict: verdict covers only the 2ms
	// sleep (clamped near zero here since emit > elapsed would go negative
	// only if EndStage ran before curStart; it stays >= some small value).
	if verdict >= 10*time.Millisecond {
		t.Fatalf("verdict = %v still contains the excluded emit time", verdict)
	}
}

func TestSlowCaptureAndHandlers(t *testing.T) {
	reg := metrics.NewRegistry()
	tr := New(Config{Enabled: true, SlowBudget: time.Nanosecond, Registry: reg})
	sp := tr.Begin(0)
	sp.SetID("slowpoke")
	sp.BeginStage(StageClassify)
	time.Sleep(2 * time.Millisecond)
	sp.EndStage()
	sp.Finish()

	// A fast-budget tracer never marks spans slow.
	fast := New(Config{Enabled: true, SlowBudget: -1})
	fsp := fast.Begin(0)
	fsp.Finish()
	if fast.SlowSpans() != 0 {
		t.Fatalf("negative budget captured %d slow spans", fast.SlowSpans())
	}

	if tr.SlowSpans() != 1 {
		t.Fatalf("SlowSpans = %d, want 1", tr.SlowSpans())
	}
	rep := tr.SlowTraces()
	if len(rep.Traces) != 1 || rep.Traces[0].ID != "slowpoke" || !rep.Traces[0].Slow {
		t.Fatalf("SlowTraces = %+v, want slowpoke marked slow", rep)
	}
	found := false
	for _, s := range rep.Traces[0].Stages {
		if s.Stage == "classify" && s.Nanos >= int64(time.Millisecond) {
			found = true
		}
	}
	if !found {
		t.Fatalf("slow trace missing classify breakdown: %+v", rep.Traces[0].Stages)
	}

	// Histograms got the observations.
	sum := tr.Snapshot(0)
	if len(sum.Stages) == 0 {
		t.Fatal("Snapshot has no stage stats despite registry histograms")
	}

	// HTTP handlers round-trip as JSON.
	rr := httptest.NewRecorder()
	SlowHandler(tr).ServeHTTP(rr, httptest.NewRequest("GET", "/v1/trace/slow", nil))
	var got SlowReport
	if err := json.Unmarshal(rr.Body.Bytes(), &got); err != nil {
		t.Fatalf("slow handler JSON: %v", err)
	}
	if !got.Enabled || len(got.Traces) != 1 {
		t.Fatalf("slow handler payload = %+v", got)
	}
	rr = httptest.NewRecorder()
	TraceHandler(tr).ServeHTTP(rr, httptest.NewRequest("GET", "/v1/trace", nil))
	var gotSum Summary
	if err := json.Unmarshal(rr.Body.Bytes(), &gotSum); err != nil {
		t.Fatalf("trace handler JSON: %v", err)
	}
	if !gotSum.Enabled || gotSum.Spans != 1 {
		t.Fatalf("trace handler payload = %+v", gotSum)
	}
}

func TestAbortDoesNotRecord(t *testing.T) {
	tr := New(Config{Enabled: true})
	sp := tr.Begin(0)
	sp.BeginStage(StageQueue)
	tr.Abort(sp)
	if tr.Spans() != 0 {
		t.Fatalf("aborted span was recorded: Spans = %d", tr.Spans())
	}
	if len(tr.Snapshot(0).Recent) != 0 {
		t.Fatal("aborted span appeared in the ring")
	}
	// The pooled span is reusable and starts clean.
	sp2 := tr.Begin(0)
	if sp2.StageDur(StageQueue) != 0 {
		t.Fatal("recycled span kept stale stage durations")
	}
	sp2.Finish()
}

func TestSetIDTruncates(t *testing.T) {
	tr := New(Config{Enabled: true, SlowBudget: -1})
	long := "0123456789012345678901234567890123456789-overflow"
	sp := tr.Begin(0)
	sp.SetID(long)
	sp.Finish()
	got := tr.Snapshot(0).Recent[0].ID
	if got != long[:tweetIDBytes] {
		t.Fatalf("ID = %q, want %q", got, long[:tweetIDBytes])
	}
}

// The hard requirement from the issue: with tracing enabled, a full span
// lifecycle on the steady state performs zero heap allocations.
func TestSpanLifecycleZeroAllocs(t *testing.T) {
	reg := metrics.NewRegistry()
	tr := New(Config{Enabled: true, Shards: 1, SlowBudget: -1, Registry: reg})
	// Warm the pool and histogram families.
	for i := 0; i < 8; i++ {
		sp := tr.Begin(0)
		sp.SetID("warmup")
		sp.BeginStage(StageQueue)
		sp.BeginStage(StageExtract)
		sp.BeginStage(StageClassify)
		sp.BeginStage(StageObserve)
		sp.BeginStage(StageVerdict)
		sp.AddExclusive(StageEmit, time.Microsecond)
		sp.EndStage()
		sp.Finish()
	}
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Begin(0)
		sp.SetID("123456789012345678")
		sp.BeginStage(StageQueue)
		sp.BeginStage(StageExtract)
		sp.BeginStage(StageClassify)
		sp.BeginStage(StageObserve)
		sp.BeginStage(StageVerdict)
		sp.AddExclusive(StageEmit, time.Microsecond)
		sp.EndStage()
		sp.Finish()
	})
	if allocs != 0 {
		t.Fatalf("span lifecycle allocates %.1f allocs/op, want 0", allocs)
	}
}

func TestStageStringAndBounds(t *testing.T) {
	if StageQueue.String() != "queue" || StageMerge.String() != "merge" {
		t.Fatal("stage names wrong")
	}
	if Stage(250).String() != "unknown" {
		t.Fatal("out-of-range stage should stringify to unknown")
	}
	// Out-of-range shard clamps to 0 rather than panicking.
	tr := New(Config{Enabled: true, Shards: 2})
	sp := tr.Begin(99)
	sp.Finish()
	if tr.Spans() != 1 {
		t.Fatal("out-of-range shard span not recorded")
	}
}
