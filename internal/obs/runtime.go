package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync"
	"time"

	"redhanded/internal/metrics"
)

// memSampler caches runtime.ReadMemStats so a metrics scrape hitting all
// heap gauges pays one stop-the-world read, not one per gauge.
type memSampler struct {
	mu   sync.Mutex
	at   time.Time
	stat runtime.MemStats
}

func (m *memSampler) sample() runtime.MemStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	if time.Since(m.at) > time.Second {
		runtime.ReadMemStats(&m.stat)
		m.at = time.Now()
	}
	return m.stat
}

// RegisterRuntimeGauges registers Go runtime health gauges (goroutines,
// heap bytes/objects, total GC pause, GC cycles) on reg. Heap figures are
// sampled at most once per second to bound ReadMemStats cost.
func RegisterRuntimeGauges(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	ms := &memSampler{}
	reg.GaugeFunc("redhanded_goroutines", "Number of live goroutines.", nil,
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("redhanded_heap_alloc_bytes", "Bytes of allocated heap objects.", nil,
		func() float64 { s := ms.sample(); return float64(s.HeapAlloc) })
	reg.GaugeFunc("redhanded_heap_objects", "Number of allocated heap objects.", nil,
		func() float64 { s := ms.sample(); return float64(s.HeapObjects) })
	reg.GaugeFunc("redhanded_gc_pause_total_seconds", "Cumulative GC stop-the-world pause time.", nil,
		func() float64 { s := ms.sample(); return float64(s.PauseTotalNs) / 1e9 })
	reg.GaugeFunc("redhanded_gc_cycles_total", "Completed GC cycles.", nil,
		func() float64 { s := ms.sample(); return float64(s.NumGC) })
}

// DebugMux builds the opt-in debug mux: net/http/pprof under /debug/pprof/,
// the tracer's /v1/trace endpoints (valid on a nil tracer), and the default
// metrics registry on /metrics — so a binary without its own metrics
// endpoint (rhdriver) still exposes the runtime gauges. It is separate from
// the serving mux so profiling never shares a listener with production
// traffic unless the operator asks for it.
func DebugMux(t *Tracer) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/v1/trace", TraceHandler(t))
	mux.Handle("/v1/trace/slow", SlowHandler(t))
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = metrics.Default().WriteText(w)
	})
	return mux
}

// StartDebugServer listens on addr and serves DebugMux in a background
// goroutine, returning the bound listener (so addr may use port 0) and a
// shutdown func. Used by the -debug-addr flag on aggroserve/rhdriver.
func StartDebugServer(addr string, t *Tracer) (net.Listener, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: DebugMux(t)}
	go func() { _ = srv.Serve(ln) }()
	return ln, func() { _ = srv.Close() }, nil
}
