package obs

import (
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds the structured logger the cmd/ binaries share. format is
// "text" or "json" (the -log-format flag); anything else falls back to
// text. level accepts "debug", "info", "warn", "error" (default info).
func NewLogger(w io.Writer, format, level string) *slog.Logger {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lv = slog.LevelDebug
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		lv = slog.LevelInfo
	}
	opts := &slog.HandlerOptions{Level: lv}
	var h slog.Handler
	if strings.EqualFold(format, "json") {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	return slog.New(h)
}
