package obs

import "time"

// tweetIDBytes is the fixed space a span reserves for the tweet (or batch)
// identifier; longer IDs are truncated. 40 bytes covers every Twitter
// snowflake ID with room for synthetic "batch-NNN" labels.
const tweetIDBytes = 40

// Span is one traced unit of work: a tweet flowing through a serve shard,
// or a micro-batch flowing through the cluster driver. Spans are pooled
// per shard and reused; they never escape to the heap on the steady state.
//
// A span is owned by one goroutine at a time (the HTTP handler until it is
// enqueued, the shard goroutine afterwards) — its methods are not safe for
// concurrent use. All methods are no-ops on a nil span, so call sites need
// no "is tracing on?" branches.
// Field order is alignment-packed (pointer/word fields, the duration
// table, the ID bytes, then the byte-wide state) so the ~per-shard span
// population carries no padding; the fieldalign check and the
// TestSpanSize pin both enforce it.
//
//redvet:packed
type Span struct {
	tracer   *Tracer
	traceID  uint64
	start    int64 // tracer-epoch nanos
	curStart int64
	dur      [NumStages]int64
	id       [tweetIDBytes]byte
	cur      Stage
	shard    uint8
	idLen    uint8
	open     bool
}

// TraceID returns the span's process-unique ID (0 for a nil span). The
// cluster driver carries it on data frames so executor responses can be
// attributed to the batch span that sent them.
func (sp *Span) TraceID() uint64 {
	if sp == nil {
		return 0
	}
	return sp.traceID
}

// SetID records the tweet (or batch) identifier carried into ring entries,
// truncated to the fixed entry slot.
//
//redvet:noalloc gate=SpanLifecycle
func (sp *Span) SetID(id string) {
	if sp == nil {
		return
	}
	n := copy(sp.id[:], id)
	sp.idLen = uint8(n)
}

// BeginStage closes the currently open stage (if any) and opens s, using a
// single clock read for both. Re-opening the stage that is already open is
// a no-op, so adjacent call sites can both claim a stage without
// double-counting.
//
//redvet:noalloc gate=SpanLifecycle
func (sp *Span) BeginStage(s Stage) {
	if sp == nil {
		return
	}
	if sp.open && sp.cur == s {
		return
	}
	now := sp.tracer.now()
	if sp.open {
		sp.dur[sp.cur] += now - sp.curStart
	}
	sp.cur = s
	sp.curStart = now
	sp.open = true
}

// EndStage closes the currently open stage.
//
//redvet:noalloc gate=SpanLifecycle
func (sp *Span) EndStage() {
	if sp == nil || !sp.open {
		return
	}
	sp.dur[sp.cur] += sp.tracer.now() - sp.curStart
	sp.open = false
}

// Add attributes d to stage s directly (used for durations measured
// elsewhere, e.g. the executor-reported share compute time).
//
//redvet:noalloc gate=SpanLifecycle
func (sp *Span) Add(s Stage, d time.Duration) {
	if sp == nil || d <= 0 {
		return
	}
	sp.dur[s] += int64(d)
}

// AddExclusive attributes d to stage s and excludes it from the currently
// open stage by advancing that stage's start, keeping the breakdown
// disjoint. The serve layer uses it to carve SSE emit time out of the
// verdict fan-out stage it is nested inside.
//
//redvet:noalloc gate=SpanLifecycle
func (sp *Span) AddExclusive(s Stage, d time.Duration) {
	if sp == nil || d <= 0 {
		return
	}
	sp.dur[s] += int64(d)
	if sp.open {
		sp.curStart += int64(d)
	}
}

// StageDur returns the accumulated time in stage s (0 for a nil span).
func (sp *Span) StageDur(s Stage) time.Duration {
	if sp == nil {
		return 0
	}
	return time.Duration(sp.dur[s])
}

// Finish closes the span — including the still-open stage, sharing the
// final clock read, so callers need no EndStage first — records it (ring
// entry, histograms, reservoir, slow capture), and returns it to its
// shard's pool. The span must not be used after Finish.
//
//redvet:noalloc gate=SpanLifecycle
func (sp *Span) Finish() {
	if sp == nil {
		return
	}
	sp.tracer.finish(sp)
}
