package obs

import (
	"fmt"
	"testing"
	"time"
)

func testEntry(traceID uint64, id string) *[entryWords]uint64 {
	sp := &Span{traceID: traceID}
	sp.SetID(id)
	sp.dur[StageExtract] = int64(traceID) * 10
	var w [entryWords]uint64
	encodeEntry(&w, sp, 0, int64(traceID)*100, traceID%7 == 0)
	return &w
}

func TestEntryCodecRoundTrip(t *testing.T) {
	sp := &Span{traceID: 77, shard: 3, start: 1000}
	sp.SetID("roundtrip-id")
	sp.dur[StageQueue] = 11
	sp.dur[StageMerge] = 99
	var w [entryWords]uint64
	encodeEntry(&w, sp, 5000, 12345, true)
	e := decodeEntry(&w)
	if e.TraceID != 77 || e.Shard != 3 || e.ID != "roundtrip-id" || !e.Slow {
		t.Fatalf("decoded = %+v", e)
	}
	if e.StartUnixNano != 6000 || e.TotalNanos != 12345 {
		t.Fatalf("times = %d/%d, want 6000/12345", e.StartUnixNano, e.TotalNanos)
	}
	if e.Stages[StageQueue] != 11 || e.Stages[StageMerge] != 99 {
		t.Fatalf("stages = %v", e.Stages)
	}
}

// A ring holds exactly its capacity of most-recent entries after wrapping,
// in order, and snapshot honours the max argument.
func TestRingWraparound(t *testing.T) {
	r := newRing(8)
	const total = 37
	for i := 1; i <= total; i++ {
		r.append(testEntry(uint64(i), fmt.Sprintf("t-%d", i)))
	}
	if r.count() != total {
		t.Fatalf("count = %d, want %d", r.count(), total)
	}
	got := r.snapshot(0)
	if len(got) != 8 {
		t.Fatalf("snapshot len = %d, want 8 (ring capacity)", len(got))
	}
	for i, e := range got {
		want := uint64(total - 8 + 1 + i)
		if e.TraceID != want || e.ID != fmt.Sprintf("t-%d", want) {
			t.Fatalf("entry %d = %+v, want trace %d", i, e, want)
		}
	}
	if got := r.snapshot(3); len(got) != 3 || got[2].TraceID != total {
		t.Fatalf("snapshot(3) = %+v, want 3 newest ending at %d", got, total)
	}
	// Non-power-of-two sizes round up.
	if r2 := newRing(5); r2.size != 8 {
		t.Fatalf("newRing(5) size = %d, want 8", r2.size)
	}
}

func TestSlowRingWraparoundKeepsNewest(t *testing.T) {
	r := newSlowRing(4)
	for i := 1; i <= 11; i++ {
		r.append(testEntry(uint64(i), fmt.Sprintf("s-%d", i)))
	}
	got := r.snapshot()
	if len(got) != 4 {
		t.Fatalf("slow snapshot len = %d, want 4", len(got))
	}
	for i, e := range got {
		if want := uint64(8 + i); e.TraceID != want {
			t.Fatalf("slow entry %d = trace %d, want %d (oldest-first)", i, e.TraceID, want)
		}
	}
}

// Reservoir sampling must be deterministic for a fixed seed and offer
// sequence, and different seeds should (for this sequence) disagree.
func TestReservoirDeterminism(t *testing.T) {
	sample := func(seed uint64) []uint64 {
		rv := newReservoir(4, seed)
		for i := 1; i <= 500; i++ {
			rv.offer(testEntry(uint64(i), "x"))
		}
		var ids []uint64
		for _, e := range rv.snapshot() {
			ids = append(ids, e.TraceID)
		}
		return ids
	}
	a, b := sample(42), sample(42)
	if len(a) != 4 {
		t.Fatalf("reservoir kept %d entries, want 4", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged: %v vs %v", a, b)
		}
	}
	c := sample(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatalf("seeds 42 and 43 selected identical exemplars %v — RNG not seeded", a)
	}
}

// Tracer-level determinism: two tracers fed identical span sequences with
// the same Seed expose identical exemplar trace IDs.
func TestTracerExemplarDeterminism(t *testing.T) {
	run := func() []uint64 {
		tr := New(Config{Enabled: true, Exemplars: 3, Seed: 7, SlowBudget: -1})
		for i := 0; i < 200; i++ {
			sp := tr.Begin(0)
			sp.SetID("d")
			sp.Finish()
		}
		var ids []uint64
		for _, e := range tr.Snapshot(1).Exemplars {
			ids = append(ids, e.TraceID)
		}
		return ids
	}
	a, b := run(), run()
	if len(a) != 3 || len(b) != 3 {
		t.Fatalf("exemplar counts = %d/%d, want 3", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("exemplar selection diverged: %v vs %v", a, b)
		}
	}
}

func TestReservoirFillPhase(t *testing.T) {
	rv := newReservoir(8, 1)
	for i := 1; i <= 5; i++ {
		rv.offer(testEntry(uint64(i), "f"))
	}
	got := rv.snapshot()
	if len(got) != 5 {
		t.Fatalf("fill-phase snapshot = %d entries, want all 5", len(got))
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 8: 8, 9: 16, 1000: 1024}
	for in, want := range cases {
		if got := nextPow2(in); got != want {
			t.Fatalf("nextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestDurString(t *testing.T) {
	if s := DurString(int64(1500 * time.Microsecond)); s != "1.5ms" {
		t.Fatalf("DurString = %q", s)
	}
}
