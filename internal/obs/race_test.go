package obs

import (
	"sync"
	"testing"
	"time"

	"redhanded/internal/metrics"
)

// Shard producers finishing spans while snapshot/slow readers poll — the
// exact contention profile of /v1/trace scrapes against a loaded server.
// Run with -race; the word-encoded rings must stay warning-free.
func TestConcurrentProducersAndReaders(t *testing.T) {
	const shards = 4
	tr := New(Config{
		Enabled:    true,
		Shards:     shards,
		RingSize:   32, // small ring to force constant wraparound
		SlowBudget: time.Nanosecond,
		SlowCap:    8,
		Registry:   metrics.NewRegistry(),
	})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				sp := tr.Begin(shard)
				sp.SetID("race-tweet")
				sp.BeginStage(StageQueue)
				sp.BeginStage(StageExtract)
				sp.BeginStage(StageClassify)
				sp.AddExclusive(StageEmit, time.Microsecond)
				sp.EndStage()
				sp.Finish()
			}
		}(s)
	}
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				sum := tr.Snapshot(16)
				for _, e := range sum.Recent {
					if e.ID != "race-tweet" {
						t.Errorf("torn entry surfaced: %+v", e)
						return
					}
				}
				for _, e := range tr.SlowTraces().Traces {
					if e.ID != "race-tweet" {
						t.Errorf("torn slow entry surfaced: %+v", e)
						return
					}
				}
			}
		}()
	}
	// Poll until every producer's spans have landed, then stop the readers.
	for tr.Spans() < int64(shards*2000) {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()

	if got := tr.Spans(); got != shards*2000 {
		t.Fatalf("Spans = %d, want %d", got, shards*2000)
	}
	if tr.SlowSpans() == 0 {
		t.Fatal("1ns budget should have captured slow spans")
	}
}
