package obs

import (
	"testing"
	"time"

	"redhanded/internal/metrics"
)

// BenchmarkSpanLifecycle measures the full per-tweet tracing cost: begin,
// six stage transitions, finish (encode + ring + reservoir + histograms).
// This is the overhead tracing adds to a pipeline Process call; it must
// report 0 allocs/op.
func BenchmarkSpanLifecycle(b *testing.B) {
	tr := New(Config{Enabled: true, SlowBudget: -1, Registry: metrics.NewRegistry()})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := tr.Begin(0)
		sp.SetID("123456789012345678")
		sp.BeginStage(StageExtract)
		sp.BeginStage(StageClassify)
		sp.BeginStage(StageObserve)
		sp.BeginStage(StageVerdict)
		sp.AddExclusive(StageEmit, time.Microsecond)
		sp.Finish()
	}
}

// BenchmarkSpanLifecycleDisabled is the same call sequence against a nil
// tracer — the cost when tracing is off (should be a few ns of nil checks).
func BenchmarkSpanLifecycleDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := tr.Begin(0)
		sp.SetID("123456789012345678")
		sp.BeginStage(StageExtract)
		sp.BeginStage(StageClassify)
		sp.BeginStage(StageObserve)
		sp.BeginStage(StageVerdict)
		sp.AddExclusive(StageEmit, time.Microsecond)
		sp.Finish()
	}
}

func BenchmarkRingSnapshot(b *testing.B) {
	tr := New(Config{Enabled: true, RingSize: 512, SlowBudget: -1})
	for i := 0; i < 1024; i++ {
		sp := tr.Begin(0)
		sp.SetID("fill")
		sp.Finish()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := tr.Snapshot(64); len(got.Recent) == 0 {
			b.Fatal("empty snapshot")
		}
	}
}
