package obs

import "sync/atomic"

// Ring entries are fixed-size records encoded into atomic.Uint64 words, so
// producers append without locks and concurrent snapshot readers never see
// undefined memory — at worst a torn entry, which the copy protocols below
// detect and drop. The word layout is:
//
//	word 0                    trace ID
//	word 1                    start time (wall-clock unix nanos)
//	word 2                    total span nanos
//	words 3 .. 3+NumStages-1  per-stage nanos
//	word metaWord             shard | idLen<<8 | slow<<16
//	words idWord ..           tweet/batch ID bytes (tweetIDBytes, truncated)
const (
	metaWord   = 3 + int(NumStages)
	idWord     = metaWord + 1
	idWords    = (tweetIDBytes + 7) / 8
	entryWords = idWord + idWords
)

// Entry is one decoded trace record.
type Entry struct {
	TraceID       uint64
	ID            string
	Shard         int
	StartUnixNano int64
	TotalNanos    int64
	Slow          bool
	Stages        [NumStages]int64
}

// encodeEntry serializes a finished span into w. The buffer lives on the
// caller's stack; producers copy it word-wise into their slabs.
//
//redvet:noalloc gate=SpanLifecycle
func encodeEntry(w *[entryWords]uint64, sp *Span, epochUnix, total int64, slow bool) {
	w[0] = sp.traceID
	w[1] = uint64(epochUnix + sp.start)
	w[2] = uint64(total)
	for s := 0; s < int(NumStages); s++ {
		w[3+s] = uint64(sp.dur[s])
	}
	meta := uint64(sp.shard) | uint64(sp.idLen)<<8
	if slow {
		meta |= 1 << 16
	}
	w[metaWord] = meta
	for i := 0; i < idWords; i++ {
		var v uint64
		for b := 0; b < 8; b++ {
			v |= uint64(sp.id[i*8+b]) << (8 * b)
		}
		w[idWord+i] = v
	}
}

// decodeEntry parses one copied word block.
func decodeEntry(w *[entryWords]uint64) Entry {
	e := Entry{
		TraceID:       w[0],
		StartUnixNano: int64(w[1]),
		TotalNanos:    int64(w[2]),
	}
	for s := 0; s < int(NumStages); s++ {
		e.Stages[s] = int64(w[3+s])
	}
	meta := w[metaWord]
	e.Shard = int(meta & 0xff)
	idLen := int(meta >> 8 & 0xff)
	e.Slow = meta&(1<<16) != 0
	if idLen > tweetIDBytes {
		idLen = tweetIDBytes
	}
	var id [tweetIDBytes]byte
	for i := 0; i < idWords; i++ {
		v := w[idWord+i]
		for b := 0; b < 8; b++ {
			id[i*8+b] = byte(v >> (8 * b))
		}
	}
	e.ID = string(id[:idLen])
	return e
}

// ring is a single-producer, multi-reader trace ring. The producer (the
// shard goroutine) writes entry words then publishes by advancing head;
// readers copy a window and discard any entry the producer lapped during
// the copy (its index has fallen out of [head-size, head)).
type ring struct {
	mask uint64
	size uint64
	head atomic.Uint64
	buf  []atomic.Uint64
}

func newRing(size int) *ring {
	n := uint64(nextPow2(size))
	return &ring{mask: n - 1, size: n, buf: make([]atomic.Uint64, n*uint64(entryWords))}
}

// append publishes one entry. Single producer only.
//
//redvet:noalloc gate=SpanLifecycle
func (r *ring) append(w *[entryWords]uint64) {
	h := r.head.Load()
	off := (h & r.mask) * uint64(entryWords)
	for i := 0; i < entryWords; i++ {
		r.buf[off+uint64(i)].Store(w[i])
	}
	r.head.Store(h + 1)
}

// snapshot returns up to max of the most recent entries, oldest first.
func (r *ring) snapshot(max int) []Entry {
	h1 := r.head.Load()
	n := h1
	if n > r.size {
		n = r.size
	}
	if max > 0 && n > uint64(max) {
		n = uint64(max)
	}
	if n == 0 {
		return nil
	}
	type raw struct {
		idx uint64
		w   [entryWords]uint64
	}
	copies := make([]raw, 0, n)
	for idx := h1 - n; idx < h1; idx++ {
		c := raw{idx: idx}
		off := (idx & r.mask) * uint64(entryWords)
		for i := 0; i < entryWords; i++ {
			c.w[i] = r.buf[off+uint64(i)].Load()
		}
		copies = append(copies, c)
	}
	// Anything the producer overwrote while we copied is torn: drop it.
	h2 := r.head.Load()
	out := make([]Entry, 0, len(copies))
	for i := range copies {
		if h2 >= r.size && copies[i].idx < h2-r.size {
			continue
		}
		out = append(out, decodeEntry(&copies[i].w))
	}
	return out
}

// count returns the total number of entries ever appended.
func (r *ring) count() uint64 { return r.head.Load() }

// slowRing is a multi-producer capture ring for over-budget spans. Slot
// ownership is claimed by a fetch-add on head; each slot carries a
// sequence word (0 while being written, claim-index+1 once complete) so a
// reader that races a writer detects the tear and skips the slot.
type slowRing struct {
	cap  uint64
	head atomic.Uint64
	// Per slot: [seq, entry words...].
	buf []atomic.Uint64
}

const slowSlotWords = entryWords + 1

func newSlowRing(capacity int) *slowRing {
	n := uint64(nextPow2(capacity))
	return &slowRing{cap: n, buf: make([]atomic.Uint64, n*uint64(slowSlotWords))}
}

//redvet:noalloc gate=SpanLifecycle
func (r *slowRing) append(w *[entryWords]uint64) {
	idx := r.head.Add(1) - 1
	off := (idx % r.cap) * uint64(slowSlotWords)
	r.buf[off].Store(0) // invalidate while writing
	for i := 0; i < entryWords; i++ {
		r.buf[off+1+uint64(i)].Store(w[i])
	}
	r.buf[off].Store(idx + 1)
}

// snapshot returns the currently valid slow captures, oldest first.
func (r *slowRing) snapshot() []Entry {
	type raw struct {
		seq uint64
		w   [entryWords]uint64
	}
	var copies []raw
	for slot := uint64(0); slot < r.cap; slot++ {
		off := slot * uint64(slowSlotWords)
		s1 := r.buf[off].Load()
		if s1 == 0 {
			continue
		}
		var c raw
		for i := 0; i < entryWords; i++ {
			c.w[i] = r.buf[off+1+uint64(i)].Load()
		}
		if r.buf[off].Load() != s1 {
			continue // torn: a writer lapped this slot mid-copy
		}
		c.seq = s1
		copies = append(copies, c)
	}
	// Claim order is capture order.
	for i := 1; i < len(copies); i++ {
		for j := i; j > 0 && copies[j-1].seq > copies[j].seq; j-- {
			copies[j-1], copies[j] = copies[j], copies[j-1]
		}
	}
	out := make([]Entry, len(copies))
	for i := range copies {
		out[i] = decodeEntry(&copies[i].w)
	}
	return out
}

// reservoir holds k uniformly sampled exemplar entries per shard
// (single-producer, Vitter's algorithm R with a seeded xorshift RNG, so
// exemplar selection is deterministic for a given finish sequence). Slots
// use the slow ring's sequence-word protocol for tear-free reads.
type reservoir struct {
	k     int
	count uint64
	rng   uint64
	buf   []atomic.Uint64 // k slots of [seq, entry words...]
}

func newReservoir(k int, seed uint64) *reservoir {
	if seed == 0 {
		seed = 1
	}
	return &reservoir{k: k, rng: seed, buf: make([]atomic.Uint64, k*slowSlotWords)}
}

// next steps the xorshift64* generator.
//
//redvet:noalloc gate=SpanLifecycle
func (rv *reservoir) next() uint64 {
	x := rv.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	rv.rng = x
	return x * 0x2545f4914f6cdd1d
}

// offer considers one entry for the reservoir. Single producer only.
//
//redvet:noalloc gate=SpanLifecycle
func (rv *reservoir) offer(w *[entryWords]uint64) {
	rv.count++
	var slot uint64
	if rv.count <= uint64(rv.k) {
		slot = rv.count - 1
	} else {
		j := rv.next() % rv.count
		if j >= uint64(rv.k) {
			return
		}
		slot = j
	}
	off := slot * uint64(slowSlotWords)
	rv.buf[off].Store(0)
	for i := 0; i < entryWords; i++ {
		rv.buf[off+1+uint64(i)].Store(w[i])
	}
	rv.buf[off].Store(rv.count)
}

// snapshot returns the current exemplars.
func (rv *reservoir) snapshot() []Entry {
	var out []Entry
	for slot := 0; slot < rv.k; slot++ {
		off := uint64(slot) * uint64(slowSlotWords)
		s1 := rv.buf[off].Load()
		if s1 == 0 {
			continue
		}
		var w [entryWords]uint64
		for i := 0; i < entryWords; i++ {
			w[i] = rv.buf[off+1+uint64(i)].Load()
		}
		if rv.buf[off].Load() != s1 {
			continue
		}
		out = append(out, decodeEntry(&w))
	}
	return out
}
