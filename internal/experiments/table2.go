package experiments

import (
	"fmt"
	"io"

	"redhanded/internal/core"
)

func init() {
	register("table2", "Key evaluation metrics for HT, ARF, and SLR (3-class and 2-class)", runTable2)
}

// Table2Result holds the measured metrics for one (model, scheme) cell.
type Table2Result struct {
	Model     core.ModelKind
	Scheme    core.ClassScheme
	Accuracy  float64
	Precision float64
	Recall    float64
	F1        float64
}

// Table2 computes all six cells of Table II.
func Table2(cfg Config) []Table2Result {
	cfg = cfg.withDefaults()
	data := AggressionDataset(cfg)
	var out []Table2Result
	for _, scheme := range []core.ClassScheme{core.ThreeClass, core.TwoClass} {
		for _, model := range []core.ModelKind{core.ModelHT, core.ModelARF, core.ModelSLR} {
			p := runPipeline(baseOptions(cfg, scheme, model), data)
			r := p.Summary()
			out = append(out, Table2Result{
				Model: model, Scheme: scheme,
				Accuracy: r.Accuracy, Precision: r.Precision,
				Recall: r.Recall, F1: r.F1,
			})
		}
	}
	return out
}

func runTable2(cfg Config, w io.Writer) error {
	results := Table2(cfg)
	get := func(scheme core.ClassScheme, model core.ModelKind) Table2Result {
		for _, r := range results {
			if r.Scheme == scheme && r.Model == model {
				return r
			}
		}
		return Table2Result{}
	}
	t := Table{
		Title: "Table II: Key evaluation metrics for HT, ARF, and SLR",
		Columns: []string{"Metric",
			"3c-HT", "3c-ARF", "3c-SLR",
			"2c-HT", "2c-ARF", "2c-SLR"},
	}
	metrics := []struct {
		name string
		get  func(Table2Result) float64
	}{
		{"Accuracy", func(r Table2Result) float64 { return r.Accuracy }},
		{"Precision", func(r Table2Result) float64 { return r.Precision }},
		{"Recall", func(r Table2Result) float64 { return r.Recall }},
		{"F1-score", func(r Table2Result) float64 { return r.F1 }},
	}
	for _, m := range metrics {
		row := []string{m.name}
		for _, scheme := range []core.ClassScheme{core.ThreeClass, core.TwoClass} {
			for _, model := range []core.ModelKind{core.ModelHT, core.ModelARF, core.ModelSLR} {
				row = append(row, fmt.Sprintf("%.2f", m.get(get(scheme, model))))
			}
		}
		t.Rows = append(t.Rows, row)
	}
	t.Print(w)
	return nil
}
