package experiments

import (
	"fmt"
	"io"

	"redhanded/internal/core"
	"redhanded/internal/norm"
	"redhanded/internal/stream"
)

func init() {
	register("ablate", "Ablation matrix: model x normalization, leaf predictors, drift detectors", runAblations)
}

// runAblations goes beyond the paper's figures: it crosses every model
// with every normalization mode, compares the HT leaf predictors, and
// compares the ARF drift-detector families — the design-space checks
// DESIGN.md calls out.
func runAblations(cfg Config, w io.Writer) error {
	data := AggressionDataset(cfg)

	// Model x normalization.
	t := Table{
		Title:   "Ablation: F1 by model and normalization mode (3-class)",
		Columns: []string{"model", "none", "minmax", "minmax-no-outliers", "z-score"},
	}
	for _, model := range []core.ModelKind{core.ModelHT, core.ModelARF, core.ModelSLR} {
		row := []string{model.String()}
		for _, mode := range []norm.Mode{norm.None, norm.MinMax, norm.MinMaxRobust, norm.ZScore} {
			opts := baseOptions(cfg, core.ThreeClass, model)
			opts.Normalization = mode
			p := runPipeline(opts, data)
			row = append(row, fmt.Sprintf("%.4f", p.Summary().F1))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Print(w)
	fmt.Fprintln(w)

	// HT leaf predictors.
	t = Table{
		Title:   "Ablation: HT leaf prediction (3-class)",
		Columns: []string{"leaf predictor", "F1", "accuracy", "kappa"},
	}
	leaves := []struct {
		name string
		mode stream.LeafPrediction
	}{
		{"majority-class", stream.MajorityClass},
		{"naive-bayes", stream.NaiveBayes},
		{"nb-adaptive", stream.NaiveBayesAdaptive},
	}
	for _, l := range leaves {
		opts := baseOptions(cfg, core.ThreeClass, core.ModelHT)
		opts.HT.LeafPrediction = l.mode
		p := runPipeline(opts, data)
		r := p.Summary()
		t.Rows = append(t.Rows, []string{
			l.name, fmt.Sprintf("%.4f", r.F1),
			fmt.Sprintf("%.4f", r.Accuracy), fmt.Sprintf("%.4f", r.Kappa),
		})
	}
	t.Print(w)
	fmt.Fprintln(w)

	// ARF drift detectors.
	t = Table{
		Title:   "Ablation: ARF drift detector (3-class)",
		Columns: []string{"detector", "F1", "drift resets"},
	}
	detectors := []struct {
		name string
		cfg  func(*core.Options)
	}{
		{"adwin", func(o *core.Options) { o.ARF.Detector = stream.DetectADWIN }},
		{"adwin-gated", func(o *core.Options) {
			o.ARF.Detector = stream.DetectADWIN
			o.ARF.GateOnErrorIncrease = true
		}},
		{"ddm", func(o *core.Options) { o.ARF.Detector = stream.DetectDDM }},
		{"disabled", func(o *core.Options) { o.ARF.DisableDrift = true }},
	}
	for _, d := range detectors {
		opts := baseOptions(cfg, core.ThreeClass, core.ModelARF)
		d.cfg(&opts)
		p := runPipeline(opts, data)
		arf := p.Model().(*stream.AdaptiveRandomForest)
		t.Rows = append(t.Rows, []string{
			d.name, fmt.Sprintf("%.4f", p.Summary().F1),
			fmt.Sprintf("%d", arf.DriftsDetected()),
		})
	}
	t.Print(w)
	return nil
}
