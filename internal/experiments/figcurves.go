package experiments

import (
	"fmt"
	"io"

	"redhanded/internal/core"
	"redhanded/internal/norm"
)

func init() {
	register("fig6", "F1 for HT with preprocessing ON/OFF (2- and 3-class)", runFig6)
	register("fig7", "F1 for HT with normalization ON/OFF (2- and 3-class)", runFig7)
	register("fig8", "F1 for SLR with normalization ON/OFF (2- and 3-class)", runFig8)
	register("fig9", "F1 for HT with adaptive BoW ON/OFF (2- and 3-class)", runFig9)
	register("fig11", "F1 for HT, ARF, SLR on the 3-class problem", runFig11)
	register("fig12", "F1 for HT, ARF, SLR on the 2-class problem", runFig12)
}

// variant is one curve in an ablation figure.
type variant struct {
	name string
	opts core.Options
}

// runCurves executes the variants over the shared dataset and tabulates
// their F1 curves.
func runCurves(cfg Config, w io.Writer, title string, variants []variant) error {
	data := AggressionDataset(cfg)
	var series []Series
	for _, v := range variants {
		p := runPipeline(v.opts, data)
		series = append(series, Series{Name: v.name, Points: p.Evaluator().Curve()})
		final := p.Summary()
		fmt.Fprintf(w, "final %-34s F1=%.4f acc=%.4f\n", v.name, final.F1, final.Accuracy)
	}
	step := int64(5000 * cfg.Scale)
	if step < 100 {
		step = 100
	}
	CurveTable(title, series, step).Print(w)
	return nil
}

// toggleName renders the figure legend notation, e.g.
// "HT, p=ON, n=ON, ad=ON, c=3".
func toggleName(model core.ModelKind, opts core.Options) string {
	return fmt.Sprintf("%v, p=%s, n=%s, ad=%s, %v",
		model, onOff(opts.Preprocess), onOff(opts.Normalization != norm.None),
		onOff(opts.AdaptiveBoW), opts.Scheme)
}

func runFig6(cfg Config, w io.Writer) error {
	var variants []variant
	for _, scheme := range []core.ClassScheme{core.ThreeClass, core.TwoClass} {
		for _, pre := range []bool{false, true} {
			opts := baseOptions(cfg, scheme, core.ModelHT)
			opts.Preprocess = pre
			variants = append(variants, variant{toggleName(core.ModelHT, opts), opts})
		}
	}
	return runCurves(cfg, w, "Fig. 6: effect of preprocessing on HT", variants)
}

func runFig7(cfg Config, w io.Writer) error {
	var variants []variant
	for _, scheme := range []core.ClassScheme{core.ThreeClass, core.TwoClass} {
		for _, mode := range []norm.Mode{norm.None, norm.MinMaxRobust} {
			opts := baseOptions(cfg, scheme, core.ModelHT)
			opts.Normalization = mode
			variants = append(variants, variant{toggleName(core.ModelHT, opts), opts})
		}
	}
	return runCurves(cfg, w, "Fig. 7: effect of normalization on HT", variants)
}

func runFig8(cfg Config, w io.Writer) error {
	var variants []variant
	for _, scheme := range []core.ClassScheme{core.ThreeClass, core.TwoClass} {
		for _, mode := range []norm.Mode{norm.None, norm.MinMaxRobust} {
			opts := baseOptions(cfg, scheme, core.ModelSLR)
			opts.Normalization = mode
			variants = append(variants, variant{toggleName(core.ModelSLR, opts), opts})
		}
	}
	return runCurves(cfg, w, "Fig. 8: effect of normalization on SLR", variants)
}

func runFig9(cfg Config, w io.Writer) error {
	var variants []variant
	for _, scheme := range []core.ClassScheme{core.ThreeClass, core.TwoClass} {
		for _, adaptive := range []bool{false, true} {
			opts := baseOptions(cfg, scheme, core.ModelHT)
			opts.AdaptiveBoW = adaptive
			variants = append(variants, variant{toggleName(core.ModelHT, opts), opts})
		}
	}
	return runCurves(cfg, w, "Fig. 9: effect of the adaptive bag-of-words on HT", variants)
}

func runFig11(cfg Config, w io.Writer) error {
	var variants []variant
	for _, model := range []core.ModelKind{core.ModelHT, core.ModelARF, core.ModelSLR} {
		opts := baseOptions(cfg, core.ThreeClass, model)
		variants = append(variants, variant{toggleName(model, opts), opts})
	}
	return runCurves(cfg, w, "Fig. 11: streaming methods on the 3-class problem", variants)
}

func runFig12(cfg Config, w io.Writer) error {
	var variants []variant
	for _, model := range []core.ModelKind{core.ModelHT, core.ModelARF, core.ModelSLR} {
		opts := baseOptions(cfg, core.TwoClass, model)
		variants = append(variants, variant{toggleName(model, opts), opts})
	}
	return runCurves(cfg, w, "Fig. 12: streaming methods on the 2-class problem", variants)
}
