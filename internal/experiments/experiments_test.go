package experiments

import (
	"bytes"
	"strings"
	"testing"

	"redhanded/internal/core"
	"redhanded/internal/eval"
	"redhanded/internal/feature"
)

// tinyConfig keeps experiment smoke tests fast.
func tinyConfig() Config {
	cfg := DefaultConfig()
	cfg.Scale = 0.04 // ~3.4k tweets
	cfg.TweetCounts = []int64{3000}
	cfg.ClusterExecutors = 2
	cfg.ClusterWorkers = 2
	return cfg
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table1", "table2", "fig4", "fig5", "fig6", "fig7", "fig8",
		"fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
		"fig16", "fig17",
	}
	ids := IDs()
	have := map[string]bool{}
	for _, id := range ids {
		have[id] = true
		if Description(id) == "" {
			t.Errorf("experiment %s lacks a description", id)
		}
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %s not registered", id)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := Run("nope", tinyConfig(), &bytes.Buffer{}); err == nil {
		t.Fatalf("unknown experiment accepted")
	}
}

func TestTable2Shape(t *testing.T) {
	results := Table2(tinyConfig())
	if len(results) != 6 {
		t.Fatalf("Table II has %d cells, want 6", len(results))
	}
	for _, r := range results {
		if r.F1 <= 0 || r.F1 > 1 || r.Accuracy <= 0 || r.Accuracy > 1 {
			t.Errorf("%v/%v metrics out of range: %+v", r.Model, r.Scheme, r)
		}
	}
	// The paper's headline: 2-class beats 3-class for every model.
	get := func(s core.ClassScheme, m core.ModelKind) float64 {
		for _, r := range results {
			if r.Scheme == s && r.Model == m {
				return r.F1
			}
		}
		return 0
	}
	for _, m := range []core.ModelKind{core.ModelHT, core.ModelARF, core.ModelSLR} {
		if get(core.TwoClass, m) < get(core.ThreeClass, m)-0.02 {
			t.Errorf("%v: 2-class F1 (%v) should be >= 3-class (%v)",
				m, get(core.TwoClass, m), get(core.ThreeClass, m))
		}
	}
}

func TestFig5ImportancesRankSwears(t *testing.T) {
	cfg := tinyConfig()
	cfg.Scale = 0.08
	imp, err := Fig5Importances(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(imp) != feature.BoWScore {
		t.Fatalf("importances cover %d features, want %d", len(imp), feature.BoWScore)
	}
	// cntSwearWords and sentimentScoreNeg are the paper's top two.
	rank := func(f int) int {
		r := 0
		for _, v := range imp {
			if v > imp[f] {
				r++
			}
		}
		return r
	}
	if rank(feature.CntSwearWords) > 2 {
		t.Errorf("cntSwearWords ranked %d, want top-3 (%v)", rank(feature.CntSwearWords)+1, imp)
	}
	if rank(feature.SentimentScoreNeg) > 3 {
		t.Errorf("sentimentScoreNeg ranked %d, want top-4", rank(feature.SentimentScoreNeg)+1)
	}
}

func TestStreamVsBatchShape(t *testing.T) {
	res, err := StreamVsBatch(tinyConfig(), core.TwoClass)
	if err != nil {
		t.Fatal(err)
	}
	if res.Days != 10 {
		t.Fatalf("days = %d, want 10", res.Days)
	}
	// Both batch scenarios produce valid scores on later days.
	for d := 1; d < res.Days; d++ {
		if res.TrainFirstDay[d] <= 0 || res.TrainPrevDay[d] <= 0 {
			t.Fatalf("day %d batch scores missing: %+v", d, res)
		}
	}
	// HT catches up: its late-day daily F1 should rival the batch DT.
	lastHT := res.HTDaily[res.Days-1]
	lastDT := res.TrainPrevDay[res.Days-1]
	if lastHT < lastDT-0.1 {
		t.Errorf("final-day HT F1 (%v) far below DT (%v)", lastHT, lastDT)
	}
}

func TestScalabilityOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock throughput ordering is noisy on contended CI runners")
	}
	cfg := tinyConfig()
	cfg.TweetCounts = []int64{4000}
	// The ordering assertion compares two wall-clock throughput
	// measurements. When other test packages saturate every core,
	// multi-worker has no spare parallelism and its coordination overhead
	// systematically inverts the ordering at this tiny scale — so retry
	// for the strict headline shape, and otherwise only require that
	// SparkLocal is not drastically slower (which still catches real
	// serialization regressions in the micro-batch engine).
	var local, single float64
	for attempt := 0; attempt < 3; attempt++ {
		points, err := Scalability(cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		byName := map[EngineSetup]ScalabilityPoint{}
		for _, pt := range points {
			byName[pt.Setup] = pt
			if pt.Tweets != 4000 {
				t.Fatalf("%s processed %d tweets, want 4000", pt.Setup, pt.Tweets)
			}
		}
		local = byName[SetupSparkLocal].Throughput
		single = byName[SetupSparkSingle].Throughput
		// The headline shape: multi-worker beats single-worker.
		if local > single {
			return
		}
	}
	if local < 0.6*single {
		t.Errorf("SparkLocal (%0.f/s) far below SparkSingle (%0.f/s)", local, single)
	} else {
		t.Logf("SparkLocal (%0.f/s) did not beat SparkSingle (%0.f/s); "+
			"CPU-contended run, within tolerance", local, single)
	}
}

func TestRelatedBehaviors(t *testing.T) {
	cfg := tinyConfig()
	cfg.Scale = 0.2
	sarcasm := RunSarcasm(cfg)
	if sarcasm.Final < 0.8 {
		t.Errorf("sarcasm accuracy = %v, want >= 0.8 (converges to ~0.93)", sarcasm.Final)
	}
	offensive := RunOffensive(cfg)
	if offensive.Final < 0.5 || offensive.Final > 0.95 {
		t.Errorf("offensive F1 = %v, want mid-range (paper: 0.74)", offensive.Final)
	}
}

func TestAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke test of every experiment is slow")
	}
	cfg := tinyConfig()
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			var buf bytes.Buffer
			if err := Run(id, cfg, &buf); err != nil {
				t.Fatalf("%s failed: %v", id, err)
			}
			if buf.Len() == 0 {
				t.Fatalf("%s produced no output", id)
			}
		})
	}
}

func TestScaleCount(t *testing.T) {
	if scaleCount(1000, 0.5) != 500 {
		t.Fatalf("scaleCount(1000, 0.5) = %d", scaleCount(1000, 0.5))
	}
	if scaleCount(100, 0.001) != 10 {
		t.Fatalf("scaleCount floor broken: %d", scaleCount(100, 0.001))
	}
}

func TestValueAtEdges(t *testing.T) {
	points := []eval.Point{{Instances: 10, Value: 0.5}, {Instances: 20, Value: 0.8}}
	if v := valueAt(points, 5); v != 0 {
		t.Fatalf("before first sample = %v, want 0", v)
	}
	if v := valueAt(points, 10); v != 0.5 {
		t.Fatalf("exact sample = %v", v)
	}
	if v := valueAt(points, 15); v != 0.5 {
		t.Fatalf("between samples = %v", v)
	}
	if v := valueAt(points, 100); v != 0.8 {
		t.Fatalf("after last sample = %v", v)
	}
	if v := valueAt(nil, 1); v != 0 {
		t.Fatalf("empty series = %v", v)
	}
}

func TestConfigWithDefaults(t *testing.T) {
	var zero Config
	cfg := zero.withDefaults()
	if cfg.Scale != 1.0 || cfg.Seed == 0 || len(cfg.TweetCounts) == 0 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	if cfg.ClusterExecutors != 3 || cfg.ClusterWorkers != 8 {
		t.Fatalf("cluster defaults wrong: %+v", cfg)
	}
}

func TestDatasetCacheReuse(t *testing.T) {
	cfg := tinyConfig()
	a := AggressionDataset(cfg)
	b := AggressionDataset(cfg)
	if &a[0] != &b[0] {
		t.Fatalf("dataset not cached")
	}
}

func TestCurveTableCarriesValuesForward(t *testing.T) {
	series := []Series{{
		Name: "a",
		Points: []eval.Point{
			{Instances: 100, Value: 0.5},
			{Instances: 300, Value: 0.7},
		},
	}}
	tab := CurveTable("t", series, 100)
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tab.Rows))
	}
	if tab.Rows[1][1] != "0.5000" { // at 200, carry the 100-sample forward
		t.Fatalf("carry-forward broken: %v", tab.Rows)
	}
	if tab.Rows[2][1] != "0.7000" {
		t.Fatalf("final value wrong: %v", tab.Rows)
	}
}

func TestTablePrintAligns(t *testing.T) {
	tab := Table{Title: "x", Columns: []string{"a", "bb"}, Rows: [][]string{{"1", "2"}}}
	var buf bytes.Buffer
	tab.Print(&buf)
	out := buf.String()
	if !strings.Contains(out, "a") || !strings.Contains(out, "--") {
		t.Fatalf("table print malformed:\n%s", out)
	}
}
