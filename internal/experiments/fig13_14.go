package experiments

import (
	"fmt"
	"io"

	"redhanded/internal/batch"
	"redhanded/internal/core"
	"redhanded/internal/eval"
	"redhanded/internal/feature"
	"redhanded/internal/ml"
	"redhanded/internal/twitterdata"
)

func init() {
	register("fig13", "HT vs batch DT under two training scenarios (3-class)", runFig13)
	register("fig14", "HT vs batch DT under two training scenarios (2-class)", runFig14)
}

// StreamVsBatchResult carries the per-day F1 curves of Figs. 13/14.
type StreamVsBatchResult struct {
	// Days is the number of collection days.
	Days int
	// HTDaily is the streaming HT's F1 within each day's tweets.
	HTDaily []float64
	// HTCumulative is the HT's prequential F1 at each day boundary.
	HTCumulative []float64
	// TrainFirstDay is "train-first-day test-all-others": the DT F1 on
	// each subsequent day (index 0 unused).
	TrainFirstDay []float64
	// TrainPrevDay is "train-one-day test-next-day" (index 0 unused).
	TrainPrevDay []float64
}

// StreamVsBatch runs the Fig. 13/14 comparison for a class scheme.
func StreamVsBatch(cfg Config, scheme core.ClassScheme) (StreamVsBatchResult, error) {
	cfg = cfg.withDefaults()
	data := AggressionDataset(cfg)

	// Group tweets (and their extracted feature vectors) by day. A single
	// extractor instance mirrors the deployed pipeline; batch models use
	// the same features as the streaming one.
	ext := feature.NewExtractor(feature.DefaultConfig())
	days := 0
	for i := range data {
		if data[i].Day > days {
			days = data[i].Day
		}
	}
	days++
	byDay := make([][]ml.Instance, days)
	for i := range data {
		tw := &data[i]
		in := ml.NewInstance(ext.Extract(tw), scheme.LabelIndex(tw.Label))
		byDay[tw.Day] = append(byDay[tw.Day], in)
		ext.Learn(tw)
	}

	res := StreamVsBatchResult{
		Days:          days,
		HTDaily:       make([]float64, days),
		HTCumulative:  make([]float64, days),
		TrainFirstDay: make([]float64, days),
		TrainPrevDay:  make([]float64, days),
	}

	// Streaming HT: prequential over the whole stream, tracking each
	// day's own confusion matrix.
	opts := baseOptions(cfg, scheme, core.ModelHT)
	p := core.NewPipeline(opts)
	cumulative := eval.NewPrequential(scheme.NumClasses(), 0)
	for d := 0; d < days; d++ {
		daily := eval.NewConfusionMatrix(scheme.NumClasses())
		for i := range dataOfDay(data, d) {
			tw := dataOfDay(data, d)[i]
			r := p.Process(&tw)
			if r.Tested {
				daily.Add(r.Instance.Label, r.Predicted)
				cumulative.Record(r.Instance.Label, r.Predicted)
			}
		}
		res.HTDaily[d] = daily.WeightedF1()
		res.HTCumulative[d] = cumulative.Matrix().WeightedF1()
	}

	evalDT := func(model ml.BatchClassifier, test []ml.Instance) float64 {
		m := eval.NewConfusionMatrix(scheme.NumClasses())
		for _, in := range test {
			m.Add(in.Label, model.Predict(in.X).ArgMax())
		}
		return m.WeightedF1()
	}
	newDT := func() *batch.DecisionTree {
		return batch.NewDecisionTree(batch.TreeConfig{NumClasses: scheme.NumClasses()})
	}

	// Scenario 1: train on day 0, test on each later day (model goes stale).
	first := newDT()
	if err := first.Fit(byDay[0]); err != nil {
		return res, err
	}
	for d := 1; d < days; d++ {
		res.TrainFirstDay[d] = evalDT(first, byDay[d])
	}

	// Scenario 2: train on day d-1, test on day d (daily retraining).
	for d := 1; d < days; d++ {
		dt := newDT()
		if err := dt.Fit(byDay[d-1]); err != nil {
			return res, err
		}
		res.TrainPrevDay[d] = evalDT(dt, byDay[d])
	}
	return res, nil
}

// dataOfDay filters the dataset slice for one day. Days are contiguous in
// generation order, so this is a cheap scan.
func dataOfDay(data []twitterdata.Tweet, day int) []twitterdata.Tweet {
	lo := -1
	hi := len(data)
	for i := range data {
		if data[i].Day == day {
			if lo < 0 {
				lo = i
			}
		} else if lo >= 0 {
			hi = i
			break
		}
	}
	if lo < 0 {
		return nil
	}
	return data[lo:hi]
}

func runStreamVsBatch(cfg Config, w io.Writer, scheme core.ClassScheme, title string) error {
	res, err := StreamVsBatch(cfg, scheme)
	if err != nil {
		return err
	}
	t := Table{
		Title: title,
		Columns: []string{"day", "HT (daily)", "HT (cumulative)",
			"DT train-first-day", "DT train-prev-day"},
	}
	for d := 0; d < res.Days; d++ {
		row := []string{fmt.Sprintf("%d", d+1),
			fmt.Sprintf("%.4f", res.HTDaily[d]),
			fmt.Sprintf("%.4f", res.HTCumulative[d])}
		if d == 0 {
			row = append(row, "(train)", "(train)")
		} else {
			row = append(row,
				fmt.Sprintf("%.4f", res.TrainFirstDay[d]),
				fmt.Sprintf("%.4f", res.TrainPrevDay[d]))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Print(w)
	return nil
}

func runFig13(cfg Config, w io.Writer) error {
	return runStreamVsBatch(cfg, w, core.ThreeClass,
		"Fig. 13: HT vs batch DT, 3-class, two batch training scenarios")
}

func runFig14(cfg Config, w io.Writer) error {
	return runStreamVsBatch(cfg, w, core.TwoClass,
		"Fig. 14: HT vs batch DT, 2-class, two batch training scenarios")
}
