package experiments

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"redhanded/internal/core"
	"redhanded/internal/engine"
	"redhanded/internal/twitterdata"
)

func init() {
	register("fig15", "Execution time per streaming system vs number of tweets", runFig15)
	register("fig16", "Throughput per streaming system vs number of tweets", runFig16)
}

// EngineSetup names one execution configuration of §V-E.
type EngineSetup string

// The four setups the paper compares.
const (
	SetupMOA          EngineSetup = "MOA"
	SetupSparkSingle  EngineSetup = "SparkSingle"
	SetupSparkLocal   EngineSetup = "SparkLocal"
	SetupSparkCluster EngineSetup = "SparkCluster"
)

// AllEngineSetups lists the setups in presentation order.
var AllEngineSetups = []EngineSetup{SetupMOA, SetupSparkSingle, SetupSparkLocal, SetupSparkCluster}

// ScalabilityPoint is one measurement of Figs. 15/16.
type ScalabilityPoint struct {
	Setup      EngineSetup
	Tweets     int64
	Duration   time.Duration
	Throughput float64
}

// newScalabilitySource builds the paper's workload: unlabeled tweets
// intermixed with the labeled dataset.
func newScalabilitySource(cfg Config, total int64) engine.Source {
	labeled := AggressionDataset(cfg)
	unlabeled := twitterdata.NewUnlabeledSource(cfg.Seed+999, 10)
	return engine.NewMixedSource(labeled, unlabeled, total)
}

// scalabilityOptions disables per-instance curve sampling (pure
// throughput measurement) but keeps the full pipeline running: HT,
// 3-class, p=n=ad=ON, exactly the configuration of §V-E.
func scalabilityOptions(cfg Config) core.Options {
	opts := baseOptions(cfg, core.ThreeClass, core.ModelHT)
	opts.SampleStep = 0
	return opts
}

// RunScalability measures one (setup, tweet-count) point.
func RunScalability(cfg Config, setup EngineSetup, tweets int64) (ScalabilityPoint, error) {
	cfg = cfg.withDefaults()
	src := newScalabilitySource(cfg, tweets)
	p := core.NewPipeline(scalabilityOptions(cfg))

	var stats engine.Stats
	var err error
	switch setup {
	case SetupMOA:
		stats = engine.RunSequential(p, src)
	case SetupSparkSingle:
		stats, err = engine.RunMicroBatch(p, src, engine.SparkSingleConfig())
	case SetupSparkLocal:
		stats, err = engine.RunMicroBatch(p, src, engine.SparkLocalConfig(cfg.ClusterWorkers))
	case SetupSparkCluster:
		stats, err = runClusterScalability(cfg, p, src)
	default:
		return ScalabilityPoint{}, fmt.Errorf("experiments: unknown setup %q", setup)
	}
	if err != nil {
		return ScalabilityPoint{}, err
	}
	return ScalabilityPoint{
		Setup: setup, Tweets: stats.Processed,
		Duration: stats.Duration, Throughput: stats.Throughput(),
	}, nil
}

// runClusterScalability starts the executor nodes on loopback TCP, runs
// the workload, and tears the cluster down.
func runClusterScalability(cfg Config, p *core.Pipeline, src engine.Source) (engine.Stats, error) {
	var addrs []string
	var executors []*engine.Executor
	defer func() {
		for _, ex := range executors {
			ex.Close()
		}
	}()
	for i := 0; i < cfg.ClusterExecutors; i++ {
		ex, err := engine.StartExecutor("127.0.0.1:0", cfg.ClusterWorkers)
		if err != nil {
			return engine.Stats{}, err
		}
		executors = append(executors, ex)
		addrs = append(addrs, ex.Addr())
	}
	return engine.RunCluster(p, src, engine.ClusterConfig{
		Executors:        addrs,
		BatchSize:        3000,
		TasksPerExecutor: cfg.ClusterWorkers,
	})
}

// scalabilityCache shares one sweep between fig15 and fig16 within a
// process (the measurements are identical; only the projection differs).
var scalabilityCache sync.Map

// Scalability sweeps all setups over the configured tweet counts. Results
// are cached per configuration so regenerating both Fig. 15 and Fig. 16
// costs one sweep.
func Scalability(cfg Config, progress io.Writer) ([]ScalabilityPoint, error) {
	cfg = cfg.withDefaults()
	key := fmt.Sprintf("scal-%v-%d-%d-%d-%v", cfg.Scale, cfg.Seed,
		cfg.ClusterExecutors, cfg.ClusterWorkers, cfg.TweetCounts)
	if v, ok := scalabilityCache.Load(key); ok {
		return v.([]ScalabilityPoint), nil
	}
	var out []ScalabilityPoint
	for _, setup := range AllEngineSetups {
		for _, n := range cfg.TweetCounts {
			pt, err := RunScalability(cfg, setup, n)
			if err != nil {
				return out, fmt.Errorf("%s @ %d tweets: %w", setup, n, err)
			}
			if progress != nil {
				fmt.Fprintf(progress, "  %-13s %9d tweets: %8.2fs  %8.0f tweets/s\n",
					setup, pt.Tweets, pt.Duration.Seconds(), pt.Throughput)
			}
			out = append(out, pt)
			runtime.GC()
		}
	}
	scalabilityCache.Store(key, out)
	return out, nil
}

func scalabilityTable(points []ScalabilityPoint, title string, value func(ScalabilityPoint) string, valueCol string) Table {
	// Column per setup, row per tweet count.
	var counts []int64
	seen := map[int64]bool{}
	for _, pt := range points {
		if !seen[pt.Tweets] {
			seen[pt.Tweets] = true
			counts = append(counts, pt.Tweets)
		}
	}
	cols := []string{"tweets"}
	for _, s := range AllEngineSetups {
		cols = append(cols, string(s)+" "+valueCol)
	}
	t := Table{Title: title, Columns: cols}
	for _, n := range counts {
		row := []string{fmt.Sprintf("%d", n)}
		for _, s := range AllEngineSetups {
			cell := "-"
			for _, pt := range points {
				if pt.Setup == s && pt.Tweets == n {
					cell = value(pt)
				}
			}
			row = append(row, cell)
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

func runFig15(cfg Config, w io.Writer) error {
	points, err := Scalability(cfg, w)
	if err != nil {
		return err
	}
	scalabilityTable(points, "Fig. 15: execution time per streaming system",
		func(pt ScalabilityPoint) string { return fmt.Sprintf("%.2f", pt.Duration.Seconds()) },
		"sec").Print(w)
	return nil
}

func runFig16(cfg Config, w io.Writer) error {
	points, err := Scalability(cfg, w)
	if err != nil {
		return err
	}
	scalabilityTable(points, "Fig. 16: throughput per streaming system",
		func(pt ScalabilityPoint) string { return fmt.Sprintf("%.0f", pt.Throughput) },
		"tw/s").Print(w)
	fmt.Fprintln(w, "reported Twitter Firehose throughput: ~9000 tweets/sec")
	return nil
}
