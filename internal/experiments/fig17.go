package experiments

import (
	"fmt"
	"io"

	"redhanded/internal/batch"
	"redhanded/internal/core"
	"redhanded/internal/eval"
	"redhanded/internal/feature"
	"redhanded/internal/ml"
	"redhanded/internal/norm"
	"redhanded/internal/stream"
	"redhanded/internal/twitterdata"
)

func init() {
	register("fig17", "Streaming HT on the Sarcasm and Offensive datasets vs batch-reported scores", runFig17)
}

// Fig. 17 reference lines: the best batch results the original papers
// report (93% accuracy for Sarcasm, 74% F1 for Offensive).
const (
	SarcasmReportedAccuracy = 0.93
	OffensiveReportedF1     = 0.74
)

// RelatedResult is one dataset's streaming result.
type RelatedResult struct {
	Dataset string
	Metric  string
	Final   float64
	Curve   []eval.Point
}

// labelIndexer maps dataset-specific labels to class indices.
func labelIndex(labels []string, label string) int {
	for i, l := range labels {
		if l == label {
			return i
		}
	}
	return -1
}

// runRelatedDataset streams a labeled dataset through preprocessing,
// feature extraction, normalization, and a Hoeffding tree — the same
// pipeline, retargeted at another behavior with zero structural change
// ("minimal adaptation and tuning").
func runRelatedDataset(cfg Config, data []twitterdata.Tweet, labels []string,
	metric func(*eval.ConfusionMatrix) float64) RelatedResult {

	ext := feature.NewExtractor(feature.DefaultConfig())
	normalizer := core.DefaultOptions().Normalization
	nz := newNormalizer(normalizer)
	ht := stream.NewHoeffdingTree(stream.HTConfig{
		NumClasses:  len(labels),
		NumFeatures: feature.NumFeatures,
	})
	pre := eval.NewPrequential(len(labels), int64(1000*cfg.Scale))
	pre.SetMetric(metric)

	for i := range data {
		tw := &data[i]
		label := labelIndex(labels, tw.Label)
		if label < 0 {
			continue
		}
		raw := ext.Extract(tw)
		nz.Observe(raw)
		x := nz.Normalize(raw, nil)
		pred := ht.Predict(x).ArgMax()
		pre.Record(label, pred)
		ht.Train(ml.NewInstance(x, label))
		// The BoW adapts towards whatever the "positive" behaviors are.
		aggressive := label != 0
		learnTw := *tw
		if aggressive {
			learnTw.Label = twitterdata.LabelAbusive
		} else {
			learnTw.Label = twitterdata.LabelNormal
		}
		ext.Learn(&learnTw)
	}
	return RelatedResult{Final: metric(pre.Matrix()), Curve: pre.Curve()}
}

// RunSarcasm streams the sarcasm dataset (metric: accuracy, as reported
// by Rajadesingan et al.).
func RunSarcasm(cfg Config) RelatedResult {
	cfg = cfg.withDefaults()
	scfg := twitterdata.DefaultSarcasmConfig()
	scfg.Seed = cfg.Seed + 7
	scfg.SarcasticCount = scaleCount(scfg.SarcasticCount, cfg.Scale)
	scfg.NormalCount = scaleCount(scfg.NormalCount, cfg.Scale)
	data := twitterdata.GenerateSarcasm(scfg)
	res := runRelatedDataset(cfg, data,
		[]string{twitterdata.LabelNormal, twitterdata.LabelSarcastic},
		(*eval.ConfusionMatrix).Accuracy)
	res.Dataset, res.Metric = "Sarcasm", "accuracy"
	return res
}

// RunOffensive streams the racism/sexism dataset (metric: weighted F1, as
// reported by Waseem & Hovy).
func RunOffensive(cfg Config) RelatedResult {
	cfg = cfg.withDefaults()
	ocfg := twitterdata.DefaultOffensiveConfig()
	ocfg.Seed = cfg.Seed + 11
	ocfg.RacistCount = scaleCount(ocfg.RacistCount, cfg.Scale)
	ocfg.SexistCount = scaleCount(ocfg.SexistCount, cfg.Scale)
	ocfg.NoneCount = scaleCount(ocfg.NoneCount, cfg.Scale)
	data := twitterdata.GenerateOffensive(ocfg)
	res := runRelatedDataset(cfg, data,
		[]string{twitterdata.LabelNone, twitterdata.LabelRacism, twitterdata.LabelSexism},
		(*eval.ConfusionMatrix).WeightedF1)
	res.Dataset, res.Metric = "Offensive", "weighted F1"
	return res
}

// BatchCVReference computes the batch counterpart the original papers
// report: logistic regression under 10-fold cross validation, on the same
// extracted features.
func BatchCVReference(cfg Config, data []twitterdata.Tweet, labels []string,
	metric func(*eval.ConfusionMatrix) float64) (float64, error) {

	ext := feature.NewExtractor(feature.DefaultConfig())
	instances := make([]ml.Instance, 0, len(data))
	for i := range data {
		tw := &data[i]
		label := labelIndex(labels, tw.Label)
		if label < 0 {
			continue
		}
		instances = append(instances, ml.NewInstance(ext.Extract(tw), label))
		ext.Learn(remapAggressive(tw, label))
	}
	// Batch LR needs scaled features; use z-score over the full dataset
	// (batch setting: global statistics are available).
	stats := norm.NewFeatureStats(feature.NumFeatures)
	for _, in := range instances {
		stats.Observe(in.X)
	}
	nz := &norm.Normalizer{Mode: norm.ZScore, Stats: stats}
	for i := range instances {
		instances[i].X = nz.Normalize(instances[i].X, nil)
	}
	pairs, err := ml.CrossValidate(instances, 10, cfg.Seed, func() ml.BatchClassifier {
		return batch.NewLogistic(batch.LogisticConfig{NumClasses: len(labels), Epochs: 5})
	})
	if err != nil {
		return 0, err
	}
	m := eval.NewConfusionMatrix(len(labels))
	for _, p := range pairs {
		m.Add(p[0], p[1])
	}
	return metric(m), nil
}

// remapAggressive maps a related-dataset tweet onto the BoW's
// aggressive/normal dichotomy for adaptation.
func remapAggressive(tw *twitterdata.Tweet, label int) *twitterdata.Tweet {
	cp := *tw
	if label != 0 {
		cp.Label = twitterdata.LabelAbusive
	} else {
		cp.Label = twitterdata.LabelNormal
	}
	return &cp
}

func runFig17(cfg Config, w io.Writer) error {
	sarcasm := RunSarcasm(cfg)
	offensive := RunOffensive(cfg)
	step := int64(5000 * cfg.Scale)
	if step < 100 {
		step = 100
	}
	CurveTable("Fig. 17: streaming HT on related behaviors", []Series{
		{Name: "Sarcasm accuracy (HT)", Points: sarcasm.Curve},
		{Name: "Offensive F1 (HT)", Points: offensive.Curve},
	}, step).Print(w)

	// Batch LR + 10-fold CV on the same synthetic data — the measured
	// equivalent of the scores the original papers report.
	scfg := twitterdata.DefaultSarcasmConfig()
	scfg.Seed = cfg.Seed + 7
	scfg.SarcasticCount = scaleCount(scfg.SarcasticCount, cfg.Scale)
	scfg.NormalCount = scaleCount(scfg.NormalCount, cfg.Scale)
	sarcasmRef, err := BatchCVReference(cfg, twitterdata.GenerateSarcasm(scfg),
		[]string{twitterdata.LabelNormal, twitterdata.LabelSarcastic},
		(*eval.ConfusionMatrix).Accuracy)
	if err != nil {
		return err
	}
	ocfg := twitterdata.DefaultOffensiveConfig()
	ocfg.Seed = cfg.Seed + 11
	ocfg.RacistCount = scaleCount(ocfg.RacistCount, cfg.Scale)
	ocfg.SexistCount = scaleCount(ocfg.SexistCount, cfg.Scale)
	ocfg.NoneCount = scaleCount(ocfg.NoneCount, cfg.Scale)
	offensiveRef, err := BatchCVReference(cfg, twitterdata.GenerateOffensive(ocfg),
		[]string{twitterdata.LabelNone, twitterdata.LabelRacism, twitterdata.LabelSexism},
		(*eval.ConfusionMatrix).WeightedF1)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "final Sarcasm accuracy:  %.4f (batch LR 10-fold CV here: %.4f; paper-reported: %.2f)\n",
		sarcasm.Final, sarcasmRef, SarcasmReportedAccuracy)
	fmt.Fprintf(w, "final Offensive F1:      %.4f (batch LR 10-fold CV here: %.4f; paper-reported: %.2f)\n",
		offensive.Final, offensiveRef, OffensiveReportedF1)
	return nil
}
