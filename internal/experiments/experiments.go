// Package experiments implements one runner per table and figure of the
// paper's evaluation (§V), producing the same rows and series the paper
// reports. Runners are shared by the benchrunner CLI and the repository's
// benchmark suite. Absolute numbers differ from the paper (synthetic data,
// different hardware); EXPERIMENTS.md records measured-vs-paper values.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"redhanded/internal/core"
	"redhanded/internal/eval"
	"redhanded/internal/twitterdata"
)

// Config controls experiment scale so the suite can run quickly during
// development and at paper scale for the record.
type Config struct {
	// Scale multiplies dataset sizes (1.0 = the paper's 86k tweets).
	Scale float64
	// Seed drives dataset generation and model randomness.
	Seed uint64
	// TweetCounts are the x-axis points of the scalability experiments
	// (the paper sweeps 250k to 2M).
	TweetCounts []int64
	// ClusterExecutors / ClusterWorkers shape the SparkCluster setup
	// (paper: 3 nodes x 8 cores).
	ClusterExecutors int
	ClusterWorkers   int
}

// DefaultConfig is full paper scale.
func DefaultConfig() Config {
	return Config{
		Scale:            1.0,
		Seed:             42,
		TweetCounts:      []int64{250000, 500000, 1000000, 2000000},
		ClusterExecutors: 3,
		ClusterWorkers:   8,
	}
}

// QuickConfig is a reduced scale for smoke runs and benchmarks.
func QuickConfig() Config {
	cfg := DefaultConfig()
	cfg.Scale = 0.1
	cfg.TweetCounts = []int64{20000, 40000}
	return cfg
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Scale <= 0 {
		c.Scale = d.Scale
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	if len(c.TweetCounts) == 0 {
		c.TweetCounts = d.TweetCounts
	}
	if c.ClusterExecutors <= 0 {
		c.ClusterExecutors = d.ClusterExecutors
	}
	if c.ClusterWorkers <= 0 {
		c.ClusterWorkers = d.ClusterWorkers
	}
	return c
}

// scaledAggressionConfig shrinks the 86k dataset by Scale.
func (c Config) scaledAggressionConfig() twitterdata.AggressionConfig {
	base := twitterdata.DefaultAggressionConfig()
	base.Seed = c.Seed
	base.NormalCount = scaleCount(base.NormalCount, c.Scale)
	base.AbusiveCount = scaleCount(base.AbusiveCount, c.Scale)
	base.HatefulCount = scaleCount(base.HatefulCount, c.Scale)
	return base
}

func scaleCount(n int, scale float64) int {
	v := int(float64(n) * scale)
	if v < 10 {
		v = 10
	}
	return v
}

// datasetCache shares generated datasets across experiments in a process.
var datasetCache sync.Map

// AggressionDataset returns the (possibly scaled) labeled dataset,
// generating it once per configuration.
func AggressionDataset(cfg Config) []twitterdata.Tweet {
	cfg = cfg.withDefaults()
	key := fmt.Sprintf("aggr-%v-%d", cfg.Scale, cfg.Seed)
	if v, ok := datasetCache.Load(key); ok {
		return v.([]twitterdata.Tweet)
	}
	data := twitterdata.GenerateAggression(cfg.scaledAggressionConfig())
	datasetCache.Store(key, data)
	return data
}

// Table is a printable experiment result.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// Print renders the table with aligned columns.
func (t Table) Print(w io.Writer) {
	fmt.Fprintf(w, "%s\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// Series is one named metric-over-instances curve.
type Series struct {
	Name   string
	Points []eval.Point
}

// CurveTable tabulates several series on a shared instance axis
// (values carried forward between samples), matching how the paper's
// figures overlay multiple configurations.
func CurveTable(title string, series []Series, step int64) Table {
	var maxN int64
	for _, s := range series {
		if len(s.Points) > 0 {
			if last := s.Points[len(s.Points)-1].Instances; last > maxN {
				maxN = last
			}
		}
	}
	cols := []string{"tweets"}
	for _, s := range series {
		cols = append(cols, s.Name)
	}
	t := Table{Title: title, Columns: cols}
	for n := step; n <= maxN; n += step {
		row := []string{fmt.Sprintf("%d", n)}
		for _, s := range series {
			row = append(row, fmt.Sprintf("%.4f", valueAt(s.Points, n)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// valueAt returns the latest sample at or before n (0 when none).
func valueAt(points []eval.Point, n int64) float64 {
	i := sort.Search(len(points), func(i int) bool { return points[i].Instances > n })
	if i == 0 {
		return 0
	}
	return points[i-1].Value
}

// Runner executes one experiment and writes its result.
type Runner func(cfg Config, w io.Writer) error

// registry maps experiment ids to runners; populated by init functions in
// the per-experiment files.
var registry = map[string]Runner{}

var descriptions = map[string]string{}

func register(id, description string, r Runner) {
	registry[id] = r
	descriptions[id] = description
}

// Run executes the experiment with the given id.
func Run(id string, cfg Config, w io.Writer) error {
	r, ok := registry[id]
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (known: %s)", id, strings.Join(IDs(), ", "))
	}
	return r(cfg.withDefaults(), w)
}

// IDs lists the registered experiments in sorted order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Description returns the one-line description of an experiment.
func Description(id string) string { return descriptions[id] }

// runPipeline executes the pipeline sequentially over the dataset with the
// given options and returns it for inspection.
func runPipeline(opts core.Options, data []twitterdata.Tweet) *core.Pipeline {
	p := core.NewPipeline(opts)
	p.ProcessAll(data)
	return p
}

// baseOptions are the paper's defaults (everything ON) with the curve
// sampling adjusted to the dataset size so figures keep ~90 points.
func baseOptions(cfg Config, scheme core.ClassScheme, model core.ModelKind) core.Options {
	opts := core.DefaultOptions()
	opts.Scheme = scheme
	opts.Model = model
	opts.Seed = cfg.Seed
	opts.SampleStep = int64(1000 * cfg.Scale)
	if opts.SampleStep < 50 {
		opts.SampleStep = 50
	}
	return opts
}

func onOff(v bool) string {
	if v {
		return "ON"
	}
	return "OFF"
}
