package experiments

import (
	"fmt"
	"io"
	"sort"

	"redhanded/internal/batch"
	"redhanded/internal/core"
	"redhanded/internal/feature"
	"redhanded/internal/ml"
	"redhanded/internal/norm"
)

func init() {
	register("fig4", "Per-class distributions of six headline features", runFig4)
	register("fig5", "Gini feature importances over the 16 base features", runFig5)
	register("fig10", "Adaptive bag-of-words size while processing tweets", runFig10)
}

// extractAll extracts raw (unnormalized) feature vectors and 3-class
// labels for the whole dataset using the default extractor configuration.
func extractAll(cfg Config) []ml.Instance {
	data := AggressionDataset(cfg)
	ext := feature.NewExtractor(feature.DefaultConfig())
	out := make([]ml.Instance, 0, len(data))
	for i := range data {
		tw := &data[i]
		label := core.ThreeClass.LabelIndex(tw.Label)
		out = append(out, ml.NewInstance(ext.Extract(tw), label))
		ext.Learn(tw) // keep the BoW adapting as the paper's pipeline does
	}
	return out
}

// fig4Features are the six features the paper plots.
var fig4Features = []int{
	feature.AccountAge, feature.NumUpperCases, feature.CntAdjectives,
	feature.WordsPerSentence, feature.SentimentScoreNeg, feature.CntSwearWords,
}

func runFig4(cfg Config, w io.Writer) error {
	instances := extractAll(cfg)
	classNames := []string{"normal", "abusive", "hateful"}

	for _, f := range fig4Features {
		t := Table{
			Title:   fmt.Sprintf("Fig. 4: distribution of %s by class", feature.Name(f)),
			Columns: []string{"class", "mean", "std", "min", "p25", "median", "p75", "max"},
		}
		for c, name := range classNames {
			var wf norm.Welford
			var values []float64
			for _, in := range instances {
				if in.Label == c {
					wf.Add(in.X[f])
					values = append(values, in.X[f])
				}
			}
			sort.Float64s(values)
			q := func(p float64) float64 {
				if len(values) == 0 {
					return 0
				}
				i := int(p * float64(len(values)-1))
				return values[i]
			}
			t.Rows = append(t.Rows, []string{
				name,
				fmt.Sprintf("%.2f", wf.Mean),
				fmt.Sprintf("%.2f", wf.Std()),
				fmt.Sprintf("%.2f", q(0)),
				fmt.Sprintf("%.2f", q(0.25)),
				fmt.Sprintf("%.2f", q(0.5)),
				fmt.Sprintf("%.2f", q(0.75)),
				fmt.Sprintf("%.2f", q(1)),
			})
		}
		t.Print(w)
		fmt.Fprintln(w)
	}
	return nil
}

// Fig5Importances fits the batch random forest on the 16 base features
// (the adaptive BoW score is the paper's 17th, presented separately) and
// returns the normalized Gini importances by feature index.
func Fig5Importances(cfg Config) ([]float64, error) {
	instances := extractAll(cfg)
	// Drop the BoW feature to match the paper's Fig. 5 feature list.
	base := make([]ml.Instance, len(instances))
	for i, in := range instances {
		base[i] = ml.Instance{X: in.X[:feature.BoWScore], Label: in.Label, Weight: 1}
	}
	rf := batch.NewRandomForest(batch.ForestConfig{NumClasses: 3, Trees: 30, Seed: cfg.Seed})
	if err := rf.Fit(base); err != nil {
		return nil, err
	}
	return rf.GiniImportances(), nil
}

func runFig5(cfg Config, w io.Writer) error {
	imp, err := Fig5Importances(cfg)
	if err != nil {
		return err
	}
	type fi struct {
		feature int
		value   float64
	}
	ranked := make([]fi, len(imp))
	for i, v := range imp {
		ranked[i] = fi{i, v}
	}
	sort.Slice(ranked, func(a, b int) bool { return ranked[a].value > ranked[b].value })
	t := Table{
		Title:   "Fig. 5: feature importances (Gini), descending",
		Columns: []string{"rank", "feature", "importance"},
	}
	for rank, e := range ranked {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", rank+1),
			feature.Name(e.feature),
			fmt.Sprintf("%.4f", e.value),
		})
	}
	t.Print(w)
	return nil
}

func runFig10(cfg Config, w io.Writer) error {
	data := AggressionDataset(cfg)
	p := runPipeline(baseOptions(cfg, core.ThreeClass, core.ModelHT), data)
	curve := p.BoWSizeCurve()
	series := []Series{{Name: "BoW size (words)", Points: curve}}
	step := int64(5000 * cfg.Scale)
	if step < 100 {
		step = 100
	}
	CurveTable("Fig. 10: size of the adaptive bag-of-words over the stream", series, step).Print(w)
	if len(curve) > 0 {
		fmt.Fprintf(w, "start: %d words (seed), end: %.0f words\n", 347, curve[len(curve)-1].Value)
	}
	return nil
}
