package experiments

import (
	"fmt"
	"io"

	"redhanded/internal/core"
	"redhanded/internal/feature"
	"redhanded/internal/norm"
	"redhanded/internal/stream"
)

func init() {
	register("table1", "Hyperparameter grid search for the streaming models", runTable1)
}

func newNormalizer(mode norm.Mode) *norm.Normalizer {
	return norm.NewNormalizer(mode, feature.NumFeatures)
}

// GridResult is the outcome of tuning one parameter.
type GridResult struct {
	Model    string
	Param    string
	Range    string
	Selected string
	BestF1   float64
}

// gridEval runs the pipeline with the given options and returns weighted F1.
func gridEval(cfg Config, opts core.Options) float64 {
	data := AggressionDataset(cfg)
	return runPipeline(opts, data).Summary().F1
}

// sweep evaluates a parameter's candidate values with all other parameters
// at their selected settings (coordinate-wise search — full cartesian grids
// are run at paper scale via `gridsearch -full`).
func sweep[T any](cfg Config, model, param string, values []T,
	format func(T) string, rangeStr string,
	apply func(core.Options, T) core.Options, base core.Options) GridResult {

	best, bestF1 := 0, -1.0
	for i, v := range values {
		f1 := gridEval(cfg, apply(base, v))
		if f1 > bestF1 {
			best, bestF1 = i, f1
		}
	}
	return GridResult{
		Model: model, Param: param, Range: rangeStr,
		Selected: format(values[best]), BestF1: bestF1,
	}
}

// Table1 runs the hyperparameter study. The ranges mirror Table I of the
// paper; each parameter is swept around the Table I defaults.
func Table1(cfg Config) []GridResult {
	cfg = cfg.withDefaults()
	var out []GridResult

	fmtF := func(v float64) string { return fmt.Sprintf("%g", v) }
	fmtI := func(v int) string { return fmt.Sprintf("%d", v) }

	htBase := baseOptions(cfg, core.ThreeClass, core.ModelHT)
	out = append(out,
		sweep(cfg, "HT", "Split Criterion",
			[]stream.Criterion{stream.Gini, stream.InfoGain},
			func(c stream.Criterion) string { return c.String() }, "Gini, InfoGain",
			func(o core.Options, v stream.Criterion) core.Options { o.HT.SplitCriterion = v; return o }, htBase),
		sweep(cfg, "HT", "Split Confidence",
			[]float64{0.001, 0.01, 0.1, 0.5}, fmtF, "0.001 - 0.5",
			func(o core.Options, v float64) core.Options { o.HT.SplitConfidence = v; return o }, htBase),
		sweep(cfg, "HT", "Tie Threshold",
			[]float64{0.01, 0.05, 0.1}, fmtF, "0.01 - 0.1",
			func(o core.Options, v float64) core.Options { o.HT.TieThreshold = v; return o }, htBase),
		sweep(cfg, "HT", "Grace Period",
			[]int{200, 300, 500}, fmtI, "200 - 500",
			func(o core.Options, v int) core.Options { o.HT.GracePeriod = v; return o }, htBase),
		sweep(cfg, "HT", "Max Tree Depth",
			[]int{10, 20, 30}, fmtI, "10 - 30",
			func(o core.Options, v int) core.Options { o.HT.MaxDepth = v; return o }, htBase),
	)

	arfBase := baseOptions(cfg, core.ThreeClass, core.ModelARF)
	out = append(out,
		sweep(cfg, "ARF", "Ensemble Size",
			[]int{10, 15, 20}, fmtI, "10 - 20",
			func(o core.Options, v int) core.Options { o.ARF.EnsembleSize = v; return o }, arfBase),
	)

	slrBase := baseOptions(cfg, core.ThreeClass, core.ModelSLR)
	out = append(out,
		sweep(cfg, "SLR", "Lambda",
			[]float64{0.01, 0.05, 0.1}, fmtF, "0.01 - 0.1",
			func(o core.Options, v float64) core.Options { o.SLR.LearningRate = v; return o }, slrBase),
		sweep(cfg, "SLR", "Regularizer",
			[]stream.Regularizer{stream.RegZero, stream.RegL1, stream.RegL2},
			func(r stream.Regularizer) string { return r.String() }, "Zero, L1, L2",
			func(o core.Options, v stream.Regularizer) core.Options { o.SLR.Regularizer = v; return o }, slrBase),
		sweep(cfg, "SLR", "Regularization",
			[]float64{0.001, 0.01, 0.1}, fmtF, "0.001 - 0.1",
			func(o core.Options, v float64) core.Options { o.SLR.RegLambda = v; return o }, slrBase),
	)
	return out
}

// FullHTGrid runs the complete cartesian HT grid (Table I ranges) and
// returns the best configuration — the heavyweight mode of the gridsearch
// CLI.
func FullHTGrid(cfg Config, progress io.Writer) (stream.HTConfig, float64) {
	cfg = cfg.withDefaults()
	best := stream.HTConfig{}
	bestF1 := -1.0
	for _, crit := range []stream.Criterion{stream.Gini, stream.InfoGain} {
		for _, conf := range []float64{0.001, 0.01, 0.1, 0.5} {
			for _, tie := range []float64{0.01, 0.05, 0.1} {
				for _, grace := range []int{200, 300, 500} {
					for _, depth := range []int{10, 20, 30} {
						opts := baseOptions(cfg, core.ThreeClass, core.ModelHT)
						opts.HT.SplitCriterion = crit
						opts.HT.SplitConfidence = conf
						opts.HT.TieThreshold = tie
						opts.HT.GracePeriod = grace
						opts.HT.MaxDepth = depth
						f1 := gridEval(cfg, opts)
						if progress != nil {
							fmt.Fprintf(progress, "  %v conf=%g tie=%g grace=%d depth=%d -> F1 %.4f\n",
								crit, conf, tie, grace, depth, f1)
						}
						if f1 > bestF1 {
							bestF1 = f1
							best = opts.HT
							best.NumClasses = 3
							best.NumFeatures = feature.NumFeatures
						}
					}
				}
			}
		}
	}
	return best, bestF1
}

func runTable1(cfg Config, w io.Writer) error {
	results := Table1(cfg)
	t := Table{
		Title:   "Table I: hyperparameter tuning for streaming models",
		Columns: []string{"Model", "Parameter", "Range or Options", "Selected", "F1"},
	}
	for _, r := range results {
		t.Rows = append(t.Rows, []string{
			r.Model, r.Param, r.Range, r.Selected, fmt.Sprintf("%.4f", r.BestF1),
		})
	}
	t.Print(w)
	return nil
}
