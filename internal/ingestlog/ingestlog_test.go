package ingestlog

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"redhanded/internal/twitterdata"
)

func testOptions(dir string) Options {
	return Options{Dir: dir, Partitions: 1, SegmentBytes: 256, Fsync: FsyncOff}
}

func payloadFor(i int) []byte {
	return []byte(fmt.Sprintf("record-%04d-%s", i, "padpadpadpad"))
}

// appendN writes n known payloads to partition 0 and closes the log.
func appendN(t *testing.T, dir string, n int) {
	t.Helper()
	l, err := Open(testOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		off, err := l.Append(0, payloadFor(i))
		if err != nil {
			t.Fatal(err)
		}
		if off != int64(i) {
			t.Fatalf("append %d got offset %d", i, off)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// readAll drains partition 0 and asserts offsets are dense from 0.
func readAll(t *testing.T, dir string) [][]byte {
	t.Helper()
	r, err := OpenPartitionReader(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var out [][]byte
	for {
		p, off, err := r.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		if off != int64(len(out)) {
			t.Fatalf("offset %d at position %d", off, len(out))
		}
		out = append(out, append([]byte(nil), p...))
	}
}

func TestAppendReadRoundTripAcrossSegments(t *testing.T) {
	dir := t.TempDir()
	const n = 40 // SegmentBytes=256 forces several rolls
	appendN(t, dir, n)

	names, err := segmentFiles(filepath.Join(dir, "p000"))
	if err != nil {
		t.Fatal(err)
	}
	if len(names) < 3 {
		t.Fatalf("expected several segments, got %v", names)
	}
	got := readAll(t, dir)
	if len(got) != n {
		t.Fatalf("read %d records, wrote %d", len(got), n)
	}
	for i, p := range got {
		if !bytes.Equal(p, payloadFor(i)) {
			t.Fatalf("record %d: got %q want %q", i, p, payloadFor(i))
		}
	}
}

func TestReopenResumesOffsets(t *testing.T) {
	dir := t.TempDir()
	appendN(t, dir, 10)

	l, err := Open(testOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if got := l.AppendedOffset(0); got != 9 {
		t.Fatalf("appended offset after reopen = %d, want 9", got)
	}
	off, err := l.Append(0, payloadFor(10))
	if err != nil {
		t.Fatal(err)
	}
	if off != 10 {
		t.Fatalf("append after reopen got offset %d, want 10", off)
	}
	l.Close()
	if got := readAll(t, dir); len(got) != 11 {
		t.Fatalf("read %d records after reopen-append, want 11", len(got))
	}
}

func TestSeekTo(t *testing.T) {
	dir := t.TempDir()
	appendN(t, dir, 30)
	r, err := OpenPartitionReader(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for _, want := range []int64{0, 7, 29, 13, 30, 0} {
		if err := r.SeekTo(want); err != nil {
			t.Fatalf("seek %d: %v", want, err)
		}
		p, off, err := r.Next()
		if want == 30 {
			if err != io.EOF {
				t.Fatalf("seek past end: got %v, want EOF", err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("seek %d: next: %v", want, err)
		}
		if off != want || !bytes.Equal(p, payloadFor(int(want))) {
			t.Fatalf("seek %d landed on offset %d payload %q", want, off, p)
		}
	}
}

func TestPartitionMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	appendN(t, dir, 1)
	if _, err := Open(Options{Dir: dir, Partitions: 2, Fsync: FsyncOff}); err == nil {
		t.Fatal("opening a 1-partition log with 2 partitions should fail")
	}
}

func TestFsyncPolicies(t *testing.T) {
	for _, policy := range []FsyncPolicy{FsyncOff, FsyncInterval, FsyncAlways} {
		t.Run(policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			opts := testOptions(dir)
			opts.Fsync = policy
			opts.FsyncEvery = time.Millisecond
			l, err := Open(opts)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 20; i++ {
				if _, err := l.Append(0, payloadFor(i)); err != nil {
					t.Fatal(err)
				}
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			if got := readAll(t, dir); len(got) != 20 {
				t.Fatalf("%s: read %d records, want 20", policy, len(got))
			}
		})
	}
}

func TestIntervalBackpressure(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions(dir)
	opts.Fsync = FsyncInterval
	opts.FsyncEvery = time.Hour // never ticks during the test
	opts.MaxUnsynced = 64
	l, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var stalled bool
	for i := 0; i < 100; i++ {
		if _, err := l.Append(0, payloadFor(i)); err != nil {
			if err != ErrBackpressure {
				t.Fatalf("append %d: %v", i, err)
			}
			stalled = true
			break
		}
	}
	if !stalled {
		t.Fatal("append never stalled with a 64-byte unsynced budget")
	}
	// An explicit sync drains the budget and appends flow again.
	l.SyncAll()
	if _, err := l.Append(0, []byte("after-sync")); err != nil {
		t.Fatalf("append after SyncAll: %v", err)
	}
}

// TestIngestLogCrashRecoveryMatrix truncates the tail segment at every
// byte offset of the final record's frame and asserts that recovery
// drops exactly the torn record — committed records all survive, reads
// and appends resume at the right offset.
func TestIngestLogCrashRecoveryMatrix(t *testing.T) {
	srcDir := t.TempDir()
	const n = 12 // spans several 256-byte segments
	appendN(t, srcDir, n)

	pdir := filepath.Join(srcDir, "p000")
	names, err := segmentFiles(pdir)
	if err != nil {
		t.Fatal(err)
	}
	tailName := names[len(names)-1]
	tail, err := os.ReadFile(filepath.Join(pdir, tailName))
	if err != nil {
		t.Fatal(err)
	}
	// Locate the final record's frame in the tail segment.
	var frameStart int64 = segmentHdrLen
	var inTail int64
	for pos := int64(segmentHdrLen); ; {
		_, next, ok := frameAt(tail, pos)
		if !ok {
			break
		}
		frameStart = pos
		inTail++
		pos = next
	}
	if inTail == 0 {
		t.Fatal("tail segment holds no records; lower SegmentBytes")
	}
	if frameStart == int64(len(tail)) {
		t.Fatal("no final frame found")
	}

	for cut := frameStart; cut < int64(len(tail)); cut++ {
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			if err := os.CopyFS(dir, os.DirFS(srcDir)); err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(filepath.Join(dir, "p000", tailName), cut); err != nil {
				t.Fatal(err)
			}

			// The standalone reader sees the torn tail as end-of-log and
			// must deliver every committed record.
			got := readAll(t, dir)
			if len(got) != n-1 {
				t.Fatalf("reader returned %d records, want %d (only the torn record dropped)", len(got), n-1)
			}
			for i, p := range got {
				if !bytes.Equal(p, payloadFor(i)) {
					t.Fatalf("record %d corrupted after recovery: %q", i, p)
				}
			}

			// Recovery truncates the torn frame and resumes appending at
			// the dropped record's offset.
			l, err := Open(testOptions(dir))
			if err != nil {
				t.Fatal(err)
			}
			if gotOff := l.AppendedOffset(0); gotOff != int64(n-2) {
				t.Fatalf("recovered appended offset = %d, want %d", gotOff, n-2)
			}
			off, err := l.Append(0, payloadFor(n-1))
			if err != nil {
				t.Fatal(err)
			}
			if off != int64(n-1) {
				t.Fatalf("post-recovery append got offset %d, want %d", off, n-1)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			if final := readAll(t, dir); len(final) != n {
				t.Fatalf("after recovery+append read %d records, want %d", len(final), n)
			}
		})
	}
}

// TestCrashRecoveryTornHeader covers the narrower crash window where the
// newest segment died before its 16-byte header was complete: the file
// holds no committed records, so recovery drops it and the previous
// segment becomes the tail again.
func TestCrashRecoveryTornHeader(t *testing.T) {
	dir := t.TempDir()
	appendN(t, dir, 6)
	pdir := filepath.Join(dir, "p000")
	names, err := segmentFiles(pdir)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a torn create: a new tail segment with half a header.
	torn := filepath.Join(pdir, segmentName(6))
	if err := os.WriteFile(torn, []byte(segmentMagic+"\x00"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, dir); len(got) != 6 {
		t.Fatalf("reader returned %d records, want 6", len(got))
	}
	l, err := Open(testOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if got := l.AppendedOffset(0); got != 5 {
		t.Fatalf("appended offset = %d, want 5", got)
	}
	if off, err := l.Append(0, payloadFor(6)); err != nil || off != 6 {
		t.Fatalf("append after torn-header recovery: off=%d err=%v", off, err)
	}
	_ = names
}

// TestCorruptMidLogSurfacesResumeOffset flips a byte inside a committed,
// non-tail record: the reader must stop with a CorruptError carrying the
// first undelivered offset rather than yield a bad payload.
func TestCorruptMidLogSurfacesResumeOffset(t *testing.T) {
	dir := t.TempDir()
	appendN(t, dir, 12)
	pdir := filepath.Join(dir, "p000")
	names, err := segmentFiles(pdir)
	if err != nil {
		t.Fatal(err)
	}
	first := filepath.Join(pdir, names[0])
	data, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte of the first record.
	data[segmentHdrLen+6] ^= 0xff
	if err := os.WriteFile(first, data, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := OpenPartitionReader(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	_, _, err = r.Next()
	ce, ok := err.(*CorruptError)
	if !ok {
		t.Fatalf("expected CorruptError, got %v", err)
	}
	if ce.Offset != 0 {
		t.Fatalf("resume offset = %d, want 0", ce.Offset)
	}
}

func sampleTweet() twitterdata.Tweet {
	return twitterdata.Tweet{
		IDStr:     "991",
		Text:      "you're all IDIOTS and losers http://t.co/x #rage",
		CreatedAt: "Mon Jan 02 15:04:05 +0000 2017",
		Label:     twitterdata.LabelAbusive,
		Day:       3,
		User: twitterdata.User{
			IDStr:          "u42",
			ScreenName:     "angry_bird",
			CreatedAt:      "Sat Jan 02 10:00:00 +0000 2016",
			FollowersCount: 17,
			FriendsCount:   230,
			StatusesCount:  9001,
			ListedCount:    2,
		},
	}
}

func TestTweetCodecRoundTrip(t *testing.T) {
	g := twitterdata.NewGenerator(3, 10)
	tweets := make([]twitterdata.Tweet, 0, 201)
	tweets = append(tweets, sampleTweet(), twitterdata.Tweet{})
	for i := 0; i < 199; i++ {
		tweets = append(tweets, g.Tweet(i%3, i%10))
	}
	var buf []byte
	for i := range tweets {
		buf = AppendTweet(buf[:0], &tweets[i])
		for _, copyStrings := range []bool{true, false} {
			var got twitterdata.Tweet
			if err := DecodeTweet(buf, &got, copyStrings); err != nil {
				t.Fatalf("tweet %d (copy=%v): %v", i, copyStrings, err)
			}
			if got != tweets[i] {
				t.Fatalf("tweet %d (copy=%v) round trip diverged:\n%+v\n%+v", i, copyStrings, got, tweets[i])
			}
		}
	}
}

func TestDecodeTweetRejectsTruncation(t *testing.T) {
	tw := sampleTweet()
	full := AppendTweet(nil, &tw)
	for cut := 0; cut < len(full); cut++ {
		var got twitterdata.Tweet
		if err := DecodeTweet(full[:cut], &got, true); err == nil {
			t.Fatalf("truncation at %d decoded without error", cut)
		}
	}
	var got twitterdata.Tweet
	if err := DecodeTweet(append(append([]byte(nil), full...), 0), &got, true); err == nil {
		t.Fatal("trailing byte decoded without error")
	}
}

func TestPartitionForMatchesStableHash(t *testing.T) {
	// The partition function must stay a pure, stable function of
	// (userID, partitions): pin a few values so an accidental hash change
	// breaks loudly (stored logs would replay to the wrong shards).
	cases := map[string]int{"u1": 3, "u2": 2, "alice": 3, "": 1}
	for id, want := range cases {
		if got := PartitionFor(id, 4); got != want {
			t.Fatalf("PartitionFor(%q,4) = %d, want %d", id, got, want)
		}
	}
}
