package ingestlog

import (
	"encoding/binary"
	"testing"
)

// The 16-byte segment header is on-disk format: logs written by one
// build must replay under every later build. The pin plus the
// round-trip below make a header change a deliberate versioned event
// (bump segmentVersion) instead of a silent layout drift.
func TestSegmentHeaderPinned(t *testing.T) {
	if segmentHdrLen != 16 {
		t.Fatalf("segmentHdrLen = %d, pinned at 16: the header is durable wire format; bump segmentVersion for layout changes", segmentHdrLen)
	}
	var hdr [segmentHdrLen]byte
	putSegmentHeader(hdr[:], 3, 0x0123456789ab)
	if string(hdr[:4]) != segmentMagic {
		t.Fatalf("header magic = %q, want %q", hdr[:4], segmentMagic)
	}
	if v := binary.BigEndian.Uint16(hdr[4:6]); v != segmentVersion {
		t.Fatalf("header version = %d, want %d", v, segmentVersion)
	}
	part, base, err := parseSegmentHeader(hdr[:])
	if err != nil || part != 3 || base != 0x0123456789ab {
		t.Fatalf("parseSegmentHeader round trip = (%d, %#x, %v), want (3, 0x0123456789ab, nil)", part, base, err)
	}
}
