package ingestlog

import (
	"bytes"
	"encoding/binary"
	"io"
	"os"
	"path/filepath"
	"testing"

	"redhanded/internal/twitterdata"
)

// FuzzSegmentReader feeds arbitrary bytes to the reader and the recovery
// path as a segment file. Whatever the bytes, three invariants must
// hold:
//
//  1. neither the reader nor recovery panics;
//  2. the reader yields exactly the longest checksum-valid frame prefix
//     (verified by an independent re-scan in the test) — a record
//     failing its checksum is never delivered, and arbitrary payloads
//     never panic the tweet codec;
//  3. the reader always reports a usable resume offset — base + records
//     delivered — and recovery resumes appending at that same offset.
func FuzzSegmentReader(f *testing.F) {
	// Seed 1: a well-formed two-record segment.
	var seg bytes.Buffer
	var hdr [segmentHdrLen]byte
	putSegmentHeader(hdr[:], 0, 0)
	seg.Write(hdr[:])
	for _, p := range [][]byte{[]byte("hello world"), AppendTweet(nil, &twitterdata.Tweet{IDStr: "1", Text: "hi"})} {
		frame := make([]byte, frameSize(len(p)))
		putFrame(frame, p)
		seg.Write(frame)
	}
	f.Add(seg.Bytes())
	// Seed 2: torn tail (half a record).
	f.Add(seg.Bytes()[:seg.Len()-5])
	// Seed 3: torn header.
	f.Add([]byte(segmentMagic + "\x00\x01"))
	// Seed 4: empty file.
	f.Add([]byte{})
	// Seed 5: bit-flipped payload.
	flipped := append([]byte(nil), seg.Bytes()...)
	flipped[segmentHdrLen+6] ^= 0x40
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		pdir := filepath.Join(dir, "p000")
		if err := os.MkdirAll(pdir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(pdir, segmentName(0)), data, 0o644); err != nil {
			t.Fatal(err)
		}

		// Independent oracle: the longest valid frame prefix, scanned with
		// fresh logic so a reader bug cannot hide behind shared code paths.
		headerOK := len(data) >= segmentHdrLen &&
			string(data[:4]) == segmentMagic &&
			binary.BigEndian.Uint16(data[4:6]) == segmentVersion &&
			binary.BigEndian.Uint16(data[6:8]) == 0
		var base int64
		var want [][]byte
		if headerOK {
			base = int64(binary.BigEndian.Uint64(data[8:16]))
			pos := segmentHdrLen
			for {
				if pos+4 > len(data) {
					break
				}
				n := int(binary.BigEndian.Uint32(data[pos:]))
				if n > maxRecordLen || pos+4+n+8 > len(data) {
					break
				}
				payload := data[pos+4 : pos+4+n]
				if fnv64a(payload) != binary.BigEndian.Uint64(data[pos+4+n:]) {
					break
				}
				want = append(want, payload)
				pos += 4 + n + 8
			}
		}

		r, err := OpenPartitionReader(dir, 0)
		if err != nil {
			if headerOK {
				t.Fatalf("reader rejected a segment with a valid header: %v", err)
			}
			return
		}
		defer r.Close()
		var delivered int
		for {
			payload, off, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				// A single segment is always the tail: invalid frames are
				// torn-tail EOF, never CorruptError.
				t.Fatalf("unexpected reader error: %v", err)
			}
			if delivered >= len(want) {
				t.Fatalf("reader delivered %d records, oracle found %d", delivered+1, len(want))
			}
			if off != base+int64(delivered) {
				t.Fatalf("offset %d delivered at position %d (base %d)", off, delivered, base)
			}
			if !bytes.Equal(payload, want[delivered]) {
				t.Fatalf("record %d diverged from the oracle", delivered)
			}
			var tw twitterdata.Tweet
			_ = DecodeTweet(payload, &tw, false) // must not panic on garbage
			delivered++
		}
		if delivered != len(want) {
			t.Fatalf("reader delivered %d records, oracle found %d", delivered, len(want))
		}
		if got := r.NextOffset(); got != base+int64(delivered) {
			t.Fatalf("resume offset %d, want %d", got, base+int64(delivered))
		}

		// Recovery must land on the same resume offset and accept appends.
		l, err := Open(Options{Dir: dir, Partitions: 1, Fsync: FsyncOff})
		if err != nil {
			if headerOK {
				t.Fatalf("recovery rejected a segment with a valid header: %v", err)
			}
			return
		}
		defer l.Close()
		if !headerOK {
			return // the torn file was dropped; offsets restart at 0
		}
		if got := l.AppendedOffset(0); got != base+int64(delivered)-1 {
			t.Fatalf("recovery resumed at offset %d, reader resume offset %d", got+1, base+int64(delivered))
		}
		if _, err := l.Append(0, []byte("post-recovery")); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
	})
}
