package ingestlog

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Segment header layout (16 bytes):
//
//	magic   "RHIL" (4 bytes)
//	version uint16 (big-endian)
//	part    uint16 (partition the segment belongs to)
//	base    uint64 (offset of the segment's first record)

const (
	segmentMagic   = "RHIL"
	segmentVersion = 1
	segmentHdrLen  = 16
	segmentExt     = ".rhl"
	// maxRecordLen rejects absurd length prefixes before trusting them;
	// one tweet record is a few hundred bytes, so 16 MiB is generous and
	// still catches a corrupt prefix immediately.
	maxRecordLen = 16 << 20
)

func segmentName(base int64) string { return fmt.Sprintf("seg-%016x%s", base, segmentExt) }

func putSegmentHeader(dst []byte, part int, base int64) {
	copy(dst[:4], segmentMagic)
	binary.BigEndian.PutUint16(dst[4:6], segmentVersion)
	binary.BigEndian.PutUint16(dst[6:8], uint16(part))
	binary.BigEndian.PutUint64(dst[8:16], uint64(base))
}

// parseSegmentHeader validates the 16-byte header and returns the
// partition and base offset.
func parseSegmentHeader(b []byte) (part int, base int64, err error) {
	if len(b) < segmentHdrLen {
		return 0, 0, fmt.Errorf("ingestlog: segment header truncated (%d bytes)", len(b))
	}
	if string(b[:4]) != segmentMagic {
		return 0, 0, fmt.Errorf("ingestlog: bad segment magic %q", b[:4])
	}
	if v := binary.BigEndian.Uint16(b[4:6]); v != segmentVersion {
		return 0, 0, fmt.Errorf("ingestlog: unsupported segment version %d", v)
	}
	part = int(binary.BigEndian.Uint16(b[6:8]))
	base = int64(binary.BigEndian.Uint64(b[8:16]))
	return part, base, nil
}

// segmentWriter is the active tail segment of one partition.
type segmentWriter struct {
	f       *os.File
	path    string
	base    int64 // offset of the first record
	records int64 // records committed to this segment
	size    int64 // file size (header + committed frames)
	buf     []byte
}

// createSegment writes a fresh segment with its header. The header is
// flushed (and the directory entry synced) before any record lands, so a
// crash can tear at most the header of the newest, record-less segment.
func createSegment(dir string, part int, base int64) (*segmentWriter, error) {
	path := filepath.Join(dir, segmentName(base))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ingestlog: create segment: %w", err)
	}
	var hdr [segmentHdrLen]byte
	putSegmentHeader(hdr[:], part, base)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("ingestlog: write segment header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("ingestlog: sync segment header: %w", err)
	}
	return &segmentWriter{f: f, path: path, base: base, size: segmentHdrLen}, nil
}

// append frames one payload onto the segment, returning the bytes
// written. A short write leaves a torn frame that recovery truncates.
func (s *segmentWriter) append(payload []byte) (int, error) {
	n := int(frameSize(len(payload)))
	if cap(s.buf) < n {
		s.buf = make([]byte, n, n*2)
	}
	s.buf = s.buf[:n]
	putFrame(s.buf, payload)
	if _, err := s.f.Write(s.buf); err != nil {
		return 0, err
	}
	s.records++
	s.size += int64(n)
	return n, nil
}

func (s *segmentWriter) sync() error { return s.f.Sync() }

// seal fsyncs and closes the segment.
func (s *segmentWriter) seal() error {
	err := s.f.Sync()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// scanSegment walks the frames of a segment image, returning the number
// of committed records and the byte position just past the last valid
// frame. Frames after that position (a torn tail or corruption) are not
// counted; scanning stops at the first invalid frame.
//
//redvet:noalloc gate=SegmentRead
func scanSegment(data []byte) (records int64, end int64) {
	pos := int64(segmentHdrLen)
	for {
		rec, next, ok := frameAt(data, pos)
		if !ok {
			return records, pos
		}
		_ = rec
		records++
		pos = next
	}
}

// frameAt decodes the frame starting at pos, returning the payload and
// the next frame's position. ok is false when the bytes at pos do not
// form a complete, checksum-valid frame.
//
//redvet:noalloc gate=SegmentRead
func frameAt(data []byte, pos int64) (payload []byte, next int64, ok bool) {
	if pos < segmentHdrLen || pos+4 > int64(len(data)) {
		return nil, pos, false
	}
	n := int64(binary.BigEndian.Uint32(data[pos:]))
	if n > maxRecordLen {
		return nil, pos, false
	}
	body := pos + 4
	if body+n+8 > int64(len(data)) {
		return nil, pos, false
	}
	payload = data[body : body+n]
	if fnv64a(payload) != binary.BigEndian.Uint64(data[body+n:]) {
		return nil, pos, false
	}
	return payload, body + n + 8, true
}

// recoverSegment opens a tail segment for append, truncating any torn
// frame at its end. It returns nil (no error) when the header itself is
// torn — the segment never committed a record and the caller drops it.
func recoverSegment(path string, part int) (*segmentWriter, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("ingestlog: recover segment: %w", err)
	}
	hp, base, err := parseSegmentHeader(data)
	if err != nil {
		return nil, nil // torn header: drop the segment
	}
	if hp != part {
		return nil, fmt.Errorf("ingestlog: segment %s belongs to partition %d, found under %d", path, hp, part)
	}
	records, end := scanSegment(data)
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ingestlog: recover segment: %w", err)
	}
	if end < int64(len(data)) {
		// Torn or corrupt tail: truncate to the last committed frame so
		// the next append produces a clean log.
		if err := f.Truncate(end); err != nil {
			f.Close()
			return nil, fmt.Errorf("ingestlog: truncate torn tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("ingestlog: recover segment: %w", err)
		}
	}
	if _, err := f.Seek(end, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("ingestlog: recover segment: %w", err)
	}
	return &segmentWriter{f: f, path: path, base: base, records: records, size: end}, nil
}
