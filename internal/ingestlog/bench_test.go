package ingestlog

import (
	"io"
	"testing"

	"redhanded/internal/feature"
	"redhanded/internal/text"
	"redhanded/internal/twitterdata"
)

// buildTweetLog fills a single-partition log with n generator tweets and
// returns its directory.
func buildTweetLog(b *testing.B, n int) string {
	b.Helper()
	dir := b.TempDir()
	l, err := Open(Options{Dir: dir, Partitions: 1, SegmentBytes: 8 << 20, Fsync: FsyncOff})
	if err != nil {
		b.Fatal(err)
	}
	g := twitterdata.NewGenerator(1, 10)
	var buf []byte
	for i := 0; i < n; i++ {
		tw := g.Tweet(i%3, i%10)
		buf = AppendTweet(buf[:0], &tw)
		if _, err := l.Append(0, buf); err != nil {
			b.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		b.Fatal(err)
	}
	return dir
}

func BenchmarkIngestlogAppend(b *testing.B) {
	dir := b.TempDir()
	l, err := Open(Options{Dir: dir, Partitions: 1, SegmentBytes: 64 << 20, Fsync: FsyncOff})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	g := twitterdata.NewGenerator(1, 10)
	tweets := make([]twitterdata.Tweet, 1000)
	for i := range tweets {
		tweets[i] = g.Tweet(i%3, i%10)
	}
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendTweet(buf[:0], &tweets[i%len(tweets)])
		if _, err := l.Append(0, buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIngestlogSegmentRead is the segment-read hot path: frame
// parse + checksum over mmap'd bytes. It must not allocate.
func BenchmarkIngestlogSegmentRead(b *testing.B) {
	dir := buildTweetLog(b, 5000)
	r, err := OpenPartitionReader(dir, 0)
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, err := r.Next()
		if err == io.EOF {
			if err := r.SeekTo(0); err != nil {
				b.Fatal(err)
			}
			continue
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIngestlogReplayScan is the replay-into-scan-path headline:
// segment read + zero-copy decode + the single-pass text scanner, i.e.
// how fast disk replay can feed the zero-alloc scan path.
func BenchmarkIngestlogReplayScan(b *testing.B) {
	dir := buildTweetLog(b, 5000)
	r, err := OpenPartitionReader(dir, 0)
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	var sc text.Scratch
	var tw twitterdata.Tweet
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		payload, _, err := r.Next()
		if err == io.EOF {
			if err := r.SeekTo(0); err != nil {
				b.Fatal(err)
			}
			continue
		}
		if err != nil {
			b.Fatal(err)
		}
		if err := DecodeTweet(payload, &tw, false); err != nil {
			b.Fatal(err)
		}
		sc.Scan(tw.Text)
	}
}

// BenchmarkIngestlogReplayExtract is the full replay fast path: segment
// read, zero-copy decode, and feature extraction straight off the
// mapped bytes.
func BenchmarkIngestlogReplayExtract(b *testing.B) {
	dir := buildTweetLog(b, 5000)
	r, err := OpenPartitionReader(dir, 0)
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	ext := feature.NewExtractor(feature.DefaultConfig())
	dst := make([]float64, feature.NumFeatures)
	var tw twitterdata.Tweet
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		payload, _, err := r.Next()
		if err == io.EOF {
			if err := r.SeekTo(0); err != nil {
				b.Fatal(err)
			}
			continue
		}
		if err != nil {
			b.Fatal(err)
		}
		if err := DecodeTweet(payload, &tw, false); err != nil {
			b.Fatal(err)
		}
		ext.ExtractInto(dst, &tw)
	}
}
