package ingestlog

import (
	"encoding/binary"
	"fmt"
	"unsafe"

	"redhanded/internal/twitterdata"
)

// Record codec: tweets are stored in a compact binary encoding rather
// than their NDJSON wire form, so replay can decode straight out of the
// mmap'd segment — string fields become zero-copy views into the mapped
// bytes and flow through text.Scratch / feature.ExtractInto without a
// single per-tweet allocation.
//
// Layout (all varints are encoding/binary varints):
//
//	version   byte (1)
//	IDStr, Text, CreatedAt, Label       uvarint length + bytes
//	Day                                 varint
//	User.IDStr, ScreenName, CreatedAt   uvarint length + bytes
//	Followers, Friends, Statuses, Listed varints

const codecVersion = 1

// CodecVersion is the binary record codec's leading version byte. No JSON
// document can open with byte 0x01, so log consumers that mix raw-NDJSON
// payloads into a partition (internal/serve's zero-re-marshal ingress)
// discriminate the two record forms on it during replay.
const CodecVersion = codecVersion

// AppendTweet appends the encoded record to dst and returns the extended
// slice (append-style, so callers reuse one buffer across appends).
//
//redvet:wirepair decode=DecodeTweet
func AppendTweet(dst []byte, tw *twitterdata.Tweet) []byte {
	dst = append(dst, codecVersion)
	dst = appendLenBytes(dst, tw.IDStr)
	dst = appendLenBytes(dst, tw.Text)
	dst = appendLenBytes(dst, tw.CreatedAt)
	dst = appendLenBytes(dst, tw.Label)
	dst = binary.AppendVarint(dst, int64(tw.Day))
	dst = appendLenBytes(dst, tw.User.IDStr)
	dst = appendLenBytes(dst, tw.User.ScreenName)
	dst = appendLenBytes(dst, tw.User.CreatedAt)
	dst = binary.AppendVarint(dst, int64(tw.User.FollowersCount))
	dst = binary.AppendVarint(dst, int64(tw.User.FriendsCount))
	dst = binary.AppendVarint(dst, int64(tw.User.StatusesCount))
	dst = binary.AppendVarint(dst, int64(tw.User.ListedCount))
	return dst
}

func appendLenBytes(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// DecodeTweet decodes a record into tw, replacing every field. With
// copyStrings false the string fields are unsafe views into payload —
// zero-copy, zero-alloc — and stay valid only while the backing segment
// remains mapped; use it for read-path work that retains nothing
// (feature extraction, benchmarks). Any consumer that stores strings
// beyond the call (the pipeline: user state, alert text) must pass
// copyStrings true.
//
// The payload is fully bounds-checked: arbitrary bytes produce an error,
// never a panic, even though records normally arrive checksum-verified.
//
//redvet:noalloc gate=SegmentRead
func DecodeTweet(payload []byte, tw *twitterdata.Tweet, copyStrings bool) error {
	d := decoder{buf: payload, copy: copyStrings}
	if v, err := d.byte(); err != nil {
		return err
	} else if v != codecVersion {
		return fmt.Errorf("ingestlog: unsupported record version %d", v)
	}
	var err error
	if tw.IDStr, err = d.str(); err != nil {
		return err
	}
	if tw.Text, err = d.str(); err != nil {
		return err
	}
	if tw.CreatedAt, err = d.str(); err != nil {
		return err
	}
	if tw.Label, err = d.str(); err != nil {
		return err
	}
	if tw.Day, err = d.int(); err != nil {
		return err
	}
	if tw.User.IDStr, err = d.str(); err != nil {
		return err
	}
	if tw.User.ScreenName, err = d.str(); err != nil {
		return err
	}
	if tw.User.CreatedAt, err = d.str(); err != nil {
		return err
	}
	if tw.User.FollowersCount, err = d.int(); err != nil {
		return err
	}
	if tw.User.FriendsCount, err = d.int(); err != nil {
		return err
	}
	if tw.User.StatusesCount, err = d.int(); err != nil {
		return err
	}
	if tw.User.ListedCount, err = d.int(); err != nil {
		return err
	}
	if len(d.buf) != 0 {
		return fmt.Errorf("ingestlog: %d trailing bytes after record", len(d.buf))
	}
	return nil
}

type decoder struct {
	buf  []byte
	copy bool
}

//redvet:noalloc gate=SegmentRead
func (d *decoder) byte() (byte, error) {
	if len(d.buf) < 1 {
		return 0, fmt.Errorf("ingestlog: truncated record")
	}
	b := d.buf[0]
	d.buf = d.buf[1:]
	return b, nil
}

//redvet:noalloc gate=SegmentRead
func (d *decoder) str() (string, error) {
	n, w := binary.Uvarint(d.buf)
	if w <= 0 || n > uint64(len(d.buf)-w) {
		return "", fmt.Errorf("ingestlog: truncated record string")
	}
	b := d.buf[w : w+int(n)]
	d.buf = d.buf[w+int(n):]
	if len(b) == 0 {
		return "", nil
	}
	if d.copy {
		//redvet:ignore noalloc the copyStrings=true variant exists for consumers that retain strings past the mmap lifetime; the replay/bench path passes false and takes the unsafe view below
		return string(b), nil
	}
	return unsafe.String(&b[0], len(b)), nil
}

//redvet:noalloc gate=SegmentRead
func (d *decoder) int() (int, error) {
	v, w := binary.Varint(d.buf)
	if w <= 0 {
		return 0, fmt.Errorf("ingestlog: truncated record varint")
	}
	d.buf = d.buf[w:]
	return int(v), nil
}
