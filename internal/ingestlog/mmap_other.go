//go:build !linux

package ingestlog

import (
	"io"
	"os"
)

// mmapFile on non-Linux platforms reads the file into memory: same
// interface, no zero-copy. The Linux build is the production path.
func mmapFile(f *os.File, size int64) ([]byte, func() error, error) {
	data, err := io.ReadAll(io.LimitReader(f, size))
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return nil }, nil
}
