package ingestlog

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// CorruptError reports a record whose frame failed validation somewhere
// other than the log's tail — a committed record that rotted on disk.
// Offset is the first offset the reader could not deliver; a caller that
// chooses to continue can Seek past it (or to the next segment base) and
// resume, having accounted for the loss.
type CorruptError struct {
	Path   string // segment file
	Pos    int64  // byte position of the invalid frame
	Offset int64  // offset of the first undelivered record
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("ingestlog: corrupt record at %s+%d (resume offset %d)", e.Path, e.Pos, e.Offset)
}

// readerSegment is one mapped segment image.
type readerSegment struct {
	data  []byte
	base  int64
	path  string
	unmap func() error
}

// Reader iterates one partition's records in offset order. Segments are
// memory-mapped at open, so Next returns zero-copy sub-slices of the
// mapped region — valid until Close — and performs no allocation: the
// hot path is a bounds check, a length read, and an inline FNV-1a over
// the payload.
//
// A torn frame at the very end of the last segment is the uncommitted
// tail a crash leaves behind: the reader treats it as end-of-log. An
// invalid frame anywhere else is corruption and surfaces as
// *CorruptError with the resume offset.
//
// The reader snapshots segment sizes at open; records appended
// afterwards are not visible. It must not be used concurrently.
type Reader struct {
	segs []readerSegment
	idx  int   // current segment
	pos  int64 // byte position within segs[idx].data
	off  int64 // offset of the next record Next will return
}

// OpenReader opens a reader over one partition of the log, positioned at
// offset 0.
func (l *Log) OpenReader(partition int) (*Reader, error) {
	return OpenPartitionReader(l.opts.Dir, partition)
}

// OpenPartitionReader opens a reader over partition `partition` of the
// log rooted at dir. It validates every segment header up front; a tail
// segment whose header is torn (crash during creation, before any
// record) is skipped.
func OpenPartitionReader(dir string, partition int) (*Reader, error) {
	pdir := partDir(dir, partition)
	names, err := segmentFiles(pdir)
	if err != nil {
		return nil, err
	}
	r := &Reader{}
	for i, name := range names {
		path := filepath.Join(pdir, name)
		f, err := os.Open(path)
		if err != nil {
			r.Close()
			return nil, fmt.Errorf("ingestlog: %w", err)
		}
		fi, err := f.Stat()
		if err != nil {
			f.Close()
			r.Close()
			return nil, fmt.Errorf("ingestlog: %w", err)
		}
		data, unmap, err := mmapFile(f, fi.Size())
		f.Close() // the mapping outlives the descriptor
		if err != nil {
			r.Close()
			return nil, fmt.Errorf("ingestlog: map %s: %w", path, err)
		}
		part, base, herr := parseSegmentHeader(data)
		if herr != nil {
			unmap()
			if i == len(names)-1 {
				continue // torn tail header: no committed records in it
			}
			r.Close()
			return nil, fmt.Errorf("ingestlog: segment %s: %w", path, herr)
		}
		if part != partition {
			unmap()
			r.Close()
			return nil, fmt.Errorf("ingestlog: segment %s belongs to partition %d, found under %d", path, part, partition)
		}
		r.segs = append(r.segs, readerSegment{data: data, base: base, path: path, unmap: unmap})
	}
	if len(r.segs) > 0 {
		r.off = r.segs[0].base
	}
	r.pos = segmentHdrLen
	return r, nil
}

// Next returns the next record's payload and offset. The payload aliases
// the mapped segment and is valid until Close; callers that retain it
// must copy. io.EOF signals a clean end of log (the torn tail a crash
// leaves on the last segment included).
//
//redvet:noalloc gate=SegmentRead
func (r *Reader) Next() (payload []byte, offset int64, err error) {
	for {
		if r.idx >= len(r.segs) {
			return nil, 0, io.EOF
		}
		seg := &r.segs[r.idx]
		payload, next, ok := frameAt(seg.data, r.pos)
		if ok {
			offset = r.off
			r.pos = next
			r.off++
			return payload, offset, nil
		}
		if r.pos >= int64(len(seg.data)) || r.idx == len(r.segs)-1 {
			// Clean end of segment, or the torn tail of the last one.
			if r.idx == len(r.segs)-1 {
				// Park at the end so repeated Next calls stay EOF.
				r.pos = int64(len(seg.data))
				return nil, 0, io.EOF
			}
			if err := r.advanceSegment(seg); err != nil {
				return nil, 0, err
			}
			continue
		}
		// Invalid frame mid-log: a committed record rotted.
		return nil, 0, &CorruptError{Path: seg.path, Pos: r.pos, Offset: r.off}
	}
}

// advanceSegment moves to the next segment, checking offset continuity:
// the next base must equal the offset the previous segment ended at, or
// records are missing between files.
func (r *Reader) advanceSegment(seg *readerSegment) error {
	next := &r.segs[r.idx+1]
	if next.base != r.off {
		return &CorruptError{Path: next.path, Pos: segmentHdrLen, Offset: r.off}
	}
	r.idx++
	r.pos = segmentHdrLen
	return nil
}

// NextOffset returns the offset of the record the next Next call would
// deliver — after io.EOF, the offset a recovered log resumes appending
// at, which makes it the resume point for a consumer that drained the
// reader.
func (r *Reader) NextOffset() int64 { return r.off }

// SeekTo positions the reader so the next record returned has the given
// offset. Seeking past the end is allowed (Next then returns io.EOF);
// seeking below the first segment's base is an error. Seek walks frames
// from the containing segment's base, so it validates the prefix it
// skips.
func (r *Reader) SeekTo(offset int64) error {
	if len(r.segs) == 0 {
		if offset == 0 {
			return nil
		}
		return fmt.Errorf("ingestlog: seek %d in empty partition", offset)
	}
	if offset < r.segs[0].base {
		return fmt.Errorf("ingestlog: offset %d below first segment base %d", offset, r.segs[0].base)
	}
	idx := 0
	for idx+1 < len(r.segs) && r.segs[idx+1].base <= offset {
		idx++
	}
	r.idx = idx
	r.pos = segmentHdrLen
	r.off = r.segs[idx].base
	for r.off < offset {
		if _, _, err := r.Next(); err != nil {
			if err == io.EOF {
				return nil // seek past end: subsequent Next returns EOF
			}
			return err
		}
	}
	return nil
}

// Close unmaps every segment. Payloads returned by Next become invalid.
func (r *Reader) Close() error {
	var first error
	for _, s := range r.segs {
		if s.unmap != nil {
			if err := s.unmap(); err != nil && first == nil {
				first = err
			}
		}
	}
	r.segs = nil
	return first
}
