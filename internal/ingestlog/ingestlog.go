// Package ingestlog is the durable ingestion substrate of the serving
// layer: an append-only, segment-per-partition on-disk log with
// write-ahead semantics. Every tweet the server accepts is appended to
// the partition owned by hash(userID) — the same pure function the serve
// shards route with (PartitionFor) — before it is enqueued for
// processing, so a crash loses at most the records the filesystem had
// not yet committed, never a record the pipeline already applied.
//
// On-disk layout:
//
//	dir/
//	  log.json              manifest pinning {version, partitions}
//	  p000/seg-0000000000000000.rhl
//	  p000/seg-00000000000051c4.rhl   (base offset in hex)
//	  p001/...
//
// Each segment starts with a 16-byte header (magic "RHIL", version,
// partition, base offset) followed by length-prefixed records framed
// exactly like the userstate/checkpoint encoding:
//
//	uint32 length | payload | uint64 FNV-1a checksum of the payload
//
// Offsets are dense per-partition record indexes (the first record ever
// appended to a partition is offset 0). Segments roll at a size
// threshold; the fsync policy is configurable (per-record, interval with
// an unsynced-bytes backpressure bound, or off). Opening an existing
// directory recovers each partition by scanning its tail segment and
// truncating the first torn frame — committed records are never dropped,
// a torn final record always is.
package ingestlog

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"redhanded/internal/metrics"
)

// FsyncPolicy selects when appended records are forced to stable storage.
type FsyncPolicy int

const (
	// FsyncOff never fsyncs; durability is whatever the page cache gives
	// (a clean process exit loses nothing, a machine crash may).
	FsyncOff FsyncPolicy = iota
	// FsyncInterval fsyncs dirty partitions on a timer. Appends between
	// ticks are bounded by MaxUnsynced; past it Append returns
	// ErrBackpressure so the server sheds load instead of buying unbounded
	// loss windows.
	FsyncInterval
	// FsyncAlways fsyncs after every record (WAL-strict, slowest).
	FsyncAlways
)

// String implements flag-friendly naming.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncOff:
		return "off"
	case FsyncInterval:
		return "interval"
	case FsyncAlways:
		return "always"
	}
	return fmt.Sprintf("FsyncPolicy(%d)", int(p))
}

// ParseFsyncPolicy parses the -fsync flag values.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "off":
		return FsyncOff, nil
	case "interval":
		return FsyncInterval, nil
	case "always":
		return FsyncAlways, nil
	}
	return 0, fmt.Errorf("ingestlog: unknown fsync policy %q (want off, interval, always)", s)
}

// ErrBackpressure is returned by Append when the log has stalled: the
// unsynced byte budget is exhausted (FsyncInterval) and accepting the
// record would widen the loss window past what the operator configured.
// The serving layer maps it to HTTP 429.
var ErrBackpressure = errors.New("ingestlog: append backpressure (unsynced bytes over budget)")

// Options configures a Log.
type Options struct {
	// Dir is the log root (created if needed).
	Dir string
	// Partitions is the partition count; it must equal the serve shard
	// count so hash(userID) affinity lines up (default 4). Opening an
	// existing directory with a different count is rejected.
	Partitions int
	// SegmentBytes rolls a segment once its size crosses the threshold
	// (default 64 MiB).
	SegmentBytes int64
	// Fsync is the durability policy (default FsyncInterval).
	Fsync FsyncPolicy
	// FsyncEvery is the FsyncInterval tick (default 100ms).
	FsyncEvery time.Duration
	// MaxUnsynced bounds the bytes a partition may hold ahead of its last
	// fsync under FsyncInterval before Append sheds load with
	// ErrBackpressure (default 32 MiB; <0 disables the bound).
	MaxUnsynced int64
	// Registry receives the log's metrics (nil skips registration).
	Registry *metrics.Registry
}

func (o Options) withDefaults() Options {
	if o.Partitions <= 0 {
		o.Partitions = 4
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	if o.FsyncEvery <= 0 {
		o.FsyncEvery = 100 * time.Millisecond
	}
	if o.MaxUnsynced == 0 {
		o.MaxUnsynced = 32 << 20
	}
	return o
}

// manifest is the log.json payload pinning the directory's shape.
type manifest struct {
	Version    int `json:"version"`
	Partitions int `json:"partitions"`
}

const (
	manifestName    = "log.json"
	manifestVersion = 1
)

// PartitionFor returns the partition a user's records are appended to:
// FNV-1a over the user ID, modulo the partition count. It is the same
// pure function the serving layer routes shards with, so partition i
// holds exactly the tweets shard i processes.
func PartitionFor(userID string, partitions int) int {
	h := fnv.New32a()
	h.Write([]byte(userID))
	return int(h.Sum32() % uint32(partitions))
}

// partition is one append stream: a directory of segments with an active
// tail segment. All fields are guarded by mu.
type partition struct {
	mu       sync.Mutex
	id       int
	dir      string
	seg      *segmentWriter // active tail segment
	next     int64          // next offset to assign
	segments int            // segment file count, tail included
	bytes    int64          // total bytes across sealed segments + tail
	unsynced int64          // bytes appended since the last fsync
	dirty    atomic.Bool    // needs an interval fsync
}

// Log is the partitioned append log. Append is safe for concurrent use;
// each partition serializes its own writers.
type Log struct {
	opts  Options
	parts []*partition

	closeOnce sync.Once
	closed    chan struct{}
	syncWG    sync.WaitGroup

	appends *metrics.Counter
	bytes   *metrics.Counter
	fsyncs  *metrics.Counter
	stalls  *metrics.Counter
}

// Open creates or recovers a log directory. Recovery scans each
// partition's tail segment, truncates the first torn frame, and resumes
// offsets from the last committed record.
func Open(opts Options) (*Log, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("ingestlog: %w", err)
	}
	mpath := filepath.Join(opts.Dir, manifestName)
	if blob, err := os.ReadFile(mpath); err == nil {
		var m manifest
		if err := json.Unmarshal(blob, &m); err != nil {
			return nil, fmt.Errorf("ingestlog: corrupt manifest %s: %w", mpath, err)
		}
		if m.Version != manifestVersion {
			return nil, fmt.Errorf("ingestlog: unsupported log version %d", m.Version)
		}
		if m.Partitions != opts.Partitions {
			return nil, fmt.Errorf("ingestlog: log has %d partitions, opened with %d (user affinity would break)",
				m.Partitions, opts.Partitions)
		}
	} else if os.IsNotExist(err) {
		blob, _ := json.Marshal(manifest{Version: manifestVersion, Partitions: opts.Partitions})
		if err := os.WriteFile(mpath, append(blob, '\n'), 0o644); err != nil {
			return nil, fmt.Errorf("ingestlog: write manifest: %w", err)
		}
	} else {
		return nil, fmt.Errorf("ingestlog: %w", err)
	}

	l := &Log{opts: opts, closed: make(chan struct{})}
	if reg := opts.Registry; reg != nil {
		l.appends = reg.Counter("redhanded_ingestlog_appends_total",
			"Records appended to the ingest log.", nil)
		l.bytes = reg.Counter("redhanded_ingestlog_bytes_total",
			"Bytes appended to the ingest log (framing included).", nil)
		l.fsyncs = reg.Counter("redhanded_ingestlog_fsyncs_total",
			"fsync calls issued by the ingest log.", nil)
		l.stalls = reg.Counter("redhanded_ingestlog_append_stalls_total",
			"Appends shed with backpressure because the unsynced budget was exhausted.", nil)
	}
	for i := 0; i < opts.Partitions; i++ {
		p, err := openPartition(opts, i)
		if err != nil {
			l.Close()
			return nil, err
		}
		l.parts = append(l.parts, p)
		if reg := opts.Registry; reg != nil {
			labels := metrics.Labels{"partition": fmt.Sprint(i)}
			pp := p
			reg.GaugeFunc("redhanded_ingestlog_segments", "Segment files per partition.",
				labels, func() float64 { pp.mu.Lock(); defer pp.mu.Unlock(); return float64(pp.segments) })
			reg.GaugeFunc("redhanded_ingestlog_partition_bytes", "Bytes on disk per partition.",
				labels, func() float64 { pp.mu.Lock(); defer pp.mu.Unlock(); return float64(pp.bytes) })
		}
	}
	if opts.Fsync == FsyncInterval {
		l.syncWG.Add(1)
		go l.syncLoop()
	}
	return l, nil
}

func partDir(root string, id int) string { return filepath.Join(root, fmt.Sprintf("p%03d", id)) }

// openPartition lists the partition's segments, recovers the tail, and
// positions the writer after the last committed record.
func openPartition(opts Options, id int) (*partition, error) {
	dir := partDir(opts.Dir, id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ingestlog: %w", err)
	}
	names, err := segmentFiles(dir)
	if err != nil {
		return nil, err
	}
	p := &partition{id: id, dir: dir}
	if len(names) == 0 {
		seg, err := createSegment(dir, id, 0)
		if err != nil {
			return nil, err
		}
		p.seg, p.segments, p.bytes = seg, 1, seg.size
		return p, nil
	}
	// Sealed segments contribute size only; the tail is scanned for torn
	// frames and reopened for append.
	for _, name := range names[:len(names)-1] {
		fi, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("ingestlog: %w", err)
		}
		p.bytes += fi.Size()
	}
	tail := filepath.Join(dir, names[len(names)-1])
	seg, err := recoverSegment(tail, id)
	if err != nil {
		return nil, err
	}
	if seg == nil {
		// The tail's header itself was torn: the file never held a
		// committed record, so dropping it loses nothing. The previous
		// segment (if any) is complete — recover it as the new tail.
		if err := os.Remove(tail); err != nil {
			return nil, fmt.Errorf("ingestlog: drop torn segment: %w", err)
		}
		names = names[:len(names)-1]
		if len(names) == 0 {
			seg, err = createSegment(dir, id, 0)
			if err != nil {
				return nil, err
			}
			p.seg, p.segments, p.bytes = seg, 1, seg.size
			return p, nil
		}
		prev := filepath.Join(dir, names[len(names)-1])
		fi, err := os.Stat(prev)
		if err != nil {
			return nil, fmt.Errorf("ingestlog: %w", err)
		}
		p.bytes -= fi.Size()
		if seg, err = recoverSegment(prev, id); err != nil {
			return nil, err
		}
		if seg == nil {
			return nil, fmt.Errorf("ingestlog: partition %d: segment %s has a torn header below the tail", id, prev)
		}
	}
	p.seg = seg
	p.segments = len(names)
	p.bytes += seg.size
	p.next = seg.base + seg.records
	return p, nil
}

// Partitions returns the partition count.
func (l *Log) Partitions() int { return len(l.parts) }

// Dir returns the log root directory.
func (l *Log) Dir() string { return l.opts.Dir }

// Fsync returns the configured durability policy.
func (l *Log) Fsync() FsyncPolicy { return l.opts.Fsync }

// Append writes one record to the partition and returns its offset.
// The record is on disk (page cache, or stable storage under
// FsyncAlways) before Append returns; the caller enqueues for
// processing only after that, which is what makes the log a WAL.
func (l *Log) Append(partition int, payload []byte) (int64, error) {
	p := l.parts[partition]
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.seg == nil {
		return 0, fmt.Errorf("ingestlog: partition %d is closed", partition)
	}
	if l.opts.Fsync == FsyncInterval && l.opts.MaxUnsynced > 0 && p.unsynced >= l.opts.MaxUnsynced {
		if l.stalls != nil {
			l.stalls.Inc()
		}
		return 0, ErrBackpressure
	}
	if p.seg.size >= l.opts.SegmentBytes {
		if err := l.rollLocked(p); err != nil {
			return 0, err
		}
	}
	n, err := p.seg.append(payload)
	if err != nil {
		return 0, fmt.Errorf("ingestlog: partition %d: %w", partition, err)
	}
	off := p.next
	p.next++
	p.bytes += int64(n)
	switch l.opts.Fsync {
	case FsyncAlways:
		//redvet:ignore lockorder FsyncAlways is the WAL-strict contract: the record is not durable until synced, so the partition stripe stays pinned across the fsync by design
		if err := p.seg.sync(); err != nil {
			return 0, fmt.Errorf("ingestlog: partition %d: %w", partition, err)
		}
		if l.fsyncs != nil {
			l.fsyncs.Inc()
		}
	case FsyncInterval:
		p.unsynced += int64(n)
		p.dirty.Store(true)
	}
	if l.appends != nil {
		l.appends.Inc()
		l.bytes.Add(int64(n))
	}
	return off, nil
}

// rollLocked seals the active segment and opens the next one. Called
// with p.mu held.
func (l *Log) rollLocked(p *partition) error {
	if err := p.seg.seal(); err != nil {
		return fmt.Errorf("ingestlog: partition %d: seal: %w", p.id, err)
	}
	seg, err := createSegment(p.dir, p.id, p.next)
	if err != nil {
		return err
	}
	p.seg = seg
	p.segments++
	p.bytes += seg.size
	p.unsynced = 0
	return nil
}

// syncLoop services FsyncInterval: every tick, dirty partitions are
// fsynced and their unsynced budget reset.
func (l *Log) syncLoop() {
	defer l.syncWG.Done()
	t := time.NewTicker(l.opts.FsyncEvery)
	defer t.Stop()
	for {
		select {
		case <-l.closed:
			return
		case <-t.C:
			l.SyncAll()
		}
	}
}

// SyncAll fsyncs every dirty partition immediately and resets the
// backpressure budgets. Safe to call concurrently with Append.
func (l *Log) SyncAll() {
	for _, p := range l.parts {
		if !p.dirty.Swap(false) {
			continue
		}
		p.mu.Lock()
		if p.seg != nil {
			//redvet:ignore lockorder interval flush must exclude Append while the dirty pages sync or the unsynced budget double-counts; one partition at a time keeps the stall bounded
			if err := p.seg.sync(); err == nil && l.fsyncs != nil {
				l.fsyncs.Inc()
			}
			p.unsynced = 0
		}
		p.mu.Unlock()
	}
}

// AppendedOffset returns the offset of the last record committed to the
// partition, or -1 when it is empty.
func (l *Log) AppendedOffset(partition int) int64 {
	p := l.parts[partition]
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.next - 1
}

// PartitionStats is one partition's entry in Stats.
type PartitionStats struct {
	Partition int   `json:"partition"`
	Segments  int   `json:"segments"`
	Bytes     int64 `json:"bytes"`
	// Appended is the last committed offset (-1 when empty).
	Appended int64 `json:"appended"`
	// Unsynced is the byte count ahead of the last fsync (FsyncInterval).
	Unsynced int64 `json:"unsynced"`
}

// Stats reports per-partition segment counts, sizes, and offsets.
func (l *Log) Stats() []PartitionStats {
	out := make([]PartitionStats, len(l.parts))
	for i, p := range l.parts {
		p.mu.Lock()
		out[i] = PartitionStats{
			Partition: i,
			Segments:  p.segments,
			Bytes:     p.bytes,
			Appended:  p.next - 1,
			Unsynced:  p.unsynced,
		}
		p.mu.Unlock()
	}
	return out
}

// Close seals the active segments, fsyncing them regardless of policy,
// and stops the interval syncer. Appends after Close fail.
func (l *Log) Close() error {
	var first error
	l.closeOnce.Do(func() {
		close(l.closed)
		l.syncWG.Wait()
		for _, p := range l.parts {
			p.mu.Lock()
			if p.seg != nil {
				if err := p.seg.seal(); err != nil && first == nil {
					first = err
				}
				p.seg = nil
			}
			p.mu.Unlock()
		}
	})
	return first
}

// segmentFiles lists segment file names in base-offset order.
func segmentFiles(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("ingestlog: %w", err)
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && filepath.Ext(e.Name()) == segmentExt {
			names = append(names, e.Name())
		}
	}
	// Names embed the base offset as fixed-width hex, so lexical order is
	// offset order.
	sort.Strings(names)
	return names, nil
}

// fnv64a is the record checksum: an inline FNV-1a so the read hot path
// never allocates a hash.Hash.
func fnv64a(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}

// frameSize is the on-disk size of a record with the given payload.
func frameSize(payloadLen int) int64 { return int64(4 + payloadLen + 8) }

// putFrame encodes one record frame into dst (which must have
// frameSize(len(payload)) capacity after position 0).
func putFrame(dst []byte, payload []byte) {
	binary.BigEndian.PutUint32(dst[:4], uint32(len(payload)))
	copy(dst[4:], payload)
	binary.BigEndian.PutUint64(dst[4+len(payload):], fnv64a(payload))
}
