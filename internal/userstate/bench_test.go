package userstate

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// benchIDs pre-renders distinct user IDs so the hot loop measures
// Observe, not fmt.
func benchIDs(n int) []string {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("u%07d", i)
	}
	return ids
}

// BenchmarkUserstateObserve measures Observe over one million distinct
// users with a 100k cap — the store's steady state is constant eviction
// pressure. Run with -cpu 16 (the bench smoke pins GOMAXPROCS) for the
// contended figure; b.RunParallel spreads the users across goroutines so
// every shard stripe stays busy.
func BenchmarkUserstateObserve(b *testing.B) {
	s := New(Config{Shards: 64, MaxUsers: 100_000})
	ids := benchIDs(1_000_000)
	start := time.Date(2020, 6, 1, 0, 0, 0, 0, time.UTC).UnixNano()
	var next atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := next.Add(1)
			s.Observe(Observation{
				UserID:     ids[int(i)%len(ids)],
				At:         time.Unix(0, start+i*int64(50*time.Millisecond)),
				Aggressive: i%3 == 0,
				Confidence: 0.8,
			})
		}
	})
}

// BenchmarkUserstateObserveHot measures the repeat-offender path: a
// small working set of users that always hit existing records (session
// window + EWMA updates, no inserts or evictions).
func BenchmarkUserstateObserveHot(b *testing.B) {
	s := New(Config{Shards: 64, MaxUsers: 100_000})
	ids := benchIDs(4096)
	start := time.Date(2020, 6, 1, 0, 0, 0, 0, time.UTC).UnixNano()
	var next atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := next.Add(1)
			s.Observe(Observation{
				UserID:     ids[int(i)%len(ids)],
				At:         time.Unix(0, start+i*int64(time.Millisecond)),
				Aggressive: i%3 == 0,
				Confidence: 0.8,
			})
		}
	})
}

// BenchmarkUserstateLookup measures read-side snapshots against a
// populated store.
func BenchmarkUserstateLookup(b *testing.B) {
	s := New(Config{Shards: 64})
	ids := benchIDs(100_000)
	at := time.Date(2020, 6, 1, 0, 0, 0, 0, time.UTC)
	for i, id := range ids {
		s.Observe(Observation{UserID: id, At: at.Add(time.Duration(i) * time.Millisecond), Aggressive: i%2 == 0, Confidence: 0.8})
	}
	var next atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := next.Add(1)
			s.Lookup(ids[int(i)%len(ids)])
		}
	})
}
