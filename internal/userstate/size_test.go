package userstate

import (
	"testing"
	"unsafe"
)

// The store holds up to Config.MaxUsers of these (100k by default), so
// every byte of padding multiplies by the population: 200 vs the prior
// 208-byte layout is 0.8 MB at the default cap. The field order is
// checked by redvet's fieldalign analyzer; this pin makes a regression
// a visible diff. On a field change: re-pack (largest alignment first),
// re-run `go run ./cmd/redvet ./...`, and update the pin together.
func TestRecordSizePinned(t *testing.T) {
	const want = 200 // bytes on 64-bit, padding-optimal under the gc sizing model
	if got := unsafe.Sizeof(record{}); got != want {
		t.Fatalf("unsafe.Sizeof(record{}) = %d, pinned at %d: re-pack the fields and update the pin", got, want)
	}
}
