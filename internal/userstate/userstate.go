// Package userstate is the per-user behavioral state layer: a
// lock-striped, power-of-two-sharded store of user records that unifies
// the sliding session window, the offense/suspension history, and the
// longer-horizon behavioral aggregates (EWMA aggression score, tweet
// cadence, last-N verdict ring) the escalation detector reads.
//
// The paper's headline claim is catching *users* red-handed — repetitive
// hostile behavior across a user's recent tweets, not one post — and the
// related work shows the per-user trajectory is the signal that matters
// (aggression recurs per-user over time and escalates across windows).
// This package makes that state production-scale:
//
//   - Sharded: records live in 2^k lock-striped shards keyed by
//     FNV-1a(userID), so concurrent Observe/Lookup traffic from many
//     goroutines does not serialize on one mutex.
//   - Bounded: a configurable MaxUsers cap is enforced per shard with
//     CLOCK (second-chance) eviction, and idle records are retired by a
//     TTL sweep amortized into Observe — a few ring slots per call, never
//     a stop-the-world prune.
//   - Checkpointable: the full store state (CLOCK order and hand included)
//     round-trips through a versioned, length-prefixed, checksummed
//     encoding (checkpoint.go), so a restored store replays the remaining
//     stream to the exact same verdicts as an uninterrupted run.
//
// Observation processing is deterministic given the per-user observation
// order, which shard affinity upstream (hash(userID) routing in
// internal/serve, user-keyed shares in internal/engine) preserves.
package userstate

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"redhanded/internal/metrics"
)

// Package-level instrumentation on the default registry, following the
// alerting-counter pattern: every store in the process shares the series,
// so serving deployments see user-state activity on /metrics without
// per-store wiring.
var (
	sessionVerdictsTotal = metrics.Default().Counter(
		"redhanded_userstate_session_verdicts_total",
		"Session verdicts emitted by the user-state layer.", nil)
	escalationsTotal = metrics.Default().Counter(
		"redhanded_userstate_escalations_total",
		"Escalation verdicts emitted by the user-state layer.", nil)
	suspensionsTotal = metrics.Default().Counter(
		"redhanded_userstate_suspensions_total",
		"Users newly recommended for suspension.", nil)
	evictionsCapTotal = metrics.Default().Counter(
		"redhanded_userstate_evictions_total",
		"User records evicted from the store by reason.",
		metrics.Labels{"reason": "cap"})
	evictionsTTLTotal = metrics.Default().Counter(
		"redhanded_userstate_evictions_total",
		"User records evicted from the store by reason.",
		metrics.Labels{"reason": "ttl"})
	// lockWait is the shard-lock contention histogram: time Observe spent
	// waiting to acquire its shard stripe. Sub-microsecond buckets — on an
	// uncontended store every observation lands in the first one or two.
	lockWait = metrics.Default().Histogram(
		"redhanded_userstate_lock_wait_seconds",
		"Time Observe waited on its shard lock (contention histogram).",
		[]float64{1e-7, 5e-7, 1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 1e-3, 1e-2}, nil)
)

// SessionConfig tunes the per-user sliding session window (the paper's
// §VI future-work extension: repetitive hostility judged over a group of
// tweets from the same user).
type SessionConfig struct {
	// Window is the sliding session length (default 1 hour).
	Window time.Duration
	// MinTweets is the minimum number of tweets in the window before a
	// session can be judged (default 3).
	MinTweets int
	// AggressiveShare is the fraction of window tweets predicted
	// aggressive that flags the session (default 0.6).
	AggressiveShare float64
	// Cooldown suppresses repeated verdicts for the same user within this
	// duration (default = Window).
	Cooldown time.Duration
}

// DefaultSessionConfig returns 1-hour windows flagging >= 60% aggressive.
func DefaultSessionConfig() SessionConfig {
	return SessionConfig{Window: time.Hour, MinTweets: 3, AggressiveShare: 0.6}
}

func (c SessionConfig) withDefaults() SessionConfig {
	d := DefaultSessionConfig()
	if c.Window <= 0 {
		c.Window = d.Window
	}
	if c.MinTweets <= 0 {
		c.MinTweets = d.MinTweets
	}
	if c.AggressiveShare <= 0 {
		c.AggressiveShare = d.AggressiveShare
	}
	if c.Cooldown <= 0 {
		c.Cooldown = c.Window
	}
	return c
}

// EscalationConfig tunes the cross-session escalation detector: a user
// whose exponentially-weighted aggression score stays high across a span
// longer than one session window — and whose recent verdicts are not
// decaying — is flagged as trending toward aggression.
type EscalationConfig struct {
	// Alpha is the EWMA smoothing factor for the aggression score
	// (default 0.15). Each observation folds in confidence (aggressive)
	// or 0 (normal): score += Alpha * (x - score).
	Alpha float64
	// Threshold is the score at which escalation fires (default 0.6).
	// Negative disables escalation verdicts entirely.
	Threshold float64
	// MinTweets is the minimum total observations before a user can
	// escalate (default 8).
	MinTweets int
	// MinSpan is the minimum first-seen..now span (default = the session
	// window): the signal must persist across windows, not within one.
	MinSpan time.Duration
	// Cooldown suppresses repeated escalations for the same user
	// (default = the session window).
	Cooldown time.Duration
}

func (c EscalationConfig) withDefaults(session SessionConfig) EscalationConfig {
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.15
	}
	if c.Threshold == 0 {
		c.Threshold = 0.6
	}
	if c.MinTweets <= 0 {
		c.MinTweets = 8
	}
	if c.MinSpan <= 0 {
		c.MinSpan = session.Window
	}
	if c.Cooldown <= 0 {
		c.Cooldown = session.Window
	}
	return c
}

// Config tunes a Store. The zero value resolves to 16 shards, an
// unbounded user count, a 24-hour idle TTL, and the default session and
// escalation parameters.
type Config struct {
	// Shards is the lock-stripe count, rounded up to a power of two
	// (default 16).
	Shards int
	// MaxUsers caps the number of tracked records across all shards
	// (0 = unbounded). The cap is enforced per shard (MaxUsers/Shards)
	// with CLOCK eviction on insert; a cap below Shards shrinks the
	// stripe count so the budget is never exceeded.
	MaxUsers int
	// TTL retires records idle longer than this, measured in event time
	// against the newest observation the record's shard has seen
	// (default 24h; negative disables the sweep).
	TTL time.Duration
	// SweepPerObserve is how many CLOCK-ring slots each Observe examines
	// for expired records (default 2) — the amortized alternative to a
	// stop-the-world prune.
	SweepPerObserve int
	// RingSize is the per-user last-N verdict ring length feeding the
	// escalation trend check (default 16).
	RingSize int
	// Session tunes the sliding session window.
	Session SessionConfig
	// Escalation tunes the cross-session escalation detector.
	Escalation EscalationConfig
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 16
	}
	// Round up to a power of two so shard selection is a mask.
	n := 1
	for n < c.Shards {
		n <<= 1
	}
	c.Shards = n
	// A cap below the stripe count cannot be enforced per shard without
	// overshooting; shrink the stripe count (largest power of two <= cap)
	// so the sum of per-shard caps never exceeds MaxUsers.
	if c.MaxUsers > 0 {
		for c.Shards > 1 && c.MaxUsers < c.Shards {
			c.Shards >>= 1
		}
	}
	if c.TTL == 0 {
		c.TTL = 24 * time.Hour
	}
	if c.SweepPerObserve <= 0 {
		c.SweepPerObserve = 2
	}
	if c.RingSize <= 0 {
		c.RingSize = 16
	}
	c.Session = c.Session.withDefaults()
	c.Escalation = c.Escalation.withDefaults(c.Session)
	return c
}

// SessionVerdict is emitted when a user's sliding window crosses the
// aggression threshold.
type SessionVerdict struct {
	UserID          string    `json:"user_id"`
	ScreenName      string    `json:"screen_name"`
	WindowStart     time.Time `json:"window_start"`
	WindowEnd       time.Time `json:"window_end"`
	Tweets          int       `json:"tweets"`
	AggressiveShare float64   `json:"aggressive_share"`
	MeanConfidence  float64   `json:"mean_confidence"`
}

// EscalationVerdict is emitted when a user's behavior is trending toward
// aggression across sessions: the EWMA score crossed the threshold over a
// span longer than one window and the recent verdicts are not decaying.
type EscalationVerdict struct {
	UserID     string  `json:"user_id"`
	ScreenName string  `json:"screen_name"`
	Score      float64 `json:"score"`
	Tweets     int64   `json:"tweets"`
	Aggressive int64   `json:"aggressive"`
	// RecentShare is the aggressive share of the last-N verdict ring.
	RecentShare float64   `json:"recent_share"`
	Sessions    int64     `json:"session_verdicts"`
	Offenses    int       `json:"offenses"`
	FirstSeen   time.Time `json:"first_seen"`
	At          time.Time `json:"at"`
}

// Observation is one classified tweet folded into its author's record.
type Observation struct {
	UserID     string
	ScreenName string
	// At is the tweet timestamp; the zero time falls back to the newest
	// event time the user's shard has seen (offense histories predate
	// timestamps) and never enters the session window.
	At         time.Time
	Aggressive bool
	Confidence float64
	// Offense marks that an alert was raised for this tweet; it advances
	// the user's offense count and, once the count reaches SuspendAfter,
	// flips the suspension recommendation.
	Offense      bool
	SuspendAfter int
	// OffenseOnly records the offense without touching the session window
	// or the behavioral aggregates — the legacy Alerter path, which runs
	// beside a full Observe for the same tweet.
	OffenseOnly bool
}

// Outcome reports what one Observe did.
type Outcome struct {
	// Session is non-nil when the sliding window crossed the threshold.
	Session *SessionVerdict
	// Escalation is non-nil when the cross-session detector fired.
	Escalation *EscalationVerdict
	// Offenses and Suspended reflect the record after this observation.
	Offenses  int
	Suspended bool
	// NewlySuspended is true when this observation crossed SuspendAfter.
	NewlySuspended bool
}

// RecentVerdict is one slot of a user's last-N verdict ring.
type RecentVerdict struct {
	At         time.Time `json:"at"`
	Aggressive bool      `json:"aggressive"`
	Confidence float64   `json:"confidence"`
}

// Snapshot is a copy of one user's state (Lookup). Reads never touch the
// CLOCK reference bits, so introspection cannot perturb eviction order —
// a replay after checkpoint/restore stays deterministic no matter how
// many lookups ran in between.
type Snapshot struct {
	UserID     string    `json:"user_id"`
	ScreenName string    `json:"screen_name"`
	FirstSeen  time.Time `json:"first_seen"`
	LastSeen   time.Time `json:"last_seen"`
	// Tweets and Aggressive are lifetime totals (within the record's
	// residency in the store).
	Tweets     int64 `json:"tweets"`
	Aggressive int64 `json:"aggressive"`
	// WindowTweets and WindowAggressiveShare describe the sliding session
	// window as of the user's last observation.
	WindowTweets          int     `json:"window_tweets"`
	WindowAggressiveShare float64 `json:"window_aggressive_share"`
	Offenses              int     `json:"offenses"`
	Suspended             bool    `json:"suspended"`
	// Score is the EWMA aggression score the escalation detector reads.
	Score float64 `json:"score"`
	// CadenceSeconds is the EWMA inter-tweet gap (0 until two timestamped
	// tweets have been seen).
	CadenceSeconds float64 `json:"cadence_seconds"`
	Sessions       int64   `json:"sessions"`
	Escalations    int64   `json:"escalations"`
	// Recent is the last-N verdict ring, oldest first.
	Recent []RecentVerdict `json:"recent"`
}

// entry is one observed tweet: a session-window element and a last-N
// verdict-ring slot share the same shape.
type entry struct {
	at         int64 // unix nanos
	aggressive bool
	confidence float64
}

// record is one user's state. All times are unix nanos (0 = unset).
// The CLOCK cache holds up to MaxUsers (default 100k) of these, so the
// field order is alignment-packed: word-sized fields first, the two
// byte-wide flags together at the tail. The fieldalign check and the
// TestRecordSizePinned pin enforce it (two stray interior bools
// previously cost 8 bytes per record — 0.8 MB at the default cap).
//
//redvet:packed
type record struct {
	id         string
	screenName string

	// Sliding session window, time-ordered; trimmed on every observe.
	entries     []entry
	lastVerdict int64

	// Offense history (the alerting step's repeated-offense bookkeeping).
	offenses int

	// Behavioral aggregates.
	firstSeen, lastSeen int64
	tweets, aggressive  int64
	score               float64 // EWMA aggression
	cadence             float64 // EWMA inter-arrival seconds
	recent              []entry
	recentPos, recentN  int
	sessions            int64
	escalations         int64
	lastEscalation      int64

	// CLOCK bookkeeping.
	ringIdx int

	suspended bool // offense history: suspension latch
	ref       bool // CLOCK reference bit
}

// shard is one lock stripe: a map for lookup plus a CLOCK ring (slice +
// hand) for eviction order.
type shard struct {
	mu      sync.Mutex
	users   map[string]*record
	ring    []*record
	hand    int
	maxTime int64 // newest event time observed by this shard
	free    []*record
}

// Store is the sharded, bounded, checkpointable user-state store. It is
// safe for concurrent use.
type Store struct {
	cfg     Config
	mask    uint64
	shards  []*shard
	perCap  int // per-shard record cap (0 = unbounded)
	ttl     int64
	minSpan int64
	sessCd  int64
	escCd   int64
	window  int64

	verdicts     atomic.Int64
	escalations  atomic.Int64
	suspensions  atomic.Int64
	evictionsCap atomic.Int64
	evictionsTTL atomic.Int64
}

// New builds a store from cfg (zero value = defaults).
func New(cfg Config) *Store {
	cfg = cfg.withDefaults()
	s := &Store{
		cfg:     cfg,
		mask:    uint64(cfg.Shards - 1),
		shards:  make([]*shard, cfg.Shards),
		window:  int64(cfg.Session.Window),
		sessCd:  int64(cfg.Session.Cooldown),
		minSpan: int64(cfg.Escalation.MinSpan),
		escCd:   int64(cfg.Escalation.Cooldown),
	}
	if cfg.TTL > 0 {
		s.ttl = int64(cfg.TTL)
	}
	if cfg.MaxUsers > 0 {
		// withDefaults guarantees Shards <= MaxUsers, so perCap >= 1 and
		// perCap*Shards <= MaxUsers: the process-wide cap holds exactly.
		s.perCap = cfg.MaxUsers / cfg.Shards
	}
	for i := range s.shards {
		s.shards[i] = &shard{users: make(map[string]*record)}
	}
	return s
}

// Config returns the resolved configuration.
func (s *Store) Config() Config { return s.cfg }

// fnv64a is the shard hash (inlined to keep Observe allocation-free).
func fnv64a(id string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	return h
}

func (s *Store) shardFor(id string) *shard {
	return s.shards[fnv64a(id)&s.mask]
}

func nanos(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.UnixNano()
}

func fromNanos(n int64) time.Time {
	if n == 0 {
		return time.Time{}
	}
	return time.Unix(0, n)
}

// Observe folds one classified tweet into its author's record, returning
// any session/escalation verdicts it triggered. Empty user IDs are
// ignored (zero Outcome).
//
//redvet:noalloc gate=UserstateObserveHot
func (s *Store) Observe(o Observation) Outcome {
	if o.UserID == "" {
		return Outcome{}
	}
	sh := s.shardFor(o.UserID)
	//redvet:ignore hotpathhygiene lock-wait contention is the one latency this subsystem must self-report; two clock reads bracketing the acquire are the instrument, not an accident
	t0 := time.Now()
	sh.mu.Lock()
	//redvet:ignore hotpathhygiene see t0 above: the pair feeds the redhanded_userstate_lock_wait histogram
	lockWait.Observe(time.Since(t0).Seconds())
	out := s.observeLocked(sh, o)
	sh.mu.Unlock()
	return out
}

//redvet:noalloc gate=UserstateObserveHot
func (s *Store) observeLocked(sh *shard, o Observation) Outcome {
	at := nanos(o.At)
	hasTime := at != 0
	if at > sh.maxTime {
		sh.maxTime = at
	}
	if !hasTime {
		at = sh.maxTime
	}

	r := sh.users[o.UserID]
	if r == nil {
		r = s.insert(sh, o.UserID)
	}
	r.ref = true
	if o.ScreenName != "" && o.ScreenName != r.screenName {
		// Clone for the same arena-aliasing reason as insert; the equality
		// guard keeps the copy off the steady state (a user's screen name
		// rarely changes between observations).
		r.screenName = strings.Clone(o.ScreenName)
	}
	if r.firstSeen == 0 || (at != 0 && at < r.firstSeen) {
		r.firstSeen = at
	}

	var out Outcome
	if !o.OffenseOnly {
		// Behavioral aggregates.
		r.tweets++
		x := 0.0
		if o.Aggressive {
			r.aggressive++
			x = o.Confidence
		}
		r.score += s.cfg.Escalation.Alpha * (x - r.score)
		if hasTime && r.lastSeen > 0 && at > r.lastSeen {
			gap := float64(at-r.lastSeen) / float64(time.Second)
			if r.cadence == 0 {
				r.cadence = gap
			} else {
				r.cadence += 0.2 * (gap - r.cadence)
			}
		}
		r.recent[r.recentPos] = entry{at: at, aggressive: o.Aggressive, confidence: o.Confidence}
		r.recentPos = (r.recentPos + 1) % len(r.recent)
		if r.recentN < len(r.recent) {
			r.recentN++
		}
	}
	if at > r.lastSeen {
		r.lastSeen = at
	}

	// Offense history.
	if o.Offense {
		r.offenses++
		if !r.suspended && o.SuspendAfter > 0 && r.offenses >= o.SuspendAfter {
			r.suspended = true
			out.NewlySuspended = true
			s.suspensions.Add(1)
			suspensionsTotal.Inc()
		}
	}

	if !o.OffenseOnly && hasTime {
		// Sliding session window: append, trim, judge.
		r.entries = append(r.entries, entry{at: at, aggressive: o.Aggressive, confidence: o.Confidence})
		cutoff := at - s.window
		keep := r.entries[:0]
		for _, e := range r.entries {
			if e.at >= cutoff {
				keep = append(keep, e)
			}
		}
		r.entries = keep
		if v := s.judgeSession(r, at); v != nil {
			out.Session = v
		}
		if v := s.judgeEscalation(r, at); v != nil {
			out.Escalation = v
		}
	}

	out.Offenses = r.offenses
	out.Suspended = r.suspended

	s.sweep(sh, r)
	return out
}

// judgeSession applies the session-window threshold (the legacy
// SessionTracker semantics, verbatim).
func (s *Store) judgeSession(r *record, at int64) *SessionVerdict {
	if len(r.entries) < s.cfg.Session.MinTweets {
		return nil
	}
	if r.lastVerdict != 0 && at-r.lastVerdict < s.sessCd {
		return nil
	}
	aggr, confSum := 0, 0.0
	for _, e := range r.entries {
		if e.aggressive {
			aggr++
			confSum += e.confidence
		}
	}
	share := float64(aggr) / float64(len(r.entries))
	if share < s.cfg.Session.AggressiveShare {
		return nil
	}
	r.lastVerdict = at
	r.sessions++
	s.verdicts.Add(1)
	sessionVerdictsTotal.Inc()
	return &SessionVerdict{
		UserID:          r.id,
		ScreenName:      r.screenName,
		WindowStart:     fromNanos(r.entries[0].at),
		WindowEnd:       fromNanos(at),
		Tweets:          len(r.entries),
		AggressiveShare: share,
		MeanConfidence:  confSum / float64(aggr),
	}
}

// judgeEscalation fires when the user's EWMA aggression score holds above
// the threshold across a span longer than one session window, with the
// last-N verdict ring confirming the trend is not decaying.
func (s *Store) judgeEscalation(r *record, at int64) *EscalationVerdict {
	cfg := s.cfg.Escalation
	if cfg.Threshold < 0 {
		return nil
	}
	if r.tweets < int64(cfg.MinTweets) || r.score < cfg.Threshold {
		return nil
	}
	if r.firstSeen == 0 || at-r.firstSeen < s.minSpan {
		return nil
	}
	if r.lastEscalation != 0 && at-r.lastEscalation < s.escCd {
		return nil
	}
	// Trend check over the ring (oldest->newest): the newer half must be
	// at least as aggressive as the older half, and aggressive at all.
	if r.recentN < len(r.recent)/2 {
		return nil
	}
	older, newer, aggr := 0, 0, 0
	half := r.recentN / 2
	for i := 0; i < r.recentN; i++ {
		// Logical index i=0 is the oldest retained slot.
		b := r.recent[(r.recentPos-r.recentN+i+2*len(r.recent))%len(r.recent)]
		if !b.aggressive {
			continue
		}
		aggr++
		if i < half {
			older++
		} else {
			newer++
		}
	}
	if newer == 0 || newer < older {
		return nil
	}
	r.lastEscalation = at
	r.escalations++
	s.escalations.Add(1)
	escalationsTotal.Inc()
	return &EscalationVerdict{
		UserID:      r.id,
		ScreenName:  r.screenName,
		Score:       r.score,
		Tweets:      r.tweets,
		Aggressive:  r.aggressive,
		RecentShare: float64(aggr) / float64(r.recentN),
		Sessions:    r.sessions,
		Offenses:    r.offenses,
		FirstSeen:   fromNanos(r.firstSeen),
		At:          fromNanos(at),
	}
}

// insert creates a record, CLOCK-evicting one first when the shard is at
// its cap.
func (s *Store) insert(sh *shard, id string) *record {
	if s.perCap > 0 && len(sh.ring) >= s.perCap {
		s.evictClock(sh)
	}
	var r *record
	if n := len(sh.free); n > 0 {
		r = sh.free[n-1]
		sh.free = sh.free[:n-1]
	} else {
		r = &record{recent: make([]entry, s.cfg.RingSize)}
	}
	// Clone the ID: observation strings may alias a pooled decode arena
	// (twitterdata.Decoder) whose chunk a retained record must not pin.
	// Insert is the once-per-user cold path, so the copy never lands on
	// the per-tweet steady state.
	r.id = strings.Clone(id)
	r.ringIdx = len(sh.ring)
	sh.ring = append(sh.ring, r)
	sh.users[r.id] = r
	return r
}

// evictClock runs the CLOCK hand: referenced records get a second chance
// (ref cleared), and the first unreferenced, unsuspended one is evicted.
// Suspended records carry the costliest state to forget (the
// repeated-offense recommendation), so they are passed over while any
// other victim exists; a ring full of suspended users still evicts one —
// the memory bound always wins. Bounded by two passes over the ring.
func (s *Store) evictClock(sh *shard) {
	var fallback *record // first unreferenced suspended record seen
	for steps := 0; steps < 2*len(sh.ring); steps++ {
		if sh.hand >= len(sh.ring) {
			sh.hand = 0
		}
		r := sh.ring[sh.hand]
		if r.ref {
			r.ref = false
			sh.hand++
			continue
		}
		if r.suspended {
			if fallback == nil {
				fallback = r
			}
			sh.hand++
			continue
		}
		s.remove(sh, r)
		s.evictionsCap.Add(1)
		evictionsCapTotal.Inc()
		return
	}
	if fallback == nil {
		if sh.hand >= len(sh.ring) {
			sh.hand = 0
		}
		fallback = sh.ring[sh.hand]
	}
	s.remove(sh, fallback)
	s.evictionsCap.Add(1)
	evictionsCapTotal.Inc()
}

// sweep amortizes TTL retirement into Observe: examine a few ring slots
// at the hand, evicting records idle past the TTL (event time). The
// record just observed is never a candidate (its lastSeen is current),
// and neither are suspended records — the repeated-offense
// recommendation must not silently expire; only cap pressure can
// reclaim it.
func (s *Store) sweep(sh *shard, current *record) {
	if s.ttl <= 0 || sh.maxTime <= s.ttl {
		return
	}
	cutoff := sh.maxTime - s.ttl
	for k := 0; k < s.cfg.SweepPerObserve && len(sh.ring) > 1; k++ {
		if sh.hand >= len(sh.ring) {
			sh.hand = 0
		}
		r := sh.ring[sh.hand]
		if r != current && !r.suspended && r.lastSeen < cutoff {
			s.remove(sh, r)
			s.evictionsTTL.Add(1)
			evictionsTTLTotal.Inc()
			continue // the swapped-in record now sits at the hand
		}
		sh.hand++
	}
}

// remove deletes a record from the map and the CLOCK ring (swap-remove),
// recycling it through the shard's free list.
func (s *Store) remove(sh *shard, r *record) {
	delete(sh.users, r.id)
	i, last := r.ringIdx, len(sh.ring)-1
	sh.ring[i] = sh.ring[last]
	sh.ring[i].ringIdx = i
	sh.ring[last] = nil
	sh.ring = sh.ring[:last]
	if sh.hand > last {
		sh.hand = 0
	}
	// Reset and recycle: keep the entry/ring capacity, drop the contents.
	*r = record{entries: r.entries[:0], recent: r.recent}
	for j := range r.recent {
		r.recent[j] = entry{}
	}
	if len(sh.free) < 32 {
		sh.free = append(sh.free, r)
	}
}

// Lookup returns a copy of one user's state. It does not touch the CLOCK
// reference bit, so reads cannot perturb eviction order.
func (s *Store) Lookup(userID string) (Snapshot, bool) {
	if userID == "" {
		return Snapshot{}, false
	}
	sh := s.shardFor(userID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	r := sh.users[userID]
	if r == nil {
		return Snapshot{}, false
	}
	return snapshotOf(r), true
}

func snapshotOf(r *record) Snapshot {
	sn := Snapshot{
		UserID:         r.id,
		ScreenName:     r.screenName,
		FirstSeen:      fromNanos(r.firstSeen),
		LastSeen:       fromNanos(r.lastSeen),
		Tweets:         r.tweets,
		Aggressive:     r.aggressive,
		WindowTweets:   len(r.entries),
		Offenses:       r.offenses,
		Suspended:      r.suspended,
		Score:          r.score,
		CadenceSeconds: r.cadence,
		Sessions:       r.sessions,
		Escalations:    r.escalations,
	}
	if len(r.entries) > 0 {
		aggr := 0
		for _, e := range r.entries {
			if e.aggressive {
				aggr++
			}
		}
		sn.WindowAggressiveShare = float64(aggr) / float64(len(r.entries))
	}
	for i := 0; i < r.recentN; i++ {
		b := r.recent[(r.recentPos-r.recentN+i+2*len(r.recent))%len(r.recent)]
		sn.Recent = append(sn.Recent, RecentVerdict{
			At: fromNanos(b.at), Aggressive: b.aggressive, Confidence: b.confidence,
		})
	}
	return sn
}

// OffenseCount returns one user's offense count (0 for unknown users).
func (s *Store) OffenseCount(userID string) int {
	if userID == "" {
		return 0
	}
	sh := s.shardFor(userID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if r := sh.users[userID]; r != nil {
		return r.offenses
	}
	return 0
}

// Suspended reports whether the user crossed the repeated-offense bar.
func (s *Store) Suspended(userID string) bool {
	if userID == "" {
		return false
	}
	sh := s.shardFor(userID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if r := sh.users[userID]; r != nil {
		return r.suspended
	}
	return false
}

// SuspendedUsers returns all users recommended for suspension, sorted so
// the listing is stable for clients.
func (s *Store) SuspendedUsers() []string {
	var out []string
	for _, sh := range s.shards {
		sh.mu.Lock()
		for _, r := range sh.ring {
			if r.suspended {
				out = append(out, r.id)
			}
		}
		sh.mu.Unlock()
	}
	sort.Strings(out)
	return out
}

// Len returns the number of tracked user records across all shards.
func (s *Store) Len() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += len(sh.users)
		sh.mu.Unlock()
	}
	return n
}

// Prune drops users last seen before the cutoff. The amortized TTL sweep
// makes calling it optional; it remains for operators who want an
// explicit retirement point (and for the legacy SessionTracker API).
func (s *Store) Prune(cutoff time.Time) int {
	c := nanos(cutoff)
	removed := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		// Walk backwards so swap-remove never skips an element.
		for i := len(sh.ring) - 1; i >= 0; i-- {
			if r := sh.ring[i]; r.lastSeen < c {
				s.remove(sh, r)
				s.evictionsTTL.Add(1)
				evictionsTTLTotal.Inc()
				removed++
			}
		}
		sh.mu.Unlock()
	}
	return removed
}

// SessionVerdicts returns the total session verdicts emitted.
func (s *Store) SessionVerdicts() int64 { return s.verdicts.Load() }

// Escalations returns the total escalation verdicts emitted.
func (s *Store) Escalations() int64 { return s.escalations.Load() }

// Suspensions returns the total users newly recommended for suspension.
func (s *Store) Suspensions() int64 { return s.suspensions.Load() }

// Evictions returns records evicted by the cap and by the TTL sweep.
func (s *Store) Evictions() (cap, ttl int64) {
	return s.evictionsCap.Load(), s.evictionsTTL.Load()
}
