package userstate

import (
	"fmt"
	"testing"
	"time"
)

var base = time.Date(2020, 6, 1, 12, 0, 0, 0, time.UTC)

// obs builds an aggressive/normal observation for one user.
func obs(user string, at time.Time, aggressive bool, conf float64) Observation {
	return Observation{UserID: user, ScreenName: user, At: at, Aggressive: aggressive, Confidence: conf}
}

func TestSessionVerdictOnRepeatedAggression(t *testing.T) {
	s := New(Config{Session: SessionConfig{Window: time.Hour, MinTweets: 3, AggressiveShare: 0.6}})
	var verdict *SessionVerdict
	for i := 0; i < 4; i++ {
		if out := s.Observe(obs("bully", base.Add(time.Duration(i)*time.Minute), true, 0.9)); out.Session != nil {
			verdict = out.Session
		}
	}
	if verdict == nil {
		t.Fatalf("no verdict after 4 aggressive tweets in a window")
	}
	if verdict.UserID != "bully" || verdict.Tweets < 3 || verdict.AggressiveShare != 1 {
		t.Fatalf("verdict wrong: %+v", verdict)
	}
	if verdict.MeanConfidence < 0.89 || verdict.MeanConfidence > 0.91 {
		t.Fatalf("mean confidence = %v", verdict.MeanConfidence)
	}
	if s.SessionVerdicts() != 2 { // no cooldown configured beyond default window
		// 4 tweets with cooldown = window: exactly one verdict fires.
		t.Logf("verdicts = %d", s.SessionVerdicts())
	}
}

func TestSessionWindowEvictionAndCooldown(t *testing.T) {
	s := New(Config{Session: SessionConfig{Window: 10 * time.Minute, MinTweets: 3, AggressiveShare: 0.5}})
	s.Observe(obs("u", base, true, 0.9))
	s.Observe(obs("u", base.Add(time.Minute), true, 0.9))
	// Long gap: the window empties, so one more aggressive tweet cannot
	// produce a verdict.
	if out := s.Observe(obs("u", base.Add(2*time.Hour), true, 0.9)); out.Session != nil {
		t.Fatalf("stale entries should have been evicted: %+v", out.Session)
	}

	cd := New(Config{Session: SessionConfig{Window: time.Hour, MinTweets: 2, AggressiveShare: 0.5, Cooldown: time.Hour}})
	verdicts := 0
	for i := 0; i < 10; i++ {
		if out := cd.Observe(obs("u", base.Add(time.Duration(i)*time.Minute), true, 0.9)); out.Session != nil {
			verdicts++
		}
	}
	if verdicts != 1 || cd.SessionVerdicts() != 1 {
		t.Fatalf("cooldown broken: %d verdicts (counter %d)", verdicts, cd.SessionVerdicts())
	}
}

func TestOffenseSuspension(t *testing.T) {
	s := New(Config{})
	var out Outcome
	for i := 0; i < 3; i++ {
		out = s.Observe(Observation{
			UserID: "offender", At: base.Add(time.Duration(i) * time.Minute),
			Aggressive: true, Confidence: 0.9, Offense: true, SuspendAfter: 3,
		})
	}
	if !out.Suspended || !out.NewlySuspended || out.Offenses != 3 {
		t.Fatalf("suspension outcome wrong: %+v", out)
	}
	if !s.Suspended("offender") || s.OffenseCount("offender") != 3 {
		t.Fatalf("suspension state wrong")
	}
	// Another offense: still suspended, but not newly.
	out = s.Observe(Observation{UserID: "offender", Aggressive: true, Offense: true, SuspendAfter: 3})
	if !out.Suspended || out.NewlySuspended {
		t.Fatalf("re-suspension flagged as new: %+v", out)
	}
	if s.Suspended("innocent") {
		t.Fatalf("innocent user suspended")
	}
}

func TestSuspendedUsersSorted(t *testing.T) {
	s := New(Config{})
	for _, u := range []string{"zeta", "alpha", "mike", "beta"} {
		s.Observe(Observation{UserID: u, Aggressive: true, Offense: true, SuspendAfter: 1})
	}
	got := s.SuspendedUsers()
	want := []string{"alpha", "beta", "mike", "zeta"}
	if len(got) != len(want) {
		t.Fatalf("suspended = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("not sorted: %v", got)
		}
	}
}

func TestOffenseOnlySkipsAggregates(t *testing.T) {
	s := New(Config{})
	s.Observe(Observation{UserID: "u", At: base, Aggressive: true, Confidence: 0.9, Offense: true, SuspendAfter: 5, OffenseOnly: true})
	snap, ok := s.Lookup("u")
	if !ok {
		t.Fatalf("record missing")
	}
	if snap.Tweets != 0 || snap.Score != 0 || snap.WindowTweets != 0 || len(snap.Recent) != 0 {
		t.Fatalf("offense-only observation polluted aggregates: %+v", snap)
	}
	if snap.Offenses != 1 {
		t.Fatalf("offense not recorded: %+v", snap)
	}
}

func TestEscalationFiresAcrossSessions(t *testing.T) {
	s := New(Config{
		Session:    SessionConfig{Window: time.Hour, MinTweets: 3, AggressiveShare: 0.6},
		Escalation: EscalationConfig{Threshold: 0.5, MinTweets: 10, MinSpan: 2 * time.Hour, Cooldown: 24 * time.Hour},
	})
	var esc *EscalationVerdict
	// Sustained aggression over 3 hours: crosses MinSpan and the score
	// threshold.
	for i := 0; i < 40; i++ {
		out := s.Observe(obs("esc", base.Add(time.Duration(i)*5*time.Minute), true, 0.9))
		if out.Escalation != nil {
			esc = out.Escalation
		}
	}
	if esc == nil {
		t.Fatalf("no escalation over sustained 3h aggression")
	}
	if esc.UserID != "esc" || esc.Score < 0.5 || esc.RecentShare != 1 {
		t.Fatalf("escalation wrong: %+v", esc)
	}
	if esc.At.Sub(esc.FirstSeen) < 2*time.Hour {
		t.Fatalf("escalation fired inside MinSpan: %+v", esc)
	}
	if s.Escalations() != 1 {
		t.Fatalf("cooldown broken: %d escalations", s.Escalations())
	}
}

func TestEscalationRequiresSpan(t *testing.T) {
	s := New(Config{
		Escalation: EscalationConfig{Threshold: 0.5, MinTweets: 5, MinSpan: 2 * time.Hour},
	})
	// A burst inside 30 minutes: score and count qualify, the span does not.
	for i := 0; i < 30; i++ {
		if out := s.Observe(obs("burst", base.Add(time.Duration(i)*time.Minute), true, 0.9)); out.Escalation != nil {
			t.Fatalf("escalation fired within a single window at tweet %d", i)
		}
	}
}

func TestEscalationRequiresNonDecayingTrend(t *testing.T) {
	s := New(Config{
		RingSize:   8,
		Escalation: EscalationConfig{Threshold: 0.2, MinTweets: 5, MinSpan: time.Hour},
	})
	// Aggressive early, then a clean streak filling the newer half of the
	// ring: score may still sit above the low threshold but the trend is
	// decaying, so no escalation.
	at := base
	for i := 0; i < 10; i++ {
		at = at.Add(30 * time.Minute)
		s.Observe(obs("cooling", at, true, 0.9))
	}
	escalated := false
	for i := 0; i < 5; i++ {
		at = at.Add(30 * time.Minute)
		if out := s.Observe(obs("cooling", at, false, 0.1)); out.Escalation != nil {
			escalated = true
		}
	}
	// The cooling-down tail must not produce fresh escalations once the
	// newer ring half is less aggressive than the older half.
	prev := s.Escalations()
	for i := 0; i < 4; i++ {
		at = at.Add(30 * time.Minute)
		if out := s.Observe(obs("cooling", at, false, 0.1)); out.Escalation != nil {
			escalated = true
		}
	}
	if s.Escalations() != prev || escalated && prev == 0 {
		t.Fatalf("decaying user kept escalating (escalations=%d)", s.Escalations())
	}
}

func TestEscalationDisabled(t *testing.T) {
	s := New(Config{Escalation: EscalationConfig{Threshold: -1}})
	for i := 0; i < 100; i++ {
		if out := s.Observe(obs("u", base.Add(time.Duration(i)*10*time.Minute), true, 0.99)); out.Escalation != nil {
			t.Fatalf("escalation fired while disabled")
		}
	}
}

func TestCapEvictionKeepsHotUsers(t *testing.T) {
	s := New(Config{Shards: 1, MaxUsers: 100, TTL: -1})
	// One hot user observed between every batch of cold users: the CLOCK
	// reference bit must keep them resident.
	for i := 0; i < 5000; i++ {
		s.Observe(obs("hot", base.Add(time.Duration(i)*time.Second), true, 0.9))
		s.Observe(obs(fmt.Sprintf("cold%d", i), base.Add(time.Duration(i)*time.Second), false, 0.1))
	}
	if n := s.Len(); n > 100 {
		t.Fatalf("cap breached: %d records", n)
	}
	if _, ok := s.Lookup("hot"); !ok {
		t.Fatalf("hot user evicted despite constant references")
	}
	if capEv, _ := s.Evictions(); capEv == 0 {
		t.Fatalf("no cap evictions recorded")
	}
}

func TestTTLSweepAmortized(t *testing.T) {
	s := New(Config{Shards: 1, TTL: time.Hour, SweepPerObserve: 4})
	// 50 users at t0, then one active user advancing the clock far past
	// the TTL: the sweep inside Observe must retire the idle records
	// without any Prune call.
	for i := 0; i < 50; i++ {
		s.Observe(obs(fmt.Sprintf("idle%d", i), base, false, 0.1))
	}
	for i := 0; i < 200; i++ {
		s.Observe(obs("active", base.Add(2*time.Hour+time.Duration(i)*time.Second), false, 0.1))
	}
	if n := s.Len(); n != 1 {
		t.Fatalf("amortized sweep left %d records, want 1 (the active user)", n)
	}
	if _, ttlEv := s.Evictions(); ttlEv != 50 {
		t.Fatalf("ttl evictions = %d, want 50", ttlEv)
	}
}

func TestPrune(t *testing.T) {
	s := New(Config{})
	s.Observe(obs("old", base, false, 0.1))
	s.Observe(obs("new", base.Add(3*time.Hour), false, 0.1))
	removed := s.Prune(base.Add(time.Hour))
	if removed != 1 || s.Len() != 1 {
		t.Fatalf("prune removed %d, active %d", removed, s.Len())
	}
	if _, ok := s.Lookup("new"); !ok {
		t.Fatalf("prune removed the wrong record")
	}
}

func TestZeroTimeObservationsTracked(t *testing.T) {
	s := New(Config{})
	// Offense histories predate timestamps: zero-time observations must
	// still accumulate (the legacy Alerter path).
	for i := 0; i < 3; i++ {
		s.Observe(Observation{UserID: "u", Aggressive: true, Confidence: 0.9, Offense: true, SuspendAfter: 3})
	}
	if !s.Suspended("u") {
		t.Fatalf("zero-time offenses not tracked")
	}
	snap, _ := s.Lookup("u")
	if snap.WindowTweets != 0 {
		t.Fatalf("zero-time observation entered the session window: %+v", snap)
	}
}

func TestEmptyUserIgnored(t *testing.T) {
	s := New(Config{})
	out := s.Observe(Observation{UserID: "", Aggressive: true, Confidence: 0.9})
	if out != (Outcome{}) || s.Len() != 0 {
		t.Fatalf("empty user tracked")
	}
	if _, ok := s.Lookup(""); ok {
		t.Fatalf("empty user lookup succeeded")
	}
}

func TestSnapshotAggregates(t *testing.T) {
	s := New(Config{RingSize: 4})
	at := base
	for i := 0; i < 6; i++ {
		at = at.Add(10 * time.Second)
		s.Observe(obs("u", at, i%2 == 0, 0.8))
	}
	snap, ok := s.Lookup("u")
	if !ok {
		t.Fatalf("record missing")
	}
	if snap.Tweets != 6 || snap.Aggressive != 3 {
		t.Fatalf("totals wrong: %+v", snap)
	}
	if snap.WindowTweets != 6 || snap.WindowAggressiveShare != 0.5 {
		t.Fatalf("window stats wrong: %+v", snap)
	}
	if len(snap.Recent) != 4 {
		t.Fatalf("ring should hold last 4, got %d", len(snap.Recent))
	}
	// Ring is oldest->newest; the last observation (i=5) was normal.
	if snap.Recent[3].Aggressive {
		t.Fatalf("ring order wrong: %+v", snap.Recent)
	}
	if snap.CadenceSeconds < 9 || snap.CadenceSeconds > 11 {
		t.Fatalf("cadence = %v, want ~10s", snap.CadenceSeconds)
	}
	if snap.FirstSeen.After(snap.LastSeen) || !snap.LastSeen.Equal(at) {
		t.Fatalf("seen range wrong: %+v", snap)
	}
}

func TestShardsRoundedToPowerOfTwo(t *testing.T) {
	s := New(Config{Shards: 9})
	if got := s.Config().Shards; got != 16 {
		t.Fatalf("shards = %d, want 16", got)
	}
	if s.Config().MaxUsers != 0 {
		t.Fatalf("default MaxUsers should be unbounded")
	}
}

func TestLookupDoesNotPerturbEviction(t *testing.T) {
	// Two stores fed identically, one with heavy Lookup traffic in
	// between: eviction decisions must match exactly.
	mk := func(lookups bool) []string {
		s := New(Config{Shards: 1, MaxUsers: 20, TTL: -1})
		for i := 0; i < 500; i++ {
			s.Observe(obs(fmt.Sprintf("u%d", i%60), base.Add(time.Duration(i)*time.Second), false, 0.1))
			if lookups {
				for j := 0; j < 3; j++ {
					s.Lookup(fmt.Sprintf("u%d", (i+j)%60))
				}
			}
		}
		var ids []string
		for i := 0; i < 60; i++ {
			if _, ok := s.Lookup(fmt.Sprintf("u%d", i)); ok {
				ids = append(ids, fmt.Sprintf("u%d", i))
			}
		}
		return ids
	}
	a, b := mk(false), mk(true)
	if len(a) != len(b) {
		t.Fatalf("lookup traffic changed eviction: %d vs %d residents", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("lookup traffic changed eviction order: %v vs %v", a, b)
		}
	}
}

func TestSmallCapNeverExceeded(t *testing.T) {
	// A cap below the stripe count shrinks the stripes instead of
	// overshooting: 10 users means at most 10 records, not one per shard.
	s := New(Config{Shards: 16, MaxUsers: 10, TTL: -1})
	if s.Config().Shards > 10 {
		t.Fatalf("stripes not shrunk: %d shards for a 10-user cap", s.Config().Shards)
	}
	for i := 0; i < 1000; i++ {
		s.Observe(obs(fmt.Sprintf("u%d", i), base.Add(time.Duration(i)*time.Second), false, 0.1))
	}
	if n := s.Len(); n > 10 {
		t.Fatalf("cap of 10 exceeded: %d records", n)
	}
}

func TestSuspendedSurviveEvictionPressure(t *testing.T) {
	// Suspension is the costliest state to forget: suspended records are
	// skipped by the TTL sweep and passed over by CLOCK eviction while
	// any other victim exists.
	s := New(Config{Shards: 1, MaxUsers: 50, TTL: time.Hour, SweepPerObserve: 4})
	for i := 0; i < 10; i++ {
		for k := 0; k < 3; k++ {
			s.Observe(Observation{
				UserID: fmt.Sprintf("banned%d", i), At: base.Add(time.Duration(i) * time.Second),
				Aggressive: true, Confidence: 0.9, Offense: true, SuspendAfter: 3,
			})
		}
	}
	// Churn far past both the cap and the TTL.
	for i := 0; i < 5000; i++ {
		s.Observe(obs(fmt.Sprintf("churn%d", i), base.Add(2*time.Hour+time.Duration(i)*time.Second), false, 0.1))
	}
	if n := s.Len(); n > 50 {
		t.Fatalf("cap breached: %d", n)
	}
	for i := 0; i < 10; i++ {
		id := fmt.Sprintf("banned%d", i)
		if !s.Suspended(id) {
			t.Fatalf("%s lost its suspension under eviction pressure", id)
		}
	}
	// A ring made entirely of suspended users still evicts: the memory
	// bound always wins.
	full := New(Config{Shards: 1, MaxUsers: 4, TTL: -1})
	for i := 0; i < 20; i++ {
		full.Observe(Observation{
			UserID: fmt.Sprintf("s%d", i), At: base.Add(time.Duration(i) * time.Second),
			Aggressive: true, Confidence: 0.9, Offense: true, SuspendAfter: 1,
		})
	}
	if n := full.Len(); n > 4 {
		t.Fatalf("all-suspended ring broke the cap: %d", n)
	}
}
