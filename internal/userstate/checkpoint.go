package userstate

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"io"
)

// Checkpoint format: the store serializes into a versioned, length-
// prefixed, checksummed frame sequence following the stream-codec
// conventions — a decoder can reject a corrupt or truncated blob before
// any state is applied.
//
//	magic   "RHUS" (4 bytes)
//	version uint16 (big-endian)
//	shards  uint16
//	frame   header (store counters)
//	frame   x shards (one per shard, in shard order)
//
// where each frame is: uint32 length, gob payload, uint64 FNV-1a
// checksum of the payload. Restore validates the magic, the version, the
// shard count (CLOCK state is only meaningful under the sharding it was
// written with), every checksum, and rejects trailing bytes.
//
// The encoding captures the complete per-shard state — records in CLOCK
// ring order, reference bits, the hand, and the shard's event clock — so
// a restored store replays the remaining stream to the exact same
// verdict sequence (sessions, escalations, suspensions, evictions) as an
// uninterrupted run.

const (
	checkpointMagic   = "RHUS"
	checkpointVersion = 1
	// maxFrameLen rejects absurd length prefixes before allocating.
	maxFrameLen = 1 << 30
)

// counterState is the header frame payload.
//
//redvet:wire
type counterState struct {
	Verdicts     int64
	Escalations  int64
	Suspensions  int64
	EvictionsCap int64
	EvictionsTTL int64
}

// recordState is the gob DTO for one user record.
//
//redvet:wire
type recordState struct {
	ID                          string
	ScreenName                  string
	Entries                     []entryState
	LastVerdict, LastEscalation int64
	Offenses                    int
	Suspended                   bool
	FirstSeen, LastSeen         int64
	Tweets, Aggressive          int64
	Sessions, Escalations       int64
	Score, Cadence              float64
	Recent                      []entryState
	RecentPos, RecentN          int
	Ref                         bool
}

//redvet:wire
type entryState struct {
	At         int64
	Aggressive bool
	Confidence float64
}

// shardState is the gob DTO for one shard, records in CLOCK ring order.
//
//redvet:wire
type shardState struct {
	Hand    int
	MaxTime int64
	Records []recordState
}

func appendFrame(buf *bytes.Buffer, payload []byte) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	buf.Write(hdr[:])
	buf.Write(payload)
	h := fnv.New64a()
	h.Write(payload)
	var sum [8]byte
	binary.BigEndian.PutUint64(sum[:], h.Sum64())
	buf.Write(sum[:])
}

func encodeFrame(buf *bytes.Buffer, v any) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(v); err != nil {
		return err
	}
	appendFrame(buf, payload.Bytes())
	return nil
}

// MarshalBinary serializes the full store state. Each shard is snapshot
// under its own lock; call it on a quiesced store (post-drain) when a
// globally consistent point is required.
func (s *Store) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteString(checkpointMagic)
	var hdr [4]byte
	binary.BigEndian.PutUint16(hdr[:2], checkpointVersion)
	binary.BigEndian.PutUint16(hdr[2:], uint16(len(s.shards)))
	buf.Write(hdr[:])

	counters := counterState{
		Verdicts:     s.verdicts.Load(),
		Escalations:  s.escalations.Load(),
		Suspensions:  s.suspensions.Load(),
		EvictionsCap: s.evictionsCap.Load(),
		EvictionsTTL: s.evictionsTTL.Load(),
	}
	if err := encodeFrame(&buf, counters); err != nil {
		return nil, fmt.Errorf("userstate: encode counters: %w", err)
	}

	for i, sh := range s.shards {
		sh.mu.Lock()
		st := shardState{Hand: sh.hand, MaxTime: sh.maxTime, Records: make([]recordState, 0, len(sh.ring))}
		for _, r := range sh.ring {
			rs := recordState{
				ID:             r.id,
				ScreenName:     r.screenName,
				LastVerdict:    r.lastVerdict,
				LastEscalation: r.lastEscalation,
				Offenses:       r.offenses,
				Suspended:      r.suspended,
				FirstSeen:      r.firstSeen,
				LastSeen:       r.lastSeen,
				Tweets:         r.tweets,
				Aggressive:     r.aggressive,
				Sessions:       r.sessions,
				Escalations:    r.escalations,
				Score:          r.score,
				Cadence:        r.cadence,
				RecentPos:      r.recentPos,
				RecentN:        r.recentN,
				Ref:            r.ref,
			}
			for _, e := range r.entries {
				rs.Entries = append(rs.Entries, entryState{At: e.at, Aggressive: e.aggressive, Confidence: e.confidence})
			}
			for _, b := range r.recent {
				rs.Recent = append(rs.Recent, entryState{At: b.at, Aggressive: b.aggressive, Confidence: b.confidence})
			}
			st.Records = append(st.Records, rs)
		}
		sh.mu.Unlock()
		if err := encodeFrame(&buf, st); err != nil {
			return nil, fmt.Errorf("userstate: encode shard %d: %w", i, err)
		}
	}
	return buf.Bytes(), nil
}

// frameReader decodes the length-prefixed, checksummed frames.
type frameReader struct {
	data []byte
	off  int
}

func (fr *frameReader) next() ([]byte, error) {
	if fr.off+4 > len(fr.data) {
		return nil, fmt.Errorf("userstate: truncated frame header")
	}
	n := binary.BigEndian.Uint32(fr.data[fr.off:])
	fr.off += 4
	if n > maxFrameLen {
		return nil, fmt.Errorf("userstate: frame length %d exceeds limit", n)
	}
	if fr.off+int(n)+8 > len(fr.data) {
		return nil, fmt.Errorf("userstate: truncated frame payload")
	}
	payload := fr.data[fr.off : fr.off+int(n)]
	fr.off += int(n)
	want := binary.BigEndian.Uint64(fr.data[fr.off:])
	fr.off += 8
	h := fnv.New64a()
	h.Write(payload)
	if h.Sum64() != want {
		return nil, fmt.Errorf("userstate: frame checksum mismatch (corrupt checkpoint)")
	}
	return payload, nil
}

func decodeFrame(fr *frameReader, v any) error {
	payload, err := fr.next()
	if err != nil {
		return err
	}
	return gob.NewDecoder(bytes.NewReader(payload)).Decode(v)
}

// UnmarshalBinary restores the full store state, replacing whatever the
// store currently holds. The blob must have been written under the same
// shard count; corrupt, truncated, or trailing-garbage blobs are
// rejected without applying any state.
func (s *Store) UnmarshalBinary(data []byte) error {
	if len(data) < 8 || string(data[:4]) != checkpointMagic {
		return fmt.Errorf("userstate: bad checkpoint magic")
	}
	if v := binary.BigEndian.Uint16(data[4:6]); v != checkpointVersion {
		return fmt.Errorf("userstate: unsupported checkpoint version %d", v)
	}
	if n := int(binary.BigEndian.Uint16(data[6:8])); n != len(s.shards) {
		return fmt.Errorf("userstate: checkpoint has %d shards, store has %d (eviction order would break)",
			n, len(s.shards))
	}
	fr := &frameReader{data: data, off: 8}

	var counters counterState
	if err := decodeFrame(fr, &counters); err != nil {
		return fmt.Errorf("userstate: decode counters: %w", err)
	}
	states := make([]shardState, len(s.shards))
	for i := range states {
		if err := decodeFrame(fr, &states[i]); err != nil {
			return fmt.Errorf("userstate: decode shard %d: %w", i, err)
		}
		if st := &states[i]; st.Hand < 0 || st.Hand > len(st.Records) {
			return fmt.Errorf("userstate: shard %d hand %d out of range", i, st.Hand)
		}
		for _, rs := range states[i].Records {
			if rs.ID == "" {
				return fmt.Errorf("userstate: shard %d has a record without a user ID", i)
			}
			if len(rs.Recent) != s.cfg.RingSize || rs.RecentN > len(rs.Recent) ||
				rs.RecentPos < 0 || rs.RecentPos >= len(rs.Recent) {
				return fmt.Errorf("userstate: shard %d record %q has a malformed verdict ring", i, rs.ID)
			}
		}
	}
	if fr.off != len(data) {
		return fmt.Errorf("userstate: %d trailing bytes after checkpoint", len(data)-fr.off)
	}

	// Everything validated: apply.
	s.verdicts.Store(counters.Verdicts)
	s.escalations.Store(counters.Escalations)
	s.suspensions.Store(counters.Suspensions)
	s.evictionsCap.Store(counters.EvictionsCap)
	s.evictionsTTL.Store(counters.EvictionsTTL)
	for i, sh := range s.shards {
		st := states[i]
		sh.mu.Lock()
		sh.users = make(map[string]*record, len(st.Records))
		sh.ring = make([]*record, 0, len(st.Records))
		sh.hand = st.Hand
		sh.maxTime = st.MaxTime
		sh.free = nil
		for _, rs := range st.Records {
			r := &record{
				id:             rs.ID,
				screenName:     rs.ScreenName,
				lastVerdict:    rs.LastVerdict,
				lastEscalation: rs.LastEscalation,
				offenses:       rs.Offenses,
				suspended:      rs.Suspended,
				firstSeen:      rs.FirstSeen,
				lastSeen:       rs.LastSeen,
				tweets:         rs.Tweets,
				aggressive:     rs.Aggressive,
				sessions:       rs.Sessions,
				escalations:    rs.Escalations,
				score:          rs.Score,
				cadence:        rs.Cadence,
				recent:         make([]entry, s.cfg.RingSize),
				recentPos:      rs.RecentPos,
				recentN:        rs.RecentN,
				ref:            rs.Ref,
				ringIdx:        len(sh.ring),
			}
			for _, e := range rs.Entries {
				r.entries = append(r.entries, entry{at: e.At, aggressive: e.Aggressive, confidence: e.Confidence})
			}
			for j, b := range rs.Recent {
				r.recent[j] = entry{at: b.At, aggressive: b.Aggressive, confidence: b.Confidence}
			}
			sh.ring = append(sh.ring, r)
			sh.users[r.id] = r
		}
		sh.mu.Unlock()
	}
	return nil
}

// Checkpoint writes the store state to w.
func (s *Store) Checkpoint(w io.Writer) error {
	blob, err := s.MarshalBinary()
	if err != nil {
		return err
	}
	_, err = w.Write(blob)
	return err
}

// Restore loads a checkpoint written by Checkpoint.
func (s *Store) Restore(r io.Reader) error {
	blob, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("userstate: read checkpoint: %w", err)
	}
	return s.UnmarshalBinary(blob)
}
