package userstate

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestConcurrentObserveLookupCheckpoint hammers one store from observer,
// reader, and checkpointer goroutines at once. Run with -race;
// correctness here means no data races, no panics, the cap holding, and
// every mid-flight checkpoint decoding cleanly into a fresh store.
func TestConcurrentObserveLookupCheckpoint(t *testing.T) {
	s := New(Config{
		Shards:   8,
		MaxUsers: 2000,
		Session:  SessionConfig{Window: time.Hour, MinTweets: 3, AggressiveShare: 0.5},
	})
	const (
		writers   = 8
		perWriter = 20000
	)
	var writersWg, auxWg sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		writersWg.Add(1)
		go func(w int) {
			defer writersWg.Done()
			at := time.Date(2020, 6, 1, 0, 0, 0, 0, time.UTC)
			for i := 0; i < perWriter; i++ {
				at = at.Add(time.Second)
				o := Observation{
					UserID:     fmt.Sprintf("w%d-u%d", w, i%500),
					At:         at,
					Aggressive: i%2 == 0,
					Confidence: 0.9,
				}
				if i%10 == 0 {
					o.Offense = true
					o.SuspendAfter = 5
				}
				s.Observe(o)
			}
		}(w)
	}

	// Readers: lookups, population counts, suspended listings.
	for r := 0; r < 4; r++ {
		auxWg.Add(1)
		go func(r int) {
			defer auxWg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				s.Lookup(fmt.Sprintf("w%d-u%d", i%writers, i%500))
				if i%100 == 0 {
					s.Len()
					s.SuspendedUsers()
				}
			}
		}(r)
	}

	// Checkpointer: serialize mid-flight, every blob must restore.
	auxWg.Add(1)
	go func() {
		defer auxWg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			blob, err := s.MarshalBinary()
			if err != nil {
				t.Errorf("checkpoint under load: %v", err)
				return
			}
			fresh := New(s.Config())
			if err := fresh.UnmarshalBinary(blob); err != nil {
				t.Errorf("restore of mid-flight checkpoint: %v", err)
				return
			}
		}
	}()

	writersWg.Wait()
	close(stop)
	auxWg.Wait()

	if n := s.Len(); n == 0 || n > 2000 {
		t.Fatalf("population out of bounds after concurrent load: %d", n)
	}
	// A final quiesced checkpoint must round-trip exactly.
	blob, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	fresh := New(s.Config())
	if err := fresh.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if fresh.Len() != s.Len() {
		t.Fatalf("final checkpoint lost records: %d vs %d", fresh.Len(), s.Len())
	}
}
