package userstate

import (
	"fmt"
	"testing"
	"time"

	"redhanded/internal/twitterdata"
)

// TestBoundedUnderMillionUsers replays tweets from one million distinct
// synthetic users through a store capped at 100k records: the cap must
// hold throughout (no unbounded map growth), evictions must be observed,
// and the hot users that keep tweeting must survive.
func TestBoundedUnderMillionUsers(t *testing.T) {
	total := 1_000_000
	if testing.Short() {
		total = 100_000
	}
	const maxUsers = 100_000

	s := New(Config{
		Shards:   64,
		MaxUsers: maxUsers,
		TTL:      24 * time.Hour,
	})

	// A pool of generator tweets provides realistic payloads; each
	// observation rewrites the author so every tweet comes from a distinct
	// user, except a handful of hot users revisited throughout.
	gen := twitterdata.NewGenerator(99, 10)
	pool := make([]twitterdata.Tweet, 512)
	for i := range pool {
		pool[i] = gen.Tweet(i%3, i%10)
	}
	start := time.Date(2020, 6, 1, 0, 0, 0, 0, time.UTC)

	checkEvery := total / 16
	for i := 0; i < total; i++ {
		tw := &pool[i%len(pool)]
		user := fmt.Sprintf("u%07d", i)
		if i%1000 == 999 {
			user = fmt.Sprintf("hot%d", i%7)
		}
		s.Observe(Observation{
			UserID:     user,
			ScreenName: tw.User.ScreenName,
			At:         start.Add(time.Duration(i) * 50 * time.Millisecond),
			Aggressive: i%3 != 0,
			Confidence: 0.8,
		})
		if i%checkEvery == 0 {
			if n := s.Len(); n > maxUsers {
				t.Fatalf("cap breached mid-replay at %d observations: %d records", i, n)
			}
		}
	}

	if n := s.Len(); n > maxUsers {
		t.Fatalf("cap breached: %d records > %d", n, maxUsers)
	}
	capEv, ttlEv := s.Evictions()
	if capEv == 0 {
		t.Fatalf("1M distinct users produced no cap evictions")
	}
	t.Logf("%d observations: %d resident, %d cap evictions, %d ttl evictions",
		total, s.Len(), capEv, ttlEv)
	for i := 0; i < 7; i++ {
		if _, ok := s.Lookup(fmt.Sprintf("hot%d", i)); !ok {
			t.Errorf("hot%d evicted despite periodic activity", i)
		}
	}
}
