package userstate

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// streamConfig is a small, eviction-heavy store configuration used by
// the equivalence tests: 4 shards, tight cap, short TTL, escalation on.
func streamConfig() Config {
	return Config{
		Shards:   4,
		MaxUsers: 400,
		TTL:      6 * time.Hour,
		RingSize: 8,
		Session:  SessionConfig{Window: time.Hour, MinTweets: 3, AggressiveShare: 0.5},
		Escalation: EscalationConfig{
			Threshold: 0.4, MinTweets: 6, MinSpan: 90 * time.Minute, Cooldown: time.Hour,
		},
	}
}

// synthStream yields n deterministic observations over many users with
// mixed aggression, offenses, and timestamps.
func synthStream(seed int64, n int) []Observation {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Observation, n)
	at := base
	for i := range out {
		at = at.Add(time.Duration(rng.Intn(20)+1) * time.Second)
		user := fmt.Sprintf("user%d", rng.Intn(n/10+2))
		aggressive := rng.Float64() < 0.4
		o := Observation{
			UserID:     user,
			ScreenName: user,
			At:         at,
			Aggressive: aggressive,
			Confidence: 0.5 + rng.Float64()/2,
		}
		if aggressive && rng.Float64() < 0.5 {
			o.Offense = true
			o.SuspendAfter = 5
		}
		out[i] = o
	}
	return out
}

// outcomeKey flattens an Outcome for comparison.
func outcomeKey(out Outcome) string {
	k := fmt.Sprintf("off=%d susp=%v new=%v", out.Offenses, out.Suspended, out.NewlySuspended)
	if out.Session != nil {
		k += fmt.Sprintf(" S{%s %d %.6f %.6f}", out.Session.UserID, out.Session.Tweets,
			out.Session.AggressiveShare, out.Session.MeanConfidence)
	}
	if out.Escalation != nil {
		k += fmt.Sprintf(" E{%s %.9f %d %.6f}", out.Escalation.UserID, out.Escalation.Score,
			out.Escalation.Tweets, out.Escalation.RecentShare)
	}
	return k
}

// TestCheckpointReplayEquivalence is the core guarantee: checkpoint the
// store mid-stream, restore into a fresh store, replay the remaining
// observations — every outcome (session verdicts, escalations, offense
// counts, suspensions) and the final population must match the
// uninterrupted run exactly, evictions included.
func TestCheckpointReplayEquivalence(t *testing.T) {
	stream := synthStream(7, 30000)
	cut := len(stream) / 2

	full := New(streamConfig())
	for _, o := range stream[:cut] {
		full.Observe(o)
	}

	blob, err := full.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored := New(streamConfig())
	if err := restored.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != full.Len() {
		t.Fatalf("restored %d records, original %d", restored.Len(), full.Len())
	}

	for i, o := range stream[cut:] {
		a := full.Observe(o)
		b := restored.Observe(o)
		if outcomeKey(a) != outcomeKey(b) {
			t.Fatalf("outcome %d diverged:\n  full:     %s\n  restored: %s", i, outcomeKey(a), outcomeKey(b))
		}
	}
	if full.Len() != restored.Len() {
		t.Fatalf("final population diverged: %d vs %d", full.Len(), restored.Len())
	}
	if full.SessionVerdicts() != restored.SessionVerdicts() ||
		full.Escalations() != restored.Escalations() ||
		full.Suspensions() != restored.Suspensions() {
		t.Fatalf("counters diverged: (%d,%d,%d) vs (%d,%d,%d)",
			full.SessionVerdicts(), full.Escalations(), full.Suspensions(),
			restored.SessionVerdicts(), restored.Escalations(), restored.Suspensions())
	}
	aCap, aTTL := full.Evictions()
	bCap, bTTL := restored.Evictions()
	if aCap != bCap || aTTL != bTTL {
		t.Fatalf("eviction counters diverged: (%d,%d) vs (%d,%d)", aCap, aTTL, bCap, bTTL)
	}
	aSusp, bSusp := full.SuspendedUsers(), restored.SuspendedUsers()
	if len(aSusp) != len(bSusp) {
		t.Fatalf("suspended sets diverged: %v vs %v", aSusp, bSusp)
	}
	for i := range aSusp {
		if aSusp[i] != bSusp[i] {
			t.Fatalf("suspended sets diverged at %d: %v vs %v", i, aSusp, bSusp)
		}
	}
	// Spot-check full record state, ring contents included.
	for _, id := range aSusp {
		sa, _ := full.Lookup(id)
		sb, _ := restored.Lookup(id)
		if fmt.Sprintf("%+v", sa) != fmt.Sprintf("%+v", sb) {
			t.Fatalf("snapshot of %s diverged:\n%+v\n%+v", id, sa, sb)
		}
	}
}

func TestCheckpointRoundTripViaWriter(t *testing.T) {
	s := New(streamConfig())
	for _, o := range synthStream(11, 5000) {
		s.Observe(o)
	}
	var buf bytes.Buffer
	if err := s.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	r := New(streamConfig())
	if err := r.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	if r.Len() != s.Len() || r.SessionVerdicts() != s.SessionVerdicts() {
		t.Fatalf("writer round trip lost state")
	}
}

func TestCheckpointRejectsCorruption(t *testing.T) {
	s := New(streamConfig())
	for _, o := range synthStream(13, 2000) {
		s.Observe(o)
	}
	blob, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	fresh := func() *Store { return New(streamConfig()) }

	t.Run("bad magic", func(t *testing.T) {
		b := append([]byte(nil), blob...)
		b[0] = 'X'
		if err := fresh().UnmarshalBinary(b); err == nil {
			t.Fatalf("bad magic accepted")
		}
	})
	t.Run("unknown version", func(t *testing.T) {
		b := append([]byte(nil), blob...)
		b[5] = 99
		if err := fresh().UnmarshalBinary(b); err == nil {
			t.Fatalf("unknown version accepted")
		}
	})
	t.Run("shard mismatch", func(t *testing.T) {
		other := New(Config{Shards: 8})
		if err := other.UnmarshalBinary(blob); err == nil {
			t.Fatalf("shard-count mismatch accepted")
		}
	})
	t.Run("bit flip", func(t *testing.T) {
		for _, pos := range []int{20, len(blob) / 2, len(blob) - 5} {
			b := append([]byte(nil), blob...)
			b[pos] ^= 0x40
			if err := fresh().UnmarshalBinary(b); err == nil {
				t.Fatalf("bit flip at %d accepted", pos)
			}
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for _, n := range []int{3, 7, 12, len(blob) / 2, len(blob) - 1} {
			if err := fresh().UnmarshalBinary(blob[:n]); err == nil {
				t.Fatalf("truncation at %d accepted", n)
			}
		}
	})
	t.Run("trailing garbage", func(t *testing.T) {
		b := append(append([]byte(nil), blob...), 0xde, 0xad)
		if err := fresh().UnmarshalBinary(b); err == nil {
			t.Fatalf("trailing bytes accepted")
		}
	})
	t.Run("empty", func(t *testing.T) {
		if err := fresh().UnmarshalBinary(nil); err == nil {
			t.Fatalf("empty blob accepted")
		}
	})

	// The pristine blob still restores after all the rejected attempts.
	if err := fresh().UnmarshalBinary(blob); err != nil {
		t.Fatalf("pristine blob rejected: %v", err)
	}
}

func TestCheckpointEmptyStore(t *testing.T) {
	s := New(Config{})
	blob, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	r := New(Config{})
	if err := r.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 0 {
		t.Fatalf("empty store restored %d records", r.Len())
	}
}
