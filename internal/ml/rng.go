package ml

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (xorshift64star). It is used instead of math/rand so that every stochastic
// component in the system can be seeded explicitly and split reproducibly
// across parallel tasks without locking.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with the given value. A zero seed is
// remapped to a fixed non-zero constant because xorshift cannot escape the
// all-zero state.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Split derives a new independent generator from this one. The derived
// stream is decorrelated via a SplitMix64 finalizer over the parent state.
func (r *RNG) Split() *RNG {
	z := r.Uint64() + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return NewRNG(z ^ (z >> 31))
}

// SeedAt derives a decorrelated seed for the (seed, counter) pair with the
// SplitMix64 finalizer. It is the basis for counter-based (stateless)
// random streams: every caller that knows the logical position of an event
// draws the same values for it, no matter which process or execution order
// reached the event — the property the distributed training paths rely on
// to reproduce sequential results exactly.
func SeedAt(seed, counter uint64) uint64 {
	z := seed + counter*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// State exposes the generator's internal state for serialization.
func (r *RNG) State() uint64 { return r.state }

// SetState restores a state captured with State. A zero state is remapped
// like a zero seed (xorshift cannot escape all-zero).
func (r *RNG) SetState(s uint64) {
	if s == 0 {
		s = 0x9E3779B97F4A7C15
	}
	r.state = s
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics when n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("ml: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// NormFloat64 returns a standard normal variate (Box-Muller).
func (r *RNG) NormFloat64() float64 {
	for {
		u1 := r.Float64()
		if u1 == 0 {
			continue
		}
		u2 := r.Float64()
		return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	}
}

// Poisson returns a Poisson(lambda) variate using Knuth's algorithm, which
// is adequate for the small lambda values (≤ 10) used by online bagging.
func (r *RNG) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 1000 { // numerical safety net
			return k
		}
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly reorders the first n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// SampleWithoutReplacement returns k distinct indices drawn uniformly from
// [0, n). When k >= n it returns all n indices in random order.
func (r *RNG) SampleWithoutReplacement(n, k int) []int {
	p := r.Perm(n)
	if k >= n {
		return p
	}
	return p[:k]
}
