package ml

// Cross-validation utilities for the batch baselines. The related-behavior
// papers the reproduction compares against (Fig. 17) evaluated their
// models with 10-fold cross validation; these helpers let the harness
// compute the equivalent batch reference on the synthetic datasets.

// StratifiedFolds partitions instance indices into k folds preserving the
// class proportions of the whole dataset (within rounding). Instances are
// shuffled with the given rng before assignment.
func StratifiedFolds(data []Instance, k int, rng *RNG) [][]int {
	if k < 2 {
		k = 2
	}
	byClass := map[int][]int{}
	for i, in := range data {
		if in.IsLabeled() {
			byClass[in.Label] = append(byClass[in.Label], i)
		}
	}
	folds := make([][]int, k)
	for _, idxs := range byClass {
		rng.Shuffle(len(idxs), func(i, j int) { idxs[i], idxs[j] = idxs[j], idxs[i] })
		for pos, idx := range idxs {
			folds[pos%k] = append(folds[pos%k], idx)
		}
	}
	return folds
}

// TrainTestSplit returns the train set excluding the fold and the fold as
// the test set.
func TrainTestSplit(data []Instance, folds [][]int, fold int) (train, test []Instance) {
	inTest := map[int]bool{}
	for _, idx := range folds[fold] {
		inTest[idx] = true
	}
	for i, in := range data {
		if inTest[i] {
			test = append(test, in)
		} else if in.IsLabeled() {
			train = append(train, in)
		}
	}
	return train, test
}

// CrossValidate runs k-fold cross validation with the model factory and
// returns the per-fold (trueLabel, predictedLabel) pairs flattened, so the
// caller can compute any metric.
func CrossValidate(data []Instance, k int, seed uint64,
	factory func() BatchClassifier) ([][2]int, error) {

	rng := NewRNG(seed)
	folds := StratifiedFolds(data, k, rng)
	var pairs [][2]int
	for f := range folds {
		train, test := TrainTestSplit(data, folds, f)
		model := factory()
		if err := model.Fit(train); err != nil {
			return nil, err
		}
		for _, in := range test {
			pairs = append(pairs, [2]int{in.Label, model.Predict(in.X).ArgMax()})
		}
	}
	return pairs, nil
}
