// Package ml provides the core machine-learning data model shared by the
// streaming and batch learners: dense feature instances, class domains, and
// deterministic random-number utilities.
package ml

import (
	"fmt"
	"math"
)

// Instance is a dense feature vector with an optional class label.
// A negative Label means the instance is unlabeled.
type Instance struct {
	// X holds the feature values, indexed by the feature schema.
	X []float64
	// Label is the class index in [0, NumClasses) or Unlabeled.
	Label int
	// Weight is the instance weight used by learners (1 by default).
	Weight float64
	// ID optionally carries an application identifier (e.g. tweet ID).
	ID string
	// Day is the 0-based collection day the instance belongs to
	// (the paper's dataset spans 10 consecutive days).
	Day int
}

// Unlabeled marks an instance with no class label.
const Unlabeled = -1

// NewInstance returns a labeled instance with unit weight.
func NewInstance(x []float64, label int) Instance {
	return Instance{X: x, Label: label, Weight: 1}
}

// IsLabeled reports whether the instance carries a class label.
func (in Instance) IsLabeled() bool { return in.Label >= 0 }

// Clone returns a deep copy of the instance.
func (in Instance) Clone() Instance {
	out := in
	out.X = make([]float64, len(in.X))
	copy(out.X, in.X)
	return out
}

// Valid reports whether all feature values are finite.
func (in Instance) Valid() bool {
	for _, v := range in.X {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// Classes describes a closed set of class labels.
type Classes struct {
	names []string
}

// NewClasses builds a class domain from the ordered label names.
func NewClasses(names ...string) Classes {
	cp := make([]string, len(names))
	copy(cp, names)
	return Classes{names: cp}
}

// Len returns the number of classes.
func (c Classes) Len() int { return len(c.names) }

// Name returns the name of class i, or "?" when out of range.
func (c Classes) Name(i int) string {
	if i < 0 || i >= len(c.names) {
		return "?"
	}
	return c.names[i]
}

// Names returns a copy of all class names in index order.
func (c Classes) Names() []string {
	cp := make([]string, len(c.names))
	copy(cp, c.names)
	return cp
}

// Index returns the index of the named class, or -1 when unknown.
func (c Classes) Index(name string) int {
	for i, n := range c.names {
		if n == name {
			return i
		}
	}
	return -1
}

// String implements fmt.Stringer.
func (c Classes) String() string { return fmt.Sprint(c.names) }

// Prediction is the output of a classifier for one instance: a vote (or
// probability mass) per class. Votes need not be normalized.
type Prediction []float64

// ArgMax returns the index of the largest vote, breaking ties towards the
// smaller index. An empty prediction yields -1.
func (p Prediction) ArgMax() int {
	best, bestV := -1, math.Inf(-1)
	for i, v := range p {
		if v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

// Normalize scales the votes so they sum to 1. A zero-sum prediction is
// returned unchanged.
func (p Prediction) Normalize() Prediction {
	sum := 0.0
	for _, v := range p {
		sum += v
	}
	if sum <= 0 {
		return p
	}
	out := make(Prediction, len(p))
	for i, v := range p {
		out[i] = v / sum
	}
	return out
}

// Confidence returns the normalized vote share of the winning class, in
// [0,1]. Zero-vote predictions have zero confidence.
func (p Prediction) Confidence() float64 {
	sum, best := 0.0, 0.0
	for _, v := range p {
		sum += v
		if v > best {
			best = v
		}
	}
	if sum <= 0 {
		return 0
	}
	return best / sum
}
