package ml

import (
	"math"
	"testing"
	"testing/quick"
)

func TestInstanceLabeled(t *testing.T) {
	in := NewInstance([]float64{1, 2}, 1)
	if !in.IsLabeled() {
		t.Fatalf("labeled instance reported unlabeled")
	}
	if in.Weight != 1 {
		t.Fatalf("NewInstance weight = %v, want 1", in.Weight)
	}
	un := Instance{X: []float64{1}, Label: Unlabeled}
	if un.IsLabeled() {
		t.Fatalf("unlabeled instance reported labeled")
	}
}

func TestInstanceCloneIndependence(t *testing.T) {
	in := NewInstance([]float64{1, 2, 3}, 0)
	cp := in.Clone()
	cp.X[0] = 99
	if in.X[0] != 1 {
		t.Fatalf("Clone shares backing array")
	}
}

func TestInstanceValid(t *testing.T) {
	cases := []struct {
		x    []float64
		want bool
	}{
		{[]float64{0, 1, -2.5}, true},
		{[]float64{math.NaN()}, false},
		{[]float64{math.Inf(1)}, false},
		{[]float64{math.Inf(-1), 0}, false},
		{nil, true},
	}
	for _, c := range cases {
		if got := (Instance{X: c.x}).Valid(); got != c.want {
			t.Errorf("Valid(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestClasses(t *testing.T) {
	c := NewClasses("normal", "abusive", "hateful")
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
	if c.Index("abusive") != 1 {
		t.Fatalf("Index(abusive) = %d, want 1", c.Index("abusive"))
	}
	if c.Index("spam") != -1 {
		t.Fatalf("Index(spam) = %d, want -1", c.Index("spam"))
	}
	if c.Name(2) != "hateful" || c.Name(5) != "?" || c.Name(-1) != "?" {
		t.Fatalf("Name lookups wrong: %q %q %q", c.Name(2), c.Name(5), c.Name(-1))
	}
	names := c.Names()
	names[0] = "x"
	if c.Name(0) != "normal" {
		t.Fatalf("Names() exposed internal slice")
	}
}

func TestPredictionArgMax(t *testing.T) {
	cases := []struct {
		p    Prediction
		want int
	}{
		{Prediction{0.2, 0.5, 0.3}, 1},
		{Prediction{1, 1, 1}, 0}, // tie goes to the lowest index
		{Prediction{}, -1},
		{Prediction{-3, -1, -2}, 1},
	}
	for _, c := range cases {
		if got := c.p.ArgMax(); got != c.want {
			t.Errorf("ArgMax(%v) = %d, want %d", c.p, got, c.want)
		}
	}
}

func TestPredictionNormalize(t *testing.T) {
	p := Prediction{1, 3}.Normalize()
	if math.Abs(p[0]-0.25) > 1e-12 || math.Abs(p[1]-0.75) > 1e-12 {
		t.Fatalf("Normalize = %v, want [0.25 0.75]", p)
	}
	zero := Prediction{0, 0}
	if got := zero.Normalize(); got[0] != 0 || got[1] != 0 {
		t.Fatalf("Normalize of zero votes changed values: %v", got)
	}
}

func TestPredictionConfidence(t *testing.T) {
	if c := (Prediction{0, 0}).Confidence(); c != 0 {
		t.Fatalf("zero-vote confidence = %v, want 0", c)
	}
	if c := (Prediction{1, 3}).Confidence(); math.Abs(c-0.75) > 1e-12 {
		t.Fatalf("confidence = %v, want 0.75", c)
	}
}

func TestPredictionNormalizeProperty(t *testing.T) {
	f := func(raw []float64) bool {
		p := make(Prediction, len(raw))
		for i, v := range raw {
			p[i] = math.Abs(math.Mod(v, 1000)) // finite, non-negative
		}
		n := p.Normalize()
		sum := 0.0
		for _, v := range n {
			if v < 0 {
				return false
			}
			sum += v
		}
		// Either all-zero input (unchanged) or sums to ~1.
		return sum == 0 || math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
