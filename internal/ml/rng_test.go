package ml

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatalf("zero seed produced a stuck generator")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(7)
	counts := make([]int, 5)
	for i := 0; i < 50000; i++ {
		counts[r.Intn(5)]++
	}
	for i, c := range counts {
		if c < 8000 || c > 12000 {
			t.Fatalf("Intn(5) bucket %d grossly unbalanced: %d/50000", i, c)
		}
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGSplitIndependence(t *testing.T) {
	r := NewRNG(1)
	a := r.Split()
	b := r.Split()
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams look correlated: %d/64 collisions", same)
	}
}

func TestRNGNormFloat64Moments(t *testing.T) {
	r := NewRNG(11)
	n := 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestRNGPoissonMean(t *testing.T) {
	r := NewRNG(13)
	n := 100000
	sum := 0
	for i := 0; i < n; i++ {
		sum += r.Poisson(6)
	}
	mean := float64(sum) / float64(n)
	if math.Abs(mean-6) > 0.1 {
		t.Fatalf("Poisson(6) mean = %v, want ~6", mean)
	}
	if r.Poisson(0) != 0 || r.Poisson(-1) != 0 {
		t.Fatalf("Poisson of non-positive lambda should be 0")
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(17)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm produced invalid permutation")
		}
		seen[v] = true
	}
}

func TestRNGSampleWithoutReplacement(t *testing.T) {
	r := NewRNG(19)
	s := r.SampleWithoutReplacement(10, 4)
	if len(s) != 4 {
		t.Fatalf("sample size = %d, want 4", len(s))
	}
	seen := map[int]bool{}
	for _, v := range s {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("sample has duplicates or out-of-range values: %v", s)
		}
		seen[v] = true
	}
	all := r.SampleWithoutReplacement(3, 10)
	if len(all) != 3 {
		t.Fatalf("oversized k should return n items, got %d", len(all))
	}
}
