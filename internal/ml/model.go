package ml

// Classifier is the contract shared by streaming and batch classifiers at
// prediction time.
type Classifier interface {
	// Predict returns the per-class votes for the feature vector x.
	Predict(x []float64) Prediction
}

// StreamClassifier is an incrementally trainable classifier. Train observes
// one instance and updates the model; each instance is seen exactly once.
type StreamClassifier interface {
	Classifier
	// Train updates the model with one labeled instance.
	Train(in Instance)
	// NumClasses returns the size of the class domain the model was
	// configured with.
	NumClasses() int
}

// Accumulator collects local training statistics from one parallel task.
// Accumulators from different tasks over disjoint data partitions are merged
// into the global model by DistributedClassifier.ApplyAccumulators.
type Accumulator interface {
	// Observe folds one labeled instance into the local statistics.
	Observe(in Instance)
	// Count returns the number of instances observed.
	Count() int64
}

// DistributedClassifier is a StreamClassifier that supports the
// two-phase distributed training used by the micro-batch engines: tasks
// accumulate local deltas against a read-only view of the global model, and
// the driver merges the deltas.
type DistributedClassifier interface {
	StreamClassifier
	// NewAccumulator creates an empty local-statistics collector bound to
	// the current global model structure.
	NewAccumulator() Accumulator
	// ApplyAccumulators merges local deltas into the global model.
	// Accumulators must have been created by this model after the previous
	// ApplyAccumulators call.
	ApplyAccumulators(accs []Accumulator)
}

// BatchClassifier is trained once on a full dataset.
type BatchClassifier interface {
	Classifier
	// Fit trains the model on the given labeled instances.
	Fit(data []Instance) error
}
