package ml

import (
	"math"
	"testing"
)

// cvData builds a small separable dataset.
func cvData(n int, seed uint64) []Instance {
	rng := NewRNG(seed)
	out := make([]Instance, 0, n)
	for i := 0; i < n; i++ {
		label := 0
		if rng.Float64() < 0.3 { // imbalanced
			label = 1
		}
		out = append(out, NewInstance([]float64{float64(label)*4 + rng.NormFloat64()}, label))
	}
	return out
}

func TestStratifiedFoldsPreserveProportions(t *testing.T) {
	data := cvData(1000, 1)
	folds := StratifiedFolds(data, 10, NewRNG(2))
	if len(folds) != 10 {
		t.Fatalf("fold count = %d", len(folds))
	}
	total := 0
	for f, fold := range folds {
		pos := 0
		for _, idx := range fold {
			if data[idx].Label == 1 {
				pos++
			}
		}
		share := float64(pos) / float64(len(fold))
		if math.Abs(share-0.3) > 0.08 {
			t.Errorf("fold %d minority share = %v, want ~0.3", f, share)
		}
		total += len(fold)
	}
	if total != 1000 {
		t.Fatalf("folds cover %d instances, want 1000", total)
	}
}

func TestTrainTestSplitDisjoint(t *testing.T) {
	data := cvData(200, 3)
	folds := StratifiedFolds(data, 5, NewRNG(4))
	train, test := TrainTestSplit(data, folds, 2)
	if len(train)+len(test) != 200 {
		t.Fatalf("split sizes %d + %d != 200", len(train), len(test))
	}
	if len(test) != len(folds[2]) {
		t.Fatalf("test size %d != fold size %d", len(test), len(folds[2]))
	}
}

// stumpClassifier thresholds feature 0 — a trivial BatchClassifier.
type stumpClassifier struct{ threshold float64 }

func (s *stumpClassifier) Fit(data []Instance) error {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, in := range data {
		if in.Label == 0 && in.X[0] > hi {
			hi = in.X[0]
		}
		if in.Label == 1 && in.X[0] < lo {
			lo = in.X[0]
		}
	}
	s.threshold = (lo + hi) / 2
	return nil
}

func (s *stumpClassifier) Predict(x []float64) Prediction {
	if x[0] > s.threshold {
		return Prediction{0, 1}
	}
	return Prediction{1, 0}
}

func TestCrossValidate(t *testing.T) {
	data := cvData(500, 5)
	pairs, err := CrossValidate(data, 10, 6, func() BatchClassifier {
		return &stumpClassifier{}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 500 {
		t.Fatalf("CV produced %d pairs, want 500", len(pairs))
	}
	correct := 0
	for _, p := range pairs {
		if p[0] == p[1] {
			correct++
		}
	}
	if acc := float64(correct) / 500; acc < 0.9 {
		t.Fatalf("CV accuracy on separable data = %v", acc)
	}
}
