package eval

// FadingPrequential is prequential evaluation with exponential forgetting
// (Gama, Sebastião & Rodrigues 2013): every confusion-matrix cell decays
// by a fading factor before each new observation, so the metrics reflect
// *current* model performance rather than the whole history. This is the
// standard way to read a streaming model's health under concept drift —
// the cumulative estimator can mask a decaying model for a long time.
type FadingPrequential struct {
	k      int
	alpha  float64
	counts [][]float64
	total  float64
	seen   int64
}

// NewFadingPrequential creates an evaluator with fading factor alpha in
// (0, 1]; alpha = 1 reduces to the cumulative estimator. Typical values
// are 0.999-0.9999.
func NewFadingPrequential(k int, alpha float64) *FadingPrequential {
	if k < 2 {
		panic("eval: fading prequential needs >= 2 classes")
	}
	if alpha <= 0 || alpha > 1 {
		alpha = 0.999
	}
	counts := make([][]float64, k)
	for i := range counts {
		counts[i] = make([]float64, k)
	}
	return &FadingPrequential{k: k, alpha: alpha, counts: counts}
}

// Record registers one tested instance.
func (f *FadingPrequential) Record(trueClass, predClass int) {
	if trueClass < 0 || trueClass >= f.k || predClass < 0 || predClass >= f.k {
		return
	}
	for i := range f.counts {
		for j := range f.counts[i] {
			f.counts[i][j] *= f.alpha
		}
	}
	f.total = f.total*f.alpha + 1
	f.counts[trueClass][predClass]++
	f.seen++
}

// Seen returns the number of instances recorded (unfaded).
func (f *FadingPrequential) Seen() int64 { return f.seen }

// Accuracy returns the faded accuracy.
func (f *FadingPrequential) Accuracy() float64 {
	if f.total == 0 {
		return 0
	}
	correct := 0.0
	for i := 0; i < f.k; i++ {
		correct += f.counts[i][i]
	}
	return correct / f.total
}

// precisionRecall returns the faded precision and recall of class c.
func (f *FadingPrequential) precisionRecall(c int) (p, r float64) {
	var predicted, support float64
	for i := 0; i < f.k; i++ {
		predicted += f.counts[i][c]
		support += f.counts[c][i]
	}
	if predicted > 0 {
		p = f.counts[c][c] / predicted
	}
	if support > 0 {
		r = f.counts[c][c] / support
	}
	return p, r
}

// F1 returns the faded F1 of class c.
func (f *FadingPrequential) F1(c int) float64 {
	p, r := f.precisionRecall(c)
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// WeightedF1 returns the faded support-weighted F1.
func (f *FadingPrequential) WeightedF1() float64 {
	if f.total == 0 {
		return 0
	}
	s := 0.0
	for c := 0; c < f.k; c++ {
		var support float64
		for i := 0; i < f.k; i++ {
			support += f.counts[c][i]
		}
		s += f.F1(c) * support
	}
	return s / f.total
}
