package eval

// Point is one sample of a metric curve: the metric value after Instances
// instances had been processed. The paper's figures plot F1 against tweets
// processed (in thousands).
type Point struct {
	Instances int64
	Value     float64
}

// Prequential implements the test-then-train evaluation scheme: each
// labeled instance is first used to test the model, then to train it. It
// maintains both cumulative metrics and a periodically sampled F1 curve.
type Prequential struct {
	matrix     *ConfusionMatrix
	sampleStep int64
	curve      []Point
	metric     func(*ConfusionMatrix) float64
}

// NewPrequential creates an evaluator for k classes that samples the curve
// every sampleStep instances (0 disables curve collection). The sampled
// metric defaults to weighted F1, matching the paper's figures.
func NewPrequential(k int, sampleStep int64) *Prequential {
	return &Prequential{
		matrix:     NewConfusionMatrix(k),
		sampleStep: sampleStep,
		metric:     (*ConfusionMatrix).WeightedF1,
	}
}

// SetMetric overrides the curve metric (e.g. accuracy for the Sarcasm
// dataset in Fig. 17).
func (p *Prequential) SetMetric(metric func(*ConfusionMatrix) float64) {
	p.metric = metric
}

// Record registers one tested instance (before the model trains on it).
func (p *Prequential) Record(trueClass, predClass int) {
	p.matrix.Add(trueClass, predClass)
	if p.sampleStep > 0 && p.matrix.Total()%p.sampleStep == 0 {
		p.curve = append(p.curve, Point{Instances: p.matrix.Total(), Value: p.metric(p.matrix)})
	}
}

// Matrix exposes the cumulative confusion matrix.
func (p *Prequential) Matrix() *ConfusionMatrix { return p.matrix }

// Curve returns the sampled metric-over-time points.
func (p *Prequential) Curve() []Point { return append([]Point(nil), p.curve...) }

// Summary returns the cumulative headline metrics.
func (p *Prequential) Summary() Report { return p.matrix.Summary() }

// WindowedRate tracks a boolean rate (e.g. per-class share or alert rate)
// over a sliding window, used for the evaluation step's statistics on
// unlabeled-instance predictions.
type WindowedRate struct {
	size   int
	buf    []bool
	next   int
	filled bool
	count  int
}

// NewWindowedRate creates a sliding window of the given size (>= 1).
func NewWindowedRate(size int) *WindowedRate {
	if size < 1 {
		size = 1
	}
	return &WindowedRate{size: size, buf: make([]bool, size)}
}

// Add pushes one observation.
func (w *WindowedRate) Add(v bool) {
	if w.buf[w.next] && (w.filled || w.next < w.count) {
		w.count--
	}
	w.buf[w.next] = v
	if v {
		w.count++
	}
	w.next++
	if w.next == w.size {
		w.next = 0
		w.filled = true
	}
}

// Rate returns the fraction of true observations in the window.
func (w *WindowedRate) Rate() float64 {
	n := w.size
	if !w.filled {
		n = w.next
	}
	if n == 0 {
		return 0
	}
	return float64(w.count) / float64(n)
}
