package eval

import (
	"math"
	"testing"
)

func TestFadingReducesToCumulativeAtAlphaOne(t *testing.T) {
	f := NewFadingPrequential(2, 1)
	m := NewConfusionMatrix(2)
	pairs := [][2]int{{0, 0}, {0, 1}, {1, 1}, {1, 1}, {1, 0}}
	for _, p := range pairs {
		f.Record(p[0], p[1])
		m.Add(p[0], p[1])
	}
	if math.Abs(f.Accuracy()-m.Accuracy()) > 1e-12 {
		t.Fatalf("alpha=1 accuracy %v != cumulative %v", f.Accuracy(), m.Accuracy())
	}
	if math.Abs(f.WeightedF1()-m.WeightedF1()) > 1e-12 {
		t.Fatalf("alpha=1 F1 %v != cumulative %v", f.WeightedF1(), m.WeightedF1())
	}
}

func TestFadingTracksRecentPerformance(t *testing.T) {
	faded := NewFadingPrequential(2, 0.99)
	cumulative := NewConfusionMatrix(2)
	// Phase 1: 2000 correct predictions; phase 2: 500 wrong ones.
	for i := 0; i < 2000; i++ {
		faded.Record(0, 0)
		cumulative.Add(0, 0)
	}
	for i := 0; i < 500; i++ {
		faded.Record(0, 1)
		cumulative.Add(0, 1)
	}
	// The cumulative estimator still looks healthy; the faded one has
	// collapsed towards the recent error.
	if cumulative.Accuracy() < 0.75 {
		t.Fatalf("test setup wrong: cumulative %v", cumulative.Accuracy())
	}
	if faded.Accuracy() > 0.1 {
		t.Fatalf("faded accuracy %v should reflect the recent failures", faded.Accuracy())
	}
}

func TestFadingRecovery(t *testing.T) {
	f := NewFadingPrequential(2, 0.99)
	for i := 0; i < 1000; i++ {
		f.Record(0, 1) // all wrong
	}
	for i := 0; i < 1000; i++ {
		f.Record(0, 0) // all right
	}
	if f.Accuracy() < 0.9 {
		t.Fatalf("faded accuracy %v did not recover", f.Accuracy())
	}
	if f.Seen() != 2000 {
		t.Fatalf("seen = %d", f.Seen())
	}
}

func TestFadingIgnoresOutOfRange(t *testing.T) {
	f := NewFadingPrequential(2, 0.99)
	f.Record(-1, 0)
	f.Record(0, 7)
	if f.Seen() != 0 {
		t.Fatalf("out-of-range pairs recorded")
	}
	if f.Accuracy() != 0 || f.WeightedF1() != 0 {
		t.Fatalf("empty evaluator metrics nonzero")
	}
}

func TestFadingDefaultsBadAlpha(t *testing.T) {
	f := NewFadingPrequential(2, 7)
	if f.alpha != 0.999 {
		t.Fatalf("bad alpha not defaulted: %v", f.alpha)
	}
}

func TestFadingPanicsOnTinyK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("k=1 accepted")
		}
	}()
	NewFadingPrequential(1, 0.99)
}
