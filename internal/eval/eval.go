// Package eval implements the evaluation step of the pipeline: confusion
// matrices, the standard classification metrics (accuracy, precision,
// recall, F1), and the prequential (test-then-train) evaluation scheme the
// paper uses, including the over-time metric series behind its figures.
package eval

import (
	"fmt"
	"strings"
)

// ConfusionMatrix accumulates counts of (true class, predicted class)
// pairs for a fixed number of classes.
type ConfusionMatrix struct {
	k      int
	counts [][]int64
	total  int64
}

// NewConfusionMatrix creates a k-class confusion matrix (k >= 2).
func NewConfusionMatrix(k int) *ConfusionMatrix {
	if k < 2 {
		panic(fmt.Sprintf("eval: confusion matrix needs >= 2 classes, got %d", k))
	}
	counts := make([][]int64, k)
	for i := range counts {
		counts[i] = make([]int64, k)
	}
	return &ConfusionMatrix{k: k, counts: counts}
}

// Add records one classified instance.
func (m *ConfusionMatrix) Add(trueClass, predClass int) {
	if trueClass < 0 || trueClass >= m.k || predClass < 0 || predClass >= m.k {
		return
	}
	m.counts[trueClass][predClass]++
	m.total++
}

// AddN records n classified instances at once (checkpoint restore).
func (m *ConfusionMatrix) AddN(trueClass, predClass int, n int64) {
	if trueClass < 0 || trueClass >= m.k || predClass < 0 || predClass >= m.k || n <= 0 {
		return
	}
	m.counts[trueClass][predClass] += n
	m.total += n
}

// Merge folds another matrix of the same shape into this one.
func (m *ConfusionMatrix) Merge(other *ConfusionMatrix) {
	if other == nil || other.k != m.k {
		return
	}
	for i := 0; i < m.k; i++ {
		for j := 0; j < m.k; j++ {
			m.counts[i][j] += other.counts[i][j]
		}
	}
	m.total += other.total
}

// Reset zeroes all counts.
func (m *ConfusionMatrix) Reset() {
	for i := range m.counts {
		for j := range m.counts[i] {
			m.counts[i][j] = 0
		}
	}
	m.total = 0
}

// Clone returns a deep copy.
func (m *ConfusionMatrix) Clone() *ConfusionMatrix {
	cp := NewConfusionMatrix(m.k)
	cp.Merge(m)
	return cp
}

// NumClasses returns k.
func (m *ConfusionMatrix) NumClasses() int { return m.k }

// Total returns the number of instances recorded.
func (m *ConfusionMatrix) Total() int64 { return m.total }

// Count returns the count for (trueClass, predClass).
func (m *ConfusionMatrix) Count(trueClass, predClass int) int64 {
	return m.counts[trueClass][predClass]
}

// ClassSupport returns how many instances of class c were observed.
func (m *ConfusionMatrix) ClassSupport(c int) int64 {
	var s int64
	for j := 0; j < m.k; j++ {
		s += m.counts[c][j]
	}
	return s
}

// Accuracy returns the fraction of correctly classified instances.
func (m *ConfusionMatrix) Accuracy() float64 {
	if m.total == 0 {
		return 0
	}
	var correct int64
	for i := 0; i < m.k; i++ {
		correct += m.counts[i][i]
	}
	return float64(correct) / float64(m.total)
}

// Precision returns the precision of class c: TP / (TP + FP).
// Classes never predicted have precision 0.
func (m *ConfusionMatrix) Precision(c int) float64 {
	var predicted int64
	for i := 0; i < m.k; i++ {
		predicted += m.counts[i][c]
	}
	if predicted == 0 {
		return 0
	}
	return float64(m.counts[c][c]) / float64(predicted)
}

// Recall returns the recall of class c: TP / (TP + FN).
// Classes never observed have recall 0.
func (m *ConfusionMatrix) Recall(c int) float64 {
	support := m.ClassSupport(c)
	if support == 0 {
		return 0
	}
	return float64(m.counts[c][c]) / float64(support)
}

// F1 returns the harmonic mean of precision and recall for class c.
func (m *ConfusionMatrix) F1(c int) float64 {
	p, r := m.Precision(c), m.Recall(c)
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// WeightedPrecision returns support-weighted average precision, the
// multi-class summary WEKA and the paper report.
func (m *ConfusionMatrix) WeightedPrecision() float64 {
	return m.weightedMetric(m.Precision)
}

// WeightedRecall returns support-weighted average recall. For single-label
// classification this equals accuracy.
func (m *ConfusionMatrix) WeightedRecall() float64 {
	return m.weightedMetric(m.Recall)
}

// WeightedF1 returns support-weighted average F1.
func (m *ConfusionMatrix) WeightedF1() float64 {
	return m.weightedMetric(m.F1)
}

// MacroF1 returns the unweighted average F1 over classes.
func (m *ConfusionMatrix) MacroF1() float64 {
	s := 0.0
	for c := 0; c < m.k; c++ {
		s += m.F1(c)
	}
	return s / float64(m.k)
}

// Kappa returns Cohen's kappa statistic: chance-corrected agreement, the
// metric MOA reports alongside accuracy because plain accuracy flatters
// classifiers on imbalanced streams (exactly the minority-class situation
// of aggression detection). 1 = perfect, 0 = no better than chance.
func (m *ConfusionMatrix) Kappa() float64 {
	if m.total == 0 {
		return 0
	}
	n := float64(m.total)
	po := m.Accuracy()
	pe := 0.0
	for c := 0; c < m.k; c++ {
		var predicted int64
		for i := 0; i < m.k; i++ {
			predicted += m.counts[i][c]
		}
		pe += (float64(m.ClassSupport(c)) / n) * (float64(predicted) / n)
	}
	if pe >= 1 {
		return 0
	}
	return (po - pe) / (1 - pe)
}

func (m *ConfusionMatrix) weightedMetric(f func(int) float64) float64 {
	if m.total == 0 {
		return 0
	}
	s := 0.0
	for c := 0; c < m.k; c++ {
		s += f(c) * float64(m.ClassSupport(c))
	}
	return s / float64(m.total)
}

// Report bundles the headline metrics (the rows of Table II, plus Cohen's
// kappa for imbalance-aware reading).
type Report struct {
	Accuracy  float64 `json:"accuracy"`
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	F1        float64 `json:"f1"`
	Kappa     float64 `json:"kappa"`
	Instances int64   `json:"instances"`
}

// Summary extracts a Report using weighted multi-class averages.
func (m *ConfusionMatrix) Summary() Report {
	return Report{
		Accuracy:  m.Accuracy(),
		Precision: m.WeightedPrecision(),
		Recall:    m.WeightedRecall(),
		F1:        m.WeightedF1(),
		Kappa:     m.Kappa(),
		Instances: m.total,
	}
}

// String renders the matrix with row = true class, column = predicted.
func (m *ConfusionMatrix) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "confusion (%d classes, %d instances)\n", m.k, m.total)
	for i := 0; i < m.k; i++ {
		for j := 0; j < m.k; j++ {
			fmt.Fprintf(&b, "%8d", m.counts[i][j])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
