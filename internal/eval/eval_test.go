package eval

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"redhanded/internal/ml"
)

func TestConfusionBasics(t *testing.T) {
	m := NewConfusionMatrix(2)
	// 8 TP(0), 2 confused 0->1, 1 confused 1->0, 9 TP(1)
	for i := 0; i < 8; i++ {
		m.Add(0, 0)
	}
	for i := 0; i < 2; i++ {
		m.Add(0, 1)
	}
	m.Add(1, 0)
	for i := 0; i < 9; i++ {
		m.Add(1, 1)
	}
	if m.Total() != 20 {
		t.Fatalf("total = %d", m.Total())
	}
	if acc := m.Accuracy(); math.Abs(acc-0.85) > 1e-12 {
		t.Fatalf("accuracy = %v, want 0.85", acc)
	}
	// class 0: precision 8/9, recall 8/10
	if p := m.Precision(0); math.Abs(p-8.0/9) > 1e-12 {
		t.Fatalf("precision(0) = %v", p)
	}
	if r := m.Recall(0); math.Abs(r-0.8) > 1e-12 {
		t.Fatalf("recall(0) = %v", r)
	}
	f1 := m.F1(0)
	want := 2 * (8.0 / 9) * 0.8 / ((8.0 / 9) + 0.8)
	if math.Abs(f1-want) > 1e-12 {
		t.Fatalf("f1(0) = %v, want %v", f1, want)
	}
}

func TestConfusionEmptyClassMetrics(t *testing.T) {
	m := NewConfusionMatrix(3)
	m.Add(0, 0)
	if m.Precision(2) != 0 || m.Recall(2) != 0 || m.F1(2) != 0 {
		t.Fatalf("metrics of absent class should be 0")
	}
}

func TestWeightedRecallEqualsAccuracy(t *testing.T) {
	f := func(pairsRaw []uint8) bool {
		m := NewConfusionMatrix(3)
		for _, p := range pairsRaw {
			m.Add(int(p)%3, int(p/3)%3)
		}
		if m.Total() == 0 {
			return true
		}
		return math.Abs(m.WeightedRecall()-m.Accuracy()) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMetricBoundsProperty(t *testing.T) {
	f := func(pairsRaw []uint8) bool {
		m := NewConfusionMatrix(3)
		for _, p := range pairsRaw {
			m.Add(int(p)%3, int(p/3)%3)
		}
		vals := []float64{
			m.Accuracy(), m.WeightedPrecision(), m.WeightedRecall(),
			m.WeightedF1(), m.MacroF1(),
		}
		for c := 0; c < 3; c++ {
			vals = append(vals, m.Precision(c), m.Recall(c), m.F1(c))
		}
		for _, v := range vals {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConfusionMergePreservesCounts(t *testing.T) {
	a := NewConfusionMatrix(2)
	b := NewConfusionMatrix(2)
	a.Add(0, 0)
	a.Add(1, 0)
	b.Add(1, 1)
	a.Merge(b)
	if a.Total() != 3 || a.Count(1, 1) != 1 || a.Count(1, 0) != 1 {
		t.Fatalf("merge wrong: %v", a)
	}
	// Shape mismatch is ignored.
	a.Merge(NewConfusionMatrix(3))
	if a.Total() != 3 {
		t.Fatalf("mismatched merge altered counts")
	}
}

func TestConfusionIgnoresOutOfRange(t *testing.T) {
	m := NewConfusionMatrix(2)
	m.Add(-1, 0)
	m.Add(0, 5)
	if m.Total() != 0 {
		t.Fatalf("out-of-range pairs recorded")
	}
}

func TestConfusionResetAndClone(t *testing.T) {
	m := NewConfusionMatrix(2)
	m.Add(0, 0)
	cp := m.Clone()
	m.Reset()
	if m.Total() != 0 {
		t.Fatalf("reset failed")
	}
	if cp.Total() != 1 {
		t.Fatalf("clone affected by reset")
	}
}

func TestConfusionPanicsOnTinyK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("k=1 did not panic")
		}
	}()
	NewConfusionMatrix(1)
}

func TestConfusionString(t *testing.T) {
	m := NewConfusionMatrix(2)
	m.Add(0, 1)
	if !strings.Contains(m.String(), "2 classes") {
		t.Fatalf("String() lacks header: %q", m.String())
	}
}

func TestSummaryReport(t *testing.T) {
	m := NewConfusionMatrix(2)
	for i := 0; i < 90; i++ {
		m.Add(0, 0)
	}
	for i := 0; i < 10; i++ {
		m.Add(1, 1)
	}
	r := m.Summary()
	if r.Accuracy != 1 || r.F1 != 1 || r.Instances != 100 {
		t.Fatalf("perfect classifier summary wrong: %+v", r)
	}
}

func TestKappa(t *testing.T) {
	// Perfect agreement: kappa 1.
	m := NewConfusionMatrix(2)
	m.AddN(0, 0, 50)
	m.AddN(1, 1, 50)
	if k := m.Kappa(); math.Abs(k-1) > 1e-12 {
		t.Fatalf("perfect kappa = %v", k)
	}
	// Majority guessing on a 90/10 imbalance: high accuracy, kappa 0.
	m = NewConfusionMatrix(2)
	m.AddN(0, 0, 90)
	m.AddN(1, 0, 10)
	if acc := m.Accuracy(); acc != 0.9 {
		t.Fatalf("setup wrong: acc %v", acc)
	}
	if k := m.Kappa(); math.Abs(k) > 1e-12 {
		t.Fatalf("majority-guess kappa = %v, want 0", k)
	}
	// Empty matrix.
	if k := NewConfusionMatrix(2).Kappa(); k != 0 {
		t.Fatalf("empty kappa = %v", k)
	}
}

func TestAddN(t *testing.T) {
	m := NewConfusionMatrix(2)
	m.AddN(0, 1, 5)
	m.AddN(0, 1, 0)  // no-op
	m.AddN(0, 1, -3) // no-op
	m.AddN(5, 0, 2)  // out of range
	if m.Total() != 5 || m.Count(0, 1) != 5 {
		t.Fatalf("AddN wrong: total %d", m.Total())
	}
}

func TestPrequentialCurve(t *testing.T) {
	p := NewPrequential(2, 10)
	rng := ml.NewRNG(1)
	for i := 0; i < 100; i++ {
		c := rng.Intn(2)
		p.Record(c, c) // always correct
	}
	curve := p.Curve()
	if len(curve) != 10 {
		t.Fatalf("curve has %d points, want 10", len(curve))
	}
	for _, pt := range curve {
		if pt.Value != 1 {
			t.Fatalf("perfect predictions should give F1=1 at %d, got %v", pt.Instances, pt.Value)
		}
	}
	if curve[9].Instances != 100 {
		t.Fatalf("last point at %d, want 100", curve[9].Instances)
	}
}

func TestPrequentialDisabledCurve(t *testing.T) {
	p := NewPrequential(2, 0)
	p.Record(0, 0)
	if len(p.Curve()) != 0 {
		t.Fatalf("sampleStep=0 should collect no curve")
	}
}

func TestPrequentialCustomMetric(t *testing.T) {
	p := NewPrequential(2, 1)
	p.SetMetric((*ConfusionMatrix).Accuracy)
	p.Record(0, 1)
	p.Record(0, 0)
	curve := p.Curve()
	if curve[0].Value != 0 || curve[1].Value != 0.5 {
		t.Fatalf("accuracy curve wrong: %+v", curve)
	}
}

func TestWindowedRate(t *testing.T) {
	w := NewWindowedRate(4)
	if w.Rate() != 0 {
		t.Fatalf("empty rate = %v", w.Rate())
	}
	w.Add(true)
	w.Add(false)
	if r := w.Rate(); r != 0.5 {
		t.Fatalf("rate = %v, want 0.5", r)
	}
	w.Add(true)
	w.Add(true)
	if r := w.Rate(); r != 0.75 {
		t.Fatalf("rate = %v, want 0.75", r)
	}
	// Window slides: the initial true is evicted.
	w.Add(false)
	w.Add(false)
	if r := w.Rate(); r != 0.5 {
		t.Fatalf("slid rate = %v, want 0.5", r)
	}
}

func TestWindowedRateAlwaysInRange(t *testing.T) {
	f := func(bits []bool) bool {
		w := NewWindowedRate(8)
		for _, b := range bits {
			w.Add(b)
			if r := w.Rate(); r < 0 || r > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
