package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// The annotation grammar. Directives are ordinary comments:
//
//	//redvet:noalloc [gate=BenchName]   on a func doc, or on the line
//	                                    above a statement (region form)
//	//redvet:wire                       on a wire struct type decl
//	//redvet:wirepair decode=FuncName   on an encode func; symmetry is
//	                                    checked against the named decoder
//	//redvet:packed                     on a struct whose layout must be
//	                                    padding-optimal
//	//redvet:lockorder A < B            package-scope: lock field A may
//	                                    be held while acquiring field B
//	//redvet:ignore <check> <reason>    suppress <check> on this line or
//	                                    the line below; reason mandatory
const directivePrefix = "//redvet:"

// Region is one noalloc-annotated function body or statement.
type Region struct {
	Pkg       *Package
	File      string
	Node      ast.Node      // FuncDecl body or the annotated statement
	Func      *ast.FuncDecl // enclosing function
	FuncName  string        // "pkgpath.(*Recv).Name" / "pkgpath.Name"
	Gate      string        // gate=... attribute, "" if absent
	FuncLevel bool          // whole function vs statement region
}

// WirePair names an encode function and its paired decode function.
type WirePair struct {
	Pkg    *Package
	Encode *ast.FuncDecl
	Decode string
}

// PackedType is one //redvet:packed struct declaration.
type PackedType struct {
	Pkg  *Package
	Spec *ast.TypeSpec
}

type fileLine struct {
	File string
	Line int
}

// Index is the repo-wide annotation index, built once per Run so checks
// in one package can see annotations declared in another (wire structs
// are referenced cross-package).
type Index struct {
	Regions         []Region
	WireTypes       map[string]bool // qualified "pkgpath.Name"
	WireDecls       []PackedType    // wire structs declared in targets
	WirePairs       []WirePair
	PackedTypes     []PackedType
	LockOrder       map[string]bool     // "heldField<nextField"
	Ignores         map[fileLine]string // position -> suppressed check
	DirectiveErrors []Diagnostic
}

// RegionsFor returns the noalloc regions declared in pkg.
func (ix *Index) RegionsFor(pkg *Package) []Region {
	var out []Region
	for _, r := range ix.Regions {
		if r.Pkg == pkg {
			out = append(out, r)
		}
	}
	return out
}

type rawDirective struct {
	kind string // "noalloc", "wire", ...
	args string
	pos  token.Pos
	file string
	line int
}

// BuildIndex scans every target package for redvet directives and
// resolves each one to the declaration or statement it governs.
func BuildIndex(prog *Program) *Index {
	ix := &Index{
		WireTypes: make(map[string]bool),
		LockOrder: make(map[string]bool),
		Ignores:   make(map[fileLine]string),
	}
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			ix.indexFile(prog, pkg, f)
		}
	}
	return ix
}

func (ix *Index) indexFile(prog *Program, pkg *Package, f *ast.File) {
	byComment := make(map[*ast.Comment]rawDirective)
	var all []rawDirective
	consumed := make(map[token.Pos]bool)

	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, directivePrefix) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, directivePrefix)
			kind, args, _ := strings.Cut(rest, " ")
			p := prog.Fset.Position(c.Pos())
			d := rawDirective{kind: kind, args: strings.TrimSpace(args), pos: c.Pos(), file: p.Filename, line: p.Line}
			byComment[c] = d
			all = append(all, d)
		}
	}
	if len(all) == 0 {
		return
	}

	errf := func(d rawDirective, format string, args ...any) {
		ix.DirectiveErrors = append(ix.DirectiveErrors, Diagnostic{
			Pos:   prog.Fset.Position(d.pos),
			Check: "directive",
			Msg:   fmt.Sprintf(format, args...),
		})
	}

	// Position-scope directives need no declaration to attach to.
	for _, d := range all {
		switch d.kind {
		case "ignore":
			check, reason, _ := strings.Cut(d.args, " ")
			if check == "" || strings.TrimSpace(reason) == "" {
				errf(d, "ignore needs a check name and a reason: //redvet:ignore <check> <reason>")
			} else {
				ix.Ignores[fileLine{d.file, d.line}] = check
			}
			consumed[d.pos] = true
		case "lockorder":
			held, next, ok := strings.Cut(d.args, "<")
			held, next = strings.TrimSpace(held), strings.TrimSpace(next)
			if !ok || held == "" || next == "" {
				errf(d, "lockorder wants //redvet:lockorder <heldField> < <nextField>")
			} else {
				ix.LockOrder[held+"<"+next] = true
			}
			consumed[d.pos] = true
		}
	}

	// Doc-scope directives attach to the decl whose doc comment holds them.
	docDirectives := func(doc *ast.CommentGroup) []rawDirective {
		if doc == nil {
			return nil
		}
		var out []rawDirective
		for _, c := range doc.List {
			if d, ok := byComment[c]; ok && !consumed[d.pos] {
				out = append(out, d)
			}
		}
		return out
	}

	for _, decl := range f.Decls {
		switch decl := decl.(type) {
		case *ast.FuncDecl:
			for _, d := range docDirectives(decl.Doc) {
				switch d.kind {
				case "noalloc":
					if decl.Body == nil {
						errf(d, "noalloc on a function with no body")
						break
					}
					ix.Regions = append(ix.Regions, Region{
						Pkg: pkg, File: d.file, Node: decl.Body, Func: decl,
						FuncName: qualifiedFuncName(pkg, decl), Gate: attr(d.args, "gate"),
						FuncLevel: true,
					})
				case "wirepair":
					dec := attr(d.args, "decode")
					if dec == "" {
						errf(d, "wirepair wants //redvet:wirepair decode=<FuncName>")
						break
					}
					ix.WirePairs = append(ix.WirePairs, WirePair{Pkg: pkg, Encode: decl, Decode: dec})
				default:
					errf(d, "directive %q cannot annotate a function", d.kind)
				}
				consumed[d.pos] = true
			}
		case *ast.GenDecl:
			if decl.Tok != token.TYPE {
				continue
			}
			for _, spec := range decl.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				docs := docDirectives(ts.Doc)
				if len(decl.Specs) == 1 {
					docs = append(docs, docDirectives(decl.Doc)...)
				}
				for _, d := range docs {
					switch d.kind {
					case "wire":
						if _, isStruct := ts.Type.(*ast.StructType); !isStruct {
							errf(d, "wire annotates struct types only")
							break
						}
						ix.WireTypes[pkg.ImportPath+"."+ts.Name.Name] = true
						ix.WireDecls = append(ix.WireDecls, PackedType{Pkg: pkg, Spec: ts})
					case "packed":
						if _, isStruct := ts.Type.(*ast.StructType); !isStruct {
							errf(d, "packed annotates struct types only")
							break
						}
						ix.PackedTypes = append(ix.PackedTypes, PackedType{Pkg: pkg, Spec: ts})
					default:
						errf(d, "directive %q cannot annotate a type", d.kind)
					}
					consumed[d.pos] = true
				}
			}
		}
	}

	// Remaining noalloc directives are statement regions: they govern the
	// statement starting on the next line.
	for _, d := range all {
		if consumed[d.pos] {
			continue
		}
		if d.kind != "noalloc" {
			errf(d, "unknown or unattached directive %q", d.kind)
			continue
		}
		stmt, fn := findStmtAtLine(prog, f, d.file, d.line+1)
		if stmt == nil {
			errf(d, "noalloc region directive must sit directly above a statement")
			continue
		}
		ix.Regions = append(ix.Regions, Region{
			Pkg: pkg, File: d.file, Node: stmt, Func: fn,
			FuncName: qualifiedFuncName(pkg, fn), Gate: attr(d.args, "gate"),
		})
	}
}

// findStmtAtLine locates the outermost statement starting on line.
func findStmtAtLine(prog *Program, f *ast.File, file string, line int) (ast.Stmt, *ast.FuncDecl) {
	var found ast.Stmt
	var inFunc *ast.FuncDecl
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if found != nil {
				return false
			}
			if s, ok := n.(ast.Stmt); ok {
				p := prog.Fset.Position(s.Pos())
				if p.Filename == file && p.Line == line {
					found, inFunc = s, fd
					return false
				}
			}
			return true
		})
		if found != nil {
			break
		}
	}
	return found, inFunc
}

func qualifiedFuncName(pkg *Package, fd *ast.FuncDecl) string {
	if fd == nil {
		return pkg.ImportPath + ".?"
	}
	name := fd.Name.Name
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		switch t := fd.Recv.List[0].Type.(type) {
		case *ast.StarExpr:
			if id, ok := t.X.(*ast.Ident); ok {
				name = "(*" + id.Name + ")." + name
			}
		case *ast.Ident:
			name = "(" + t.Name + ")." + name
		}
	}
	return pkg.ImportPath + "." + name
}

// attr extracts key=value from a directive argument string.
func attr(args, key string) string {
	for _, f := range strings.Fields(args) {
		if v, ok := strings.CutPrefix(f, key+"="); ok {
			return v
		}
	}
	return ""
}
