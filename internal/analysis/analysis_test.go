package analysis

import (
	"os"
	"regexp"
	"strings"
	"testing"
)

// The fixture harness: each package under testdata/src seeds violations
// for one check, and `// want "regex"` comments on the violating lines
// state the diagnostics the analyzer must produce there. Every want
// must be matched by a diagnostic on its line, and every diagnostic
// must be claimed by a want — missing and surplus findings both fail.
//
// Directive errors (check "directive") cannot carry a want comment —
// the directive comment owns the whole line — so each fixture declares
// them as message substrings instead.

var (
	wantLineRE = regexp.MustCompile(`//\s*want\s+(.+)$`)
	wantArgRE  = regexp.MustCompile(`"([^"]*)"`)
)

func TestFixtures(t *testing.T) {
	tests := []struct {
		fixture    string
		checks     string
		directives []string // expected "directive" diagnostics (substrings)
	}{
		{fixture: "noalloc", checks: "noalloc"},
		{fixture: "lockorder", checks: "lockorder"},
		{fixture: "wirecompat", checks: "wirecompat"},
		{fixture: "hotpath", checks: "hotpathhygiene"},
		{fixture: "fieldalign", checks: "fieldalign"},
		{fixture: "ignore", checks: "noalloc", directives: []string{
			"ignore needs a check name and a reason",
			`unknown or unattached directive "frobnicate"`,
		}},
	}
	for _, tt := range tests {
		t.Run(tt.fixture, func(t *testing.T) {
			runFixtureTest(t, tt.fixture, tt.checks, tt.directives)
		})
	}
}

func runFixtureTest(t *testing.T, fixture, checks string, directives []string) {
	t.Helper()
	prog, err := Load(".", []string{"./testdata/src/" + fixture})
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}
	as, err := ByName(checks)
	if err != nil {
		t.Fatalf("resolving checks %q: %v", checks, err)
	}
	diags := Run(prog, as)

	type key struct {
		file string
		line int
	}
	type want struct {
		re      *regexp.Regexp
		matched bool
	}
	wants := make(map[key][]*want)
	for _, pkg := range prog.Pkgs {
		for _, path := range pkg.GoFiles {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("reading fixture file: %v", err)
			}
			for i, text := range strings.Split(string(data), "\n") {
				m := wantLineRE.FindStringSubmatch(text)
				if m == nil {
					continue
				}
				k := key{path, i + 1}
				for _, arg := range wantArgRE.FindAllStringSubmatch(m[1], -1) {
					re, err := regexp.Compile(arg[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", path, i+1, arg[1], err)
					}
					wants[k] = append(wants[k], &want{re: re})
				}
			}
		}
	}

	var directiveDiags []Diagnostic
	for _, d := range diags {
		if d.Check == "directive" {
			directiveDiags = append(directiveDiags, d)
			continue
		}
		claimed := false
		for _, w := range wants[key{d.Pos.Filename, d.Pos.Line}] {
			if !w.matched && w.re.MatchString(d.Msg) {
				w.matched = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for k, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: no diagnostic matched want %q", k.file, k.line, w.re)
			}
		}
	}

	for _, sub := range directives {
		found := false
		for _, d := range directiveDiags {
			if strings.Contains(d.Msg, sub) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no directive error containing %q (got %v)", sub, directiveDiags)
		}
	}
	if len(directiveDiags) != len(directives) {
		t.Errorf("got %d directive errors, want %d: %v", len(directiveDiags), len(directives), directiveDiags)
	}
}

// TestIgnoreRemovalDetected proves the suppression is load-bearing: the
// same fixture with its reasoned ignore directives stripped must
// produce strictly more findings.
func TestIgnoreRemovalDetected(t *testing.T) {
	prog, err := Load(".", []string{"./testdata/src/ignore"})
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	as, _ := ByName("noalloc")
	baseline := 0
	for _, d := range Run(prog, as) {
		if d.Check == "noalloc" {
			baseline++
		}
	}
	// Strip the Ignores index and re-run the raw check: every seeded
	// make() must now surface.
	index := BuildIndex(prog)
	index.Ignores = map[fileLine]string{}
	var diags []Diagnostic
	for _, pkg := range prog.Pkgs {
		pass := &Pass{Prog: prog, Pkg: pkg, Index: index, Analyzer: NoAlloc, diags: &diags}
		NoAlloc.Run(pass)
	}
	unsuppressed := len(index.filterIgnored(diags))
	if unsuppressed <= baseline {
		t.Fatalf("stripping ignores found %d noalloc diagnostics, baseline %d: suppression is not load-bearing", unsuppressed, baseline)
	}
}

// TestByName rejects unknown checks and preserves order.
func TestByName(t *testing.T) {
	as, err := ByName("lockorder,noalloc")
	if err != nil || len(as) != 2 || as[0].Name != "lockorder" || as[1].Name != "noalloc" {
		t.Fatalf("ByName(lockorder,noalloc) = %v, %v", as, err)
	}
	if _, err := ByName("nosuchcheck"); err == nil {
		t.Fatal("ByName accepted an unknown check")
	}
	all, err := ByName("")
	if err != nil || len(all) != len(All) {
		t.Fatalf("ByName(\"\") = %v, %v", all, err)
	}
}

// TestRepoClean is the self-test the CI job runs: the repo's own
// annotated hot paths must be clean under every check.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide load skipped in -short mode")
	}
	prog, err := Load("../..", []string{"./..."})
	if err != nil {
		t.Fatalf("loading repo: %v", err)
	}
	diags := Run(prog, All)
	for _, d := range diags {
		t.Errorf("repo not redvet-clean: %s", d)
	}
	// The annotation surface the suite proves things about must exist:
	// a repo where the directives were deleted would pass vacuously.
	index := BuildIndex(prog)
	if len(index.Regions) < 10 {
		t.Errorf("only %d noalloc regions indexed; annotations missing", len(index.Regions))
	}
	if len(index.WireTypes) < 4 {
		t.Errorf("only %d wire types indexed; annotations missing", len(index.WireTypes))
	}
	if len(index.PackedTypes) < 2 {
		t.Errorf("only %d packed types indexed; annotations missing", len(index.PackedTypes))
	}
	gates := make(map[string]bool)
	for _, r := range index.Regions {
		if r.Gate != "" {
			gates[r.Gate] = true
		}
	}
	for _, g := range []string{"FeaturePathFast", "FeaturePathScan", "UserstateObserveHot", "SpanLifecycle", "SegmentRead"} {
		if !gates[g] {
			t.Errorf("no noalloc region carries gate=%s", g)
		}
	}
}
