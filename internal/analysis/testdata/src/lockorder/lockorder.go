// Package lockorder seeds stripe-discipline violations for the
// lockorder analyzer: double-lock, same-family stripe inversion,
// undeclared cross-family order, sends and fsync-class calls under a
// lock, and multi-return unlock leaks — plus the sanctioned idioms
// (declared order, non-blocking select send, defer-unlock).
package lockorder

import "sync"

type shard struct {
	mu  sync.Mutex
	wmu sync.Mutex
	ch  chan int
	n   int
}

type table struct {
	shards [4]shard
	global sync.Mutex
}

type file struct{}

func (file) Sync() error { return nil }

type pipe struct{}

func (*pipe) ProcessBatch() {}

//redvet:lockorder global < mu

func doubleLock(s *shard) {
	s.mu.Lock()
	s.mu.Lock() // want "locked twice on the same path"
	s.mu.Unlock()
	s.mu.Unlock()
}

func stripeViolation(t *table) {
	t.shards[0].mu.Lock()
	t.shards[1].mu.Lock() // want "same stripe family"
	t.shards[1].mu.Unlock()
	t.shards[0].mu.Unlock()
}

func undeclaredOrder(s *shard) {
	s.mu.Lock()
	s.wmu.Lock() // want "without a declared order"
	s.wmu.Unlock()
	s.mu.Unlock()
}

func declaredOrderOK(t *table) {
	t.global.Lock()
	t.shards[0].mu.Lock()
	t.shards[0].mu.Unlock()
	t.global.Unlock()
}

func sendUnderLock(s *shard) {
	s.mu.Lock()
	s.ch <- 1 // want "channel send while holding"
	s.mu.Unlock()
}

func nonBlockingSendOK(s *shard) {
	s.mu.Lock()
	select {
	case s.ch <- 1:
	default:
	}
	s.mu.Unlock()
}

func fsyncUnderLock(s *shard, f file) {
	s.mu.Lock()
	f.Sync() // want "call to Sync while holding"
	s.mu.Unlock()
}

func processUnderLock(s *shard, p *pipe) {
	s.mu.Lock()
	p.ProcessBatch() // want "call to ProcessBatch while holding"
	s.mu.Unlock()
}

func leakyReturn(s *shard) int {
	s.mu.Lock()
	if s.n > 0 {
		return s.n // want "return while holding"
	}
	s.mu.Unlock()
	return 0
}

func deferOK(s *shard) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n > 0 {
		return s.n
	}
	return 0
}

func fallOffEnd(s *shard) {
	s.mu.Lock()
} // want "exits with s.mu held"
