// Package noalloc seeds one violation per allocating construct the
// noalloc analyzer recognizes, plus the negative cases the carve-outs
// must keep legal. The trailing want comments are matched against
// diagnostics by the harness in analysis_test.go.
package noalloc

type buf struct {
	data []byte
	n    int
}

type parseError struct{ msg string }

func (e *parseError) Error() string { return e.msg }

func sink(v any) { _ = v }

func work() {}

//redvet:noalloc
func violations(b *buf, s string, x int) int {
	m := make([]byte, 8) // want "make allocates"
	p := new(buf)        // want "new allocates"
	_ = p
	q := &buf{} // want "escapes to the heap"
	_ = q
	sl := []int{1, 2, 3} // want "slice literal allocates"
	_ = sl
	mp := map[string]int{} // want "map literal allocates"
	_ = mp
	s2 := s + "x" // want "string concatenation allocates"
	_ = s2
	bs := []byte(s) // want "conversion from string allocates"
	_ = bs
	str := string(b.data) // want "conversion to string allocates"
	_ = str
	f := func() {} // want "closure literal allocates"
	_ = f
	go work() // want "go statement allocates"
	sink(x)   // want "boxes it on the heap"
	var t []byte
	t = append(m, 1) // want "append growth escapes"
	_ = t
	return x
}

//redvet:noalloc
func clean(b *buf, s string) int {
	b.n++
	b.data = append(b.data, s...) // amortized reuse: sanctioned
	sink(&b.n)                    // pointers fit the interface word, no box
	return len(b.data)
}

//redvet:noalloc
func coldOK(b *buf) (int, error) {
	if b.n < 0 {
		// Error paths are cold: allocation here is failure handling.
		return 0, &parseError{msg: "negative length"}
	}
	return b.n, nil
}

func partialBad(b *buf) {
	warm := make([]byte, 4) // outside any region: legal
	_ = warm
	//redvet:noalloc
	x := make([]int, b.n) // want "make allocates"
	_ = x
}
