// Package fieldalign seeds a //redvet:packed struct whose field order
// wastes padding (bool/int64 interleaving costs 8 bytes on 64-bit) next
// to the reordered layout that is padding-optimal.
package fieldalign

//redvet:packed
type badLayout struct { // want "removable padding"
	a bool
	b int64
	c bool
	d int64
}

//redvet:packed
type goodLayout struct {
	b int64
	d int64
	a bool
	c bool
}

func use() (badLayout, goodLayout) { return badLayout{}, goodLayout{} }
