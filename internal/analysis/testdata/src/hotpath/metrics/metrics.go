// Package metrics mirrors the repo's metrics registry shape (a Registry
// type in a package whose path ends in "metrics") so the hygiene check's
// per-event-lookup rule can be exercised from the fixture.
package metrics

type Counter struct{ n int64 }

func (c *Counter) Add(d int64) { c.n += d }

type Registry struct{}

func (r *Registry) Counter(name string) *Counter { _ = name; return &Counter{} }
