// Package hotpath seeds hygiene violations: wall-clock reads, fmt
// formatting, map iteration, and per-event metrics-registry lookups
// inside a noalloc region, plus the package-wide atomic-copy rules.
package hotpath

import (
	"fmt"
	"sync/atomic"
	"time"

	"redhanded/internal/analysis/testdata/src/hotpath/metrics"
)

type tracer struct {
	reg   *metrics.Registry
	hits  *metrics.Counter
	seen  map[string]int
	count atomic.Int64
}

func newTracer(reg *metrics.Registry) *tracer {
	// Construction time: registry lookups and map allocation are legal.
	return &tracer{reg: reg, hits: reg.Counter("hits"), seen: make(map[string]int)}
}

//redvet:noalloc
func hot(t *tracer, name string) {
	now := time.Now() // want "time.Now in a hot path"
	_ = now
	s := fmt.Sprintf("%q", name) // want "fmt.Sprintf in a hot path"
	_ = s
	for k := range t.seen { // want "map iteration in a hot path"
		_ = k
	}
	t.reg.Counter(name).Add(1) // want "metrics registry lookup"
	t.hits.Add(1)              // pre-resolved handle: legal
	t.count.Add(1)             // method call on the atomic: legal
}

//redvet:noalloc
func noisy(x int) {
	println(x) // want "print/println in a hot path"
}

func copyAtomic(t *tracer) int64 {
	c := t.count // want "copies a sync/atomic value"
	ptr := &t.count
	_ = ptr
	return c.Load()
}

func byValue(c atomic.Int64) int64 { return c.Load() } // want "passed by value forks the counter"

func byPointer(c *atomic.Int64) int64 { return c.Load() }
