// Package ignore exercises the suppression grammar: a reasoned
// //redvet:ignore suppresses (line-above and same-line forms), naming
// the wrong check does not, the catch-all "all" form does, a missing
// reason is a hard directive error, and unknown directives are reported.
package ignore

//redvet:noalloc
func suppressedAbove() []byte {
	//redvet:ignore noalloc fixture demonstrates the line-above form
	b := make([]byte, 8)
	return b[:0]
}

//redvet:noalloc
func suppressedSameLine() []byte {
	b := make([]byte, 8) //redvet:ignore noalloc fixture demonstrates the same-line form
	return b[:0]
}

//redvet:noalloc
func suppressedAll() []byte {
	//redvet:ignore all fixture demonstrates the catch-all form
	b := make([]byte, 8)
	return b[:0]
}

//redvet:noalloc
func wrongCheck() []byte {
	//redvet:ignore lockorder naming another check leaves noalloc live
	b := make([]byte, 8) // want "make allocates"
	return b[:0]
}

//redvet:noalloc
func missingReason() []byte {
	//redvet:ignore noalloc
	b := make([]byte, 8) // want "make allocates"
	return b[:0]
}

//redvet:frobnicate detached directives with unknown kinds are reported

func anchor() {}
