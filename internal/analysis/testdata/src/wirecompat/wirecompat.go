// Package wirecompat seeds wire-format violations: an unkeyed literal
// of a //redvet:wire struct, wire structs with fields gob cannot
// round-trip, and a //redvet:wirepair whose encoder and decoder touch
// different field sets.
package wirecompat

//redvet:wire
type frame struct {
	Kind uint8
	Seq  int64
	Name string
}

//redvet:wire
type badWire struct { // want "has chan type" "has func type" "is an interface"
	C chan int
	F func()
	I interface{}
}

func makeFrames() []frame {
	good := frame{Kind: 1, Seq: 2, Name: "x"}
	bad := frame{1, 2, "y"} // want "unkeyed literal of wire struct"
	return []frame{good, bad}
}

type record struct {
	A int64
	B string
	C int64
}

// appendRecord writes A and B but decodeRecord also reads C: the field
// sets diverge, which is exactly the replay-corruption shape the
// symmetry check exists to catch.
//
//redvet:wirepair decode=decodeRecord
func appendRecord(dst []byte, r *record) []byte { // want "reads field C but appendRecord never writes it"
	dst = append(dst, byte(r.A))
	dst = append(dst, r.B...)
	return dst
}

func decodeRecord(b []byte, r *record) {
	r.A = int64(b[0])
	r.B = string(b[1:2])
	r.C = int64(b[2])
}

//redvet:wirepair decode=decodeSym
func encodeSym(dst []byte, r *record) []byte {
	dst = append(dst, byte(r.A), byte(r.C))
	dst = append(dst, r.B...)
	return dst
}

func decodeSym(b []byte, r *record) {
	r.A = int64(b[0])
	r.C = int64(b[1])
	r.B = string(b[2:])
}
