package analysis

import (
	"go/types"
	"sort"
)

// FieldAlign proves that //redvet:packed structs — the per-user record
// the CLOCK cache holds ~100k of, the span carried through the tracer,
// anything multiplied by a large population — carry no padding a field
// reordering would remove. Sizes come from the same gc sizing model the
// compiler uses, so the check agrees with unsafe.Sizeof pin tests.
var FieldAlign = &Analyzer{
	Name: "fieldalign",
	Doc:  "packed structs must have padding-optimal field order",
	Run:  runFieldAlign,
}

func runFieldAlign(pass *Pass) {
	for _, pt := range pass.Index.PackedTypes {
		if pt.Pkg != pass.Pkg {
			continue
		}
		obj := pass.Pkg.Info.Defs[pt.Spec.Name]
		if obj == nil {
			continue
		}
		st, ok := obj.Type().Underlying().(*types.Struct)
		if !ok || st.NumFields() == 0 {
			continue
		}
		cur := pass.Prog.Sizes.Sizeof(st)
		opt := optimalStructSize(pass.Prog.Sizes, st)
		if cur > opt {
			pass.Reportf(pt.Spec.Pos(), "packed struct %s is %d bytes; reordering fields by alignment reaches %d (%d bytes of removable padding)",
				pt.Spec.Name.Name, cur, opt, cur-opt)
		}
	}
}

// optimalStructSize computes the struct size under the padding-minimal
// field order: descending alignment, then descending size.
func optimalStructSize(sizes types.Sizes, st *types.Struct) int64 {
	type field struct{ size, align int64 }
	fields := make([]field, 0, st.NumFields())
	for i := 0; i < st.NumFields(); i++ {
		t := st.Field(i).Type()
		fields = append(fields, field{size: sizes.Sizeof(t), align: sizes.Alignof(t)})
	}
	sort.SliceStable(fields, func(i, j int) bool {
		if fields[i].align != fields[j].align {
			return fields[i].align > fields[j].align
		}
		return fields[i].size > fields[j].size
	})
	var off, maxAlign int64 = 0, 1
	for _, f := range fields {
		if f.align > maxAlign {
			maxAlign = f.align
		}
		off = roundUp(off, f.align)
		off += f.size
	}
	return roundUp(off, maxAlign)
}

func roundUp(x, a int64) int64 {
	if a <= 1 {
		return x
	}
	return (x + a - 1) / a * a
}
