package analysis

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
)

// builtinName returns the name of the builtin a call invokes, or "".
func builtinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

// exprString renders an expression compactly for identity comparison
// and diagnostics ("sh.mu", "s.buf[i]").
func exprString(e ast.Expr) string {
	var buf bytes.Buffer
	printer.Fprint(&buf, token.NewFileSet(), e)
	return buf.String()
}

func isString(t types.Type) bool {
	return isBasicKind(t, types.IsString)
}

func isBasicKind(t types.Type, info types.BasicInfo) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&info != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	e, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (e.Kind() == types.Byte || e.Kind() == types.Rune || e.Kind() == types.Uint8 || e.Kind() == types.Int32)
}

func typeLabel(info *types.Info, e ast.Expr) string {
	if t := info.TypeOf(e); t != nil {
		return t.String()
	}
	return exprString(e)
}

// namedPkgPath returns the defining package path and name of t if it is
// a (possibly pointer-wrapped) named type, else "", "".
func namedPkgPath(t types.Type) (pkgPath, name string) {
	if t == nil {
		return "", ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return "", ""
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return "", obj.Name()
	}
	return obj.Pkg().Path(), obj.Name()
}

// calleePkgFunc resolves a call to (package path, function/method name)
// when the callee is a plain identifier or selector. For methods the
// package is the receiver type's package.
func calleePkgFunc(info *types.Info, call *ast.CallExpr) (pkgPath, name string) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj := info.Uses[fun]; obj != nil && obj.Pkg() != nil {
			return obj.Pkg().Path(), obj.Name()
		}
		return "", fun.Name
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			// Method or field call: attribute to the receiver's package.
			if p, _ := namedPkgPath(sel.Recv()); p != "" {
				return p, fun.Sel.Name
			}
			return "", fun.Sel.Name
		}
		// Package-qualified call: fmt.Sprintf, time.Now, ...
		if obj := info.Uses[fun.Sel]; obj != nil && obj.Pkg() != nil {
			return obj.Pkg().Path(), obj.Name()
		}
		return "", fun.Sel.Name
	}
	return "", ""
}
