package analysis

import (
	"bufio"
	"bytes"
	"fmt"
	"go/token"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

// escapeLine matches one compiler escape-analysis diagnostic:
// "internal/text/fast.go:76:6: message".
var escapeLine = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*)$`)

// EscapeCheck is the opt-in `-escape` mode: it runs the real compiler's
// escape analysis (`go build -gcflags=-m`) over the program's patterns
// and reports any value the compiler moves to the heap from inside a
// //redvet:noalloc region. This cross-checks the syntactic noalloc
// analyzer against ground truth: the syntactic check explains *why*
// something allocates, the compiler check catches what syntax misses.
func EscapeCheck(prog *Program, index *Index) ([]Diagnostic, error) {
	args := append([]string{"build", "-gcflags=-m"}, prog.Patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = prog.Dir
	var out bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &out
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go build -gcflags=-m: %v\n%s", err, out.String())
	}

	// Precompute region line spans keyed by absolute file path. Each span
	// carries the region's cold (error-path) line ranges: the compiler
	// reports fmt.Errorf boxing and error-struct literals as heap escapes,
	// but the syntactic check exempts those paths, and escape mode must
	// honor the same carve-out or every error return fails the gate.
	type lineRange struct{ lo, hi int }
	type span struct {
		lo, hi int
		fn     string
		cold   []lineRange
	}
	regions := make(map[string][]span)
	for _, r := range index.Regions {
		start := prog.Fset.Position(r.Node.Pos())
		end := prog.Fset.Position(r.Node.End())
		s := span{lo: start.Line, hi: end.Line, fn: r.FuncName}
		for _, iv := range coldIntervalsInfo(r.Pkg.Info, r) {
			s.cold = append(s.cold, lineRange{
				prog.Fset.Position(iv.lo).Line,
				prog.Fset.Position(iv.hi).Line,
			})
		}
		regions[start.Filename] = append(regions[start.Filename], s)
	}

	var diags []Diagnostic
	sc := bufio.NewScanner(&out)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		m := escapeLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		msg := m[4]
		if !strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "moved to heap") {
			continue
		}
		file := m[1]
		if !filepath.IsAbs(file) {
			file = filepath.Join(prog.Dir, file)
		}
		line, _ := strconv.Atoi(m[2])
		for _, s := range regions[file] {
			if line >= s.lo && line <= s.hi {
				cold := false
				for _, cr := range s.cold {
					if line >= cr.lo && line <= cr.hi {
						cold = true
						break
					}
				}
				if cold {
					break
				}
				diags = append(diags, Diagnostic{
					Pos:   token.Position{Filename: file, Line: line},
					Check: "noalloc",
					Msg:   fmt.Sprintf("compiler escape analysis: %s (inside noalloc %s)", msg, s.fn),
				})
				break
			}
		}
	}
	return index.filterIgnored(diags), nil
}
