package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
)

// Program is a loaded, type-checked set of target packages sharing one
// FileSet. It is produced by Load and consumed by the analyzers.
type Program struct {
	Dir      string // module/working directory patterns were resolved in
	Patterns []string
	Fset     *token.FileSet
	Pkgs     []*Package
	Sizes    types.Sizes
}

// Package is one type-checked target package.
type Package struct {
	ImportPath string
	Dir        string
	GoFiles    []string // absolute paths, same order as Files
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listPkg is the subset of `go list -json` output the driver needs.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load resolves patterns with `go list -json -export -deps` and
// type-checks every non-dependency package from source, resolving
// imports through the compiler export data `go list` just produced.
// This keeps the module dependency-free: no go/packages, no x/tools.
func Load(dir string, patterns []string) (*Program, error) {
	args := append([]string{"list", "-json", "-export", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, errb.String())
	}

	exports := make(map[string]string)
	var targets []listPkg
	dec := json.NewDecoder(&out)
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		e, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(e)
	})
	sizes := types.SizesFor("gc", runtime.GOARCH)
	if sizes == nil {
		sizes = types.SizesFor("gc", "amd64")
	}

	prog := &Program{Dir: dir, Patterns: patterns, Fset: fset, Sizes: sizes}
	for _, t := range targets {
		pkg := &Package{ImportPath: t.ImportPath, Dir: t.Dir}
		for _, g := range t.GoFiles {
			abs := filepath.Join(t.Dir, g)
			f, err := parser.ParseFile(fset, abs, nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("parsing %s: %v", abs, err)
			}
			pkg.GoFiles = append(pkg.GoFiles, abs)
			pkg.Files = append(pkg.Files, f)
		}
		conf := types.Config{Importer: imp, Sizes: sizes}
		pkg.Info = &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		tp, err := conf.Check(t.ImportPath, fset, pkg.Files, pkg.Info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", t.ImportPath, err)
		}
		pkg.Types = tp
		prog.Pkgs = append(prog.Pkgs, pkg)
	}
	return prog, nil
}
