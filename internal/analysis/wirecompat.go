package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// WireCompat guards the wire formats: structs annotated //redvet:wire
// (gob frames in engine/transport, the tweet model, checkpoint DTOs)
// must be constructed with keyed literals everywhere in the repo —
// field order is wire-sensitive — and must not carry fields gob cannot
// round-trip. For //redvet:wirepair annotations, the set of fields the
// encoder writes must exactly equal the set the paired decoder reads:
// the symmetry is enforced structurally by diffing rooted field-access
// paths, so adding a field to one side without the other fails the
// build instead of corrupting replay.
var WireCompat = &Analyzer{
	Name: "wirecompat",
	Doc:  "keyed wire-struct literals; encodable field types; encode/decode field-set symmetry",
	Run:  runWireCompat,
}

func runWireCompat(pass *Pass) {
	checkKeyedLiterals(pass)
	checkWireFields(pass)
	checkWirePairs(pass)
}

// checkKeyedLiterals flags positional composite literals of any wire
// struct, wherever the literal appears.
func checkKeyedLiterals(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok || len(lit.Elts) == 0 {
				return true
			}
			p, name := namedPkgPath(info.TypeOf(lit))
			if p == "" || !pass.Index.WireTypes[p+"."+name] {
				return true
			}
			if _, keyed := lit.Elts[0].(*ast.KeyValueExpr); !keyed {
				pass.Reportf(lit.Pos(), "unkeyed literal of wire struct %s.%s: field order is wire-format-sensitive, use keyed fields", p, name)
			}
			return true
		})
	}
}

// checkWireFields validates field types of wire structs declared here.
func checkWireFields(pass *Pass) {
	for _, wd := range pass.Index.WireDecls {
		if wd.Pkg != pass.Pkg {
			continue
		}
		obj := pass.Pkg.Info.Defs[wd.Spec.Name]
		if obj == nil {
			continue
		}
		st, ok := obj.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			fld := st.Field(i)
			switch fld.Type().Underlying().(type) {
			case *types.Chan:
				pass.Reportf(wd.Spec.Pos(), "wire struct %s field %s has chan type: gob cannot encode it", wd.Spec.Name.Name, fld.Name())
			case *types.Signature:
				pass.Reportf(wd.Spec.Pos(), "wire struct %s field %s has func type: gob cannot encode it", wd.Spec.Name.Name, fld.Name())
			case *types.Interface:
				pass.Reportf(wd.Spec.Pos(), "wire struct %s field %s is an interface: gob needs concrete registration and zero-elision breaks", wd.Spec.Name.Name, fld.Name())
			}
		}
	}
}

// checkWirePairs enforces encode/decode field-access symmetry.
func checkWirePairs(pass *Pass) {
	for _, wp := range pass.Index.WirePairs {
		if wp.Pkg != pass.Pkg {
			continue
		}
		decode := findFunc(pass.Pkg, wp.Decode)
		if decode == nil {
			pass.Reportf(wp.Encode.Pos(), "wirepair decoder %s not found in package %s", wp.Decode, pass.Pkg.ImportPath)
			continue
		}
		target := sharedStructParam(pass.Pkg.Info, wp.Encode, decode)
		if target == nil {
			pass.Reportf(wp.Encode.Pos(), "wirepair %s/%s share no struct-pointer parameter to compare", wp.Encode.Name.Name, wp.Decode)
			continue
		}
		encFields := fieldAccessSet(pass.Pkg.Info, wp.Encode, target)
		decFields := fieldAccessSet(pass.Pkg.Info, decode, target)
		for _, f := range setDiff(encFields, decFields) {
			pass.Reportf(wp.Encode.Pos(), "%s writes field %s but decoder %s never reads it (wire asymmetry)", wp.Encode.Name.Name, f, wp.Decode)
		}
		for _, f := range setDiff(decFields, encFields) {
			pass.Reportf(wp.Encode.Pos(), "decoder %s reads field %s but %s never writes it (wire asymmetry)", wp.Decode, f, wp.Encode.Name.Name)
		}
	}
}

func findFunc(pkg *Package, name string) *ast.FuncDecl {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Recv == nil && fd.Name.Name == name {
				return fd
			}
		}
	}
	return nil
}

// sharedStructParam finds the first named struct type that appears as a
// pointer parameter of both functions.
func sharedStructParam(info *types.Info, a, b *ast.FuncDecl) *types.Named {
	bTypes := make(map[string]bool)
	for _, n := range paramStructs(info, b) {
		bTypes[qualifiedTypeName(n)] = true
	}
	for _, n := range paramStructs(info, a) {
		if bTypes[qualifiedTypeName(n)] {
			return n
		}
	}
	return nil
}

func paramStructs(info *types.Info, fd *ast.FuncDecl) []*types.Named {
	var out []*types.Named
	if fd.Type.Params == nil {
		return out
	}
	for _, field := range fd.Type.Params.List {
		t := info.TypeOf(field.Type)
		ptr, ok := t.(*types.Pointer)
		if !ok {
			continue
		}
		if n, ok := ptr.Elem().(*types.Named); ok {
			if _, isStruct := n.Underlying().(*types.Struct); isStruct {
				out = append(out, n)
			}
		}
	}
	return out
}

func qualifiedTypeName(n *types.Named) string {
	obj := n.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// fieldAccessSet collects every rooted field path ("IDStr",
// "User.FollowersCount") the function reads or writes on values of the
// target type, including accesses through local variables of the
// target's struct-typed field types. Intermediate prefixes ("User") are
// dropped so only leaf accesses compare.
func fieldAccessSet(info *types.Info, fd *ast.FuncDecl, target *types.Named) []string {
	// prefixOf maps a qualified struct type name to the path prefix an
	// access rooted at that type contributes.
	prefixOf := map[string]string{qualifiedTypeName(target): ""}
	if st, ok := target.Underlying().(*types.Struct); ok {
		for i := 0; i < st.NumFields(); i++ {
			fld := st.Field(i)
			t := fld.Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if n, ok := t.(*types.Named); ok {
				if _, isStruct := n.Underlying().(*types.Struct); isStruct {
					prefixOf[qualifiedTypeName(n)] = fld.Name() + "."
				}
			}
		}
	}

	set := make(map[string]bool)
	var fieldPath func(sel *ast.SelectorExpr) (string, bool)
	fieldPath = func(sel *ast.SelectorExpr) (string, bool) {
		s, ok := info.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return "", false
		}
		if inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok {
			if p, ok := fieldPath(inner); ok {
				return p + "." + sel.Sel.Name, true
			}
		}
		rp, rn := namedPkgPath(info.TypeOf(sel.X))
		if rp == "" && rn == "" {
			return "", false
		}
		qualified := rn
		if rp != "" {
			qualified = rp + "." + rn
		}
		pre, ok := prefixOf[qualified]
		if !ok {
			return "", false
		}
		return pre + sel.Sel.Name, true
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if p, ok := fieldPath(sel); ok {
				set[p] = true
			}
		}
		return true
	})

	// Drop intermediate prefixes: "User" when "User.IDStr" exists.
	var out []string
	for p := range set {
		isPrefix := false
		for q := range set {
			if q != p && strings.HasPrefix(q, p+".") {
				isPrefix = true
				break
			}
		}
		if !isPrefix {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

func setDiff(a, b []string) []string {
	bset := make(map[string]bool, len(b))
	for _, x := range b {
		bset[x] = true
	}
	var out []string
	for _, x := range a {
		if !bset[x] {
			out = append(out, x)
		}
	}
	return out
}
