package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NoAlloc proves that //redvet:noalloc regions contain no allocating
// constructs: make/new, escaping composite literals, string
// concatenation and conversion, closures, goroutine spawns, interface
// boxing of non-pointer values, and append calls whose growth is not
// reassigned into the appended slice (the amortized-reuse idiom the hot
// paths rely on is `s.buf = append(s.buf, ...)` and stays legal).
// Error-return paths are exempt: an allocation inside `if ...` ending in
// a non-nil error return, or inside such a return itself, is cold by
// definition and not a hot-path violation.
var NoAlloc = &Analyzer{
	Name: "noalloc",
	Doc:  "annotated hot-path regions must not contain allocating constructs",
	Run:  runNoAlloc,
}

func runNoAlloc(pass *Pass) {
	for _, region := range pass.Index.RegionsFor(pass.Pkg) {
		checkRegionNoAlloc(pass, region)
	}
}

func checkRegionNoAlloc(pass *Pass, region Region) {
	info := pass.Pkg.Info
	cold := coldIntervals(pass, region)
	sanctioned := sanctionedAppends(info, region.Node)

	ast.Inspect(region.Node, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		if cold.contains(n.Pos()) {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure literal allocates (captured environment escapes)")
			return false
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "go statement allocates a goroutine in a noalloc region")
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if cl, ok := n.X.(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "&%s{...} escapes to the heap", typeLabel(info, cl))
					return false
				}
			}
		case *ast.CompositeLit:
			switch info.TypeOf(n).Underlying().(type) {
			case *types.Slice:
				pass.Reportf(n.Pos(), "slice literal allocates")
			case *types.Map:
				pass.Reportf(n.Pos(), "map literal allocates")
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(info.TypeOf(n)) {
				pass.Reportf(n.Pos(), "string concatenation allocates")
			}
		case *ast.CallExpr:
			checkCallNoAlloc(pass, info, n, sanctioned)
		}
		return true
	})
}

func checkCallNoAlloc(pass *Pass, info *types.Info, call *ast.CallExpr, sanctioned map[*ast.CallExpr]bool) {
	switch builtinName(info, call) {
	case "make":
		pass.Reportf(call.Pos(), "make allocates")
		return
	case "new":
		pass.Reportf(call.Pos(), "new allocates")
		return
	case "append":
		if !sanctioned[call] {
			pass.Reportf(call.Pos(), "append growth escapes: assign the result back to the appended slice (s = append(s, ...))")
		}
		return
	case "":
	default:
		return // len, cap, copy, ... are alloc-free
	}

	// Conversions: string <-> []byte/[]rune and string(rune) copy.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) != 1 {
			return
		}
		if cv, ok := info.Types[call]; ok && cv.Value != nil {
			return // constant conversion, folded at compile time
		}
		dst, src := info.TypeOf(call), info.TypeOf(call.Args[0])
		switch {
		case isString(dst) && (isByteOrRuneSlice(src) || isBasicKind(src, types.IsInteger)):
			pass.Reportf(call.Pos(), "conversion to string allocates a copy")
		case isByteOrRuneSlice(dst) && isString(src):
			pass.Reportf(call.Pos(), "conversion from string allocates a copy")
		}
		return
	}

	// Interface boxing: a concrete non-pointer argument passed to an
	// interface parameter forces a heap box.
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok || call.Ellipsis.IsValid() {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (i < params.Len() && !sig.Variadic()):
			pt = params.At(i).Type()
		case sig.Variadic() && params.Len() > 0:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || types.IsInterface(at) {
			continue
		}
		if tv, ok := info.Types[arg]; ok && tv.IsNil() {
			continue
		}
		if _, isPtr := at.Underlying().(*types.Pointer); isPtr {
			continue // pointers fit the interface data word, no box
		}
		pass.Reportf(arg.Pos(), "passing %s to interface parameter boxes it on the heap", at)
	}
}

// sanctionedAppends collects builtin append calls of the amortized-reuse
// shape `x = append(x, ...)`, matching LHS and first argument textually.
func sanctionedAppends(info *types.Info, root ast.Node) map[*ast.CallExpr]bool {
	out := make(map[*ast.CallExpr]bool)
	ast.Inspect(root, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || builtinName(info, call) != "append" || len(call.Args) == 0 {
				continue
			}
			if exprString(as.Lhs[i]) == exprString(call.Args[0]) {
				out[call] = true
			}
		}
		return true
	})
	return out
}

// intervals is a set of cold (error-path) source ranges.
type intervals []struct{ lo, hi token.Pos }

func (iv intervals) contains(p token.Pos) bool {
	for _, i := range iv {
		if p >= i.lo && p < i.hi {
			return true
		}
	}
	return false
}

// coldIntervals marks error-return paths inside a region: any return
// statement whose error result is non-nil, and any if-body that ends in
// one. Allocation there is failure handling, not the hot path.
func coldIntervals(pass *Pass, region Region) intervals {
	return coldIntervalsInfo(pass.Pkg.Info, region)
}

func coldIntervalsInfo(info *types.Info, region Region) intervals {
	var out intervals
	fn := region.Func
	if fn == nil || !funcReturnsError(info, fn) {
		return out
	}
	ast.Inspect(region.Node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // its returns belong to a different signature
		case *ast.ReturnStmt:
			if returnsNonNilError(n) {
				out = append(out, struct{ lo, hi token.Pos }{n.Pos(), n.End()})
			}
		case *ast.IfStmt:
			if body := n.Body.List; len(body) > 0 {
				if ret, ok := body[len(body)-1].(*ast.ReturnStmt); ok && returnsNonNilError(ret) {
					out = append(out, struct{ lo, hi token.Pos }{n.Body.Pos(), n.Body.End()})
				}
			}
		}
		return true
	})
	return out
}

func funcReturnsError(info *types.Info, fn *ast.FuncDecl) bool {
	sig, ok := info.Defs[fn.Name]
	if !ok {
		return false
	}
	res := sig.Type().(*types.Signature).Results()
	return res.Len() > 0 && res.At(res.Len()-1).Type().String() == "error"
}

// returnsNonNilError reports whether ret's last result is anything but a
// literal nil. A bare `return` with named results is treated as cold too
// — hot paths in this repo return explicitly.
func returnsNonNilError(ret *ast.ReturnStmt) bool {
	if len(ret.Results) == 0 {
		return true
	}
	last := ret.Results[len(ret.Results)-1]
	id, ok := last.(*ast.Ident)
	return !ok || id.Name != "nil"
}
