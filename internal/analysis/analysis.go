// Package analysis implements redvet, the repo-native static-analysis
// suite. It proves at build time the hot-path invariants the benchmarks
// only measure: zero-allocation extraction and tracing, lock-stripe
// ordering, wire codec symmetry, and hot-path hygiene. The driver is
// dependency-free: go/ast + go/parser + go/types over `go list -json
// -export`, so the module keeps zero external dependencies.
package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding, rendered as "file:line: [check] message".
type Diagnostic struct {
	Pos   token.Position
	Check string
	Msg   string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Check, d.Msg)
}

// Analyzer is one named check.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// All lists every registered check in diagnostic order.
var All = []*Analyzer{
	NoAlloc,
	LockOrder,
	WireCompat,
	HotPathHygiene,
	FieldAlign,
}

// ByName resolves a comma-separated check list ("noalloc,lockorder").
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return All, nil
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		found := false
		for _, a := range All {
			if a.Name == n {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown check %q", n)
		}
	}
	return out, nil
}

// Pass hands one package plus the repo-wide annotation index to a check.
type Pass struct {
	Prog     *Program
	Pkg      *Package
	Index    *Index
	Analyzer *Analyzer
	diags    *[]Diagnostic
}

// Reportf records a diagnostic at pos for this pass's check.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:   p.Prog.Fset.Position(pos),
		Check: p.Analyzer.Name,
		Msg:   fmt.Sprintf(format, args...),
	})
}

// Run executes the given checks over every package in prog, applies
// //redvet:ignore suppression, and returns the surviving diagnostics
// sorted by position. Malformed directives surface as "directive"
// diagnostics and are never suppressible.
func Run(prog *Program, checks []*Analyzer) []Diagnostic {
	index := BuildIndex(prog)
	var diags []Diagnostic
	for _, pkg := range prog.Pkgs {
		for _, a := range checks {
			pass := &Pass{Prog: prog, Pkg: pkg, Index: index, Analyzer: a, diags: &diags}
			a.Run(pass)
		}
	}
	diags = index.filterIgnored(diags)
	diags = append(diags, index.DirectiveErrors...)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Msg < b.Msg
	})
	return diags
}

// filterIgnored drops diagnostics covered by a //redvet:ignore directive
// on the same line or the line directly above.
func (ix *Index) filterIgnored(diags []Diagnostic) []Diagnostic {
	out := diags[:0]
	for _, d := range diags {
		ig := ix.Ignores[fileLine{d.Pos.Filename, d.Pos.Line}]
		if ig == "" {
			ig = ix.Ignores[fileLine{d.Pos.Filename, d.Pos.Line - 1}]
		}
		if ig == d.Check || ig == "all" {
			continue
		}
		out = append(out, d)
	}
	return out
}
