package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// HotPathHygiene enforces the softer per-event rules inside noalloc
// regions — no wall-clock reads, no fmt/log formatting, no map
// iteration, no per-event metrics-registry lookups — plus two
// package-wide rules: sync/atomic values are never copied by value, and
// metric handles are resolved once at construction, not per event.
var HotPathHygiene = &Analyzer{
	Name: "hotpathhygiene",
	Doc:  "no clocks, formatting, logging, map iteration, or metric lookups per event; atomics never copied",
	Run:  runHotPathHygiene,
}

// registryLookupMethods are the metrics.Registry methods that take the
// registry mutex and hash the metric name — construction-time only.
var registryLookupMethods = map[string]bool{
	"Counter": true, "Gauge": true, "GaugeFunc": true, "Histogram": true,
}

func runHotPathHygiene(pass *Pass) {
	for _, region := range pass.Index.RegionsFor(pass.Pkg) {
		checkRegionHygiene(pass, region)
	}
	checkAtomicCopies(pass)
}

func checkRegionHygiene(pass *Pass, region Region) {
	info := pass.Pkg.Info
	cold := coldIntervals(pass, region)
	ast.Inspect(region.Node, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		if cold.contains(n.Pos()) {
			return false
		}
		switch n := n.(type) {
		case *ast.RangeStmt:
			if _, isMap := info.TypeOf(n.X).Underlying().(*types.Map); isMap {
				pass.Reportf(n.Pos(), "map iteration in a hot path (randomized order, runtime.mapiterinit per event)")
			}
		case *ast.CallExpr:
			switch builtinName(info, n) {
			case "print", "println":
				pass.Reportf(n.Pos(), "print/println in a hot path")
				return true
			}
			pkg, name := calleePkgFunc(info, n)
			switch {
			case pkg == "time" && (name == "Now" || name == "Since"):
				pass.Reportf(n.Pos(), "time.%s in a hot path (wall-clock read per event)", name)
			case pkg == "fmt":
				pass.Reportf(n.Pos(), "fmt.%s in a hot path (reflection-driven formatting allocates)", name)
			case pkg == "log" || pkg == "log/slog":
				pass.Reportf(n.Pos(), "logging in a hot path")
			case registryLookupMethods[name] && isMetricsRegistry(info, n):
				pass.Reportf(n.Pos(), "metrics registry lookup (%s) per event: resolve the handle once at construction", name)
			}
		}
		return true
	})
}

// isMetricsRegistry reports whether the call's receiver is the repo's
// metrics.Registry.
func isMetricsRegistry(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	p, n := namedPkgPath(info.TypeOf(sel.X))
	return n == "Registry" && strings.HasSuffix(p, "metrics")
}

// checkAtomicCopies flags sync/atomic values moved by value anywhere in
// the package: assignment reads, and parameters/results declared by
// value. A copied atomic silently forks the counter.
func checkAtomicCopies(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, rhs := range n.Rhs {
					if isAtomicValueRead(info, rhs) {
						pass.Reportf(rhs.Pos(), "%s copies a sync/atomic value; keep a pointer or embed it", exprString(rhs))
					}
				}
			case *ast.FuncDecl:
				if n.Type.Params != nil {
					for _, field := range n.Type.Params.List {
						if p, name := namedPkgPath(info.TypeOf(field.Type)); p == "sync/atomic" {
							if _, isPtr := info.TypeOf(field.Type).(*types.Pointer); !isPtr {
								pass.Reportf(field.Pos(), "atomic.%s passed by value forks the counter; pass *atomic.%s", name, name)
							}
						}
					}
				}
			}
			return true
		})
	}
}

// isAtomicValueRead reports whether e reads a sync/atomic struct by
// value (not via &, not a method call on it).
func isAtomicValueRead(info *types.Info, e ast.Expr) bool {
	switch e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr:
	default:
		return false
	}
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	if _, isPtr := t.(*types.Pointer); isPtr {
		return false
	}
	p, _ := namedPkgPath(t)
	return p == "sync/atomic"
}
