package analysis

import (
	"go/ast"
	"strings"
)

// LockOrder walks every function body with a syntactic lock-state
// machine and enforces the stripe discipline the sharded subsystems
// (userstate, serve, ingestlog) are built on:
//
//   - a mutex is never held across a channel send, an fsync-class call
//     (Sync/SyncAll/Fsync/sync), a Process* pipeline entry, Wait, or
//     Sleep — those block for unbounded time with the stripe pinned;
//   - a second lock of the same field family on a different receiver is
//     a stripe-order violation (two shards' `mu` at once deadlocks under
//     inversion); locks of different fields need a declared
//     `//redvet:lockorder A < B`;
//   - a return while a lock is held without a pending defer-unlock is a
//     missing-unlock on a multi-return path.
//
// The analysis is per-function and branch-pragmatic: state forks into
// copies at branches, and cross-function holds are out of scope.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "stripe-ordered mutexes; no blocking calls or sends while holding a lock",
	Run:  runLockOrder,
}

type heldLock struct {
	key      string // full receiver expression, e.g. "sh.mu"
	field    string // last path component, the lock family, e.g. "mu"
	deferred bool   // a defer ...Unlock() is pending
}

type lockState struct {
	pass *Pass
	held []heldLock
}

func (s *lockState) clone() *lockState {
	cp := &lockState{pass: s.pass}
	cp.held = append(cp.held, s.held...)
	return cp
}

func runLockOrder(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					st := &lockState{pass: pass}
					st.walkStmts(n.Body.List)
					st.checkFuncExit(n.Body)
				}
				return false // FuncLits inside are visited by walkStmts
			}
			return true
		})
	}
}

// lockCall classifies a call expression as a mutex operation. It
// returns the receiver expression string, the field name, and the
// method ("Lock", "RLock", "Unlock", "RUnlock", "TryLock", "TryRLock").
func (s *lockState) lockCall(e ast.Expr) (key, field, method string, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", "", "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock", "TryLock", "TryRLock":
	default:
		return "", "", "", false
	}
	if p, n := namedPkgPath(s.pass.Pkg.Info.TypeOf(sel.X)); p != "sync" || (n != "Mutex" && n != "RWMutex") {
		return "", "", "", false
	}
	key = exprString(sel.X)
	field = key
	if i := strings.LastIndex(key, "."); i >= 0 {
		field = key[i+1:]
	}
	return key, field, sel.Sel.Name, true
}

func (s *lockState) acquire(pos ast.Node, key, field string) {
	for _, h := range s.held {
		switch {
		case h.key == key:
			s.pass.Reportf(pos.Pos(), "%s locked twice on the same path", key)
		case h.field == field:
			s.pass.Reportf(pos.Pos(), "acquiring %s while holding %s: two locks of the same stripe family %q (shard-order inversion deadlocks)", key, h.key, field)
		case !s.pass.Index.LockOrder[h.field+"<"+field]:
			s.pass.Reportf(pos.Pos(), "acquiring %s while holding %s without a declared order (add //redvet:lockorder %s < %s if intended)", key, h.key, h.field, field)
		}
	}
	s.held = append(s.held, heldLock{key: key, field: field})
}

func (s *lockState) release(key string) {
	for i := len(s.held) - 1; i >= 0; i-- {
		if s.held[i].key == key {
			s.held = append(s.held[:i], s.held[i+1:]...)
			return
		}
	}
}

func (s *lockState) markDeferred(key string) {
	for i := len(s.held) - 1; i >= 0; i-- {
		if s.held[i].key == key {
			s.held[i].deferred = true
			return
		}
	}
}

func (s *lockState) walkStmts(stmts []ast.Stmt) {
	for _, stmt := range stmts {
		s.walkStmt(stmt)
	}
}

func (s *lockState) walkStmt(stmt ast.Stmt) {
	switch st := stmt.(type) {
	case *ast.ExprStmt:
		if key, field, method, ok := s.lockCall(st.X); ok {
			switch method {
			case "Lock", "RLock", "TryLock", "TryRLock":
				s.acquire(st, key, field)
			case "Unlock", "RUnlock":
				s.release(key)
			}
			return
		}
		s.scanBlocking(st.X)
	case *ast.DeferStmt:
		if key, _, method, ok := s.lockCall(st.Call); ok && (method == "Unlock" || method == "RUnlock") {
			s.markDeferred(key)
		}
	case *ast.SendStmt:
		for _, h := range s.held {
			s.pass.Reportf(st.Pos(), "channel send while holding %s (the stripe blocks on a full channel)", h.key)
		}
		s.scanBlocking(st.Value)
	case *ast.GoStmt:
		// The spawned goroutine holds nothing; its body is analyzed as
		// its own function below via the FuncLit scan.
		s.walkFuncLits(st.Call)
	case *ast.ReturnStmt:
		for _, h := range s.held {
			if !h.deferred {
				s.pass.Reportf(st.Pos(), "return while holding %s with no defer-unlock (multi-return leak)", h.key)
			}
		}
		for _, r := range st.Results {
			s.scanBlocking(r)
		}
	case *ast.IfStmt:
		if st.Init != nil {
			s.walkStmt(st.Init)
		}
		s.scanBlocking(st.Cond)
		s.clone().walkStmts(st.Body.List)
		if st.Else != nil {
			s.clone().walkStmt(st.Else)
		}
	case *ast.ForStmt:
		if st.Init != nil {
			s.walkStmt(st.Init)
		}
		if st.Cond != nil {
			s.scanBlocking(st.Cond)
		}
		s.clone().walkStmts(st.Body.List)
	case *ast.RangeStmt:
		s.scanBlocking(st.X)
		s.clone().walkStmts(st.Body.List)
	case *ast.SwitchStmt:
		if st.Init != nil {
			s.walkStmt(st.Init)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				s.clone().walkStmts(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				s.clone().walkStmts(cc.Body)
			}
		}
	case *ast.SelectStmt:
		// A select with a default clause is the non-blocking send/receive
		// idiom and is safe under a lock; only a defaultless select pins
		// the stripe until a peer is ready.
		nonBlocking := false
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				nonBlocking = true
			}
		}
		for _, c := range st.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			if send, ok := cc.Comm.(*ast.SendStmt); ok && !nonBlocking {
				for _, h := range s.held {
					s.pass.Reportf(send.Pos(), "select send while holding %s", h.key)
				}
			}
			s.clone().walkStmts(cc.Body)
		}
	case *ast.BlockStmt:
		s.walkStmts(st.List)
	case *ast.LabeledStmt:
		s.walkStmt(st.Stmt)
	case *ast.AssignStmt:
		for _, r := range st.Rhs {
			if key, field, method, ok := s.lockCall(r); ok && (method == "TryLock" || method == "TryRLock") {
				s.acquire(st, key, field)
				continue
			}
			s.scanBlocking(r)
		}
	case *ast.DeclStmt:
		s.scanBlocking(st)
	}
}

// walkFuncLits analyzes any function literal under n as a fresh
// function without flagging the surrounding expression.
func (s *lockState) walkFuncLits(n ast.Node) {
	ast.Inspect(n, func(m ast.Node) bool {
		if fl, ok := m.(*ast.FuncLit); ok {
			fresh := &lockState{pass: s.pass}
			fresh.walkStmts(fl.Body.List)
			fresh.checkFuncExit(fl.Body)
			return false
		}
		return true
	})
}

// blockingCallName reports whether a method/function name is in the
// class that must never run under a stripe lock.
func blockingCallName(name string) bool {
	switch name {
	case "Sync", "SyncAll", "Fsync", "sync", "fsync", "Sleep", "Wait":
		return true
	}
	return strings.HasPrefix(name, "Process")
}

// scanBlocking flags blocking-class calls inside an expression while any
// lock is held, and analyzes function literals as fresh functions.
func (s *lockState) scanBlocking(n ast.Node) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			fresh := &lockState{pass: s.pass}
			fresh.walkStmts(m.Body.List)
			fresh.checkFuncExit(m.Body)
			return false
		case *ast.CallExpr:
			if len(s.held) == 0 {
				return true
			}
			_, name := calleePkgFunc(s.pass.Pkg.Info, m)
			if name == "" {
				if sel, ok := ast.Unparen(m.Fun).(*ast.SelectorExpr); ok {
					name = sel.Sel.Name
				}
			}
			if blockingCallName(name) {
				for _, h := range s.held {
					s.pass.Reportf(m.Pos(), "call to %s while holding %s (fsync/pipeline-class calls block with the stripe pinned)", name, h.key)
					break
				}
			}
		}
		return true
	})
}

// checkFuncExit flags locks still held (and not deferred) when control
// falls off the end of the function body.
func (s *lockState) checkFuncExit(body *ast.BlockStmt) {
	if len(body.List) > 0 {
		if _, endsInReturn := body.List[len(body.List)-1].(*ast.ReturnStmt); endsInReturn {
			return // already checked at the return site
		}
	}
	for _, h := range s.held {
		if !h.deferred {
			s.pass.Reportf(body.End(), "function exits with %s held and no defer-unlock", h.key)
		}
	}
}
