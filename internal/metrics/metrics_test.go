package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "help", nil)
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	g := r.Gauge("g", "help", nil)
	g.Set(10)
	g.Dec()
	g.Add(-2)
	if g.Value() != 7 {
		t.Fatalf("gauge = %d, want 7", g.Value())
	}
}

func TestIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help", Labels{"shard": "0"})
	b := r.Counter("x_total", "help", Labels{"shard": "0"})
	if a != b {
		t.Fatal("same (name, labels) must return the same counter")
	}
	other := r.Counter("x_total", "help", Labels{"shard": "1"})
	if a == other {
		t.Fatal("different labels must return a different series")
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "help", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("registering m as gauge after counter should panic")
		}
	}()
	r.Gauge("m", "help", nil)
}

func TestHistogramBucketsAndQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "help", []float64{0.01, 0.1, 1}, nil)
	for i := 0; i < 100; i++ {
		h.Observe(0.005) // all in first bucket
	}
	h.Observe(5) // overflow bucket
	if h.Count() != 101 {
		t.Fatalf("count = %d, want 101", h.Count())
	}
	if got := h.Sum(); math.Abs(got-5.5) > 1e-9 {
		t.Fatalf("sum = %g, want 5.5", got)
	}
	if q := h.Quantile(0.5); q <= 0 || q > 0.01 {
		t.Fatalf("p50 = %g, want in (0, 0.01]", q)
	}
	if q := h.Quantile(1.0); q != 1 {
		t.Fatalf("p100 = %g, want overflow lower bound 1", q)
	}
}

func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("ingest_total", "Tweets ingested.", nil).Add(7)
	r.Gauge("depth", "Queue depth.", Labels{"shard": "2"}).Set(3)
	r.GaugeFunc("live", "Sampled.", nil, func() float64 { return 1.5 })
	h := r.Histogram("lat_seconds", "Latency.", []float64{0.5}, Labels{"shard": "0"})
	h.Observe(0.1)
	h.Observe(2)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP ingest_total Tweets ingested.",
		"# TYPE ingest_total counter",
		"ingest_total 7",
		"# TYPE depth gauge",
		`depth{shard="2"} 3`,
		"live 1.5",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{shard="0",le="0.5"} 1`,
		`lat_seconds_bucket{shard="0",le="+Inf"} 2`,
		`lat_seconds_sum{shard="0"} 2.1`,
		`lat_seconds_count{shard="0"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestUnregister(t *testing.T) {
	r := NewRegistry()
	r.Gauge("g", "help", Labels{"shard": "0"}).Set(1)
	r.Gauge("g", "help", Labels{"shard": "1"}).Set(2)
	if !r.Unregister("g", Labels{"shard": "0"}) {
		t.Fatal("existing series should unregister")
	}
	if r.Unregister("g", Labels{"shard": "0"}) {
		t.Fatal("second unregister should report missing")
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), `shard="0"`) || !strings.Contains(b.String(), `shard="1"`) {
		t.Fatalf("exposition after unregister:\n%s", b.String())
	}
	// Removing the last series removes the family entirely.
	r.Unregister("g", Labels{"shard": "1"})
	b.Reset()
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "# TYPE g") {
		t.Fatalf("family should be gone:\n%s", b.String())
	}
}

func TestGaugeFuncMayTouchRegistry(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("self", "reads the registry", nil, func() float64 {
		return float64(r.Counter("side_total", "help", nil).Value())
	})
	done := make(chan error, 1)
	go func() {
		var b strings.Builder
		done <- r.WriteText(&b)
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WriteText deadlocked on a registry-touching GaugeFunc")
	}
}

func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "help", nil, nil)
	c := r.Counter("n_total", "help", nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(0.001)
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 || c.Value() != 8000 {
		t.Fatalf("count = %d / %d, want 8000", h.Count(), c.Value())
	}
	if math.Abs(h.Sum()-8.0) > 1e-6 {
		t.Fatalf("sum = %g, want 8.0", h.Sum())
	}
}

// TestConcurrentObserveWithReaders exercises the histogram under the access
// pattern tracing creates: hot-path writers observing while a metrics scrape
// (WriteText) and quantile readers (the /v1/trace stage table) run
// concurrently. Run under -race this proves the reader/writer paths are
// properly synchronized; the final totals prove no observation is lost to a
// racing snapshot.
func TestConcurrentObserveWithReaders(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "help", []float64{0.001, 0.01, 0.1}, nil)
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for w := 0; w < 3; w++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			var sb strings.Builder
			for {
				select {
				case <-stop:
					return
				default:
				}
				sb.Reset()
				if err := r.WriteText(&sb); err != nil {
					t.Errorf("WriteText: %v", err)
					return
				}
				if q := h.Quantile(0.95); q < 0 {
					t.Errorf("Quantile(0.95) = %g during concurrent writes", q)
					return
				}
				_ = h.Count()
				_ = h.Sum()
			}
		}()
	}
	var writers sync.WaitGroup
	for w := 0; w < 8; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < 2000; i++ {
				h.Observe(float64(i%100) / 1000)
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	if h.Count() != 16000 {
		t.Fatalf("count = %d, want 16000", h.Count())
	}
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `lat_bucket{le="+Inf"} 16000`) {
		t.Fatalf("final exposition missing complete +Inf bucket:\n%s", sb.String())
	}
}
