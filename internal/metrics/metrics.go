// Package metrics is a small, dependency-free metrics registry for the
// serving subsystem: atomic counters and gauges, fixed-bucket latency
// histograms, and Prometheus text-format exposition (format 0.0.4). It
// exists so the hot paths (engine loops, alerting, HTTP serving) can be
// observed in production without pulling a client library into the module.
//
// Collectors are registered on a Registry under a family name plus an
// optional constant label set. Registration is idempotent: asking for the
// same (name, labels) series again returns the collector created the first
// time, so package-level wiring (e.g. the alerting counter shared by every
// Pipeline) needs no coordination.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels is a constant label set attached to one series at registration
// time. Keys are rendered sorted, so two Labels with the same contents
// always address the same series.
type Labels map[string]string

func (l Labels) render() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, l[k])
	}
	b.WriteByte('}')
	return b.String()
}

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored; counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic value that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram of float64 observations (typically
// latencies in seconds). Observations are lock-free: each bucket is an
// independent atomic counter and the sum is a CAS loop over float64 bits.
type Histogram struct {
	bounds []float64 // ascending upper bounds; +Inf bucket is implicit
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

// DefBuckets covers sub-millisecond pipeline latencies through multi-second
// stalls — the range the classify hot path actually spans.
var DefBuckets = []float64{
	.0001, .00025, .0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5,
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Linear scan: bucket lists are short (≤ ~15) and the early buckets are
	// the hot ones for latency data, so this beats a binary search.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile returns an estimate of quantile q (0..1) assuming observations
// are uniform within buckets; the overflow bucket reports its lower bound.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var seen int64
	for i := range h.counts {
		c := h.counts[i].Load()
		if float64(seen+c) >= rank && c > 0 {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			if i >= len(h.bounds) { // overflow bucket has no upper bound
				return lo
			}
			hi := h.bounds[i]
			frac := (rank - float64(seen)) / float64(c)
			return lo + (hi-lo)*frac
		}
		seen += c
	}
	if len(h.bounds) > 0 {
		return h.bounds[len(h.bounds)-1]
	}
	return 0
}

// series is one exposed line group (a collector plus its label string).
type series struct {
	labels string
	c      *Counter
	g      *Gauge
	fn     func() float64
	h      *Histogram
}

// family groups all series registered under one metric name.
type family struct {
	name   string
	help   string
	typ    string // "counter", "gauge", "histogram"
	order  []string
	series map[string]*series
}

// Registry holds metric families and renders them in text format.
type Registry struct {
	mu       sync.Mutex
	order    []string
	families map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry the library's built-in
// instrumentation (engine throughput, alert counts) registers on.
func Default() *Registry { return defaultRegistry }

func (r *Registry) family(name, help, typ string) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, series: make(map[string]*series)}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	if f.typ != typ {
		panic(fmt.Sprintf("metrics: %s already registered as %s, requested %s", name, f.typ, typ))
	}
	return f
}

func (f *family) get(labels string) (*series, bool) {
	s, ok := f.series[labels]
	if !ok {
		s = &series{labels: labels}
		f.series[labels] = s
		f.order = append(f.order, labels)
	}
	return s, ok
}

// Counter registers (or returns the existing) counter series.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.family(name, help, "counter").get(labels.render())
	if !ok {
		s.c = &Counter{}
	}
	return s.c
}

// Gauge registers (or returns the existing) gauge series.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.family(name, help, "gauge").get(labels.render())
	if !ok {
		s.g = &Gauge{}
	}
	return s.g
}

// GaugeFunc registers a gauge whose value is sampled from fn at exposition
// time (e.g. a live queue depth). Re-registering the same series replaces
// the function, so a restarted server takes over its series cleanly.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, _ := r.family(name, help, "gauge").get(labels.render())
	s.fn = fn
}

// Histogram registers (or returns the existing) histogram series with the
// given ascending bucket upper bounds (nil means DefBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64, labels Labels) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.family(name, help, "histogram").get(labels.render())
	if !ok {
		s.h = &Histogram{
			bounds: append([]float64(nil), buckets...),
			counts: make([]atomic.Int64, len(buckets)+1),
		}
	}
	return s.h
}

// WriteText renders the registry in Prometheus text exposition format.
// Series values (including GaugeFunc callbacks) are read after the
// registry lock is released, so a callback may safely touch the registry.
func (r *Registry) WriteText(w io.Writer) error {
	type snap struct {
		f      *family
		series []*series
	}
	r.mu.Lock()
	snaps := make([]snap, 0, len(r.order))
	for _, name := range r.order {
		f := r.families[name]
		ss := make([]*series, 0, len(f.order))
		for _, key := range f.order {
			ss = append(ss, f.series[key])
		}
		snaps = append(snaps, snap{f: f, series: ss})
	}
	r.mu.Unlock()
	for _, sn := range snaps {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", sn.f.name, sn.f.help, sn.f.name, sn.f.typ); err != nil {
			return err
		}
		for _, s := range sn.series {
			if err := s.write(w, sn.f.name); err != nil {
				return err
			}
		}
	}
	return nil
}

// Unregister removes one series; the family disappears with its last
// series. It returns whether the series existed. Use it when a component
// that registered per-instance series (e.g. per-shard gauges) is torn
// down and not replaced like-for-like.
func (r *Registry) Unregister(name string, labels Labels) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		return false
	}
	key := labels.render()
	if _, ok := f.series[key]; !ok {
		return false
	}
	delete(f.series, key)
	for i, k := range f.order {
		if k == key {
			f.order = append(f.order[:i], f.order[i+1:]...)
			break
		}
	}
	if len(f.series) == 0 {
		delete(r.families, name)
		for i, n := range r.order {
			if n == name {
				r.order = append(r.order[:i], r.order[i+1:]...)
				break
			}
		}
	}
	return true
}

func (s *series) write(w io.Writer, name string) error {
	switch {
	case s.c != nil:
		_, err := fmt.Fprintf(w, "%s%s %d\n", name, s.labels, s.c.Value())
		return err
	case s.fn != nil:
		_, err := fmt.Fprintf(w, "%s%s %s\n", name, s.labels, formatFloat(s.fn()))
		return err
	case s.g != nil:
		_, err := fmt.Fprintf(w, "%s%s %d\n", name, s.labels, s.g.Value())
		return err
	case s.h != nil:
		return s.writeHistogram(w, name)
	}
	return nil
}

func (s *series) writeHistogram(w io.Writer, name string) error {
	h := s.h
	// Bucket lines carry the cumulative count; the inner labels (if any)
	// are merged with the le label.
	inner := strings.TrimSuffix(strings.TrimPrefix(s.labels, "{"), "}")
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatFloat(h.bounds[i])
		}
		lbl := fmt.Sprintf("le=%q", le)
		if inner != "" {
			lbl = inner + "," + lbl
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{%s} %d\n", name, lbl, cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, s.labels, formatFloat(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, s.labels, h.Count())
	return err
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// Handler returns an http.Handler serving the registry in text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}
