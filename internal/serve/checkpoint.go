package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Sharded checkpointing: each shard's pipeline carries independently
// learned state (model, normalizer statistics, BoW vocabulary, evaluation
// counters), so a server checkpoint is one core checkpoint file per shard
// plus a manifest pinning the shard count. Because ShardFor is a pure
// function of (userID, shard count), restoring into a server with the same
// shard count routes every user back to the shard that learned from them.

// manifest pins the shape a checkpoint directory was written with.
type manifest struct {
	Shards  int    `json:"shards"`
	Model   string `json:"model"`
	Classes int    `json:"classes"`
}

const manifestName = "manifest.json"

func shardFile(i int) string { return fmt.Sprintf("shard-%04d.ckpt", i) }

// Checkpoint writes every shard's learned state into dir (created if
// needed). Call it after Drain so no shard is mid-tweet.
//
// Every file is written to a temporary name and renamed into place, with
// the manifest renamed last, so a crash mid-checkpoint never truncates the
// previous checkpoint's files (the narrow rename window can at worst mix
// shard generations, not corrupt them).
func (s *Server) Checkpoint(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("serve: checkpoint: %w", err)
	}
	for _, sh := range s.shards {
		path := filepath.Join(dir, shardFile(sh.id))
		f, err := os.Create(path + ".tmp")
		if err != nil {
			return fmt.Errorf("serve: checkpoint shard %d: %w", sh.id, err)
		}
		err = sh.p.Checkpoint(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err == nil {
			err = os.Rename(path+".tmp", path)
		}
		if err != nil {
			os.Remove(path + ".tmp")
			return fmt.Errorf("serve: checkpoint shard %d: %w", sh.id, err)
		}
	}
	m := manifest{
		Shards:  len(s.shards),
		Model:   s.opts.Pipeline.Model.String(),
		Classes: s.opts.Pipeline.Scheme.NumClasses(),
	}
	blob, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("serve: checkpoint manifest: %w", err)
	}
	mpath := filepath.Join(dir, manifestName)
	if err := os.WriteFile(mpath+".tmp", blob, 0o644); err != nil {
		return fmt.Errorf("serve: checkpoint manifest: %w", err)
	}
	if err := os.Rename(mpath+".tmp", mpath); err != nil {
		return fmt.Errorf("serve: checkpoint manifest: %w", err)
	}
	return nil
}

// Restore loads a checkpoint directory written by Checkpoint into this
// server's shards. The server must have been built with the same shard
// count and compatible pipeline options; call it before serving traffic.
func (s *Server) Restore(dir string) error {
	blob, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return fmt.Errorf("serve: restore: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(blob, &m); err != nil {
		return fmt.Errorf("serve: restore manifest: %w", err)
	}
	if m.Shards != len(s.shards) {
		return fmt.Errorf("serve: checkpoint has %d shards, server has %d (user affinity would break)",
			m.Shards, len(s.shards))
	}
	for _, sh := range s.shards {
		f, err := os.Open(filepath.Join(dir, shardFile(sh.id)))
		if err != nil {
			return fmt.Errorf("serve: restore shard %d: %w", sh.id, err)
		}
		err = sh.p.Restore(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("serve: restore shard %d: %w", sh.id, err)
		}
	}
	return nil
}
