package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"redhanded/internal/core"
	"redhanded/internal/metrics"
	"redhanded/internal/twitterdata"
)

func arfOptions() Options {
	opts := core.DefaultOptions()
	opts.Model = core.ModelARF
	opts.ARF.EnsembleSize = 3
	opts.SampleStep = 0
	return Options{
		Pipeline: opts,
		Shards:   2,
		Registry: metrics.NewRegistry(),
	}
}

func arfTraffic(n int) []twitterdata.Tweet {
	var tweets []twitterdata.Tweet
	for i := 0; i < n; i++ {
		label := twitterdata.LabelNormal
		text := "what a lovely day to walk in the park with friends"
		if i%3 == 0 {
			label = twitterdata.LabelAbusive
			text = "you are a fucking idiot and a STUPID fool!!"
		}
		tweets = append(tweets, makeTweet(fmt.Sprint("a", i), fmt.Sprint("u", i%7), text, label))
	}
	return tweets
}

func ingestAll(t *testing.T, s *Server, tweets []twitterdata.Tweet) {
	t.Helper()
	ts := httptest.NewServer(s)
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/ingest", "application/x-ndjson", ndjson(t, tweets))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitProcessed(t, s, int64(len(tweets)))
}

// TestServeARFCheckpointRestoreContinues proves restore-then-continue
// equivalence for the ARF at the serving layer: a restored server fed the
// same remaining traffic lands on exactly the per-shard reports of the
// server that never restarted. User affinity routes every tweet to the
// same shard on both servers, and each shard's forest (trees, detectors,
// RNG) resumes bit-for-bit.
func TestServeARFCheckpointRestoreContinues(t *testing.T) {
	traffic := arfTraffic(120)
	first, rest := traffic[:60], traffic[60:]

	orig := NewServer(arfOptions())
	ingestAll(t, orig, first)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := orig.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := orig.Checkpoint(dir); err != nil {
		t.Fatalf("ARF checkpoint failed: %v", err)
	}

	restored := NewServer(arfOptions())
	if err := restored.Restore(dir); err != nil {
		t.Fatalf("ARF restore failed: %v", err)
	}

	// A second, uninterrupted server processes the whole stream; the
	// restored one only the remainder.
	whole := NewServer(arfOptions())
	ingestAll(t, whole, traffic)
	ingestAll(t, restored, rest)

	for i := 0; i < whole.Shards(); i++ {
		a, b := whole.Pipeline(i), restored.Pipeline(i)
		if a.Summary() != b.Summary() {
			t.Errorf("shard %d diverged after restore:\nuninterrupted %+v\nrestored      %+v",
				i, a.Summary(), b.Summary())
		}
		da, db := a.DriftStats(), b.DriftStats()
		if (da == nil) != (db == nil) || (da != nil && (da.Warnings != db.Warnings || da.Drifts != db.Drifts)) {
			t.Errorf("shard %d drift telemetry diverged: %+v vs %+v", i, da, db)
		}
	}
	drainAll(t, restored, whole)
}

func drainAll(t *testing.T, servers ...*Server) {
	t.Helper()
	for _, s := range servers {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := s.Drain(ctx); err != nil {
			t.Error(err)
		}
		cancel()
	}
}

// TestServeARFCheckpointUnderConcurrentClassify checkpoints while classify
// traffic is in flight: Checkpoint serializes on each shard pipeline's
// lock, so the written state must be loadable and the server must keep
// serving (the -race job is the real assertion here).
func TestServeARFCheckpointUnderConcurrentClassify(t *testing.T) {
	s := NewServer(arfOptions())
	ts := httptest.NewServer(s)
	defer ts.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				label := ""
				if i%3 == 0 {
					label = twitterdata.LabelAbusive
				}
				tw := makeTweet(fmt.Sprintf("cc%d-%d", w, i), fmt.Sprint("u", i%9),
					"you STUPID idiot stop doing that!!", label)
				blob, _ := json.Marshal(tw)
				resp, err := http.Post(ts.URL+"/v1/classify", "application/json", bytes.NewReader(blob))
				if err != nil {
					return
				}
				resp.Body.Close()
			}
		}()
	}

	time.Sleep(10 * time.Millisecond)
	dir := t.TempDir()
	for round := 0; round < 3; round++ {
		if err := s.Checkpoint(dir); err != nil {
			t.Errorf("checkpoint under load: %v", err)
		}
	}
	close(stop)
	wg.Wait()

	restored := NewServer(arfOptions())
	if err := restored.Restore(dir); err != nil {
		t.Fatalf("restore of under-load ARF checkpoint failed: %v", err)
	}
	drainAll(t, s, restored)
}

// TestServeARFRestoreRejectsCorruptBlob covers the failure modes a
// production restore must refuse: truncated and bit-flipped ARF shard
// files, and a checkpoint written by a different model kind.
func TestServeARFRestoreRejectsCorruptBlob(t *testing.T) {
	dir := t.TempDir()
	orig := NewServer(arfOptions())
	ingestAll(t, orig, arfTraffic(40))
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := orig.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if err := orig.Checkpoint(dir); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, shardFile(0))
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Truncated shard file.
	if err := os.WriteFile(path, blob[:len(blob)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := NewServer(arfOptions()).Restore(dir); err == nil {
		t.Fatal("Restore succeeded on a truncated ARF shard file")
	}

	// Bit-flipped shard file (valid length, corrupt payload).
	flipped := append([]byte(nil), blob...)
	for i := len(flipped) / 2; i < len(flipped)/2+64 && i < len(flipped); i++ {
		flipped[i] ^= 0xff
	}
	if err := os.WriteFile(path, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := NewServer(arfOptions()).Restore(dir); err == nil {
		t.Fatal("Restore succeeded on a bit-flipped ARF shard file")
	}

	// Model-kind mismatch: an HT server must refuse an ARF checkpoint.
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	htOpts := arfOptions()
	htOpts.Pipeline.Model = core.ModelHT
	if err := NewServer(htOpts).Restore(dir); err == nil {
		t.Fatal("HT server restored an ARF checkpoint")
	}
}
