package serve

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"testing"

	"redhanded/internal/metrics"
	"redhanded/internal/twitterdata"
)

// benchPool pre-marshals a mixed replay pool so the benchmark measures the
// serving path, not JSON generation.
func benchPool(n int) [][]byte {
	src := twitterdata.NewUnlabeledSource(1, 10)
	lines := make([][]byte, n)
	for i := range lines {
		t := src.Next()
		blob, err := t.Marshal()
		if err != nil {
			panic(err)
		}
		lines[i] = blob
	}
	return lines
}

func newBenchServer(b *testing.B, shards int) *Server {
	b.Helper()
	opts := testOptions()
	opts.Shards = shards
	opts.QueueDepth = 1 << 16
	opts.Registry = metrics.NewRegistry()
	return NewServer(opts)
}

// BenchmarkIngestNDJSON drives the async firehose path with 100-tweet
// batches through ServeHTTP directly (no sockets); the reported
// tweets/sec metric includes shard processing, which the benchmark waits
// out so queue growth cannot flatter the number.
func BenchmarkIngestNDJSON(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s := newBenchServer(b, shards)
			lines := benchPool(4096)
			const batch = 100
			bodies := make([][]byte, 64)
			for i := range bodies {
				var buf bytes.Buffer
				for j := 0; j < batch; j++ {
					buf.Write(lines[(i*batch+j)%len(lines)])
					buf.WriteByte('\n')
				}
				bodies[i] = buf.Bytes()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				req := httptest.NewRequest("POST", "/v1/ingest", bytes.NewReader(bodies[i%len(bodies)]))
				rec := httptest.NewRecorder()
				s.ServeHTTP(rec, req)
				if rec.Code != 200 && rec.Code != 429 {
					b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
				}
			}
			// Include the queued work in the measured window. Rejected
			// tweets (queue overflow) never process, so wait on accepted.
			want := s.accepted.Value()
			for {
				var total int64
				for i := 0; i < s.Shards(); i++ {
					total += s.Pipeline(i).Processed()
				}
				if total >= want {
					break
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(batch*b.N)/b.Elapsed().Seconds(), "tweets/s")
		})
	}
}

// BenchmarkClassify measures the synchronous single-tweet path.
func BenchmarkClassify(b *testing.B) {
	s := newBenchServer(b, 4)
	lines := benchPool(4096)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			req := httptest.NewRequest("POST", "/v1/classify", bytes.NewReader(lines[i%len(lines)]))
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, req)
			if rec.Code != 200 && rec.Code != 429 {
				b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
			}
			i++
		}
	})
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tweets/s")
}
