package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"redhanded/internal/twitterdata"
)

// writeCheckpoint builds a drained server with some learned state and
// checkpoints it into a fresh directory.
func writeCheckpoint(t *testing.T, dir string) {
	t.Helper()
	s := NewServer(testOptions())
	var tweets []twitterdata.Tweet
	for i := 0; i < 40; i++ {
		label := twitterdata.LabelNormal
		if i%3 == 0 {
			label = twitterdata.LabelAbusive
		}
		tweets = append(tweets, makeTweet(fmt.Sprint("t", i), fmt.Sprint("u", i%7),
			"you are a fucking idiot and a fool", label))
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/ingest", "application/x-ndjson", ndjson(t, tweets))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitProcessed(t, s, int64(len(tweets)))
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(dir); err != nil {
		t.Fatal(err)
	}
}

func TestRestoreTruncatedShardFile(t *testing.T) {
	dir := t.TempDir()
	writeCheckpoint(t, dir)

	path := filepath.Join(dir, shardFile(0))
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, blob[:len(blob)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	s := NewServer(testOptions())
	defer s.Drain(context.Background())
	if err := s.Restore(dir); err == nil {
		t.Fatal("Restore succeeded on a truncated shard file")
	}
}

func TestRestoreCorruptShardFile(t *testing.T) {
	dir := t.TempDir()
	writeCheckpoint(t, dir)

	if err := os.WriteFile(filepath.Join(dir, shardFile(1)),
		bytes.Repeat([]byte{0xde, 0xad, 0xbe, 0xef}, 128), 0o644); err != nil {
		t.Fatal(err)
	}

	s := NewServer(testOptions())
	defer s.Drain(context.Background())
	if err := s.Restore(dir); err == nil {
		t.Fatal("Restore succeeded on a corrupt shard file")
	}
}

func TestRestoreMissingAndCorruptManifest(t *testing.T) {
	s := NewServer(testOptions())
	defer s.Drain(context.Background())

	if err := s.Restore(t.TempDir()); err == nil {
		t.Fatal("Restore succeeded on an empty directory")
	}

	dir := t.TempDir()
	writeCheckpoint(t, dir)
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.Restore(dir); err == nil {
		t.Fatal("Restore succeeded on a corrupt manifest")
	}
}

func TestRestoreShardCountMismatch(t *testing.T) {
	dir := t.TempDir()
	writeCheckpoint(t, dir) // 4 shards

	opts := testOptions()
	opts.Shards = 2
	s := NewServer(opts)
	defer s.Drain(context.Background())
	if err := s.Restore(dir); err == nil {
		t.Fatal("Restore succeeded into a server with a different shard count")
	}
}

// TestRestoreMidIngest restores a checkpoint while ingest traffic is in
// flight. Restore and Process serialize on each pipeline's lock, so the
// server must come out functional with no torn state (the -race job is the
// real assertion here).
func TestRestoreMidIngest(t *testing.T) {
	dir := t.TempDir()
	writeCheckpoint(t, dir)

	s := NewServer(testOptions())
	ts := httptest.NewServer(s)
	defer ts.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			tw := makeTweet(fmt.Sprint("m", i), fmt.Sprint("u", i%5),
				"some plain ingest traffic flowing through", "")
			resp, err := http.Post(ts.URL+"/v1/ingest", "application/x-ndjson",
				ndjson(t, []twitterdata.Tweet{tw}))
			if err != nil {
				return
			}
			resp.Body.Close()
		}
	}()

	time.Sleep(10 * time.Millisecond)
	if err := s.Restore(dir); err != nil {
		t.Errorf("Restore mid-ingest failed: %v", err)
	}
	close(stop)
	wg.Wait()

	// The server must still classify after the mid-flight restore.
	tw := makeTweet("after", "u1", "hello after restore", "")
	blob, _ := json.Marshal(tw)
	resp, err := http.Post(ts.URL+"/v1/classify", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("classify after restore: status %d", resp.StatusCode)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentClassifyPooledVectors hammers /v1/classify from many
// goroutines: under -race this exercises the pooled scratch buffers and
// feature vectors shared across shard pipelines and HTTP handlers.
func TestConcurrentClassifyPooledVectors(t *testing.T) {
	s := NewServer(testOptions())
	ts := httptest.NewServer(s)
	defer ts.Close()

	const workers, perWorker = 8, 40
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				label := ""
				if i%4 == 0 {
					label = twitterdata.LabelAbusive
				}
				tw := makeTweet(fmt.Sprintf("c%d-%d", w, i), fmt.Sprint("u", (w*perWorker+i)%11),
					"you are a STUPID sooo stupid idiot!! don't do that. ever again", label)
				blob, err := json.Marshal(tw)
				if err != nil {
					errs <- err
					return
				}
				resp, err := http.Post(ts.URL+"/v1/classify", "application/json", bytes.NewReader(blob))
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusTooManyRequests {
					errs <- fmt.Errorf("unexpected status %d", resp.StatusCode)
				}
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}
