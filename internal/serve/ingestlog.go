package serve

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"redhanded/internal/ingestlog"
	"redhanded/internal/twitterdata"
)

// Write-ahead ingestion and replay. With Options.Log set, a tweet is
// accepted in two steps under the shard's ingestMu: append to the
// shard's log partition, then enqueue. The mutex makes the pair atomic
// with respect to other producers, so queue order equals log order, and
// the capacity check before the append guarantees a logged tweet always
// reaches the pipeline:
//
//   - queue full  -> 429 before anything is written. A client retry
//     cannot double-append, because the shed tweet never entered the log.
//   - append fails -> the tweet is not enqueued. ErrBackpressure (fsync
//     budget exhausted) is shed as 429 like a full queue; a hard I/O
//     error surfaces as 503.
//   - append succeeds -> the enqueue cannot block (capacity was checked
//     under the mutex and only mutex holders send) and cannot be shed.
//
// Exactly-once replay follows from the pipeline recording each applied
// offset inside the same critical section as the tweet's effects: a
// checkpoint is a consistent cut (state, offset), and Replay applies
// precisely the records after it, in log order, on the shard that
// originally owned them.

// errReplaying rejects live traffic while Replay owns the pipelines.
var errReplaying = errors.New("serve: server is replaying the ingest log")

// offerLogged is the WAL ingestion path. The caller holds enqueueMu.RLock,
// which excludes Drain closing the queue mid-send. With raw set (the fast
// ingress path) the tweet's NDJSON wire bytes are appended verbatim — no
// re-marshal on the hot path; a nil raw (legacy decode, internal offers)
// encodes the binary record codec as before. Replay dispatches on the
// payload's first byte, so the two record forms coexist in one log.
func (s *Server) offerLogged(sh *shard, j job, raw []byte) (*shard, bool, error) {
	sh.ingestMu.Lock()
	defer sh.ingestMu.Unlock()
	if len(sh.queue) == cap(sh.queue) {
		s.tracer.Abort(j.span)
		return sh, false, nil
	}
	payload := raw
	if payload == nil {
		sh.encBuf = ingestlog.AppendTweet(sh.encBuf[:0], &j.tweet)
		payload = sh.encBuf
	}
	off, err := s.opts.Log.Append(sh.id, payload)
	if err != nil {
		s.tracer.Abort(j.span)
		if errors.Is(err, ingestlog.ErrBackpressure) {
			return sh, false, nil
		}
		return sh, false, fmt.Errorf("serve: ingest log: %w", err)
	}
	j.offset, j.logged = off, true
	sh.lastEnqueued.Store(off)
	//redvet:ignore lockorder cannot block: queue capacity was checked under this same ingestMu and the shard goroutine never enqueues, so the send always has room; the mutex is what makes log order equal queue order
	sh.queue <- j
	return sh, true, nil
}

// Log exposes the server's ingest log (nil when ingestion is not
// write-ahead).
func (s *Server) Log() *ingestlog.Log { return s.opts.Log }

// Replay applies every log record each shard's pipeline has not applied
// yet — after a restore, the records between the checkpoint's cut and
// the crash. It returns the number of records applied. Call it before
// serving traffic: offers are rejected with 503 for the duration so live
// tweets cannot interleave with the replayed prefix.
//
// Replay reads the partitions concurrently (one goroutine per shard,
// mirroring live operation) through mmap'd segment readers; records
// decode with copied strings because the pipeline retains them (user
// state IDs, alert text) beyond the segment mapping's lifetime.
func (s *Server) Replay() (int64, error) {
	if s.opts.Log == nil {
		return 0, nil
	}
	if !s.replaying.CompareAndSwap(false, true) {
		return 0, errors.New("serve: replay already in progress")
	}
	defer s.replaying.Store(false)
	// Flush in-flight offers: anyone who read replaying==false holds the
	// read lock; taking the write side waits them out, so no append can
	// land between the flag and the reads below. (Replay is meant to run
	// before traffic is served at all — this only hardens the contract.)
	s.enqueueMu.Lock()
	s.enqueueMu.Unlock() //nolint:staticcheck // empty critical section is the barrier
	var total atomic.Int64
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for i, sh := range s.shards {
		wg.Add(1)
		go func(i int, sh *shard) {
			defer wg.Done()
			n, err := s.replayShard(sh)
			total.Add(n)
			errs[i] = err
		}(i, sh)
	}
	wg.Wait()
	return total.Load(), errors.Join(errs...)
}

func (s *Server) replayShard(sh *shard) (int64, error) {
	r, err := s.opts.Log.OpenReader(sh.id)
	if err != nil {
		return 0, fmt.Errorf("serve: replay shard %d: %w", sh.id, err)
	}
	defer r.Close()
	if err := r.SeekTo(sh.p.LogOffset() + 1); err != nil {
		return 0, fmt.Errorf("serve: replay shard %d: %w", sh.id, err)
	}
	var n int64
	var tw twitterdata.Tweet
	// Raw-NDJSON records decode through the pooled fast decoder; the binary
	// codec's version byte (0x01) can never open a JSON document, so the
	// first payload byte discriminates the two record forms and logs written
	// by older servers replay unchanged. Arena strings are never discarded
	// here: anything the pipeline retains past the ProcessLogged call is
	// cloned at the retention boundary, and dead chunks fall to the GC.
	dec := twitterdata.GetDecoder()
	defer twitterdata.PutDecoder(dec)
	for {
		payload, off, err := r.Next()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, fmt.Errorf("serve: replay shard %d: %w", sh.id, err)
		}
		if len(payload) > 0 && payload[0] == ingestlog.CodecVersion {
			err = ingestlog.DecodeTweet(payload, &tw, true)
		} else {
			err = dec.DecodeInto(&tw, payload)
		}
		if err != nil {
			return n, fmt.Errorf("serve: replay shard %d offset %d: %w", sh.id, off, err)
		}
		sh.p.ProcessLogged(&tw, off, nil)
		sh.lastEnqueued.Store(off)
		n++
	}
}
