package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"redhanded/internal/core"
	"redhanded/internal/eval"
	"redhanded/internal/feature"
	"redhanded/internal/ingestlog"
	"redhanded/internal/metrics"
	"redhanded/internal/stream"
	"redhanded/internal/twitterdata"
	"redhanded/internal/userstate"
)

// ClassifyResponse is the synchronous result of POST /v1/classify.
type ClassifyResponse struct {
	TweetID    string  `json:"tweet_id"`
	Shard      int     `json:"shard"`
	Predicted  string  `json:"predicted"`
	Confidence float64 `json:"confidence"`
	Alerted    bool    `json:"alerted"`
	Tested     bool    `json:"tested"`
}

// IngestResponse reports what happened to an NDJSON batch.
type IngestResponse struct {
	Accepted  int64 `json:"accepted"`
	Rejected  int64 `json:"rejected"`
	Malformed int64 `json:"malformed"`
}

// ShardStats is one shard's entry in GET /v1/stats.
type ShardStats struct {
	Shard        int   `json:"shard"`
	Processed    int64 `json:"processed"`
	QueueDepth   int   `json:"queue_depth"`
	QueueCap     int   `json:"queue_cap"`
	AlertsRaised int64 `json:"alerts_raised"`
	// User-state cardinality and activity for this shard's store.
	ActiveUsers     int         `json:"active_users"`
	Evictions       int64       `json:"user_evictions"`
	SessionVerdicts int64       `json:"session_verdicts"`
	Escalations     int64       `json:"escalations"`
	Report          eval.Report `json:"report"`
	// Drift carries the shard model's drift telemetry (per-member ADWIN
	// warning/drift/replacement counters for the ARF); absent for models
	// without drift detectors.
	Drift *stream.DriftStats `json:"drift,omitempty"`
	// Snapshot carries the shard's compiled-snapshot telemetry (rebuild
	// counters, staleness age); absent when the lock-free classify path
	// is off.
	Snapshot *core.SnapshotStats `json:"snapshot,omitempty"`
	// IngestLog describes the shard's write-ahead log partition; absent
	// when the server runs without a log.
	IngestLog *ShardLogStats `json:"ingest_log,omitempty"`
	// FeatCache carries the shard's content-addressed extraction-cache
	// counters (hits/misses/evictions/occupancy); absent when the cache is
	// disabled.
	FeatCache *feature.CacheStats `json:"feature_cache,omitempty"`
}

// ShardLogStats is one shard's ingest-log partition state in /v1/stats.
type ShardLogStats struct {
	Segments int   `json:"segments"`
	Bytes    int64 `json:"bytes"`
	// Appended is the last offset committed to the partition, Applied the
	// last offset the shard pipeline has processed (both -1 when none);
	// Lag is the gap — records that exist only in the log and would be
	// replayed after a crash right now.
	Appended int64 `json:"appended_offset"`
	Applied  int64 `json:"applied_offset"`
	Lag      int64 `json:"lag"`
}

// IngestLogStats is the aggregate ingest-log section of /v1/stats.
type IngestLogStats struct {
	Dir      string `json:"dir"`
	Fsync    string `json:"fsync"`
	Segments int    `json:"segments"`
	Bytes    int64  `json:"bytes"`
	Lag      int64  `json:"lag"`
}

// Stats is the GET /v1/stats payload.
type Stats struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Shards        int     `json:"shards"`
	Processed     int64   `json:"processed"`
	Accepted      int64   `json:"accepted"`
	Rejected      int64   `json:"rejected"`
	AlertsRaised  int64   `json:"alerts_raised"`
	Subscribers   int     `json:"alert_subscribers"`
	// Aggregate user-state cardinality and activity across shards.
	ActiveUsers     int64 `json:"active_users"`
	UserEvictions   int64 `json:"user_evictions"`
	SessionVerdicts int64 `json:"session_verdicts"`
	Escalations     int64 `json:"escalations"`
	// Aggregate drift telemetry across shards (models with drift
	// detectors only).
	Warnings         int64 `json:"drift_warnings,omitempty"`
	Drifts           int64 `json:"drifts,omitempty"`
	TreeReplacements int64 `json:"tree_replacements,omitempty"`
	// Aggregate compiled-snapshot telemetry across shards (zero when the
	// lock-free classify path is off).
	SnapshotRebuilds     int64 `json:"snapshot_rebuilds,omitempty"`
	SnapshotTreesRebuilt int64 `json:"snapshot_trees_rebuilt,omitempty"`
	// Aggregate extraction-cache counters across shards (zero when the
	// cache is disabled). Clients compute the server-side hit ratio as
	// Hits/(Hits+Misses) over a pre/post delta.
	FeatCacheHits      int64 `json:"featcache_hits,omitempty"`
	FeatCacheMisses    int64 `json:"featcache_misses,omitempty"`
	FeatCacheEvictions int64 `json:"featcache_evictions,omitempty"`
	// Ingress is the process-wide fast-decoder telemetry (decode counts,
	// arena chunk turnover); shared across servers in one process.
	Ingress   *twitterdata.DecodeStats `json:"ingress,omitempty"`
	IngestLog *IngestLogStats          `json:"ingest_log,omitempty"`
	PerShard  []ShardStats             `json:"per_shard"`
}

func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	handle := func(pattern, name string, h http.HandlerFunc) {
		c := s.opts.Registry.Counter("redhanded_http_requests_total",
			"HTTP requests by endpoint.", metrics.Labels{"path": name})
		mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
			c.Inc()
			h(w, r)
		})
	}
	handle("POST /v1/classify", "/v1/classify", s.handleClassify)
	handle("POST /v1/ingest", "/v1/ingest", s.handleIngest)
	handle("GET /v1/alerts", "/v1/alerts", s.handleAlerts)
	handle("GET /v1/users/{id}", "/v1/users", s.handleUser)
	handle("GET /v1/stats", "/v1/stats", s.handleStats)
	handle("GET /v1/trace", "/v1/trace", s.handleTrace)
	handle("GET /v1/trace/slow", "/v1/trace/slow", s.handleTraceSlow)
	handle("GET /healthz", "/healthz", s.handleHealthz)
	mux.Handle("GET /metrics", s.metricsHandler())
	return mux
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) writeBackpressure(w http.ResponseWriter, v any) {
	// Round up: "Retry-After: 0" would invite an immediate hammer.
	secs := int(math.Ceil(s.opts.RetryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	s.writeJSON(w, http.StatusTooManyRequests, v)
}

// bodyBufPool recycles /v1/classify body buffers and /v1/ingest scanner
// buffers: the fast-decode ingress otherwise pays one large read-buffer
// allocation per request, dwarfing the decode savings.
var bodyBufPool = sync.Pool{New: func() any {
	b := make([]byte, 64*1024)
	return &b
}}

// handleClassify runs one tweet through its shard synchronously. Latency
// is recorded for every terminal outcome, labeled by outcome, so the
// accepted-path series stays clean while rejections and disconnects remain
// observable. The body decodes through the pooled zero-alloc Decoder (the
// legacy encoding/json path stays reachable via Options.LegacyJSONDecode),
// and the raw body bytes ride into the WAL append verbatim.
func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	outcome := outcomeOK
	defer func() {
		s.latency[outcome].Observe(time.Since(start).Seconds())
	}()
	var tw twitterdata.Tweet
	var raw []byte
	var dec *twitterdata.Decoder
	if s.opts.LegacyJSONDecode {
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&tw); err != nil {
			outcome = outcomeBadRequest
			s.writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("decode tweet: %v", err)})
			return
		}
	} else {
		bp := bodyBufPool.Get().(*[]byte)
		defer bodyBufPool.Put(bp)
		body := bytes.NewBuffer((*bp)[:0])
		if _, err := body.ReadFrom(http.MaxBytesReader(w, r.Body, 1<<20)); err != nil {
			outcome = outcomeBadRequest
			s.writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("read tweet: %v", err)})
			return
		}
		raw = body.Bytes()
		dec = twitterdata.GetDecoder()
		defer twitterdata.PutDecoder(dec)
		if err := dec.DecodeInto(&tw, raw); err != nil {
			outcome = outcomeBadRequest
			s.writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("decode tweet: %v", err)})
			return
		}
	}
	reply := make(chan core.Result, 1)
	sh, ok, err := s.offerRaw(job{tweet: tw, reply: reply}, raw)
	if err != nil {
		if dec != nil {
			dec.Discard()
		}
		outcome = outcomeDraining
		s.writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": err.Error()})
		return
	}
	if !ok {
		if dec != nil {
			dec.Discard()
		}
		outcome = outcomeQueueFull
		s.rejected.Inc()
		s.writeBackpressure(w, map[string]string{"error": "shard queue full"})
		return
	}
	s.accepted.Inc()
	select {
	case res := <-reply:
		s.writeJSON(w, http.StatusOK, ClassifyResponse{
			TweetID:    tw.IDStr,
			Shard:      sh.id,
			Predicted:  sh.p.Classes().Name(res.Predicted),
			Confidence: res.Confidence,
			Alerted:    res.Alerted,
			Tested:     res.Tested,
		})
	case <-r.Context().Done():
		// The client went away; the shard still processes the tweet and
		// drops the buffered reply. The time until disconnect lands on the
		// canceled series instead of masquerading as request latency.
		outcome = outcomeCanceled
	}
}

// handleIngest enqueues an NDJSON batch asynchronously. Ingestion stops at
// the first rejected line: every later line is counted as rejected without
// being enqueued, so Accepted+Malformed is always a prefix of the batch
// and a 429'd client retries exactly the lines from that prefix onward
// without double-training the models.
//
// Each line decodes through the pooled zero-alloc Decoder and its raw bytes
// flow straight into the WAL append — no re-marshal between the wire and
// the log. Arena hygiene on the reject paths: a decoded tweet that is NOT
// enqueued (queue-full/backpressure shed, drain/replay 503) is Discarded so
// a rejected burst cannot stride through arena chunks it never committed;
// malformed lines rewind automatically inside DecodeInto.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	var resp IngestResponse
	sc := bufio.NewScanner(http.MaxBytesReader(w, r.Body, s.opts.MaxBatchBytes))
	bp := bodyBufPool.Get().(*[]byte)
	defer bodyBufPool.Put(bp)
	sc.Buffer(*bp, 4*1024*1024)
	var dec *twitterdata.Decoder
	if !s.opts.LegacyJSONDecode {
		dec = twitterdata.GetDecoder()
		defer twitterdata.PutDecoder(dec)
	}
	for sc.Scan() {
		line := sc.Bytes()
		if resp.Rejected > 0 {
			resp.Rejected++
			continue
		}
		if len(line) == 0 {
			// Counted so Accepted+Malformed stays an exact prefix length
			// and 429 retries resume at the right line.
			resp.Malformed++
			continue
		}
		var tw twitterdata.Tweet
		var raw []byte
		if dec != nil {
			if dec.DecodeInto(&tw, line) != nil {
				resp.Malformed++
				continue
			}
			raw = line
		} else {
			var err error
			if tw, err = twitterdata.Unmarshal(line); err != nil {
				resp.Malformed++
				continue
			}
		}
		_, ok, err := s.offerRaw(job{tweet: tw}, raw)
		if err != nil {
			if dec != nil {
				dec.Discard()
			}
			s.recordIngest(resp)
			s.writeJSON(w, http.StatusServiceUnavailable, resp)
			return
		}
		if ok {
			resp.Accepted++
		} else {
			if dec != nil {
				dec.Discard()
			}
			resp.Rejected++
		}
	}
	// Record before any error return: tweets already enqueued are real
	// work and the metrics must reflect them.
	s.recordIngest(resp)
	if err := sc.Err(); err != nil {
		s.writeJSON(w, http.StatusBadRequest, map[string]any{
			"error":     fmt.Sprintf("read body: %v", err),
			"accepted":  resp.Accepted,
			"rejected":  resp.Rejected,
			"malformed": resp.Malformed,
		})
		return
	}
	if resp.Rejected > 0 {
		s.writeBackpressure(w, resp)
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) recordIngest(r IngestResponse) {
	s.accepted.Add(r.Accepted)
	s.rejected.Add(r.Rejected)
	s.malformed.Add(r.Malformed)
}

// UserResponse is the GET /v1/users/{id} payload: which shard owns the
// user plus a point-in-time snapshot of their state.
type UserResponse struct {
	Shard int `json:"shard"`
	userstate.Snapshot
}

// handleUser looks one user's state up on the shard their tweets route
// to. Unknown users get 404 — either never seen, or already evicted by
// the cap/TTL policy.
func (s *Server) handleUser(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if id == "" {
		s.writeJSON(w, http.StatusBadRequest, map[string]string{"error": "missing user id"})
		return
	}
	idx := ShardFor(id, len(s.shards))
	snap, ok := s.shards[idx].p.Users().Lookup(id)
	if !ok {
		s.writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown user (never seen or evicted)"})
		return
	}
	s.writeJSON(w, http.StatusOK, UserResponse{Shard: idx, Snapshot: snap})
}

// handleStats reports per-shard prequential metrics and queue state.
func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := Stats{
		UptimeSeconds: s.Uptime().Seconds(),
		Shards:        len(s.shards),
		Accepted:      s.accepted.Value(),
		Rejected:      s.rejected.Value(),
		Subscribers:   s.hub.Subscribers(),
	}
	if ds := twitterdata.ReadDecodeStats(); ds.Decodes > 0 || ds.Errors > 0 {
		st.Ingress = &ds
	}
	var logStats []ingestlog.PartitionStats
	if l := s.opts.Log; l != nil {
		logStats = l.Stats()
		st.IngestLog = &IngestLogStats{Dir: l.Dir(), Fsync: l.Fsync().String()}
	}
	for _, sh := range s.shards {
		raised := sh.p.Alerter().Raised()
		processed := sh.p.Processed()
		st.Processed += processed
		st.AlertsRaised += raised
		drift := sh.p.DriftStats()
		if drift != nil {
			st.Warnings += drift.Warnings
			st.Drifts += drift.Drifts
			st.TreeReplacements += drift.TreeReplacements
		}
		users := sh.p.Users()
		active := users.Len()
		capEv, ttlEv := users.Evictions()
		st.ActiveUsers += int64(active)
		st.UserEvictions += capEv + ttlEv
		st.SessionVerdicts += users.SessionVerdicts()
		st.Escalations += users.Escalations()
		entry := ShardStats{
			Shard:           sh.id,
			Processed:       processed,
			QueueDepth:      len(sh.queue),
			QueueCap:        cap(sh.queue),
			AlertsRaised:    raised,
			ActiveUsers:     active,
			Evictions:       capEv + ttlEv,
			SessionVerdicts: users.SessionVerdicts(),
			Escalations:     users.Escalations(),
			Report:          sh.p.Summary(),
			Drift:           drift,
		}
		if snap := sh.p.SnapshotStats(); snap.Enabled {
			st.SnapshotRebuilds += snap.Rebuilds
			st.SnapshotTreesRebuilt += snap.TreesRebuilt
			entry.Snapshot = &snap
		}
		if cs := sh.p.Extractor().CacheStats(); cs.Capacity > 0 {
			st.FeatCacheHits += cs.Hits
			st.FeatCacheMisses += cs.Misses
			st.FeatCacheEvictions += cs.Evictions
			entry.FeatCache = &cs
		}
		if logStats != nil {
			ps := logStats[sh.id]
			applied := sh.p.LogOffset()
			entry.IngestLog = &ShardLogStats{
				Segments: ps.Segments,
				Bytes:    ps.Bytes,
				Appended: ps.Appended,
				Applied:  applied,
				Lag:      ps.Appended - applied,
			}
			st.IngestLog.Segments += ps.Segments
			st.IngestLog.Bytes += ps.Bytes
			st.IngestLog.Lag += ps.Appended - applied
		}
		st.PerShard = append(st.PerShard, entry)
	}
	s.writeJSON(w, http.StatusOK, st)
}

// handleTrace reports the tracing layer's stage statistics, exemplars,
// and recent spans. With tracing disabled it answers {"enabled": false}
// rather than 404, so clients can feature-detect.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	recent := 0
	if v := r.URL.Query().Get("recent"); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			recent = n
		}
	}
	s.writeJSON(w, http.StatusOK, s.tracer.Snapshot(recent))
}

// handleTraceSlow reports the full stage breakdown of every captured
// over-budget ("slow verdict") span.
func (s *Server) handleTraceSlow(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, s.tracer.SlowTraces())
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	status := "ok"
	code := http.StatusOK
	if s.closed.Load() {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	s.writeJSON(w, code, map[string]any{"status": status, "shards": len(s.shards)})
}

// metricsHandler serves the server's registry, plus the process default
// registry when they differ (the library's built-in engine and alerting
// instrumentation lands on the default registry).
func (s *Server) metricsHandler() http.Handler {
	reg := s.opts.Registry
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WriteText(w)
		if d := metrics.Default(); d != reg {
			_ = d.WriteText(w)
		}
	})
}
