package serve

import (
	"context"
	"reflect"
	"testing"

	"redhanded/internal/core"
	"redhanded/internal/metrics"
	"redhanded/internal/twitterdata"
)

// TestDrainBatchEquivalence proves the micro-batched shard drain is a
// pure amortization: a backlogged queue drained in batches of 8 must
// leave the pipeline in exactly the state per-tweet draining does. The
// server is built stalled so the whole stream is queued before the
// shard loop starts — guaranteeing the batched run actually forms
// maximal batches instead of degenerating to singles.
func TestDrainBatchEquivalence(t *testing.T) {
	tweets := twitterdata.GenerateAggression(twitterdata.AggressionConfig{
		Seed: 11, Days: 5, NormalCount: 400, AbusiveCount: 200, HatefulCount: 40,
	})
	for i := range tweets {
		if i%3 == 1 {
			tweets[i].Label = "" // unlabeled runs for the batch to coalesce
		}
	}

	run := func(drain int) *core.Pipeline {
		opts := testOptions()
		opts.Shards = 1
		opts.QueueDepth = len(tweets) + 8
		opts.DrainBatch = drain
		opts.Registry = metrics.NewRegistry()
		s := newServer(opts, false)
		for i := range tweets {
			if _, ok, err := s.offer(job{tweet: tweets[i]}); err != nil || !ok {
				t.Fatalf("offer tweet %d: ok=%v err=%v", i, ok, err)
			}
		}
		for _, sh := range s.shards {
			s.wg.Add(1)
			go sh.run(&s.wg)
		}
		if err := s.Drain(context.Background()); err != nil {
			t.Fatal(err)
		}
		return s.Pipeline(0)
	}

	single := run(1)
	batched := run(8)
	if single.Processed() != int64(len(tweets)) || batched.Processed() != single.Processed() {
		t.Fatalf("processed %d vs %d, want %d", batched.Processed(), single.Processed(), len(tweets))
	}
	if !reflect.DeepEqual(batched.Summary(), single.Summary()) {
		t.Fatalf("summaries diverged:\nbatched: %+v\nsingle:  %+v", batched.Summary(), single.Summary())
	}
	if !reflect.DeepEqual(batched.PredictedDistribution(), single.PredictedDistribution()) {
		t.Fatalf("predicted distributions diverged:\nbatched: %v\nsingle:  %v",
			batched.PredictedDistribution(), single.PredictedDistribution())
	}
	if batched.Alerter().Raised() != single.Alerter().Raised() {
		t.Fatalf("alerts raised %d vs %d", batched.Alerter().Raised(), single.Alerter().Raised())
	}
	if bs, ss := batched.SnapshotStats(), single.SnapshotStats(); bs.Rebuilds > ss.Rebuilds {
		t.Fatalf("batched drain rebuilt snapshots more often than per-tweet drain (%d vs %d)",
			bs.Rebuilds, ss.Rebuilds)
	}
}
