package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"redhanded/internal/core"
	"redhanded/internal/metrics"
)

// alertEvent is the SSE payload for one alert.
type alertEvent struct {
	Seq        int64   `json:"seq"`
	TweetID    string  `json:"tweet_id"`
	UserID     string  `json:"user_id"`
	ScreenName string  `json:"screen_name"`
	Label      string  `json:"label"`
	Confidence float64 `json:"confidence"`
	Text       string  `json:"text"`
	Offenses   int     `json:"offenses,omitempty"`
	Suspended  bool    `json:"suspended,omitempty"`
}

// sessionEvent is the SSE payload for one session verdict.
type sessionEvent struct {
	Seq int64 `json:"seq"`
	core.SessionVerdict
}

// escalationEvent is the SSE payload for one escalation verdict.
type escalationEvent struct {
	Seq int64 `json:"seq"`
	core.EscalationVerdict
}

// sseEvent is one frame on the /v1/alerts stream: an event kind plus its
// already-typed payload (marshaled lazily on each subscriber's writer).
type sseEvent struct {
	seq  int64
	kind string // "alert", "session", "escalation"
	data any
}

// alertHub is a fan-out sink for the per-shard pipelines: alerts (via
// core.AlertSink) and session/escalation verdicts (via core.VerdictSink)
// publish into it, and each SSE connection subscribes to a buffered
// channel. Delivery is best-effort — a subscriber that cannot keep up
// loses events (counted) instead of stalling the classify hot path.
type alertHub struct {
	mu       sync.Mutex
	subs     map[chan sseEvent]struct{}
	buffer   int
	seq      int64
	streamed *metrics.Counter
	dropped  *metrics.Counter
	subGauge *metrics.Gauge
}

func newAlertHub(buffer int, reg *metrics.Registry) *alertHub {
	return &alertHub{
		subs:     make(map[chan sseEvent]struct{}),
		buffer:   buffer,
		streamed: reg.Counter("redhanded_alerts_streamed_total", "Events delivered to SSE subscribers.", nil),
		dropped:  reg.Counter("redhanded_alerts_dropped_total", "Events dropped because a subscriber buffer was full.", nil),
		subGauge: reg.Gauge("redhanded_sse_subscribers", "Live SSE alert subscribers.", nil),
	}
}

// publish fans one event out to every subscriber. It runs on a shard
// goroutine, so it must never block.
func (h *alertHub) publish(kind string, fill func(seq int64) any) {
	h.mu.Lock()
	h.seq++
	ev := sseEvent{seq: h.seq, kind: kind, data: fill(h.seq)}
	for ch := range h.subs {
		select {
		case ch <- ev:
			h.streamed.Inc()
		default:
			h.dropped.Inc()
		}
	}
	h.mu.Unlock()
}

// HandleAlert implements core.AlertSink.
func (h *alertHub) HandleAlert(a core.Alert) {
	h.publish("alert", func(seq int64) any {
		return alertEvent{
			Seq:        seq,
			TweetID:    a.TweetID,
			UserID:     a.UserID,
			ScreenName: a.ScreenName,
			Label:      a.Label,
			Confidence: a.Confidence,
			Text:       a.Text,
			Offenses:   a.Offenses,
			Suspended:  a.Suspended,
		}
	})
}

// HandleSession implements core.VerdictSink.
func (h *alertHub) HandleSession(v core.SessionVerdict) {
	h.publish("session", func(seq int64) any { return sessionEvent{Seq: seq, SessionVerdict: v} })
}

// HandleEscalation implements core.VerdictSink.
func (h *alertHub) HandleEscalation(v core.EscalationVerdict) {
	h.publish("escalation", func(seq int64) any { return escalationEvent{Seq: seq, EscalationVerdict: v} })
}

func (h *alertHub) subscribe() chan sseEvent {
	ch := make(chan sseEvent, h.buffer)
	h.mu.Lock()
	h.subs[ch] = struct{}{}
	h.mu.Unlock()
	h.subGauge.Inc()
	return ch
}

func (h *alertHub) unsubscribe(ch chan sseEvent) {
	h.mu.Lock()
	delete(h.subs, ch)
	h.mu.Unlock()
	h.subGauge.Dec()
}

// Subscribers returns the live subscriber count.
func (h *alertHub) Subscribers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// sseHeartbeat keeps idle connections alive through proxies.
const sseHeartbeat = 15 * time.Second

// handleAlerts streams alerts plus session/escalation verdicts as
// Server-Sent Events (event kinds "alert", "session", "escalation")
// until the client disconnects.
func (s *Server) handleAlerts(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fmt.Fprint(w, ": connected\n\n")
	fl.Flush()

	ch := s.hub.subscribe()
	defer s.hub.unsubscribe(ch)
	ticker := time.NewTicker(sseHeartbeat)
	defer ticker.Stop()
	for {
		select {
		case ev := <-ch:
			data, err := json.Marshal(ev.data)
			if err != nil {
				continue
			}
			if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.seq, ev.kind, data); err != nil {
				return
			}
			fl.Flush()
		case <-ticker.C:
			if _, err := fmt.Fprint(w, ": heartbeat\n\n"); err != nil {
				return
			}
			fl.Flush()
		case <-s.draining:
			// Drain ends the stream so graceful HTTP shutdown (which
			// waits for in-flight requests) is not held open forever.
			return
		case <-r.Context().Done():
			return
		}
	}
}
