package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"redhanded/internal/twitterdata"
	"redhanded/internal/userstate"
)

// makeTweetAt is makeTweet with a controllable timestamp, so session
// windows and escalation spans actually advance.
func makeTweetAt(id, user, text, label string, at time.Time) twitterdata.Tweet {
	tw := makeTweet(id, user, text, label)
	tw.CreatedAt = at.Format(twitterdata.TimeLayout)
	return tw
}

func TestUserEndpoint(t *testing.T) {
	opts := testOptions()
	s := NewServer(opts)
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	at := time.Date(2020, 6, 1, 12, 0, 0, 0, time.UTC)
	var tweets []twitterdata.Tweet
	for i := 0; i < 6; i++ {
		tweets = append(tweets, makeTweetAt(fmt.Sprint(i), "4242", "hello there friend", "", at.Add(time.Duration(i)*time.Minute)))
	}
	resp, err := http.Post(ts.URL+"/v1/ingest", "application/x-ndjson", ndjson(t, tweets))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitProcessed(t, s, int64(len(tweets)))

	// Known user: 200 with the snapshot, owned by ShardFor's shard.
	resp, err = http.Get(ts.URL + "/v1/users/4242")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/users/4242 = %d", resp.StatusCode)
	}
	var ur UserResponse
	if err := json.NewDecoder(resp.Body).Decode(&ur); err != nil {
		t.Fatal(err)
	}
	if ur.Shard != ShardFor("4242", s.Shards()) {
		t.Fatalf("user served from shard %d, want %d", ur.Shard, ShardFor("4242", s.Shards()))
	}
	if ur.UserID != "4242" || ur.Tweets != 6 || ur.WindowTweets != 6 {
		t.Fatalf("snapshot = %+v", ur.Snapshot)
	}
	if ur.ScreenName != "u4242" || ur.LastSeen.IsZero() {
		t.Fatalf("snapshot metadata = %+v", ur.Snapshot)
	}

	// Unknown user: 404.
	resp, err = http.Get(ts.URL + "/v1/users/never-seen")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /v1/users/never-seen = %d, want 404", resp.StatusCode)
	}
}

// TestEscalationAndSessionSSE drives a repeat offender through the
// server and asserts that session and escalation verdicts reach the
// /v1/alerts stream as their own SSE event kinds.
func TestEscalationAndSessionSSE(t *testing.T) {
	opts := testOptions()
	opts.Shards = 1
	opts.Pipeline.AlertThreshold = 0.1
	opts.Pipeline.Users = userstate.Config{
		Session: userstate.SessionConfig{Window: time.Hour, MinTweets: 3, AggressiveShare: 0.5, Cooldown: 10 * time.Minute},
		Escalation: userstate.EscalationConfig{
			Threshold: 0.3, MinTweets: 6, MinSpan: 20 * time.Minute, Cooldown: 10 * time.Minute,
		},
		RingSize: 8,
	}
	s := NewServer(opts)
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/alerts", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// Teach the model the stream is hateful; once predictions flip
	// aggressive, the offender's window and EWMA score fill up.
	at := time.Date(2020, 6, 1, 12, 0, 0, 0, time.UTC)
	var tweets []twitterdata.Tweet
	for i := 0; i < 120; i++ {
		tweets = append(tweets, makeTweetAt(fmt.Sprint(i), "666",
			"you are a worthless idiot and i hate you", twitterdata.LabelHateful,
			at.Add(time.Duration(i)*2*time.Minute)))
	}
	post, err := http.Post(ts.URL+"/v1/ingest", "application/x-ndjson", ndjson(t, tweets))
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()

	// Read the stream until both verdict kinds have arrived.
	sc := bufio.NewScanner(resp.Body)
	kinds := map[string]string{} // kind -> first data payload
	event := ""
	for sc.Scan() && (kinds["session"] == "" || kinds["escalation"] == "") {
		line := sc.Text()
		if strings.HasPrefix(line, "event: ") {
			event = strings.TrimPrefix(line, "event: ")
		}
		if strings.HasPrefix(line, "data: ") && event != "" {
			if kinds[event] == "" {
				kinds[event] = strings.TrimPrefix(line, "data: ")
			}
			event = ""
		}
	}
	if kinds["session"] == "" || kinds["escalation"] == "" {
		t.Fatalf("missing verdict events; got kinds %v (err %v)", kinds, sc.Err())
	}

	var sess struct {
		Seq             int64   `json:"seq"`
		UserID          string  `json:"user_id"`
		Tweets          int     `json:"tweets"`
		AggressiveShare float64 `json:"aggressive_share"`
	}
	if err := json.Unmarshal([]byte(kinds["session"]), &sess); err != nil {
		t.Fatalf("session payload %q: %v", kinds["session"], err)
	}
	if sess.UserID != "666" || sess.Tweets < 3 || sess.AggressiveShare < 0.5 || sess.Seq == 0 {
		t.Fatalf("session event = %+v", sess)
	}
	var esc struct {
		Seq    int64   `json:"seq"`
		UserID string  `json:"user_id"`
		Score  float64 `json:"score"`
		Tweets int64   `json:"tweets"`
	}
	if err := json.Unmarshal([]byte(kinds["escalation"]), &esc); err != nil {
		t.Fatalf("escalation payload %q: %v", kinds["escalation"], err)
	}
	if esc.UserID != "666" || esc.Score < 0.3 || esc.Tweets < 6 {
		t.Fatalf("escalation event = %+v", esc)
	}

	// The verdicts also appear on /v1/stats.
	stats, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer stats.Body.Close()
	var st Stats
	if err := json.NewDecoder(stats.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.SessionVerdicts == 0 || st.Escalations == 0 || st.ActiveUsers == 0 {
		t.Fatalf("stats missing user-state activity: %+v", st)
	}
}

// TestServerUserCapDividedAcrossShards checks that the configured
// MaxUsers budget bounds the whole server, not each shard.
func TestServerUserCapDividedAcrossShards(t *testing.T) {
	opts := testOptions()
	opts.Shards = 4
	opts.Pipeline.Users.MaxUsers = 200
	opts.Pipeline.Users.TTL = -1
	s := NewServer(opts)
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	at := time.Date(2020, 6, 1, 12, 0, 0, 0, time.UTC)
	total := 0
	for batch := 0; batch < 8; batch++ {
		var tweets []twitterdata.Tweet
		for i := 0; i < 250; i++ {
			u := fmt.Sprintf("user-%d-%d", batch, i)
			tweets = append(tweets, makeTweetAt(u, u, "hello world", "", at.Add(time.Duration(total)*time.Second)))
			total++
		}
		resp, err := http.Post(ts.URL+"/v1/ingest", "application/x-ndjson", ndjson(t, tweets))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	waitProcessed(t, s, int64(total))

	active := 0
	for i := 0; i < s.Shards(); i++ {
		active += s.Pipeline(i).Users().Len()
	}
	if active > 200 {
		t.Fatalf("server-wide user cap breached: %d records > 200", active)
	}
	var evictions int64
	for i := 0; i < s.Shards(); i++ {
		c, l := s.Pipeline(i).Users().Evictions()
		evictions += c + l
	}
	if evictions == 0 {
		t.Fatalf("2000 distinct users produced no evictions under a 200 cap")
	}
}

// TestCheckpointRestoresUserState round-trips offense history and
// escalation scores through the sharded server checkpoint.
func TestCheckpointRestoresUserState(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions()
	opts.Pipeline.AlertThreshold = 0.1

	s := NewServer(opts)
	ts := httptest.NewServer(s)
	at := time.Date(2020, 6, 1, 12, 0, 0, 0, time.UTC)
	var tweets []twitterdata.Tweet
	for i := 0; i < 80; i++ {
		tweets = append(tweets, makeTweetAt(fmt.Sprint(i), "offender",
			"you are a worthless idiot and i hate you", twitterdata.LabelHateful,
			at.Add(time.Duration(i)*time.Minute)))
	}
	resp, err := http.Post(ts.URL+"/v1/ingest", "application/x-ndjson", ndjson(t, tweets))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitProcessed(t, s, int64(len(tweets)))

	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	before, ok := s.Pipeline(ShardFor("offender", s.Shards())).Users().Lookup("offender")
	if !ok || before.Tweets != 80 {
		t.Fatalf("offender record missing before checkpoint: %+v", before)
	}
	if err := s.Checkpoint(dir); err != nil {
		t.Fatal(err)
	}
	ts.Close()

	restored := NewServer(opts)
	defer restored.Drain(context.Background())
	if err := restored.Restore(dir); err != nil {
		t.Fatal(err)
	}
	after, ok := restored.Pipeline(ShardFor("offender", restored.Shards())).Users().Lookup("offender")
	if !ok {
		t.Fatalf("offender record lost through checkpoint")
	}
	if after.Tweets != before.Tweets || after.Score != before.Score ||
		after.Offenses != before.Offenses || after.Sessions != before.Sessions {
		t.Fatalf("user state diverged through checkpoint:\nbefore %+v\nafter  %+v", before, after)
	}

	// The restored server keeps answering GET /v1/users.
	ts2 := httptest.NewServer(restored)
	defer ts2.Close()
	resp, err = http.Get(ts2.URL + "/v1/users/offender")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/users/offender after restore = %d", resp.StatusCode)
	}
	var ur UserResponse
	if err := json.NewDecoder(resp.Body).Decode(&ur); err != nil {
		t.Fatal(err)
	}
	if ur.Tweets != 80 {
		t.Fatalf("restored snapshot = %+v", ur.Snapshot)
	}
}
