package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"redhanded/internal/obs"
)

// End-to-end slow-verdict capture: with a 1ns latency budget every tweet is
// artificially "slow", so GET /v1/trace/slow must return its full stage
// breakdown — the tentpole acceptance criterion.
func TestTraceSlowEndpointReturnsFullBreakdown(t *testing.T) {
	opts := testOptions()
	opts.Trace = obs.Config{Enabled: true, SlowBudget: time.Nanosecond}
	s := NewServer(opts)
	ts := httptest.NewServer(s)
	defer ts.Close()
	defer s.Drain(context.Background())

	tw := makeTweet("900100", "u-trace", "you are all garbage people", "abusive")
	blob, err := tw.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/classify", "application/json", strings.NewReader(string(blob)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("classify status = %d", resp.StatusCode)
	}
	waitProcessed(t, s, 1)

	// The span finishes on the shard goroutine just after the reply is
	// delivered; poll briefly for it to land in the slow ring.
	var slow obs.SlowReport
	deadline := time.Now().Add(5 * time.Second)
	for {
		r, err := http.Get(ts.URL + "/v1/trace/slow")
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(r.Body).Decode(&slow)
		r.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(slow.Traces) > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if !slow.Enabled || slow.SlowBudgetNanos != 1 {
		t.Fatalf("slow report header = %+v", slow)
	}
	if len(slow.Traces) == 0 {
		t.Fatal("no slow trace captured for an over-budget tweet")
	}
	tr := slow.Traces[0]
	if tr.ID != "900100" {
		t.Fatalf("slow trace ID = %q, want the tweet ID", tr.ID)
	}
	if !tr.Slow || tr.TotalNanos <= 0 {
		t.Fatalf("slow trace not marked slow: %+v", tr)
	}
	stages := map[string]int64{}
	for _, st := range tr.Stages {
		stages[st.Stage] = st.Nanos
	}
	for _, want := range []string{"queue", "extract", "classify", "observe", "verdict"} {
		if stages[want] <= 0 {
			t.Fatalf("slow trace missing stage %q: %v", want, stages)
		}
	}

	// The summary endpoint reports the same span in aggregate form.
	r, err := http.Get(ts.URL + "/v1/trace")
	if err != nil {
		t.Fatal(err)
	}
	var sum obs.Summary
	err = json.NewDecoder(r.Body).Decode(&sum)
	r.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Enabled || sum.Spans < 1 || sum.SlowSpans < 1 {
		t.Fatalf("trace summary = %+v", sum)
	}
	if len(sum.Stages) == 0 || len(sum.Recent) == 0 {
		t.Fatalf("trace summary missing stage stats or recent spans: %+v", sum)
	}
}

// With tracing disabled, the endpoints feature-detect rather than 404 and
// the span plumbing stays nil end to end.
func TestTraceEndpointsDisabled(t *testing.T) {
	s := NewServer(testOptions())
	ts := httptest.NewServer(s)
	defer ts.Close()
	defer s.Drain(context.Background())

	if s.Tracer() != nil {
		t.Fatal("tracer should be nil when Trace.Enabled is false")
	}
	for _, path := range []string{"/v1/trace", "/v1/trace/slow"} {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var payload struct {
			Enabled bool `json:"enabled"`
		}
		err = json.NewDecoder(r.Body).Decode(&payload)
		r.Body.Close()
		if err != nil || r.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d err %v", path, r.StatusCode, err)
		}
		if payload.Enabled {
			t.Fatalf("%s reports enabled on an untraced server", path)
		}
	}
}

// Tracing survives the ingest path and SSE emit attribution: aggressive
// labeled tweets trigger alerts whose publish time lands in the emit stage
// without inflating the verdict stage.
func TestTraceIngestAndEmitAttribution(t *testing.T) {
	opts := testOptions()
	opts.Trace = obs.Config{Enabled: true, SlowBudget: -1}
	s := NewServer(opts)
	ts := httptest.NewServer(s)
	defer ts.Close()
	defer s.Drain(context.Background())

	var tweets []string
	for i := 0; i < 40; i++ {
		tw := makeTweet("910"+string(rune('0'+i%10))+"00", "u-emit", "I will hurt you", "abusive")
		blob, err := tw.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		tweets = append(tweets, string(blob))
	}
	resp, err := http.Post(ts.URL+"/v1/ingest", "application/x-ndjson",
		strings.NewReader(strings.Join(tweets, "\n")+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitProcessed(t, s, 40)

	deadline := time.Now().Add(5 * time.Second)
	for s.Tracer().Spans() < 40 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := s.Tracer().Spans(); got < 40 {
		t.Fatalf("Spans = %d, want 40", got)
	}
	sum := s.Tracer().Snapshot(8)
	if len(sum.Recent) == 0 {
		t.Fatal("no recent spans after ingest")
	}
}
