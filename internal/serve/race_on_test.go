//go:build race

package serve

// raceEnabled mirrors the runtime's race-detector build state for tests
// whose assertions depend on sync.Pool actually reusing entries (the race
// runtime drops Pool items on purpose to shake out lifecycle races).
const raceEnabled = true
